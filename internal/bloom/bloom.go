// Package bloom implements the Bloom filters of §5.2: the fine-grained
// working-set summaries a receiver hands to a partial sender so that the
// sender only transmits symbols the receiver is missing.
//
// A filter over set S uses m bits and k hash functions; membership tests
// have no false negatives, and a false positive only makes the sender
// skip a symbol that would have been useful — it never causes a useless
// transmission, the asymmetry §5.2 leans on. The false positive rate is
//
//	f = (1 − e^{−kn/m})^k
//
// The paper's two operating points are 4 bits/element with 3 hashes
// (f ≈ 14.7%) and 8 bits/element with 5 hashes (f ≈ 2.2%); both are
// reproduced by tests and the E10 bench.
//
// Hash evaluations use the Kirsch–Mitzenmacher double-hashing scheme from
// internal/hashing: two 64-bit hashes simulate all k probes.
//
// The package also provides the scoped variant sketched at the end of
// §5.2 for very large working sets: a filter that summarizes only the
// elements ≡ β (mod ρ), so summaries can be pipelined incrementally
// ("peer A can create a Bloom filter only for elements of S that are
// equal to β modulo ρ").
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"icd/internal/bitset"
	"icd/internal/hashing"
	"icd/internal/keyset"
)

// Filter is a Bloom filter over uint64 symbol keys. Construct with New or
// FromSet. Not safe for concurrent mutation.
type Filter struct {
	Seed   uint64 // hash family seed; peers must share it to interoperate
	K      int    // number of hash functions
	bits   *bitset.Set
	ninact int // number of inserted elements (for analytics)
}

// New creates a filter with m bits and k hash functions.
func New(seed uint64, m, k int) *Filter {
	if m <= 0 {
		panic("bloom: non-positive bit count")
	}
	if k <= 0 {
		panic("bloom: non-positive hash count")
	}
	return &Filter{Seed: seed, K: k, bits: bitset.New(m)}
}

// NewWithBitsPerElement sizes a filter for n elements at b bits per
// element, using the accompanying hash count (e.g. the paper's 4/3 and
// 8/5 operating points). If k <= 0 the theoretically optimal
// k = round(b·ln 2) is used.
func NewWithBitsPerElement(seed uint64, n int, bitsPerElement float64, k int) *Filter {
	if n <= 0 || bitsPerElement <= 0 {
		panic("bloom: invalid sizing")
	}
	m := int(math.Ceil(bitsPerElement * float64(n)))
	if k <= 0 {
		k = int(math.Round(bitsPerElement * math.Ln2))
		if k < 1 {
			k = 1
		}
	}
	return New(seed, m, k)
}

// FromSet builds a filter summarizing every key in s.
func FromSet(seed uint64, s *keyset.Set, bitsPerElement float64, k int) *Filter {
	n := s.Len()
	if n == 0 {
		n = 1
	}
	f := NewWithBitsPerElement(seed, n, bitsPerElement, k)
	s.Each(f.Add)
	return f
}

// M returns the filter width in bits.
func (f *Filter) M() int { return f.bits.Len() }

// N returns the number of elements inserted.
func (f *Filter) N() int { return f.ninact }

// Add inserts key. O(k); incremental by nature, as §3 requires of the
// searchable summaries. Probes step h += H2 and reduce with Lemire's
// multiply-shift instead of a per-probe `% m` division — the probe
// sequence equals Pair.Probe(i, m) for i = 0..K−1.
func (f *Filter) Add(key uint64) {
	pr := hashing.HashPair(f.Seed, key)
	m := uint64(f.bits.Len())
	h := pr.H1
	for i := 0; i < f.K; i++ {
		f.bits.Set(int(hashing.Reduce(h, m)))
		h += pr.H2
	}
	f.ninact++
}

// Contains reports whether key may be in the summarized set. False
// positives occur with probability ≈ FalsePositiveRate; false negatives
// never occur.
func (f *Filter) Contains(key uint64) bool {
	pr := hashing.HashPair(f.Seed, key)
	m := uint64(f.bits.Len())
	h := pr.H1
	for i := 0; i < f.K; i++ {
		if !f.bits.Test(int(hashing.Reduce(h, m))) {
			return false
		}
		h += pr.H2
	}
	return true
}

// Missing returns the elements of local that the filter reports as absent
// from the summarized set — the candidate transmissions S_local − S_summary.
// By the no-false-negative property the result is a subset of the true
// difference.
func (f *Filter) Missing(local *keyset.Set) []uint64 {
	var out []uint64
	local.Each(func(k uint64) {
		if !f.Contains(k) {
			out = append(out, k)
		}
	})
	return out
}

// FalsePositiveRate predicts f = (1 − e^{−kn/m})^k for the current fill.
func (f *Filter) FalsePositiveRate() float64 {
	return PredictFalsePositiveRate(f.ninact, f.bits.Len(), f.K)
}

// PredictFalsePositiveRate evaluates the §5.2 formula for n elements in m
// bits under k hashes.
func PredictFalsePositiveRate(n, m, k int) float64 {
	if n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// OptimalHashes returns the k minimizing the false positive rate at b
// bits per element: k = b·ln 2, rounded.
func OptimalHashes(bitsPerElement float64) int {
	k := int(math.Round(bitsPerElement * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// FillRatio returns the fraction of set bits (diagnostic).
func (f *Filter) FillRatio() float64 { return f.bits.FillRatio() }

// Union merges another filter built with identical parameters into f, so
// a summary can be maintained over multiple working-set shards.
func (f *Filter) Union(other *Filter) error {
	if other == nil || f.Seed != other.Seed || f.K != other.K || f.M() != other.M() {
		return errors.New("bloom: union of incompatible filters")
	}
	if err := f.bits.Union(other.bits); err != nil {
		return err
	}
	f.ninact += other.ninact
	return nil
}

// wire format: seed (8) | k (4) | n (8) | bitset blob.
func (f *Filter) MarshalBinary() ([]byte, error) {
	bb, err := f.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 20+len(bb))
	binary.LittleEndian.PutUint64(buf[0:], f.Seed)
	binary.LittleEndian.PutUint32(buf[8:], uint32(f.K))
	binary.LittleEndian.PutUint64(buf[12:], uint64(f.ninact))
	copy(buf[20:], bb)
	return buf, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 20 {
		return errors.New("bloom: short buffer")
	}
	k := binary.LittleEndian.Uint32(data[8:])
	if k == 0 || k > 64 {
		return fmt.Errorf("bloom: implausible hash count %d", k)
	}
	f.Seed = binary.LittleEndian.Uint64(data[0:])
	f.K = int(k)
	f.ninact = int(binary.LittleEndian.Uint64(data[12:]))
	f.bits = new(bitset.Set)
	if err := f.bits.UnmarshalBinary(data[20:]); err != nil {
		return err
	}
	if f.bits.Len() == 0 {
		return errors.New("bloom: zero-width filter")
	}
	return nil
}

// Scoped is the §5.2 scaling device: a Bloom filter covering only the
// keys ≡ Beta (mod Rho) of a very large working set. A sender uses it to
// locate differences within that residue class; further classes can be
// summarized and shipped incrementally ("pipelined ... for differing
// values of β as needed").
type Scoped struct {
	Beta, Rho uint64
	Filter    *Filter
}

// NewScoped creates a scoped filter for the residue class beta mod rho,
// sized for the expected class population n/rho of an n-element set.
func NewScoped(seed uint64, n int, bitsPerElement float64, k int, beta, rho uint64) *Scoped {
	if rho == 0 {
		panic("bloom: zero modulus")
	}
	if beta >= rho {
		panic("bloom: beta out of range")
	}
	classN := n / int(rho)
	if classN < 1 {
		classN = 1
	}
	return &Scoped{Beta: beta, Rho: rho, Filter: NewWithBitsPerElement(seed, classN, bitsPerElement, k)}
}

// Add inserts key if it belongs to the residue class, reporting whether it
// was in scope.
func (s *Scoped) Add(key uint64) bool {
	if key%s.Rho != s.Beta {
		return false
	}
	s.Filter.Add(key)
	return true
}

// InScope reports whether key belongs to the summarized residue class.
func (s *Scoped) InScope(key uint64) bool { return key%s.Rho == s.Beta }

// Contains reports membership for in-scope keys; out-of-scope keys return
// false along with ok=false, meaning this summary cannot speak for them.
func (s *Scoped) Contains(key uint64) (member, ok bool) {
	if !s.InScope(key) {
		return false, false
	}
	return s.Filter.Contains(key), true
}

// Missing returns in-scope elements of local that the scoped summary
// reports absent.
func (s *Scoped) Missing(local *keyset.Set) []uint64 {
	var out []uint64
	local.Each(func(k uint64) {
		if member, ok := s.Contains(k); ok && !member {
			out = append(out, k)
		}
	})
	return out
}
