package bloom

import (
	"math"
	"testing"
	"testing/quick"

	"icd/internal/keyset"
	"icd/internal/prng"
)

func TestNoFalseNegatives(t *testing.T) {
	rng := prng.New(1)
	s := keyset.Random(rng, 5000)
	f := FromSet(7, s, 8, 5)
	s.Each(func(k uint64) {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	})
}

// E10: the paper's §5.2 operating points.
func TestPaperFalsePositiveRates(t *testing.T) {
	// Analytic check first.
	if got := PredictFalsePositiveRate(1000, 4000, 3); math.Abs(got-0.147) > 0.002 {
		t.Fatalf("4 bits/elem, 3 hashes: analytic fp = %.4f, paper says 0.147", got)
	}
	if got := PredictFalsePositiveRate(1000, 8000, 5); math.Abs(got-0.022) > 0.001 {
		t.Fatalf("8 bits/elem, 5 hashes: analytic fp = %.4f, paper says 0.022", got)
	}

	// Empirical check.
	rng := prng.New(2)
	const n = 10000
	s := keyset.Random(rng, n)
	for _, tc := range []struct {
		bits float64
		k    int
		want float64
		tol  float64
	}{
		{4, 3, 0.147, 0.02},
		{8, 5, 0.022, 0.006},
	} {
		f := FromSet(3, s, tc.bits, tc.k)
		fp := 0
		const probes = 50000
		for i := 0; i < probes; i++ {
			k := rng.Uint64()
			if s.Contains(k) {
				continue
			}
			if f.Contains(k) {
				fp++
			}
		}
		got := float64(fp) / probes
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%v bits/elem, %d hashes: empirical fp %.4f, want ≈%.3f",
				tc.bits, tc.k, got, tc.want)
		}
		if math.Abs(f.FalsePositiveRate()-tc.want) > tc.tol {
			t.Errorf("FalsePositiveRate() = %.4f, want ≈%.3f", f.FalsePositiveRate(), tc.want)
		}
	}
}

// §5.2: "using four bits per element, we can create filters for 10,000
// packets using just 40,000 bits, which can fit into five 1 KB packets."
func TestPaperSizeClaim(t *testing.T) {
	rng := prng.New(3)
	s := keyset.Random(rng, 10000)
	f := FromSet(1, s, 4, 3)
	if f.M() != 40000 {
		t.Fatalf("M = %d, want 40000", f.M())
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 5*1024+64 {
		t.Fatalf("serialized filter %d bytes, want ≲5KB", len(data))
	}
}

func TestMissingIsSubsetOfTrueDifference(t *testing.T) {
	rng := prng.New(4)
	a := keyset.Random(rng, 3000) // summarized set
	b := a.Clone()                // local set = a plus extras
	for b.Len() < 3600 {
		b.Add(rng.Uint64())
	}
	f := FromSet(9, a, 8, 5)
	missing := f.Missing(b)
	trueDiff := b.Diff(a)
	for _, k := range missing {
		if !trueDiff.Contains(k) {
			t.Fatalf("Missing reported %d which is in the summarized set", k)
		}
	}
	// With fp ≈ 2.2% we should still find the vast majority of the 600.
	if len(missing) < 500 {
		t.Fatalf("found only %d of 600 differences", len(missing))
	}
}

func TestUnion(t *testing.T) {
	rng := prng.New(5)
	s1 := keyset.Random(rng, 500)
	s2 := keyset.Random(rng, 500)
	f1 := New(11, 8000, 5)
	f2 := New(11, 8000, 5)
	s1.Each(f1.Add)
	s2.Each(f2.Add)
	if err := f1.Union(f2); err != nil {
		t.Fatal(err)
	}
	s1.Each(func(k uint64) {
		if !f1.Contains(k) {
			t.Fatalf("union lost %d from s1", k)
		}
	})
	s2.Each(func(k uint64) {
		if !f1.Contains(k) {
			t.Fatalf("union lost %d from s2", k)
		}
	})
	if f1.N() != 1000 {
		t.Fatalf("N = %d", f1.N())
	}
}

func TestUnionIncompatible(t *testing.T) {
	a := New(1, 100, 3)
	for _, b := range []*Filter{nil, New(2, 100, 3), New(1, 200, 3), New(1, 100, 4)} {
		if err := a.Union(b); err == nil {
			t.Fatal("incompatible union accepted")
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := prng.New(6)
	s := keyset.Random(rng, 1000)
	f := FromSet(13, s, 8, 5)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Seed != f.Seed || g.K != f.K || g.M() != f.M() || g.N() != f.N() {
		t.Fatal("header mismatch")
	}
	s.Each(func(k uint64) {
		if !g.Contains(k) {
			t.Fatalf("round-tripped filter lost %d", k)
		}
	})
}

func TestUnmarshalGarbage(t *testing.T) {
	var f Filter
	for i, data := range [][]byte{nil, {1}, make([]byte, 20), make([]byte, 28)} {
		if err := f.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { New(1, 0, 3) },
		func() { New(1, 100, 0) },
		func() { NewWithBitsPerElement(1, 0, 8, 5) },
		func() { NewWithBitsPerElement(1, 10, 0, 5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestOptimalHashes(t *testing.T) {
	if got := OptimalHashes(8); got != 6 { // 8 ln2 ≈ 5.55 → 6
		t.Fatalf("OptimalHashes(8) = %d", got)
	}
	if got := OptimalHashes(0.1); got != 1 {
		t.Fatalf("OptimalHashes(0.1) = %d", got)
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(1, 100, 3)
	if f.FalsePositiveRate() != 0 {
		t.Fatal("empty filter fp != 0")
	}
	if f.Contains(42) {
		t.Fatal("empty filter contains something")
	}
}

// Property: no false negatives, ever.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64, seed uint64) bool {
		fl := New(seed, 512, 4)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Missing never reports summarized elements.
func TestQuickMissingSound(t *testing.T) {
	f := func(sumKeys, localKeys []uint16) bool {
		sum := keyset.New(len(sumKeys))
		for _, k := range sumKeys {
			sum.Add(uint64(k))
		}
		local := keyset.New(len(localKeys))
		for _, k := range localKeys {
			local.Add(uint64(k))
		}
		fl := FromSet(21, sum, 8, 5)
		for _, k := range fl.Missing(local) {
			if sum.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScopedFilter(t *testing.T) {
	rng := prng.New(7)
	s := keyset.Random(rng, 8000)
	const rho = 8
	sc := NewScoped(31, s.Len(), 8, 5, 3, rho)
	added := 0
	s.Each(func(k uint64) {
		if sc.Add(k) {
			added++
		}
	})
	if added == 0 {
		t.Fatal("nothing in scope")
	}
	want := s.Len() / rho
	if added < want/2 || added > want*2 {
		t.Fatalf("in-scope count %d, want ≈%d", added, want)
	}
	// No false negatives for in-scope members.
	s.Each(func(k uint64) {
		if !sc.InScope(k) {
			return
		}
		member, ok := sc.Contains(k)
		if !ok || !member {
			t.Fatalf("scoped false negative for %d", k)
		}
	})
	// Out-of-scope keys are answered with ok=false.
	if _, ok := sc.Contains(4 + rho); ok {
		t.Fatal("out-of-scope key answered")
	}
	// Missing only reports in-scope keys.
	local := s.Clone()
	for local.Len() < 9000 {
		local.Add(rng.Uint64())
	}
	for _, k := range sc.Missing(local) {
		if !sc.InScope(k) {
			t.Fatalf("Missing reported out-of-scope key %d", k)
		}
		if s.Contains(k) {
			t.Fatalf("Missing reported summarized key %d", k)
		}
	}
}

func TestScopedPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewScoped(1, 10, 8, 5, 0, 0) },
		func() { NewScoped(1, 10, 8, 5, 9, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(1, 8*23968, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	rng := prng.New(1)
	s := keyset.Random(rng, 23968)
	f := FromSet(1, s, 8, 5)
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Contains(uint64(i))
	}
	_ = sink
}

// BenchmarkBloomFalsePositives reports the measured false-positive rate at
// the paper's two operating points (E10) via custom metrics.
func BenchmarkBloomFalsePositives(b *testing.B) {
	rng := prng.New(9)
	s := keyset.Random(rng, 10000)
	for _, tc := range []struct {
		name string
		bits float64
		k    int
	}{
		{"4bits3hashes", 4, 3},
		{"8bits5hashes", 8, 5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			f := FromSet(1, s, tc.bits, tc.k)
			fp, probes := 0, 0
			for i := 0; i < b.N; i++ {
				k := rng.Uint64()
				if s.Contains(k) {
					continue
				}
				probes++
				if f.Contains(k) {
					fp++
				}
			}
			if probes > 0 {
				b.ReportMetric(float64(fp)/float64(probes), "fp-rate")
			}
		})
	}
}
