// Package recode implements the recoded-content machinery of §5.4.2: the
// device that lets a peer holding only *partial* content act as a useful,
// fountain-like sender.
//
// A recoded symbol is the bitwise XOR of a set of already-encoded symbols
// and is shipped with the explicit list of the encoded-symbol identifiers
// it blends ("a recoded symbol must enumerate the encoded symbols from
// which it was produced ... these lists can be stored concisely in packet
// headers"); degrees are capped (the paper uses 50) to keep that list
// short. Decoding uses the same substitution rule as the underlying
// sparse parity-check code, one level up: a recoded symbol with exactly
// one constituent the receiver lacks immediately yields that encoded
// symbol; others are buffered and resolve as the working set grows.
//
// Degree selection is where reconciliation information pays off. With
// containment c = |A∩B|/|B| (receiver A, sender B), the probability that
// a degree-d recoded symbol drawn uniformly from B's n symbols is
// *immediately* useful is
//
//	P(d) = C(cn, d−1)·(1−c)n / C(n, d),
//
// choosing d−1 constituents the receiver has and exactly one it lacks.
// The ratio test P(d+1) ≥ P(d) ⇔ d ≤ (cn+1)/(n−cn) shows P is unimodal
// with maximum at
//
//	d* = ⌊(cn+1)/(n−cn)⌋ + 1,
//
// which increases with c exactly as the paper's prose says ("as recoded
// symbols are received, correlation naturally increases and the target
// degree increases accordingly"). (The formula printed in the paper's
// §5.4.2 is garbled by typesetting; the derivation above reconstructs
// it.) Because maximizing immediate utility risks fully redundant
// symbols, §5.4.2 uses d* only as a *lower limit* and draws degrees
// between d* and the cap from the irregular distribution; the Recode/MW
// strategy of §6.2 instead rescales an oblivious draw d to ⌊d/(1−c)⌋.
// Both policies are provided.
package recode

import (
	"errors"
	"fmt"
	"math"

	"icd/internal/fountain"
	"icd/internal/keyset"
	"icd/internal/prng"
	"icd/internal/xorblock"
)

// MaxDegree is the paper's recoding degree limit (§6.1: "a degree limit
// of 50").
const MaxDegree = 50

// Symbol is one recoded symbol: the identifiers of the encoded symbols
// XORed together, and optionally the XOR payload (nil when the caller
// works at the symbol-identity level, as the transfer simulator does).
type Symbol struct {
	IDs  []uint64
	Data []byte
}

// Degree returns the number of blended encoded symbols.
func (s Symbol) Degree() int { return len(s.IDs) }

// OptimalImmediateDegree returns d*, the degree maximizing the
// probability that a recoded symbol is immediately useful, given the
// sender's working-set size n and the containment estimate c ∈ [0,1].
// The result is clamped to [1, n].
func OptimalImmediateDegree(n int, c float64) int {
	if n <= 1 {
		return 1
	}
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	k := c * float64(n) // symbols the receiver already has
	den := float64(n) - k
	if den < 1 { // c ≈ 1: everything known, max blending
		return n
	}
	d := int((k+1)/den) + 1
	if d < 1 {
		d = 1
	}
	if d > n {
		d = n
	}
	return d
}

// ImmediateUsefulProbability evaluates P(d) above (useful for tests and
// for the ablation bench). Computed in log space to avoid overflow.
func ImmediateUsefulProbability(n int, c float64, d int) float64 {
	k := int(c*float64(n) + 0.5)
	if d < 1 || d > n || n-k < 1 || d-1 > k {
		return 0
	}
	// P = C(k, d-1) * (n-k) / C(n, d)
	// log C(a, b) via sum of logs; n is small enough in practice (≤ 10^6).
	logC := func(a, b int) float64 {
		if b < 0 || b > a {
			return math.Inf(-1)
		}
		var s float64
		for i := 0; i < b; i++ {
			s += math.Log(float64(a-i)) - math.Log(float64(b-i))
		}
		return s
	}
	lp := logC(k, d-1) + math.Log(float64(n-k)) - logC(n, d)
	return math.Exp(lp)
}

// DegreePolicy selects how a sender chooses recoded degrees.
type DegreePolicy int

const (
	// Oblivious draws from the irregular recoding distribution with no
	// knowledge of the receiver (the plain Recode strategy of §6.2).
	Oblivious DegreePolicy = iota
	// MinwiseScaled rescales an oblivious draw d to ⌊d/(1−c)⌋, capped —
	// the Recode/MW strategy of §6.2.
	MinwiseScaled
	// LowerBounded draws from the distribution but clamps below by the
	// optimal immediate degree d* — §5.4.2's "we use this value of d as a
	// lower limit on the actual degrees generated".
	LowerBounded
	// CoverageAdaptive ignores the c argument and instead tracks an
	// estimate of how much of the domain the receiver has already
	// obtained over this connection (q̂ = sent/|domain|), choosing the
	// optimal degree d*(q̂) each time. This is §5.4.2's dynamic note —
	// "as recoded symbols are received, correlation naturally increases
	// and the target degree increases accordingly" — and is the policy
	// the Recode/BF strategy uses: its Bloom-filtered domain starts with
	// containment exactly 0 (every symbol useful, so early transmissions
	// are degree-1: §6.1's "a partial sender can find symbols of
	// guaranteed utility ... recoding is not generally necessary"), and
	// degrees rise as duplicates become likely, without any summary
	// updates from the receiver.
	CoverageAdaptive
)

// String names the policy as the paper's §6.2 strategy table does.
func (p DegreePolicy) String() string {
	switch p {
	case Oblivious:
		return "oblivious"
	case MinwiseScaled:
		return "minwise-scaled"
	case LowerBounded:
		return "lower-bounded"
	case CoverageAdaptive:
		return "coverage-adaptive"
	default:
		return fmt.Sprintf("DegreePolicy(%d)", int(p))
	}
}

// Recoder generates recoded symbols from a sender's working set (or a
// reconciled subset of it — the caller chooses the domain, which is how
// Recode/BF restricts blending to symbols the receiver lacks).
//
// Symbol buffers (constituent lists and payloads) are drawn from
// internal freelists; a caller that returns finished symbols via Release
// makes the steady-state Next path allocation-free. Callers that retain
// symbols simply never release them. Not safe for concurrent use.
type Recoder struct {
	domain   []uint64 // snapshot of blendable encoded-symbol ids
	payloads map[uint64][]byte
	dist     *fountain.Distribution
	maxDeg   int
	rng      *prng.Rand
	sent     int     // transmissions so far
	coverage float64 // estimated fraction of domain delivered (CoverageAdaptive)

	idx        []int      // sampling scratch, reused across symbols
	freeIDs    [][]uint64 // released constituent lists
	freeData   [][]byte   // released payload buffers
	payloadLen int        // uniform payload size (payload mode only)
}

// Options configure a Recoder.
type Options struct {
	// Dist is the recoding degree distribution; nil uses the §6.1 default
	// (heavy-tailed, capped at MaxDegree) over the domain size.
	Dist *fountain.Distribution
	// MaxDegree caps degrees; 0 uses MaxDegree (50).
	MaxDegree int
	// Payloads, if non-nil, maps encoded symbol id → payload so that Next
	// can produce real XOR data. If nil the Recoder works at identity
	// level and emits nil Data.
	Payloads map[uint64][]byte
}

// NewRecoder snapshots the domain and prepares a generator.
func NewRecoder(rng *prng.Rand, domain *keyset.Set, opt Options) (*Recoder, error) {
	if domain.Len() == 0 {
		return nil, errors.New("recode: empty domain")
	}
	maxDeg := opt.MaxDegree
	if maxDeg <= 0 {
		maxDeg = MaxDegree
	}
	if maxDeg > domain.Len() {
		maxDeg = domain.Len()
	}
	dist := opt.Dist
	if dist == nil {
		dist = fountain.CappedRobustSoliton(domain.Len(), 0.1, 0.5, maxDeg)
	}
	if dist.MaxDegree() > domain.Len() {
		return nil, fmt.Errorf("recode: distribution max degree %d exceeds domain %d",
			dist.MaxDegree(), domain.Len())
	}
	r := &Recoder{
		domain:   domain.Keys(),
		payloads: opt.Payloads,
		dist:     dist,
		maxDeg:   maxDeg,
		rng:      rng,
	}
	if r.payloads != nil {
		for i, id := range r.domain {
			p, ok := r.payloads[id]
			if !ok {
				return nil, fmt.Errorf("recode: no payload for domain symbol %d", id)
			}
			if i == 0 {
				r.payloadLen = len(p)
			} else if len(p) != r.payloadLen {
				return nil, fmt.Errorf("recode: payload for symbol %d is %d bytes, want %d",
					id, len(p), r.payloadLen)
			}
		}
	}
	return r, nil
}

// DomainSize returns the number of blendable symbols.
func (r *Recoder) DomainSize() int { return len(r.domain) }

// Next emits one recoded symbol under the given policy. c is the
// containment estimate (ignored by Oblivious). Degrees are clamped to
// [1, min(maxDegree, |domain|)].
func (r *Recoder) Next(policy DegreePolicy, c float64) Symbol {
	d := r.dist.Draw(r.rng)
	switch policy {
	case Oblivious:
		// keep d
	case MinwiseScaled:
		if c > 0 {
			if c >= 1 {
				d = r.maxDeg
			} else {
				d = int(float64(d) / (1 - c))
			}
		}
	case LowerBounded:
		if dOpt := OptimalImmediateDegree(len(r.domain), c); d < dOpt {
			d = dOpt
		}
	case CoverageAdaptive:
		d = OptimalImmediateDegree(len(r.domain), r.coverage)
	}
	r.sent++
	// Advance the self-consistent coverage estimate: the sender credits
	// itself with the expected immediate usefulness of what it just sent.
	// This deliberately under-counts (buffered symbols that resolve later
	// are ignored), keeping the degree schedule conservative so it can
	// never run far ahead of the receiver's true state.
	if m := float64(len(r.domain)); r.coverage < 1-1/m {
		r.coverage += ImmediateUsefulProbability(len(r.domain), r.coverage, d) / m
		if max := 1 - 1/m; r.coverage > max {
			r.coverage = max
		}
	}
	if d > r.maxDeg {
		d = r.maxDeg
	}
	if d > len(r.domain) {
		d = len(r.domain)
	}
	if d < 1 {
		d = 1
	}
	r.idx = r.rng.SampleIntsInto(len(r.domain), d, r.idx)
	var ids []uint64
	if n := len(r.freeIDs); n > 0 {
		ids = r.freeIDs[n-1][:0]
		r.freeIDs = r.freeIDs[:n-1]
	} else {
		ids = make([]uint64, 0, r.maxDeg)
	}
	for _, j := range r.idx[:d] {
		ids = append(ids, r.domain[j])
	}
	sym := Symbol{IDs: ids}
	if r.payloads != nil {
		first := r.payloads[ids[0]]
		var data []byte
		if n := len(r.freeData); n > 0 {
			data = r.freeData[n-1]
			r.freeData = r.freeData[:n-1]
		} else {
			data = make([]byte, len(first))
		}
		copy(data, first)
		for _, id := range ids[1:] {
			xorblock.XorInto(data, r.payloads[id])
		}
		sym.Data = data
	}
	return sym
}

// Release returns a symbol's buffers to the recoder's freelists. The
// caller must not use sym afterwards. Buffers that did not come from
// this recoder (wrong capacity or size) are ignored.
func (r *Recoder) Release(sym Symbol) {
	if cap(sym.IDs) >= r.maxDeg {
		r.freeIDs = append(r.freeIDs, sym.IDs[:0])
	}
	if len(sym.Data) == r.payloadLen && r.payloads != nil {
		r.freeData = append(r.freeData, sym.Data)
	}
}

// Decoder peels recoded symbols back into encoded symbols. It mirrors the
// fountain decoder one level up: known encoded symbols reduce incoming
// recoded symbols; degree-1 residuals recover a new encoded symbol, which
// cascades through the buffer. The §5.4.2 worked example (z1 = y13,
// z2 = y5⊕y8, z3 = y5⊕y13 recovering y13, then y5, then y8) is exactly
// this process and is reproduced in the tests.
type Decoder struct {
	known    map[uint64][]byte // encoded id -> payload (nil in identity mode)
	pending  map[uint64][]int
	buf      []*pendingRec
	withData bool

	received  int
	redundant int
	recovered int // encoded symbols recovered via recoding (not direct adds)

	unknowns []uint64 // per-Add scratch for the unresolved-id set
	queue    []recRec
	spare    [][]byte // payload buffers freed by redundant symbols, reused
}

type pendingRec struct {
	data    []byte
	unknown []uint64
	dead    bool
}

type recRec struct {
	id   uint64
	data []byte
}

// drop removes id from the unknown set, reporting whether it was there.
func (pr *pendingRec) drop(id uint64) bool {
	for i, u := range pr.unknown {
		if u == id {
			last := len(pr.unknown) - 1
			pr.unknown[i] = pr.unknown[last]
			pr.unknown = pr.unknown[:last]
			return true
		}
	}
	return false
}

// NewDecoder creates a recode decoder. withData selects payload tracking;
// identity-level users (the transfer simulator) pass false.
func NewDecoder(withData bool) *Decoder {
	return &Decoder{
		known:    make(map[uint64][]byte),
		pending:  make(map[uint64][]int),
		withData: withData,
	}
}

// AddKnown registers an encoded symbol the receiver already holds (its
// initial working set, or a regular symbol received directly). data may
// be nil in identity mode. Newly known symbols cascade through buffered
// recoded symbols; the ids of encoded symbols recovered as a consequence
// are returned.
func (d *Decoder) AddKnown(id uint64, data []byte) []uint64 {
	if _, ok := d.known[id]; ok {
		return nil
	}
	return d.propagate(id, data, false)
}

// Knows reports whether the receiver holds encoded symbol id.
func (d *Decoder) Knows(id uint64) bool {
	_, ok := d.known[id]
	return ok
}

// KnownCount returns the number of encoded symbols held.
func (d *Decoder) KnownCount() int { return len(d.known) }

// KnownIDs returns the ids of all encoded symbols held, in no particular
// order.
func (d *Decoder) KnownIDs() []uint64 {
	ids := make([]uint64, 0, len(d.known))
	for id := range d.known {
		ids = append(ids, id)
	}
	return ids
}

// Payload returns the stored payload for an encoded symbol (nil in
// identity mode or if unknown).
func (d *Decoder) Payload(id uint64) []byte { return d.known[id] }

// Received returns the number of recoded symbols ingested.
func (d *Decoder) Received() int { return d.received }

// Redundant returns the number of recoded symbols that were fully
// reducible on arrival (contributed nothing, §5.4.2's "completely
// redundant symbols").
func (d *Decoder) Redundant() int { return d.redundant }

// RecoveredViaRecoding returns the number of encoded symbols obtained by
// peeling recoded symbols (excludes AddKnown).
func (d *Decoder) RecoveredViaRecoding() int { return d.recovered }

// Buffered returns the number of recoded symbols still waiting on two or
// more unknown constituents.
func (d *Decoder) Buffered() int {
	n := 0
	for _, p := range d.buf {
		if !p.dead {
			n++
		}
	}
	return n
}

// Add ingests one recoded symbol, returning the ids of encoded symbols
// newly recovered (directly or by cascade). The decoder copies sym.Data;
// the caller keeps ownership of the symbol's buffers.
func (d *Decoder) Add(sym Symbol) ([]uint64, error) {
	if len(sym.IDs) == 0 {
		return nil, errors.New("recode: empty recoded symbol")
	}
	if d.withData && sym.Data == nil {
		return nil, errors.New("recode: payload-tracking decoder got nil data")
	}
	d.received++

	var data []byte
	if d.withData {
		data = d.getBuf(len(sym.Data))
		copy(data, sym.Data)
	}
	unknown := d.unknowns[:0]
	for _, id := range sym.IDs {
		if payload, ok := d.known[id]; ok {
			if d.withData {
				if len(payload) != len(data) {
					d.spare = append(d.spare, data)
					return nil, fmt.Errorf("recode: payload size mismatch for %d", id)
				}
				xorblock.XorInto(data, payload)
			}
		} else {
			// XOR semantics: duplicate ids cancel. Degrees are capped, so
			// the linear scan beats a per-symbol map allocation.
			if i := indexOf(unknown, id); i >= 0 {
				last := len(unknown) - 1
				unknown[i] = unknown[last]
				unknown = unknown[:last]
			} else {
				unknown = append(unknown, id)
			}
		}
	}
	d.unknowns = unknown[:0]
	switch len(unknown) {
	case 0:
		d.redundant++
		if data != nil {
			d.spare = append(d.spare, data)
		}
		return nil, nil
	case 1:
		return d.propagate(unknown[0], data, true), nil
	default:
		pr := &pendingRec{data: data, unknown: append([]uint64(nil), unknown...)}
		d.buf = append(d.buf, pr)
		at := len(d.buf) - 1
		for _, id := range pr.unknown {
			d.pending[id] = append(d.pending[id], at)
		}
		return nil, nil
	}
}

func indexOf(s []uint64, v uint64) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// getBuf returns an n-byte scratch buffer, reusing buffers surrendered by
// redundant symbols so a saturated decoder stops allocating.
func (d *Decoder) getBuf(n int) []byte {
	if m := len(d.spare); m > 0 {
		b := d.spare[m-1]
		d.spare = d.spare[:m-1]
		if len(b) == n {
			return b
		}
		// size changed mid-stream (only possible across contents); drop it
	}
	return make([]byte, n)
}

// propagate records a newly known encoded symbol and runs the cascade.
// viaRecode marks whether the root recovery came from a recoded symbol.
func (d *Decoder) propagate(id uint64, data []byte, viaRecode bool) []uint64 {
	var out []uint64
	queue := append(d.queue[:0], recRec{id, data})
	first := true
	for head := 0; head < len(queue); head++ {
		r := queue[head]
		if _, ok := d.known[r.id]; ok {
			// Another cascade path got here first; r.data belongs to a dead
			// pending symbol and can be recycled.
			if r.data != nil && head > 0 {
				d.spare = append(d.spare, r.data)
			}
			continue
		}
		d.known[r.id] = r.data
		if viaRecode || !first {
			d.recovered++
			out = append(out, r.id)
		}
		first = false
		waiters := d.pending[r.id]
		delete(d.pending, r.id)
		for _, w := range waiters {
			pr := d.buf[w]
			if pr.dead || !pr.drop(r.id) {
				continue
			}
			if d.withData && r.data != nil {
				xorblock.XorInto(pr.data, r.data)
			}
			switch len(pr.unknown) {
			case 1:
				pr.dead = true
				queue = append(queue, recRec{pr.unknown[0], pr.data})
			case 0:
				pr.dead = true
				if pr.data != nil {
					d.spare = append(d.spare, pr.data)
				}
			}
		}
	}
	d.queue = queue[:0] // retain capacity for the next cascade
	if !viaRecode && len(out) == 0 {
		// AddKnown of a fresh id with no cascade: report nothing, but the
		// id itself is now known (callers track that via Knows).
		return nil
	}
	return out
}
