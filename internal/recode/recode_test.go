package recode

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"icd/internal/fountain"
	"icd/internal/keyset"
	"icd/internal/prng"
)

func TestOptimalImmediateDegree(t *testing.T) {
	// c = 0: receiver knows nothing of the sender's symbols → degree 1.
	if d := OptimalImmediateDegree(1000, 0); d != 1 {
		t.Fatalf("c=0: d* = %d, want 1", d)
	}
	// Degree must increase with c (the paper's prose property).
	prev := 0
	for _, c := range []float64{0, 0.2, 0.5, 0.8, 0.9, 0.95, 0.99} {
		d := OptimalImmediateDegree(1000, c)
		if d < prev {
			t.Fatalf("d* decreased: c=%v d=%d prev=%d", c, d, prev)
		}
		prev = d
	}
	// c = 0.9 on n=1000: d* = floor((900+1)/100)+1 = 10.
	if d := OptimalImmediateDegree(1000, 0.9); d != 10 {
		t.Fatalf("c=0.9: d* = %d, want 10", d)
	}
	// Clamping.
	if d := OptimalImmediateDegree(1, 0.5); d != 1 {
		t.Fatalf("n=1: d* = %d", d)
	}
	if d := OptimalImmediateDegree(100, 1.0); d != 100 {
		t.Fatalf("c=1: d* = %d, want n", d)
	}
	if d := OptimalImmediateDegree(100, -0.5); d != 1 {
		t.Fatalf("c<0: d* = %d, want 1", d)
	}
}

func TestOptimalDegreeMaximizesProbability(t *testing.T) {
	// d* must beat its neighbors under the exact P(d).
	for _, tc := range []struct {
		n int
		c float64
	}{
		{200, 0.3}, {200, 0.6}, {500, 0.9}, {1000, 0.5},
	} {
		d := OptimalImmediateDegree(tc.n, tc.c)
		p := ImmediateUsefulProbability(tc.n, tc.c, d)
		pm := ImmediateUsefulProbability(tc.n, tc.c, d-1)
		pp := ImmediateUsefulProbability(tc.n, tc.c, d+1)
		const eps = 1e-9
		if p+eps < pm || p+eps < pp {
			t.Errorf("n=%d c=%v: P(%d)=%.6g not maximal (P(%d)=%.6g, P(%d)=%.6g)",
				tc.n, tc.c, d, p, d-1, pm, d+1, pp)
		}
	}
}

func TestImmediateUsefulProbabilityEdges(t *testing.T) {
	if p := ImmediateUsefulProbability(100, 0.5, 0); p != 0 {
		t.Fatalf("d=0: %v", p)
	}
	if p := ImmediateUsefulProbability(100, 1.0, 1); p != 0 {
		t.Fatalf("c=1,d=1: %v", p) // nothing unknown → cannot be useful
	}
	// c=0, d=1: always useful.
	if p := ImmediateUsefulProbability(100, 0, 1); math.Abs(p-1) > 1e-9 {
		t.Fatalf("c=0,d=1: %v, want 1", p)
	}
	// Larger d with c=0 → cannot have d−1 known constituents.
	if p := ImmediateUsefulProbability(100, 0, 2); p != 0 {
		t.Fatalf("c=0,d=2: %v, want 0", p)
	}
}

func TestRecoderDegreeBounds(t *testing.T) {
	rng := prng.New(1)
	domain := keyset.Random(rng, 200)
	r, err := NewRecoder(rng, domain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		s := r.Next(Oblivious, 0)
		if s.Degree() < 1 || s.Degree() > MaxDegree {
			t.Fatalf("degree %d out of [1,%d]", s.Degree(), MaxDegree)
		}
		seen := map[uint64]bool{}
		for _, id := range s.IDs {
			if !domain.Contains(id) || seen[id] {
				t.Fatalf("bad constituent set %v", s.IDs)
			}
			seen[id] = true
		}
	}
}

func TestMinwiseScaledRaisesDegree(t *testing.T) {
	rng := prng.New(2)
	domain := keyset.Random(rng, 500)
	r, err := NewRecoder(rng, domain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	meanAt := func(policy DegreePolicy, c float64) float64 {
		var sum float64
		const trials = 3000
		for i := 0; i < trials; i++ {
			sum += float64(r.Next(policy, c).Degree())
		}
		return sum / trials
	}
	base := meanAt(Oblivious, 0)
	scaled := meanAt(MinwiseScaled, 0.8)
	if scaled < base*1.5 {
		t.Fatalf("minwise scaling did not raise degrees: base %.2f, c=0.8 %.2f", base, scaled)
	}
	capped := meanAt(MinwiseScaled, 0.999)
	if capped > MaxDegree {
		t.Fatalf("degrees exceeded cap: %.2f", capped)
	}
}

func TestLowerBoundedPolicy(t *testing.T) {
	rng := prng.New(3)
	domain := keyset.Random(rng, 400)
	r, err := NewRecoder(rng, domain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := 0.95
	dOpt := OptimalImmediateDegree(domain.Len(), c)
	for i := 0; i < 1000; i++ {
		if d := r.Next(LowerBounded, c).Degree(); d < dOpt && d < MaxDegree {
			t.Fatalf("degree %d below lower bound %d", d, dOpt)
		}
	}
}

func TestRecoderValidation(t *testing.T) {
	rng := prng.New(4)
	if _, err := NewRecoder(rng, keyset.New(0), Options{}); err == nil {
		t.Fatal("empty domain accepted")
	}
	domain := keyset.Random(rng, 10)
	if _, err := NewRecoder(rng, domain, Options{Dist: fountain.IdealSoliton(100)}); err == nil {
		t.Fatal("oversized distribution accepted")
	}
	// Payload map missing an id.
	if _, err := NewRecoder(rng, domain, Options{Payloads: map[uint64][]byte{}}); err == nil {
		t.Fatal("incomplete payload map accepted")
	}
}

// TestPaperWorkedExample reproduces §5.4.2 exactly: "a peer with output
// symbols y5, y8 and y13 can generate recoded symbols z1 = y13,
// z2 = y5 ⊕ y8 and z3 = y5 ⊕ y13. A peer that receives z1, z2 and z3 can
// immediately recover y13. Then by substituting y13 into z3, the peer can
// recover y5, and similarly, can recover y8 from z2."
func TestPaperWorkedExample(t *testing.T) {
	y5 := []byte{0x05}
	y8 := []byte{0x08}
	y13 := []byte{0x13}
	z1 := Symbol{IDs: []uint64{13}, Data: y13}
	z2 := Symbol{IDs: []uint64{5, 8}, Data: []byte{0x05 ^ 0x08}}
	z3 := Symbol{IDs: []uint64{5, 13}, Data: []byte{0x05 ^ 0x13}}

	d := NewDecoder(true)
	// z2 buffers (two unknowns), z3 buffers, z1 recovers y13 and cascades.
	got, err := d.Add(z2)
	if err != nil || len(got) != 0 {
		t.Fatalf("z2: got %v, %v", got, err)
	}
	got, err = d.Add(z3)
	if err != nil || len(got) != 0 {
		t.Fatalf("z3: got %v, %v", got, err)
	}
	got, err = d.Add(z1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("cascade recovered %v, want all three", got)
	}
	if !bytes.Equal(d.Payload(13), y13) || !bytes.Equal(d.Payload(5), y5) || !bytes.Equal(d.Payload(8), y8) {
		t.Fatalf("payloads wrong: y5=%x y8=%x y13=%x", d.Payload(5), d.Payload(8), d.Payload(13))
	}
	if d.RecoveredViaRecoding() != 3 {
		t.Fatalf("RecoveredViaRecoding = %d", d.RecoveredViaRecoding())
	}
}

func TestDecoderRedundant(t *testing.T) {
	d := NewDecoder(false)
	d.AddKnown(1, nil)
	d.AddKnown(2, nil)
	got, err := d.Add(Symbol{IDs: []uint64{1, 2}})
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
	if d.Redundant() != 1 {
		t.Fatalf("Redundant = %d", d.Redundant())
	}
}

func TestDecoderIdentityMode(t *testing.T) {
	d := NewDecoder(false)
	d.AddKnown(10, nil)
	got, err := d.Add(Symbol{IDs: []uint64{10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("got %v, want [20]", got)
	}
	if !d.Knows(20) || d.KnownCount() != 2 {
		t.Fatal("decoder state wrong")
	}
}

func TestDecoderValidation(t *testing.T) {
	d := NewDecoder(true)
	if _, err := d.Add(Symbol{}); err == nil {
		t.Fatal("empty symbol accepted")
	}
	if _, err := d.Add(Symbol{IDs: []uint64{1}}); err == nil {
		t.Fatal("nil data accepted by payload decoder")
	}
}

func TestAddKnownCascades(t *testing.T) {
	d := NewDecoder(false)
	// Buffer a 2-unknown symbol, then AddKnown one of them directly
	// (e.g. a regular symbol arriving from a full sender).
	if _, err := d.Add(Symbol{IDs: []uint64{7, 9}}); err != nil {
		t.Fatal(err)
	}
	if d.Buffered() != 1 {
		t.Fatalf("Buffered = %d", d.Buffered())
	}
	got := d.AddKnown(7, nil)
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("cascade from AddKnown = %v, want [9]", got)
	}
	if d.Buffered() != 0 {
		t.Fatalf("Buffered = %d after cascade", d.Buffered())
	}
	// Duplicate AddKnown is a no-op.
	if got := d.AddKnown(7, nil); got != nil {
		t.Fatalf("duplicate AddKnown returned %v", got)
	}
}

func TestDuplicateIDsCancel(t *testing.T) {
	// XOR semantics: a symbol listing the same unknown id twice reduces
	// to a symbol without it.
	d := NewDecoder(false)
	d.AddKnown(1, nil)
	got, err := d.Add(Symbol{IDs: []uint64{1, 5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("got %v", got)
	}
	if d.Redundant() != 1 {
		t.Fatalf("Redundant = %d (5⊕5 cancels, only known 1 remains)", d.Redundant())
	}
}

// TestEndToEndPartialSender wires a full payload pipeline: sender holds a
// subset of encoded symbols, recodes them to the receiver; the receiver
// recovers all of the sender's symbols it lacked.
func TestEndToEndPartialSender(t *testing.T) {
	rng := prng.New(5)
	// Universe: 300 encoded symbols with random payloads.
	payloads := make(map[uint64][]byte)
	universe := keyset.New(300)
	for universe.Len() < 300 {
		id := rng.Uint64()
		if universe.Add(id) {
			p := make([]byte, 32)
			for i := range p {
				p[i] = byte(rng.Uint64())
			}
			payloads[id] = p
		}
	}
	// Sender holds all 300; receiver holds a random 150.
	recv := NewDecoder(true)
	held := universe.Sample(rng, 150)
	heldSet := keyset.FromKeys(held)
	for _, id := range held {
		recv.AddKnown(id, payloads[id])
	}
	c := float64(150) / 300

	r, err := NewRecoder(rng, universe, Options{Payloads: payloads})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; recv.KnownCount() < 300; i++ {
		if i > 30000 {
			t.Fatalf("stalled at %d/300", recv.KnownCount())
		}
		if _, err := recv.Add(r.Next(MinwiseScaled, c)); err != nil {
			t.Fatal(err)
		}
	}
	// Every recovered payload must be exact.
	universe.Each(func(id uint64) {
		if !bytes.Equal(recv.Payload(id), payloads[id]) {
			t.Fatalf("payload mismatch for %d", id)
		}
	})
	_ = heldSet
}

// Property: decoder soundness in identity mode — every id reported
// recovered was a constituent of some received symbol and was not known
// before.
func TestQuickDecoderSoundness(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 20 + rng.Intn(30)
		domain := keyset.Random(rng, n)
		rec, err := NewRecoder(rng, domain, Options{})
		if err != nil {
			return false
		}
		d := NewDecoder(false)
		// Receiver starts with a random half.
		for _, id := range domain.Sample(rng, n/2) {
			d.AddKnown(id, nil)
		}
		for i := 0; i < 5*n; i++ {
			got, err := d.Add(rec.Next(Oblivious, 0))
			if err != nil {
				return false
			}
			for _, id := range got {
				if !domain.Contains(id) {
					return false
				}
			}
		}
		// Known set never exceeds the domain.
		return d.KnownCount() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecoderNext(b *testing.B) {
	rng := prng.New(1)
	domain := keyset.Random(rng, 23968)
	r, err := NewRecoder(rng, domain, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Next(MinwiseScaled, 0.5)
	}
}

func BenchmarkDecoderAdd(b *testing.B) {
	rng := prng.New(2)
	domain := keyset.Random(rng, 10000)
	r, _ := NewRecoder(rng, domain, Options{})
	syms := make([]Symbol, 10000)
	for i := range syms {
		syms[i] = r.Next(Oblivious, 0)
	}
	b.ResetTimer()
	d := NewDecoder(false)
	for i := 0; i < b.N; i++ {
		d.Add(syms[i%len(syms)])
	}
}

func TestRecoderReleaseReuse(t *testing.T) {
	rng := prng.New(3)
	domain := keyset.New(16)
	payloads := map[uint64][]byte{}
	for i := uint64(0); i < 16; i++ {
		domain.Add(i)
		p := make([]byte, 32)
		for j := range p {
			p[j] = byte(i*3 + uint64(j))
		}
		payloads[i] = p
	}
	r, err := NewRecoder(rng, domain, Options{Payloads: payloads})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(true)
	// Stream with immediate Release: the decoder copies, so recycling the
	// symbol's buffers must never corrupt decoded state.
	for i := 0; i < 200 && dec.KnownCount() < 16; i++ {
		sym := r.Next(Oblivious, 0)
		if _, err := dec.Add(sym); err != nil {
			t.Fatal(err)
		}
		r.Release(sym)
	}
	for id, want := range payloads {
		if got := dec.Payload(id); got != nil && !bytesEqual(got, want) {
			t.Fatalf("payload %d corrupted by buffer reuse", id)
		}
	}
	if dec.KnownCount() == 0 {
		t.Fatal("nothing decoded")
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDecoderDuplicateIDsCancel(t *testing.T) {
	// XOR semantics: a recoded symbol listing the same unknown id twice
	// contributes nothing (y ⊕ y = 0); listing it three times is the same
	// as once.
	d := NewDecoder(false)
	d.AddKnown(1, nil)
	if got, err := d.Add(Symbol{IDs: []uint64{2, 2, 1}}); err != nil || len(got) != 0 {
		t.Fatalf("double unknown id: got %v, %v", got, err)
	}
	if d.Redundant() != 1 {
		t.Fatalf("redundant = %d, want 1", d.Redundant())
	}
	got, err := d.Add(Symbol{IDs: []uint64{3, 3, 3, 1}})
	if err != nil || len(got) != 1 || got[0] != 3 {
		t.Fatalf("triple unknown id: got %v, %v", got, err)
	}
}

func TestRecoderNextZeroAlloc(t *testing.T) {
	rng := prng.New(1)
	domain := keyset.Random(prng.New(2), 1000)
	payloads := make(map[uint64][]byte, domain.Len())
	domain.Each(func(id uint64) {
		payloads[id] = make([]byte, 1400)
	})
	rec, err := NewRecoder(rng, domain, Options{Payloads: payloads})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rec.Release(rec.Next(Oblivious, 0))
	}
	if avg := testing.AllocsPerRun(200, func() {
		rec.Release(rec.Next(Oblivious, 0))
	}); avg != 0 {
		t.Fatalf("Recoder.Next steady state allocates %.1f allocs/op, want 0", avg)
	}
}
