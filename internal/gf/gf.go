// Package gf implements arithmetic over the prime field GF(p) with
// p = 2^61 − 1 (a Mersenne prime, so reduction is shift-and-add), plus
// the small amount of linear algebra the characteristic-polynomial set
// reconciliation of §5.1 needs: polynomial evaluation and Gaussian
// elimination.
package gf

import (
	"errors"
	"math/bits"
)

// P is the field modulus, 2^61 − 1.
const P = (1 << 61) - 1

// Elem is a field element in [0, P).
type Elem uint64

// Reduce folds an arbitrary uint64 into the field.
func Reduce(x uint64) Elem {
	x = (x & P) + (x >> 61)
	if x >= P {
		x -= P
	}
	return Elem(x)
}

// Add returns a + b mod p.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Sub returns a − b mod p.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns −a mod p.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns a·b mod p via a 128-bit intermediate.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// lo = low 64 bits; hi has weight 2^64 ≡ 8 (mod p) since 2^61 ≡ 1.
	s := lo & P
	s += lo >> 61
	s = uint64(Reduce(s))
	s += (hi << 3) & P
	s = uint64(Reduce(s))
	s += hi >> 58
	return Reduce(s)
}

// Pow returns a^e mod p.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns a^(p−2) = a^{-1} mod p. It panics on zero.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return Pow(a, P-2)
}

// Poly is a dense polynomial, coefficient i on z^i. The zero-length
// polynomial is the zero polynomial.
type Poly []Elem

// Eval evaluates the polynomial at z (Horner).
func (p Poly) Eval(z Elem) Elem {
	var acc Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = Add(Mul(acc, z), p[i])
	}
	return acc
}

// Degree returns the degree, or −1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// MulPoly returns p·q.
func MulPoly(p, q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			if b == 0 {
				continue
			}
			out[i+j] = Add(out[i+j], Mul(a, b))
		}
	}
	return out
}

// FromRoots builds the monic polynomial Π (z − r) over the given roots —
// the characteristic polynomial of a set.
func FromRoots(roots []Elem) Poly {
	p := Poly{1}
	for _, r := range roots {
		p = MulPoly(p, Poly{Neg(r), 1})
	}
	return p
}

// ErrSingular reports a linear system without a unique solution.
var ErrSingular = errors.New("gf: singular system")

// SolveLinear solves A·x = b over GF(p) by Gaussian elimination with
// partial pivoting; A is row-major n×n and is clobbered, as is b. It
// returns ErrSingular when no unique solution exists.
func SolveLinear(a [][]Elem, b []Elem) ([]Elem, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("gf: malformed system")
	}
	for _, row := range a {
		if len(row) != n {
			return nil, errors.New("gf: non-square matrix")
		}
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := Inv(a[col][col])
		for c := col; c < n; c++ {
			a[col][c] = Mul(a[col][c], inv)
		}
		b[col] = Mul(b[col], inv)
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for c := col; c < n; c++ {
				a[r][c] = Sub(a[r][c], Mul(f, a[col][c]))
			}
			b[r] = Sub(b[r], Mul(f, b[col]))
		}
	}
	return b, nil
}
