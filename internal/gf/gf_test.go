package gf

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestFieldAxiomsQuick(t *testing.T) {
	norm := func(x uint64) Elem { return Reduce(x) }
	// Commutativity, associativity, distributivity.
	f := func(xr, yr, zr uint64) bool {
		x, y, z := norm(xr), norm(yr), norm(zr)
		if Add(x, y) != Add(y, x) || Mul(x, y) != Mul(y, x) {
			return false
		}
		if Add(Add(x, y), z) != Add(x, Add(y, z)) {
			return false
		}
		if Mul(Mul(x, y), z) != Mul(x, Mul(y, z)) {
			return false
		}
		return Mul(x, Add(y, z)) == Add(Mul(x, y), Mul(x, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesBigInt(t *testing.T) {
	p := big.NewInt(P)
	f := func(ar, br uint64) bool {
		a, b := Reduce(ar), Reduce(br)
		got := Mul(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(uint64(b)))
		want.Mod(want, p)
		return uint64(got) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	f := func(xr uint64) bool {
		x := Reduce(xr)
		if x == 0 {
			return true
		}
		return Mul(x, Inv(x)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestSubNeg(t *testing.T) {
	f := func(ar, br uint64) bool {
		a, b := Reduce(ar), Reduce(br)
		if Add(Sub(a, b), b) != a {
			return false
		}
		return Add(a, Neg(a)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	if Pow(2, 10) != 1024 {
		t.Fatalf("2^10 = %d", Pow(2, 10))
	}
	if Pow(5, 0) != 1 {
		t.Fatal("x^0 != 1")
	}
	// Fermat: a^(p-1) = 1.
	for _, a := range []Elem{2, 3, 12345678901} {
		if Pow(a, P-1) != 1 {
			t.Fatalf("%d^(p-1) != 1", a)
		}
	}
}

func TestPolyFromRootsAndEval(t *testing.T) {
	roots := []Elem{5, 9, 100}
	p := FromRoots(roots)
	if p.Degree() != 3 {
		t.Fatalf("degree %d", p.Degree())
	}
	for _, r := range roots {
		if p.Eval(r) != 0 {
			t.Fatalf("poly does not vanish at root %d", r)
		}
	}
	if p.Eval(6) == 0 {
		t.Fatal("poly vanishes off-root")
	}
	// (z-5)(z-9)(z-100) at z=0 is (−5)(−9)(−100) = −4500 mod p.
	if got := p.Eval(0); got != Neg(4500) {
		t.Fatalf("p(0) = %d", got)
	}
}

func TestPolyZero(t *testing.T) {
	var z Poly
	if z.Degree() != -1 || z.Eval(7) != 0 {
		t.Fatal("zero polynomial misbehaves")
	}
	if MulPoly(z, Poly{1, 2}) != nil {
		t.Fatal("0 * p != 0")
	}
}

func TestSolveLinear(t *testing.T) {
	// 2x + 3y = 8 ; x + 4y = 9  → x = 1, y = 2.
	a := [][]Elem{{2, 3}, {1, 4}}
	b := []Elem{8, 9}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("solution %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]Elem{{1, 2}, {2, 4}}
	b := []Elem{3, 6}
	if _, err := SolveLinear(a, b); err == nil {
		t.Fatal("singular accepted")
	}
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := SolveLinear([][]Elem{{1}}, []Elem{1, 2}); err == nil {
		t.Fatal("mismatched accepted")
	}
	if _, err := SolveLinear([][]Elem{{1, 2}}, []Elem{1}); err == nil {
		t.Fatal("non-square accepted")
	}
}

// Property: solving a random nonsingular system and substituting back
// reproduces b.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		// Build a random 4x4 system from the seed.
		n := 4
		s := seed
		next := func() Elem {
			s = s*6364136223846793005 + 1442695040888963407
			return Reduce(s)
		}
		a := make([][]Elem, n)
		orig := make([][]Elem, n)
		for i := range a {
			a[i] = make([]Elem, n)
			orig[i] = make([]Elem, n)
			for j := range a[i] {
				v := next()
				a[i][j] = v
				orig[i][j] = v
			}
		}
		b := make([]Elem, n)
		origB := make([]Elem, n)
		for i := range b {
			b[i] = next()
			origB[i] = b[i]
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return true // singular random matrix: fine
		}
		for i := 0; i < n; i++ {
			var acc Elem
			for j := 0; j < n; j++ {
				acc = Add(acc, Mul(orig[i][j], x[j]))
			}
			if acc != origB[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul(b *testing.B) {
	var acc Elem = 12345
	for i := 0; i < b.N; i++ {
		acc = Mul(acc, 987654321)
	}
	_ = acc
}

func BenchmarkSolve16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 16
		a := make([][]Elem, n)
		rhs := make([]Elem, n)
		s := uint64(i + 1)
		for r := range a {
			a[r] = make([]Elem, n)
			for c := range a[r] {
				s = s*6364136223846793005 + 1442695040888963407
				a[r][c] = Reduce(s)
			}
			rhs[r] = Reduce(s ^ 0xABCDEF)
		}
		SolveLinear(a, rhs)
	}
}
