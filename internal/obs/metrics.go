package obs

// metrics.go holds the three metric primitives. All mutation methods
// are nil-safe and allocation-free: hot paths cache a handle once and
// hammer it with plain atomic operations afterwards.

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value and nil
// are both ready to use; a Counter obtained from a Registry is shared
// by every caller naming the same metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (nil-safe; negative n is a caller bug
// but is not policed on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current total (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level that may move both ways. The zero
// value and nil are both ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add shifts the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: observations land in the
// first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket at the end. Buckets are fixed at construction, so
// Observe is a bounded linear scan plus three atomic updates — no
// allocation, no lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram builds a standalone histogram with the given ascending
// upper bounds (they are copied and sorted; empty bounds yield a
// single +Inf bucket). Registry.Histogram is the registered path.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value (nil-safe, zero-alloc).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metric renders the histogram as one Snapshot entry with cumulative
// bucket counts.
func (h *Histogram) metric(name string) Metric {
	m := Metric{
		Name:    name,
		Kind:    KindHistogram,
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		m.Buckets[i] = Bucket{Le: le, Count: cum}
	}
	return m
}

// DurationBuckets are the default upper bounds, in milliseconds, for
// latency-shaped histograms (shaped-link delay, tick durations).
var DurationBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// CountBuckets are power-of-two upper bounds for size-shaped
// histograms (queue depths, window sizes).
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
