// Package obs is the node-wide observability plane: a metrics registry
// of atomic counters, gauges and fixed-bucket histograms that every
// subsystem publishes into, a bounded ring-buffer tracer for lifecycle
// events, and the text/JSON exporters behind icdnode's -debug-addr
// endpoint.
//
// # Naming
//
// Metric names follow subsystem.metric{label}: a dotted subsystem
// prefix, the metric, and an optional comma-separated label set baked
// into the name ("peer.symbols{kind=useful}"). Within one Registry the
// name is the identity — asking for the same name returns the same
// metric, which is how per-fetch and per-server tallies aggregate into
// node-wide totals. The exporters translate the scheme to Prometheus
// families (icd_peer_symbols{kind="useful"}) and flat JSON keys.
//
// # Trace events
//
// The Tracer is a fixed-capacity ring of lifecycle transitions, each an
// (event, subject, detail) triple stamped with a sequence number. The
// Ev* constants are the catalog:
//
//   - session plane: EvDial, EvDialFail, EvHandshake, EvRedial,
//     EvStall, EvBan, EvEvict
//   - channel plane: EvChanOpen, EvChanResize, EvChanClose
//   - store plane: EvStoreAdmit, EvStoreEvict
//   - gossip plane: EvGossipAdmit, EvGossipDefer, EvGossipPromote
//
// Writers never block: a full ring overwrites the oldest event, and
// Events returns a contiguous oldest-first copy.
//
// # Hot-path contract
//
// Every mutation path is safe on a nil receiver and allocation-free: a
// nil *Registry hands out unregistered but fully functional metrics, so
// instrumented hot paths never branch on whether observability is wired
// up. Counter.Add, Gauge.Set and Histogram.Observe are pinned zero-
// alloc by tests (testing.AllocsPerRun) and benchmarked as icdbench
// -micro rows.
//
// # Serving
//
// DebugMux serves a registry over HTTP: /metrics (Prometheus text),
// /vars (flat JSON), /trace (recent events as JSON), and the standard
// net/http/pprof profiles under /debug/pprof. icdnode's node subcommand
// exposes it via -debug-addr.
package obs
