package obs

// trace.go is the lifecycle tracer: a bounded ring of recent events.
// Writers never block beyond a short O(1) critical section and a full
// ring overwrites oldest-first, so tracing is safe to leave on in
// session hot paths; readers get an ordered copy.

import (
	"sync"
	"time"
)

// DefaultTraceCapacity is the ring size NewRegistry attaches.
const DefaultTraceCapacity = 1024

// Trace event names recorded by the engine, grouped by subsystem.
// Subjects are peer addresses for session/gossip events, channel ids
// for fabric events and content ids for store events.
const (
	// EvDial through EvBan are session lifecycle transitions.
	EvDial      = "session.dial"
	EvDialFail  = "session.dial_fail"
	EvHandshake = "session.handshake"
	EvRedial    = "session.redial"
	EvStall     = "session.stall"
	EvBan       = "session.ban"
	EvEvict     = "session.evict"

	// EvChanOpen through EvChanClose are fabric subchannel events.
	EvChanOpen   = "channel.open"
	EvChanResize = "channel.resize"
	EvChanClose  = "channel.close"

	// EvStoreAdmit and EvStoreEvict are content-store transitions.
	EvStoreAdmit = "store.admit"
	EvStoreEvict = "store.evict"

	// EvGossipAdmit through EvGossipPromote are discovery admissions.
	EvGossipAdmit   = "gossip.admit"
	EvGossipDefer   = "gossip.defer"
	EvGossipPromote = "gossip.promote"
)

// Event is one traced lifecycle transition.
type Event struct {
	// Seq is the event's global sequence number (0-based, never
	// reused); gaps in a snapshot mean the ring overwrote.
	Seq uint64
	// Time is the wall-clock instant the event was traced.
	Time time.Time
	// Event names the transition (see the Ev* catalog).
	Event string
	// Subject is what the event happened to (peer address, channel id,
	// content id).
	Subject string
	// Detail carries optional context (error text, window sizes).
	Detail string
}

// Tracer is a bounded ring buffer of Events. All methods are safe for
// concurrent use and nil-safe; a full ring overwrites the oldest entry
// rather than blocking or dropping the new one.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever traced
}

// NewTracer builds a ring holding the last capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Trace records one event. Never blocks beyond the ring's own mutex
// (held for one slot assignment); no-op on nil.
func (t *Tracer) Trace(event, subject, detail string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = Event{
		Seq:     t.next,
		Time:    now,
		Event:   event,
		Subject: subject,
		Detail:  detail,
	}
	t.next++
	t.mu.Unlock()
}

// Seq returns the total number of events ever traced (including those
// the ring has since overwritten).
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Cap returns the ring capacity (0 on nil).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Events returns the retained events oldest-first. The slice is a
// copy; sequence numbers are contiguous and end at Seq()-1.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := uint64(len(t.buf))
	start := uint64(0)
	if t.next > size {
		start = t.next - size
	}
	out := make([]Event, 0, t.next-start)
	for s := start; s < t.next; s++ {
		out = append(out, t.buf[s%size])
	}
	return out
}
