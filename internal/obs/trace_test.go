package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceRingBoundedOverwriteOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Trace("ev", fmt.Sprintf("s%d", i), "")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring must retain its capacity: got %d events", len(evs))
	}
	// Oldest-first, contiguous, ending at Seq()-1: events 6..9 survive.
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq || ev.Subject != fmt.Sprintf("s%d", wantSeq) {
			t.Fatalf("event %d: seq=%d subject=%q, want seq=%d", i, ev.Seq, ev.Subject, wantSeq)
		}
	}
	if tr.Seq() != 10 {
		t.Fatalf("Seq must count overwritten events: got %d", tr.Seq())
	}
}

func TestTracePartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Trace("a", "", "")
	tr.Trace("b", "", "")
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Event != "a" || evs[1].Event != "b" {
		t.Fatalf("partial ring: %+v", evs)
	}
	if tr.Cap() != 8 {
		t.Fatalf("cap: %d", tr.Cap())
	}
}

func TestTraceConcurrentWriters(t *testing.T) {
	tr := NewTracer(64)
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Trace(EvRedial, fmt.Sprintf("w%d", w), "")
				if i%100 == 0 {
					tr.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Seq() != workers*each {
		t.Fatalf("lost events: %d/%d", tr.Seq(), workers*each)
	}
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("retained: %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot not contiguous at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestTraceFullRingNeverBlocks drives a full ring from one writer
// while a reader snapshots continuously; the writer must finish a
// large burst promptly (overwrite, never block) — the property that
// makes tracing safe on session hot paths.
func TestTraceFullRingNeverBlocks(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 8; i++ {
		tr.Trace("fill", "", "")
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Events()
			}
		}
	}()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100000; i++ {
			tr.Trace(EvStall, "hot", "")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("tracer blocked a hot-path writer on a full ring")
	}
	close(stop)
	rg.Wait()
	if tr.Seq() != 8+100000 {
		t.Fatalf("events lost: %d", tr.Seq())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Trace("x", "y", "z")
	if tr.Events() != nil || tr.Seq() != 0 || tr.Cap() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}
