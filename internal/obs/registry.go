// registry.go is the metric directory: get-or-create handles by name
// (same name, same metric — the aggregation rule), callback gauges
// evaluated at snapshot time, and the stable sorted Snapshot view the
// exporters render.
package obs

import (
	"sort"
	"sync"
)

// Kind discriminates the metric types in a Snapshot.
type Kind uint8

// The three metric kinds a Registry holds.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous level (may go down).
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind for exporters and logs.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Metric is one entry of a Snapshot: a stable, self-describing copy of
// a metric's state at the sample instant.
type Metric struct {
	// Name is the registered subsystem.metric{label} name.
	Name string
	// Kind tells which of the value fields are meaningful.
	Kind Kind
	// Value carries a counter's total or a gauge's level.
	Value int64
	// Count and Sum summarize a histogram's observations.
	Count uint64
	Sum   float64
	// Buckets are a histogram's cumulative bucket counts in ascending
	// upper-bound order; the final bucket's bound is +Inf.
	Buckets []Bucket
}

// Bucket is one cumulative histogram bucket: the count of observations
// less than or equal to the upper bound Le.
type Bucket struct {
	Le    float64
	Count uint64
}

// Registry is a node-wide metric namespace. All methods are safe for
// concurrent use; the lookup methods are get-or-create, so every caller
// naming the same metric shares one underlying instance — that is how
// per-fetch and per-server tallies aggregate into node totals.
//
// A nil *Registry is a valid no-op sink: lookups return unregistered
// metrics that still count (callers can read them back), Trace drops
// events, and Snapshot returns nil.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any
	funcs   map[string]func() int64
	tracer  *Tracer
}

// NewRegistry builds an empty registry with a DefaultTraceCapacity
// event tracer attached.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]any),
		funcs:   make(map[string]func() int64),
		tracer:  NewTracer(DefaultTraceCapacity),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. On a nil registry — or when name is already taken by a
// different kind — it returns a functional unregistered counter, so
// callers can cache the handle unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if c, ok := m.(*Counter); ok {
			return c
		}
		return new(Counter)
	}
	c := new(Counter)
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use (same nil and kind-collision contract as Counter).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if g, ok := m.(*Gauge); ok {
			return g
		}
		return new(Gauge)
	}
	g := new(Gauge)
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use; later lookups reuse
// the first call's buckets. Same nil and kind-collision contract as
// Counter.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return NewHistogram(buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if h, ok := m.(*Histogram); ok {
			return h
		}
		return NewHistogram(buckets)
	}
	h := NewHistogram(buckets)
	r.metrics[name] = h
	return h
}

// GaugeFunc registers a callback gauge: fn is evaluated at Snapshot
// time, which is how sampled levels (store bytes, live wires, banned
// peers) appear without a write on every change. Re-registering a name
// replaces the callback. No-op on a nil registry or nil fn.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Tracer returns the registry's event ring (nil on a nil registry;
// Tracer methods are themselves nil-safe).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Trace records one lifecycle event in the registry's ring. No-op on a
// nil registry; never blocks.
func (r *Registry) Trace(event, subject, detail string) {
	if r == nil {
		return
	}
	r.tracer.Trace(event, subject, detail)
}

// Snapshot returns a consistent-enough copy of every registered metric,
// sorted by name — the stable view the exporters and the scenario
// lab's samplers iterate. Counters and gauges are read atomically;
// callback gauges are evaluated outside the registry lock (so a
// callback may itself read other metrics or take subsystem locks).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.metrics)+len(r.funcs))
	for name, m := range r.metrics {
		switch v := m.(type) {
		case *Counter:
			out = append(out, Metric{Name: name, Kind: KindCounter, Value: v.Value()})
		case *Gauge:
			out = append(out, Metric{Name: name, Kind: KindGauge, Value: v.Value()})
		case *Histogram:
			out = append(out, v.metric(name))
		}
	}
	fns := make([]func() int64, 0, len(r.funcs))
	names := make([]string, 0, len(r.funcs))
	for name, fn := range r.funcs {
		names = append(names, name)
		fns = append(fns, fn)
	}
	r.mu.Unlock()
	for i, fn := range fns {
		out = append(out, Metric{Name: names[i], Kind: KindGauge, Value: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
