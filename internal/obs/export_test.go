package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("peer.symbols{kind=useful}").Add(42)
	r.Counter("peer.symbols{kind=received}").Add(50)
	r.Gauge("node.store_bytes").Set(1 << 20)
	h := r.Histogram("faultnet.shaped_delay_ms{class=dsl}", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	r.Trace(EvDial, "p1", "")
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, testRegistry()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE icd_peer_symbols counter",
		`icd_peer_symbols{kind="useful"} 42`,
		`icd_peer_symbols{kind="received"} 50`,
		"# TYPE icd_node_store_bytes gauge",
		"icd_node_store_bytes 1048576",
		"# TYPE icd_faultnet_shaped_delay_ms histogram",
		`icd_faultnet_shaped_delay_ms_bucket{class="dsl",le="1"} 1`,
		`icd_faultnet_shaped_delay_ms_bucket{class="dsl",le="10"} 2`,
		`icd_faultnet_shaped_delay_ms_bucket{class="dsl",le="+Inf"} 3`,
		`icd_faultnet_shaped_delay_ms_sum{class="dsl"} 55.5`,
		`icd_faultnet_shaped_delay_ms_count{class="dsl"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family even with two labeled series.
	if strings.Count(out, "# TYPE icd_peer_symbols ") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestWriteVars(t *testing.T) {
	var b strings.Builder
	if err := WriteVars(&b, testRegistry()); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(b.String()), &vars); err != nil {
		t.Fatalf("invalid /vars JSON: %v\n%s", err, b.String())
	}
	if vars["peer.symbols{kind=useful}"].(float64) != 42 {
		t.Fatalf("counter value: %v", vars["peer.symbols{kind=useful}"])
	}
	h, ok := vars["faultnet.shaped_delay_ms{class=dsl}"].(map[string]any)
	if !ok || h["count"].(float64) != 3 || h["sum"].(float64) != 55.5 {
		t.Fatalf("histogram object: %v", vars["faultnet.shaped_delay_ms{class=dsl}"])
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	srv := httptest.NewServer(DebugMux(testRegistry()))
	defer srv.Close()
	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if !strings.Contains(get("/metrics"), "icd_peer_symbols") {
		t.Fatal("/metrics missing registry data")
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/vars")), &vars); err != nil || len(vars) == 0 {
		t.Fatalf("/vars not well-formed JSON: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(get("/trace")), &events); err != nil || len(events) != 1 {
		t.Fatalf("/trace: %v (%d events)", err, len(events))
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "") { // reachable, 200 checked above
		t.Fatal("unreachable")
	}
}
