package obs

import (
	"sort"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("peer.symbols{kind=useful}")
	c2 := r.Counter("peer.symbols{kind=useful}")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	c1.Add(3)
	if got := c2.Value(); got != 3 {
		t.Fatalf("shared counter: got %d, want 3", got)
	}
	if r.Gauge("node.level") == nil || r.Histogram("node.h", CountBuckets) == nil {
		t.Fatal("gauge/histogram constructors returned nil")
	}
}

func TestRegistryKindCollision(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.y")
	g := r.Gauge("x.y") // wrong kind for a taken name: standalone fallback
	if g == nil {
		t.Fatal("kind collision must return a functional metric")
	}
	g.Set(7)
	c.Add(1)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindCounter || snap[0].Value != 1 {
		t.Fatalf("registry must keep the first registration: %+v", snap)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("a.b")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter must still count")
	}
	r.Gauge("a.g").Set(5)
	r.Histogram("a.h", nil).Observe(1)
	r.GaugeFunc("a.f", func() int64 { return 1 })
	r.Trace("x", "y", "z")
	if r.Snapshot() != nil || r.Tracer() != nil {
		t.Fatal("nil registry must snapshot to nil")
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Gauge("a.first").Set(2)
	r.Histogram("m.mid", []float64{1, 2}).Observe(1.5)
	r.GaugeFunc("k.fn", func() int64 { return 9 })
	snap := r.Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if byName["k.fn"].Value != 9 {
		t.Fatalf("callback gauge not evaluated: %+v", byName["k.fn"])
	}
	h := byName["m.mid"]
	if h.Count != 1 || h.Sum != 1.5 || len(h.Buckets) != 3 {
		t.Fatalf("histogram snapshot: %+v", h)
	}
	// 1.5 lands in the (1, 2] bucket; cumulative counts are 0, 1, 1.
	if h.Buckets[0].Count != 0 || h.Buckets[1].Count != 1 || h.Buckets[2].Count != 1 {
		t.Fatalf("cumulative buckets wrong: %+v", h.Buckets)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 1}) // unsorted on purpose
	for _, v := range []float64{0.5, 1, 5, 10, 100} {
		h.Observe(v)
	}
	m := h.metric("t")
	// bounds sorted to [1, 10]: ≤1 holds {0.5, 1}, ≤10 adds {5, 10}, +Inf adds {100}.
	want := []uint64{2, 4, 5}
	for i, b := range m.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d: got %d, want %d (%+v)", i, b.Count, want[i], m.Buckets)
		}
	}
	if m.Sum != 116.5 || m.Count != 5 {
		t.Fatalf("sum/count: %v/%d", m.Sum, m.Count)
	}
}

func TestConcurrentMetricWrites(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c.shared")
			h := r.Histogram("h.shared", CountBuckets)
			g := r.Gauge("g.shared")
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(i % 64))
				g.Add(1)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c.shared").Value(); got != workers*each {
		t.Fatalf("counter: got %d, want %d", got, workers*each)
	}
	if got := r.Histogram("h.shared", nil).Count(); got != workers*each {
		t.Fatalf("histogram count: got %d, want %d", got, workers*each)
	}
}

// TestHotPathAllocs pins the instrumented hot paths at zero
// allocations — the invariant the icdbench -micro "obs counter add"
// and "obs histogram observe" rows benchmark.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.counter")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.hist{kind=pin}", DurationBuckets)
	tr := r.Tracer()
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(42) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.5) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tr.Trace(EvStall, "p1", "") }); n > 0 {
		t.Fatalf("Tracer.Trace allocates %v/op", n)
	}
}
