package obs

// export.go renders a registry snapshot in the two wire formats the
// debug endpoint serves: Prometheus text exposition (/metrics) and a
// flat JSON object (/vars), plus the trace ring as JSON (/trace).

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry snapshot in Prometheus text
// exposition format. subsystem.metric{label} names become
// icd_subsystem_metric{label="value"} families; histograms expand to
// the conventional _bucket/_sum/_count series with le labels.
func WritePrometheus(w io.Writer, r *Registry) error {
	typed := make(map[string]bool)
	for _, m := range r.Snapshot() {
		base, labels := splitName(m.Name)
		fam := promBase(base)
		if !typed[fam] {
			typed[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case KindHistogram:
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.Le, 1) {
					le = formatFloat(b.Le)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					fam, promLabels(labels, "le", le), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, promLabels(labels), formatFloat(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, promLabels(labels), m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", fam, promLabels(labels), m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// varsHistogram is the /vars JSON shape of one histogram.
type varsHistogram struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"`
}

// WriteVars writes the registry snapshot as one flat JSON object keyed
// by metric name: counters and gauges map to numbers, histograms to
// {count, sum, buckets} objects with cumulative bucket counts keyed by
// upper bound.
func WriteVars(w io.Writer, r *Registry) error {
	vars := make(map[string]any)
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case KindHistogram:
			h := varsHistogram{Count: m.Count, Sum: m.Sum, Buckets: make(map[string]uint64, len(m.Buckets))}
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.Le, 1) {
					le = formatFloat(b.Le)
				}
				h.Buckets[le] = b.Count
			}
			vars[m.Name] = h
		default:
			vars[m.Name] = m.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(vars)
}

// traceEvent is the /trace JSON shape of one ring entry.
type traceEvent struct {
	Seq     uint64 `json:"seq"`
	TimeMs  int64  `json:"time_unix_ms"`
	Event   string `json:"event"`
	Subject string `json:"subject,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// WriteTrace writes the tracer's retained events oldest-first as a
// JSON array.
func WriteTrace(w io.Writer, t *Tracer) error {
	events := t.Events()
	out := make([]traceEvent, len(events))
	for i, ev := range events {
		out[i] = traceEvent{
			Seq:     ev.Seq,
			TimeMs:  ev.Time.UnixMilli(),
			Event:   ev.Event,
			Subject: ev.Subject,
			Detail:  ev.Detail,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// splitName separates "base{k=v,...}" into base and the raw label
// list; a name without a trailing {...} has no labels.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promBase mangles a dotted metric base into a Prometheus family name.
func promBase(base string) string {
	var b strings.Builder
	b.WriteString("icd_")
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a raw "k=v,k2=v2" label list (plus optional extra
// key/value pairs) as a Prometheus label set, or "" when empty.
func promLabels(raw string, extra ...string) string {
	var parts []string
	if raw != "" {
		for _, kv := range strings.Split(raw, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				k, v = kv, ""
			}
			parts = append(parts, fmt.Sprintf("%s=%q", strings.TrimSpace(k), strings.TrimSpace(v)))
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a float compactly (no trailing zeros).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
