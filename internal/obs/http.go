package obs

// http.go assembles the debug endpoint icdnode serves on -debug-addr:
// /metrics (Prometheus text), /vars (JSON snapshot), /trace (lifecycle
// ring) and the stdlib pprof handlers under /debug/pprof/.

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the debug HTTP handler for a registry: GET /metrics
// serves the Prometheus text exposition, GET /vars the flat JSON
// snapshot, GET /trace the retained lifecycle events, and
// /debug/pprof/ the standard runtime profiles.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteVars(w, r)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteTrace(w, r.Tracer())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
