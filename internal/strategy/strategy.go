// Package strategy implements the five content-selection strategies
// compared in §6.2/§6.3 of the paper. A strategy is the sender-side rule
// for choosing what to put in the next packet of one peer-to-peer
// connection:
//
//	Random     — pick an available symbol uniformly at random (with
//	             replacement: the sender is stateless and memoryless, so
//	             compact scenarios degenerate to the coupon collector's
//	             problem, as §6.3 observes). Used by Swarmcast.
//	Random/BF  — Random, filtered by the receiver's Bloom filter: only
//	             symbols the filter reports absent are candidates.
//	Recode     — recoded symbols blended over the sender's entire
//	             working set, degrees drawn obliviously.
//	Recode/BF  — recoded symbols blended only over the symbols not in
//	             the receiver's Bloom filter.
//	Recode/MW  — recoded symbols over the whole working set with degrees
//	             rescaled by ⌊d/(1−c)⌋ using the min-wise containment
//	             estimate c.
//
// Following §6.1 the receiver's summaries are transmitted once at
// connection setup and never updated ("we never send updates to our
// Bloom filter — doing so would of course provide a commensurate
// improvement"), so every strategy here is stateless per transmission.
package strategy

import (
	"errors"
	"fmt"

	"icd/internal/bloom"
	"icd/internal/keyset"
	"icd/internal/minwise"
	"icd/internal/prng"
	"icd/internal/recode"
)

// Kind identifies one of the paper's strategies.
type Kind int

const (
	Random Kind = iota
	RandomBF
	Recode
	RecodeBF
	RecodeMW
)

// AllKinds lists every strategy in the order the paper's figures plot
// them.
var AllKinds = []Kind{Random, RandomBF, Recode, RecodeBF, RecodeMW}

func (k Kind) String() string {
	switch k {
	case Random:
		return "Random"
	case RandomBF:
		return "Random/BF"
	case Recode:
		return "Recode"
	case RecodeBF:
		return "Recode/BF"
	case RecodeMW:
		return "Recode/MW"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// UsesBloom reports whether the strategy consumes the receiver's Bloom
// filter.
func (k Kind) UsesBloom() bool { return k == RandomBF || k == RecodeBF }

// UsesMinwise reports whether the strategy consumes min-wise sketches.
func (k Kind) UsesMinwise() bool { return k == RecodeMW }

// Config carries the reconciliation parameters shared by a connection.
// The zero value selects the paper's §6.1 settings via Default.
type Config struct {
	BloomBitsPerElement float64 // default 8 (§5.2's low-fp operating point)
	BloomHashes         int     // default 5
	MinwiseSize         int     // default 128 (1KB sketch)
	MinwiseFamilySeed   uint64  // shared permutation family
	RecodeMaxDegree     int     // default 50 (§6.1)
	SummarySeed         uint64  // hash seed for Bloom filters

	// RecodeDomainLimit caps the size of each recoding domain chunk for
	// Recode/BF — §6.1's "we restrict the recoding domain to an
	// appropriate small size". The filtered pool is shuffled and split
	// into chunks of at most this size; the sender recodes over one chunk
	// for a fixed budget of transmissions, then rotates to the next
	// (wrapping around), all without any feedback from the receiver.
	// 0 picks a heuristic (pool/6 clamped to [100, 2000]); negative
	// disables chunking (one domain = the whole filtered pool).
	RecodeDomainLimit int
	// RecodeChunkBudget is the per-chunk transmission budget as a
	// multiple of the chunk size (covers the sparse code's decoding
	// overhead); 0 defaults to 1.3.
	RecodeChunkBudget float64
}

// Default fills zero fields with the paper's parameters.
func (c Config) Default() Config {
	if c.BloomBitsPerElement == 0 {
		c.BloomBitsPerElement = 8
	}
	if c.BloomHashes == 0 {
		c.BloomHashes = 5
	}
	if c.MinwiseSize == 0 {
		c.MinwiseSize = minwise.DefaultSize
	}
	if c.RecodeMaxDegree == 0 {
		c.RecodeMaxDegree = recode.MaxDegree
	}
	if c.RecodeChunkBudget == 0 {
		// Measured full-decode cost of the capped robust soliton is
		// ≈1.25× for chunk-sized domains (see EXPERIMENTS.md, E11); the
		// margin keeps the probability of an undecodable chunk — whose
		// gaps would wait a full rotation — small.
		c.RecodeChunkBudget = 1.35
	}
	return c
}

// chunkSize resolves the Recode/BF domain restriction for a pool of the
// given size.
func (c Config) chunkSize(pool int) int {
	switch {
	case c.RecodeDomainLimit < 0:
		return pool
	case c.RecodeDomainLimit > 0:
		return c.RecodeDomainLimit
	}
	s := pool / 3
	if s < 128 {
		s = 128
	}
	if s > 2048 {
		s = 2048
	}
	return s
}

// Sender is the per-connection transmit state of a partial sender running
// one strategy. Create with NewSender; call Next for each transmission.
type Sender struct {
	kind     Kind
	rng      *prng.Rand
	working  *keyset.Set // the sender's full working set
	pool     *keyset.Set // candidate pool for Random variants (≠ nil)
	recoder  *recode.Recoder
	chunks   *chunkedRecoder // Recode/BF rotating restricted domains
	policy   recode.DegreePolicy
	contain  float64 // minwise containment estimate c (RecodeMW)
	sent     int
	excluded int // symbols suppressed by Bloom false positives (diagnostic)
}

// chunkedRecoder implements §6.1's restricted recoding domains: the
// Bloom-filtered pool is shuffled and partitioned into small chunks; the
// sender recodes over one chunk for a fixed transmission budget (sized to
// the chunk's expected decoding overhead), then rotates. The receiver can
// fully decode each small chunk while it is current, so usefulness stays
// near-linear throughout the transfer — without any receiver feedback.
type chunkedRecoder struct {
	recoders []*recode.Recoder
	budgets  []int
	cur      int
	sentCur  int
	total    int
}

func newChunkedRecoder(rng *prng.Rand, pool *keyset.Set, chunkSize, maxDeg int, budget float64) (*chunkedRecoder, error) {
	ids := pool.Keys()
	rng.ShuffleUint64s(ids)
	cr := &chunkedRecoder{total: len(ids)}
	for lo := 0; lo < len(ids); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(ids) {
			hi = len(ids)
		}
		if hi-lo < chunkSize/4 && len(cr.recoders) > 0 {
			// Tiny trailing remainder: the previous chunk absorbs it so no
			// chunk is too small to recode usefully.
			merged := keyset.FromKeys(ids[lo-chunkSize : hi])
			rec, err := recode.NewRecoder(rng.Split(), merged, recode.Options{MaxDegree: maxDeg})
			if err != nil {
				return nil, err
			}
			last := len(cr.recoders) - 1
			cr.recoders[last] = rec
			cr.budgets[last] = int(budget*float64(merged.Len())) + 1
			break
		}
		chunk := keyset.FromKeys(ids[lo:hi])
		rec, err := recode.NewRecoder(rng.Split(), chunk, recode.Options{MaxDegree: maxDeg})
		if err != nil {
			return nil, err
		}
		cr.recoders = append(cr.recoders, rec)
		cr.budgets = append(cr.budgets, int(budget*float64(chunk.Len()))+1)
	}
	return cr, nil
}

func (c *chunkedRecoder) next() recode.Symbol {
	sym := c.recoders[c.cur].Next(recode.Oblivious, 0)
	c.sentCur++
	if c.sentCur >= c.budgets[c.cur] {
		c.cur = (c.cur + 1) % len(c.recoders)
		c.sentCur = 0
	}
	return sym
}

// NewSender builds the sender state for one connection.
//
// senderSet is the sender's working set of encoded-symbol ids.
// receiverSet is the *receiver's* working set, used only to construct the
// summaries the receiver would transmit at connection setup (its Bloom
// filter or min-wise sketch); the sender never reads it directly —
// faithful to the message flow of §3.
func NewSender(kind Kind, rng *prng.Rand, senderSet, receiverSet *keyset.Set, cfg Config) (*Sender, error) {
	if senderSet.Len() == 0 {
		return nil, errors.New("strategy: sender has no symbols")
	}
	cfg = cfg.Default()
	s := &Sender{kind: kind, rng: rng, working: senderSet}

	switch kind {
	case Random:
		s.pool = senderSet

	case RandomBF:
		filter := receiverFilter(receiverSet, cfg)
		s.pool = keyset.New(senderSet.Len())
		senderSet.Each(func(id uint64) {
			if !filter.Contains(id) {
				s.pool.Add(id)
			}
		})
		s.excluded = senderSet.Len() - s.pool.Len() - senderSet.IntersectionSize(receiverSet)
		if s.excluded < 0 {
			s.excluded = 0
		}
		if s.pool.Len() == 0 {
			// Nothing appears useful; fall back to blind random so the
			// connection still carries something (mirrors a real sender
			// that would not go silent).
			s.pool = senderSet
		}

	case Recode, RecodeMW:
		rec, err := recode.NewRecoder(rng.Split(), senderSet, recode.Options{MaxDegree: cfg.RecodeMaxDegree})
		if err != nil {
			return nil, err
		}
		s.recoder = rec
		s.policy = recode.Oblivious
		if kind == RecodeMW {
			s.policy = recode.MinwiseScaled
			sa := minwise.Build(cfg.MinwiseFamilySeed, cfg.MinwiseSize, receiverSet)
			sb := minwise.Build(cfg.MinwiseFamilySeed, cfg.MinwiseSize, senderSet)
			c, err := sa.ContainmentOf(sb)
			if err != nil {
				return nil, err
			}
			s.contain = c
		}

	case RecodeBF:
		filter := receiverFilter(receiverSet, cfg)
		domain := keyset.New(senderSet.Len())
		senderSet.Each(func(id uint64) {
			if !filter.Contains(id) {
				domain.Add(id)
			}
		})
		s.excluded = senderSet.Len() - domain.Len() - senderSet.IntersectionSize(receiverSet)
		if s.excluded < 0 {
			s.excluded = 0
		}
		if domain.Len() == 0 {
			domain = senderSet // degenerate: recode blindly
		}
		cr, err := newChunkedRecoder(rng.Split(), domain, cfg.chunkSize(domain.Len()),
			cfg.RecodeMaxDegree, cfg.RecodeChunkBudget)
		if err != nil {
			return nil, err
		}
		s.chunks = cr

	default:
		return nil, fmt.Errorf("strategy: unknown kind %v", kind)
	}
	return s, nil
}

func receiverFilter(receiverSet *keyset.Set, cfg Config) *bloom.Filter {
	return bloom.FromSet(cfg.SummarySeed, receiverSet, cfg.BloomBitsPerElement, cfg.BloomHashes)
}

// Kind returns the strategy this sender runs.
func (s *Sender) Kind() Kind { return s.kind }

// Sent returns the number of transmissions so far.
func (s *Sender) Sent() int { return s.sent }

// ExcludedByFalsePositives returns how many genuinely useful symbols the
// receiver's Bloom filter suppressed at setup (0 for non-BF strategies).
// These symbols can never be delivered on this connection — the failure
// mode §5.2 accepts by design.
func (s *Sender) ExcludedByFalsePositives() int { return s.excluded }

// PoolSize returns the candidate pool (Random variants) or recoding
// domain (Recode variants) size.
func (s *Sender) PoolSize() int {
	if s.pool != nil {
		return s.pool.Len()
	}
	if s.chunks != nil {
		return s.chunks.total
	}
	return s.recoder.DomainSize()
}

// Next produces the next transmission. Random strategies emit a degree-1
// symbol (a plain encoded symbol); Recode strategies emit a recoded
// symbol. Every call is independent — the sender keeps no per-receiver
// delivery state, the property §2.2/§2.3 demand for stateless migration.
func (s *Sender) Next() recode.Symbol {
	s.sent++
	if s.pool != nil {
		return recode.Symbol{IDs: []uint64{s.pool.Random(s.rng)}}
	}
	if s.chunks != nil {
		return s.chunks.next()
	}
	return s.recoder.Next(s.policy, s.contain)
}

// Containment returns the min-wise containment estimate used by
// Recode/MW (0 for other strategies).
func (s *Sender) Containment() float64 { return s.contain }
