package strategy

import (
	"testing"

	"icd/internal/keyset"
	"icd/internal/prng"
	"icd/internal/recode"
)

func TestChunkSizeHeuristic(t *testing.T) {
	cfg := Config{}.Default()
	if got := cfg.chunkSize(90); got != 128 {
		t.Fatalf("small pool chunk = %d, want floor 128", got)
	}
	if got := cfg.chunkSize(3000); got != 1000 {
		t.Fatalf("pool/3 chunk = %d, want 1000", got)
	}
	if got := cfg.chunkSize(100000); got != 2048 {
		t.Fatalf("huge pool chunk = %d, want cap 2048", got)
	}
	explicit := Config{RecodeDomainLimit: 512}.Default()
	if got := explicit.chunkSize(3000); got != 512 {
		t.Fatalf("explicit limit ignored: %d", got)
	}
	whole := Config{RecodeDomainLimit: -1}.Default()
	if got := whole.chunkSize(3000); got != 3000 {
		t.Fatalf("disabled chunking: %d", got)
	}
}

func TestChunkedRecoderCoversWholePool(t *testing.T) {
	rng := prng.New(1)
	pool := keyset.Random(rng, 700)
	cr, err := newChunkedRecoder(rng, pool, 200, recode.MaxDegree, 1.35)
	if err != nil {
		t.Fatal(err)
	}
	if cr.total != 700 {
		t.Fatalf("total = %d", cr.total)
	}
	// Chunks partition the pool: union of all recoder domains = pool.
	seen := keyset.New(700)
	covered := 0
	for _, r := range cr.recoders {
		covered += r.DomainSize()
	}
	if covered != 700 {
		t.Fatalf("chunks cover %d of 700 symbols", covered)
	}
	// Emitted constituents always come from the pool.
	for i := 0; i < 2000; i++ {
		sym := cr.next()
		for _, id := range sym.IDs {
			if !pool.Contains(id) {
				t.Fatalf("constituent %d not in pool", id)
			}
			seen.Add(id)
		}
	}
	// With >2 full budget cycles, every chunk must have been visited:
	// expect near-complete constituent coverage.
	if seen.Len() < 600 {
		t.Fatalf("only %d/700 symbols ever blended", seen.Len())
	}
}

func TestChunkedRecoderRotation(t *testing.T) {
	rng := prng.New(2)
	pool := keyset.Random(rng, 400)
	cr, err := newChunkedRecoder(rng, pool, 100, recode.MaxDegree, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.recoders) != 4 {
		t.Fatalf("chunks = %d, want 4", len(cr.recoders))
	}
	// The first budget worth of symbols must all come from chunk 0's
	// domain; the next batch from chunk 1's.
	domainOf := func(idx int) map[uint64]bool {
		m := map[uint64]bool{}
		for i := 0; i < 5000; i++ { // sample the recoder's domain
			for _, id := range cr.recoders[idx].Next(recode.Oblivious, 0).IDs {
				m[id] = true
			}
		}
		return m
	}
	_ = domainOf
	first := cr.budgets[0]
	var fromFirst []uint64
	for i := 0; i < first; i++ {
		fromFirst = append(fromFirst, cr.next().IDs...)
	}
	if cr.cur != 1 {
		t.Fatalf("after budget, current chunk = %d, want 1", cr.cur)
	}
	// All constituents so far from one 100-element chunk.
	distinct := keyset.FromKeys(fromFirst)
	if distinct.Len() > 101 {
		t.Fatalf("first budget blended %d distinct symbols — crossed chunks", distinct.Len())
	}
}

func TestChunkedRecoderTinyRemainderMerged(t *testing.T) {
	rng := prng.New(3)
	pool := keyset.Random(rng, 210) // chunks of 200 → remainder 10 merges
	cr, err := newChunkedRecoder(rng, pool, 200, recode.MaxDegree, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.recoders) != 1 {
		t.Fatalf("chunks = %d, want 1 (remainder merged)", len(cr.recoders))
	}
	if cr.recoders[0].DomainSize() != 210 {
		t.Fatalf("merged chunk size %d", cr.recoders[0].DomainSize())
	}
}

func TestRecodeBFWholePoolConfig(t *testing.T) {
	// RecodeDomainLimit < 0 must produce a single whole-pool recoder.
	rng := prng.New(4)
	recv, send := sets(rng, 500, 500, 0)
	s, err := NewSender(RecodeBF, rng, send, recv, Config{RecodeDomainLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.chunks == nil || len(s.chunks.recoders) != 1 {
		t.Fatal("whole-pool config did not yield a single chunk")
	}
}
