package strategy

// summary.go is the sender-side hookup of the protocol's v3 summary
// negotiation: building the receiver's working-set summary for the
// negotiated method, parsing a received one, and deriving the sender's
// transmit plan (recoding domain, degree policy, containment estimate)
// from it — the §3 accuracy/size trade-off made operational on the real
// wire instead of only in the transfer simulator.

import (
	"errors"
	"fmt"

	"icd/internal/bloom"
	"icd/internal/keyset"
	"icd/internal/minwise"
	"icd/internal/protocol"
	"icd/internal/recode"
	"icd/internal/recon"
)

// ART wire-format parameters shared by all v3 peers: the paper's 8
// bits/element split 5 leaf + 3 internal (Figure 4a's operating point)
// and one level of pruning correction.
const (
	artTotalBits  = 8
	artLeafBits   = 5
	artCorrection = 1
)

// BuildSummary marshals the receiver's working set under the negotiated
// method, ready for protocol.EncodeSummary. The configuration must
// agree across peers (seeds, sketch size) — the same contract the
// strategy simulator already imposes.
func BuildSummary(method protocol.SummaryMethod, held *keyset.Set, cfg Config) ([]byte, error) {
	cfg = cfg.Default()
	switch method {
	case protocol.SummaryBloom:
		filter := bloom.FromSet(cfg.SummarySeed, held, cfg.BloomBitsPerElement, cfg.BloomHashes)
		return filter.MarshalBinary()
	case protocol.SummarySketch:
		sketch := minwise.Build(cfg.MinwiseFamilySeed, cfg.MinwiseSize, held)
		return sketch.MarshalBinary()
	case protocol.SummaryART:
		tree := recon.Build(recon.DefaultParams, held)
		sum, err := tree.Summarize(recon.SummaryOptions{
			TotalBitsPerElement: artTotalBits,
			LeafBitsPerElement:  artLeafBits,
		})
		if err != nil {
			return nil, err
		}
		return sum.MarshalBinary()
	default:
		return nil, fmt.Errorf("strategy: cannot build summary for method %v", method)
	}
}

// ReceivedSummary is a peer's decoded working-set summary, whatever
// method the session negotiated.
type ReceivedSummary struct {
	Method protocol.SummaryMethod
	bloom  *bloom.Filter
	sketch *minwise.Sketch
	art    *recon.Summary
}

// ParseSummary decodes the payload of a SUMMARY/SUMMARY_REFRESH frame.
func ParseSummary(method protocol.SummaryMethod, blob []byte) (*ReceivedSummary, error) {
	rs := &ReceivedSummary{Method: method}
	switch method {
	case protocol.SummaryBloom:
		rs.bloom = new(bloom.Filter)
		if err := rs.bloom.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("strategy: bloom summary: %w", err)
		}
	case protocol.SummarySketch:
		rs.sketch = new(minwise.Sketch)
		if err := rs.sketch.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("strategy: sketch summary: %w", err)
		}
	case protocol.SummaryART:
		rs.art = new(recon.Summary)
		if err := rs.art.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("strategy: art summary: %w", err)
		}
	default:
		return nil, fmt.Errorf("strategy: cannot parse summary method %v", method)
	}
	return rs, nil
}

// ErrNothingUseful reports that, per the received summary, the receiver
// already holds everything the sender could offer — the sender should
// answer requests with empty batches rather than waste transmissions.
var ErrNothingUseful = errors.New("strategy: receiver appears to hold everything we have")

// SenderPlan is what a partial sender derives from a receiver summary:
// the domain to recode over, the degree policy of the informed stream,
// and the containment estimate feeding MinwiseScaled degrees.
type SenderPlan struct {
	// Domain is the recoding domain: the sender-held symbols the summary
	// reports (or estimates) missing at the receiver. For sketch
	// summaries this is the whole held set — the sketch informs degrees,
	// not membership.
	Domain *keyset.Set
	// Policy is the degree policy of the informed recoding stream
	// (CoverageAdaptive over a membership-filtered domain, MinwiseScaled
	// when only a containment estimate is available).
	Policy recode.DegreePolicy
	// Containment is the §4 estimate c = |R∩S|/|S| driving MinwiseScaled
	// (zero for membership-based methods).
	Containment float64
}

// Plan derives the sender's transmit plan from the summary against the
// sender's currently held working set (§5.2 for Bloom, §5.3 for ART,
// §4+§5.4.2 for min-wise sketches). It returns ErrNothingUseful when the
// summary proves (or estimates) the receiver needs nothing from here.
func (rs *ReceivedSummary) Plan(held *keyset.Set, cfg Config) (SenderPlan, error) {
	cfg = cfg.Default()
	switch rs.Method {
	case protocol.SummaryBloom:
		domain := keyset.New(64)
		held.Each(func(id uint64) {
			if !rs.bloom.Contains(id) {
				domain.Add(id)
			}
		})
		if domain.Len() == 0 {
			return SenderPlan{}, ErrNothingUseful
		}
		return SenderPlan{Domain: domain, Policy: recode.CoverageAdaptive}, nil

	case protocol.SummaryART:
		tree := recon.Build(rs.art.Params, held)
		missing, _ := tree.FindMissing(rs.art, artCorrection)
		if len(missing) == 0 {
			return SenderPlan{}, ErrNothingUseful
		}
		return SenderPlan{Domain: keyset.FromKeys(missing), Policy: recode.CoverageAdaptive}, nil

	case protocol.SummarySketch:
		mine := minwise.Build(rs.sketch.FamilySeed, len(rs.sketch.Minima), held)
		c, err := rs.sketch.ContainmentOf(mine)
		if err != nil {
			return SenderPlan{}, err
		}
		if c >= 1 && rs.sketch.SetSize >= held.Len() {
			// The receiver's set contains ours entirely (as well as the
			// coarse estimate can tell): nothing to offer.
			return SenderPlan{}, ErrNothingUseful
		}
		return SenderPlan{Domain: held.Clone(), Policy: recode.MinwiseScaled, Containment: c}, nil

	default:
		return SenderPlan{}, fmt.Errorf("strategy: no plan for summary method %v", rs.Method)
	}
}
