package strategy

import (
	"math"
	"testing"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// sets builds a sender set of size nb with |A∩B| = overlap, receiver size
// na.
func sets(rng *prng.Rand, na, nb, overlap int) (receiver, sender *keyset.Set) {
	common := keyset.Random(rng, overlap)
	receiver = common.Clone()
	sender = common.Clone()
	for receiver.Len() < na {
		receiver.Add(rng.Uint64())
	}
	for sender.Len() < nb {
		sender.Add(rng.Uint64())
	}
	return receiver, sender
}

func TestKindStrings(t *testing.T) {
	want := []string{"Random", "Random/BF", "Recode", "Recode/BF", "Recode/MW"}
	for i, k := range AllKinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string")
	}
	if !RandomBF.UsesBloom() || !RecodeBF.UsesBloom() || Random.UsesBloom() {
		t.Fatal("UsesBloom wrong")
	}
	if !RecodeMW.UsesMinwise() || Recode.UsesMinwise() {
		t.Fatal("UsesMinwise wrong")
	}
}

func TestRandomEmitsMemberSymbols(t *testing.T) {
	rng := prng.New(1)
	recv, send := sets(rng, 100, 100, 50)
	s, err := NewSender(Random, rng, send, recv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		sym := s.Next()
		if sym.Degree() != 1 {
			t.Fatalf("Random emitted degree %d", sym.Degree())
		}
		if !send.Contains(sym.IDs[0]) {
			t.Fatalf("Random emitted non-member %d", sym.IDs[0])
		}
	}
	if s.Sent() != 500 {
		t.Fatalf("Sent = %d", s.Sent())
	}
}

func TestRandomIsWithReplacement(t *testing.T) {
	// The coupon-collector characterization of §6.3 requires memoryless
	// sampling: over many draws from a small pool, duplicates must occur.
	rng := prng.New(2)
	recv, send := sets(rng, 10, 10, 0)
	s, _ := NewSender(Random, rng, send, recv, Config{})
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		seen[s.Next().IDs[0]]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("no duplicates over 100 draws from a 10-symbol pool")
	}
}

func TestRandomBFPoolExcludesReceiverSymbols(t *testing.T) {
	rng := prng.New(3)
	recv, send := sets(rng, 2000, 2000, 1000)
	s, err := NewSender(RandomBF, rng, send, recv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Pool ≈ the 1000 symbols the receiver lacks (no false negatives ⇒
	// every overlap symbol is filtered; FPs may remove a few useful ones).
	if s.PoolSize() > 1000 {
		t.Fatalf("pool %d > true useful 1000 — Bloom filter has false negatives?", s.PoolSize())
	}
	if s.PoolSize() < 900 {
		t.Fatalf("pool %d, lost too many to false positives", s.PoolSize())
	}
	for i := 0; i < 1000; i++ {
		sym := s.Next()
		if recv.Contains(sym.IDs[0]) {
			t.Fatalf("Random/BF sent a symbol the receiver holds")
		}
	}
	// Diagnostic: excluded count should be near fp_rate × useful ≈ 22.
	if s.ExcludedByFalsePositives() > 100 {
		t.Fatalf("excluded = %d, implausible for 8 bits/elem", s.ExcludedByFalsePositives())
	}
}

func TestRandomBFIdenticalSetsFallback(t *testing.T) {
	rng := prng.New(4)
	recv := keyset.Random(rng, 300)
	send := recv.Clone()
	s, err := NewSender(RandomBF, rng, send, recv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Everything is filtered; the sender must still emit something.
	if sym := s.Next(); sym.Degree() != 1 {
		t.Fatal("fallback did not emit")
	}
}

func TestRecodeEmitsRecodedSymbols(t *testing.T) {
	rng := prng.New(5)
	recv, send := sets(rng, 500, 500, 250)
	s, err := NewSender(Recode, rng, send, recv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sawMulti := false
	for i := 0; i < 200; i++ {
		sym := s.Next()
		if sym.Degree() > 50 {
			t.Fatalf("degree %d beyond cap", sym.Degree())
		}
		if sym.Degree() > 1 {
			sawMulti = true
		}
		for _, id := range sym.IDs {
			if !send.Contains(id) {
				t.Fatalf("recoded over non-member %d", id)
			}
		}
	}
	if !sawMulti {
		t.Fatal("Recode never blended more than one symbol")
	}
}

func TestRecodeBFDomainExcludesReceiver(t *testing.T) {
	rng := prng.New(6)
	recv, send := sets(rng, 1000, 1000, 600)
	s, err := NewSender(RecodeBF, rng, send, recv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.PoolSize() > 400 {
		t.Fatalf("recode domain %d > useful 400", s.PoolSize())
	}
	for i := 0; i < 200; i++ {
		for _, id := range s.Next().IDs {
			if recv.Contains(id) {
				t.Fatal("Recode/BF blended a symbol the receiver holds")
			}
		}
	}
}

func TestRecodeMWContainmentEstimate(t *testing.T) {
	rng := prng.New(7)
	recv, send := sets(rng, 2000, 2000, 1200) // c = |A∩B|/|B| = 0.6
	s, err := NewSender(RecodeMW, rng, send, recv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Containment()-0.6) > 0.15 {
		t.Fatalf("containment estimate %.3f, truth 0.6", s.Containment())
	}
	// Degrees should be inflated relative to oblivious recoding.
	so, _ := NewSender(Recode, rng, send, recv, Config{})
	mean := func(s *Sender) float64 {
		var sum float64
		for i := 0; i < 1000; i++ {
			sum += float64(s.Next().Degree())
		}
		return sum / 1000
	}
	mo, mw := mean(so), mean(s)
	if mw <= mo {
		t.Fatalf("Recode/MW mean degree %.2f not above oblivious %.2f", mw, mo)
	}
}

func TestSenderErrors(t *testing.T) {
	rng := prng.New(8)
	recv := keyset.Random(rng, 10)
	if _, err := NewSender(Random, rng, keyset.New(0), recv, Config{}); err == nil {
		t.Fatal("empty sender accepted")
	}
	if _, err := NewSender(Kind(42), rng, recv, recv, Config{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestConfigDefault(t *testing.T) {
	c := Config{}.Default()
	if c.BloomBitsPerElement != 8 || c.BloomHashes != 5 || c.MinwiseSize != 128 || c.RecodeMaxDegree != 50 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{BloomBitsPerElement: 4, BloomHashes: 3}.Default()
	if c2.BloomBitsPerElement != 4 || c2.BloomHashes != 3 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
}

func BenchmarkNewSenderRecodeBF(b *testing.B) {
	rng := prng.New(1)
	recv, send := sets(rng, 10000, 10000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSender(RecodeBF, rng, send, recv, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNextRecodeMW(b *testing.B) {
	rng := prng.New(2)
	recv, send := sets(rng, 10000, 10000, 5000)
	s, err := NewSender(RecodeMW, rng, send, recv, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Next()
	}
}
