package strategy

import (
	"errors"
	"testing"

	"icd/internal/keyset"
	"icd/internal/prng"
	"icd/internal/protocol"
	"icd/internal/recode"
)

// twoSets builds a sender set containing the receiver set plus extras,
// so the true missing-set is exactly the extras.
func twoSets(seed uint64, common, extra int) (receiver, sender *keyset.Set, extras []uint64) {
	rng := prng.New(seed)
	receiver = keyset.New(common)
	sender = keyset.New(common + extra)
	for receiver.Len() < common {
		k := rng.Uint64()
		receiver.Add(k)
		sender.Add(k)
	}
	for len(extras) < extra {
		k := rng.Uint64()
		if sender.Add(k) {
			extras = append(extras, k)
		}
	}
	return receiver, sender, extras
}

func roundTrip(t *testing.T, method protocol.SummaryMethod, held *keyset.Set, cfg Config) *ReceivedSummary {
	t.Helper()
	blob, err := BuildSummary(method, held, cfg)
	if err != nil {
		t.Fatalf("%v build: %v", method, err)
	}
	// Through the wire framing, as a session would send it.
	m, view, err := protocol.DecodeSummaryView(protocol.EncodeSummary(method, blob, false))
	if err != nil || m != method {
		t.Fatalf("%v frame round trip: method %v err %v", method, m, err)
	}
	rs, err := ParseSummary(m, view)
	if err != nil {
		t.Fatalf("%v parse: %v", method, err)
	}
	return rs
}

func TestBloomSummaryPlan(t *testing.T) {
	receiver, sender, extras := twoSets(1, 600, 120)
	rs := roundTrip(t, protocol.SummaryBloom, receiver, Config{})
	plan, err := rs.Plan(sender, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != recode.CoverageAdaptive {
		t.Fatalf("policy %v", plan.Policy)
	}
	// Soundness: Bloom false positives can only *suppress* missing
	// symbols, never admit held ones, so every domain element must be
	// genuinely missing at the receiver.
	plan.Domain.Each(func(id uint64) {
		if receiver.Contains(id) {
			t.Fatalf("domain contains receiver-held symbol %d", id)
		}
	})
	// Completeness up to the ~2% false-positive rate at 8 bits/element.
	if plan.Domain.Len() < len(extras)*9/10 {
		t.Fatalf("domain %d of %d missing symbols", plan.Domain.Len(), len(extras))
	}
}

func TestARTSummaryPlan(t *testing.T) {
	receiver, sender, extras := twoSets(2, 2000, 60)
	rs := roundTrip(t, protocol.SummaryART, receiver, Config{})
	plan, err := rs.Plan(sender, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != recode.CoverageAdaptive {
		t.Fatalf("policy %v", plan.Policy)
	}
	plan.Domain.Each(func(id uint64) {
		if receiver.Contains(id) {
			t.Fatalf("domain contains receiver-held symbol %d", id)
		}
	})
	// ART completeness is approximate (Figure 4): expect most of the
	// planted difference at 8 bits/element with correction.
	if plan.Domain.Len() < len(extras)/2 {
		t.Fatalf("ART found %d of %d missing symbols", plan.Domain.Len(), len(extras))
	}
}

func TestSketchSummaryPlan(t *testing.T) {
	receiver, sender, _ := twoSets(3, 3000, 1000)
	rs := roundTrip(t, protocol.SummarySketch, receiver, Config{})
	plan, err := rs.Plan(sender, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != recode.MinwiseScaled {
		t.Fatalf("policy %v", plan.Policy)
	}
	if plan.Domain.Len() != sender.Len() {
		t.Fatalf("sketch domain %d, want whole set %d", plan.Domain.Len(), sender.Len())
	}
	// True containment |R∩S|/|S| = 3000/4000 = 0.75; the 128-coordinate
	// estimate should land within ±0.15.
	if plan.Containment < 0.60 || plan.Containment > 0.90 {
		t.Fatalf("containment estimate %.3f, want ≈0.75", plan.Containment)
	}
}

func TestPlanNothingUseful(t *testing.T) {
	// Receiver holds a superset of the sender: every method must report
	// ErrNothingUseful rather than fabricate a domain.
	receiver, _, _ := twoSets(4, 800, 0)
	sender := receiver.Clone()
	for _, method := range []protocol.SummaryMethod{protocol.SummaryBloom, protocol.SummaryART} {
		rs := roundTrip(t, method, receiver, Config{})
		if _, err := rs.Plan(sender, Config{}); !errors.Is(err, ErrNothingUseful) {
			t.Fatalf("%v: err = %v, want ErrNothingUseful", method, err)
		}
	}
	rs := roundTrip(t, protocol.SummarySketch, receiver, Config{})
	if _, err := rs.Plan(sender, Config{}); !errors.Is(err, ErrNothingUseful) {
		t.Fatalf("sketch: err = %v, want ErrNothingUseful", err)
	}
}

func TestSummaryErrors(t *testing.T) {
	set := keyset.FromKeys([]uint64{1, 2, 3})
	if _, err := BuildSummary(protocol.SummaryNone, set, Config{}); err == nil {
		t.Error("built a 'none' summary")
	}
	if _, err := ParseSummary(protocol.SummaryBloom, []byte{1, 2}); err == nil {
		t.Error("parsed garbage bloom")
	}
	if _, err := ParseSummary(protocol.SummarySketch, []byte{1, 2}); err == nil {
		t.Error("parsed garbage sketch")
	}
	if _, err := ParseSummary(protocol.SummaryART, []byte{1, 2}); err == nil {
		t.Error("parsed garbage art")
	}
	if _, err := ParseSummary(protocol.SummaryNone, nil); err == nil {
		t.Error("parsed 'none' summary")
	}
}
