package recon

import (
	"testing"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// TestSummaryWireRoundTrip pins the transmissible summary format now
// that it travels in real SUMMARY frames (PR 3): a summary must survive
// Marshal/Unmarshal bit-exactly — same parameters, same filters, and an
// identical FindMissing outcome on the receiving side. (The seed
// version of MarshalBinary over-allocated 4 bytes, which Unmarshal
// rejected; this test keeps that regression dead.)
func TestSummaryWireRoundTrip(t *testing.T) {
	rng := prng.New(7)
	common := keyset.Random(rng, 3000)
	local := common.Clone()
	for i := 0; i < 80; i++ { // local extras the summary should expose
		local.Add(rng.Uint64())
	}
	remoteTree := Build(DefaultParams, common)
	sum, err := remoteTree.Summarize(SummaryOptions{TotalBitsPerElement: 8, LeafBitsPerElement: 5})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sum.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	if back.Params != sum.Params || back.N != sum.N || back.RootValue != sum.RootValue ||
		back.TotalBits != sum.TotalBits || back.LeafBits != sum.LeafBits {
		t.Fatalf("fields mangled: %+v vs %+v", back, sum)
	}

	localTree := Build(DefaultParams, local)
	want, _ := localTree.FindMissing(sum, 1)
	got, _ := localTree.FindMissing(&back, 1)
	if len(want) != len(got) {
		t.Fatalf("FindMissing diverged after round trip: %d vs %d", len(want), len(got))
	}
	wantSet := make(map[uint64]bool, len(want))
	for _, k := range want {
		wantSet[k] = true
	}
	for _, k := range got {
		if !wantSet[k] {
			t.Fatalf("key %d only found after round trip", k)
		}
	}

	// Truncations must be rejected, not misparsed.
	for _, cut := range []int{0, 8, 59, len(blob) - 1} {
		if err := new(Summary).UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
