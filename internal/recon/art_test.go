package recon

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// diffSets returns a base set of size n and a superset with d extra keys.
func diffSets(rng *prng.Rand, n, d int) (base, super *keyset.Set, extras []uint64) {
	base = keyset.Random(rng, n)
	super = base.Clone()
	for len(extras) < d {
		k := rng.Uint64()
		if super.Add(k) {
			extras = append(extras, k)
		}
	}
	return base, super, extras
}

func defaultOpts() SummaryOptions {
	return SummaryOptions{TotalBitsPerElement: 8, LeafBitsPerElement: 4}
}

func TestIdenticalSetsNothingMissing(t *testing.T) {
	rng := prng.New(1)
	s := keyset.Random(rng, 2000)
	ta := Build(DefaultParams, s)
	tb := Build(DefaultParams, s.Clone())
	if ta.RootValue() != tb.RootValue() {
		t.Fatal("equal sets, different root values")
	}
	sum, err := ta.Summarize(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	missing, stats := tb.FindMissing(sum, 5)
	if len(missing) != 0 {
		t.Fatalf("identical sets: %d missing reported", len(missing))
	}
	if stats.NodesVisited != 1 {
		t.Fatalf("identical sets should short-circuit, visited %d", stats.NodesVisited)
	}
}

func TestSoundness(t *testing.T) {
	// Everything reported missing must be a true difference.
	rng := prng.New(2)
	base, super, extras := diffSets(rng, 5000, 100)
	ta := Build(DefaultParams, base)
	tb := Build(DefaultParams, super)
	sum, err := ta.Summarize(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	extraSet := keyset.FromKeys(extras)
	for corr := 0; corr <= 5; corr++ {
		missing, _ := tb.FindMissing(sum, corr)
		for _, k := range missing {
			if !extraSet.Contains(k) {
				t.Fatalf("correction %d: reported %d which peer A has", corr, k)
			}
		}
	}
}

func TestAccuracyImprovesWithCorrection(t *testing.T) {
	rng := prng.New(3)
	base, super, extras := diffSets(rng, 10000, 100)
	ta := Build(DefaultParams, base)
	tb := Build(DefaultParams, super)
	sum, err := ta.Summarize(SummaryOptions{TotalBitsPerElement: 8, LeafBitsPerElement: 5})
	if err != nil {
		t.Fatal(err)
	}
	acc := make([]float64, 6)
	for corr := 0; corr <= 5; corr++ {
		missing, _ := tb.FindMissing(sum, corr)
		acc[corr] = float64(len(missing)) / float64(len(extras))
	}
	if acc[5] < acc[0] {
		t.Fatalf("accuracy did not improve with correction: %v", acc)
	}
	// Table 4(b) ballpark: at 8 bits/element and correction 5 the paper
	// reports 92%; allow a generous band for implementation differences.
	if acc[5] < 0.70 {
		t.Fatalf("accuracy at correction 5 = %.3f, want ≥ 0.70 (paper: ≈0.92)", acc[5])
	}
	if acc[5] > 1 {
		t.Fatalf("accuracy > 1: %v", acc[5])
	}
}

func TestTreeShape(t *testing.T) {
	rng := prng.New(4)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		s := keyset.Random(rng, n)
		tr := Build(DefaultParams, s)
		if tr.N() != n {
			t.Fatalf("N = %d, want %d", tr.N(), n)
		}
		if tr.InternalNodes() > n-1 && n > 0 {
			t.Fatalf("n=%d: %d internal nodes", n, tr.InternalNodes())
		}
		if n >= 2 && tr.InternalNodes() != n-1 {
			// With 64-bit positions, collisions are essentially impossible,
			// so a binary tree over n leaves has exactly n−1 branching nodes.
			t.Fatalf("n=%d: internal nodes = %d, want %d", n, tr.InternalNodes(), n-1)
		}
		maxDepth := 4*int(math.Log2(float64(n)+2)) + 8
		if d := tr.Depth(); d > maxDepth {
			t.Fatalf("n=%d: depth %d exceeds O(log n) bound %d", n, d, maxDepth)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Build(DefaultParams, keyset.New(0))
	if tr.RootValue() != 0 || tr.Depth() != 0 || tr.N() != 0 {
		t.Fatal("empty tree malformed")
	}
	sum, err := tr.Summarize(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.New(5)
	other := Build(DefaultParams, keyset.Random(rng, 50))
	missing, _ := other.FindMissing(sum, 2)
	// All 50 keys differ; the only losses allowed are filter noise.
	if len(missing) < 25 {
		t.Fatalf("only %d/50 differences vs empty set", len(missing))
	}
	// Searching an empty tree finds nothing.
	osum, _ := other.Summarize(defaultOpts())
	m2, _ := tr.FindMissing(osum, 2)
	if len(m2) != 0 {
		t.Fatal("empty tree reported missing keys")
	}
	if m3, _ := tr.FindMissing(nil, 0); m3 != nil {
		t.Fatal("nil summary should yield nothing")
	}
}

func TestRootValueDetectsDifference(t *testing.T) {
	rng := prng.New(6)
	base, super, _ := diffSets(rng, 100, 1)
	ta := Build(DefaultParams, base)
	tb := Build(DefaultParams, super)
	if ta.RootValue() == tb.RootValue() {
		t.Fatal("different sets share a root value")
	}
}

func TestExactDiff(t *testing.T) {
	rng := prng.New(7)
	base, super, extras := diffSets(rng, 3000, 37)
	ta := Build(DefaultParams, base)
	tb := Build(DefaultParams, super)
	got := tb.ExactDiff(ta)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(extras, func(i, j int) bool { return extras[i] < extras[j] })
	if len(got) != len(extras) {
		t.Fatalf("ExactDiff found %d, want %d", len(got), len(extras))
	}
	for i := range got {
		if got[i] != extras[i] {
			t.Fatalf("ExactDiff[%d] = %d, want %d", i, got[i], extras[i])
		}
	}
	// Reverse direction: base has nothing super lacks.
	if rev := ta.ExactDiff(tb); len(rev) != 0 {
		t.Fatalf("reverse ExactDiff = %d keys, want 0", len(rev))
	}
}

func TestSearchCostScalesWithDifference(t *testing.T) {
	// Table 4(c): ART search is O(d log n), so visiting counts for small d
	// must be far below n.
	rng := prng.New(8)
	const n = 20000
	base, super, _ := diffSets(rng, n, 20)
	ta := Build(DefaultParams, base)
	tb := Build(DefaultParams, super)
	sum, err := ta.Summarize(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, stats := tb.FindMissing(sum, 1)
	if stats.NodesVisited > n/4 {
		t.Fatalf("visited %d nodes for d=20, n=%d — not O(d log n)", stats.NodesVisited, n)
	}
	if stats.NodesVisited == 0 {
		t.Fatal("no nodes visited")
	}
}

func TestSummarizeValidation(t *testing.T) {
	tr := Build(DefaultParams, keyset.FromKeys([]uint64{1, 2, 3}))
	bad := []SummaryOptions{
		{TotalBitsPerElement: 0, LeafBitsPerElement: 1},
		{TotalBitsPerElement: 8, LeafBitsPerElement: 0},
		{TotalBitsPerElement: 8, LeafBitsPerElement: 8},
		{TotalBitsPerElement: 8, LeafBitsPerElement: 9},
	}
	for i, opt := range bad {
		if _, err := tr.Summarize(opt); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}

func TestNegativeCorrectionClamped(t *testing.T) {
	rng := prng.New(9)
	base, super, _ := diffSets(rng, 100, 5)
	ta := Build(DefaultParams, base)
	tb := Build(DefaultParams, super)
	sum, _ := ta.Summarize(defaultOpts())
	m1, _ := tb.FindMissing(sum, -3)
	m0, _ := tb.FindMissing(sum, 0)
	if len(m1) != len(m0) {
		t.Fatal("negative correction behaves differently from 0")
	}
}

// Property: soundness for arbitrary small sets — reported keys are always
// true differences (no value collisions at these sizes).
func TestQuickSoundness(t *testing.T) {
	f := func(aKeys, bKeys []uint16) bool {
		a := keyset.New(len(aKeys))
		for _, k := range aKeys {
			a.Add(uint64(k))
		}
		b := keyset.New(len(bKeys))
		for _, k := range bKeys {
			b.Add(uint64(k))
		}
		ta := Build(DefaultParams, a)
		tb := Build(DefaultParams, b)
		sum, err := ta.Summarize(SummaryOptions{TotalBitsPerElement: 8, LeafBitsPerElement: 4})
		if err != nil {
			return false
		}
		for corr := 0; corr <= 3; corr++ {
			missing, _ := tb.FindMissing(sum, corr)
			for _, k := range missing {
				if a.Contains(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ExactDiff equals the set difference for random small sets.
func TestQuickExactDiff(t *testing.T) {
	f := func(aKeys, bKeys []uint16) bool {
		a := keyset.New(len(aKeys))
		for _, k := range aKeys {
			a.Add(uint64(k))
		}
		b := keyset.New(len(bKeys))
		for _, k := range bKeys {
			b.Add(uint64(k))
		}
		ta := Build(DefaultParams, a)
		tb := Build(DefaultParams, b)
		got := keyset.FromKeys(tb.ExactDiff(ta))
		want := b.Diff(a)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3Walkthrough(t *testing.T) {
	// E14: a miniature version of the paper's Figure 3 example — build a
	// small tree and verify the structural invariants the figure shows:
	// the root value is the XOR of all leaf values, and each internal
	// node's value is the XOR of its children.
	set := keyset.FromKeys([]uint64{13, 31, 29, 41, 55, 9, 33})
	tr := Build(DefaultParams, set)
	var leafXOR uint64
	var walk func(n *node) uint64
	walk = func(n *node) uint64 {
		if n.isLeaf() {
			leafXOR ^= n.value
			return n.value
		}
		l, r := walk(n.left), walk(n.right)
		if n.value != l^r {
			t.Fatalf("internal value %d != children XOR %d", n.value, l^r)
		}
		return n.value
	}
	rootVal := walk(tr.root)
	if rootVal != leafXOR {
		t.Fatalf("root %d != XOR of leaves %d", rootVal, leafXOR)
	}
	if tr.InternalNodes() != set.Len()-1 {
		t.Fatalf("internal nodes = %d, want %d", tr.InternalNodes(), set.Len()-1)
	}
}

func BenchmarkBuild10k(b *testing.B) {
	rng := prng.New(1)
	s := keyset.Random(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(DefaultParams, s)
	}
}

func BenchmarkFindMissingSmallDiff(b *testing.B) {
	rng := prng.New(2)
	base, super, _ := diffSets(rng, 10000, 100)
	ta := Build(DefaultParams, base)
	tb := Build(DefaultParams, super)
	sum, err := ta.Summarize(defaultOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tb.FindMissing(sum, 5)
	}
}

func BenchmarkSummarize(b *testing.B) {
	rng := prng.New(3)
	tr := Build(DefaultParams, keyset.Random(rng, 10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tr.Summarize(defaultOpts())
	}
}
