// Package recon implements Approximate Reconciliation Trees (ARTs), the
// new data structure introduced in §5.3 of the paper, together with the
// exact comparison-tree baseline used to test it.
//
// Construction mirrors Figure 3. Conceptually peer A builds a binary trie
// over the key universe whose root covers the whole universe and whose
// children split it in half; the node for interval I carries the set
// S_A ∩ I. Directly this tree has Θ(u) nodes and, collapsed, depth up to
// Θ(|S_A|), so two hashing steps are applied:
//
//  1. each key is hashed to a position in a poly(n)-sized space (we use
//     the full 64-bit output of a seeded mix) to balance the trie — the
//     collapsed depth becomes O(log n) w.h.p. ("Randomization for tree
//     balancing", Fig 3a);
//  2. each key is hashed again to a value in [1, h) to break spatial
//     correlation ("Breaking spatial correlation", Fig 3c); an internal
//     node's value is the XOR of its children's values (Fig 3d), so equal
//     subsets produce equal values regardless of shape.
//
// Rather than shipping the tree, A summarizes the node values in two
// Bloom filters — one for internal (branching) values, one for leaf
// values — so the per-element cost is a small constant number of bits
// (Fig 3e). Peer B then searches its own tree top-down: a node value
// found in A's internal filter means the subtrees likely agree and the
// search can be cut off; a leaf value missing from A's leaf filter
// reveals an element of S_B − S_A. Bloom false positives prune real
// differences, so a correction level allows a configurable number of
// consecutive matches before a path is abandoned (§5.3's fix for searches
// that would otherwise "never follow a full path down to the leaf").
package recon

import (
	"errors"
	"fmt"
	"sort"

	"icd/internal/bloom"
	"icd/internal/hashing"
	"icd/internal/keyset"
)

// Params fixes the two hash functions peers must agree on: position
// hashing (tree balancing) and value hashing (spatial decorrelation).
type Params struct {
	PosSeed uint64 // seed of the balancing hash (Fig 3a)
	ValSeed uint64 // seed of the value hash (Fig 3c)
}

// DefaultParams are the library-wide agreed tree hashes.
var DefaultParams = Params{PosSeed: 0x1ce0f00d, ValSeed: 0x5eedcafe}

// node is one collapsed-trie node. Exactly one of the two shapes occurs:
// a leaf carries the original keys hashing to one position (almost always
// a single key); an internal node has both children non-nil.
type node struct {
	value       uint64 // leaf: XOR of value hashes; internal: XOR of children
	left, right *node
	keys        []uint64 // leaf only: original keys at this position
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is one peer's approximate reconciliation tree. Build once per
// working-set snapshot; Add supports incremental growth by rebuilding the
// affected path lazily (we rebuild fully on demand — see Rebuild).
type Tree struct {
	params Params
	root   *node // nil for empty set
	n      int   // number of elements

	internalCount int // branching nodes, = number of internal values
}

// Build constructs the tree for set under params.
func Build(params Params, set *keyset.Set) *Tree {
	t := &Tree{params: params, n: set.Len()}
	if set.Len() == 0 {
		return t
	}
	type elem struct{ pos, val, key uint64 }
	elems := make([]elem, 0, set.Len())
	set.Each(func(k uint64) {
		elems = append(elems, elem{
			pos: hashing.Mix64(k ^ params.PosSeed),
			val: valueHash(params.ValSeed, k),
			key: k,
		})
	})
	sort.Slice(elems, func(i, j int) bool { return elems[i].pos < elems[j].pos })

	pos := make([]uint64, len(elems))
	vals := make([]uint64, len(elems))
	keys := make([]uint64, len(elems))
	for i, e := range elems {
		pos[i], vals[i], keys[i] = e.pos, e.val, e.key
	}

	var build func(lo, hi, depth int) *node
	build = func(lo, hi, depth int) *node {
		if hi-lo == 1 || depth == 64 {
			// Single position (or exhausted bits: position-hash collision,
			// astronomically rare) — a leaf.
			nd := &node{keys: append([]uint64(nil), keys[lo:hi]...)}
			for i := lo; i < hi; i++ {
				nd.value ^= vals[i]
			}
			return nd
		}
		// Split on bit (63-depth): positions are sorted, so find the first
		// element whose bit is set.
		bit := uint64(1) << uint(63-depth)
		mid := lo + sort.Search(hi-lo, func(i int) bool { return pos[lo+i]&bit != 0 })
		if mid == lo || mid == hi {
			// Chain node: same element set as its single child — collapse
			// (Fig 3b): no node materialized for this interval.
			return build(lo, hi, depth+1)
		}
		left := build(lo, mid, depth+1)
		right := build(mid, hi, depth+1)
		return &node{value: left.value ^ right.value, left: left, right: right}
	}
	t.root = build(0, len(elems), 0)
	t.internalCount = countInternal(t.root)
	return t
}

func countInternal(n *node) int {
	if n == nil || n.isLeaf() {
		return 0
	}
	return 1 + countInternal(n.left) + countInternal(n.right)
}

// valueHash maps a key into [1, 2^64): 0 is reserved so that an empty
// XOR accumulator is never a valid node value.
func valueHash(seed, key uint64) uint64 {
	v := hashing.Mix64(key ^ seed ^ 0x9e3779b97f4a7c15)
	if v == 0 {
		v = 1
	}
	return v
}

// N returns the number of summarized elements.
func (t *Tree) N() int { return t.n }

// InternalNodes returns the number of branching nodes (≤ n−1).
func (t *Tree) InternalNodes() int { return t.internalCount }

// Depth returns the height of the collapsed tree (0 for empty/leaf-only).
// O(log n) w.h.p., the property the balancing hash buys (§5.3).
func (t *Tree) Depth() int {
	var depth func(n *node) int
	depth = func(n *node) int {
		if n == nil || n.isLeaf() {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.root)
}

// RootValue returns the XOR value at the root; equal sets have equal root
// values (used by the exact comparison path and by tests).
func (t *Tree) RootValue() uint64 {
	if t.root == nil {
		return 0
	}
	return t.root.value
}

// Summary is what peer A actually transmits (Fig 3e): Bloom filters of
// the internal and leaf node values, a few bytes of parameters, nothing
// else. For an n-element set at b total bits per element the summary is
// ≈ b·n bits.
type Summary struct {
	Params    Params
	N         int // elements summarized (sizing hint for the receiver)
	Internal  *bloom.Filter
	Leaf      *bloom.Filter
	RootValue uint64 // lets the receiver short-circuit identical sets
	TotalBits float64
	LeafBits  float64
}

// SummaryOptions control the bit budget split of §5.3's two filters and
// the hash counts. TotalBitsPerElement is split as LeafBitsPerElement for
// the leaf filter and the remainder for the internal filter — the
// tradeoff swept in Figure 4(a).
type SummaryOptions struct {
	TotalBitsPerElement float64 // e.g. 8 (the paper's Fig 4a setting)
	LeafBitsPerElement  float64 // 0 < leaf < total
	Hashes              int     // per filter; ≤0 picks the optimum for its density
}

// Summarize produces the transmissible summary of the tree.
func (t *Tree) Summarize(opt SummaryOptions) (*Summary, error) {
	if opt.TotalBitsPerElement <= 0 {
		return nil, errors.New("recon: non-positive bit budget")
	}
	if opt.LeafBitsPerElement <= 0 || opt.LeafBitsPerElement >= opt.TotalBitsPerElement {
		return nil, fmt.Errorf("recon: leaf bits %.2f must be in (0, %.2f)",
			opt.LeafBitsPerElement, opt.TotalBitsPerElement)
	}
	n := t.n
	if n == 0 {
		n = 1
	}
	internalBits := opt.TotalBitsPerElement - opt.LeafBitsPerElement
	kLeaf := opt.Hashes
	if kLeaf <= 0 {
		kLeaf = bloom.OptimalHashes(opt.LeafBitsPerElement)
	}
	kInt := opt.Hashes
	if kInt <= 0 {
		kInt = bloom.OptimalHashes(internalBits)
	}
	s := &Summary{
		Params:    t.params,
		N:         t.n,
		Internal:  bloom.NewWithBitsPerElement(t.params.ValSeed^0xA11CE, n, internalBits, kInt),
		Leaf:      bloom.NewWithBitsPerElement(t.params.ValSeed^0xB0B, n, opt.LeafBitsPerElement, kLeaf),
		RootValue: t.RootValue(),
		TotalBits: opt.TotalBitsPerElement,
		LeafBits:  opt.LeafBitsPerElement,
	}
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.isLeaf() {
			s.Leaf.Add(nd.value)
			return
		}
		s.Internal.Add(nd.value)
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return s, nil
}

// SearchStats reports the work done by FindMissing, used by the Table
// 4(c) speed comparison: ART touches O(d log n) nodes versus the Bloom
// filter's Θ(n) membership probes.
type SearchStats struct {
	NodesVisited  int
	LeavesChecked int
	Found         int
}

// FindMissing walks the local tree against the remote summary and returns
// local keys believed absent from the summarized set (elements of
// S_local − S_remote). correction is the §5.3 correction level: the
// number of consecutive internal-filter matches tolerated before a branch
// is pruned (0 prunes at the first match).
//
// Soundness: keys returned are never in the summarized set unless a
// value-hash collision occurred (probability ≈ 2^-64 per pair).
// Completeness is approximate: Bloom false positives can hide true
// differences; Figure 4 quantifies the tradeoff.
func (t *Tree) FindMissing(s *Summary, correction int) ([]uint64, SearchStats) {
	var stats SearchStats
	if t.root == nil || s == nil {
		return nil, stats
	}
	if correction < 0 {
		correction = 0
	}
	var out []uint64
	// Identical sets short-circuit: matching root values mean (w.h.p.)
	// nothing to reconcile regardless of filter noise.
	if t.RootValue() == s.RootValue {
		stats.NodesVisited = 1
		return nil, stats
	}
	var walk func(nd *node, consecutive int)
	walk = func(nd *node, consecutive int) {
		stats.NodesVisited++
		if nd.isLeaf() {
			stats.LeavesChecked++
			if !s.Leaf.Contains(nd.value) {
				out = append(out, nd.keys...)
				stats.Found += len(nd.keys)
			}
			return
		}
		if s.Internal.Contains(nd.value) {
			consecutive++
			if consecutive > correction {
				return // pruned: subtrees assumed identical
			}
		} else {
			consecutive = 0
		}
		walk(nd.left, consecutive)
		walk(nd.right, consecutive)
	}
	walk(t.root, 0)
	return out, stats
}

// ExactDiff compares two in-memory trees directly (the un-summarized
// "comparison tree" of Fig 3d, in the spirit of Merkle trees) and returns
// the keys in t's set whose leaves have no value-equal counterpart in
// other. It is exact up to 64-bit value collisions and is used as the
// testing baseline and for local (same-host) reconciliation.
func (t *Tree) ExactDiff(other *Tree) []uint64 {
	otherValues := make(map[uint64]bool)
	var collect func(nd *node)
	collect = func(nd *node) {
		if nd == nil {
			return
		}
		otherValues[nd.value] = true
		collect(nd.left)
		collect(nd.right)
	}
	collect(other.root)

	var out []uint64
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if otherValues[nd.value] {
			return // identical subtree exists somewhere in other
		}
		if nd.isLeaf() {
			out = append(out, nd.keys...)
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return out
}
