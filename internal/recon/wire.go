package recon

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"icd/internal/bloom"
)

// MarshalBinary encodes the summary for transmission: tree parameters,
// set size, root value, the bit-budget split, and the two Bloom filter
// blobs. Total size ≈ TotalBits·n/8 bytes — the §5.3 economy (a gigabyte
// of content summarized in ~10KB per the paper's §3 estimate).
func (s *Summary) MarshalBinary() ([]byte, error) {
	if s.Internal == nil || s.Leaf == nil {
		return nil, errors.New("recon: incomplete summary")
	}
	ib, err := s.Internal.MarshalBinary()
	if err != nil {
		return nil, err
	}
	lb, err := s.Leaf.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 56+len(ib)+4+len(lb))
	binary.LittleEndian.PutUint64(buf[0:], s.Params.PosSeed)
	binary.LittleEndian.PutUint64(buf[8:], s.Params.ValSeed)
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.N))
	binary.LittleEndian.PutUint64(buf[24:], s.RootValue)
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(s.TotalBits))
	binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(s.LeafBits))
	binary.LittleEndian.PutUint64(buf[48:], uint64(len(ib)))
	copy(buf[56:], ib)
	off := 56 + len(ib)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(lb)))
	copy(buf[off+4:], lb)
	return buf, nil
}

// UnmarshalBinary decodes a summary produced by MarshalBinary.
func (s *Summary) UnmarshalBinary(data []byte) error {
	if len(data) < 60 {
		return errors.New("recon: summary too short")
	}
	s.Params.PosSeed = binary.LittleEndian.Uint64(data[0:])
	s.Params.ValSeed = binary.LittleEndian.Uint64(data[8:])
	s.N = int(binary.LittleEndian.Uint64(data[16:]))
	s.RootValue = binary.LittleEndian.Uint64(data[24:])
	s.TotalBits = math.Float64frombits(binary.LittleEndian.Uint64(data[32:]))
	s.LeafBits = math.Float64frombits(binary.LittleEndian.Uint64(data[40:]))
	ilen := binary.LittleEndian.Uint64(data[48:])
	if ilen > uint64(len(data)-60) {
		return fmt.Errorf("recon: internal filter length %d exceeds buffer", ilen)
	}
	off := 56 + int(ilen)
	s.Internal = newEmptyFilter()
	if err := s.Internal.UnmarshalBinary(data[56:off]); err != nil {
		return fmt.Errorf("recon: internal filter: %w", err)
	}
	llen := binary.LittleEndian.Uint32(data[off:])
	if int(llen) != len(data)-off-4 {
		return fmt.Errorf("recon: leaf filter length %d, have %d", llen, len(data)-off-4)
	}
	s.Leaf = newEmptyFilter()
	if err := s.Leaf.UnmarshalBinary(data[off+4:]); err != nil {
		return fmt.Errorf("recon: leaf filter: %w", err)
	}
	return nil
}

func newEmptyFilter() *bloom.Filter { return new(bloom.Filter) }
