package prng

import (
	"math"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(124)
	same := 0
	a = New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	b := a.Split()
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("split streams matched %d/1000 draws", matches)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(99)
	const n = 10
	const trials = 200000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d = %d, want ≈%.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(13)
	const n = 5
	const trials = 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("first element %d count %d, want ≈%.0f", i, c, want)
		}
	}
}

func TestSampleIntsDistinctAndInRange(t *testing.T) {
	r := New(21)
	for _, tc := range []struct{ n, k int }{
		{10, 0}, {10, 1}, {10, 5}, {10, 10}, {1000, 3}, {1000, 999},
	} {
		s := r.SampleInts(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("SampleInts(%d,%d) len %d", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("SampleInts(%d,%d) invalid: %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleIntsPanics(t *testing.T) {
	r := New(3)
	for _, tc := range []struct{ n, k int }{{5, 6}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleInts(%d,%d) did not panic", tc.n, tc.k)
				}
			}()
			r.SampleInts(tc.n, tc.k)
		}()
	}
}

func TestSampleIntsCoverage(t *testing.T) {
	// Every element should be sampled eventually (both code paths).
	r := New(31)
	for _, k := range []int{2, 40} { // Floyd path and shuffle path for n=50
		seen := map[int]bool{}
		for trial := 0; trial < 2000; trial++ {
			for _, v := range r.SampleInts(50, k) {
				seen[v] = true
			}
		}
		if len(seen) != 50 {
			t.Fatalf("k=%d: only %d/50 values ever sampled", k, len(seen))
		}
	}
}

func TestShuffleUint64s(t *testing.T) {
	r := New(41)
	orig := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	p := append([]uint64(nil), orig...)
	r.ShuffleUint64s(p)
	// Same multiset.
	count := map[uint64]int{}
	for _, v := range p {
		count[v]++
	}
	for _, v := range orig {
		if count[v] != 1 {
			t.Fatalf("shuffle changed contents: %v", p)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= r.Intn(23968)
	}
	_ = sink
}

func BenchmarkSampleIntsFloyd(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.SampleInts(500000, 11)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		a := New(seed)
		var b Rand
		b.Reseed(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("seed %d: Reseed stream diverges from New", seed)
			}
		}
	}
}

func TestSampleIntsIntoMatchesSampleInts(t *testing.T) {
	// Same draws, same values, across both the sparse (Floyd) and dense
	// (shuffle) regimes — and the returned buffer must be reusable.
	var buf []int
	for seed := uint64(0); seed < 50; seed++ {
		for _, nk := range [][2]int{{100, 3}, {100, 24}, {100, 99}, {7, 7}, {50, 0}} {
			n, k := nk[0], nk[1]
			want := New(seed).SampleInts(n, k)
			r := New(seed)
			buf = r.SampleIntsInto(n, k, buf)
			if len(buf) != len(want) {
				t.Fatalf("n=%d k=%d: len %d != %d", n, k, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("n=%d k=%d: [%d] = %d != %d", n, k, i, buf[i], want[i])
				}
			}
		}
	}
}
