// Package prng provides a small, fast, deterministic pseudo-random number
// generator (xoshiro256++) used by every stochastic component in the
// library: symbol sampling, degree draws, scenario construction, loss
// injection. Centralizing randomness behind explicit seeds makes each
// experiment exactly reproducible, which the benchmark harness relies on.
//
// The generator is NOT cryptographically secure; it is a simulation PRNG.
package prng

import "math/bits"

// Rand is a xoshiro256++ generator. The zero value is invalid; construct
// with New. Rand is not safe for concurrent use; give each goroutine its
// own generator (Split derives independent streams).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, per the
// xoshiro authors' recommendation.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes the generator in place from seed, exactly as New
// would. Hot paths that derive a fresh deterministic stream per symbol
// (e.g. fountain neighbor expansion) reseed a stack-allocated Rand
// instead of calling New, which keeps them allocation-free.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state (probability ~2^-256, but cheap to rule out).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// Split derives a new independent generator from the current stream.
func (r *Rand) Split() *Rand { return New(r.Uint64() ^ 0x6a09e667f3bcc909) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place (Fisher–Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleUint64s permutes p in place (Fisher–Yates).
func (r *Rand) ShuffleUint64s(p []uint64) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// SampleInts returns k distinct values drawn uniformly from [0, n)
// without replacement. It panics if k > n or k < 0.
func (r *Rand) SampleInts(n, k int) []int {
	return r.SampleIntsInto(n, k, nil)
}

// SampleIntsInto is SampleInts writing into buf's storage (buf is
// re-sliced from 0 and grown only if its capacity is insufficient).
// Passing the previous call's result back in makes repeated sampling
// allocation-free in steady state; the consumed random stream and the
// returned values are identical to SampleInts.
//
// For small k relative to n it uses Floyd's algorithm (O(k) draws);
// otherwise it Fisher–Yates shuffles a dense range in buf. Floyd
// duplicate detection is a linear scan while k is small (the common
// hot-path regime: recoding degrees are capped at 50 and soliton
// degrees are overwhelmingly small) and switches to a map above that,
// keeping large uncapped degrees O(k) instead of O(k²).
func (r *Rand) SampleIntsInto(n, k int, buf []int) []int {
	if k < 0 || k > n {
		panic("prng: SampleInts k out of range")
	}
	out := buf[:0]
	if k == 0 {
		return out
	}
	if k*4 >= n {
		// Dense case: materialize [0, n), shuffle, keep the prefix. The
		// draws match Perm exactly.
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
		r.ShuffleInts(out)
		return out[:k]
	}
	// Both dedup structures see the same candidate stream, so the draws
	// and results are identical regardless of which is used.
	const scanLimit = 64
	var chosen map[int]struct{}
	if k > scanLimit {
		chosen = make(map[int]struct{}, k)
	}
	for j := n - k; j < n; j++ {
		v := r.Intn(j + 1)
		if chosen != nil {
			if _, dup := chosen[v]; dup {
				v = j
			}
			chosen[v] = struct{}{}
		} else {
			for _, c := range out {
				if c == v {
					v = j
					break
				}
			}
		}
		out = append(out, v)
	}
	return out
}
