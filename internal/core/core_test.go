package core

import (
	"testing"

	"icd/internal/keyset"
	"icd/internal/minwise"
	"icd/internal/prng"
	"icd/internal/strategy"
)

func peerWith(cfg Config, keys []uint64) *Peer {
	p := NewPeer(cfg)
	for _, k := range keys {
		p.AddSymbol(k)
	}
	return p
}

func sketchOf(cfg Config, set *keyset.Set) *minwise.Sketch {
	cfg = cfg.withDefaults()
	return minwise.Build(cfg.MinwiseFamilySeed, cfg.MinwiseSize, set)
}

func TestAddSymbolDedupes(t *testing.T) {
	p := NewPeer(Config{})
	if !p.AddSymbol(1) || p.AddSymbol(1) {
		t.Fatal("dedupe broken")
	}
	if p.Working().Len() != 1 || p.Sketch().SetSize != 1 {
		t.Fatal("state inconsistent")
	}
}

func TestEvaluateIdenticalRejected(t *testing.T) {
	rng := prng.New(1)
	keys := keyset.Random(rng, 500).Keys()
	a := peerWith(Config{}, keys)
	b := peerWith(Config{}, keys)
	got, err := a.EvaluateCandidate(b.Sketch())
	if err != nil {
		t.Fatal(err)
	}
	if got.Decision != Reject {
		t.Fatalf("identical candidate not rejected: %+v", got)
	}
}

func TestEvaluateDisjointCoarse(t *testing.T) {
	rng := prng.New(2)
	a := peerWith(Config{}, keyset.Random(rng, 400).Keys())
	b := peerWith(Config{}, keyset.Random(rng, 400).Keys())
	got, err := a.EvaluateCandidate(b.Sketch())
	if err != nil {
		t.Fatal(err)
	}
	if got.Decision != CoarseTransfer {
		t.Fatalf("disjoint candidate: %+v", got)
	}
	if got.UsefulFraction < 0.9 {
		t.Fatalf("useful fraction %.3f, want ≈1", got.UsefulFraction)
	}
	if got.Strategy != strategy.RecodeMW {
		t.Fatalf("strategy = %v", got.Strategy)
	}
}

func TestEvaluateOverlappingFineGrained(t *testing.T) {
	rng := prng.New(3)
	shared := keyset.Random(rng, 800)
	a := peerWith(Config{}, shared.Keys())
	bKeys := shared.Keys()[:600]
	b := peerWith(Config{}, bKeys)
	for i := 0; i < 100; i++ {
		b.AddSymbol(rng.Uint64())
	}
	// a holds 600/700 of b's content: containment ≈ 0.86.
	got, err := a.EvaluateCandidate(b.Sketch())
	if err != nil {
		t.Fatal(err)
	}
	if got.Decision != FineGrained {
		t.Fatalf("overlapping candidate: %+v", got)
	}
	if got.Strategy != strategy.RecodeBF {
		t.Fatalf("strategy = %v", got.Strategy)
	}
	if got.Containment < 0.6 {
		t.Fatalf("containment %.3f, want ≈0.86", got.Containment)
	}
}

func TestEvaluateNilSketch(t *testing.T) {
	p := NewPeer(Config{})
	if _, err := p.EvaluateCandidate(nil); err == nil {
		t.Fatal("nil sketch accepted")
	}
}

func TestBloomAndARTSummaries(t *testing.T) {
	rng := prng.New(4)
	keys := keyset.Random(rng, 1000).Keys()
	a := peerWith(Config{}, keys)
	bf := a.BloomSummary()
	for _, k := range keys[:100] {
		if !bf.Contains(k) {
			t.Fatal("bloom summary false negative")
		}
	}
	// ART summary from a, searched by a richer peer b.
	sum, err := a.ARTSummary()
	if err != nil {
		t.Fatal(err)
	}
	b := peerWith(Config{}, keys)
	var extras []uint64
	for i := 0; i < 50; i++ {
		k := rng.Uint64()
		if b.AddSymbol(k) {
			extras = append(extras, k)
		}
	}
	missing := b.FindMissingFrom(sum)
	if len(missing) == 0 {
		t.Fatal("ART found no differences")
	}
	extraSet := keyset.FromKeys(extras)
	for _, k := range missing {
		if !extraSet.Contains(k) {
			t.Fatalf("ART reported %d which a holds", k)
		}
	}
}

func TestPlanSendersPrefersComplementary(t *testing.T) {
	cfg := Config{}.withDefaults()
	rng := prng.New(5)
	universe := keyset.Random(rng, 3000)
	slice := func(lo, hi int) *keyset.Set {
		s := keyset.New(hi - lo)
		for i := lo; i < hi; i++ {
			s.Add(universe.At(i))
		}
		return s
	}
	me := peerWith(cfg, slice(0, 1000).Keys())
	// Candidate 0 duplicates me; candidate 1 overlaps half; candidate 2
	// is fully complementary; candidate 3 duplicates candidate 2.
	cands := []*minwise.Sketch{
		sketchOf(cfg, slice(0, 1000)),
		sketchOf(cfg, slice(500, 1500)),
		sketchOf(cfg, slice(1000, 2000)),
		sketchOf(cfg, slice(1000, 2000)),
	}
	picks, err := me.PlanSenders(cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 2 {
		t.Fatalf("picked %v", picks)
	}
	if picks[0] != 2 && picks[0] != 3 {
		t.Fatalf("first pick %d, want the complementary candidate", picks[0])
	}
	// Second pick must NOT be the duplicate of the first (the union
	// sketch makes its marginal value ≈ 0); it should be candidate 1.
	if picks[1] != 1 {
		t.Fatalf("second pick %d, want 1 (union-aware marginal gain)", picks[1])
	}
}

func TestPlanSendersEdges(t *testing.T) {
	p := NewPeer(Config{})
	if picks, err := p.PlanSenders(nil, 3); err != nil || picks != nil {
		t.Fatalf("empty candidates: %v %v", picks, err)
	}
	cfg := Config{}.withDefaults()
	rng := prng.New(6)
	cand := sketchOf(cfg, keyset.Random(rng, 100))
	picks, err := p.PlanSenders([]*minwise.Sketch{cand, nil}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 1 || picks[0] != 0 {
		t.Fatalf("picks = %v", picks)
	}
}

func TestLoadBalanceGroups(t *testing.T) {
	cfg := Config{}.withDefaults()
	rng := prng.New(7)
	s1 := keyset.Random(rng, 500)
	s2 := keyset.Random(rng, 500)
	cands := []*minwise.Sketch{
		sketchOf(cfg, s1),
		sketchOf(cfg, s2),
		sketchOf(cfg, s1.Clone()),
		sketchOf(cfg, s1.Clone()),
	}
	groups, err := LoadBalance(cands, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 { // the three s1 copies, largest first
		t.Fatalf("largest group = %v", groups[0])
	}
}

func TestDecisionStrings(t *testing.T) {
	if Reject.String() != "reject" || CoarseTransfer.String() != "coarse" ||
		FineGrained.String() != "fine-grained" {
		t.Fatal("decision strings")
	}
	if Decision(9).String() != "Decision(9)" {
		t.Fatal("unknown decision string")
	}
}

func BenchmarkAddSymbol(b *testing.B) {
	p := NewPeer(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddSymbol(uint64(i))
	}
}

func BenchmarkEvaluateCandidate(b *testing.B) {
	rng := prng.New(1)
	a := peerWith(Config{}, keyset.Random(rng, 1000).Keys())
	c := peerWith(Config{}, keyset.Random(rng, 1000).Keys())
	sk := c.Sketch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.EvaluateCandidate(sk); err != nil {
			b.Fatal(err)
		}
	}
}
