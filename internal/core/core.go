// Package core assembles the paper's toolbox into the informed-delivery
// control loop an end-system runs (§3):
//
//  1. maintain a working set of encoded symbols with an incrementally
//     updated min-wise sketch — the 1KB "calling card" (§4);
//  2. on meeting a candidate peer, exchange sketches and run admission
//     control: reject identical peers, estimate containment, and choose
//     between coarse (recoding) and fine-grained (Bloom filter / ART)
//     reconciliation based on how large the set difference is (§3's
//     menu of approaches and their costs);
//  3. when selecting among many candidates, greedily pick the set of
//     senders whose combined working set adds the most, using the
//     coordinate-wise-min union of sketches (§4's third-peer trick).
//
// The heavy lifting lives in the substrate packages; this package holds
// the decision logic and the per-peer state.
package core

import (
	"errors"
	"fmt"
	"sort"

	"icd/internal/bloom"
	"icd/internal/keyset"
	"icd/internal/minwise"
	"icd/internal/recon"
	"icd/internal/strategy"
)

// Config fixes the universally agreed parameters of a deployment. The
// zero value selects the paper's defaults.
type Config struct {
	MinwiseFamilySeed uint64
	MinwiseSize       int     // default 128 (1KB sketch)
	BloomSeed         uint64  //
	BloomBits         float64 // bits/element, default 8
	BloomHashes       int     // default 5
	ARTParams         recon.Params
	ARTBits           float64 // total bits/element, default 8
	ARTLeafBits       float64 // default 5
	ARTCorrection     int     // default 5

	// IdenticalReject is the resemblance at or above which a candidate is
	// rejected as holding (nearly) identical content. Default 1.0 — only
	// perfect sketches reject, as in §4's admission control.
	IdenticalReject float64
	// FineGrainedThreshold is the containment above which fine-grained
	// reconciliation (summaries) is recommended: when most of a peer's
	// content is already held, random or oblivious recoded transfers are
	// mostly redundant and the (more expensive) searchable summaries pay
	// for themselves (§3, §5.3). Default 0.2.
	FineGrainedThreshold float64
}

func (c Config) withDefaults() Config {
	if c.MinwiseSize == 0 {
		c.MinwiseSize = minwise.DefaultSize
	}
	if c.BloomBits == 0 {
		c.BloomBits = 8
	}
	if c.BloomHashes == 0 {
		c.BloomHashes = 5
	}
	if c.ARTParams == (recon.Params{}) {
		c.ARTParams = recon.DefaultParams
	}
	if c.ARTBits == 0 {
		c.ARTBits = 8
	}
	if c.ARTLeafBits == 0 {
		c.ARTLeafBits = 5
	}
	if c.ARTCorrection == 0 {
		c.ARTCorrection = 5
	}
	if c.IdenticalReject == 0 {
		c.IdenticalReject = 1
	}
	if c.FineGrainedThreshold == 0 {
		c.FineGrainedThreshold = 0.2
	}
	return c
}

// Peer is one end-system's informed-delivery state for one content item.
// Not safe for concurrent mutation.
type Peer struct {
	cfg     Config
	working *keyset.Set
	sketch  *minwise.Sketch
}

// NewPeer creates an empty peer.
func NewPeer(cfg Config) *Peer {
	cfg = cfg.withDefaults()
	return &Peer{
		cfg:     cfg,
		working: keyset.New(256),
		sketch:  minwise.New(cfg.MinwiseFamilySeed, cfg.MinwiseSize),
	}
}

// AddSymbol records receipt of an encoded symbol; the sketch updates in
// O(sketch size) — constant per symbol, as §4 requires.
func (p *Peer) AddSymbol(id uint64) bool {
	if !p.working.Add(id) {
		return false
	}
	p.sketch.Add(id)
	return true
}

// Working exposes the working set (read-only by convention).
func (p *Peer) Working() *keyset.Set { return p.working }

// Sketch returns the current min-wise sketch (do not mutate).
func (p *Peer) Sketch() *minwise.Sketch { return p.sketch }

// BloomSummary builds the §5.2 summary of the current working set.
func (p *Peer) BloomSummary() *bloom.Filter {
	return bloom.FromSet(p.cfg.BloomSeed, p.working, p.cfg.BloomBits, p.cfg.BloomHashes)
}

// ARTSummary builds the §5.3 summary of the current working set.
func (p *Peer) ARTSummary() (*recon.Summary, error) {
	tree := recon.Build(p.cfg.ARTParams, p.working)
	return tree.Summarize(recon.SummaryOptions{
		TotalBitsPerElement: p.cfg.ARTBits,
		LeafBitsPerElement:  p.cfg.ARTLeafBits,
	})
}

// FindMissingFrom searches the local working set against a remote ART
// summary, returning symbols the remote peer likely lacks — the inputs to
// a reconciled transfer.
func (p *Peer) FindMissingFrom(remote *recon.Summary) []uint64 {
	tree := recon.Build(p.cfg.ARTParams, p.working)
	missing, _ := tree.FindMissing(remote, p.cfg.ARTCorrection)
	return missing
}

// Decision is the admission-control outcome for one candidate sender.
type Decision int

const (
	// Reject: the candidate's content is (likely) identical — connecting
	// is useless (§4: "receivers immediately reject candidate senders
	// whose content is identical to their own").
	Reject Decision = iota
	// CoarseTransfer: working sets differ a lot; cheap strategies
	// (random or oblivious recoding) already deliver mostly-useful
	// symbols.
	CoarseTransfer
	// FineGrained: substantial overlap; invest in a Bloom filter or ART
	// exchange and run reconciled/informed transfers.
	FineGrained
)

func (d Decision) String() string {
	switch d {
	case Reject:
		return "reject"
	case CoarseTransfer:
		return "coarse"
	case FineGrained:
		return "fine-grained"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Assessment is the full admission-control result.
type Assessment struct {
	Resemblance    float64 // |A∩B| / |A∪B| estimate
	Containment    float64 // |A∩B| / |B| estimate — how much of B we hold
	UsefulFraction float64 // 1 − Containment: how useful B rates to be
	Decision       Decision
	Strategy       strategy.Kind // recommended §6.2 strategy
}

// EvaluateCandidate runs §4 admission control against a candidate
// sender's sketch.
func (p *Peer) EvaluateCandidate(remote *minwise.Sketch) (Assessment, error) {
	if remote == nil {
		return Assessment{}, errors.New("core: nil remote sketch")
	}
	r, err := p.sketch.Resemblance(remote)
	if err != nil {
		return Assessment{}, err
	}
	c, err := p.sketch.ContainmentOf(remote)
	if err != nil {
		return Assessment{}, err
	}
	a := Assessment{Resemblance: r, Containment: c, UsefulFraction: 1 - c}
	identical, err := p.sketch.LikelyIdentical(remote)
	if err != nil {
		return Assessment{}, err
	}
	switch {
	case identical || r >= p.cfg.IdenticalReject:
		a.Decision = Reject
		a.Strategy = strategy.Random // moot
	case c >= p.cfg.FineGrainedThreshold:
		a.Decision = FineGrained
		a.Strategy = strategy.RecodeBF
	default:
		a.Decision = CoarseTransfer
		a.Strategy = strategy.RecodeMW
	}
	return a, nil
}

// PlanSenders greedily selects up to k candidate senders maximizing the
// estimated growth of the receiver's working set, peer by peer. After
// each pick the receiver's sketch is unioned with the pick's sketch
// (coordinate-wise min), so later marginal estimates account for what
// earlier picks will already deliver — §4's "estimate the overlap of a
// third peer's working set with the combined working set A∪B". It
// returns candidate indices in pick order.
func (p *Peer) PlanSenders(candidates []*minwise.Sketch, k int) ([]int, error) {
	if k <= 0 || len(candidates) == 0 {
		return nil, nil
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	current := p.sketch
	picked := make([]int, 0, k)
	used := make([]bool, len(candidates))
	for len(picked) < k {
		bestIdx, bestGain := -1, 0.0
		for i, cand := range candidates {
			if used[i] || cand == nil {
				continue
			}
			c, err := current.ContainmentOf(cand)
			if err != nil {
				return nil, fmt.Errorf("core: candidate %d: %w", i, err)
			}
			gain := (1 - c) * float64(cand.SetSize) // expected new symbols
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 || bestGain <= 0 {
			break // nothing further adds anything
		}
		used[bestIdx] = true
		picked = append(picked, bestIdx)
		u, err := current.Union(candidates[bestIdx])
		if err != nil {
			return nil, err
		}
		current = u
	}
	return picked, nil
}

// LoadBalance partitions identical-content candidates (per their
// sketches) into groups so a receiver can spread load: candidates whose
// pairwise resemblance exceeds the identical threshold land in one
// group. Groups are returned as index lists, largest first (§4: "the
// receivers will also be able to distribute the load among the senders
// whose content is identical").
func LoadBalance(candidates []*minwise.Sketch, identicalThreshold float64) ([][]int, error) {
	var groups [][]int
	assigned := make([]bool, len(candidates))
	for i := range candidates {
		if assigned[i] || candidates[i] == nil {
			continue
		}
		group := []int{i}
		assigned[i] = true
		for j := i + 1; j < len(candidates); j++ {
			if assigned[j] || candidates[j] == nil {
				continue
			}
			r, err := candidates[i].Resemblance(candidates[j])
			if err != nil {
				return nil, err
			}
			if r >= identicalThreshold {
				group = append(group, j)
				assigned[j] = true
			}
		}
		groups = append(groups, group)
	}
	sort.SliceStable(groups, func(a, b int) bool { return len(groups[a]) > len(groups[b]) })
	return groups, nil
}
