package peermux

// obs.go binds a wire to the node-wide observability registry: credit
// occupancy against the wire budget, channel population, inbound queue
// depths, and the lifecycle trace (channel open/resize/close). A wire
// without a registry pays one nil check per lifecycle event and a
// nil-receiver no-op per frame — nothing else.

import (
	"fmt"

	"icd/internal/obs"
)

// wireMetrics caches the registry handles a wire updates. The zero
// value (no registry configured) is fully operational: every handle is
// nil and the obs package treats nil metrics as no-ops.
type wireMetrics struct {
	chansOpen  *obs.Gauge     // peermux.channels{state=open}
	opened     *obs.Counter   // peermux.channels{event=opened}
	closed     *obs.Counter   // peermux.channels{event=closed}
	rejected   *obs.Counter   // peermux.channels{event=rejected}
	windowSum  *obs.Gauge     // peermux.window_inflight
	ceiling    *obs.Gauge     // peermux.window_ceiling
	queueDepth *obs.Histogram // peermux.queue_depth
}

func newWireMetrics(r *obs.Registry) wireMetrics {
	if r == nil {
		return wireMetrics{}
	}
	return wireMetrics{
		chansOpen:  r.Gauge("peermux.channels{state=open}"),
		opened:     r.Counter("peermux.channels{event=opened}"),
		closed:     r.Counter("peermux.channels{event=closed}"),
		rejected:   r.Counter("peermux.channels{event=rejected}"),
		windowSum:  r.Gauge("peermux.window_inflight"),
		ceiling:    r.Gauge("peermux.window_ceiling"),
		queueDepth: r.Histogram("peermux.queue_depth", obs.CountBuckets),
	}
}

// noteChanOpen records a channel whose credit window just opened — the
// point a subchannel becomes live, symmetric between the dialing side
// (OpenWindow) and the accepting side (Accept), both via grantInitial.
func (w *Wire) noteChanOpen(id uint16, window int) {
	w.met.opened.Add(1)
	w.met.chansOpen.Add(1)
	if r := w.cfg.Obs; r != nil {
		r.Trace(obs.EvChanOpen, w.raddr, fmt.Sprintf("id=%d window=%d", id, window))
	}
}

// noteChanClose mirrors noteChanOpen when the window retires (local
// close, remote close, or wire death) — exactly once per live channel,
// anchored on the same granted/retired flags retireWindow settles.
func (w *Wire) noteChanClose(id uint16, window int) {
	w.met.closed.Add(1)
	w.met.chansOpen.Add(-1)
	if r := w.cfg.Obs; r != nil {
		r.Trace(obs.EvChanClose, w.raddr, fmt.Sprintf("id=%d window=%d", id, window))
	}
}

// noteResize records a live receive-window resize in the trace ring.
func (c *Channel) noteResize(target int) {
	if r := c.w.cfg.Obs; r != nil {
		r.Trace(obs.EvChanResize, c.w.raddr, fmt.Sprintf("id=%d window=%d", c.id, target))
	}
}
