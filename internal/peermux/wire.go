package peermux

// wire.go owns the shared connection: the MUX_HELLO handshake, the
// single reader goroutine that demultiplexes envelopes onto channel
// queues, serialized frame writes, channel open/accept bookkeeping, and
// the containment rules for misbehaving peers (unknown ids, credit
// overruns, corrupt frames) — charge and drop, never wedge.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"icd/internal/obs"
	"icd/internal/protocol"
)

// Misbehavior weights passed to Config.Penalize — aligned with the peer
// package's penalty constants (a protocol violation weighs like a
// connection reset, a corrupt stream like PenaltyCorrupt) so fabric
// misbehavior accumulates in the same ban ledger as legacy-session
// misbehavior.
const (
	// WeightViolation charges a per-frame protocol violation: an
	// envelope for a channel that never existed, a data frame past the
	// granted credit window, a malformed negotiation frame.
	WeightViolation = 0.5
	// WeightCorrupt charges a corrupt frame stream (CRC/magic failure),
	// which kills the wire.
	WeightCorrupt = 3.0
)

// Default Config values.
const (
	DefaultTimeout     = 30 * time.Second
	DefaultMaxChannels = 64
	DefaultWindow      = 512
	// drainedIDs bounds the set of recently retired channel ids whose
	// in-flight frames are drained silently instead of punished.
	drainedIDs = 64
	// queueSlack is headroom on a channel's inbound queue beyond the
	// credit window, for control frames that don't consume credits.
	queueSlack = 64
)

// ErrClosed marks an operation on a closed wire, channel or fabric.
var ErrClosed = errors.New("peermux: closed")

// ErrDeadline marks a channel read or credit wait that ran past the
// deadline set with SetDeadline. It satisfies net.Error's Timeout
// contract via errors.Is on os.ErrDeadlineExceeded at call sites that
// care; the session layer only needs "this blocked too long".
var ErrDeadline = errors.New("peermux: deadline exceeded")

// RemoteError is a wire-level ERROR frame from the peer — the answer a
// server gives before or instead of a fabric handshake (banned, busy,
// version mismatch). The session layer classifies Msg with the
// protocol.Is* helpers.
type RemoteError struct{ Msg string }

// Error implements the error interface.
func (e *RemoteError) Error() string { return "peermux: remote error: " + e.Msg }

// RejectError is a REJECT_CHANNEL answer: the wire is healthy but the
// peer declined this channel. Msg reuses the canonical ERROR vocabulary.
type RejectError struct{ Msg string }

// Error implements the error interface.
func (e *RejectError) Error() string { return "peermux: channel rejected: " + e.Msg }

// Config parameterizes a Wire (and, via Fabric, every wire it dials).
type Config struct {
	// Timeout bounds every blocking wire operation: the handshake, one
	// frame write, and the reader's per-frame idle limit (default 30s).
	Timeout time.Duration
	// MaxChannels caps concurrently open channels accepted from the
	// peer (default 64). Announced in MUX_HELLO; openers respect the
	// peer's announcement.
	MaxChannels int
	// Window is the per-channel credit-window maximum in symbol frames
	// (default 512): how many SYMBOL/RECODED frames the remote sender
	// may have in flight before the local consumer drains them. It is
	// both the default initial grant and the hard ceiling any
	// Channel.SetWindow resize is clamped to (the inbound queues are
	// sized for it).
	Window int
	// WireWindow, when positive, caps the aggregate of all local
	// receive windows on one wire: window grows (and initial grants
	// beyond the first frame) are clamped to the remaining headroom, so
	// a scheduler handing out per-channel windows cannot oversubscribe
	// the wire no matter how many channels it opens. 0 leaves the
	// aggregate unbounded (each channel still clamps to Window).
	WireWindow int
	// ListenAddr is advertised in the MUX_HELLO for gossip attribution
	// (empty: not dialable).
	ListenAddr string
	// Penalize, when non-nil, charges peer misbehavior (weights above).
	// The caller binds the address/attribution — the wire only reports
	// the weight.
	Penalize func(weight float64)
	// OnPeers, when non-nil, receives wire-level gossip advertisements.
	OnPeers func(ads []protocol.PeerAd)
	// Obs, when non-nil, receives wire metrics (credit occupancy vs the
	// wire budget, channel population, queue depths) and lifecycle
	// trace events (channel open/resize/close). Fabric copies it to
	// every wire it dials.
	Obs *obs.Registry

	// onDead is the fabric's teardown hook (set internally).
	onDead func()
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxChannels <= 0 {
		c.MaxChannels = DefaultMaxChannels
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	return c
}

// Wire is one multiplexed peer connection: a MUX_HELLO-established
// frame stream carrying numbered subchannels. A single reader goroutine
// (Dial side) or the Serve call (accept side) demultiplexes inbound
// frames; writes from any channel are serialized on the shared conn.
type Wire struct {
	conn    net.Conn
	fr      *protocol.FrameReader
	cfg     Config
	dialer  bool
	remote  protocol.MuxHello
	handler func(*Channel)
	met     wireMetrics
	raddr   string // cached RemoteAddr().String() for trace subjects

	// wmu serializes writes on conn. Never acquired while holding mu.
	wmu     sync.Mutex
	sentAds map[protocol.PeerAd]bool

	// winMu guards winSum, the aggregate of every open channel's local
	// receive-window target — the wire-level credit ledger a scheduler
	// reads (WindowSum) and Config.WireWindow budgets. Leaf lock: held
	// only across the sum arithmetic, never while taking mu or wmu.
	winMu  sync.Mutex
	winSum int

	mu       sync.Mutex
	chans    map[uint16]*Channel
	pend     map[uint16]chan openReply
	drain    map[uint16]struct{}
	drainq   []uint16
	nextID   uint16
	err      error
	dead     bool
	deadOnce sync.Once

	done chan struct{} // closed when the wire fails or closes
	hwg  sync.WaitGroup
}

type openReply struct {
	hello  protocol.Hello
	reject string
	ok     bool
}

// Dial performs the dialer side of the fabric handshake on conn and
// starts the demultiplexing reader. On a version rejection from the
// peer the returned error wraps protocol.ErrVersion.
func Dial(conn net.Conn, cfg Config) (*Wire, error) {
	cfg = cfg.withDefaults()
	conn.SetDeadline(time.Now().Add(cfg.Timeout))
	hello := protocol.MuxHello{
		MaxChannels: uint16(cfg.MaxChannels),
		ListenAddr:  cfg.ListenAddr,
	}
	if err := protocol.WriteFrame(conn, protocol.EncodeMuxHello(hello)); err != nil {
		conn.Close()
		return nil, err
	}
	fr := protocol.NewFrameReader(conn)
	f, err := fr.Next()
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch f.Type {
	case protocol.TypeMuxHello:
		// fall through
	case protocol.TypeError:
		msg, _ := protocol.DecodeError(f)
		conn.Close()
		if protocol.IsVersionReject(msg) {
			return nil, fmt.Errorf("peermux: %s: %w", msg, protocol.ErrVersion)
		}
		return nil, &RemoteError{Msg: msg}
	default:
		conn.Close()
		return nil, fmt.Errorf("peermux: handshake answered with %v, want MUX_HELLO", f.Type)
	}
	remote, err := protocol.DecodeMuxHello(f)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	w := newWire(conn, fr, cfg, true, remote)
	go w.readLoop()
	return w, nil
}

// Accept performs the acceptor side of the handshake: the caller (the
// server mux) already read the client's MUX_HELLO off fr; Accept
// answers with our own and returns the wire. handler is invoked in its
// own goroutine for every channel the peer opens; it owns the channel
// and must Accept or Reject it, then serve until error. The caller
// drives the wire by calling Serve, which returns when the connection
// dies and every handler has exited.
func Accept(conn net.Conn, fr *protocol.FrameReader, client protocol.MuxHello, cfg Config, handler func(*Channel)) (*Wire, error) {
	cfg = cfg.withDefaults()
	conn.SetWriteDeadline(time.Now().Add(cfg.Timeout))
	hello := protocol.MuxHello{
		MaxChannels: uint16(cfg.MaxChannels),
		ListenAddr:  cfg.ListenAddr,
	}
	if err := protocol.WriteFrame(conn, protocol.EncodeMuxHello(hello)); err != nil {
		conn.Close()
		return nil, err
	}
	w := newWire(conn, fr, cfg, false, client)
	w.handler = handler
	return w, nil
}

func newWire(conn net.Conn, fr *protocol.FrameReader, cfg Config, dialer bool, remote protocol.MuxHello) *Wire {
	w := &Wire{
		conn:    conn,
		fr:      fr,
		cfg:     cfg,
		dialer:  dialer,
		remote:  remote,
		met:     newWireMetrics(cfg.Obs),
		raddr:   conn.RemoteAddr().String(),
		sentAds: make(map[protocol.PeerAd]bool),
		chans:   make(map[uint16]*Channel),
		pend:    make(map[uint16]chan openReply),
		drain:   make(map[uint16]struct{}),
		done:    make(chan struct{}),
	}
	if dialer {
		w.nextID = 1
	}
	w.met.ceiling.Add(int64(cfg.WireWindow))
	return w
}

// Serve runs the demultiplexing read loop in the calling goroutine
// (acceptor side) and returns once the wire is down and every channel
// handler has exited — the no-goroutine-leak point for a server conn.
func (w *Wire) Serve() error {
	w.readLoop()
	w.hwg.Wait()
	return w.Err()
}

// Err returns the wire's terminal error, nil while it is healthy.
func (w *Wire) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Done is closed when the wire dies.
func (w *Wire) Done() <-chan struct{} { return w.done }

// RemoteHello returns the peer's MUX_HELLO.
func (w *Wire) RemoteHello() protocol.MuxHello { return w.remote }

// RemoteAddr exposes the underlying connection's remote address for
// penalty attribution.
func (w *Wire) RemoteAddr() net.Addr { return w.conn.RemoteAddr() }

// Channels returns the number of currently open channels.
func (w *Wire) Channels() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.chans)
}

// WindowSum returns the aggregate of every open channel's local
// receive-window target, in symbol frames — the wire's total credit
// exposure toward the peer, the quantity Config.WireWindow budgets.
func (w *Wire) WindowSum() int {
	w.winMu.Lock()
	defer w.winMu.Unlock()
	return w.winSum
}

// reserveWindow adjusts the aggregate window sum by delta, clamping a
// positive delta to the WireWindow headroom (when budgeted) but never
// below min — grantInitial passes min=1 so a new channel can always
// move at least one frame at a time. It returns the delta actually
// applied; callers adopt that value as their granted share.
func (w *Wire) reserveWindow(delta, min int) int {
	w.winMu.Lock()
	defer w.winMu.Unlock()
	if delta > 0 && w.cfg.WireWindow > 0 {
		if head := w.cfg.WireWindow - w.winSum; delta > head {
			delta = head
		}
		if delta < min {
			delta = min
		}
	}
	w.winSum += delta
	w.met.windowSum.Add(int64(delta))
	return delta
}

// Close tears the wire down: the conn is closed, every channel fails
// with ErrClosed, pending opens abort.
func (w *Wire) Close() error {
	w.fail(ErrClosed)
	return nil
}

// Open negotiates a new subchannel carrying h (the opener's content
// HELLO) and blocks until the peer accepts or rejects it, the wire
// dies, or timeout passes. On accept, the channel's RemoteHello carries
// the peer's content metadata and an initial credit window has been
// granted both ways. The local receive window opens at the Config
// default; use OpenWindow to start it elsewhere.
func (w *Wire) Open(h protocol.Hello, timeout time.Duration) (*Channel, error) {
	return w.OpenWindow(h, 0, timeout)
}

// OpenWindow is Open with an explicit initial receive window in symbol
// frames (0 selects the Config.Window default; values clamp to
// [1, Config.Window] and, under a WireWindow budget, to the remaining
// aggregate headroom). A scheduler that already knows a channel's worth
// opens it at size instead of granting the default and resizing after.
func (w *Wire) OpenWindow(h protocol.Hello, window int, timeout time.Duration) (*Channel, error) {
	if !w.dialer {
		return nil, errors.New("peermux: only the dialing side opens channels")
	}
	reply := make(chan openReply, 1)
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return nil, err
	}
	if max := int(w.remote.MaxChannels); len(w.chans) >= max {
		w.mu.Unlock()
		return nil, fmt.Errorf("peermux: peer channel limit (%d) reached", max)
	}
	id := w.nextID
	w.nextID += 2
	c := newChannel(w, id, window)
	w.chans[id] = c
	w.pend[id] = reply
	w.mu.Unlock()

	if err := w.writeFrame(protocol.EncodeOpenChannel(id, h)); err != nil {
		w.abortOpen(id)
		return nil, err
	}
	if timeout <= 0 {
		timeout = w.cfg.Timeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-reply:
		if !r.ok {
			w.abortOpen(id)
			return nil, &RejectError{Msg: r.reject}
		}
		c.remoteHello = r.hello
		if err := c.grantInitial(); err != nil {
			c.Close()
			return nil, err
		}
		return c, nil
	case <-w.done:
		w.abortOpen(id)
		return nil, w.Err()
	case <-timer.C:
		w.abortOpen(id)
		return nil, fmt.Errorf("peermux: channel open timed out after %v", timeout)
	}
}

// rejectChannel declines a peer-opened channel id and counts it.
func (w *Wire) rejectChannel(id uint16, msg string) {
	w.met.rejected.Add(1)
	w.writeFrame(protocol.EncodeRejectChannel(id, msg))
}

// abortOpen retires a half-open channel id.
func (w *Wire) abortOpen(id uint16) {
	w.mu.Lock()
	c := w.chans[id]
	delete(w.chans, id)
	delete(w.pend, id)
	w.retireLocked(id)
	w.mu.Unlock()
	if c != nil {
		c.fail(ErrClosed)
	}
}

// SendPeers writes a wire-level PEERS frame carrying the
// advertisements not yet sent on this wire (per-wire dedup mirrors the
// legacy per-session dedup). A nil or fully duplicate batch is a no-op.
func (w *Wire) SendPeers(ads []protocol.PeerAd) error {
	w.wmu.Lock()
	fresh := ads[:0:0]
	for _, ad := range ads {
		if ad.Addr == "" || w.sentAds[ad] {
			continue
		}
		w.sentAds[ad] = true
		fresh = append(fresh, ad)
		if len(fresh) == protocol.MaxPeerAds {
			break
		}
	}
	if len(fresh) == 0 {
		w.wmu.Unlock()
		return nil
	}
	err := w.writeLocked(protocol.EncodePeers(fresh))
	w.wmu.Unlock()
	if err != nil {
		w.fail(err)
	}
	return err
}

// writeFrame serializes one wire-level frame onto conn.
func (w *Wire) writeFrame(f protocol.Frame) error {
	w.wmu.Lock()
	err := w.writeLocked(f)
	w.wmu.Unlock()
	if err != nil {
		w.fail(err)
	}
	return err
}

func (w *Wire) writeLocked(f protocol.Frame) error {
	w.conn.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	return protocol.WriteFrame(w.conn, f)
}

// writeMux serializes one enveloped frame onto conn.
func (w *Wire) writeMux(ch uint16, t protocol.Type, payload []byte) error {
	w.wmu.Lock()
	w.conn.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	err := protocol.WriteMux(w.conn, ch, t, payload)
	w.wmu.Unlock()
	if err != nil {
		w.fail(err)
	}
	return err
}

func (w *Wire) penalize(weight float64) {
	if w.cfg.Penalize != nil {
		w.cfg.Penalize(weight)
	}
}

// fail kills the wire exactly once: conn closed, channels failed,
// pending opens aborted, fabric notified.
func (w *Wire) fail(err error) {
	w.deadOnce.Do(func() {
		w.mu.Lock()
		w.err = err
		w.dead = true
		chans := make([]*Channel, 0, len(w.chans))
		for _, c := range w.chans {
			chans = append(chans, c)
		}
		w.chans = make(map[uint16]*Channel)
		pends := make([]chan openReply, 0, len(w.pend))
		for _, p := range w.pend {
			pends = append(pends, p)
		}
		w.pend = make(map[uint16]chan openReply)
		w.mu.Unlock()

		close(w.done)
		w.conn.Close()
		for _, c := range chans {
			c.fail(err)
		}
		for _, p := range pends {
			select {
			case p <- openReply{reject: err.Error()}:
			default:
			}
		}
		if w.cfg.onDead != nil {
			w.cfg.onDead()
		}
		w.met.ceiling.Add(-int64(w.cfg.WireWindow))
	})
}

// retireLocked records a recently closed id so late frames drain
// silently. Caller holds w.mu.
func (w *Wire) retireLocked(id uint16) {
	if _, ok := w.drain[id]; ok {
		return
	}
	w.drain[id] = struct{}{}
	w.drainq = append(w.drainq, id)
	if len(w.drainq) > drainedIDs {
		delete(w.drain, w.drainq[0])
		w.drainq = w.drainq[1:]
	}
}

// release retires a channel id on local close and tells the peer.
func (w *Wire) release(id uint16, notify bool) {
	w.mu.Lock()
	_, open := w.chans[id]
	delete(w.chans, id)
	delete(w.pend, id)
	w.retireLocked(id)
	dead := w.dead
	w.mu.Unlock()
	if notify && open && !dead {
		w.writeFrame(protocol.EncodeCloseChannel(id))
	}
}

// readLoop is the single demultiplexer: every inbound frame is routed,
// answered, or charged here. It never blocks on a channel consumer —
// queue overflow is a protocol violation (the sender ignored credits),
// charged and dropped.
func (w *Wire) readLoop() {
	for {
		w.conn.SetReadDeadline(time.Now().Add(w.cfg.Timeout))
		f, err := w.fr.Next()
		if err != nil {
			if errors.Is(err, protocol.ErrCorrupt) {
				w.penalize(WeightCorrupt)
			}
			w.fail(err)
			return
		}
		switch f.Type {
		case protocol.TypeMux:
			id, inner, err := protocol.MuxView(f)
			if err != nil {
				w.penalize(WeightViolation)
				continue
			}
			w.route(id, inner)
		case protocol.TypeCredit:
			id, n, err := protocol.DecodeCredit(f)
			if err != nil {
				w.penalize(WeightViolation)
				continue
			}
			if c := w.channel(id); c != nil {
				c.addCredits(n)
			} else if !w.draining(id) {
				w.penalize(WeightViolation)
			}
		case protocol.TypeOpenChannel:
			w.handleOpen(f)
		case protocol.TypeAcceptChannel:
			id, hello, err := protocol.DecodeAcceptChannel(f)
			if err != nil {
				w.penalize(WeightViolation)
				continue
			}
			w.resolveOpen(id, openReply{hello: hello, ok: true})
		case protocol.TypeRejectChannel:
			id, msg, err := protocol.DecodeRejectChannel(f)
			if err != nil {
				w.penalize(WeightViolation)
				continue
			}
			w.resolveOpen(id, openReply{reject: msg})
		case protocol.TypeCloseChannel:
			id, err := protocol.DecodeCloseChannel(f)
			if err != nil {
				w.penalize(WeightViolation)
				continue
			}
			w.remoteClose(id)
		case protocol.TypePeers:
			ads, err := protocol.DecodePeers(f)
			if err != nil {
				w.penalize(WeightViolation)
				continue
			}
			if w.cfg.OnPeers != nil && len(ads) > 0 {
				w.cfg.OnPeers(ads)
			}
		case protocol.TypeError:
			msg, _ := protocol.DecodeError(f)
			w.fail(&RemoteError{Msg: msg})
			return
		default:
			// A bare legacy frame on a multiplexed wire: the peer lost
			// the plot. Charge it and drop the frame; the wire itself
			// is still framed correctly, so it survives.
			w.penalize(WeightViolation)
		}
	}
}

func (w *Wire) channel(id uint16) *Channel {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.chans[id]
}

func (w *Wire) draining(id uint16) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.drain[id]
	return ok
}

// route delivers an enveloped frame to its channel's queue.
func (w *Wire) route(id uint16, inner protocol.Frame) {
	c := w.channel(id)
	if c == nil {
		if !w.draining(id) {
			// An envelope for a channel that never existed.
			w.penalize(WeightViolation)
		}
		return
	}
	c.deliver(inner)
}

// handleOpen validates and spawns the handler for a peer-opened channel.
func (w *Wire) handleOpen(f protocol.Frame) {
	id, hello, err := protocol.DecodeOpenChannel(f)
	if err != nil {
		w.penalize(WeightViolation)
		return
	}
	if w.dialer || w.handler == nil {
		// We dialed this wire for fetching; the peer must not open
		// channels toward us.
		w.penalize(WeightViolation)
		w.rejectChannel(id, protocol.ReasonRefused+" (not serving)")
		return
	}
	if id%2 != 1 {
		w.penalize(WeightViolation)
		w.rejectChannel(id, "invalid channel id (dialer ids are odd)")
		return
	}
	w.mu.Lock()
	if _, dup := w.chans[id]; dup {
		w.mu.Unlock()
		w.penalize(WeightViolation)
		w.rejectChannel(id, "duplicate channel id")
		return
	}
	if len(w.chans) >= w.cfg.MaxChannels {
		w.mu.Unlock()
		w.rejectChannel(id, "busy (channel limit)")
		return
	}
	c := newChannel(w, id, 0)
	c.remoteHello = hello
	w.chans[id] = c
	w.mu.Unlock()
	w.hwg.Add(1)
	go func() {
		defer w.hwg.Done()
		defer c.Close()
		w.handler(c)
	}()
}

func (w *Wire) resolveOpen(id uint16, r openReply) {
	w.mu.Lock()
	reply := w.pend[id]
	delete(w.pend, id)
	if reply == nil {
		known := false
		if _, ok := w.chans[id]; ok {
			known = true
		} else if _, ok := w.drain[id]; ok {
			known = true
		}
		w.mu.Unlock()
		if !known {
			w.penalize(WeightViolation)
		}
		return
	}
	w.mu.Unlock()
	select {
	case reply <- r:
	default:
	}
}

func (w *Wire) remoteClose(id uint16) {
	w.mu.Lock()
	c := w.chans[id]
	_, wasDraining := w.drain[id]
	delete(w.chans, id)
	w.retireLocked(id)
	w.mu.Unlock()
	if c != nil {
		c.remoteClosedNow()
	} else if !wasDraining {
		w.penalize(WeightViolation)
	}
}
