package peermux

// window_test.go pins the PR 9 credit-window surface: live SetWindow
// grow/shrink regrant semantics (with frames in flight), the wire's
// aggregate window ledger and WireWindow budget, the failed-grant
// terminal path (a CREDIT that never reached the wire must surface to
// the consumer, not strand the sender silently), blocked Write racing
// SetDeadline/Close, and multi-content fairness on one wire under
// concurrent resizes.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icd/internal/protocol"
	"icd/internal/testutil"
)

// errWriteBroken is the injected conn-write failure for the grant-path
// regression test.
var errWriteBroken = errors.New("injected write failure")

// flakyWriteConn passes reads through and fails writes on demand.
type flakyWriteConn struct {
	net.Conn
	broken atomic.Bool
}

func (c *flakyWriteConn) Write(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, errWriteBroken
	}
	return c.Conn.Write(p)
}

// startPairConn is startPair with a client-conn wrapper, for fault
// injection between the wire and its pipe.
func startPairConn(t *testing.T, ccfg, scfg Config, wrap func(net.Conn) net.Conn, handler func(*Channel)) (*Wire, func()) {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fr := protocol.NewFrameReader(sc)
		sc.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := fr.Next()
		if err != nil {
			sc.Close()
			return
		}
		mh, err := protocol.DecodeMuxHello(f)
		if err != nil {
			sc.Close()
			return
		}
		w, err := Accept(sc, fr, mh, scfg, handler)
		if err != nil {
			return
		}
		w.Serve()
	}()
	w, err := Dial(wrap(cc), ccfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return w, func() {
		w.Close()
		<-done
	}
}

// waitQueued polls until the channel's inbound queue holds want frames
// (the observable landing spot of the peer's credit-limited stream).
func waitQueued(t *testing.T, ch *Channel, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for len(ch.in) != want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(ch.in); got != want {
		t.Fatalf("queued frames = %d, want %d", got, want)
	}
}

// TestCreditGrantFailureSurfaces is the satellite-1 regression: a
// replenishing CREDIT that fails to reach the wire must become the
// channel's terminal error. Before the fix, noteConsumed dropped the
// write error and the consumer blocked forever against a sender
// stranded at zero credits.
func TestCreditGrantFailureSurfaces(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	fc := &flakyWriteConn{}
	w, shutdown := startPairConn(t, Config{Window: 8}, Config{Window: 8},
		func(c net.Conn) net.Conn { fc.Conn = c; return fc },
		serveSymbols(1000, []byte("0123456789abcdef")))
	defer shutdown()

	ch, err := w.Open(protocol.Hello{ContentID: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteFrame(ch, protocol.EncodeRequest(64)); err != nil {
		t.Fatal(err)
	}
	// Let the sender exhaust its 8-frame window, then break the write
	// path: the next consumed quantum (window/4 = 2 frames) triggers a
	// replenish grant that cannot be sent.
	waitQueued(t, ch, 8)
	fc.broken.Store(true)
	ch.SetDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 16; i++ {
		_, err = ch.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, errWriteBroken) {
		t.Fatalf("draining past a failed grant = %v, want errWriteBroken", err)
	}
	ch.Close()
}

// TestSetWindowGrowShrinkLive drives a live resize in both directions
// with frames in flight, watching the sender's allowance converge
// through the queue itself: growth is an immediate unsolicited grant,
// shrink is paid down by withheld regrants — never a revoked credit.
func TestSetWindowGrowShrinkLive(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	w, shutdown := startPair(t, Config{Window: 64}, Config{Window: 64},
		serveSymbols(100000, []byte("0123456789abcdef")))
	defer shutdown()

	ch, err := w.OpenWindow(protocol.Hello{ContentID: 1}, 4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.Window(); got != 4 {
		t.Fatalf("initial Window() = %d, want 4", got)
	}
	if got := w.WindowSum(); got != 4 {
		t.Fatalf("WindowSum after open = %d, want 4", got)
	}
	if err := protocol.WriteFrame(ch, protocol.EncodeRequest(10000)); err != nil {
		t.Fatal(err)
	}
	// The sender stalls at exactly the 4-frame window (nothing drained,
	// so nothing is regranted).
	waitQueued(t, ch, 4)
	time.Sleep(20 * time.Millisecond)
	waitQueued(t, ch, 4)

	// Grow 4 → 12: an unsolicited 8-credit grant lets the sender push 8
	// more frames with the consumer still idle.
	if err := ch.SetWindow(12); err != nil {
		t.Fatal(err)
	}
	if got := ch.Window(); got != 12 {
		t.Fatalf("Window() after grow = %d, want 12", got)
	}
	if got := w.WindowSum(); got != 12 {
		t.Fatalf("WindowSum after grow = %d, want 12", got)
	}
	waitQueued(t, ch, 12)

	// Shrink 12 → 6 with 12 frames in flight: the sender keeps its
	// allowance, and the first 6 drained frames pay the deficit instead
	// of regranting. Draining all 12 hands the sender exactly 6 new
	// credits, so the queue refills to the new window and no further.
	if err := ch.SetWindow(6); err != nil {
		t.Fatal(err)
	}
	if got := ch.Window(); got != 6 {
		t.Fatalf("Window() after shrink = %d, want 6", got)
	}
	if got := w.WindowSum(); got != 6 {
		t.Fatalf("WindowSum after shrink = %d, want 6", got)
	}
	ch.SetDeadline(time.Now().Add(3 * time.Second))
	for i := 0; i < 12; i++ {
		f, err := ch.Next()
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		if f.Type != protocol.TypeSymbol {
			t.Fatalf("drain %d: %v, want SYMBOL", i, f.Type)
		}
	}
	waitQueued(t, ch, 6)
	time.Sleep(20 * time.Millisecond)
	waitQueued(t, ch, 6)
	ch.Close()
	if got := w.WindowSum(); got != 0 {
		t.Fatalf("WindowSum after close = %d, want 0", got)
	}
}

// TestWireWindowBudget pins the aggregate ledger: a WireWindow budget
// clamps initial grants and grows to the remaining headroom (never
// below one frame), and closing a channel returns its share.
func TestWireWindowBudget(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	w, shutdown := startPair(t, Config{Window: 64, WireWindow: 10}, Config{Window: 64},
		serveSymbols(1000, []byte("x")))
	defer shutdown()

	open := func(id uint64, window int) *Channel {
		ch, err := w.OpenWindow(protocol.Hello{ContentID: id}, window, time.Second)
		if err != nil {
			t.Fatalf("OpenWindow %d: %v", id, err)
		}
		return ch
	}
	ch1 := open(1, 8)
	if got := ch1.Window(); got != 8 {
		t.Fatalf("ch1 window = %d, want 8", got)
	}
	// 2 frames of headroom left: the second open is clamped to it.
	ch2 := open(2, 8)
	if got := ch2.Window(); got != 2 {
		t.Fatalf("ch2 window = %d, want 2 (budget clamp)", got)
	}
	if got := w.WindowSum(); got != 10 {
		t.Fatalf("WindowSum = %d, want 10", got)
	}
	// Headroom exhausted: the floor of one frame still applies, or the
	// channel could never move.
	ch3 := open(3, 8)
	if got := ch3.Window(); got != 1 {
		t.Fatalf("ch3 window = %d, want floor 1", got)
	}
	// A grow with no headroom is a no-op, not an error.
	if err := ch2.SetWindow(8); err != nil {
		t.Fatal(err)
	}
	if got := ch2.Window(); got != 2 {
		t.Fatalf("ch2 window after no-headroom grow = %d, want 2", got)
	}
	// Closing ch1 returns its 8 frames; the grow now succeeds in full.
	ch1.Close()
	if got := w.WindowSum(); got != 3 {
		t.Fatalf("WindowSum after ch1 close = %d, want 3", got)
	}
	if err := ch2.SetWindow(8); err != nil {
		t.Fatal(err)
	}
	if got := ch2.Window(); got != 8 {
		t.Fatalf("ch2 window after freed grow = %d, want 8", got)
	}
	ch2.Close()
	ch3.Close()
	if got := w.WindowSum(); got != 0 {
		t.Fatalf("WindowSum after all closes = %d, want 0", got)
	}
}

// TestBlockedWriteUnblocked covers the sender half of the watchdog
// contract: a Write parked in the credit wait is unwedged by a
// concurrent SetDeadline (ErrDeadline) or Close (ErrClosed).
func TestBlockedWriteUnblocked(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// The server grants a 2-frame window and never drains (draining
	// would regrant), so the third client symbol parks in acquireCredit.
	accept := func(ch *Channel) {
		ch.Accept(protocol.Hello{FullCopy: true})
		<-ch.Wire().Done()
	}
	park := func(t *testing.T, ch *Channel) chan error {
		t.Helper()
		for i := 0; i < 2; i++ {
			if err := protocol.WriteSymbol(ch, uint64(i), []byte("pay")); err != nil {
				t.Fatalf("symbol %d: %v", i, err)
			}
		}
		blocked := make(chan error, 1)
		go func() {
			blocked <- protocol.WriteSymbol(ch, 2, []byte("pay"))
		}()
		select {
		case err := <-blocked:
			t.Fatalf("third symbol did not block: %v", err)
		case <-time.After(30 * time.Millisecond):
		}
		return blocked
	}

	t.Run("SetDeadline", func(t *testing.T) {
		w, shutdown := startPair(t, Config{Window: 2}, Config{Window: 2}, accept)
		defer shutdown()
		ch, err := w.Open(protocol.Hello{ContentID: 1}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		blocked := park(t, ch)
		ch.SetDeadline(time.Now())
		select {
		case err := <-blocked:
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("unblocked write = %v, want ErrDeadline", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("SetDeadline(now) did not unblock a credit-parked Write")
		}
		ch.Close()
	})
	t.Run("Close", func(t *testing.T) {
		w, shutdown := startPair(t, Config{Window: 2}, Config{Window: 2}, accept)
		defer shutdown()
		ch, err := w.Open(protocol.Hello{ContentID: 1}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		blocked := park(t, ch)
		ch.Close()
		select {
		case err := <-blocked:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("unblocked write = %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Close did not unblock a credit-parked Write")
		}
	})
}

// TestMultiContentOneWireResizeFairness runs three contents over one
// wire with unequal windows and live resizes mid-transfer (the credit
// scheduler's actual access pattern), asserting every stream completes
// intact and the aggregate ledger settles to zero. Run under -race this
// is the concurrency gate on SetWindow vs deliver vs noteConsumed.
func TestMultiContentOneWireResizeFairness(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const total = 600
	w, shutdown := startPair(t, Config{Window: 64}, Config{Window: 64},
		serveSymbols(total, []byte("0123456789abcdef")))
	defer shutdown()

	windows := []int{4, 16, 64}
	var wg sync.WaitGroup
	errs := make(chan error, len(windows))
	for i, win := range windows {
		wg.Add(1)
		go func(id uint64, win int) {
			defer wg.Done()
			ch, err := w.OpenWindow(protocol.Hello{ContentID: id}, win, 2*time.Second)
			if err != nil {
				errs <- fmt.Errorf("open %d: %w", id, err)
				return
			}
			defer ch.Close()
			ch.SetDeadline(time.Now().Add(15 * time.Second))
			if err := protocol.WriteFrame(ch, protocol.EncodeRequest(total)); err != nil {
				errs <- fmt.Errorf("request %d: %w", id, err)
				return
			}
			got := 0
			for {
				f, err := ch.Next()
				if err != nil {
					errs <- fmt.Errorf("content %d after %d symbols: %w", id, got, err)
					return
				}
				if f.Type == protocol.TypeDone {
					break
				}
				got++
				// Mid-flight resizes, both directions, while frames are in
				// flight: the scheduler's rebalance cadence compressed.
				switch got {
				case total / 3:
					ch.SetWindow(win * 2)
				case 2 * total / 3:
					ch.SetWindow(win / 2)
				}
			}
			if got != total {
				errs <- fmt.Errorf("content %d received %d symbols, want %d", id, got, total)
			}
		}(uint64(i+1), win)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("wire died: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.WindowSum() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := w.WindowSum(); got != 0 {
		t.Fatalf("WindowSum after all closes = %d, want 0", got)
	}
}
