package peermux

// channel.go is one content subchannel: a bounded queue of inbound
// frames (fed by the wire's reader, drained by Next), an io.Writer that
// re-frames serialized legacy frames into MUX envelopes, and the two
// halves of the credit ledger — the sender side that spends and blocks,
// the receiver side that meters arrivals and replenishes as its
// consumer drains.

import (
	"io"
	"net"
	"sync"
	"time"

	"icd/internal/protocol"
)

// chanBufs recycles inbound frame payload buffers: the reader copies an
// envelope's inner payload out of the FrameReader's scratch (which the
// next frame overwrites) into a pooled buffer that Next hands out and
// reclaims on the following call — the same valid-until-next-call
// contract as protocol.FrameReader.
var chanBufs = sync.Pool{New: func() any { return new([]byte) }}

func getBuf(n int) *[]byte {
	bp := chanBufs.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) {
	if cap(*bp) <= 1<<16 { // don't let one huge frame pin a large buffer
		chanBufs.Put(bp)
	}
}

type inFrame struct {
	t   protocol.Type
	buf *[]byte
}

// Channel is one content subchannel on a Wire. The fetching side reads
// frames with Next and writes control frames through Write; the serving
// side does the reverse. It deliberately mirrors the surface a legacy
// session uses from a net.Conn + FrameReader pair — Next for frames,
// Write for one serialized frame per call, SetDeadline to bound both —
// so the peer package's state machines run unchanged on either.
type Channel struct {
	w           *Wire
	id          uint16
	remoteHello protocol.Hello

	in   chan inFrame
	prev *[]byte // buffer handed out by the last Next

	mu       sync.Mutex
	credits  uint32 // sender side: symbol frames we may still send
	avail    uint32 // receiver side: grant the remote may still spend
	consumed uint32 // drained since the last replenishing CREDIT
	window   uint32 // receiver side: current target receive window
	deficit  uint32 // shrink debt: regrants withheld until paid down
	granted  bool   // the initial window has been opened (grantInitial ran)
	retired  bool   // window released from the wire's aggregate sum
	deadline time.Time
	dnotify  chan struct{} // closed+replaced on deadline change
	err      error         // terminal error, set before rclosed closes

	creditc chan struct{} // signals credit arrival to a blocked sender
	rclosed chan struct{} // no more inbound frames (remote close / wire death)
	closed  chan struct{} // locally closed
	rcOnce  sync.Once
	clOnce  sync.Once

	onClose func() // fabric refcount hook
}

// newChannel builds a channel whose local receive window opens at
// window symbol frames (0 selects the Config.Window default; values are
// clamped to [1, Config.Window] — the inbound queue is sized for the
// configured maximum, so no window may exceed it). The queue capacity is
// the invariant bound on in-flight data frames: regrants and SetWindow
// keep the sender's outstanding allowance (window + deficit) at or
// below Config.Window at all times.
func newChannel(w *Wire, id uint16, window int) *Channel {
	return &Channel{
		w:       w,
		id:      id,
		window:  clampWindow(window, w.cfg.Window),
		in:      make(chan inFrame, w.cfg.Window+queueSlack),
		dnotify: make(chan struct{}),
		creditc: make(chan struct{}, 1),
		rclosed: make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

// clampWindow resolves a requested window against the per-channel
// maximum: 0 (unset) selects the maximum itself, everything else lands
// in [1, max].
func clampWindow(n, max int) uint32 {
	if n <= 0 || n > max {
		return uint32(max)
	}
	return uint32(n)
}

// ID returns the channel id.
func (c *Channel) ID() uint16 { return c.id }

// RemoteHello returns the peer's content HELLO for this channel: the
// OPEN_CHANNEL hello on the accepting side, the ACCEPT_CHANNEL hello on
// the opening side.
func (c *Channel) RemoteHello() protocol.Hello { return c.remoteHello }

// RemoteAddr exposes the wire's remote address (penalty attribution,
// logging).
func (c *Channel) RemoteAddr() net.Addr { return c.w.conn.RemoteAddr() }

// Wire returns the shared wire, for wire-scoped operations (SendPeers).
func (c *Channel) Wire() *Wire { return c.w }

// Accept answers a peer-opened channel with our content HELLO and
// grants the initial credit window (accepting side only).
func (c *Channel) Accept(h protocol.Hello) error {
	if err := c.w.writeFrame(protocol.EncodeAcceptChannel(c.id, h)); err != nil {
		return err
	}
	return c.grantInitial()
}

// Reject declines a peer-opened channel with a canonical reason and
// retires it.
func (c *Channel) Reject(msg string) {
	c.w.met.rejected.Add(1)
	c.w.writeFrame(protocol.EncodeRejectChannel(c.id, msg))
	c.Close()
}

// grantInitial opens the receive window: the peer may send window
// symbol frames before our consumer has drained anything. The grant is
// registered in the wire's aggregate window sum first, so a wire-level
// budget (Config.WireWindow) can clamp it — never below one frame, or
// the channel could not move at all.
func (c *Channel) grantInitial() error {
	c.mu.Lock()
	want := int(c.window)
	c.mu.Unlock()
	n := uint32(c.w.reserveWindow(want, 1))
	c.mu.Lock()
	c.window = n
	c.avail += n
	c.granted = true
	c.mu.Unlock()
	c.w.noteChanOpen(c.id, int(n))
	return c.writeGrant(n)
}

// writeGrant sends a CREDIT frame carrying n and surfaces a write
// failure as the channel's terminal error: a grant that never reached
// the wire would strand the remote sender at zero credits, so the local
// consumer must see the failure on its next read instead of blocking
// against a silently dead replenish path.
func (c *Channel) writeGrant(n uint32) error {
	if n == 0 {
		return nil
	}
	if err := c.w.writeFrame(protocol.EncodeCredit(c.id, n)); err != nil {
		c.fail(err)
		return err
	}
	return nil
}

// Window returns the channel's current local receive-window target in
// symbol frames.
func (c *Channel) Window() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.window)
}

// SetWindow resizes the channel's local receive window to n symbol
// frames, live — the regrant path a credit-denominated scheduler uses
// to shift one wire's bandwidth between subchannels mid-transfer. n is
// clamped to [1, Config.Window] (the inbound queue is sized for the
// configured maximum) and growth further respects the wire's aggregate
// budget. Growth is granted immediately as an unsolicited CREDIT;
// credits already granted cannot be revoked, so a shrink is paid down
// by withholding replenishment grants until the sender's outstanding
// allowance has drained to the new window. Safe to call from any
// goroutine, on either side, at any point after the channel opened.
func (c *Channel) SetWindow(n int) error {
	target := int(clampWindow(n, c.w.cfg.Window))
	c.mu.Lock()
	if !c.granted {
		// Window not opened yet (pre-Accept): just move the target that
		// grantInitial will grant.
		c.window = uint32(target)
		c.mu.Unlock()
		return nil
	}
	delta := target - int(c.window)
	if delta == 0 {
		c.mu.Unlock()
		return nil
	}
	if delta < 0 {
		// Shrink: the sender keeps its in-flight allowance; future
		// regrants are withheld until the debt drains. The aggregate sum
		// tracks the target, so the freed share is immediately available
		// to siblings.
		c.deficit += uint32(-delta)
		c.window = uint32(target)
		if !c.retired {
			defer c.w.reserveWindow(delta, 0)
		}
		c.mu.Unlock()
		c.noteResize(target)
		return nil
	}
	c.mu.Unlock()
	grown := c.w.reserveWindow(delta, 0)
	if grown <= 0 {
		return nil // no aggregate headroom: keep the current window
	}
	c.mu.Lock()
	if c.retired {
		// Lost a race with Close/fail: the retire already settled the
		// aggregate sum at the old window; hand the reservation back.
		c.mu.Unlock()
		c.w.reserveWindow(-grown, 0)
		return c.finalErr()
	}
	c.window += uint32(grown)
	// Growth first cancels shrink debt (those withheld regrants now fit
	// the larger window); only the remainder is new allowance to grant.
	send := uint32(grown)
	if send <= c.deficit {
		c.deficit -= send
		send = 0
	} else {
		send -= c.deficit
		c.deficit = 0
	}
	c.avail += send
	c.mu.Unlock()
	c.noteResize(int(c.window))
	return c.writeGrant(send)
}

// deliver queues one inbound frame (called by the wire's reader; must
// never block). A data frame beyond the granted window, or any frame
// past the queue bound, is the sender ignoring flow control: charge it,
// drop the frame, keep the wire.
func (c *Channel) deliver(inner protocol.Frame) {
	if inner.Type == protocol.TypeSymbol || inner.Type == protocol.TypeRecoded {
		c.mu.Lock()
		if c.avail == 0 {
			c.mu.Unlock()
			c.w.penalize(WeightViolation)
			return
		}
		c.avail--
		c.mu.Unlock()
	}
	bp := getBuf(len(inner.Payload))
	copy(*bp, inner.Payload)
	select {
	case c.in <- inFrame{t: inner.Type, buf: bp}:
		c.w.met.queueDepth.Observe(float64(len(c.in)))
	default:
		putBuf(bp)
		c.w.penalize(WeightViolation)
	}
}

// addCredits applies a CREDIT grant from the peer (sender side). A
// cumulative balance past MaxCreditGrant is a hostile attempt to
// disable flow control: charge it and clamp.
func (c *Channel) addCredits(n uint32) {
	c.mu.Lock()
	c.credits += n
	over := c.credits > protocol.MaxCreditGrant
	if over {
		c.credits = protocol.MaxCreditGrant
	}
	c.mu.Unlock()
	if over {
		c.w.penalize(WeightViolation)
	}
	select {
	case c.creditc <- struct{}{}:
	default:
	}
}

// noteConsumed replenishes the sender once a quantum of data frames has
// actually been drained by the consumer — the backpressure edge: a slow
// consumer stops granting, its sender blocks, siblings keep flowing.
// A window shrink's deficit is paid down here: drained frames cancel
// debt before any new grant goes out, which is how the sender's
// outstanding allowance converges onto the smaller window without ever
// revoking a credit. A grant that fails to reach the wire is surfaced
// as the channel's terminal error (writeGrant), not dropped — the
// remote sender is stranded at zero credits either way, and the local
// consumer must find out on its next read.
func (c *Channel) noteConsumed() {
	c.mu.Lock()
	c.consumed++
	quantum := c.window / 4
	if quantum == 0 {
		quantum = 1
	}
	if c.consumed < quantum {
		c.mu.Unlock()
		return
	}
	n := c.consumed
	c.consumed = 0
	if c.deficit > 0 {
		pay := c.deficit
		if pay > n {
			pay = n
		}
		c.deficit -= pay
		n -= pay
	}
	c.avail += n
	c.mu.Unlock()
	select {
	case <-c.closed:
		return
	default:
	}
	c.writeGrant(n)
}

// Next returns the next inbound frame. The frame's payload is valid
// only until the following Next call (same contract as
// protocol.FrameReader.Next). After a remote close the queue drains,
// then Next returns io.EOF (or the wire's terminal error).
func (c *Channel) Next() (protocol.Frame, error) {
	if c.prev != nil {
		putBuf(c.prev)
		c.prev = nil
	}
	for {
		select {
		case <-c.closed:
			return protocol.Frame{}, ErrClosed
		default:
		}
		// Drain queued frames even when the remote side is gone.
		select {
		case f := <-c.in:
			return c.take(f)
		default:
		}
		select {
		case <-c.rclosed:
			select {
			case f := <-c.in:
				return c.take(f)
			default:
				return protocol.Frame{}, c.finalErr()
			}
		default:
		}

		c.mu.Lock()
		dl := c.deadline
		dn := c.dnotify
		c.mu.Unlock()
		var timech <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return protocol.Frame{}, ErrDeadline
			}
			timer = time.NewTimer(d)
			timech = timer.C
		}
		select {
		case f := <-c.in:
			stopTimer(timer)
			return c.take(f)
		case <-c.rclosed:
		case <-c.closed:
		case <-dn:
		case <-timech:
		}
		stopTimer(timer)
	}
}

func stopTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

func (c *Channel) take(f inFrame) (protocol.Frame, error) {
	c.prev = f.buf
	if f.t == protocol.TypeSymbol || f.t == protocol.TypeRecoded {
		c.noteConsumed()
	}
	return protocol.Frame{Type: f.t, Payload: *f.buf, Version: protocol.Version}, nil
}

func (c *Channel) finalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return io.EOF
}

// Write sends one fully serialized legacy frame (as produced by
// protocol.WriteFrame, WriteSymbol, WriteRecoded — always one frame per
// Write call) through the channel as a MUX envelope. Symbol-bearing
// frames first acquire a credit, blocking while the window is empty.
func (c *Channel) Write(p []byte) (int, error) {
	t, payload, err := protocol.FrameParts(p)
	if err != nil {
		return 0, err
	}
	if t == protocol.TypeSymbol || t == protocol.TypeRecoded {
		if err := c.acquireCredit(); err != nil {
			return 0, err
		}
	}
	if err := c.w.writeMux(c.id, t, payload); err != nil {
		return 0, err
	}
	return len(p), nil
}

// acquireCredit blocks until the peer's receive window has room, the
// deadline passes, or the channel dies.
func (c *Channel) acquireCredit() error {
	for {
		c.mu.Lock()
		if c.credits > 0 {
			c.credits--
			c.mu.Unlock()
			return nil
		}
		dl := c.deadline
		dn := c.dnotify
		c.mu.Unlock()

		select {
		case <-c.closed:
			return ErrClosed
		case <-c.rclosed:
			return c.finalErr()
		default:
		}
		var timech <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return ErrDeadline
			}
			timer = time.NewTimer(d)
			timech = timer.C
		}
		select {
		case <-c.creditc:
		case <-c.closed:
		case <-c.rclosed:
		case <-dn:
		case <-timech:
		}
		stopTimer(timer)
	}
}

// SetDeadline bounds every blocked Next and Write (credit wait) on the
// channel — the hook the session stall watchdog fires to unwedge a
// stalled channel without touching its siblings. A zero time clears it.
func (c *Channel) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	close(c.dnotify)
	c.dnotify = make(chan struct{})
	c.mu.Unlock()
	return nil
}

// SendPeers forwards gossip advertisements on the shared wire (per-wire
// dedup).
func (c *Channel) SendPeers(ads []protocol.PeerAd) error { return c.w.SendPeers(ads) }

// Close retires the channel: the peer is told (CLOSE_CHANNEL), late
// frames for the id drain silently, blocked readers and writers wake
// with ErrClosed, and the fabric refcount drops. Idempotent.
func (c *Channel) Close() error {
	c.clOnce.Do(func() {
		close(c.closed)
		c.retireWindow()
		c.w.release(c.id, true)
		c.drainQueued()
		if c.onClose != nil {
			c.onClose()
		}
	})
	return nil
}

// retireWindow releases this channel's share of the wire's aggregate
// window sum, exactly once, when the channel ends (Close or fail).
func (c *Channel) retireWindow() {
	c.mu.Lock()
	n := 0
	if c.granted && !c.retired {
		c.retired = true
		n = int(c.window)
	}
	c.mu.Unlock()
	if n > 0 {
		c.w.reserveWindow(-n, 0)
		c.w.noteChanClose(c.id, n)
	}
}

// remoteClosedNow marks the inbound direction finished: Next drains the
// queue then reports io.EOF.
func (c *Channel) remoteClosedNow() {
	c.rcOnce.Do(func() { close(c.rclosed) })
}

// fail terminates the channel with err (wire death, failed grant).
func (c *Channel) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.retireWindow()
	c.rcOnce.Do(func() { close(c.rclosed) })
}

// drainQueued returns queued buffers to the pool on close. The wire's
// reader no longer routes to this channel (release retired the id), so
// the queue only shrinks.
func (c *Channel) drainQueued() {
	for {
		select {
		case f := <-c.in:
			putBuf(f.buf)
		default:
			return
		}
	}
}
