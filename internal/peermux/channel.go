package peermux

// channel.go is one content subchannel: a bounded queue of inbound
// frames (fed by the wire's reader, drained by Next), an io.Writer that
// re-frames serialized legacy frames into MUX envelopes, and the two
// halves of the credit ledger — the sender side that spends and blocks,
// the receiver side that meters arrivals and replenishes as its
// consumer drains.

import (
	"io"
	"net"
	"sync"
	"time"

	"icd/internal/protocol"
)

// chanBufs recycles inbound frame payload buffers: the reader copies an
// envelope's inner payload out of the FrameReader's scratch (which the
// next frame overwrites) into a pooled buffer that Next hands out and
// reclaims on the following call — the same valid-until-next-call
// contract as protocol.FrameReader.
var chanBufs = sync.Pool{New: func() any { return new([]byte) }}

func getBuf(n int) *[]byte {
	bp := chanBufs.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) {
	if cap(*bp) <= 1<<16 { // don't let one huge frame pin a large buffer
		chanBufs.Put(bp)
	}
}

type inFrame struct {
	t   protocol.Type
	buf *[]byte
}

// Channel is one content subchannel on a Wire. The fetching side reads
// frames with Next and writes control frames through Write; the serving
// side does the reverse. It deliberately mirrors the surface a legacy
// session uses from a net.Conn + FrameReader pair — Next for frames,
// Write for one serialized frame per call, SetDeadline to bound both —
// so the peer package's state machines run unchanged on either.
type Channel struct {
	w           *Wire
	id          uint16
	remoteHello protocol.Hello

	in   chan inFrame
	prev *[]byte // buffer handed out by the last Next

	mu       sync.Mutex
	credits  uint32 // sender side: symbol frames we may still send
	avail    uint32 // receiver side: grant the remote may still spend
	consumed uint32 // drained since the last replenishing CREDIT
	deadline time.Time
	dnotify  chan struct{} // closed+replaced on deadline change
	err      error         // terminal error, set before rclosed closes

	creditc chan struct{} // signals credit arrival to a blocked sender
	rclosed chan struct{} // no more inbound frames (remote close / wire death)
	closed  chan struct{} // locally closed
	rcOnce  sync.Once
	clOnce  sync.Once

	onClose func() // fabric refcount hook
}

func newChannel(w *Wire, id uint16) *Channel {
	return &Channel{
		w:       w,
		id:      id,
		in:      make(chan inFrame, w.cfg.Window+queueSlack),
		dnotify: make(chan struct{}),
		creditc: make(chan struct{}, 1),
		rclosed: make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

// ID returns the channel id.
func (c *Channel) ID() uint16 { return c.id }

// RemoteHello returns the peer's content HELLO for this channel: the
// OPEN_CHANNEL hello on the accepting side, the ACCEPT_CHANNEL hello on
// the opening side.
func (c *Channel) RemoteHello() protocol.Hello { return c.remoteHello }

// RemoteAddr exposes the wire's remote address (penalty attribution,
// logging).
func (c *Channel) RemoteAddr() net.Addr { return c.w.conn.RemoteAddr() }

// Wire returns the shared wire, for wire-scoped operations (SendPeers).
func (c *Channel) Wire() *Wire { return c.w }

// Accept answers a peer-opened channel with our content HELLO and
// grants the initial credit window (accepting side only).
func (c *Channel) Accept(h protocol.Hello) error {
	if err := c.w.writeFrame(protocol.EncodeAcceptChannel(c.id, h)); err != nil {
		return err
	}
	return c.grantInitial()
}

// Reject declines a peer-opened channel with a canonical reason and
// retires it.
func (c *Channel) Reject(msg string) {
	c.w.writeFrame(protocol.EncodeRejectChannel(c.id, msg))
	c.Close()
}

// grantInitial opens the receive window: the peer may send Window
// symbol frames before our consumer has drained anything.
func (c *Channel) grantInitial() error {
	n := uint32(c.w.cfg.Window)
	c.mu.Lock()
	c.avail += n
	c.mu.Unlock()
	return c.w.writeFrame(protocol.EncodeCredit(c.id, n))
}

// deliver queues one inbound frame (called by the wire's reader; must
// never block). A data frame beyond the granted window, or any frame
// past the queue bound, is the sender ignoring flow control: charge it,
// drop the frame, keep the wire.
func (c *Channel) deliver(inner protocol.Frame) {
	if inner.Type == protocol.TypeSymbol || inner.Type == protocol.TypeRecoded {
		c.mu.Lock()
		if c.avail == 0 {
			c.mu.Unlock()
			c.w.penalize(WeightViolation)
			return
		}
		c.avail--
		c.mu.Unlock()
	}
	bp := getBuf(len(inner.Payload))
	copy(*bp, inner.Payload)
	select {
	case c.in <- inFrame{t: inner.Type, buf: bp}:
	default:
		putBuf(bp)
		c.w.penalize(WeightViolation)
	}
}

// addCredits applies a CREDIT grant from the peer (sender side). A
// cumulative balance past MaxCreditGrant is a hostile attempt to
// disable flow control: charge it and clamp.
func (c *Channel) addCredits(n uint32) {
	c.mu.Lock()
	c.credits += n
	over := c.credits > protocol.MaxCreditGrant
	if over {
		c.credits = protocol.MaxCreditGrant
	}
	c.mu.Unlock()
	if over {
		c.w.penalize(WeightViolation)
	}
	select {
	case c.creditc <- struct{}{}:
	default:
	}
}

// noteConsumed replenishes the sender once a quantum of data frames has
// actually been drained by the consumer — the backpressure edge: a slow
// consumer stops granting, its sender blocks, siblings keep flowing.
func (c *Channel) noteConsumed() {
	c.mu.Lock()
	c.consumed++
	quantum := uint32(c.w.cfg.Window / 4)
	if quantum == 0 {
		quantum = 1
	}
	if c.consumed < quantum {
		c.mu.Unlock()
		return
	}
	n := c.consumed
	c.consumed = 0
	c.avail += n
	c.mu.Unlock()
	select {
	case <-c.closed:
		return
	default:
	}
	c.w.writeFrame(protocol.EncodeCredit(c.id, n))
}

// Next returns the next inbound frame. The frame's payload is valid
// only until the following Next call (same contract as
// protocol.FrameReader.Next). After a remote close the queue drains,
// then Next returns io.EOF (or the wire's terminal error).
func (c *Channel) Next() (protocol.Frame, error) {
	if c.prev != nil {
		putBuf(c.prev)
		c.prev = nil
	}
	for {
		select {
		case <-c.closed:
			return protocol.Frame{}, ErrClosed
		default:
		}
		// Drain queued frames even when the remote side is gone.
		select {
		case f := <-c.in:
			return c.take(f)
		default:
		}
		select {
		case <-c.rclosed:
			select {
			case f := <-c.in:
				return c.take(f)
			default:
				return protocol.Frame{}, c.finalErr()
			}
		default:
		}

		c.mu.Lock()
		dl := c.deadline
		dn := c.dnotify
		c.mu.Unlock()
		var timech <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return protocol.Frame{}, ErrDeadline
			}
			timer = time.NewTimer(d)
			timech = timer.C
		}
		select {
		case f := <-c.in:
			stopTimer(timer)
			return c.take(f)
		case <-c.rclosed:
		case <-c.closed:
		case <-dn:
		case <-timech:
		}
		stopTimer(timer)
	}
}

func stopTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

func (c *Channel) take(f inFrame) (protocol.Frame, error) {
	c.prev = f.buf
	if f.t == protocol.TypeSymbol || f.t == protocol.TypeRecoded {
		c.noteConsumed()
	}
	return protocol.Frame{Type: f.t, Payload: *f.buf, Version: protocol.Version}, nil
}

func (c *Channel) finalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return io.EOF
}

// Write sends one fully serialized legacy frame (as produced by
// protocol.WriteFrame, WriteSymbol, WriteRecoded — always one frame per
// Write call) through the channel as a MUX envelope. Symbol-bearing
// frames first acquire a credit, blocking while the window is empty.
func (c *Channel) Write(p []byte) (int, error) {
	t, payload, err := protocol.FrameParts(p)
	if err != nil {
		return 0, err
	}
	if t == protocol.TypeSymbol || t == protocol.TypeRecoded {
		if err := c.acquireCredit(); err != nil {
			return 0, err
		}
	}
	if err := c.w.writeMux(c.id, t, payload); err != nil {
		return 0, err
	}
	return len(p), nil
}

// acquireCredit blocks until the peer's receive window has room, the
// deadline passes, or the channel dies.
func (c *Channel) acquireCredit() error {
	for {
		c.mu.Lock()
		if c.credits > 0 {
			c.credits--
			c.mu.Unlock()
			return nil
		}
		dl := c.deadline
		dn := c.dnotify
		c.mu.Unlock()

		select {
		case <-c.closed:
			return ErrClosed
		case <-c.rclosed:
			return c.finalErr()
		default:
		}
		var timech <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return ErrDeadline
			}
			timer = time.NewTimer(d)
			timech = timer.C
		}
		select {
		case <-c.creditc:
		case <-c.closed:
		case <-c.rclosed:
		case <-dn:
		case <-timech:
		}
		stopTimer(timer)
	}
}

// SetDeadline bounds every blocked Next and Write (credit wait) on the
// channel — the hook the session stall watchdog fires to unwedge a
// stalled channel without touching its siblings. A zero time clears it.
func (c *Channel) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	close(c.dnotify)
	c.dnotify = make(chan struct{})
	c.mu.Unlock()
	return nil
}

// SendPeers forwards gossip advertisements on the shared wire (per-wire
// dedup).
func (c *Channel) SendPeers(ads []protocol.PeerAd) error { return c.w.SendPeers(ads) }

// Close retires the channel: the peer is told (CLOSE_CHANNEL), late
// frames for the id drain silently, blocked readers and writers wake
// with ErrClosed, and the fabric refcount drops. Idempotent.
func (c *Channel) Close() error {
	c.clOnce.Do(func() {
		close(c.closed)
		c.w.release(c.id, true)
		c.drainQueued()
		if c.onClose != nil {
			c.onClose()
		}
	})
	return nil
}

// remoteClosedNow marks the inbound direction finished: Next drains the
// queue then reports io.EOF.
func (c *Channel) remoteClosedNow() {
	c.rcOnce.Do(func() { close(c.rclosed) })
}

// fail terminates the channel with err (wire death).
func (c *Channel) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.rcOnce.Do(func() { close(c.rclosed) })
}

// drainQueued returns queued buffers to the pool on close. The wire's
// reader no longer routes to this channel (release retired the id), so
// the queue only shrinks.
func (c *Channel) drainQueued() {
	for {
		select {
		case f := <-c.in:
			putBuf(f.buf)
		default:
			return
		}
	}
}
