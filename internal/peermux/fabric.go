package peermux

// fabric.go shares wires across contents: the first Open toward an
// address dials and performs the MUX_HELLO handshake, every later Open
// toward the same address rides the existing wire as another
// subchannel, and the last channel Close tears the wire down. This is
// what collapses a node's connection count from O(peers × contents) to
// O(peers).

import (
	"net"
	"sync"
	"time"

	"icd/internal/protocol"
)

// Fabric is a refcounted pool of dialed wires, keyed by address.
type Fabric struct {
	dial func(addr string) (net.Conn, error)
	cfg  Config

	mu       sync.Mutex
	wires    map[string]*wireRef
	penalize func(addr string, weight float64)
	closed   bool
}

type wireRef struct {
	addr  string
	ready chan struct{} // closed once wire/err is set
	wire  *Wire
	err   error
	refs  int
}

// NewFabric builds a fabric dialing through dial with cfg applied to
// every wire.
func NewFabric(dial func(addr string) (net.Conn, error), cfg Config) *Fabric {
	return &Fabric{
		dial:  dial,
		cfg:   cfg.withDefaults(),
		wires: make(map[string]*wireRef),
	}
}

// SetPenalize installs a misbehavior sink for every wire dialed after
// the call: the fabric binds each wire's penalty reports to the address
// it dialed, the attribution a bare Config.Penalize cannot supply
// because one Config covers every wire. Call before the first Open.
func (f *Fabric) SetPenalize(fn func(addr string, weight float64)) {
	f.mu.Lock()
	f.penalize = fn
	f.mu.Unlock()
}

// Open returns a subchannel to addr carrying h, dialing a wire only if
// none is live. Concurrent Opens toward a fresh address share one dial:
// the first does the handshake, the rest wait on it. A wire that died
// between lookup and Open is replaced once.
func (f *Fabric) Open(addr string, h protocol.Hello, timeout time.Duration) (*Channel, error) {
	return f.OpenWindow(addr, h, 0, timeout)
}

// OpenWindow is Open with an explicit initial receive window (see
// Wire.OpenWindow): the channel starts at the scheduler's size instead
// of the Config default.
func (f *Fabric) OpenWindow(addr string, h protocol.Hello, window int, timeout time.Duration) (*Channel, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		wr, err := f.wireFor(addr)
		if err != nil {
			return nil, err
		}
		ch, err := wr.wire.OpenWindow(h, window, timeout)
		if err != nil {
			if wr.wire.Err() != nil {
				// The shared wire is dead (stale entry or it died mid
				// open): drop it and retry once with a fresh dial.
				f.drop(wr)
				lastErr = err
				continue
			}
			return nil, err
		}
		f.mu.Lock()
		wr.refs++
		f.mu.Unlock()
		ch.onClose = func() { f.release(wr) }
		return ch, nil
	}
	return nil, lastErr
}

// wireFor returns a live wireRef for addr, dialing if needed.
func (f *Fabric) wireFor(addr string) (*wireRef, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if wr := f.wires[addr]; wr != nil {
		f.mu.Unlock()
		<-wr.ready
		if wr.err != nil {
			return nil, wr.err
		}
		return wr, nil
	}
	wr := &wireRef{addr: addr, ready: make(chan struct{})}
	f.wires[addr] = wr
	f.mu.Unlock()

	conn, err := f.dial(addr)
	var w *Wire
	if err == nil {
		cfg := f.cfg
		cfg.onDead = func() { f.drop(wr) }
		f.mu.Lock()
		pen := f.penalize
		f.mu.Unlock()
		if pen != nil {
			cfg.Penalize = func(weight float64) { pen(addr, weight) }
		}
		w, err = Dial(conn, cfg)
	}
	f.mu.Lock()
	if err != nil {
		wr.err = err
		if f.wires[addr] == wr {
			delete(f.wires, addr)
		}
	} else {
		wr.wire = w
		if f.closed {
			// Close raced the dial: don't leak the wire.
			err = ErrClosed
			wr.err = err
			wr.wire = nil
			f.mu.Unlock()
			close(wr.ready)
			w.Close()
			return nil, err
		}
	}
	f.mu.Unlock()
	close(wr.ready)
	if err != nil {
		return nil, err
	}
	return wr, nil
}

// release drops one channel's reference; the last reference closes the
// wire.
func (f *Fabric) release(wr *wireRef) {
	f.mu.Lock()
	wr.refs--
	last := wr.refs <= 0
	if last && f.wires[wr.addr] == wr {
		delete(f.wires, wr.addr)
	}
	f.mu.Unlock()
	if last && wr.wire != nil {
		wr.wire.Close()
	}
}

// drop removes a dead wire from the pool (its channels already failed).
func (f *Fabric) drop(wr *wireRef) {
	f.mu.Lock()
	if f.wires[wr.addr] == wr {
		delete(f.wires, wr.addr)
	}
	f.mu.Unlock()
}

// Wires returns the number of live wires — the fabric's connection
// count toward the whole swarm.
func (f *Fabric) Wires() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.wires)
}

// TotalWindow sums every live wire's aggregate receive-window exposure
// in symbol frames — the node's total credit in flight across the
// fabric, the quantity a node-level gauge reports against the sum of
// per-wire ceilings.
func (f *Fabric) TotalWindow() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, wr := range f.wires {
		if wr.wire != nil {
			total += wr.wire.WindowSum()
		}
	}
	return total
}

// Close tears down every wire; subsequent Opens fail with ErrClosed.
func (f *Fabric) Close() error {
	f.mu.Lock()
	f.closed = true
	wrs := make([]*wireRef, 0, len(f.wires))
	for _, wr := range f.wires {
		wrs = append(wrs, wr)
	}
	f.wires = make(map[string]*wireRef)
	f.mu.Unlock()
	for _, wr := range wrs {
		select {
		case <-wr.ready:
			if wr.wire != nil {
				wr.wire.Close()
			}
		default:
			// Still dialing; the dial path notices f.closed and cleans
			// up itself.
		}
	}
	return nil
}
