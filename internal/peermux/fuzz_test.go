package peermux

// fuzz_test.go drives the wire's demultiplexer with raw hostile byte
// streams: whatever a dialer writes after its MUX_HELLO, the acceptor
// must survive — no panic, no wedge (Serve returns once the stream
// ends), and misbehavior lands in the penalty hook instead of taking
// the wire down with it. The seed corpus encodes the satellite's named
// attacks: envelopes for unknown channel ids, credit
// overflow/underflow, and frames interleaved for a closed channel.

import (
	"bytes"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"icd/internal/protocol"
)

// demuxSeed builds a raw client byte stream from frames.
func demuxSeed(frames ...protocol.Frame) []byte {
	var buf bytes.Buffer
	for _, f := range frames {
		protocol.WriteFrame(&buf, f)
	}
	return buf.Bytes()
}

func muxFrame(ch uint16, inner protocol.Frame) protocol.Frame {
	return protocol.EncodeMux(ch, inner)
}

func FuzzChannelDemux(f *testing.F) {
	hello := protocol.EncodeMuxHello(protocol.MuxHello{MaxChannels: 8})
	open := protocol.EncodeOpenChannel(1, protocol.Hello{ContentID: 0xF00D})
	symbol := protocol.EncodeSymbol(protocol.Symbol{ID: 1, Data: []byte("data")})

	// A legitimate session shape.
	f.Add(demuxSeed(hello, open, muxFrame(1, protocol.EncodeRequest(4)), muxFrame(1, protocol.EncodeDone())))
	// Envelopes for a channel id that never existed.
	f.Add(demuxSeed(hello, muxFrame(4242, symbol), muxFrame(4242, protocol.EncodeDone())))
	// Credit overflow: grants far past any sane window, repeated.
	f.Add(demuxSeed(hello, open,
		protocol.EncodeCredit(1, protocol.MaxCreditGrant),
		protocol.EncodeCredit(1, protocol.MaxCreditGrant),
		protocol.EncodeCredit(9, 1024)))
	// Credit underflow: data frames without any grant to spend — the
	// opener streams symbols at the acceptor, which never granted.
	f.Add(demuxSeed(hello, open, muxFrame(1, symbol), muxFrame(1, symbol), muxFrame(1, symbol)))
	// Interleaved frames for a closed channel: open, close, then keep
	// talking on the retired id.
	f.Add(demuxSeed(hello, open, protocol.EncodeCloseChannel(1), muxFrame(1, symbol), protocol.EncodeCredit(1, 4)))
	// Negotiation garbage: duplicate and even channel ids, malformed
	// open, bare legacy frame on a mux wire.
	f.Add(demuxSeed(hello, open, open,
		protocol.EncodeOpenChannel(2, protocol.Hello{}),
		protocol.Frame{Type: protocol.TypeOpenChannel, Payload: []byte{1}},
		protocol.EncodeSymbol(protocol.Symbol{ID: 9, Data: []byte("bare")})))
	// Raw garbage after a valid handshake, and no handshake at all.
	f.Add(append(demuxSeed(hello), bytes.Repeat([]byte{0xD0, 0x1C, 0xFF}, 40)...))
	f.Add(bytes.Repeat([]byte{0xAB}, 64))

	f.Fuzz(func(t *testing.T, stream []byte) {
		cc, sc := net.Pipe()
		var charges atomic.Int64
		served := make(chan struct{})
		go func() {
			defer close(served)
			defer sc.Close()
			fr := protocol.NewFrameReader(sc)
			sc.SetReadDeadline(time.Now().Add(2 * time.Second))
			first, err := fr.Next()
			if err != nil {
				return
			}
			mh, err := protocol.DecodeMuxHello(first)
			if err != nil {
				// Not a fabric handshake: the server mux would fall
				// back to the legacy path; out of scope here.
				return
			}
			w, err := Accept(sc, fr, mh, Config{
				Timeout:     2 * time.Second,
				MaxChannels: 8,
				Window:      16,
				Penalize:    func(float64) { charges.Add(1) },
			}, func(ch *Channel) {
				// Accept everything and consume until the channel dies.
				if ch.Accept(protocol.Hello{ContentID: ch.RemoteHello().ContentID, FullCopy: true}) != nil {
					return
				}
				for {
					if _, err := ch.Next(); err != nil {
						return
					}
				}
			})
			if err != nil {
				return
			}
			w.Serve()
		}()

		// The attacker drains whatever the acceptor answers (net.Pipe
		// is synchronous — an unread answer would stall the acceptor on
		// its own write, not on our attack), writes its stream and
		// hangs up.
		cc.SetDeadline(time.Now().Add(2 * time.Second))
		go io.Copy(io.Discard, cc)
		cc.Write(stream)
		cc.Close()

		// No wedge: the serve side must come home once the stream ends
		// (EOF wakes the reader; the reader's death wakes every
		// handler).
		select {
		case <-served:
		case <-time.After(10 * time.Second):
			t.Fatal("demux wedged: Serve did not return after the stream ended")
		}
	})
}

// TestDemuxHostileSeedsCharged replays the named hostile seeds as a
// plain test so the charging behavior is asserted, not just the absence
// of panics: each attack must land at least one penalty and must not
// kill the acceptor before the stream ends.
func TestDemuxHostileSeedsCharged(t *testing.T) {
	hello := protocol.EncodeMuxHello(protocol.MuxHello{MaxChannels: 8})
	open := protocol.EncodeOpenChannel(1, protocol.Hello{ContentID: 0xF00D})
	symbol := protocol.EncodeSymbol(protocol.Symbol{ID: 1, Data: []byte("data")})

	cases := []struct {
		name string
		// stall leaves the accepted channel undrained, so credit
		// replenishment never happens and window overruns are
		// deterministic.
		stall  bool
		stream []byte
	}{
		{"unknown channel id", false, demuxSeed(hello, muxFrame(4242, symbol))},
		// More data frames than the 16-symbol window the accepting
		// handler granted, against a consumer that never drains: the
		// overrun must be charged even though the first window's worth
		// is legal.
		{"credit underflow", true, func() []byte {
			frames := []protocol.Frame{hello, open}
			for i := 0; i < 24; i++ {
				frames = append(frames, muxFrame(1, symbol))
			}
			return demuxSeed(frames...)
		}()},
		{"credit grant for unopened channel", false, demuxSeed(hello, protocol.EncodeCredit(9, 1024))},
		{"bare legacy frame", false, demuxSeed(hello, symbol)},
		{"duplicate open", false, demuxSeed(hello, open, open)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cc, sc := net.Pipe()
			var charges atomic.Int64
			served := make(chan error, 1)
			go func() {
				defer sc.Close()
				fr := protocol.NewFrameReader(sc)
				sc.SetReadDeadline(time.Now().Add(2 * time.Second))
				first, err := fr.Next()
				if err != nil {
					served <- err
					return
				}
				mh, err := protocol.DecodeMuxHello(first)
				if err != nil {
					served <- err
					return
				}
				w, err := Accept(sc, fr, mh, Config{
					Timeout:  2 * time.Second,
					Window:   16,
					Penalize: func(float64) { charges.Add(1) },
				}, func(ch *Channel) {
					if ch.Accept(protocol.Hello{FullCopy: true}) != nil {
						return
					}
					if tc.stall {
						<-ch.rclosed // never drain; wait out the channel
						return
					}
					for {
						if _, err := ch.Next(); err != nil {
							return
						}
					}
				})
				if err != nil {
					served <- err
					return
				}
				served <- w.Serve()
			}()
			cc.SetDeadline(time.Now().Add(2 * time.Second))
			go io.Copy(io.Discard, cc)
			if _, err := cc.Write(tc.stream); err != nil {
				t.Fatal(err)
			}
			// Leave the conn up briefly so the charge is from the
			// frame, not the hangup.
			time.Sleep(50 * time.Millisecond)
			cc.Close()
			select {
			case <-served:
			case <-time.After(5 * time.Second):
				t.Fatal("serve side wedged")
			}
			if charges.Load() == 0 {
				t.Fatal("hostile stream landed no penalty charge")
			}
		})
	}
}
