package peermux

// wire_test.go exercises the fabric end to end over synchronous
// in-memory pipes: channel negotiation, symbol flow under credits, the
// credit-starvation fairness guarantee (one slow consumer must not
// stall its siblings), deadline semantics (the stall watchdog's hook),
// wire-level gossip dedup, misbehavior charging, and wire sharing
// through the Fabric. Every swarm-running test defers the shared
// goroutine-leak gate.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icd/internal/protocol"
	"icd/internal/testutil"
)

// startPair wires a dialer and an acceptor over net.Pipe. The acceptor
// runs the server-mux front half (read MUX_HELLO, Accept, Serve);
// handler owns each peer-opened channel. shutdown closes the client
// wire and waits for the serve goroutine.
func startPair(t *testing.T, ccfg, scfg Config, handler func(*Channel)) (*Wire, func()) {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fr := protocol.NewFrameReader(sc)
		sc.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := fr.Next()
		if err != nil {
			sc.Close()
			return
		}
		mh, err := protocol.DecodeMuxHello(f)
		if err != nil {
			sc.Close()
			return
		}
		w, err := Accept(sc, fr, mh, scfg, handler)
		if err != nil {
			return
		}
		w.Serve()
	}()
	w, err := Dial(cc, ccfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return w, func() {
		w.Close()
		<-done
	}
}

// serveSymbols is a handler that accepts every channel and answers each
// REQUEST with `count` symbols and a DONE.
func serveSymbols(count int, payload []byte) func(*Channel) {
	return func(ch *Channel) {
		if err := ch.Accept(protocol.Hello{
			ContentID: ch.RemoteHello().ContentID, FullCopy: true,
			NumBlocks: uint32(count), BlockSize: uint32(len(payload)),
		}); err != nil {
			return
		}
		var next uint64
		for {
			f, err := ch.Next()
			if err != nil {
				return
			}
			switch f.Type {
			case protocol.TypeRequest:
				n, err := protocol.DecodeRequest(f)
				if err != nil {
					return
				}
				for i := uint32(0); i < n; i++ {
					if err := protocol.WriteSymbol(ch, next, payload); err != nil {
						return
					}
					next++
				}
				if err := protocol.WriteFrame(ch, protocol.EncodeDone()); err != nil {
					return
				}
			case protocol.TypeDone:
				return
			}
		}
	}
}

func TestOpenAcceptSymbolFlow(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	w, shutdown := startPair(t, Config{}, Config{}, serveSymbols(1000, []byte("0123456789abcdef")))
	defer shutdown()

	ch, err := w.Open(protocol.Hello{ContentID: 0xF00D, SummaryMask: protocol.AllSummaryMask}, time.Second)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := ch.RemoteHello(); !got.FullCopy || got.ContentID != 0xF00D {
		t.Fatalf("accept hello = %+v", got)
	}
	const batch = 64
	got := 0
	for round := 0; round < 4; round++ {
		if err := protocol.WriteFrame(ch, protocol.EncodeRequest(batch)); err != nil {
			t.Fatalf("REQUEST: %v", err)
		}
		ch.SetDeadline(time.Now().Add(5 * time.Second))
		for {
			f, err := ch.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if f.Type == protocol.TypeDone {
				break
			}
			id, data, err := protocol.SymbolView(f)
			if err != nil {
				t.Fatalf("symbol: %v", err)
			}
			if id != uint64(got) || string(data) != "0123456789abcdef" {
				t.Fatalf("symbol %d = (%d, %q)", got, id, data)
			}
			got++
		}
	}
	if got != 4*batch {
		t.Fatalf("received %d symbols, want %d", got, 4*batch)
	}
	ch.Close()
	if n := w.Channels(); n != 0 {
		t.Fatalf("channels after close = %d", n)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("wire died: %v", err)
	}
}

func TestChannelReject(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	w, shutdown := startPair(t, Config{}, Config{}, func(ch *Channel) {
		ch.Reject(fmt.Sprintf("%s %#x", protocol.ReasonUnknownContent, ch.RemoteHello().ContentID))
	})
	defer shutdown()

	_, err := w.Open(protocol.Hello{ContentID: 0xBAD}, time.Second)
	var rej *RejectError
	if !errors.As(err, &rej) || !protocol.IsUnknownContent(rej.Msg) {
		t.Fatalf("Open err = %v, want unknown-content RejectError", err)
	}
	// The wire survives a rejection: a second open toward a served
	// content must still work.
	w2, shutdown2 := startPair(t, Config{}, Config{}, serveSymbols(10, []byte("x")))
	defer shutdown2()
	ch, err := w2.Open(protocol.Hello{ContentID: 1}, time.Second)
	if err != nil {
		t.Fatalf("Open after reject: %v", err)
	}
	ch.Close()
}

// TestCreditStarvationFairness is the satellite guarantee: two channels
// on one wire, one consumer stops draining — the fast channel keeps its
// throughput (its full stream completes while the slow one is wedged)
// and the slow channel's sender blocks on credits without deadlocking
// the wire; when the slow consumer resumes, its stream completes too.
func TestCreditStarvationFairness(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const total = 2000
	payload := []byte("payload-payload-")
	// A small window so the slow channel wedges its sender quickly.
	w, shutdown := startPair(t, Config{Window: 32}, Config{Window: 32}, serveSymbols(total, payload))
	defer shutdown()

	open := func(id uint64) *Channel {
		ch, err := w.Open(protocol.Hello{ContentID: id}, time.Second)
		if err != nil {
			t.Fatalf("Open %d: %v", id, err)
		}
		ch.SetDeadline(time.Now().Add(10 * time.Second))
		return ch
	}
	fast, slow := open(1), open(2)
	// Both channels request the full stream; the slow consumer reads a
	// handful of symbols and then stops draining entirely.
	if err := protocol.WriteFrame(slow, protocol.EncodeRequest(total)); err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteFrame(fast, protocol.EncodeRequest(total)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := slow.Next(); err != nil {
			t.Fatalf("slow warmup: %v", err)
		}
	}

	// The fast channel must receive its entire stream — far more than
	// any window or queue bound — while the slow channel's sender sits
	// blocked on credits.
	drain := func(ch *Channel, want int, name string) {
		got := 0
		for {
			f, err := ch.Next()
			if err != nil {
				t.Fatalf("%s after %d symbols: %v", name, got, err)
			}
			if f.Type == protocol.TypeDone {
				break
			}
			got++
		}
		if got != want {
			t.Fatalf("%s received %d symbols, want %d", name, got, want)
		}
	}
	start := time.Now()
	drain(fast, total, "fast channel")
	if time.Since(start) > 8*time.Second {
		t.Fatalf("fast channel took %v with a stalled sibling", time.Since(start))
	}
	// The slow consumer resumes: no deadlock, the remaining symbols
	// arrive.
	drain(slow, total-8, "slow channel")
	if err := w.Err(); err != nil {
		t.Fatalf("wire died: %v", err)
	}
	fast.Close()
	slow.Close()
}

func TestChannelDeadlineUnblocks(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	w, shutdown := startPair(t, Config{}, Config{}, func(ch *Channel) {
		ch.Accept(protocol.Hello{FullCopy: true})
		for {
			if _, err := ch.Next(); err != nil {
				return
			}
		}
	})
	defer shutdown()
	ch, err := w.Open(protocol.Hello{ContentID: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A future deadline expires on its own.
	ch.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := ch.Next(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Next past deadline = %v, want ErrDeadline", err)
	}
	// The watchdog pattern: a blocked Next is unwedged by SetDeadline
	// from another goroutine.
	ch.SetDeadline(time.Time{})
	unblocked := make(chan error, 1)
	go func() {
		_, err := ch.Next()
		unblocked <- err
	}()
	time.Sleep(20 * time.Millisecond)
	ch.SetDeadline(time.Now())
	select {
	case err := <-unblocked:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("unblocked Next = %v, want ErrDeadline", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SetDeadline(now) did not unblock a pending Next")
	}
	ch.Close()
}

func TestWirePeersDedup(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var mu sync.Mutex
	var got []protocol.PeerAd
	seen := make(chan struct{}, 8)
	scfg := Config{OnPeers: func(ads []protocol.PeerAd) {
		mu.Lock()
		got = append(got, ads...)
		mu.Unlock()
		seen <- struct{}{}
	}}
	w, shutdown := startPair(t, Config{}, scfg, func(ch *Channel) {
		ch.Accept(protocol.Hello{})
		for {
			if _, err := ch.Next(); err != nil {
				return
			}
		}
	})
	defer shutdown()

	ads := []protocol.PeerAd{{ContentID: 1, Addr: "10.0.0.1:9000"}, {ContentID: 2, Addr: "10.0.0.2:9000"}}
	if err := w.SendPeers(ads); err != nil {
		t.Fatal(err)
	}
	<-seen
	// A repeat send is fully deduplicated at the wire: nothing arrives.
	if err := w.SendPeers(ads); err != nil {
		t.Fatal(err)
	}
	if err := w.SendPeers([]protocol.PeerAd{ads[0], {ContentID: 3, Addr: "10.0.0.3:9000"}}); err != nil {
		t.Fatal(err)
	}
	<-seen
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("received %d ads, want 3 (dedup failed): %+v", len(got), got)
	}
}

func TestUnknownChannelCharged(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var charges atomic.Int64
	scfg := Config{Penalize: func(w float64) { charges.Add(1) }}
	w, shutdown := startPair(t, Config{}, scfg, serveSymbols(10, []byte("x")))
	defer shutdown()

	// An envelope for a channel that never existed: charged, dropped,
	// wire survives.
	if err := w.writeMux(4242, protocol.TypeSymbol, []byte("bogus-symbol-pay")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for charges.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if charges.Load() == 0 {
		t.Fatal("unknown-channel envelope was not charged")
	}
	ch, err := w.Open(protocol.Hello{ContentID: 1}, time.Second)
	if err != nil {
		t.Fatalf("wire did not survive the violation: %v", err)
	}
	ch.Close()
}

func TestClosedChannelDrainsSilently(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var charges atomic.Int64
	release := make(chan struct{})
	w, shutdown := startPair(t, Config{Penalize: func(float64) { charges.Add(1) }}, Config{}, func(ch *Channel) {
		ch.Accept(protocol.Hello{FullCopy: true})
		// Wait for the peer to retire the id, then fire late frames at
		// it — in-flight traffic for a closed channel. Raw wire writes
		// bypass the local credit ledger, which already knows the
		// channel is gone.
		<-release
		for i := 0; i < 4; i++ {
			ch.Wire().writeMux(ch.ID(), protocol.TypeSymbol, []byte("late-symbol-data"))
		}
		ch.Wire().writeMux(ch.ID(), protocol.TypeDone, nil)
		for {
			if _, err := ch.Next(); err != nil {
				return
			}
		}
	})
	defer func() { close(release); shutdown() }()

	ch, err := w.Open(protocol.Hello{ContentID: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch.Close()
	release <- struct{}{}
	// Give the late frames time to arrive: they must drain without a
	// single charge and without killing the wire.
	time.Sleep(100 * time.Millisecond)
	if n := charges.Load(); n != 0 {
		t.Fatalf("late frames for a retired id charged %d violations", n)
	}
	ch2, err := w.Open(protocol.Hello{ContentID: 2}, time.Second)
	if err != nil {
		t.Fatalf("wire did not survive late frames: %v", err)
	}
	ch2.Close()
}

func TestFabricSharesOneWire(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var dials atomic.Int64
	var serveWG sync.WaitGroup
	dial := func(addr string) (net.Conn, error) {
		dials.Add(1)
		cc, sc := net.Pipe()
		serveWG.Add(1)
		go func() {
			defer serveWG.Done()
			fr := protocol.NewFrameReader(sc)
			sc.SetReadDeadline(time.Now().Add(5 * time.Second))
			f, err := fr.Next()
			if err != nil {
				sc.Close()
				return
			}
			mh, err := protocol.DecodeMuxHello(f)
			if err != nil {
				sc.Close()
				return
			}
			w, err := Accept(sc, fr, mh, Config{}, serveSymbols(100, []byte("y")))
			if err != nil {
				return
			}
			w.Serve()
		}()
		return cc, nil
	}
	fab := NewFabric(dial, Config{})
	defer fab.Close()

	var chans []*Channel
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			ch, err := fab.Open("peer-a", protocol.Hello{ContentID: id}, 2*time.Second)
			if err != nil {
				t.Errorf("Open %d: %v", id, err)
				return
			}
			mu.Lock()
			chans = append(chans, ch)
			mu.Unlock()
		}(uint64(i + 1))
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("3 concurrent opens dialed %d times, want 1", n)
	}
	if n := fab.Wires(); n != 1 {
		t.Fatalf("fabric holds %d wires, want 1", n)
	}
	// Last close tears the wire down; the next open redials.
	for _, ch := range chans {
		ch.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for fab.Wires() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := fab.Wires(); n != 0 {
		t.Fatalf("fabric holds %d wires after last close", n)
	}
	ch, err := fab.Open("peer-a", protocol.Hello{ContentID: 9}, 2*time.Second)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("reopen dialed %d times total, want 2", n)
	}
	ch.Close()
	fab.Close()
	serveWG.Wait()
}

func TestDialVersionReject(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	cc, sc := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer sc.Close()
		sc.SetDeadline(time.Now().Add(5 * time.Second))
		// A server that cannot speak v5 answers the canonical version
		// rejection instead of a MUX_HELLO.
		fr := protocol.NewFrameReader(sc)
		if _, err := fr.Next(); err != nil {
			return
		}
		protocol.WriteFrame(sc, protocol.EncodeErrorBadVersion())
	}()
	_, err := Dial(cc, Config{Timeout: 2 * time.Second})
	if !errors.Is(err, protocol.ErrVersion) {
		t.Fatalf("Dial = %v, want ErrVersion in the chain", err)
	}
	wg.Wait()
}

func TestRemoteCloseDrainsThenEOF(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	w, shutdown := startPair(t, Config{}, Config{}, func(ch *Channel) {
		ch.Accept(protocol.Hello{FullCopy: true})
		for i := 0; i < 5; i++ {
			protocol.WriteSymbol(ch, uint64(i), []byte("tail"))
		}
		ch.Close()
	})
	defer shutdown()
	ch, err := w.Open(protocol.Hello{ContentID: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch.SetDeadline(time.Now().Add(5 * time.Second))
	got := 0
	for {
		f, err := ch.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("after %d symbols: %v, want io.EOF", got, err)
			}
			break
		}
		if f.Type == protocol.TypeSymbol {
			got++
		}
	}
	if got != 5 {
		t.Fatalf("drained %d in-flight symbols before EOF, want 5", got)
	}
	ch.Close()
}
