// Package peermux is the connection fabric: it multiplexes every
// content session a node runs against one peer onto a single framed
// connection (protocol v5), collapsing connection count from
// O(peers × contents) to O(peers).
//
// # Wire layout
//
// A fabric connection opens with a MUX_HELLO exchange (each side
// announces its channel capacity and dialable listen address) instead
// of a per-content HELLO. After that the stream carries:
//
//   - OPEN_CHANNEL / ACCEPT_CHANNEL / REJECT_CHANNEL — subchannel
//     negotiation. The opener picks an odd channel id and attaches its
//     content HELLO; the acceptor answers with its own HELLO (content
//     metadata) or a rejection reusing the canonical ERROR vocabulary
//     ("unknown content", "refused", "busy").
//   - MUX — the envelope: channel id (uint16) + inner frame type
//     (uint8) + inner payload, under the outer frame's single CRC.
//     Every legacy frame type (SYMBOL, RECODED, SUMMARY, REQUEST,
//     DONE, ERROR, ...) travels inside envelopes unchanged, so the
//     per-channel state machines are exactly the legacy session state
//     machines. Multiplexing costs 3 bytes per frame.
//   - CREDIT — per-channel flow control (below).
//   - CLOSE_CHANNEL — either side retires a channel; frames that were
//     already in flight for a recently closed id are drained silently
//     (a bounded set of retired ids), not punished.
//   - PEERS — wire-level gossip, deduplicated per wire; it belongs to
//     the connection, not to any one channel.
//
// # Credit model
//
// Only symbol-bearing frames (SYMBOL, RECODED) consume credits;
// control traffic always flows. The receiving side of a channel grants
// an initial window of credits at channel establishment, the sender
// spends one credit per symbol frame and blocks when the window is
// exhausted, and the receiver replenishes (CREDIT frames carrying the
// drained count) as its consumer actually drains symbols off the
// channel queue. A slow consumer therefore self-throttles exactly its
// own channel — the wire keeps moving and sibling channels keep their
// throughput — while a sender that overruns its window, or targets an
// unknown channel id, is charged to the penalty box via Config.Penalize
// and the offending frame is dropped without wedging the stream.
//
// Windows are live-resizable scheduling currency, not a fixed
// constant. Channel.SetWindow retargets a channel mid-transfer: a grow
// grants the delta as an unsolicited CREDIT immediately (after paying
// down any pending shrink), a shrink accumulates a deficit that is
// paid by withholding replenishment as frames drain — credits already
// granted are never revoked, so the sender's view of its window only
// ever tells the truth. OpenWindow opens a channel at a non-default
// initial window, and Config.WireWindow imposes a per-wire aggregate
// ceiling: grants for new channels and grows are clamped to the
// remaining headroom (Wire.WindowSum reads the ledger), never below a
// 1-frame floor, and a channel's outstanding grant is retired back to
// the ledger exactly once when it closes or fails. The multi-content
// node uses all three together (node.Options.WindowBudget) to
// re-divide one frame budget across its fetches by marginal utility
// every housekeeping tick.
//
// # Channel lifecycle
//
// Open (dialer picks id, sends OPEN_CHANNEL) → Accept/Reject (acceptor
// answers; both sides grant initial credits on accept) → established
// (Channel is a frame source via Next and an io.Writer that re-frames
// one serialized legacy frame per Write into an envelope) → closed
// (either side's CLOSE_CHANNEL, a wire failure, or Channel.Close; the
// id then drains). A Fabric refcounts channels per wire: the first
// Open to an address dials and shakes hands, later Opens share the
// wire, and the last Close tears it down.
//
// The pipelined AIMD request ramp that rides on these channels lives in
// the peer package (see peer.FetchOptions.PipelineDepth): fabric
// sessions keep K request batches outstanding, growing K additively
// while batches deliver useful symbols and halving it when the
// duplicate rate spikes.
package peermux
