// Package overlay simulates content delivery across overlay networks of
// unicast connections — the setting of the paper's §1/§2 and Figure 1.
//
// Nodes hold working sets of encoded symbols; directed edges carry a
// configurable number of symbols per round and can drop transmissions
// (loss injection) or appear/disappear mid-run (the reconfiguration that
// adaptive overlays perform, §2.1). Each edge forwards either blindly
// (RandomForward — an end-system behaving "like a router") or informed
// (Reconciled — the sender transmits only symbols the receiver lacks,
// the idealized outcome of the paper's reconciliation machinery, §3's
// "reconciled transfers").
//
// The Figure 1 comparison — tree vs parallel downloads vs collaborative
// perpendicular transfers — is built on this simulator in
// internal/experiment and examples/collaboration.
package overlay

import (
	"errors"
	"fmt"
	"sort"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// NodeID names a node ("S", "A", …).
type NodeID string

// Mode selects an edge's forwarding discipline.
type Mode int

const (
	// RandomForward sends a uniformly random symbol from the sender's
	// working set — stateless, duplicate-prone.
	RandomForward Mode = iota
	// Reconciled sends only symbols the receiver lacks, modelling a
	// connection that runs the paper's reconciliation protocol.
	Reconciled
)

func (m Mode) String() string {
	switch m {
	case RandomForward:
		return "random-forward"
	case Reconciled:
		return "reconciled"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Node is one end-system.
type Node struct {
	ID      NodeID
	Full    bool // holds complete content: an unbounded fountain source
	Working *keyset.Set

	completedAt int // round the node reached the target (-1 = not yet)
}

// CompletedAt returns the round at which the node completed, or -1.
func (n *Node) CompletedAt() int { return n.completedAt }

// Edge is a unicast connection.
type Edge struct {
	From, To NodeID
	Capacity int     // symbols per round (≥1)
	Loss     float64 // per-transmission drop probability [0,1)
	Mode     Mode
}

// Event mutates the network at the start of a given round — link
// failures, reroutes, node joins: the adaptivity of §2.1.
type Event struct {
	Round int
	Apply func(*Network) error
}

// Network is the simulated overlay.
type Network struct {
	target int
	rng    *prng.Rand
	nodes  map[NodeID]*Node
	order  []NodeID // deterministic iteration order
	edges  []*Edge

	freshCounter  uint64
	transmissions int
	dropped       int
	useful        int
}

// New creates an empty network; target is the distinct-symbol count at
// which a node is complete (use transfer.Target(n)).
func New(target int, seed uint64) *Network {
	if target <= 0 {
		panic("overlay: non-positive target")
	}
	return &Network{
		target: target,
		rng:    prng.New(seed),
		nodes:  make(map[NodeID]*Node),
	}
}

// AddNode inserts a node. initial may be nil (empty working set); full
// nodes are treated as complete fountains regardless of initial.
func (nw *Network) AddNode(id NodeID, full bool, initial *keyset.Set) (*Node, error) {
	if _, dup := nw.nodes[id]; dup {
		return nil, fmt.Errorf("overlay: duplicate node %q", id)
	}
	if initial == nil {
		initial = keyset.New(0)
	} else {
		initial = initial.Clone()
	}
	n := &Node{ID: id, Full: full, Working: initial, completedAt: -1}
	if full || initial.Len() >= nw.target {
		n.completedAt = 0
	}
	nw.nodes[id] = n
	nw.order = append(nw.order, id)
	return n, nil
}

// Node returns a node by id (nil if absent).
func (nw *Network) Node(id NodeID) *Node { return nw.nodes[id] }

// AddEdge installs a connection. Capacity 0 defaults to 1.
func (nw *Network) AddEdge(e Edge) error {
	if nw.nodes[e.From] == nil || nw.nodes[e.To] == nil {
		return fmt.Errorf("overlay: edge %s→%s references unknown node", e.From, e.To)
	}
	if e.From == e.To {
		return errors.New("overlay: self-loop")
	}
	if e.Loss < 0 || e.Loss >= 1 {
		return fmt.Errorf("overlay: loss %v outside [0,1)", e.Loss)
	}
	if e.Capacity <= 0 {
		e.Capacity = 1
	}
	ec := e
	nw.edges = append(nw.edges, &ec)
	return nil
}

// RemoveEdge deletes the first edge matching from→to, reporting whether
// one was removed.
func (nw *Network) RemoveEdge(from, to NodeID) bool {
	for i, e := range nw.edges {
		if e.From == from && e.To == to {
			nw.edges = append(nw.edges[:i], nw.edges[i+1:]...)
			return true
		}
	}
	return false
}

// Edges returns a snapshot of the current edges.
func (nw *Network) Edges() []Edge {
	out := make([]Edge, len(nw.edges))
	for i, e := range nw.edges {
		out[i] = *e
	}
	return out
}

// freshSymbol mints a symbol from the unbounded encoding universe for a
// full node's fountain stream.
func (nw *Network) freshSymbol() uint64 {
	nw.freshCounter++
	return (1 << 62) | nw.freshCounter
}

// pickSymbol chooses what the edge carries this transmission, or ok=false
// if the sender has nothing (useful) to offer.
func (nw *Network) pickSymbol(e *Edge, from, to *Node) (uint64, bool) {
	if from.Full {
		return nw.freshSymbol(), true
	}
	if from.Working.Len() == 0 {
		return 0, false
	}
	switch e.Mode {
	case RandomForward:
		return from.Working.Random(nw.rng), true
	case Reconciled:
		// A handful of random probes first (cheap when much is useful),
		// then a deterministic sweep (correct when little is).
		for i := 0; i < 8; i++ {
			s := from.Working.Random(nw.rng)
			if !to.Working.Contains(s) {
				return s, true
			}
		}
		n := from.Working.Len()
		start := nw.rng.Intn(n)
		for i := 0; i < n; i++ {
			s := from.Working.At((start + i) % n)
			if !to.Working.Contains(s) {
				return s, true
			}
		}
		return 0, false
	default:
		return 0, false
	}
}

// Step advances one round: every edge delivers up to Capacity symbols.
// It returns the number of symbols that were new to their receivers and
// the number of transmission attempts made.
func (nw *Network) Step(round int) (useful, sent int) {
	usefulThisRound := 0
	sentThisRound := 0
	for _, e := range nw.edges {
		from, to := nw.nodes[e.From], nw.nodes[e.To]
		if from == nil || to == nil {
			continue
		}
		for c := 0; c < e.Capacity; c++ {
			sym, ok := nw.pickSymbol(e, from, to)
			if !ok {
				break
			}
			nw.transmissions++
			sentThisRound++
			if e.Loss > 0 && nw.rng.Float64() < e.Loss {
				nw.dropped++
				continue
			}
			if to.Working.Add(sym) {
				nw.useful++
				usefulThisRound++
				if to.completedAt < 0 && to.Working.Len() >= nw.target {
					to.completedAt = round
				}
			}
		}
	}
	return usefulThisRound, sentThisRound
}

// Result summarizes a Run.
type Result struct {
	AllComplete   bool
	Rounds        int
	Transmissions int
	Dropped       int
	Useful        int
	Completion    map[NodeID]int // -1 for incomplete nodes
}

// Run executes rounds until every node completes, maxRounds elapse, or
// the network goes quiescent (no useful deliveries for an extended
// stretch). Events fire at the start of their round.
func (nw *Network) Run(maxRounds int, events []Event) (Result, error) {
	if maxRounds <= 0 {
		return Result{}, errors.New("overlay: non-positive maxRounds")
	}
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Round < evs[j].Round })
	next := 0
	idle := 0
	res := Result{Completion: make(map[NodeID]int)}
	round := 1
	for ; round <= maxRounds; round++ {
		for next < len(evs) && evs[next].Round <= round {
			if err := evs[next].Apply(nw); err != nil {
				return Result{}, fmt.Errorf("overlay: event at round %d: %w", evs[next].Round, err)
			}
			next++
		}
		_, sent := nw.Step(round)
		if sent == 0 {
			idle++
		} else {
			idle = 0
		}
		if nw.allComplete() {
			res.AllComplete = true
			break
		}
		if idle > 5 && next >= len(evs) {
			// Deadlock: no edge could offer anything (e.g. reconciled
			// links between identical working sets) and no pending event
			// can change the topology.
			break
		}
	}
	if round > maxRounds {
		round = maxRounds
	}
	res.Rounds = round
	res.Transmissions = nw.transmissions
	res.Dropped = nw.dropped
	res.Useful = nw.useful
	for id, n := range nw.nodes {
		res.Completion[id] = n.completedAt
	}
	return res, nil
}

func (nw *Network) allComplete() bool {
	for _, n := range nw.nodes {
		if n.completedAt < 0 {
			return false
		}
	}
	return true
}
