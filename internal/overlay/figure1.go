package overlay

import (
	"fmt"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// Figure 1 of the paper: source S holds the full content; A and B each
// hold a different 50% of the total; C, D, E each hold 25%, with C and D
// disjoint. Three delivery configurations are compared:
//
//	(a) Tree:           S→A, S→B, A→C, A→D, B→E
//	(b) Parallel:       (a) plus cross-parent downloads C←B, D←B, E←A
//	(c) Collaborative:  (b) plus perpendicular peer links among
//	                    {A,B} and {C,D,E} in both directions
//
// The paper's point is qualitative: each added layer of connectivity —
// and especially the perpendicular exchanges between peers with
// complementary working sets — cuts completion time, provided transfers
// are informed. Topology (b)/(c) edge choices follow Figure 1's panels;
// the exact peer pairs in (c) are the figure's legend pairs.
type Fig1Config int

const (
	Fig1Tree Fig1Config = iota
	Fig1Parallel
	Fig1Collaborative
)

func (c Fig1Config) String() string {
	switch c {
	case Fig1Tree:
		return "tree"
	case Fig1Parallel:
		return "parallel"
	case Fig1Collaborative:
		return "collaborative"
	default:
		return fmt.Sprintf("Fig1Config(%d)", int(c))
	}
}

// BuildFigure1 constructs the Figure 1 network over a content of
// `target` distinct symbols with the given forwarding mode on every edge.
// Working sets follow the figure: |A|=|B|=target/2 (disjoint),
// |C|=|D|=target/4 (disjoint subsets of A's half side of the universe),
// |E|=target/4 (overlapping B's half).
func BuildFigure1(cfg Fig1Config, mode Mode, target int, seed uint64) (*Network, error) {
	if target < 8 {
		return nil, fmt.Errorf("overlay: target %d too small for the Figure 1 split", target)
	}
	rng := prng.New(seed)
	universe := keyset.Random(rng, target)
	slice := func(lo, hi int) *keyset.Set {
		s := keyset.New(hi - lo)
		for i := lo; i < hi; i++ {
			s.Add(universe.At(i))
		}
		return s
	}
	half := target / 2
	quarter := target / 4

	nw := New(target, rng.Uint64())
	add := func(id NodeID, full bool, set *keyset.Set) error {
		_, err := nw.AddNode(id, full, set)
		return err
	}
	if err := add("S", true, nil); err != nil {
		return nil, err
	}
	if err := add("A", false, slice(0, half)); err != nil {
		return nil, err
	}
	if err := add("B", false, slice(half, target)); err != nil {
		return nil, err
	}
	if err := add("C", false, slice(0, quarter)); err != nil {
		return nil, err
	}
	if err := add("D", false, slice(quarter, 2*quarter)); err != nil {
		return nil, err
	}
	if err := add("E", false, slice(half, half+quarter)); err != nil {
		return nil, err
	}

	edges := []Edge{
		// (a) the multicast tree
		{From: "S", To: "A"}, {From: "S", To: "B"},
		{From: "A", To: "C"}, {From: "A", To: "D"}, {From: "B", To: "E"},
	}
	if cfg >= Fig1Parallel {
		// (b) parallel downloads: each leaf adds a second parent
		edges = append(edges,
			Edge{From: "B", To: "C"}, Edge{From: "B", To: "D"}, Edge{From: "A", To: "E"})
	}
	if cfg >= Fig1Collaborative {
		// (c) perpendicular collaboration between complementary peers
		edges = append(edges,
			Edge{From: "A", To: "B"}, Edge{From: "B", To: "A"},
			Edge{From: "C", To: "D"}, Edge{From: "D", To: "C"},
			Edge{From: "C", To: "E"}, Edge{From: "E", To: "C"},
			Edge{From: "D", To: "E"}, Edge{From: "E", To: "D"})
	}
	for _, e := range edges {
		e.Mode = mode
		if err := nw.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return nw, nil
}
