package overlay

import (
	"fmt"

	"icd/internal/prng"
)

// SwarmConfig describes the paper's motivating deployment (§1): a content
// delivery network of many machines that all want the same large file,
// connected by a sparse random overlay, with every connection carrying
// informed transfers in both directions.
type SwarmConfig struct {
	Nodes  int // total end-systems, including one full source
	Degree int // outgoing connections per node (sparse: 2–4 typical)
	Target int // distinct symbols for completion (transfer.Target(n))
	Seed   uint64
	Mode   Mode    // forwarding discipline on every edge
	Loss   float64 // per-transmission loss on every edge
}

// BuildSwarm constructs a random overlay: node 0 is the source with full
// content; every other node starts empty and connects to Degree random
// earlier-joined nodes with bidirectional edges (a simple preferential
// join that keeps the graph connected, as real overlay managers do).
func BuildSwarm(cfg SwarmConfig) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("overlay: swarm needs ≥ 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Degree < 1 {
		return nil, fmt.Errorf("overlay: swarm degree %d", cfg.Degree)
	}
	rng := prng.New(cfg.Seed)
	nw := New(cfg.Target, rng.Uint64())
	if _, err := nw.AddNode(nodeName(0), true, nil); err != nil {
		return nil, err
	}
	for i := 1; i < cfg.Nodes; i++ {
		if _, err := nw.AddNode(nodeName(i), false, nil); err != nil {
			return nil, err
		}
		deg := cfg.Degree
		if deg > i {
			deg = i
		}
		for _, j := range rng.SampleInts(i, deg) {
			a, b := nodeName(i), nodeName(j)
			if err := nw.AddEdge(Edge{From: a, To: b, Mode: cfg.Mode, Loss: cfg.Loss}); err != nil {
				return nil, err
			}
			if err := nw.AddEdge(Edge{From: b, To: a, Mode: cfg.Mode, Loss: cfg.Loss}); err != nil {
				return nil, err
			}
		}
	}
	return nw, nil
}

func nodeName(i int) NodeID {
	if i == 0 {
		return "source"
	}
	return NodeID(fmt.Sprintf("peer%03d", i))
}

// SwarmChurn builds reconfiguration events that repeatedly fail a random
// existing edge and replace it with a fresh random one — the §2.1
// transience an adaptive overlay must ride out. Events fire every
// `interval` rounds, `count` times.
func SwarmChurn(cfg SwarmConfig, interval, count int) []Event {
	rng := prng.New(cfg.Seed ^ 0xC0DE)
	events := make([]Event, 0, count)
	for k := 1; k <= count; k++ {
		events = append(events, Event{
			Round: k * interval,
			Apply: func(nw *Network) error {
				edges := nw.Edges()
				if len(edges) == 0 {
					return nil
				}
				victim := edges[rng.Intn(len(edges))]
				nw.RemoveEdge(victim.From, victim.To)
				// Reconnect the orphaned receiver to a random other node.
				for tries := 0; tries < 20; tries++ {
					to := nodeName(rng.Intn(cfg.Nodes))
					if to == victim.To {
						continue
					}
					if err := nw.AddEdge(Edge{
						From: to, To: victim.To, Mode: cfg.Mode, Loss: cfg.Loss,
					}); err == nil {
						return nil
					}
				}
				return nil
			},
		})
	}
	return events
}
