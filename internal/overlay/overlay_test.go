package overlay

import (
	"testing"

	"icd/internal/keyset"
	"icd/internal/prng"
)

func TestSingleEdgeFountainDelivery(t *testing.T) {
	nw := New(100, 1)
	if _, err := nw.AddNode("S", true, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode("R", false, nil); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddEdge(Edge{From: "S", To: "R"}); err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllComplete {
		t.Fatal("did not complete")
	}
	// A fountain source delivers one new symbol per round: exactly 100.
	if res.Rounds != 100 {
		t.Fatalf("rounds = %d, want 100", res.Rounds)
	}
	if res.Useful != 100 || res.Transmissions != 100 {
		t.Fatalf("useful=%d transmissions=%d", res.Useful, res.Transmissions)
	}
	if res.Completion["R"] != 100 || res.Completion["S"] != 0 {
		t.Fatalf("completion map wrong: %v", res.Completion)
	}
}

func TestCapacityScalesDelivery(t *testing.T) {
	nw := New(100, 2)
	nw.AddNode("S", true, nil)
	nw.AddNode("R", false, nil)
	nw.AddEdge(Edge{From: "S", To: "R", Capacity: 4})
	res, err := nw.Run(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 25 {
		t.Fatalf("rounds = %d, want 25 at capacity 4", res.Rounds)
	}
}

func TestLossInjectionSlowsDelivery(t *testing.T) {
	run := func(loss float64) int {
		nw := New(200, 3)
		nw.AddNode("S", true, nil)
		nw.AddNode("R", false, nil)
		nw.AddEdge(Edge{From: "S", To: "R", Loss: loss})
		res, err := nw.Run(5000, nil)
		if err != nil || !res.AllComplete {
			t.Fatalf("loss=%v: %v complete=%v", loss, err, res.AllComplete)
		}
		if loss > 0 && res.Dropped == 0 {
			t.Fatalf("loss=%v but nothing dropped", loss)
		}
		return res.Rounds
	}
	clean := run(0)
	lossy := run(0.3)
	if lossy <= clean {
		t.Fatalf("lossy link (%d rounds) not slower than clean (%d)", lossy, clean)
	}
	// ~1/(1−0.3) slowdown expected.
	if float64(lossy) < 1.15*float64(clean) {
		t.Fatalf("slowdown too small: %d vs %d", lossy, clean)
	}
}

func TestReconciledAvoidsDuplicates(t *testing.T) {
	// Two peers with complementary halves: reconciled links transfer
	// everything with zero waste.
	rng := prng.New(4)
	universe := keyset.Random(rng, 200)
	a, b := keyset.New(100), keyset.New(100)
	for i := 0; i < 100; i++ {
		a.Add(universe.At(i))
		b.Add(universe.At(100 + i))
	}
	nw := New(200, 5)
	nw.AddNode("A", false, a)
	nw.AddNode("B", false, b)
	nw.AddEdge(Edge{From: "A", To: "B", Mode: Reconciled})
	nw.AddEdge(Edge{From: "B", To: "A", Mode: Reconciled})
	res, err := nw.Run(500, nil)
	if err != nil || !res.AllComplete {
		t.Fatalf("err=%v complete=%v", err, res.AllComplete)
	}
	if res.Useful != res.Transmissions {
		t.Fatalf("reconciled transfer wasted: %d useful of %d sent", res.Useful, res.Transmissions)
	}
	if res.Rounds != 100 {
		t.Fatalf("rounds = %d, want 100", res.Rounds)
	}
}

func TestRandomForwardWastes(t *testing.T) {
	rng := prng.New(6)
	universe := keyset.Random(rng, 200)
	a, b := keyset.New(100), keyset.New(100)
	for i := 0; i < 100; i++ {
		a.Add(universe.At(i))
		b.Add(universe.At(100 + i))
	}
	nw := New(200, 7)
	nw.AddNode("A", false, a)
	nw.AddNode("B", false, b)
	nw.AddEdge(Edge{From: "A", To: "B", Mode: RandomForward})
	nw.AddEdge(Edge{From: "B", To: "A", Mode: RandomForward})
	res, err := nw.Run(5000, nil)
	if err != nil || !res.AllComplete {
		t.Fatalf("err=%v complete=%v", err, res.AllComplete)
	}
	if res.Useful == res.Transmissions {
		t.Fatal("random forwarding sent no duplicates?!")
	}
}

func TestQuiescenceDetected(t *testing.T) {
	// Two partial nodes with identical content and reconciled links have
	// nothing to exchange: the run must stop early, incomplete.
	rng := prng.New(8)
	s := keyset.Random(rng, 50)
	nw := New(100, 9)
	nw.AddNode("A", false, s)
	nw.AddNode("B", false, s.Clone())
	nw.AddEdge(Edge{From: "A", To: "B", Mode: Reconciled})
	res, err := nw.Run(100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllComplete {
		t.Fatal("cannot be complete")
	}
	if res.Rounds >= 100000 {
		t.Fatal("quiescence not detected")
	}
}

func TestReconfigurationEvents(t *testing.T) {
	// The receiver starts connected to a dead-end; at round 50 the
	// overlay reroutes to the source (§2.1 adaptivity).
	nw := New(100, 10)
	nw.AddNode("S", true, nil)
	nw.AddNode("Dead", false, nil)
	nw.AddNode("R", false, nil)
	nw.AddEdge(Edge{From: "Dead", To: "R"})
	events := []Event{
		{Round: 50, Apply: func(n *Network) error {
			if !n.RemoveEdge("Dead", "R") {
				t.Error("edge not found")
			}
			return n.AddEdge(Edge{From: "S", To: "R"})
		}},
	}
	res, err := nw.Run(10000, events)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion["R"] < 0 {
		t.Fatal("receiver never completed after reroute")
	}
	if res.Completion["R"] < 149 || res.Completion["R"] > 151 {
		t.Fatalf("completed at %d, want ≈150 (50 idle + 100 transfer)", res.Completion["R"])
	}
}

func TestValidation(t *testing.T) {
	nw := New(10, 1)
	nw.AddNode("A", false, nil)
	if _, err := nw.AddNode("A", false, nil); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := nw.AddEdge(Edge{From: "A", To: "Z"}); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := nw.AddEdge(Edge{From: "A", To: "A"}); err == nil {
		t.Error("self-loop accepted")
	}
	nw.AddNode("B", false, nil)
	if err := nw.AddEdge(Edge{From: "A", To: "B", Loss: 1.5}); err == nil {
		t.Error("loss ≥ 1 accepted")
	}
	if _, err := nw.Run(0, nil); err == nil {
		t.Error("maxRounds 0 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0, 1)
}

func TestFigure1Orderings(t *testing.T) {
	// E12: the paper's qualitative claims. With informed transfers,
	// richer connectivity must strictly reduce completion time; informed
	// must beat blind forwarding on the same topology.
	const target = 400
	rounds := func(cfg Fig1Config, mode Mode) int {
		nw, err := BuildFigure1(cfg, mode, target, 42)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(100*target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllComplete {
			t.Fatalf("%v/%v did not complete", cfg, mode)
		}
		return res.Rounds
	}
	treeR := rounds(Fig1Tree, Reconciled)
	parR := rounds(Fig1Parallel, Reconciled)
	colR := rounds(Fig1Collaborative, Reconciled)
	if !(colR < parR && parR < treeR) {
		t.Fatalf("informed: collaborative %d < parallel %d < tree %d violated", colR, parR, treeR)
	}
	treeF := rounds(Fig1Tree, RandomForward)
	if treeR >= treeF {
		t.Fatalf("informed tree (%d) not faster than blind tree (%d)", treeR, treeF)
	}
	t.Logf("Figure 1 rounds: tree blind=%d, tree=%d, parallel=%d, collaborative=%d",
		treeF, treeR, parR, colR)
}

func TestBuildFigure1Validation(t *testing.T) {
	if _, err := BuildFigure1(Fig1Tree, Reconciled, 4, 1); err == nil {
		t.Fatal("tiny target accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if RandomForward.String() != "random-forward" || Reconciled.String() != "reconciled" {
		t.Fatal("mode strings wrong")
	}
	if Fig1Tree.String() != "tree" || Fig1Collaborative.String() != "collaborative" {
		t.Fatal("config strings wrong")
	}
}

func BenchmarkStepReconciled(b *testing.B) {
	rng := prng.New(1)
	universe := keyset.Random(rng, 2000)
	a, c := keyset.New(1000), keyset.New(1000)
	for i := 0; i < 1000; i++ {
		a.Add(universe.At(i))
		c.Add(universe.At(1000 + i))
	}
	nw := New(2000, 2)
	nw.AddNode("A", false, a)
	nw.AddNode("B", false, c)
	nw.AddEdge(Edge{From: "A", To: "B", Mode: Reconciled})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step(i)
	}
}
