package overlay

import (
	"testing"
)

func TestSwarmEveryNodeCompletes(t *testing.T) {
	cfg := SwarmConfig{
		Nodes:  20,
		Degree: 2,
		Target: 300,
		Seed:   1,
		Mode:   Reconciled,
	}
	nw, err := BuildSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(100*cfg.Target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllComplete {
		incomplete := 0
		for _, at := range res.Completion {
			if at < 0 {
				incomplete++
			}
		}
		t.Fatalf("%d nodes incomplete after %d rounds", incomplete, res.Rounds)
	}
	// Informed swarm transfers should be highly efficient.
	eff := float64(res.Useful) / float64(res.Transmissions)
	if eff < 0.8 {
		t.Fatalf("swarm efficiency %.2f", eff)
	}
	t.Logf("20-node swarm: %d rounds, efficiency %.3f", res.Rounds, eff)
}

func TestSwarmScalesBeyondSourceBandwidth(t *testing.T) {
	// The §1 argument: with collaboration, total completion time grows
	// far slower than nodes × (point-to-point time). A 16-node swarm
	// should finish in a small multiple of the single-receiver time, not
	// 15×.
	single, err := BuildSwarm(SwarmConfig{Nodes: 2, Degree: 1, Target: 300, Seed: 3, Mode: Reconciled})
	if err != nil {
		t.Fatal(err)
	}
	resSingle, err := single.Run(100000, nil)
	if err != nil || !resSingle.AllComplete {
		t.Fatalf("single: %v %v", err, resSingle.AllComplete)
	}
	swarm, err := BuildSwarm(SwarmConfig{Nodes: 16, Degree: 3, Target: 300, Seed: 3, Mode: Reconciled})
	if err != nil {
		t.Fatal(err)
	}
	resSwarm, err := swarm.Run(100000, nil)
	if err != nil || !resSwarm.AllComplete {
		t.Fatalf("swarm: %v %v", err, resSwarm.AllComplete)
	}
	if resSwarm.Rounds > 4*resSingle.Rounds {
		t.Fatalf("16-node swarm took %d rounds vs single %d — not scalable",
			resSwarm.Rounds, resSingle.Rounds)
	}
	t.Logf("single-receiver %d rounds; 16-node swarm %d rounds", resSingle.Rounds, resSwarm.Rounds)
}

func TestSwarmSurvivesChurn(t *testing.T) {
	cfg := SwarmConfig{
		Nodes:  12,
		Degree: 2,
		Target: 250,
		Seed:   5,
		Mode:   Reconciled,
	}
	nw, err := BuildSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fail-and-reroute an edge every 40 rounds, 10 times.
	events := SwarmChurn(cfg, 40, 10)
	res, err := nw.Run(100*cfg.Target, events)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllComplete {
		t.Fatalf("swarm did not survive churn: %d rounds", res.Rounds)
	}
}

func TestSwarmWithLoss(t *testing.T) {
	cfg := SwarmConfig{
		Nodes:  10,
		Degree: 2,
		Target: 200,
		Seed:   7,
		Mode:   Reconciled,
		Loss:   0.2,
	}
	nw, err := BuildSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(100*cfg.Target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllComplete {
		t.Fatal("lossy swarm did not complete")
	}
	if res.Dropped == 0 {
		t.Fatal("no losses recorded at 20% loss")
	}
}

func TestSwarmValidation(t *testing.T) {
	if _, err := BuildSwarm(SwarmConfig{Nodes: 1, Degree: 1, Target: 10}); err == nil {
		t.Error("1-node swarm accepted")
	}
	if _, err := BuildSwarm(SwarmConfig{Nodes: 5, Degree: 0, Target: 10}); err == nil {
		t.Error("degree-0 swarm accepted")
	}
}

func BenchmarkSwarm32Nodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := SwarmConfig{Nodes: 32, Degree: 3, Target: 500, Seed: uint64(i), Mode: Reconciled}
		nw, err := BuildSwarm(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Run(100000, nil); err != nil {
			b.Fatal(err)
		}
	}
}
