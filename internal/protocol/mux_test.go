package protocol

// mux_test.go covers the v5 connection-fabric codecs: round trips for
// every negotiation frame, the MUX envelope's single-CRC nesting, the
// legacy-version writer's byte-level rewrite, and the version-reject
// classifier.

import (
	"bytes"
	"testing"
)

func TestMuxHelloRoundTrip(t *testing.T) {
	for _, h := range []MuxHello{
		{},
		{MaxChannels: 64, ListenAddr: "203.0.113.9:9002"},
		{MaxChannels: 1},
	} {
		got, err := DecodeMuxHello(EncodeMuxHello(h))
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
	}
	if _, err := DecodeMuxHello(Frame{Type: TypeMuxHello, Payload: []byte{1}}); err == nil {
		t.Fatal("truncated MUX_HELLO accepted")
	}
	if _, err := DecodeMuxHello(Frame{Type: TypeMuxHello, Payload: []byte{1, 0, 9, 'x'}}); err == nil {
		t.Fatal("MUX_HELLO with lying addr length accepted")
	}
}

func TestChannelNegotiationRoundTrip(t *testing.T) {
	h := Hello{
		ContentID: 0xF00D, NumBlocks: 2000, BlockSize: 1400, OrigLen: 2_800_000,
		CodeSeed: 42, FullCopy: true, Symbols: 17, SummaryMask: AllSummaryMask,
		ListenAddr: "10.0.0.7:9000",
	}
	ch, got, err := DecodeOpenChannel(EncodeOpenChannel(7, h))
	if err != nil || ch != 7 || got != h {
		t.Fatalf("OPEN_CHANNEL round trip: ch=%d h=%+v err=%v", ch, got, err)
	}
	ch, got, err = DecodeAcceptChannel(EncodeAcceptChannel(9, h))
	if err != nil || ch != 9 || got != h {
		t.Fatalf("ACCEPT_CHANNEL round trip: ch=%d h=%+v err=%v", ch, got, err)
	}
	ch, msg, err := DecodeRejectChannel(EncodeRejectChannel(3, ReasonRefused+" (address penalized)"))
	if err != nil || ch != 3 || !IsRefused(msg) {
		t.Fatalf("REJECT_CHANNEL round trip: ch=%d msg=%q err=%v", ch, msg, err)
	}
	ch, err = DecodeCloseChannel(EncodeCloseChannel(11))
	if err != nil || ch != 11 {
		t.Fatalf("CLOSE_CHANNEL round trip: ch=%d err=%v", ch, err)
	}
	if _, _, err := DecodeOpenChannel(Frame{Type: TypeOpenChannel, Payload: []byte{1}}); err == nil {
		t.Fatal("truncated OPEN_CHANNEL accepted")
	}
	if _, err := DecodeCloseChannel(Frame{Type: TypeCloseChannel, Payload: []byte{1, 2, 3}}); err == nil {
		t.Fatal("oversized CLOSE_CHANNEL accepted")
	}
}

func TestCreditRoundTripAndBounds(t *testing.T) {
	ch, n, err := DecodeCredit(EncodeCredit(5, 256))
	if err != nil || ch != 5 || n != 256 {
		t.Fatalf("CREDIT round trip: ch=%d n=%d err=%v", ch, n, err)
	}
	if _, _, err := DecodeCredit(EncodeCredit(1, 0)); err == nil {
		t.Fatal("zero CREDIT grant accepted")
	}
	if _, _, err := DecodeCredit(EncodeCredit(1, MaxCreditGrant+1)); err == nil {
		t.Fatal("oversized CREDIT grant accepted")
	}
	if _, _, err := DecodeCredit(Frame{Type: TypeCredit, Payload: []byte{1, 2, 3}}); err == nil {
		t.Fatal("short CREDIT accepted")
	}
}

func TestMuxEnvelope(t *testing.T) {
	inner := EncodeSymbol(Symbol{ID: 99, Data: []byte("payload-bytes")})
	ch, got, err := MuxView(EncodeMux(12, inner))
	if err != nil || ch != 12 || got.Type != TypeSymbol || !bytes.Equal(got.Payload, inner.Payload) {
		t.Fatalf("MUX round trip: ch=%d inner=%+v err=%v", ch, got, err)
	}
	id, data, err := SymbolView(got)
	if err != nil || id != 99 || string(data) != "payload-bytes" {
		t.Fatalf("inner SYMBOL view through envelope: id=%d data=%q err=%v", id, data, err)
	}

	// WriteMux's fast path must produce the exact bytes of
	// WriteFrame(EncodeMux(...)).
	var fast, slow bytes.Buffer
	if err := WriteMux(&fast, 12, TypeSymbol, inner.Payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&slow, EncodeMux(12, inner)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast.Bytes(), slow.Bytes()) {
		t.Fatalf("WriteMux bytes differ from WriteFrame(EncodeMux):\n%x\n%x", fast.Bytes(), slow.Bytes())
	}
	if _, _, err := MuxView(Frame{Type: TypeMux, Payload: []byte{0, 1}}); err == nil {
		t.Fatal("truncated MUX accepted")
	}
}

func TestLegacyWriterRewritesVersionByte(t *testing.T) {
	var buf bytes.Buffer
	lw := LegacyWriter(&buf)
	if err := WriteSymbol(lw, 7, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[2] != VersionLegacy {
		t.Fatalf("version byte %d, want %d", raw[2], VersionLegacy)
	}
	// The rewritten frame still validates (the CRC excludes the version
	// byte) and reports the legacy version.
	f, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("rewritten frame rejected: %v", err)
	}
	if f.Version != VersionLegacy || f.Type != TypeSymbol {
		t.Fatalf("frame = %+v, want legacy SYMBOL", f)
	}
	id, data, err := SymbolView(f)
	if err != nil || id != 7 || string(data) != "abc" {
		t.Fatalf("legacy symbol view: id=%d data=%q err=%v", id, data, err)
	}
}

func TestReadFrameAcceptsLegacyRejectsOthers(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, EncodeDone()); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(bytes.NewReader(buf.Bytes()))
	if err != nil || f.Version != Version {
		t.Fatalf("own frame: %+v err=%v", f, err)
	}
}

func TestIsVersionReject(t *testing.T) {
	msg, err := DecodeError(EncodeErrorBadVersion())
	if err != nil {
		t.Fatal(err)
	}
	if !IsVersionReject(msg) {
		t.Fatalf("canonical reject %q not recognized", msg)
	}
	if !IsVersionReject(ReasonBadVersion) {
		t.Fatal("bare prefix not recognized")
	}
	if IsVersionReject("unsupported protocol versions everywhere") {
		t.Fatal("prefix-extension false positive")
	}
	if IsVersionReject("refused (address penalized)") {
		t.Fatal("unrelated reason matched")
	}
}
