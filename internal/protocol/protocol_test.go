package protocol

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeHello, Payload: []byte{1, 2, 3}},
		{Type: TypeDone},
		{Type: TypeSymbol, Payload: bytes.Repeat([]byte{0xAB}, 1400)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame mismatch: %v vs %v", got, want)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: TypeSymbol, Payload: []byte("payload-bytes")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload bit in each position and expect a checksum error.
	for i := headerLen; i < len(raw)-4; i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x10
		if _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestDesyncDetected(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("garbage-that-is-not-a-frame")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: TypeBloom, Payload: bytes.Repeat([]byte{7}, 100)})
	raw := buf.Bytes()
	for _, cut := range []int{1, headerLen - 1, headerLen + 10, len(raw) - 1} {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: TypeDone})
	raw := buf.Bytes()
	raw[2] = 99
	_, err := ReadFrame(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("future version accepted")
	}
	// The mismatch must be distinguishable from corruption so the
	// session layer can answer with a clean handshake failure.
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version mismatch not marked ErrVersion: %v", err)
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	if err := WriteFrame(io.Discard, Frame{Type: TypeBloom, Payload: make([]byte, MaxPayload+1)}); err == nil {
		t.Fatal("oversize write accepted")
	}
	// A forged header claiming a huge length must be rejected before
	// allocation.
	hdr := []byte{0xD0, 0x1C, Version, byte(TypeBloom), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("forged length accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	want := Hello{
		ContentID:   0xDEADBEEF,
		NumBlocks:   23968,
		BlockSize:   1400,
		OrigLen:     32 << 20,
		CodeSeed:    42,
		FullCopy:    true,
		Symbols:     12345,
		SummaryMask: AllSummaryMask,
		ListenAddr:  "203.0.113.9:9002",
	}
	got, err := DecodeHello(EncodeHello(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hello mismatch: %+v vs %+v", got, want)
	}
	want.ListenAddr = "" // undialable announcers stay representable
	if got, err = DecodeHello(EncodeHello(want)); err != nil || got != want {
		t.Fatalf("empty-addr hello mismatch: %+v vs %+v (%v)", got, want, err)
	}
	if _, err := DecodeHello(Frame{Type: TypeDone}); err == nil {
		t.Fatal("wrong type accepted")
	}
	if _, err := DecodeHello(Frame{Type: TypeHello, Payload: []byte{1}}); err == nil {
		t.Fatal("short hello accepted")
	}
	// A declared address length past the payload end must not read OOB.
	f := EncodeHello(want)
	f.Payload[42] = 200
	if _, err := DecodeHello(f); err == nil {
		t.Fatal("truncated address accepted")
	}
}

func TestPeersRoundTrip(t *testing.T) {
	want := []PeerAd{
		{ContentID: 0xF00D, Addr: "10.0.0.1:9000"},
		{ContentID: 0xF00D, Addr: "10.0.0.2:9000"},
		{ContentID: 0xBEEF, Addr: "10.0.0.1:9000"}, // same addr, other content
	}
	ads, err := DecodePeers(EncodePeers(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != len(want) {
		t.Fatalf("got %d ads, want %d", len(ads), len(want))
	}
	for i := range want {
		if ads[i] != want[i] {
			t.Fatalf("ad %d: %+v vs %+v", i, ads[i], want[i])
		}
	}
}

func TestPeersDedupAndCaps(t *testing.T) {
	// Duplicates and unusable addresses are dropped at encode time, and
	// an oversized list is truncated to MaxPeerAds.
	var ads []PeerAd
	for i := 0; i < 3; i++ {
		ads = append(ads, PeerAd{ContentID: 1, Addr: "dup:1"})
	}
	ads = append(ads, PeerAd{ContentID: 1, Addr: ""})
	ads = append(ads, PeerAd{ContentID: 1, Addr: strings.Repeat("x", MaxAddrLen+1)})
	for i := 0; i < 2*MaxPeerAds; i++ {
		ads = append(ads, PeerAd{ContentID: 2, Addr: fmt.Sprintf("peer-%d", i)})
	}
	got, err := DecodePeers(EncodePeers(ads))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxPeerAds {
		t.Fatalf("got %d ads, want the %d cap", len(got), MaxPeerAds)
	}
	if got[0] != (PeerAd{ContentID: 1, Addr: "dup:1"}) {
		t.Fatalf("dedup changed ordering: %+v", got[0])
	}

	// Decode-side enforcement: a forged count and truncated entries are
	// rejected rather than over-read.
	if _, err := DecodePeers(Frame{Type: TypePeers, Payload: []byte{0xFF, 0xFF}}); err == nil {
		t.Fatal("forged count accepted")
	}
	f := EncodePeers([]PeerAd{{ContentID: 9, Addr: "a:1"}})
	if _, err := DecodePeers(Frame{Type: TypePeers, Payload: f.Payload[:len(f.Payload)-2]}); err == nil {
		t.Fatal("truncated entry accepted")
	}
	if _, err := DecodePeers(Frame{Type: TypePeers, Payload: append(append([]byte(nil), f.Payload...), 0)}); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodePeers(Frame{Type: TypeDone}); err == nil {
		t.Fatal("wrong type accepted")
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	want := Symbol{ID: 987654321, Data: []byte("block-data")}
	got, err := DecodeSymbol(EncodeSymbol(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("symbol mismatch")
	}
	if _, err := DecodeSymbol(Frame{Type: TypeSymbol, Payload: []byte{1, 2}}); err == nil {
		t.Fatal("short symbol accepted")
	}
}

func TestRecodedRoundTrip(t *testing.T) {
	want := Recoded{IDs: []uint64{5, 8, 13}, Data: []byte{0x1E}}
	f, err := EncodeRecoded(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecoded(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 3 || got.IDs[0] != 5 || got.IDs[2] != 13 || !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("recoded mismatch: %+v", got)
	}
	if _, err := EncodeRecoded(Recoded{}); err == nil {
		t.Fatal("empty recoded accepted")
	}
	if _, err := EncodeRecoded(Recoded{IDs: make([]uint64, MaxRecodedIDs+1)}); err == nil {
		t.Fatal("oversize recoded accepted")
	}
	// Forged degree larger than the payload.
	bad := Frame{Type: TypeRecoded, Payload: []byte{0xFF, 0x00, 1, 2, 3}}
	if _, err := DecodeRecoded(bad); err == nil {
		t.Fatal("truncated id list accepted")
	}
}

func TestRequestDoneError(t *testing.T) {
	n, err := DecodeRequest(EncodeRequest(512))
	if err != nil || n != 512 {
		t.Fatalf("request: %d, %v", n, err)
	}
	if EncodeDone().Type != TypeDone {
		t.Fatal("done type")
	}
	msg, err := DecodeError(EncodeError("boom"))
	if err != nil || msg != "boom" {
		t.Fatalf("error: %q, %v", msg, err)
	}
}

func TestTypeStrings(t *testing.T) {
	for ty, want := range map[Type]string{
		TypeHello: "HELLO", TypeSketch: "SKETCH", TypeBloom: "BLOOM",
		TypeART: "ART", TypeRequest: "REQUEST", TypeSymbol: "SYMBOL",
		TypeRecoded: "RECODED", TypeDone: "DONE", TypeError: "ERROR",
		Type(200): "Type(200)",
	} {
		if ty.String() != want {
			t.Fatalf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
}

// Property: any frame round-trips bit-exactly through a buffer.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(ty uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := Frame{Type: Type(ty), Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.Type == in.Type && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random byte mutations anywhere in a frame are detected (or
// yield the identical frame when the mutation is a no-op, which cannot
// happen for XOR with a non-zero mask).
func TestQuickCorruptionAlwaysDetected(t *testing.T) {
	f := func(payload []byte, pos uint16, mask uint8) bool {
		if mask == 0 {
			return true
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Type: TypeSymbol, Payload: payload}); err != nil {
			return false
		}
		raw := buf.Bytes()
		raw[int(pos)%len(raw)] ^= mask
		_, err := ReadFrame(bytes.NewReader(raw))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteReadSymbolFrame(b *testing.B) {
	payload := make([]byte, 1408)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		WriteFrame(&buf, Frame{Type: TypeSymbol, Payload: payload})
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFrameReaderStream checks FrameReader parses a mixed frame stream
// identically to ReadFrame while reusing one buffer.
func TestFrameReaderStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSymbol(&buf, 42, []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteRecoded(&buf, []uint64{7, 9}, []byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, EncodeDone()); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))

	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	id, data, err := SymbolView(f)
	if err != nil || id != 42 || string(data) != "payload-one" {
		t.Fatalf("symbol view: id=%d data=%q err=%v", id, data, err)
	}

	f, err = fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	ids, data, err := RecodedView(f, nil)
	if err != nil || len(ids) != 2 || ids[0] != 7 || ids[1] != 9 || string(data) != "payload-two" {
		t.Fatalf("recoded view: ids=%v data=%q err=%v", ids, data, err)
	}

	f, err = fr.Next()
	if err != nil || f.Type != TypeDone {
		t.Fatalf("done frame: %v %v", f.Type, err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}
}

// TestFrameReaderViewInvalidation documents the aliasing contract: a
// view from frame k is overwritten by frame k+1, and DecodeSymbolInto
// is the escape hatch that copies into caller-owned storage.
func TestFrameReaderViewInvalidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSymbol(&buf, 1, []byte("aaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSymbol(&buf, 2, []byte("bbbbbbbb")); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	f1, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	_, view, err := SymbolView(f1)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := DecodeSymbolInto(f1, make([]byte, 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if string(view) == "aaaaaaaa" {
		t.Fatal("view survived the next frame: buffer not reused")
	}
	if string(sym.Data) != "aaaaaaaa" {
		t.Fatalf("DecodeSymbolInto copy clobbered: %q", sym.Data)
	}
}

// TestDecodeSymbolIntoReuse checks that a recycled buffer is grown only
// when needed and reused otherwise.
func TestDecodeSymbolIntoReuse(t *testing.T) {
	f := EncodeSymbol(Symbol{ID: 5, Data: []byte("hello world")})
	buf := make([]byte, 0, 64)
	sym, err := DecodeSymbolInto(f, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &sym.Data[0] != &buf[:1][0] {
		t.Fatal("payload did not reuse the provided storage")
	}
	if string(sym.Data) != "hello world" {
		t.Fatalf("payload %q", sym.Data)
	}
}

// TestFrameReaderZeroAlloc proves the steady-state frame-read path
// allocates nothing once the internal buffer is warm.
func TestFrameReaderZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	payload := bytes.Repeat([]byte{0xAB}, 1400)
	for i := 0; i < 8; i++ {
		if err := WriteSymbol(&buf, uint64(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	r := bytes.NewReader(stream)
	fr := NewFrameReader(r)
	scratch := make([]byte, 0, 2048)
	run := func() {
		r.Reset(stream)
		for {
			f, err := fr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			sym, err := DecodeSymbolInto(f, scratch)
			if err != nil {
				t.Fatal(err)
			}
			scratch = sym.Data
		}
	}
	run() // warm the internal buffer
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Errorf("frame read loop allocates %.2f/op, want 0", avg)
	}
}

// TestRecodedViewMatchesDecode cross-checks the zero-copy parser against
// DecodeRecoded.
func TestRecodedViewMatchesDecode(t *testing.T) {
	f, err := EncodeRecoded(Recoded{IDs: []uint64{1, 2, 3}, Data: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeRecoded(f)
	if err != nil {
		t.Fatal(err)
	}
	ids, data, err := RecodedView(f, make([]uint64, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want.IDs) || !bytes.Equal(data, want.Data) {
		t.Fatalf("view %v/%q vs decode %v/%q", ids, data, want.IDs, want.Data)
	}
	for i := range ids {
		if ids[i] != want.IDs[i] {
			t.Fatalf("id %d: %d vs %d", i, ids[i], want.IDs[i])
		}
	}
	// Error paths shared with DecodeRecoded.
	if _, _, err := RecodedView(Frame{Type: TypeDone}, nil); err == nil {
		t.Error("wrong type accepted")
	}
	if _, _, err := RecodedView(Frame{Type: TypeRecoded, Payload: []byte{1}}, nil); err == nil {
		t.Error("short payload accepted")
	}
	if _, _, err := RecodedView(Frame{Type: TypeRecoded, Payload: []byte{0, 0}}, nil); err == nil {
		t.Error("zero degree accepted")
	}
	if _, _, err := RecodedView(Frame{Type: TypeRecoded, Payload: []byte{2, 0, 1}}, nil); err == nil {
		t.Error("truncated id list accepted")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	blob := []byte("marshaled-summary-bytes")
	for _, refresh := range []bool{false, true} {
		f := EncodeSummary(SummarySketch, blob, refresh)
		wantType := TypeSummary
		if refresh {
			wantType = TypeSummaryRefresh
		}
		if f.Type != wantType {
			t.Fatalf("refresh=%v framed as %v", refresh, f.Type)
		}
		m, got, err := DecodeSummaryView(f)
		if err != nil {
			t.Fatal(err)
		}
		if m != SummarySketch || !bytes.Equal(got, blob) {
			t.Fatalf("round trip: method %v blob %q", m, got)
		}
	}
	if _, _, err := DecodeSummaryView(Frame{Type: TypeDone}); err == nil {
		t.Error("wrong type accepted")
	}
	if _, _, err := DecodeSummaryView(Frame{Type: TypeSummary}); err == nil {
		t.Error("empty summary accepted")
	}
	if _, _, err := DecodeSummaryView(Frame{Type: TypeSummary, Payload: []byte{99}}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestChooseSummaryMethod(t *testing.T) {
	all := AllSummaryMask
	cases := []struct {
		name string
		mask uint8
		recv int
		send int
		want SummaryMethod
	}{
		{"empty receiver", all, 0, 500, SummaryNone},
		{"no common method", 0, 100, 100, SummaryNone},
		{"small set prefers bloom", all, 100, 140, SummaryBloom},
		{"small set boundary", all, SmallSummaryMax, SmallSummaryMax * 10, SummaryBloom},
		{"large similar sets prefer art", all, 50000, 55000, SummaryART},
		{"large dissimilar sets prefer sketch", all, 50000, 8000, SummarySketch},
		{"large receiver, tiny sender, sketch", all, 50000, 100, SummarySketch},
		{"art unavailable falls back", SummaryBloom.Bit() | SummarySketch.Bit(), 50000, 55000, SummarySketch},
		{"only bloom supported", SummaryBloom.Bit(), 50000, 8000, SummaryBloom},
	}
	for _, c := range cases {
		if got := ChooseSummaryMethod(c.mask, c.recv, c.send); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	// Determinism: both ends evaluating the same inputs must agree.
	for r := 1; r < 100000; r += 7919 {
		for s := 1; s < 100000; s += 9973 {
			a := ChooseSummaryMethod(all, r, s)
			b := ChooseSummaryMethod(all, r, s)
			if a != b {
				t.Fatalf("nondeterministic at r=%d s=%d", r, s)
			}
		}
	}
}

func TestUnknownContentError(t *testing.T) {
	f := EncodeErrorUnknownContent(0xF00D)
	msg, err := DecodeError(f)
	if err != nil {
		t.Fatal(err)
	}
	if msg != "unknown content 0xf00d" {
		t.Fatalf("message = %q", msg)
	}
	cases := []struct {
		msg  string
		want bool
	}{
		{"unknown content 0xf00d", true},
		{"unknown content", true}, // pre-v5 servers sent the bare reason
		{"unknown contentious claim", false},
		{"bad summary", false},
		{"", false},
		{"prefix unknown content 0x1", false},
	}
	for _, c := range cases {
		if got := IsUnknownContent(c.msg); got != c.want {
			t.Errorf("IsUnknownContent(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
}

func TestRefusedError(t *testing.T) {
	msg, err := DecodeError(EncodeErrorRefused())
	if err != nil {
		t.Fatal(err)
	}
	if !IsRefused(msg) {
		t.Fatalf("canonical refusal %q not recognized", msg)
	}
	cases := []struct {
		msg  string
		want bool
	}{
		{"refused (address penalized)", true},
		{"refused", true},
		{"refusedly rude", false},
		{"busy (inbound connection limit reached)", false},
		{"", false},
		{"politely refused", false},
	}
	for _, c := range cases {
		if got := IsRefused(c.msg); got != c.want {
			t.Errorf("IsRefused(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
}
