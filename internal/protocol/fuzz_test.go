package protocol

// fuzz_test.go fuzzes every payload parser of the wire format — HELLO,
// SYMBOL, RECODED, SUMMARY/SUMMARY_REFRESH, PEERS — plus the frame
// reader itself. Each target asserts two things: no input panics the
// parser, and anything the parser accepts survives a re-encode/re-parse
// round trip unchanged (stability: the wire form is a fixpoint). Seed
// corpora live in testdata/fuzz/ and double as regression inputs; CI
// runs each target for a short -fuzztime as a smoke check.

import (
	"bytes"
	"io"
	"testing"
)

func FuzzDecodeHello(f *testing.F) {
	f.Add(EncodeHello(Hello{}).Payload)
	f.Add(EncodeHello(Hello{
		ContentID: 0xF00D, NumBlocks: 23968, BlockSize: 1400, OrigLen: 32 << 20,
		CodeSeed: 42, FullCopy: true, Symbols: 9, SummaryMask: AllSummaryMask,
		ListenAddr: "203.0.113.9:9002",
	}).Payload)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 43))
	f.Fuzz(func(t *testing.T, payload []byte) {
		h, err := DecodeHello(Frame{Type: TypeHello, Payload: payload})
		if err != nil {
			return
		}
		h2, err := DecodeHello(EncodeHello(h))
		if err != nil {
			t.Fatalf("re-encode of accepted hello rejected: %v (%+v)", err, h)
		}
		if h2 != h {
			t.Fatalf("hello round trip unstable: %+v vs %+v", h2, h)
		}
	})
}

func FuzzSymbolView(f *testing.F) {
	f.Add(EncodeSymbol(Symbol{ID: 7, Data: []byte("payload")}).Payload)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1}, 9))
	f.Fuzz(func(t *testing.T, payload []byte) {
		id, data, err := SymbolView(Frame{Type: TypeSymbol, Payload: payload})
		if err != nil {
			return
		}
		id2, data2, err := SymbolView(EncodeSymbol(Symbol{ID: id, Data: data}))
		if err != nil || id2 != id || !bytes.Equal(data2, data) {
			t.Fatalf("symbol round trip unstable: %v (%d vs %d)", err, id2, id)
		}
	})
}

func FuzzRecodedView(f *testing.F) {
	seed, _ := EncodeRecoded(Recoded{IDs: []uint64{1, 2, 3}, Data: []byte{0xAB}})
	f.Add(seed.Payload)
	f.Add([]byte{})
	f.Add([]byte{1, 0}) // degree 1, truncated id list
	f.Fuzz(func(t *testing.T, payload []byte) {
		ids, data, err := RecodedView(Frame{Type: TypeRecoded, Payload: payload}, nil)
		if err != nil {
			return
		}
		reFrame, err := EncodeRecoded(Recoded{IDs: ids, Data: data})
		if err != nil {
			t.Fatalf("re-encode of accepted recoded rejected: %v", err)
		}
		ids2, data2, err := RecodedView(reFrame, nil)
		if err != nil || !bytes.Equal(data2, data) {
			t.Fatalf("recoded round trip unstable: %v", err)
		}
		if len(ids2) != len(ids) {
			t.Fatalf("recoded id list changed: %v vs %v", ids2, ids)
		}
		for i := range ids {
			if ids2[i] != ids[i] {
				t.Fatalf("recoded id %d changed: %d vs %d", i, ids2[i], ids[i])
			}
		}
	})
}

func FuzzDecodeSummaryView(f *testing.F) {
	f.Add(EncodeSummary(SummaryBloom, []byte("bloom-bits"), false).Payload)
	f.Add(EncodeSummary(SummarySketch, nil, true).Payload)
	f.Add([]byte{})
	f.Add([]byte{9, 1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		method, blob, err := DecodeSummaryView(Frame{Type: TypeSummary, Payload: payload})
		if err != nil {
			return
		}
		for _, refresh := range []bool{false, true} {
			m2, b2, err := DecodeSummaryView(EncodeSummary(method, blob, refresh))
			if err != nil || m2 != method || !bytes.Equal(b2, blob) {
				t.Fatalf("summary round trip unstable (refresh=%v): %v", refresh, err)
			}
		}
	})
}

func FuzzDecodePeers(f *testing.F) {
	f.Add(EncodePeers([]PeerAd{
		{ContentID: 0xF00D, Addr: "10.0.0.1:9000"},
		{ContentID: 0xF00D, Addr: "10.0.0.2:9000"},
	}).Payload)
	f.Add(EncodePeers(nil).Payload)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 3, 'a'}) // truncated addr
	f.Fuzz(func(t *testing.T, payload []byte) {
		ads, err := DecodePeers(Frame{Type: TypePeers, Payload: payload})
		if err != nil {
			return
		}
		if len(ads) > MaxPeerAds {
			t.Fatalf("accepted %d ads past the %d cap", len(ads), MaxPeerAds)
		}
		// Decoded ads are already deduplicated and valid, so the
		// re-encode must preserve them exactly.
		ads2, err := DecodePeers(EncodePeers(ads))
		if err != nil {
			t.Fatalf("re-encode of accepted peers rejected: %v", err)
		}
		if len(ads2) != len(ads) {
			t.Fatalf("peers round trip changed count: %v vs %v", ads2, ads)
		}
		for i := range ads {
			if ads2[i] != ads[i] {
				t.Fatalf("peers round trip changed ad %d: %+v vs %+v", i, ads2[i], ads[i])
			}
		}
	})
}

func FuzzFrameReader(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, EncodeHello(Hello{ContentID: 1}))
	WriteFrame(&good, EncodeDone())
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xD0, 0x1C, Version, byte(TypeDone), 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xD0}, 64))
	// Hostile-peer shapes (PR 6): an absurd declared length the reader
	// must refuse to allocate, and a valid frame whose CRC trailer was
	// flipped in flight — both must desynchronize cleanly, never panic.
	f.Add([]byte{0xD0, 0x1C, Version, byte(TypeSymbol), 0xFF, 0xFF, 0xFF, 0xFF})
	flipped := append([]byte(nil), good.Bytes()...)
	flipped[len(flipped)-1] ^= 0x5A
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, stream []byte) {
		// Arbitrary bytes must never panic the reader, and every frame it
		// does accept must survive re-serialization byte-for-byte.
		fr := NewFrameReader(bytes.NewReader(stream))
		for i := 0; i < 64; i++ {
			frame, err := fr.Next()
			if err != nil {
				return // desynchronized or exhausted: the contract is "drop the conn"
			}
			var out bytes.Buffer
			if err := WriteFrame(&out, frame); err != nil {
				t.Fatalf("accepted frame cannot re-serialize: %v", err)
			}
			re, err := ReadFrame(&out)
			if err != nil || re.Type != frame.Type || !bytes.Equal(re.Payload, frame.Payload) {
				t.Fatalf("frame round trip unstable: %v", err)
			}
		}
	})
}

// FuzzMuxDecoders fuzzes every v5 connection-fabric parser — MUX_HELLO,
// OPEN/ACCEPT/REJECT/CLOSE_CHANNEL, CREDIT and the MUX envelope — with
// one shared corpus: each parser either rejects the payload or what it
// accepts survives a re-encode round trip.
func FuzzMuxDecoders(f *testing.F) {
	f.Add(EncodeMuxHello(MuxHello{MaxChannels: 64, ListenAddr: "10.0.0.1:9000"}).Payload)
	f.Add(EncodeOpenChannel(1, Hello{ContentID: 0xF00D, SummaryMask: AllSummaryMask}).Payload)
	f.Add(EncodeAcceptChannel(1, Hello{ContentID: 0xF00D, FullCopy: true}).Payload)
	f.Add(EncodeRejectChannel(3, ReasonRefused).Payload)
	f.Add(EncodeCloseChannel(7).Payload)
	f.Add(EncodeCredit(5, 256).Payload)
	f.Add(EncodeMux(9, EncodeSymbol(Symbol{ID: 4, Data: []byte("x")})).Payload)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if h, err := DecodeMuxHello(Frame{Type: TypeMuxHello, Payload: payload}); err == nil {
			if h2, err := DecodeMuxHello(EncodeMuxHello(h)); err != nil || h2 != h {
				t.Fatalf("MUX_HELLO round trip unstable: %v (%+v vs %+v)", err, h2, h)
			}
		}
		if ch, h, err := DecodeOpenChannel(Frame{Type: TypeOpenChannel, Payload: payload}); err == nil {
			if ch2, h2, err := DecodeOpenChannel(EncodeOpenChannel(ch, h)); err != nil || ch2 != ch || h2 != h {
				t.Fatalf("OPEN_CHANNEL round trip unstable: %v", err)
			}
		}
		if ch, h, err := DecodeAcceptChannel(Frame{Type: TypeAcceptChannel, Payload: payload}); err == nil {
			if ch2, h2, err := DecodeAcceptChannel(EncodeAcceptChannel(ch, h)); err != nil || ch2 != ch || h2 != h {
				t.Fatalf("ACCEPT_CHANNEL round trip unstable: %v", err)
			}
		}
		if ch, msg, err := DecodeRejectChannel(Frame{Type: TypeRejectChannel, Payload: payload}); err == nil {
			if ch2, msg2, err := DecodeRejectChannel(EncodeRejectChannel(ch, msg)); err != nil || ch2 != ch || msg2 != msg {
				t.Fatalf("REJECT_CHANNEL round trip unstable: %v", err)
			}
		}
		if ch, err := DecodeCloseChannel(Frame{Type: TypeCloseChannel, Payload: payload}); err == nil {
			if ch2, err := DecodeCloseChannel(EncodeCloseChannel(ch)); err != nil || ch2 != ch {
				t.Fatalf("CLOSE_CHANNEL round trip unstable: %v", err)
			}
		}
		if ch, n, err := DecodeCredit(Frame{Type: TypeCredit, Payload: payload}); err == nil {
			if ch2, n2, err := DecodeCredit(EncodeCredit(ch, n)); err != nil || ch2 != ch || n2 != n {
				t.Fatalf("CREDIT round trip unstable: %v", err)
			}
		}
		if ch, inner, err := MuxView(Frame{Type: TypeMux, Payload: payload}); err == nil {
			ch2, inner2, err := MuxView(EncodeMux(ch, inner))
			if err != nil || ch2 != ch || inner2.Type != inner.Type || !bytes.Equal(inner2.Payload, inner.Payload) {
				t.Fatalf("MUX round trip unstable: %v", err)
			}
		}
	})
}

// FuzzWriteFrame drives the writer with arbitrary type/payload pairs:
// what it writes, the reader must accept and return unchanged.
func FuzzWriteFrame(f *testing.F) {
	f.Add(uint8(TypeSymbol), []byte("data"))
	f.Add(uint8(0), []byte{})
	f.Add(uint8(255), bytes.Repeat([]byte{7}, 1024))
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Type: Type(typ), Payload: payload}); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("own frame rejected: %v", err)
		}
		if got.Type != Type(typ) || !bytes.Equal(got.Payload, payload) {
			t.Fatal("frame did not round trip")
		}
		if _, err := ReadFrame(&buf); err != io.EOF {
			t.Fatalf("trailing read = %v, want io.EOF", err)
		}
	})
}
