package protocol

// mux.go is the v5 connection-fabric wire vocabulary: the MUX_HELLO
// handshake, channel negotiation (OPEN/ACCEPT/REJECT/CLOSE_CHANNEL),
// CREDIT flow-control grants, and the MUX envelope that carries any
// legacy frame tagged with a channel id. The envelope nests only the
// inner type and payload — one outer CRC covers the whole frame, so
// multiplexing costs 3 bytes per frame, not a second checksum.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MuxHello is the wire-level handshake of a multiplexed connection:
// instead of a content HELLO, the dialer announces how many concurrent
// subchannels it is prepared to serve and (optionally) its dialable
// listen address for gossip attribution; the acceptor answers with its
// own. Content metadata travels per-channel in OPEN/ACCEPT_CHANNEL.
type MuxHello struct {
	// MaxChannels is the largest number of concurrently open channels
	// the announcer will accept from its peer (0 means "none": a wire
	// only useful for gossip, which in practice is a refusal).
	MaxChannels uint16
	// ListenAddr is the announcer's dialable listen address, empty when
	// it cannot be dialed back — same semantics as Hello.ListenAddr.
	ListenAddr string
}

// EncodeMuxHello marshals h. Oversized listen addresses degrade to
// empty, as in EncodeHello.
func EncodeMuxHello(h MuxHello) Frame {
	addr := h.ListenAddr
	if len(addr) > MaxAddrLen {
		addr = ""
	}
	buf := make([]byte, 3+len(addr))
	binary.LittleEndian.PutUint16(buf, h.MaxChannels)
	buf[2] = byte(len(addr))
	copy(buf[3:], addr)
	return Frame{Type: TypeMuxHello, Payload: buf}
}

// DecodeMuxHello unmarshals a MUX_HELLO frame.
func DecodeMuxHello(f Frame) (MuxHello, error) {
	if f.Type != TypeMuxHello {
		return MuxHello{}, fmt.Errorf("protocol: %v is not MUX_HELLO", f.Type)
	}
	if len(f.Payload) < 3 {
		return MuxHello{}, errors.New("protocol: MUX_HELLO too short")
	}
	addrLen := int(f.Payload[2])
	if len(f.Payload) != 3+addrLen {
		return MuxHello{}, fmt.Errorf("protocol: MUX_HELLO payload %d bytes, want %d", len(f.Payload), 3+addrLen)
	}
	return MuxHello{
		MaxChannels: binary.LittleEndian.Uint16(f.Payload),
		ListenAddr:  string(f.Payload[3 : 3+addrLen]),
	}, nil
}

// EncodeOpenChannel marshals a channel-open request: the id the opener
// chose plus its content HELLO (the same payload a legacy session sends
// first — content id, working-set size, summary mask, listen address).
func EncodeOpenChannel(ch uint16, h Hello) Frame {
	buf := make([]byte, 2, 2+helloFixedLen+1+len(h.ListenAddr))
	binary.LittleEndian.PutUint16(buf, ch)
	return Frame{Type: TypeOpenChannel, Payload: appendHelloPayload(buf, h)}
}

// DecodeOpenChannel unmarshals an OPEN_CHANNEL frame.
func DecodeOpenChannel(f Frame) (uint16, Hello, error) {
	if f.Type != TypeOpenChannel {
		return 0, Hello{}, fmt.Errorf("protocol: %v is not OPEN_CHANNEL", f.Type)
	}
	return decodeChannelHello(f.Payload)
}

// EncodeAcceptChannel marshals a channel accept: the id being accepted
// plus the serving side's content HELLO (metadata the fetching side
// needs to construct its decoder).
func EncodeAcceptChannel(ch uint16, h Hello) Frame {
	buf := make([]byte, 2, 2+helloFixedLen+1+len(h.ListenAddr))
	binary.LittleEndian.PutUint16(buf, ch)
	return Frame{Type: TypeAcceptChannel, Payload: appendHelloPayload(buf, h)}
}

// DecodeAcceptChannel unmarshals an ACCEPT_CHANNEL frame.
func DecodeAcceptChannel(f Frame) (uint16, Hello, error) {
	if f.Type != TypeAcceptChannel {
		return 0, Hello{}, fmt.Errorf("protocol: %v is not ACCEPT_CHANNEL", f.Type)
	}
	return decodeChannelHello(f.Payload)
}

func decodeChannelHello(p []byte) (uint16, Hello, error) {
	if len(p) < 2 {
		return 0, Hello{}, errors.New("protocol: channel frame too short")
	}
	h, err := decodeHelloPayload(p[2:])
	if err != nil {
		return 0, Hello{}, err
	}
	return binary.LittleEndian.Uint16(p), h, nil
}

// EncodeRejectChannel marshals a channel rejection: the refused id plus
// a human-readable reason. The canonical ERROR-message vocabulary
// (ReasonUnknownContent, ReasonRefused, ReasonBadVersion, "busy") is
// reused here so openers classify rejections with the same helpers.
func EncodeRejectChannel(ch uint16, msg string) Frame {
	buf := make([]byte, 2+len(msg))
	binary.LittleEndian.PutUint16(buf, ch)
	copy(buf[2:], msg)
	return Frame{Type: TypeRejectChannel, Payload: buf}
}

// DecodeRejectChannel unmarshals a REJECT_CHANNEL frame.
func DecodeRejectChannel(f Frame) (uint16, string, error) {
	if f.Type != TypeRejectChannel {
		return 0, "", fmt.Errorf("protocol: %v is not REJECT_CHANNEL", f.Type)
	}
	if len(f.Payload) < 2 {
		return 0, "", errors.New("protocol: REJECT_CHANNEL too short")
	}
	return binary.LittleEndian.Uint16(f.Payload), string(f.Payload[2:]), nil
}

// EncodeCloseChannel marshals a channel close notification.
func EncodeCloseChannel(ch uint16) Frame {
	buf := make([]byte, 2)
	binary.LittleEndian.PutUint16(buf, ch)
	return Frame{Type: TypeCloseChannel, Payload: buf}
}

// DecodeCloseChannel unmarshals a CLOSE_CHANNEL frame.
func DecodeCloseChannel(f Frame) (uint16, error) {
	if f.Type != TypeCloseChannel {
		return 0, fmt.Errorf("protocol: %v is not CLOSE_CHANNEL", f.Type)
	}
	if len(f.Payload) != 2 {
		return 0, errors.New("protocol: CLOSE_CHANNEL malformed")
	}
	return binary.LittleEndian.Uint16(f.Payload), nil
}

// MaxCreditGrant bounds one CREDIT frame's grant: far above any sane
// window, low enough that a hostile grant cannot overflow a sender's
// credit counter in one frame.
const MaxCreditGrant = 1 << 20

// EncodeCredit marshals a flow-control grant: the receiver on channel
// ch permits the sender n more symbol-bearing frames. Grants are
// strictly additive — there is no frame that revokes or resets credit,
// so a receiver that wants a smaller window shrinks it by withholding
// replenishment until the drained frames have paid the difference, and
// a window update in the growing direction is just an unsolicited
// CREDIT for the delta. The sender needs no window-resize protocol at
// all: it spends whatever it has been granted and blocks at zero.
func EncodeCredit(ch uint16, n uint32) Frame {
	buf := make([]byte, 6)
	binary.LittleEndian.PutUint16(buf, ch)
	binary.LittleEndian.PutUint32(buf[2:], n)
	return Frame{Type: TypeCredit, Payload: buf}
}

// DecodeCredit unmarshals a CREDIT frame, rejecting grants beyond
// MaxCreditGrant (a hostile peer trying to disable flow control).
func DecodeCredit(f Frame) (uint16, uint32, error) {
	if f.Type != TypeCredit {
		return 0, 0, fmt.Errorf("protocol: %v is not CREDIT", f.Type)
	}
	if len(f.Payload) != 6 {
		return 0, 0, errors.New("protocol: CREDIT malformed")
	}
	n := binary.LittleEndian.Uint32(f.Payload[2:])
	if n == 0 || n > MaxCreditGrant {
		return 0, 0, fmt.Errorf("protocol: CREDIT grant %d outside [1,%d]", n, MaxCreditGrant)
	}
	return binary.LittleEndian.Uint16(f.Payload), n, nil
}

// EncodeMux wraps an inner frame in a MUX envelope for channel ch. The
// inner frame's own header and CRC are not serialized — the envelope
// carries only (inner type, inner payload) and the outer frame's CRC
// covers everything.
func EncodeMux(ch uint16, inner Frame) Frame {
	buf := make([]byte, 3+len(inner.Payload))
	binary.LittleEndian.PutUint16(buf, ch)
	buf[2] = byte(inner.Type)
	copy(buf[3:], inner.Payload)
	return Frame{Type: TypeMux, Payload: buf}
}

// MuxView parses a MUX envelope without copying: the inner frame's
// payload aliases f.Payload, so for frames from a FrameReader it is
// valid only until the next frame is read.
func MuxView(f Frame) (ch uint16, inner Frame, err error) {
	if f.Type != TypeMux {
		return 0, Frame{}, fmt.Errorf("protocol: %v is not MUX", f.Type)
	}
	if len(f.Payload) < 3 {
		return 0, Frame{}, errors.New("protocol: MUX too short")
	}
	return binary.LittleEndian.Uint16(f.Payload),
		Frame{Type: Type(f.Payload[2]), Payload: f.Payload[3:], Version: f.Version}, nil
}

// FrameParts splits one fully serialized frame — what any writer in
// this package emits in a single Write call — into its type and payload
// (aliasing p), without verifying the CRC: the caller got the bytes
// from a trusted in-process writer, not a network. It is how a
// multiplexing layer re-frames a legacy frame into a MUX envelope
// without a decode/re-encode round trip.
func FrameParts(p []byte) (Type, []byte, error) {
	if len(p) < headerLen+4 || binary.LittleEndian.Uint16(p) != magic {
		return 0, nil, errors.New("protocol: not a serialized frame")
	}
	n := int(binary.LittleEndian.Uint32(p[4:]))
	if len(p) != headerLen+n+4 {
		return 0, nil, fmt.Errorf("protocol: frame length %d does not match declared payload %d", len(p), n)
	}
	return Type(p[3]), p[headerLen : headerLen+n], nil
}

// WriteMux frames and writes (innerType, payload) as a MUX envelope for
// channel ch in one Write call, using the same pooled-buffer fast path
// as WriteSymbol — the allocation-free way a multiplexed sender moves
// symbols.
func WriteMux(w io.Writer, ch uint16, innerType Type, payload []byte) error {
	var pre [3]byte
	binary.LittleEndian.PutUint16(pre[:], ch)
	pre[2] = byte(innerType)
	return writeFrame2(w, TypeMux, pre[:], payload)
}
