// Package protocol defines the wire format of the prototype
// implementation (§6): a length-prefixed, checksummed binary framing over
// any reliable byte stream, carrying the handshake, the reconciliation
// summaries of §4–§5 (min-wise sketches, Bloom filters, approximate
// reconciliation trees) and the §5.4 content symbols (regular encoded
// symbols, identified by a 64-bit seed, and recoded symbols carrying
// their constituent lists).
//
// Frame layout (little-endian):
//
//	magic   uint16  0x1CD0
//	version uint8   1
//	type    uint8   message type
//	length  uint32  payload byte count
//	payload [length]byte
//	crc32   uint32  IEEE CRC over type|length|payload
//
// The CRC turns random corruption into a detectable error instead of a
// misparse; the magic catches stream desynchronization early. Payload
// sizes are bounded to keep a malicious or corrupt peer from inducing
// huge allocations.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"sync"
)

// Version is the protocol version spoken by this library. Version 2
// changed the Bloom summary's probe positions (Lemire fast-range
// reduction instead of `% m`), so a v1 peer's filter bits are
// meaningless to a v2 peer; the version check turns that silent
// reconciliation corruption into a clean handshake failure. Version 3
// added summary-method negotiation: the HELLO grew a supported-methods
// mask (its payload is one byte longer), and summaries travel in
// SUMMARY/SUMMARY_REFRESH frames that name their method explicitly.
// Version 4 added gossip peer discovery: the HELLO grew a
// variable-length advertised listen address, and either side may send
// PEERS frames carrying capped, deduplicated lists of (content id,
// address) advertisements. Version 5 added the multiplexed connection
// fabric: a MUX_HELLO handshake, OPEN/ACCEPT/REJECT/CLOSE_CHANNEL
// negotiation, per-channel CREDIT flow control, and a MUX envelope that
// carries any v4 frame tagged with a channel id — so one wire serves N
// content subchannels. Every v4 frame is unchanged in v5, so a v5
// reader also accepts v4 frames (VersionLegacy) and a v5 server can
// serve a v4 client a single-channel legacy session.
const Version = 5

// VersionLegacy is the newest prior version whose frames are
// byte-compatible with ours (v4: every frame type 1–12 is identical in
// v5). readFrame accepts it so a v5 node can interoperate with v4
// peers; frames of any other version fail with ErrVersion.
const VersionLegacy = 4

// ErrVersion marks a frame whose version byte differs from Version. A
// session layer that sees it should fail the handshake cleanly (report
// the mismatch, optionally answer with an ERROR frame, and drop the
// connection) rather than treat the stream as corrupt.
var ErrVersion = errors.New("protocol: peer speaks a different version")

// ErrCorrupt marks a frame that failed framing validation — wrong magic
// or a CRC mismatch. The stream is corrupt or desynchronized and the
// connection must be dropped; session layers additionally use it to
// tell a misbehaving (or fault-injected) peer apart from a clean close
// when charging misbehavior penalties.
var ErrCorrupt = errors.New("protocol: corrupt frame")

const magic = 0x1CD0

// MaxPayload bounds a frame's payload: large enough for a Bloom filter
// over a million-symbol working set, small enough to keep allocations
// sane.
const MaxPayload = 16 << 20

// Type identifies a message.
type Type uint8

const (
	TypeHello   Type = 1 // handshake and content metadata
	TypeSketch  Type = 2 // min-wise sketch (§4)
	TypeBloom   Type = 3 // Bloom filter summary (§5.2)
	TypeART     Type = 4 // approximate reconciliation tree summary (§5.3)
	TypeRequest Type = 5 // receiver asks for a batch of symbols
	TypeSymbol  Type = 6 // one regular encoded symbol
	TypeRecoded Type = 7 // one recoded symbol (§5.4.2)
	TypeDone    Type = 8 // sender has satisfied the request / receiver is finished
	TypeError   Type = 9 // fatal error, human-readable

	// TypeSummary carries the working-set summary chosen by the v3
	// negotiation (method byte + marshaled summary).
	TypeSummary Type = 10
	// TypeSummaryRefresh is a TypeSummary payload sent mid-session when
	// the receiver's working set has grown enough that the sender
	// should re-derive its recoding domain.
	TypeSummaryRefresh Type = 11

	// TypePeers carries gossip peer advertisements (v4): a capped,
	// deduplicated list of (content id, dialable address) pairs either
	// side may volunteer so a swarm bootstrapped from a single seed
	// address can self-assemble the full mesh.
	TypePeers Type = 12

	// The v5 connection-fabric frames. A multiplexed wire starts with a
	// MUX_HELLO exchange instead of a content HELLO; after that, content
	// sessions live on numbered subchannels negotiated with
	// OPEN/ACCEPT/REJECT_CHANNEL and torn down with CLOSE_CHANNEL, data
	// frames travel inside MUX envelopes, and receivers meter senders
	// with CREDIT grants. PEERS and ERROR frames remain untagged: they
	// belong to the wire, not to any one channel.
	TypeMuxHello      Type = 13 // wire handshake (replaces HELLO on fabric conns)
	TypeOpenChannel   Type = 14 // open a subchannel: channel id + content HELLO
	TypeAcceptChannel Type = 15 // accept: channel id + serving-side HELLO
	TypeRejectChannel Type = 16 // reject: channel id + human-readable reason
	TypeCloseChannel  Type = 17 // either side retires a channel id
	TypeCredit        Type = 18 // receiver grants the sender symbol credits
	TypeMux           Type = 19 // envelope: channel id + inner type + inner payload
)

// String names the message type for logs and errors.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeSketch:
		return "SKETCH"
	case TypeBloom:
		return "BLOOM"
	case TypeART:
		return "ART"
	case TypeRequest:
		return "REQUEST"
	case TypeSymbol:
		return "SYMBOL"
	case TypeRecoded:
		return "RECODED"
	case TypeDone:
		return "DONE"
	case TypeError:
		return "ERROR"
	case TypeSummary:
		return "SUMMARY"
	case TypeSummaryRefresh:
		return "SUMMARY_REFRESH"
	case TypePeers:
		return "PEERS"
	case TypeMuxHello:
		return "MUX_HELLO"
	case TypeOpenChannel:
		return "OPEN_CHANNEL"
	case TypeAcceptChannel:
		return "ACCEPT_CHANNEL"
	case TypeRejectChannel:
		return "REJECT_CHANNEL"
	case TypeCloseChannel:
		return "CLOSE_CHANNEL"
	case TypeCredit:
		return "CREDIT"
	case TypeMux:
		return "MUX"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Frame is one wire message. Version records the version byte the frame
// arrived with — Version (5) or VersionLegacy (4) — so a server can tell
// a legacy client apart from a current one; frames built by the Encode
// helpers leave it zero, and the writers always stamp the current
// Version on the wire (use a LegacyWriter to answer a v4 peer).
type Frame struct {
	Type    Type
	Payload []byte
	Version uint8
}

const headerLen = 2 + 1 + 1 + 4

// frameBufs recycles serialization buffers across WriteFrame calls. The
// Get/Put pair is scoped to one call (the buffer never escapes), so the
// pool makes steady-state frame writing allocation-free for payloads up
// to the pooled capacity.
var frameBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// appendFrame serializes a frame header, payload and trailing CRC onto
// buf. The payload is passed in up to two chunks so symbol writers can
// frame an (id, data) pair without first concatenating it.
func appendFrame(buf []byte, t Type, p1, p2 []byte) []byte {
	n := len(p1) + len(p2)
	buf = append(buf,
		byte(magic&0xff), byte(magic>>8),
		Version, byte(t),
		byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	buf = append(buf, p1...)
	buf = append(buf, p2...)
	crc := crc32.ChecksumIEEE(buf[len(buf)-n-5:])
	return append(buf, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}

// writeFrame2 frames and writes a two-chunk payload using a pooled buffer.
func writeFrame2(w io.Writer, t Type, p1, p2 []byte) error {
	if len(p1)+len(p2) > MaxPayload {
		return fmt.Errorf("protocol: payload %d exceeds limit", len(p1)+len(p2))
	}
	bp := frameBufs.Get().(*[]byte)
	buf := appendFrame((*bp)[:0], t, p1, p2)
	_, err := w.Write(buf)
	if cap(buf) <= 1<<16 { // don't let one huge frame pin a large buffer
		*bp = buf[:0]
	}
	frameBufs.Put(bp)
	return err
}

// WriteFrame serializes f to w.
func WriteFrame(w io.Writer, f Frame) error {
	return writeFrame2(w, f.Type, f.Payload, nil)
}

// LegacyWriter wraps w so every frame written through it carries the
// VersionLegacy version byte — how a v5 server answers a v4 client in
// frames the client's reader will accept. It relies on two framing
// invariants: every writer in this package emits exactly one complete
// frame per Write call, and the version byte sits outside the CRC (the
// checksum covers type|length|payload only), so rewriting it cannot
// invalidate the trailer. Writes that are not a whole frame pass
// through unchanged.
func LegacyWriter(w io.Writer) io.Writer { return &legacyWriter{w: w} }

type legacyWriter struct {
	w   io.Writer
	buf []byte
}

func (lw *legacyWriter) Write(p []byte) (int, error) {
	if len(p) < headerLen || binary.LittleEndian.Uint16(p) != magic {
		return lw.w.Write(p)
	}
	// Copy before rewriting: an io.Writer must not mutate its input.
	lw.buf = append(lw.buf[:0], p...)
	lw.buf[2] = VersionLegacy
	n, err := lw.w.Write(lw.buf)
	if n > len(p) {
		n = len(p)
	}
	return n, err
}

// readFrame reads and validates one frame from r into scratch storage
// (grown only if needed), returning the frame and the storage for reuse.
// The frame's payload aliases the returned scratch slice. hdr is a
// headerLen-byte caller-provided buffer (callers that loop keep it in a
// long-lived struct so it does not escape to the heap per call).
func readFrame(r io.Reader, hdr, scratch []byte) (Frame, []byte, error) {
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, scratch, err
	}
	if binary.LittleEndian.Uint16(hdr[0:]) != magic {
		return Frame{}, scratch, fmt.Errorf("%w: bad magic (stream desynchronized?)", ErrCorrupt)
	}
	if hdr[2] != Version && hdr[2] != VersionLegacy {
		return Frame{}, scratch, fmt.Errorf("%w: got %d, speaking %d", ErrVersion, hdr[2], Version)
	}
	length := binary.LittleEndian.Uint32(hdr[4:])
	if length > MaxPayload {
		return Frame{}, scratch, fmt.Errorf("protocol: payload %d exceeds limit", length)
	}
	need := int(length) + 4
	var body []byte
	if cap(scratch) >= need {
		body = scratch[:need]
	} else {
		body = make([]byte, need)
		scratch = body
	}
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, scratch, fmt.Errorf("protocol: short frame body: %w", err)
	}
	payload := body[:length]
	wantCRC := binary.LittleEndian.Uint32(body[length:])
	// CRC over type|length|payload, computed incrementally — no scratch
	// concatenation buffer.
	crc := crc32.Update(crc32.ChecksumIEEE(hdr[3:]), crc32.IEEETable, payload)
	if crc != wantCRC {
		return Frame{}, scratch, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return Frame{Type: Type(hdr[3]), Payload: payload, Version: hdr[2]}, scratch, nil
}

// ReadFrame reads and validates one frame from r. The payload is freshly
// allocated and owned by the caller; receive loops that want an
// allocation-free steady state should use a FrameReader instead.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	f, _, err := readFrame(r, hdr[:], nil)
	return f, err
}

// FrameReader reads frames from one stream into a reusable internal
// buffer, making the steady-state receive path allocation-free. The
// returned Frame's Payload aliases that buffer and is valid only until
// the next call to Next; a caller that needs the bytes longer must copy
// them out (DecodeSymbolInto copies into a buffer the caller owns, and
// SymbolView/RecodedView parse without copying for same-iteration use).
// Not safe for concurrent use; use one FrameReader per connection.
type FrameReader struct {
	r    io.Reader
	hdr  [headerLen]byte
	body []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next reads and validates the next frame. On error the stream should be
// considered desynchronized and the connection dropped.
func (fr *FrameReader) Next() (Frame, error) {
	f, body, err := readFrame(fr.r, fr.hdr[:], fr.body)
	fr.body = body
	return f, err
}

// Hello is the handshake: both sides announce identity and the sender
// side carries the content metadata a fresh receiver needs to construct
// its decoder. A receiver's Hello uses zero metadata fields but carries
// its working-set size and summary mask, which the v3 negotiation reads.
type Hello struct {
	ContentID uint64 // identifies the file (e.g. hash of its name)
	NumBlocks uint32 // ` source blocks
	BlockSize uint32
	OrigLen   uint64 // original content length in bytes
	CodeSeed  uint64 // neighbor-expansion seed of the shared code
	FullCopy  bool   // sender holds the complete content
	Symbols   uint64 // announcer's working set size (partial senders and receivers)
	// SummaryMask is the set of SummaryMethods the announcer can build
	// (receiver side) or consume (sender side), as a bitmask of
	// method.Bit() values. Zero means "no summaries" — a v3 peer that
	// only streams blindly.
	SummaryMask uint8
	// ListenAddr is the announcer's dialable listen address (v4), empty
	// when the announcer cannot be dialed back. Peers feed it into
	// their gossip directories and relay it in PEERS frames.
	ListenAddr string
}

// MaxAddrLen bounds an advertised address (HELLO and PEERS frames): a
// host:port string comfortably fits one length byte.
const MaxAddrLen = 255

const helloFixedLen = 8 + 4 + 4 + 8 + 8 + 1 + 8 + 1

// appendHelloPayload marshals h onto buf — shared by the HELLO frame and
// the v5 OPEN/ACCEPT_CHANNEL frames, which embed the same layout after a
// channel id.
func appendHelloPayload(buf []byte, h Hello) []byte {
	addr := h.ListenAddr
	if len(addr) > MaxAddrLen {
		addr = ""
	}
	off := len(buf)
	buf = append(buf, make([]byte, helloFixedLen+1+len(addr))...)
	p := buf[off:]
	binary.LittleEndian.PutUint64(p[0:], h.ContentID)
	binary.LittleEndian.PutUint32(p[8:], h.NumBlocks)
	binary.LittleEndian.PutUint32(p[12:], h.BlockSize)
	binary.LittleEndian.PutUint64(p[16:], h.OrigLen)
	binary.LittleEndian.PutUint64(p[24:], h.CodeSeed)
	if h.FullCopy {
		p[32] = 1
	}
	binary.LittleEndian.PutUint64(p[33:], h.Symbols)
	p[41] = h.SummaryMask
	p[42] = byte(len(addr))
	copy(p[43:], addr)
	return buf
}

// decodeHelloPayload unmarshals the HELLO layout from p (a whole frame
// payload or the tail of an OPEN/ACCEPT_CHANNEL payload).
func decodeHelloPayload(p []byte) (Hello, error) {
	if len(p) < helloFixedLen+1 {
		return Hello{}, fmt.Errorf("protocol: HELLO payload %d bytes, want ≥ %d", len(p), helloFixedLen+1)
	}
	addrLen := int(p[42])
	if len(p) != helloFixedLen+1+addrLen {
		return Hello{}, fmt.Errorf("protocol: HELLO payload %d bytes, want %d", len(p), helloFixedLen+1+addrLen)
	}
	return Hello{
		ContentID:   binary.LittleEndian.Uint64(p[0:]),
		NumBlocks:   binary.LittleEndian.Uint32(p[8:]),
		BlockSize:   binary.LittleEndian.Uint32(p[12:]),
		OrigLen:     binary.LittleEndian.Uint64(p[16:]),
		CodeSeed:    binary.LittleEndian.Uint64(p[24:]),
		FullCopy:    p[32] == 1,
		Symbols:     binary.LittleEndian.Uint64(p[33:]),
		SummaryMask: p[41],
		ListenAddr:  string(p[43 : 43+addrLen]),
	}, nil
}

// EncodeHello marshals h. A ListenAddr longer than MaxAddrLen is
// truncated to empty (an undialable advert, not a malformed frame).
func EncodeHello(h Hello) Frame {
	return Frame{Type: TypeHello, Payload: appendHelloPayload(nil, h)}
}

// DecodeHello unmarshals a HELLO frame.
func DecodeHello(f Frame) (Hello, error) {
	if f.Type != TypeHello {
		return Hello{}, fmt.Errorf("protocol: %v is not HELLO", f.Type)
	}
	return decodeHelloPayload(f.Payload)
}

// Symbol is a regular encoded symbol on the wire.
type Symbol struct {
	ID   uint64
	Data []byte
}

// EncodeSymbol marshals s.
func EncodeSymbol(s Symbol) Frame {
	buf := make([]byte, 8+len(s.Data))
	binary.LittleEndian.PutUint64(buf, s.ID)
	copy(buf[8:], s.Data)
	return Frame{Type: TypeSymbol, Payload: buf}
}

// WriteSymbol frames and writes a regular encoded symbol in one Write,
// assembling header, id, payload and CRC in a pooled buffer — the
// allocation-free fast path senders use instead of
// WriteFrame(EncodeSymbol(...)).
func WriteSymbol(w io.Writer, id uint64, data []byte) error {
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], id)
	return writeFrame2(w, TypeSymbol, idb[:], data)
}

// SymbolView parses a SYMBOL frame without copying: data aliases
// f.Payload, so for frames produced by a FrameReader it is valid only
// until the next frame is read.
func SymbolView(f Frame) (id uint64, data []byte, err error) {
	if f.Type != TypeSymbol {
		return 0, nil, fmt.Errorf("protocol: %v is not SYMBOL", f.Type)
	}
	if len(f.Payload) < 9 {
		return 0, nil, errors.New("protocol: SYMBOL too short")
	}
	return binary.LittleEndian.Uint64(f.Payload), f.Payload[8:], nil
}

// DecodeSymbol unmarshals a SYMBOL frame into freshly allocated storage.
func DecodeSymbol(f Frame) (Symbol, error) {
	return DecodeSymbolInto(f, nil)
}

// DecodeSymbolInto is DecodeSymbol copying the payload into buf's
// storage (re-sliced from 0, grown only if needed) instead of a fresh
// allocation. Feeding buffers from a freelist keeps a receive loop
// allocation-free; the returned Symbol's Data owns buf's storage.
func DecodeSymbolInto(f Frame, buf []byte) (Symbol, error) {
	id, view, err := SymbolView(f)
	if err != nil {
		return Symbol{}, err
	}
	return Symbol{ID: id, Data: append(buf[:0], view...)}, nil
}

// Recoded is a recoded symbol on the wire: the §5.4.2 constituent list
// plus XOR payload.
type Recoded struct {
	IDs  []uint64
	Data []byte
}

// MaxRecodedIDs bounds the constituent list (the paper's degree limit is
// 50; leave headroom for experimentation).
const MaxRecodedIDs = 1024

// EncodeRecoded marshals r.
func EncodeRecoded(r Recoded) (Frame, error) {
	if len(r.IDs) == 0 || len(r.IDs) > MaxRecodedIDs {
		return Frame{}, fmt.Errorf("protocol: recoded degree %d outside [1,%d]", len(r.IDs), MaxRecodedIDs)
	}
	buf := make([]byte, 2+8*len(r.IDs)+len(r.Data))
	binary.LittleEndian.PutUint16(buf, uint16(len(r.IDs)))
	for i, id := range r.IDs {
		binary.LittleEndian.PutUint64(buf[2+8*i:], id)
	}
	copy(buf[2+8*len(r.IDs):], r.Data)
	return Frame{Type: TypeRecoded, Payload: buf}, nil
}

// WriteRecoded frames and writes a recoded symbol in one Write, the
// allocation-free counterpart of WriteFrame(EncodeRecoded(...)).
func WriteRecoded(w io.Writer, ids []uint64, data []byte) error {
	if len(ids) == 0 || len(ids) > MaxRecodedIDs {
		return fmt.Errorf("protocol: recoded degree %d outside [1,%d]", len(ids), MaxRecodedIDs)
	}
	bp := frameBufs.Get().(*[]byte)
	pre := append((*bp)[:0], byte(len(ids)), byte(len(ids)>>8))
	for _, id := range ids {
		pre = append(pre,
			byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
			byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
	}
	err := writeFrame2(w, TypeRecoded, pre, data)
	*bp = pre[:0]
	frameBufs.Put(bp)
	return err
}

// RecodedView parses a RECODED frame with minimal copying: the
// constituent ids are appended into ids' storage (re-sliced from 0,
// grown only if needed) and data aliases f.Payload — so for frames from
// a FrameReader, data is valid only until the next frame is read.
func RecodedView(f Frame, ids []uint64) (_ []uint64, data []byte, err error) {
	if f.Type != TypeRecoded {
		return nil, nil, fmt.Errorf("protocol: %v is not RECODED", f.Type)
	}
	if len(f.Payload) < 2 {
		return nil, nil, errors.New("protocol: RECODED too short")
	}
	n := int(binary.LittleEndian.Uint16(f.Payload))
	if n == 0 || n > MaxRecodedIDs {
		return nil, nil, fmt.Errorf("protocol: recoded degree %d outside [1,%d]", n, MaxRecodedIDs)
	}
	if len(f.Payload) < 2+8*n {
		return nil, nil, errors.New("protocol: RECODED id list truncated")
	}
	ids = ids[:0]
	for i := 0; i < n; i++ {
		ids = append(ids, binary.LittleEndian.Uint64(f.Payload[2+8*i:]))
	}
	return ids, f.Payload[2+8*n:], nil
}

// DecodeRecoded unmarshals a RECODED frame into freshly allocated
// storage.
func DecodeRecoded(f Frame) (Recoded, error) {
	ids, view, err := RecodedView(f, nil)
	if err != nil {
		return Recoded{}, err
	}
	return Recoded{IDs: ids, Data: append([]byte(nil), view...)}, nil
}

// EncodeRequest marshals a batch request for count symbols.
func EncodeRequest(count uint32) Frame {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, count)
	return Frame{Type: TypeRequest, Payload: buf}
}

// DecodeRequest unmarshals a REQUEST frame.
func DecodeRequest(f Frame) (uint32, error) {
	if f.Type != TypeRequest {
		return 0, fmt.Errorf("protocol: %v is not REQUEST", f.Type)
	}
	if len(f.Payload) != 4 {
		return 0, errors.New("protocol: REQUEST malformed")
	}
	return binary.LittleEndian.Uint32(f.Payload), nil
}

// EncodeDone builds a DONE frame.
func EncodeDone() Frame { return Frame{Type: TypeDone} }

// EncodeError builds an ERROR frame.
func EncodeError(msg string) Frame {
	return Frame{Type: TypeError, Payload: []byte(msg)}
}

// ReasonUnknownContent is the canonical ERROR-message prefix a server
// answers when a HELLO names a content id it does not hold. Multi-content
// listeners route every inbound HELLO by content id, so "I don't have
// that" became a first-class, machine-readable outcome: receivers match
// it with IsUnknownContent and treat the peer as permanently useless for
// that content (no redial) instead of a transient failure.
const ReasonUnknownContent = "unknown content"

// EncodeErrorUnknownContent builds the canonical ERROR frame for a
// HELLO naming an unserved content id, e.g. "unknown content 0xf00d".
func EncodeErrorUnknownContent(id uint64) Frame {
	return EncodeError(fmt.Sprintf("%s %#x", ReasonUnknownContent, id))
}

// IsUnknownContent reports whether an ERROR message is the canonical
// unknown-content answer (with or without the offending id appended).
func IsUnknownContent(msg string) bool {
	if !strings.HasPrefix(msg, ReasonUnknownContent) {
		return false
	}
	rest := msg[len(ReasonUnknownContent):]
	return rest == "" || rest[0] == ' '
}

// ReasonRefused is the canonical ERROR-message prefix a server answers
// when it declines to serve an admitted connection — today because the
// client's address sits above its penalty box's ban threshold. Receivers
// match it with IsRefused and stop redialing without charging the
// refuser: an explicit refusal is the server protecting itself, not a
// peer fault, and answering it with penalties would let two nodes that
// misattributed one environmental fault escalate into banning each
// other permanently.
const ReasonRefused = "refused"

// EncodeErrorRefused builds the canonical ERROR frame for a connection
// the server declines to serve.
func EncodeErrorRefused() Frame {
	return EncodeError(ReasonRefused + " (address penalized)")
}

// IsRefused reports whether an ERROR message is the canonical refusal
// answer (with or without detail appended).
func IsRefused(msg string) bool {
	if !strings.HasPrefix(msg, ReasonRefused) {
		return false
	}
	rest := msg[len(ReasonRefused):]
	return rest == "" || rest[0] == ' '
}

// ReasonBadVersion is the canonical ERROR-message prefix a server
// answers when a client's frames carry a version byte it cannot speak.
// Clients match it with IsVersionReject and surface ErrVersion — the
// same terminal, no-redial outcome as reading an incompatible version
// byte directly.
const ReasonBadVersion = "unsupported protocol version"

// EncodeErrorBadVersion builds the canonical ERROR frame for a peer
// whose version this library cannot speak.
func EncodeErrorBadVersion() Frame {
	return EncodeError(fmt.Sprintf("%s (speaking %d)", ReasonBadVersion, Version))
}

// IsVersionReject reports whether an ERROR message is the canonical
// version rejection (with or without detail appended). A v5 client
// needs it because a v4 server's frames parse fine here (VersionLegacy)
// — the incompatibility arrives as this ERROR text, not as ErrVersion
// from the frame layer.
func IsVersionReject(msg string) bool {
	if !strings.HasPrefix(msg, ReasonBadVersion) {
		return false
	}
	rest := msg[len(ReasonBadVersion):]
	return rest == "" || rest[0] == ' '
}

// DecodeError extracts the message of an ERROR frame.
func DecodeError(f Frame) (string, error) {
	if f.Type != TypeError {
		return "", fmt.Errorf("protocol: %v is not ERROR", f.Type)
	}
	return string(f.Payload), nil
}

// EncodeSketch wraps a marshaled min-wise sketch.
func EncodeSketch(data []byte) Frame { return Frame{Type: TypeSketch, Payload: data} }

// EncodeBloom wraps a marshaled Bloom filter.
func EncodeBloom(data []byte) Frame { return Frame{Type: TypeBloom, Payload: data} }

// SummaryMethod names one of the §3 working-set summary techniques a
// receiver can send a partial sender: a Bloom filter (§5.2), a min-wise
// sketch (§4), or an approximate reconciliation tree summary (§5.3).
type SummaryMethod uint8

// The negotiable summary methods. Zero means "no summary": the sender
// recodes blindly over its whole working set.
const (
	SummaryNone   SummaryMethod = 0
	SummaryBloom  SummaryMethod = 1
	SummarySketch SummaryMethod = 2
	SummaryART    SummaryMethod = 3
)

// AllSummaryMask is the Hello.SummaryMask of a peer supporting every
// method this library implements.
const AllSummaryMask = uint8(1<<(SummaryBloom-1) | 1<<(SummarySketch-1) | 1<<(SummaryART-1))

// Bit returns the method's position in a Hello.SummaryMask.
func (m SummaryMethod) Bit() uint8 {
	if m == SummaryNone {
		return 0
	}
	return 1 << (m - 1)
}

// String names the method for stats and logs.
func (m SummaryMethod) String() string {
	switch m {
	case SummaryNone:
		return "none"
	case SummaryBloom:
		return "bloom"
	case SummarySketch:
		return "sketch"
	case SummaryART:
		return "art"
	default:
		return fmt.Sprintf("SummaryMethod(%d)", uint8(m))
	}
}

// Negotiation thresholds of ChooseSummaryMethod (§3's accuracy/size
// trade-off, quantized into a deterministic rule both ends can verify).
const (
	// SmallSummaryMax is the largest receiver working set for which a
	// Bloom filter (≈1 byte/element at the paper's 8 bits) is still a
	// trivially cheap, near-exact summary.
	SmallSummaryMax = 4096
	// SimilarSetsNum/Den: sets within 25% of each other count as
	// "similar", where the symmetric difference is expected small and an
	// ART's searchable fine-grained summary earns its constant factors.
	SimilarSetsNum = 1
	SimilarSetsDen = 4
)

// ChooseSummaryMethod is the v3 negotiation rule, evaluated by the
// receiver over the intersection of both peers' Hello.SummaryMask values
// (so both ends can reproduce the decision): pick the §3 summary whose
// accuracy/size trade-off fits the working-set sizes.
//
//   - Nothing held yet, or no common method → SummaryNone (nothing to
//     subtract; the sender serves its whole working set).
//   - Small receiver set → Bloom filter: ~1 byte/element is negligible
//     and membership is near-exact.
//   - Large and similar sets → ART: the difference is expected small,
//     and the tree summary lets the sender *search* for exactly the
//     symbols the receiver lacks at a fixed bit budget.
//   - Large, dissimilar sets → min-wise sketch: a constant ~1KB calling
//     card whose containment estimate steers recoded degrees, where a
//     Bloom filter would cost megabytes.
func ChooseSummaryMethod(mask uint8, receiverHeld, senderHeld int) SummaryMethod {
	if receiverHeld <= 0 || mask == 0 {
		return SummaryNone
	}
	diff := receiverHeld - senderHeld
	if diff < 0 {
		diff = -diff
	}
	larger := receiverHeld
	if senderHeld > larger {
		larger = senderHeld
	}
	similar := diff*SimilarSetsDen <= larger*SimilarSetsNum
	prefs := []SummaryMethod{SummaryBloom, SummaryART, SummarySketch}
	switch {
	case receiverHeld <= SmallSummaryMax:
		// prefs already lead with Bloom.
	case similar:
		prefs = []SummaryMethod{SummaryART, SummarySketch, SummaryBloom}
	default:
		prefs = []SummaryMethod{SummarySketch, SummaryART, SummaryBloom}
	}
	for _, m := range prefs {
		if mask&m.Bit() != 0 {
			return m
		}
	}
	return SummaryNone
}

// EncodeSummary wraps a negotiated summary (method byte + marshaled
// summary) in a SUMMARY frame; refresh selects SUMMARY_REFRESH, the
// mid-session update variant.
func EncodeSummary(method SummaryMethod, blob []byte, refresh bool) Frame {
	t := TypeSummary
	if refresh {
		t = TypeSummaryRefresh
	}
	payload := make([]byte, 1+len(blob))
	payload[0] = byte(method)
	copy(payload[1:], blob)
	return Frame{Type: t, Payload: payload}
}

// PeerAd is one gossip advertisement: a peer's dialable address and the
// content id it is known to hold or fetch.
type PeerAd struct {
	ContentID uint64
	Addr      string
}

// MaxPeerAds bounds the advertisement list of one PEERS frame: enough
// to describe a full mesh neighborhood, small enough that a malicious
// peer cannot flood the frame.
const MaxPeerAds = 64

// EncodePeers marshals a PEERS frame (v4). Advertisements are
// deduplicated by (content id, address); empty or oversized addresses
// are dropped; the list is truncated at MaxPeerAds. The layout is a
// uint16 count followed by count entries of contentID uint64, addrLen
// uint8, addr bytes.
func EncodePeers(ads []PeerAd) Frame {
	seen := make(map[PeerAd]bool, len(ads))
	kept := make([]PeerAd, 0, len(ads))
	for _, ad := range ads {
		if ad.Addr == "" || len(ad.Addr) > MaxAddrLen || seen[ad] {
			continue
		}
		seen[ad] = true
		kept = append(kept, ad)
		if len(kept) == MaxPeerAds {
			break
		}
	}
	size := 2
	for _, ad := range kept {
		size += 8 + 1 + len(ad.Addr)
	}
	buf := make([]byte, 2, size)
	binary.LittleEndian.PutUint16(buf, uint16(len(kept)))
	for _, ad := range kept {
		var idb [9]byte
		binary.LittleEndian.PutUint64(idb[:], ad.ContentID)
		idb[8] = byte(len(ad.Addr))
		buf = append(buf, idb[:]...)
		buf = append(buf, ad.Addr...)
	}
	return Frame{Type: TypePeers, Payload: buf}
}

// DecodePeers unmarshals a PEERS frame, enforcing the MaxPeerAds cap
// and rejecting truncated entries; duplicate advertisements are
// dropped, so the result is a set.
func DecodePeers(f Frame) ([]PeerAd, error) {
	if f.Type != TypePeers {
		return nil, fmt.Errorf("protocol: %v is not PEERS", f.Type)
	}
	if len(f.Payload) < 2 {
		return nil, errors.New("protocol: PEERS too short")
	}
	n := int(binary.LittleEndian.Uint16(f.Payload))
	if n > MaxPeerAds {
		return nil, fmt.Errorf("protocol: PEERS count %d exceeds %d", n, MaxPeerAds)
	}
	ads := make([]PeerAd, 0, n)
	seen := make(map[PeerAd]bool, n)
	rest := f.Payload[2:]
	for i := 0; i < n; i++ {
		if len(rest) < 9 {
			return nil, errors.New("protocol: PEERS entry truncated")
		}
		ad := PeerAd{ContentID: binary.LittleEndian.Uint64(rest)}
		addrLen := int(rest[8])
		rest = rest[9:]
		if addrLen == 0 || len(rest) < addrLen {
			return nil, errors.New("protocol: PEERS address truncated")
		}
		ad.Addr = string(rest[:addrLen])
		rest = rest[addrLen:]
		if !seen[ad] {
			seen[ad] = true
			ads = append(ads, ad)
		}
	}
	if len(rest) != 0 {
		return nil, errors.New("protocol: PEERS trailing bytes")
	}
	return ads, nil
}

// DecodeSummaryView parses a SUMMARY or SUMMARY_REFRESH frame. The blob
// aliases f.Payload: frames read through a FrameReader are valid only
// until the next frame, so consumers must unmarshal before reading on.
func DecodeSummaryView(f Frame) (SummaryMethod, []byte, error) {
	if f.Type != TypeSummary && f.Type != TypeSummaryRefresh {
		return SummaryNone, nil, fmt.Errorf("protocol: %v is not SUMMARY/SUMMARY_REFRESH", f.Type)
	}
	if len(f.Payload) < 1 {
		return SummaryNone, nil, errors.New("protocol: SUMMARY too short")
	}
	m := SummaryMethod(f.Payload[0])
	if m != SummaryBloom && m != SummarySketch && m != SummaryART {
		return SummaryNone, nil, fmt.Errorf("protocol: unknown summary method %d", f.Payload[0])
	}
	return m, f.Payload[1:], nil
}
