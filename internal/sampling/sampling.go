// Package sampling implements the two straightforward working-set sketches
// of §4 of the paper: random sampling (with replacement) and Broder's
// mod-k sampling. Both estimate the overlap between two peers' working
// sets from a single small message; both can be maintained incrementally
// as new symbols arrive.
//
// The min-wise sketch the paper ultimately prefers lives in
// internal/minwise; this package provides the comparison points and is
// used by the admission-control logic in internal/core.
package sampling

import (
	"errors"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// DefaultSampleSize is the number of 64-bit keys that fit in the paper's
// one-packet budget ("If element keys are 64 bits long, then a 1KB packet
// can hold roughly 128 keys").
const DefaultSampleSize = 128

// RandomSample is a fixed-size uniform sample of a working set, with the
// set's size attached ("Optionally, we may also send the size of the
// working set"). It is maintained incrementally with reservoir sampling so
// the holder can keep sketching while new symbols arrive.
type RandomSample struct {
	K       int      // target sample size
	Samples []uint64 // current sample (length ≤ K)
	SetSize int      // |S| at sketch time

	rng  *prng.Rand
	seen int // elements offered to the reservoir
}

// NewRandomSample creates an empty reservoir of capacity k fed by rng.
func NewRandomSample(rng *prng.Rand, k int) *RandomSample {
	if k <= 0 {
		panic("sampling: non-positive sample size")
	}
	return &RandomSample{K: k, rng: rng}
}

// BuildRandomSample sketches an existing set in one shot by sampling k
// elements with replacement, exactly as §4 describes.
func BuildRandomSample(rng *prng.Rand, s *keyset.Set, k int) *RandomSample {
	if k <= 0 {
		panic("sampling: non-positive sample size")
	}
	rs := &RandomSample{K: k, SetSize: s.Len(), rng: rng}
	if s.Len() == 0 {
		return rs
	}
	rs.Samples = s.SampleWithReplacement(rng, k)
	rs.seen = s.Len()
	return rs
}

// Observe feeds one newly received key to the reservoir (Vitter's
// algorithm R), keeping the sample uniform over everything observed.
// Constant expected work per element.
func (rs *RandomSample) Observe(key uint64) {
	rs.seen++
	rs.SetSize++
	if len(rs.Samples) < rs.K {
		rs.Samples = append(rs.Samples, key)
		return
	}
	j := rs.rng.Intn(rs.seen)
	if j < rs.K {
		rs.Samples[j] = key
	}
}

// EstimateContainment estimates, from a sample of peer P's set, the
// fraction |S_P ∩ local| / |S_P| — how much of P's content the local peer
// already holds. The receiver must search each sample key in its own set
// (the cost §4 warns about; here membership is O(1)).
func (rs *RandomSample) EstimateContainment(local *keyset.Set) float64 {
	if len(rs.Samples) == 0 {
		return 0
	}
	hit := 0
	for _, k := range rs.Samples {
		if local.Contains(k) {
			hit++
		}
	}
	return float64(hit) / float64(len(rs.Samples))
}

// EstimateIntersection estimates |S_P ∩ local| using the attached set size.
func (rs *RandomSample) EstimateIntersection(local *keyset.Set) float64 {
	return rs.EstimateContainment(local) * float64(rs.SetSize)
}

// EstimateResemblance estimates |S_P ∩ local| / |S_P ∪ local| via
// inclusion–exclusion using both set sizes.
func (rs *RandomSample) EstimateResemblance(local *keyset.Set) float64 {
	inter := rs.EstimateIntersection(local)
	union := float64(rs.SetSize+local.Len()) - inter
	if union <= 0 {
		return 1
	}
	return inter / union
}

// ModKSample is Broder's second sketch: the subset of keys ≡ 0 (mod k).
// Because both peers apply the same rule, the two samples can be compared
// directly, entirely on the small samples ("all computation can be done
// directly on the small samples, instead of on the working sets"). Its
// drawback — also noted in the paper — is the variable size.
type ModKSample struct {
	K       uint64 // modulus
	Keys    *keyset.Set
	SetSize int
}

// NewModKSample returns an empty mod-k sketch.
func NewModKSample(k uint64) *ModKSample {
	if k == 0 {
		panic("sampling: zero modulus")
	}
	return &ModKSample{K: k, Keys: keyset.New(16)}
}

// BuildModKSample sketches an existing set.
func BuildModKSample(s *keyset.Set, k uint64) *ModKSample {
	mk := NewModKSample(k)
	s.Each(func(key uint64) { mk.observe(key) })
	mk.SetSize = s.Len()
	return mk
}

// Observe feeds one newly received key to the sketch. Constant work.
func (mk *ModKSample) Observe(key uint64) {
	mk.observe(key)
	mk.SetSize++
}

func (mk *ModKSample) observe(key uint64) {
	if key%mk.K == 0 {
		mk.Keys.Add(key)
	}
}

// Len returns the current (variable) sample size.
func (mk *ModKSample) Len() int { return mk.Keys.Len() }

// EstimateContainmentOf estimates |S_self ∩ S_other| / |S_self| from two
// mod-k sketches with the same modulus: |A_k ∩ B_k| / |A_k| is unbiased
// for it when keys are random. Returns an error on modulus mismatch.
func (mk *ModKSample) EstimateContainmentOf(other *ModKSample) (float64, error) {
	if other == nil || mk.K != other.K {
		return 0, errors.New("sampling: mod-k modulus mismatch")
	}
	if mk.Keys.Len() == 0 {
		return 0, nil
	}
	inter := mk.Keys.IntersectionSize(other.Keys)
	return float64(inter) / float64(mk.Keys.Len()), nil
}

// EstimateResemblance estimates |A ∩ B| / |A ∪ B| directly on the samples.
func (mk *ModKSample) EstimateResemblance(other *ModKSample) (float64, error) {
	if other == nil || mk.K != other.K {
		return 0, errors.New("sampling: mod-k modulus mismatch")
	}
	inter := mk.Keys.IntersectionSize(other.Keys)
	union := mk.Keys.Len() + other.Keys.Len() - inter
	if union == 0 {
		return 1, nil
	}
	return float64(inter) / float64(union), nil
}
