package sampling

import (
	"math"
	"testing"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// overlapping returns two sets of size n whose intersection is frac*n.
func overlapping(rng *prng.Rand, n int, frac float64) (*keyset.Set, *keyset.Set) {
	shared := int(frac * float64(n))
	common := keyset.Random(rng, shared)
	a := common.Clone()
	b := common.Clone()
	for a.Len() < n {
		a.Add(rng.Uint64())
	}
	for b.Len() < n {
		b.Add(rng.Uint64())
	}
	return a, b
}

func TestRandomSampleContainmentAccuracy(t *testing.T) {
	rng := prng.New(42)
	for _, frac := range []float64{0, 0.25, 0.5, 0.9, 1} {
		a, b := overlapping(rng, 5000, frac)
		truth := a.ContainmentIn(b) // |A∩B|/|A|
		var sum float64
		const trials = 40
		for i := 0; i < trials; i++ {
			sk := BuildRandomSample(rng, a, DefaultSampleSize)
			sum += sk.EstimateContainment(b)
		}
		est := sum / trials
		if math.Abs(est-truth) > 0.05 {
			t.Errorf("frac=%.2f: estimate %.3f, truth %.3f", frac, est, truth)
		}
	}
}

func TestRandomSampleEmptySet(t *testing.T) {
	rng := prng.New(1)
	sk := BuildRandomSample(rng, keyset.New(0), 16)
	if got := sk.EstimateContainment(keyset.New(0)); got != 0 {
		t.Fatalf("containment of empty = %v", got)
	}
}

func TestRandomSamplePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BuildRandomSample(prng.New(1), keyset.New(0), 0)
}

func TestReservoirIncrementalUniform(t *testing.T) {
	// Feed 1000 keys through Observe with K=100; every key should appear
	// in the final reservoir with probability ~K/N.
	const n, k, trials = 1000, 100, 300
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		rs := NewRandomSample(prng.New(uint64(tr)), k)
		for i := 0; i < n; i++ {
			rs.Observe(uint64(i))
		}
		if len(rs.Samples) != k || rs.SetSize != n {
			t.Fatalf("reservoir size %d, SetSize %d", len(rs.Samples), rs.SetSize)
		}
		for _, key := range rs.Samples {
			counts[key]++
		}
	}
	want := float64(trials) * float64(k) / float64(n) // 30
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("key %d retained %d times, want ≈%.0f", i, c, want)
		}
	}
}

func TestReservoirMatchesTruthOnOverlap(t *testing.T) {
	rng := prng.New(7)
	a, b := overlapping(rng, 3000, 0.6)
	rs := NewRandomSample(rng, 256)
	a.Each(rs.Observe)
	truth := a.ContainmentIn(b)
	if got := rs.EstimateContainment(b); math.Abs(got-truth) > 0.12 {
		t.Fatalf("reservoir estimate %.3f, truth %.3f", got, truth)
	}
}

func TestRandomSampleResemblance(t *testing.T) {
	rng := prng.New(9)
	a, b := overlapping(rng, 4000, 0.5)
	truth := a.Resemblance(b)
	var sum float64
	const trials = 40
	for i := 0; i < trials; i++ {
		sum += BuildRandomSample(rng, a, 256).EstimateResemblance(b)
	}
	if est := sum / trials; math.Abs(est-truth) > 0.05 {
		t.Fatalf("resemblance estimate %.3f, truth %.3f", est, truth)
	}
}

func TestModKAccuracy(t *testing.T) {
	rng := prng.New(11)
	for _, frac := range []float64{0, 0.3, 0.7, 1} {
		a, b := overlapping(rng, 20000, frac)
		ska := BuildModKSample(a, 64)
		skb := BuildModKSample(b, 64)
		truth := a.ContainmentIn(b)
		got, err := ska.EstimateContainmentOf(skb)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 0.1 {
			t.Errorf("frac=%.1f: mod-k containment %.3f, truth %.3f (sample %d)",
				frac, got, truth, ska.Len())
		}
		r, err := ska.EstimateResemblance(skb)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-a.Resemblance(b)) > 0.1 {
			t.Errorf("frac=%.1f: mod-k resemblance %.3f, truth %.3f", frac, r, a.Resemblance(b))
		}
	}
}

func TestModKVariableSize(t *testing.T) {
	// The documented drawback: sample size is variable, roughly n/k.
	rng := prng.New(13)
	s := keyset.Random(rng, 32000)
	sk := BuildModKSample(s, 64)
	want := 32000.0 / 64
	if float64(sk.Len()) < want/2 || float64(sk.Len()) > want*2 {
		t.Fatalf("mod-64 sample size %d, want ≈%.0f", sk.Len(), want)
	}
}

func TestModKIncrementalMatchesBatch(t *testing.T) {
	rng := prng.New(17)
	s := keyset.Random(rng, 5000)
	batch := BuildModKSample(s, 32)
	inc := NewModKSample(32)
	s.Each(inc.Observe)
	if !batch.Keys.Equal(inc.Keys) {
		t.Fatal("incremental mod-k differs from batch")
	}
	if inc.SetSize != s.Len() {
		t.Fatalf("SetSize = %d", inc.SetSize)
	}
}

func TestModKMismatch(t *testing.T) {
	a := NewModKSample(8)
	b := NewModKSample(16)
	if _, err := a.EstimateContainmentOf(b); err == nil {
		t.Fatal("modulus mismatch accepted")
	}
	if _, err := a.EstimateResemblance(nil); err == nil {
		t.Fatal("nil other accepted")
	}
}

func TestModKZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewModKSample(0)
}

func TestModKEmptySelf(t *testing.T) {
	a := NewModKSample(4)
	b := NewModKSample(4)
	got, err := a.EstimateContainmentOf(b)
	if err != nil || got != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	r, err := a.EstimateResemblance(b)
	if err != nil || r != 1 {
		t.Fatalf("resemblance of empties = %v", r)
	}
}

func BenchmarkBuildRandomSample(b *testing.B) {
	rng := prng.New(1)
	s := keyset.Random(rng, 23968)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildRandomSample(rng, s, DefaultSampleSize)
	}
}

func BenchmarkReservoirObserve(b *testing.B) {
	rs := NewRandomSample(prng.New(1), DefaultSampleSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Observe(uint64(i))
	}
}

func BenchmarkEstimateContainment(b *testing.B) {
	rng := prng.New(2)
	s := keyset.Random(rng, 23968)
	sk := BuildRandomSample(rng, s, DefaultSampleSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sk.EstimateContainment(s)
	}
}
