package hashing

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// A bijection never collides; sample a window of inputs.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 1000
	totalFlips := 0
	for i := 0; i < trials; i++ {
		x := Mix64(uint64(i) * 0x9e3779b97f4a7c15)
		bit := uint(i % 64)
		d := Mix64(x) ^ Mix64(x^(1<<bit))
		totalFlips += popcount(d)
	}
	mean := float64(totalFlips) / trials
	if mean < 24 || mean > 40 {
		t.Fatalf("avalanche mean flips = %.2f, want ≈32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestMulmod61MatchesBigInt(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	cases := [][2]uint64{
		{0, 0},
		{1, 1},
		{MersennePrime61 - 1, MersennePrime61 - 1},
		{MersennePrime61 - 1, 2},
		{1234567890123456789 % MersennePrime61, 987654321987654321 % MersennePrime61},
	}
	for _, c := range cases {
		got := mulmod61(c[0], c[1])
		want := new(big.Int).Mul(big.NewInt(int64(c[0])), big.NewInt(int64(c[1])))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Errorf("mulmod61(%d,%d) = %d, want %d", c[0], c[1], got, want.Uint64())
		}
	}
}

func TestQuickMulmod61(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		got := mulmod61(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationBijectiveOnField(t *testing.T) {
	// π(x) = ax+b mod p is injective on [0,p); spot check a window.
	perm := NewPermutation(42)
	seen := make(map[uint64]uint64, 1<<15)
	for x := uint64(0); x < 1<<15; x++ {
		y := perm.Apply(x)
		if y >= MersennePrime61 {
			t.Fatalf("Apply(%d) = %d out of field", x, y)
		}
		if prev, ok := seen[y]; ok {
			t.Fatalf("permutation collision: %d and %d -> %d", prev, x, y)
		}
		seen[y] = x
	}
}

func TestPermutationInvertibleAlgebraically(t *testing.T) {
	// Verify ax+b ≡ y has the expected preimage via modular inverse.
	perm := NewPermutation(7)
	p := big.NewInt(MersennePrime61)
	ainv := new(big.Int).ModInverse(big.NewInt(int64(perm.A)), p)
	if ainv == nil {
		t.Fatal("a not invertible")
	}
	for x := uint64(1); x < 1000; x += 13 {
		y := perm.Apply(x)
		// x' = (y - b) * a^{-1} mod p
		yb := new(big.Int).Sub(new(big.Int).SetUint64(y), new(big.Int).SetUint64(perm.B))
		yb.Mod(yb, p)
		yb.Mul(yb, ainv)
		yb.Mod(yb, p)
		if yb.Uint64() != x%MersennePrime61 {
			t.Fatalf("inverse mismatch at x=%d", x)
		}
	}
}

func TestNewPermutationNonZeroA(t *testing.T) {
	for seed := uint64(0); seed < 1000; seed++ {
		if NewPermutation(seed).A == 0 {
			t.Fatalf("seed %d produced a=0", seed)
		}
	}
}

func TestPermutationFamilyDeterministic(t *testing.T) {
	f1 := NewPermutationFamily(99, 16)
	f2 := NewPermutationFamily(99, 16)
	if f1.Len() != 16 {
		t.Fatalf("Len = %d", f1.Len())
	}
	for i := 0; i < 16; i++ {
		if f1.At(i) != f2.At(i) {
			t.Fatalf("family not deterministic at %d", i)
		}
	}
	f3 := NewPermutationFamily(100, 16)
	same := 0
	for i := 0; i < 16; i++ {
		if f1.At(i) == f3.At(i) {
			same++
		}
	}
	if same == 16 {
		t.Fatal("different seeds produced identical families")
	}
}

func TestPermutationFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	NewPermutationFamily(1, 0)
}

func TestHashPairOddH2(t *testing.T) {
	for k := uint64(0); k < 4096; k++ {
		if HashPair(1, k).H2&1 != 1 {
			t.Fatalf("even H2 for key %d", k)
		}
	}
}

func TestProbeDistribution(t *testing.T) {
	// Double-hash probes over a modest table should be near-uniform.
	const m = 512
	counts := make([]int, m)
	n := 0
	for key := uint64(0); key < 2000; key++ {
		pr := HashPair(77, key)
		for i := 0; i < 5; i++ {
			counts[pr.Probe(i, m)]++
			n++
		}
	}
	mean := float64(n) / m
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	// df = 511; mean chi2 ≈ 511, sd ≈ 32. Allow generous slack.
	if chi2 > 700 {
		t.Fatalf("chi2 = %.1f, probes badly non-uniform", chi2)
	}
}

func TestRangeHashBounds(t *testing.T) {
	f := func(seed, key uint64, nRaw uint32) bool {
		n := uint64(nRaw)%1000 + 1
		return RangeHash(seed, key, n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeHashZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	RangeHash(1, 2, 0)
}

func TestRangeHashUniform(t *testing.T) {
	const n = 100
	counts := make([]int, n)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[RangeHash(5, uint64(i), n)]++
	}
	want := trials / n
	for b, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Fatalf("bucket %d count %d far from %d", b, c, want)
		}
	}
}

func BenchmarkMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Mix64(uint64(i))
	}
	_ = sink
}

func BenchmarkPermutationApply(b *testing.B) {
	p := NewPermutation(3)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= p.Apply(uint64(i))
	}
	_ = sink
}

func BenchmarkHashPairProbe5(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		pr := HashPair(9, uint64(i))
		for j := 0; j < 5; j++ {
			sink ^= pr.Probe(j, 1<<20)
		}
	}
	_ = sink
}

func TestReduceInRange(t *testing.T) {
	f := func(x uint64, mRaw uint32) bool {
		m := uint64(mRaw) + 1
		return Reduce(x, m) < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceUniform(t *testing.T) {
	// Lemire reduction of well-mixed inputs should be near-uniform over a
	// non-power-of-two range.
	const m = 513
	counts := make([]int, m)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Reduce(Mix64(uint64(i)), m)]++
	}
	mean := float64(n) / m
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	// df = 512; mean chi2 ≈ 512, sd ≈ 32. Allow generous slack.
	if chi2 > 700 {
		t.Fatalf("chi2 = %.1f, Reduce badly non-uniform", chi2)
	}
}

func TestProbeMatchesSteppedReduce(t *testing.T) {
	// The Bloom hot loop steps h += H2 and reduces directly; Probe must
	// agree so the two forms of the Kirsch–Mitzenmacher sequence stay
	// interchangeable.
	for key := uint64(0); key < 500; key++ {
		pr := HashPair(9, key)
		h := pr.H1
		for i := 0; i < 7; i++ {
			if got, want := pr.Probe(i, 12345), Reduce(h, 12345); got != want {
				t.Fatalf("key %d probe %d: Probe %d != stepped %d", key, i, got, want)
			}
			h += pr.H2
		}
	}
}

func TestApplyFoldedMatchesApply(t *testing.T) {
	p := NewPermutation(42)
	f := func(x uint64) bool {
		return p.Apply(x) == p.ApplyFolded(Fold61(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
