// Package hashing supplies the hash-function substrate used throughout the
// library: 64-bit avalanche mixing, pairwise-independent linear permutations
// over the Mersenne-prime field p = 2^61 − 1 (the "simple permutations"
// π(x) = ax + b mod |U| of Broder et al. that the paper adopts for min-wise
// sketches), and double-hashing families for Bloom filters following
// Kirsch–Mitzenmacher.
//
// Everything here is deterministic given its seed so that experiments are
// reproducible, and allocation-free on the hot paths.
package hashing

import "math/bits"

// MersennePrime61 is 2^61 − 1, the modulus of the permutation field. Using
// a Mersenne prime makes reduction branch-light and keeps the family close
// to a true permutation family over 61-bit keys.
const MersennePrime61 = (1 << 61) - 1

// Mix64 is the splitmix64 finalizer: a fast bijective avalanche over
// uint64. It is the standard way we turn structured integers (indices,
// seeds, coordinates) into uniformly distributed keys.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64Pair mixes two words into one, for hashing composite keys.
func Mix64Pair(x, y uint64) uint64 {
	return Mix64(Mix64(x) ^ (y * 0x9e3779b97f4a7c15))
}

// mulmod61 returns a*b mod 2^61−1 using a 128-bit intermediate product.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Split the 128-bit product into 61-bit chunks: since
	// 2^61 ≡ 1 (mod p), the value is the sum of the chunks mod p.
	// product = hi*2^64 + lo = hi*8*2^61 + lo.
	s := lo & MersennePrime61
	s += lo >> 61 // bits 61..63 of lo, weight 2^61 ≡ 1
	s = reduce61(s)
	// hi has weight 2^64 = 8 * 2^61 ≡ 8 (mod p). hi < 2^61 here because
	// a,b < 2^61 implies hi < 2^58, so 8*hi < 2^61 fits without overflow
	// only when hi < 2^58; a,b < 2^61 gives hi ≤ (2^61-1)^2 / 2^64 < 2^58.
	s += (hi << 3) & MersennePrime61
	s = reduce61(s)
	s += hi >> 58
	return reduce61(s)
}

// reduce61 folds a value < 2^62 into [0, p).
func reduce61(x uint64) uint64 {
	x = (x & MersennePrime61) + (x >> 61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// Permutation is a pairwise-independent linear permutation
// π(x) = (a·x + b) mod p over the field p = 2^61 − 1, with a ≠ 0.
// Keys are first folded into the field.
//
// Broder, Charikar, Frieze, Mitzenmacher ("Min-wise independent
// permutations") show that such simple families are adequate in practice
// for resemblance estimation, which is exactly how the paper uses them.
type Permutation struct {
	A, B uint64
}

// NewPermutation derives a permutation deterministically from seed; any two
// distinct seeds yield independent-looking (a, b) pairs.
func NewPermutation(seed uint64) Permutation {
	a := Mix64(seed) % MersennePrime61
	if a == 0 {
		a = 1
	}
	b := Mix64(seed+0x6a09e667f3bcc909) % MersennePrime61
	return Permutation{A: a, B: b}
}

// Apply evaluates π(x). Keys outside the field are folded in first; the
// composition fold∘π is no longer a strict bijection over all of uint64,
// but remains one over [0, p), which is what the min-wise analysis needs.
func (p Permutation) Apply(x uint64) uint64 {
	return p.ApplyFolded(Fold61(x))
}

// ApplyFolded evaluates π(x) for x already folded into [0, p) by Fold61.
// Batched callers evaluating many permutations of the same key fold once
// and use this to skip the per-evaluation fold.
func (p Permutation) ApplyFolded(x uint64) uint64 {
	return reduce61(mulmod61(p.A, x) + p.B)
}

// Fold61 folds an arbitrary 64-bit key into the permutation field [0, p).
func Fold61(x uint64) uint64 { return reduce61(x) }

// PermutationFamily is a fixed, universally agreed-upon list of
// permutations. Two peers construct the same family from the same seed, as
// the paper requires ("the peers must agree on these permutations in
// advance; we assume they are fixed universally off-line").
type PermutationFamily struct {
	perms []Permutation
}

// NewPermutationFamily builds n permutations derived from seed.
func NewPermutationFamily(seed uint64, n int) *PermutationFamily {
	if n <= 0 {
		panic("hashing: non-positive family size")
	}
	f := &PermutationFamily{perms: make([]Permutation, n)}
	for i := range f.perms {
		f.perms[i] = NewPermutation(Mix64Pair(seed, uint64(i)))
	}
	return f
}

// Len returns the number of permutations in the family.
func (f *PermutationFamily) Len() int { return len(f.perms) }

// At returns the i-th permutation.
func (f *PermutationFamily) At(i int) Permutation { return f.perms[i] }

// Pair is a pair of independent 64-bit hashes of one key, the seed material
// for double hashing: g_i(x) = h1 + i·h2 simulates k independent hash
// functions with only two evaluations (Kirsch–Mitzenmacher).
type Pair struct {
	H1, H2 uint64
}

// HashPair hashes key under the family identified by seed.
func HashPair(seed, key uint64) Pair {
	h1 := Mix64(key ^ seed)
	h2 := Mix64(h1 ^ 0x94d049bb133111eb ^ seed)
	// Force h2 odd so successive probes cycle through all residues of a
	// power-of-two table and never degenerate to a fixed point.
	return Pair{H1: h1, H2: h2 | 1}
}

// Probe returns the i-th double-hashing probe reduced into [0, m)
// (m > 0) via Lemire's multiply-shift fast range reduction — a single
// high multiply instead of the 20–40 cycle 64-bit division a `% m`
// costs per probe. Callers evaluating all k probes of one key should
// prefer stepping h = H1, h += H2 and reducing with Reduce directly,
// which drops the per-probe i·H2 multiply as well.
func (p Pair) Probe(i int, m uint64) uint64 {
	return Reduce(p.H1+uint64(i)*p.H2, m)
}

// Reduce maps a uniform 64-bit value x into [0, m) as ⌊x·m / 2^64⌋
// (Lemire's fast alternative to x % m). For uniform x the result is
// uniform to within the same negligible bias as the modulo reduction.
func Reduce(x, m uint64) uint64 {
	hi, _ := bits.Mul64(x, m)
	return hi
}

// RangeHash maps key uniformly into [0, n) using fixed-point
// multiplication (Lemire's fast range reduction) — cheaper and less biased
// than mod for arbitrary n.
func RangeHash(seed, key uint64, n uint64) uint64 {
	if n == 0 {
		panic("hashing: zero range")
	}
	return Reduce(Mix64(key^seed), n)
}
