package fountain

import (
	"errors"
	"fmt"
)

// SplitIntoBlocks divides data into fixed-size source blocks, zero-padding
// the final block. It returns the blocks and the original length, which
// JoinBlocks needs to strip the padding. The paper's content pipeline
// (§6.1) used 1400-byte blocks so each encoded symbol fits a single
// Ethernet-safe packet.
func SplitIntoBlocks(data []byte, blockSize int) ([][]byte, int, error) {
	if blockSize < 1 {
		return nil, 0, errors.New("fountain: non-positive block size")
	}
	if len(data) == 0 {
		return nil, 0, errors.New("fountain: empty content")
	}
	n := (len(data) + blockSize - 1) / blockSize
	blocks := make([][]byte, n)
	for i := 0; i < n; i++ {
		b := make([]byte, blockSize)
		lo := i * blockSize
		hi := lo + blockSize
		if hi > len(data) {
			hi = len(data)
		}
		copy(b, data[lo:hi])
		blocks[i] = b
	}
	return blocks, len(data), nil
}

// JoinBlocks reassembles the original content from fully recovered blocks.
func JoinBlocks(blocks [][]byte, origLen int) ([]byte, error) {
	if len(blocks) == 0 {
		return nil, errors.New("fountain: no blocks")
	}
	blockSize := len(blocks[0])
	if origLen < 1 || origLen > len(blocks)*blockSize {
		return nil, fmt.Errorf("fountain: original length %d outside (0, %d]", origLen, len(blocks)*blockSize)
	}
	out := make([]byte, 0, origLen)
	for i, b := range blocks {
		if b == nil {
			return nil, fmt.Errorf("fountain: block %d not recovered", i)
		}
		if len(b) != blockSize {
			return nil, fmt.Errorf("fountain: block %d has size %d, want %d", i, len(b), blockSize)
		}
		out = append(out, b...)
	}
	return out[:origLen], nil
}

// DefaultBlockSize is the paper's packetization: 1400-byte blocks (§6.1).
const DefaultBlockSize = 1400

// PaperBlockCount is the §6.1 configuration: a 32MB file divided into
// 23,968 source blocks of 1400 bytes.
const PaperBlockCount = 23968
