package fountain

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"icd/internal/prng"
)

func TestDistributionBasics(t *testing.T) {
	d := IdealSoliton(100)
	var sum float64
	for deg := 1; deg <= d.MaxDegree(); deg++ {
		sum += d.PMF(deg)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
	if d.PMF(0) != 0 || d.PMF(101) != 0 {
		t.Fatal("PMF outside support non-zero")
	}
	// ρ(1) = 1/n, ρ(2) = 1/2.
	if math.Abs(d.PMF(1)-0.01) > 1e-9 {
		t.Fatalf("ρ(1) = %v", d.PMF(1))
	}
	if math.Abs(d.PMF(2)-0.5) > 1e-9 {
		t.Fatalf("ρ(2) = %v", d.PMF(2))
	}
	// Ideal soliton mean = H(n).
	var h float64
	for i := 1; i <= 100; i++ {
		h += 1 / float64(i)
	}
	if math.Abs(d.Mean()-h) > 1e-9 {
		t.Fatalf("mean = %v, want H(100) = %v", d.Mean(), h)
	}
}

func TestDrawMatchesPMF(t *testing.T) {
	d := RobustSoliton(1000, 0.03, 0.5)
	rng := prng.New(1)
	const trials = 200000
	counts := map[int]int{}
	var empMean float64
	for i := 0; i < trials; i++ {
		deg := d.Draw(rng)
		if deg < 1 || deg > d.MaxDegree() {
			t.Fatalf("degree %d out of range", deg)
		}
		counts[deg]++
		empMean += float64(deg)
	}
	empMean /= trials
	if math.Abs(empMean-d.Mean()) > 0.15*d.Mean() {
		t.Fatalf("empirical mean %v, analytic %v", empMean, d.Mean())
	}
	for _, deg := range []int{1, 2, 3} {
		want := d.PMF(deg)
		got := float64(counts[deg]) / trials
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("P(deg=%d): empirical %v, analytic %v", deg, got, want)
		}
	}
}

func TestPaperScaleDistribution(t *testing.T) {
	// E11 sanity: for the paper's 23,968 blocks the default encoding
	// distribution must be sparse with an average degree near the paper's
	// 11 (we accept the 9–17 band; the measured value is recorded in
	// EXPERIMENTS.md).
	d := DefaultEncoding(PaperBlockCount)
	if d.Mean() < 9 || d.Mean() > 17 {
		t.Fatalf("default encoding mean degree %.2f outside [9,17]", d.Mean())
	}
}

func TestTruncatedHeavyTail(t *testing.T) {
	d := TruncatedHeavyTail(10000, 50)
	if d.MaxDegree() != 50 {
		t.Fatalf("max degree %d", d.MaxDegree())
	}
	// The folded tail puts extra mass on the cap.
	if d.PMF(50) < d.PMF(49) {
		t.Fatalf("no spike at cap: PMF(50)=%v < PMF(49)=%v", d.PMF(50), d.PMF(49))
	}
	// Cap larger than n collapses to n.
	small := TruncatedHeavyTail(10, 50)
	if small.MaxDegree() != 10 {
		t.Fatalf("max degree %d, want 10", small.MaxDegree())
	}
	one := TruncatedHeavyTail(5, 1)
	if one.MaxDegree() != 1 || one.PMF(1) != 1 {
		t.Fatal("degenerate cap broken")
	}
}

func TestDistributionPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { IdealSoliton(0) },
		func() { RobustSoliton(0, 0.03, 0.5) },
		func() { RobustSoliton(10, -1, 0.5) },
		func() { RobustSoliton(10, 0.03, 1.5) },
		func() { TruncatedHeavyTail(0, 5) },
		func() { TruncatedHeavyTail(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNeighborsDeterministicDistinct(t *testing.T) {
	code, err := NewCode(500, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 200; id++ {
		n1 := code.Neighbors(id)
		n2 := code.Neighbors(id)
		if len(n1) != len(n2) {
			t.Fatal("non-deterministic expansion")
		}
		seen := map[int]bool{}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatal("non-deterministic expansion")
			}
			if n1[i] < 0 || n1[i] >= 500 || seen[n1[i]] {
				t.Fatalf("bad neighbor set %v", n1)
			}
			seen[n1[i]] = true
		}
		if code.Degree(id) != len(n1) {
			t.Fatalf("Degree(%d) = %d, neighbors %d", id, code.Degree(id), len(n1))
		}
	}
}

func TestCodeValidation(t *testing.T) {
	if _, err := NewCode(0, nil, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	d := IdealSoliton(100)
	if _, err := NewCode(50, d, 1); err == nil {
		t.Fatal("distribution wider than block count accepted")
	}
}

func makeContent(rng *prng.Rand, size int) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	return data
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := prng.New(7)
	content := makeContent(rng, 500*64-13) // uneven final block
	blocks, origLen, err := SplitIntoBlocks(content, 64)
	if err != nil {
		t.Fatal(err)
	}
	code, err := NewCode(len(blocks), nil, 99)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(code, blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(code, 64)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	for !dec.Done() {
		if sent > 3*len(blocks) {
			t.Fatalf("decoder stalled: %d/%d after %d symbols", dec.Recovered(), len(blocks), sent)
		}
		if _, err := dec.AddSymbol(enc.Next()); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if dec.Overhead() > 0.5 {
		t.Fatalf("overhead %.3f too large for n=500", dec.Overhead())
	}
	got, err := JoinBlocks(dec.Blocks(), origLen)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("decoded content differs from original")
	}
}

func TestParallelStreamsAreAdditive(t *testing.T) {
	// §2.3 "Additivity": two senders with different stream seeds produce
	// uncorrelated flows; interleaving them decodes like one flow.
	rng := prng.New(8)
	content := makeContent(rng, 300*32)
	blocks, origLen, _ := SplitIntoBlocks(content, 32)
	code, _ := NewCode(len(blocks), nil, 5)
	encA, _ := NewEncoder(code, blocks, 1001)
	encB, _ := NewEncoder(code, blocks, 2002)
	dec, _ := NewDecoder(code, 32)
	for i := 0; !dec.Done(); i++ {
		if i > 3*len(blocks) {
			t.Fatal("stalled")
		}
		if i%2 == 0 {
			dec.AddSymbol(encA.Next())
		} else {
			dec.AddSymbol(encB.Next())
		}
	}
	got, err := JoinBlocks(dec.Blocks(), origLen)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("parallel decode mismatch")
	}
	// The two streams should have produced essentially no duplicate IDs.
	if dec.Redundant() > dec.Received()/10 {
		t.Fatalf("too many redundant symbols across streams: %d/%d", dec.Redundant(), dec.Received())
	}
}

func TestDuplicateSymbolsRedundant(t *testing.T) {
	rng := prng.New(9)
	content := makeContent(rng, 50*16)
	blocks, _, _ := SplitIntoBlocks(content, 16)
	code, _ := NewCode(len(blocks), nil, 6)
	enc, _ := NewEncoder(code, blocks, 3)
	dec, _ := NewDecoder(code, 16)
	sym := enc.EncodeID(12345)
	if _, err := dec.AddSymbol(sym); err != nil {
		t.Fatal(err)
	}
	before := dec.Received()
	if _, err := dec.AddSymbol(sym); err != nil {
		t.Fatal(err)
	}
	if dec.Received() != before {
		t.Fatal("duplicate counted as received")
	}
	if dec.Redundant() != 1 {
		t.Fatalf("Redundant = %d, want 1", dec.Redundant())
	}
}

func TestDecoderRejectsWrongSize(t *testing.T) {
	code, _ := NewCode(10, nil, 1)
	dec, _ := NewDecoder(code, 16)
	if _, err := dec.AddSymbol(Symbol{ID: 1, Data: make([]byte, 8)}); err == nil {
		t.Fatal("wrong-size symbol accepted")
	}
	if _, err := NewDecoder(code, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestEncoderValidation(t *testing.T) {
	code, _ := NewCode(3, nil, 1)
	if _, err := NewEncoder(code, [][]byte{{1}, {2}}, 0); err == nil {
		t.Fatal("wrong block count accepted")
	}
	if _, err := NewEncoder(code, [][]byte{{1}, {2}, {3, 4}}, 0); err == nil {
		t.Fatal("ragged blocks accepted")
	}
	if _, err := NewEncoder(code, [][]byte{{}, {}, {}}, 0); err == nil {
		t.Fatal("empty blocks accepted")
	}
}

func TestPeelingCascade(t *testing.T) {
	// Hand-built example of the substitution rule (§5.4.2's y5/y8/y13
	// narrative, at the block level): receiving x0, then (x0⊕x1), then
	// (x1⊕x2) must cascade to recover all three blocks.
	code, err := NewCode(3, IdealSoliton(3), 77)
	if err != nil {
		t.Fatal(err)
	}
	blocks := [][]byte{{0xAA}, {0xBB}, {0xCC}}
	// Find symbol ids with the neighbor sets we want.
	findID := func(want []int) uint64 {
		for id := uint64(0); id < 100000; id++ {
			n := code.Neighbors(id)
			if len(n) != len(want) {
				continue
			}
			match := true
			seen := map[int]bool{}
			for _, v := range n {
				seen[v] = true
			}
			for _, w := range want {
				if !seen[w] {
					match = false
					break
				}
			}
			if match {
				return id
			}
		}
		t.Fatalf("no symbol with neighbors %v", want)
		return 0
	}
	enc, _ := NewEncoder(code, blocks, 1)
	dec, _ := NewDecoder(code, 1)

	id01 := findID([]int{0, 1})
	id12 := findID([]int{1, 2})
	id0 := findID([]int{0})

	// Buffered: two unknowns each.
	if n, _ := dec.AddSymbol(enc.EncodeID(id01)); n != 0 {
		t.Fatalf("premature recovery: %d", n)
	}
	if n, _ := dec.AddSymbol(enc.EncodeID(id12)); n != 0 {
		t.Fatalf("premature recovery: %d", n)
	}
	// Degree-1 arrives: the cascade recovers everything.
	n, err := dec.AddSymbol(enc.EncodeID(id0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || !dec.Done() {
		t.Fatalf("cascade recovered %d, done=%v", n, dec.Done())
	}
	for i, want := range []byte{0xAA, 0xBB, 0xCC} {
		if dec.Blocks()[i][0] != want {
			t.Fatalf("block %d = %#x, want %#x", i, dec.Blocks()[i][0], want)
		}
	}
}

func TestSplitJoinValidation(t *testing.T) {
	if _, _, err := SplitIntoBlocks(nil, 4); err == nil {
		t.Fatal("empty content accepted")
	}
	if _, _, err := SplitIntoBlocks([]byte{1}, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := JoinBlocks(nil, 1); err == nil {
		t.Fatal("no blocks accepted")
	}
	if _, err := JoinBlocks([][]byte{{1, 2}}, 5); err == nil {
		t.Fatal("overlong original length accepted")
	}
	if _, err := JoinBlocks([][]byte{{1, 2}, nil}, 3); err == nil {
		t.Fatal("missing block accepted")
	}
}

// Property: split/join is the identity for arbitrary content and block
// sizes.
func TestQuickSplitJoinIdentity(t *testing.T) {
	f := func(data []byte, bsRaw uint8) bool {
		if len(data) == 0 {
			return true
		}
		bs := int(bsRaw)%64 + 1
		blocks, origLen, err := SplitIntoBlocks(data, bs)
		if err != nil {
			return false
		}
		got, err := JoinBlocks(blocks, origLen)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a decoded prefix of any random symbol stream, once Done,
// reproduces the source blocks exactly.
func TestQuickDecodeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		n := 20 + rng.Intn(60)
		content := makeContent(rng, n*8)
		blocks, origLen, err := SplitIntoBlocks(content, 8)
		if err != nil {
			return false
		}
		code, err := NewCode(len(blocks), nil, seed)
		if err != nil {
			return false
		}
		enc, err := NewEncoder(code, blocks, seed+1)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(code, 8)
		if err != nil {
			return false
		}
		for i := 0; !dec.Done(); i++ {
			if i > 20*n {
				return false // stall
			}
			if _, err := dec.AddSymbol(enc.Next()); err != nil {
				return false
			}
		}
		got, err := JoinBlocks(dec.Blocks(), origLen)
		if err != nil {
			return false
		}
		return bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeOverheadModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Identity-level overhead check at n=2000 (payload-free accounting is
	// exercised via 1-byte blocks).
	const n = 2000
	blocks := make([][]byte, n)
	for i := range blocks {
		blocks[i] = []byte{byte(i)}
	}
	code, _ := NewCode(n, nil, 11)
	var total float64
	const trials = 5
	for tr := 0; tr < trials; tr++ {
		enc, _ := NewEncoder(code, blocks, uint64(tr))
		dec, _ := NewDecoder(code, 1)
		for i := 0; !dec.Done(); i++ {
			if i > 3*n {
				t.Fatal("stalled")
			}
			dec.AddSymbol(enc.Next())
		}
		total += dec.Overhead()
	}
	avg := total / trials
	if avg > 0.25 {
		t.Fatalf("mean decoding overhead %.3f at n=%d, want ≲ 0.25", avg, n)
	}
	t.Logf("n=%d mean decoding overhead: %.4f (paper at n=23968: 0.068)", n, avg)
}

func BenchmarkEncodeSymbol1400B(b *testing.B) {
	rng := prng.New(1)
	const n = 2048
	content := makeContent(rng, n*DefaultBlockSize)
	blocks, _, _ := SplitIntoBlocks(content, DefaultBlockSize)
	code, _ := NewCode(n, nil, 1)
	enc, _ := NewEncoder(code, blocks, 1)
	b.SetBytes(DefaultBlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Next()
	}
}

func BenchmarkDecode2000Blocks(b *testing.B) {
	rng := prng.New(2)
	const n = 2000
	content := makeContent(rng, n*64)
	blocks, _, _ := SplitIntoBlocks(content, 64)
	code, _ := NewCode(n, nil, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, _ := NewEncoder(code, blocks, uint64(i))
		dec, _ := NewDecoder(code, 64)
		for !dec.Done() {
			dec.AddSymbol(enc.Next())
		}
	}
}

func TestEncoderReleaseReuse(t *testing.T) {
	code, err := NewCode(32, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([][]byte, 32)
	for i := range blocks {
		blocks[i] = make([]byte, 64)
		for j := range blocks[i] {
			blocks[i][j] = byte(i*7 + j)
		}
	}
	enc, err := NewEncoder(code, blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A released buffer must be recycled without leaking the previous
	// symbol's contents into the next.
	first := enc.EncodeID(1234)
	want := append([]byte(nil), first.Data...)
	enc.Release(first)
	second := enc.EncodeID(9999)
	enc.Release(second)
	again := enc.EncodeID(1234)
	if !bytes.Equal(again.Data, want) {
		t.Fatal("EncodeID not deterministic across Release/reuse")
	}
	// Foreign or wrong-size buffers are ignored, not pooled.
	enc.Release(Symbol{ID: 1, Data: make([]byte, 3)})
	if got := enc.EncodeID(1234); !bytes.Equal(got.Data, want) {
		t.Fatal("wrong-size Release corrupted the pool")
	}
}

func TestAppendNeighborsMatchesNeighbors(t *testing.T) {
	code, err := NewCode(200, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf []int
	for id := uint64(0); id < 500; id++ {
		want := code.Neighbors(id)
		buf = code.AppendNeighbors(id, buf)
		if len(buf) != len(want) {
			t.Fatalf("id %d: len %d != %d", id, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("id %d: [%d] = %d != %d", id, i, buf[i], want[i])
			}
		}
	}
}

func TestEncoderNextZeroAlloc(t *testing.T) {
	code, err := NewCode(500, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([][]byte, 500)
	for i := range blocks {
		blocks[i] = make([]byte, 1400)
	}
	enc, err := NewEncoder(code, blocks, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the freelist and scratch buffers, then assert the documented
	// steady-state invariant: Next+Release allocates nothing.
	for i := 0; i < 100; i++ {
		enc.Release(enc.Next())
	}
	if avg := testing.AllocsPerRun(200, func() {
		enc.Release(enc.Next())
	}); avg != 0 {
		t.Fatalf("Encoder.Next steady state allocates %.1f allocs/op, want 0", avg)
	}
}
