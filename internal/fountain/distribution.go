// Package fountain implements the sparse parity-check codes of §5.4.1 —
// the digital-fountain substrate the whole delivery architecture rests on.
//
// A file is divided into ` fixed-length source blocks x_1…x_`; an encoder
// emits a potentially unbounded stream of encoding symbols, each the
// bitwise XOR of a random subset of source blocks drawn from an irregular
// degree distribution. The decoder recovers the blocks with the
// substitution (peeling) rule of Luby et al.: any symbol with exactly one
// unknown neighbor yields that block, which is substituted into the
// remaining symbols, cascading until the file is restored. Sparse codes
// need a few percent more than ` symbols; the paper's code had average
// degree 11 and ≈6.8% decoding overhead on 23,968 blocks, and its
// simulations assume a constant 7% (§6.1) — behaviours this package
// reproduces empirically (experiment E11).
//
// Each encoding symbol is identified by a 64-bit seed from which its
// degree and neighbor set are derived deterministically, matching the
// paper's "64-bit degree sequence representations": senders never ship
// explicit neighbor lists, only the seed.
package fountain

import (
	"fmt"
	"math"
	"sort"

	"icd/internal/prng"
)

// Distribution is a probability distribution over symbol degrees 1..Max.
// Draw is O(log Max) via binary search over the CDF.
type Distribution struct {
	name string
	pmf  []float64 // pmf[i] = P(degree = i+1)
	cdf  []float64
	mean float64
}

func newDistribution(name string, weights []float64) *Distribution {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("fountain: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("fountain: empty distribution")
	}
	d := &Distribution{
		name: name,
		pmf:  make([]float64, len(weights)),
		cdf:  make([]float64, len(weights)),
	}
	acc := 0.0
	for i, w := range weights {
		p := w / total
		d.pmf[i] = p
		acc += p
		d.cdf[i] = acc
		d.mean += p * float64(i+1)
	}
	d.cdf[len(d.cdf)-1] = 1 // guard against rounding
	return d
}

// Name identifies the distribution for diagnostics.
func (d *Distribution) Name() string { return d.name }

// MaxDegree returns the largest degree with non-zero probability.
func (d *Distribution) MaxDegree() int { return len(d.pmf) }

// Mean returns the average degree, the quantity that governs encode and
// decode cost ("encoding and decoding times are a function of the average
// degree, not the maximum", §5.4.1).
func (d *Distribution) Mean() float64 { return d.mean }

// PMF returns P(degree = deg); 0 outside [1, MaxDegree].
func (d *Distribution) PMF(deg int) float64 {
	if deg < 1 || deg > len(d.pmf) {
		return 0
	}
	return d.pmf[deg-1]
}

// Draw samples a degree in [1, MaxDegree].
func (d *Distribution) Draw(rng *prng.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(d.cdf, u) + 1
}

// IdealSoliton is the ideal soliton distribution on degrees 1..n:
// ρ(1) = 1/n, ρ(d) = 1/(d(d−1)). In expectation one symbol becomes
// peelable per recovery, but it is fragile in practice — included as the
// analytic baseline.
func IdealSoliton(n int) *Distribution {
	if n < 1 {
		panic("fountain: n < 1")
	}
	w := make([]float64, n)
	w[0] = 1 / float64(n)
	for d := 2; d <= n; d++ {
		w[d-1] = 1 / (float64(d) * float64(d-1))
	}
	return newDistribution(fmt.Sprintf("ideal-soliton(n=%d)", n), w)
}

// RobustSoliton is Luby's robust soliton distribution with parameters c
// and delta: the ideal soliton plus the extra component
//
//	τ(d) = S/(dn)            for d = 1 … n/S−1
//	τ(n/S) = S·ln(S/δ)/n
//
// where S = c·ln(n/δ)·√n, renormalized. It is the canonical provably good
// sparse distribution; with c ≈ 0.03 and δ ≈ 0.5 its average degree for
// n ≈ 24k lands at ≈ 11, matching §6.1's code.
func RobustSoliton(n int, c, delta float64) *Distribution {
	if n < 1 {
		panic("fountain: n < 1")
	}
	if c <= 0 || delta <= 0 || delta >= 1 {
		panic("fountain: bad robust soliton parameters")
	}
	if n == 1 {
		return newDistribution("robust-soliton(n=1)", []float64{1})
	}
	s := c * math.Log(float64(n)/delta) * math.Sqrt(float64(n))
	if s < 1 {
		s = 1
	}
	spike := int(float64(n) / s)
	if spike < 1 {
		spike = 1
	}
	if spike > n {
		spike = n
	}
	w := make([]float64, n)
	// ideal soliton component
	w[0] = 1 / float64(n)
	for d := 2; d <= n; d++ {
		w[d-1] = 1 / (float64(d) * float64(d-1))
	}
	// robust component
	for d := 1; d < spike; d++ {
		w[d-1] += s / (float64(d) * float64(n))
	}
	w[spike-1] += s * math.Log(s/delta) / float64(n)
	return newDistribution(fmt.Sprintf("robust-soliton(n=%d,c=%g,δ=%g)", n, c, delta), w)
}

// DefaultEncoding returns the library's tuned encoding distribution for n
// source blocks: a robust soliton with c = 0.03, δ = 0.5, the best
// all-scale point of our calibration sweep (see EXPERIMENTS.md E11):
// measured decoding overhead ≈ 18% at n=300, 13% at n=1000, 4.3% at
// n=10000 and ≈ 3.2% at the paper's n = 23,968 with mean degree ≈ 16
// (the paper's proprietary heuristic: degree 11, overhead 6.8%; the paper
// itself notes that distributions "such as those of [16]" — which the
// robust soliton is — "will slightly improve all of our results").
// Parameters remain valid through the paper's "up to 500K symbols" range.
func DefaultEncoding(n int) *Distribution {
	return RobustSoliton(n, 0.03, 0.5)
}

// TruncatedHeavyTail is the heuristic irregular distribution of §5.4.2
// used for recoding: heavy-tailed like a soliton but hard-capped at
// maxDegree ("we advocate use of a fixed degree limit primarily to keep
// the listing of identifiers short"), avoiding degree-1 symbols beyond
// the soliton share ("tend to avoid low degree symbols, which may provide
// short-term benefit, but which are often useless").
func TruncatedHeavyTail(n, maxDegree int) *Distribution {
	if n < 1 {
		panic("fountain: n < 1")
	}
	if maxDegree < 1 {
		panic("fountain: maxDegree < 1")
	}
	if maxDegree > n {
		maxDegree = n
	}
	if maxDegree == 1 {
		return newDistribution("heavy-tail(max=1)", []float64{1})
	}
	w := make([]float64, maxDegree)
	w[0] = 1 / float64(n)
	for d := 2; d <= maxDegree; d++ {
		w[d-1] = 1 / (float64(d) * float64(d-1))
	}
	// Fold the truncated tail mass Σ_{d>max} 1/(d(d−1)) = 1/max onto the
	// cap so high-degree coverage survives truncation (the "spike").
	w[maxDegree-1] += 1 / float64(maxDegree)
	return newDistribution(fmt.Sprintf("heavy-tail(n=%d,max=%d)", n, maxDegree), w)
}

// CappedRobustSoliton is a robust soliton with every degree above
// maxDegree folded onto the cap. It is the shape we use for recoding
// (§6.1: "the degree distribution for recoding was created similarly
// [heuristically, like the encoding one] with a degree limit of 50"):
// soliton-like low-degree mass keeps the substitution-rule ripple
// self-seeding — essential for a sender recoding over a domain the
// receiver knows nothing of (Recode/BF) — while the cap keeps the
// identifier lists in packet headers short. For domains where the robust
// spike n/S exceeds the cap, folding degrades decodability; that is the
// §6.3 "recode over too large a domain" failure mode, reproduced by the
// ablation bench.
func CappedRobustSoliton(n int, c, delta float64, maxDegree int) *Distribution {
	if maxDegree < 1 {
		panic("fountain: maxDegree < 1")
	}
	full := RobustSoliton(n, c, delta)
	if full.MaxDegree() <= maxDegree {
		return full
	}
	w := make([]float64, maxDegree)
	copy(w, full.pmf[:maxDegree])
	var tail float64
	for _, p := range full.pmf[maxDegree:] {
		tail += p
	}
	w[maxDegree-1] += tail
	return newDistribution(fmt.Sprintf("capped-robust-soliton(n=%d,c=%g,δ=%g,max=%d)",
		n, c, delta, maxDegree), w)
}

// DefaultRecoding is the recoding distribution of §6.1: soliton-shaped
// "with a degree limit of 50". Parameters c = 0.1, δ = 0.5 keep the
// robust spike below the cap for domains up to a few thousand symbols,
// the scale of the §6 scenarios reproduced here.
func DefaultRecoding(n int) *Distribution {
	const recodeDegreeLimit = 50
	return CappedRobustSoliton(n, 0.1, 0.5, recodeDegreeLimit)
}
