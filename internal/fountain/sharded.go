package fountain

// sharded.go is the multi-core peeling decoder: source blocks are
// partitioned round-robin across S shards, each owned by one worker
// goroutine, so one receiver can absorb symbol batches "as fast as the
// hardware allows" (§5.4/§6 of the paper). See the package doc of the
// root module (doc.go, "Data-plane performance model") for the full
// receive-path model; the short version:
//
//   - Block b is owned by shard b mod S. All XOR work involving b —
//     reduction of incoming symbols, recovery, cascade propagation —
//     happens on b's owner, so payload traffic parallelizes across
//     owners and a block's bytes stay in one core's cache.
//
//   - A symbol whose neighbors all live in one shard is routed straight
//     to it and handled exactly like the single-core decoder handles it
//     (local pending index, local cascade).
//
//   - A cross-shard symbol hops from owner to owner: each shard XORs out
//     the owned blocks it has recovered and forwards the remainder to
//     the next unvisited shard (a uint64 visited mask bounds shards at
//     MaxShards). A remaining degree-1 symbol is the missing block's
//     value and is sent to that block's owner for recovery. A symbol
//     that every involved shard has seen parks at a small coordinator,
//     which does no payload work at all: it only indexes parked symbols
//     by their unknown blocks and, when a shard announces a recovery,
//     re-dispatches the waiters to that shard with a fresh mask.
//
// Buffer ownership: AddSymbol copies the caller's payload into a buffer
// from the decoder's freelist (the caller keeps ownership of sym.Data,
// exactly like Decoder.AddSymbol). From then on exactly one component
// owns each buffer — the message in flight, the parked symbol, or the
// recovered block — and redundant symbols return theirs to the freelist,
// so a saturated decoder stops allocating. Close reclaims the buffers of
// still-parked symbols; recovered blocks keep theirs for Blocks().

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"icd/internal/bitset"
	"icd/internal/xorblock"
)

// MaxShards bounds the shard count of a ShardedDecoder: cross-shard
// routing tracks the set of visited shards in a 64-bit mask.
const MaxShards = 64

// shardMsg is one unit of decode work in flight between shards: a
// payload and the block indices not yet XORed out of it. Exactly one
// goroutine owns a message (and its buffers) at a time.
type shardMsg struct {
	data     []byte
	unknown  []int  // unresolved block indices
	visited  uint64 // shards that have already reduced this symbol
	buffered bool   // resumed from a parked state: its death is cascade bookkeeping, not redundancy
}

// coordMsg is the coordinator's input: either a recovery announcement
// (announce ≥ 0) or a cross-shard symbol to park (announce < 0).
type coordMsg struct {
	announce int
	sym      shardMsg
}

// mailbox is an unbounded multi-producer single-consumer queue. Being
// unbounded is what makes the shard↔coordinator message cycle
// deadlock-free: no push ever blocks.
type mailbox[T any] struct {
	mu     sync.Mutex
	cond   sync.Cond
	q      []T
	closed bool
}

func newMailbox[T any]() *mailbox[T] {
	mb := &mailbox[T]{}
	mb.cond.L = &mb.mu
	return mb
}

func (mb *mailbox[T]) push(v T) {
	mb.mu.Lock()
	mb.q = append(mb.q, v)
	mb.mu.Unlock()
	mb.cond.Signal()
}

// drain blocks until messages arrive or the mailbox closes, then swaps
// the queue with spare (so the worker's batch slice is recycled and the
// steady state allocates nothing). The bool is false when the worker
// should exit: closed and nothing left.
func (mb *mailbox[T]) drain(spare []T) ([]T, bool) {
	mb.mu.Lock()
	for len(mb.q) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	batch := mb.q
	mb.q = spare[:0]
	closed := mb.closed
	mb.mu.Unlock()
	return batch, len(batch) > 0 || !closed
}

func (mb *mailbox[T]) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// ShardedDecoder is a Decoder that peels on multiple cores. It is safe
// for concurrent AddSymbol calls from any number of feeder goroutines
// (peer receive loops, for instance); decode work happens asynchronously
// on the shard workers, so Done and Recovered may lag AddSymbol by the
// symbols still in flight — call Drain to wait for quiescence before
// reading Blocks or making a final completion decision.
//
// Close must not run concurrently with AddSymbol: stop the feeders, then
// Close. All accessors (Done, Recovered, Blocks, Overhead, …) remain
// valid after Close.
type ShardedDecoder struct {
	code      *Code
	blockSize int
	numShards int

	blocks []([]byte) // shard s writes only indices ≡ s (mod numShards)

	shards []*decodeShard
	coord  *coordinator

	recovered atomic.Int64

	mu        sync.Mutex // guards seen/counters/inflight; cond signals inflight==0
	cond      sync.Cond
	seen      map[uint64]struct{}
	received  int
	redundant int
	inflight  int
	closed    bool

	bufMu    sync.Mutex // freelists (separate lock: shards release while feeders borrow)
	freeBufs [][]byte
	freeInts [][]int
	bufsOut  int // borrowed minus released: the buffer-accounting invariant tests check

	wg sync.WaitGroup
}

// decodeShard owns the blocks ≡ id (mod numShards) and all XOR work on
// them. pending/parked mirror the single-core Decoder's buffered-symbol
// index, restricted to symbols whose every unknown block is owned here.
type decodeShard struct {
	d       *ShardedDecoder
	id      int
	box     *mailbox[shardMsg]
	pending map[int][]int    // owned block -> indices into parked
	parked  []*pendingSymbol // the single-core Decoder's buffered-symbol record, reused
	queue   []peelRec        // cascade scratch, reused
}

// coordinator parks cross-shard symbols that every involved shard has
// reduced, indexed by their unknown blocks. It never touches payloads:
// a recovery announcement just re-dispatches the waiters to the
// recovering shard, which owns the block's bytes.
type coordinator struct {
	d       *ShardedDecoder
	box     *mailbox[coordMsg]
	known   *bitset.Set   // blocks announced recovered (closes the announce-then-park race)
	waiting map[int][]int // block -> indices into parked
	parked  []*crossSym
}

type crossSym struct {
	sym  shardMsg
	dead bool
}

// NewShardedDecoder prepares a decoder that peels on `shards` worker
// goroutines (shards ≤ 0 selects GOMAXPROCS; the count is clamped to
// [1, min(MaxShards, n)]). A ShardedDecoder must be Closed when done to
// stop its workers.
func NewShardedDecoder(code *Code, blockSize, shards int) (*ShardedDecoder, error) {
	if blockSize < 1 {
		return nil, errors.New("fountain: non-positive block size")
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	if shards > code.n {
		shards = code.n
	}
	d := &ShardedDecoder{
		code:      code,
		blockSize: blockSize,
		numShards: shards,
		blocks:    make([][]byte, code.n),
		seen:      make(map[uint64]struct{}),
	}
	d.cond.L = &d.mu
	for s := 0; s < shards; s++ {
		d.shards = append(d.shards, &decodeShard{
			d:       d,
			id:      s,
			box:     newMailbox[shardMsg](),
			pending: make(map[int][]int),
		})
	}
	d.coord = &coordinator{
		d:       d,
		box:     newMailbox[coordMsg](),
		known:   bitset.New(code.n),
		waiting: make(map[int][]int),
	}
	d.wg.Add(shards + 1)
	for _, sh := range d.shards {
		go sh.run()
	}
	go d.coord.run()
	return d, nil
}

// NumShards returns the number of shard workers in use.
func (d *ShardedDecoder) NumShards() int { return d.numShards }

// owner maps a block index to the shard that holds it.
func (d *ShardedDecoder) owner(block int) int { return block % d.numShards }

// ---- freelists ----

// getBuf borrows a blockSize payload buffer from the freelist.
func (d *ShardedDecoder) getBuf() []byte {
	d.bufMu.Lock()
	var b []byte
	if n := len(d.freeBufs); n > 0 {
		b = d.freeBufs[n-1]
		d.freeBufs = d.freeBufs[:n-1]
	}
	d.bufsOut++
	d.bufMu.Unlock()
	if b == nil {
		b = make([]byte, d.blockSize)
	}
	return b
}

// putBuf returns a payload buffer; the caller must not use it afterwards.
func (d *ShardedDecoder) putBuf(b []byte) {
	d.bufMu.Lock()
	d.freeBufs = append(d.freeBufs, b)
	d.bufsOut--
	d.bufMu.Unlock()
}

// getInts borrows an empty index slice (capacity retained across uses).
func (d *ShardedDecoder) getInts() []int {
	d.bufMu.Lock()
	var u []int
	if n := len(d.freeInts); n > 0 {
		u = d.freeInts[n-1][:0]
		d.freeInts = d.freeInts[:n-1]
	}
	d.bufMu.Unlock()
	return u
}

func (d *ShardedDecoder) putInts(u []int) {
	d.bufMu.Lock()
	d.freeInts = append(d.freeInts, u[:0])
	d.bufMu.Unlock()
}

// outstandingBuffers reports borrowed-minus-released payload buffers.
// After Close this must equal Recovered() — each recovered block keeps
// exactly one buffer — which is the no-double-release/no-lost-buffer
// invariant the race tests assert.
func (d *ShardedDecoder) outstandingBuffers() int {
	d.bufMu.Lock()
	defer d.bufMu.Unlock()
	return d.bufsOut
}

// ---- in-flight accounting (Drain support) ----

// finishMany retires n processed messages (workers batch the decrement
// so the in-flight lock is touched once per drained batch, not once per
// message).
func (d *ShardedDecoder) finishMany(n int) {
	d.mu.Lock()
	d.inflight -= n
	if d.inflight == 0 {
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

// send forwards a message to a shard, moving its in-flight token with it.
func (d *ShardedDecoder) send(target int, m shardMsg) {
	d.mu.Lock()
	d.inflight++
	d.mu.Unlock()
	d.shards[target].box.push(m)
}

func (d *ShardedDecoder) sendCoord(m coordMsg) {
	d.mu.Lock()
	d.inflight++
	d.mu.Unlock()
	d.coord.box.push(m)
}

// ---- ingest ----

// AddSymbol ingests one symbol, routing it by its neighbor footprint to
// the shard owning the plurality of its blocks. The decoder copies
// sym.Data (into a freelist buffer); the caller keeps ownership. Safe
// for concurrent use. Decode effects are asynchronous: use Done for a
// fast (possibly lagging) completion check and Drain for a precise one.
func (d *ShardedDecoder) AddSymbol(sym Symbol) error {
	if len(sym.Data) != d.blockSize {
		return fmt.Errorf("fountain: symbol size %d, want %d", len(sym.Data), d.blockSize)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("fountain: decoder closed")
	}
	if _, dup := d.seen[sym.ID]; dup {
		d.redundant++
		d.mu.Unlock()
		return nil
	}
	d.seen[sym.ID] = struct{}{}
	d.received++
	if d.recovered.Load() == int64(d.code.n) {
		// Already complete: every further symbol reduces to nothing.
		d.redundant++
		d.mu.Unlock()
		return nil
	}
	d.inflight++
	d.mu.Unlock()

	d.route(sym)
	return nil
}

// route expands a symbol's neighbors and pushes it to its starting
// shard. The caller must already hold an in-flight token for it (the
// router-lock bookkeeping of AddSymbol/AddSymbols). Neighbor expansion
// needs only the shared code (stack PRNG inside), so it runs outside the
// lock: concurrent feeders do not serialize on anything but the seen-map
// check.
func (d *ShardedDecoder) route(sym Symbol) {
	u := d.code.AppendNeighbors(sym.ID, d.getInts())
	data := d.getBuf()
	copy(data, sym.Data)

	// Footprint routing: start at the shard owning the most neighbors, so
	// the first reduction hop does the most XOR work and purely local
	// symbols take zero extra hops.
	var counts [MaxShards]int32
	target, best := d.owner(u[0]), int32(0)
	for _, b := range u {
		s := d.owner(b)
		counts[s]++
		if counts[s] > best {
			best, target = counts[s], s
		}
	}
	d.shards[target].box.push(shardMsg{data: data, unknown: u})
}

// symbolBatches recycles the accepted-symbol scratch of AddSymbols so a
// steady-state batched receive loop allocates nothing per batch.
var symbolBatches = sync.Pool{
	New: func() any {
		s := make([]Symbol, 0, 64)
		return &s
	},
}

// AddSymbols ingests a batch of symbols, taking the router lock once for
// the whole batch instead of once per symbol — the path a receive loop
// that drains frames in batches should use (≈len(syms)× fewer
// lock/unlock pairs under feeder contention). Semantics match calling
// AddSymbol in order: duplicates are counted redundant, the decoder
// copies each payload, and decode effects are asynchronous.
func (d *ShardedDecoder) AddSymbols(syms []Symbol) error {
	if len(syms) == 0 {
		return nil
	}
	for _, sym := range syms {
		if len(sym.Data) != d.blockSize {
			return fmt.Errorf("fountain: symbol size %d, want %d", len(sym.Data), d.blockSize)
		}
	}
	bp := symbolBatches.Get().(*[]Symbol)
	accepted := (*bp)[:0]
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		symbolBatches.Put(bp)
		return errors.New("fountain: decoder closed")
	}
	for _, sym := range syms {
		if _, dup := d.seen[sym.ID]; dup {
			d.redundant++
			continue
		}
		d.seen[sym.ID] = struct{}{}
		d.received++
		if d.recovered.Load() == int64(d.code.n) {
			// Already complete: every further symbol reduces to nothing.
			d.redundant++
			continue
		}
		accepted = append(accepted, sym)
	}
	d.inflight += len(accepted)
	d.mu.Unlock()

	for _, sym := range accepted {
		d.route(sym)
	}
	*bp = accepted[:0]
	symbolBatches.Put(bp)
	return nil
}

// AddStream feeds a pre-encoded symbol stream until the decoder
// completes or the stream runs out, returning whether decoding
// completed. Once completion is possible (n symbols in) it settles the
// pipeline periodically so a tight feeder cannot outrun the workers and
// overfeed the decoder — the shared drive loop of the benchmarks,
// icdbench and the decode experiment.
func (d *ShardedDecoder) AddStream(stream []Symbol) (bool, error) {
	for i, sym := range stream {
		if err := d.AddSymbol(sym); err != nil {
			return false, err
		}
		if i >= d.code.n && i%16 == 0 {
			d.Drain()
			if d.Done() {
				return true, nil
			}
		}
	}
	d.Drain()
	return d.Done(), nil
}

// Drain blocks until every in-flight symbol has settled (recovered a
// block, parked, or proven redundant). After Drain with no concurrent
// feeders, Done/Recovered/Blocks reflect everything added.
func (d *ShardedDecoder) Drain() {
	d.mu.Lock()
	for d.inflight > 0 {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// Close waits for in-flight work, stops the workers and reclaims the
// buffers of still-parked symbols. It is idempotent. Feeders must have
// stopped before Close is called.
func (d *ShardedDecoder) Close() error {
	d.Drain()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	for _, s := range d.shards {
		s.box.close()
	}
	d.coord.box.close()
	d.wg.Wait()
	for _, s := range d.shards {
		for _, ps := range s.parked {
			if !ps.dead {
				ps.dead = true
				d.putBuf(ps.data)
				d.putInts(ps.unknown)
			}
		}
		s.parked, s.pending = nil, nil
	}
	for _, cs := range d.coord.parked {
		if !cs.dead {
			cs.dead = true
			d.putBuf(cs.sym.data)
			d.putInts(cs.sym.unknown)
		}
	}
	d.coord.parked, d.coord.waiting = nil, nil
	return nil
}

// ---- accessors (Decoder-compatible) ----

// Done reports whether every source block has been recovered. It may lag
// recent AddSymbol calls by the symbols still in flight; Drain first for
// an exact answer.
func (d *ShardedDecoder) Done() bool { return d.recovered.Load() == int64(d.code.n) }

// Recovered returns the number of recovered source blocks so far.
func (d *ShardedDecoder) Recovered() int { return int(d.recovered.Load()) }

// Received returns the number of distinct symbols accepted.
func (d *ShardedDecoder) Received() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.received
}

// Redundant returns the number of symbols that contributed nothing new.
func (d *ShardedDecoder) Redundant() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.redundant
}

// Overhead returns received/n − 1, the §5.4.1 decoding-overhead metric.
func (d *ShardedDecoder) Overhead() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return float64(d.received)/float64(d.code.n) - 1
}

// Blocks returns the recovered source blocks (nil entries are still
// unknown). Call Drain (or Close) first; the slice must not be mutated.
func (d *ShardedDecoder) Blocks() [][]byte { return d.blocks }

// ---- shard worker ----

func (s *decodeShard) run() {
	defer s.d.wg.Done()
	var batch []shardMsg
	for {
		var ok bool
		batch, ok = s.box.drain(batch)
		if !ok {
			return
		}
		for i := range batch {
			s.process(batch[i])
		}
		s.d.finishMany(len(batch))
	}
}

// process runs one reduction step of a symbol at this shard and decides
// its fate: redundant, recovery, local park, forward, or coordinator.
func (s *decodeShard) process(m shardMsg) {
	d := s.d
	m.visited |= 1 << uint(s.id)

	// XOR out the owned blocks this shard has recovered. Only the owner
	// ever reads or writes blocks[b], so no lock is needed.
	u := m.unknown[:0]
	for _, b := range m.unknown {
		if d.owner(b) == s.id && d.blocks[b] != nil {
			xorblock.XorInto(m.data, d.blocks[b])
		} else {
			u = append(u, b)
		}
	}
	m.unknown = u

	switch {
	case len(u) == 0:
		// Fully reduced: nothing new. Cascade continuations (buffered)
		// were already counted when they first arrived.
		if !m.buffered {
			d.mu.Lock()
			d.redundant++
			d.mu.Unlock()
		}
		d.putInts(m.unknown)
		d.putBuf(m.data)

	case len(u) == 1:
		// Degree one: the payload IS the missing block's value. Recover
		// here if owned, else hand it to the owner (regardless of the
		// visited mask — recovery terminates the hop chain).
		b := u[0]
		if d.owner(b) == s.id {
			d.putInts(m.unknown)
			s.recover(b, m.data)
		} else {
			d.send(d.owner(b), m)
		}

	default:
		local := true
		for _, b := range u {
			if d.owner(b) != s.id {
				local = false
				break
			}
		}
		if local {
			s.park(m)
			return
		}
		for _, b := range u {
			if t := d.owner(b); m.visited&(1<<uint(t)) == 0 {
				d.send(t, m)
				return
			}
		}
		// Every involved shard has reduced it; wait at the coordinator
		// for one of its blocks to recover.
		d.sendCoord(coordMsg{announce: -1, sym: m})
	}
}

// park buffers a symbol whose remaining unknowns are all owned by this
// shard, indexed on each of them (the single-core Decoder's scheme).
func (s *decodeShard) park(m shardMsg) {
	ps := &pendingSymbol{data: m.data, unknown: m.unknown}
	at := len(s.parked)
	s.parked = append(s.parked, ps)
	for _, b := range m.unknown {
		s.pending[b] = append(s.pending[b], at)
	}
}

// recover records a newly known owned block and runs the substitution
// cascade through this shard's parked symbols, announcing every recovery
// to the coordinator so cross-shard waiters wake up.
func (s *decodeShard) recover(block int, data []byte) {
	d := s.d
	queue := append(s.queue[:0], peelRec{block, data})
	for head := 0; head < len(queue); head++ {
		r := queue[head]
		if d.blocks[r.idx] != nil {
			d.putBuf(r.data) // another cascade path got here first
			continue
		}
		d.blocks[r.idx] = r.data
		d.recovered.Add(1)
		d.sendCoord(coordMsg{announce: r.idx})
		waiters := s.pending[r.idx]
		delete(s.pending, r.idx)
		for _, w := range waiters {
			ps := s.parked[w]
			if ps.dead || !ps.drop(r.idx) {
				continue
			}
			xorblock.XorInto(ps.data, r.data)
			switch len(ps.unknown) {
			case 1:
				ps.dead = true
				next := ps.unknown[0]
				d.putInts(ps.unknown)
				queue = append(queue, peelRec{next, ps.data})
			case 0:
				ps.dead = true
				d.putInts(ps.unknown)
				d.putBuf(ps.data)
			}
		}
	}
	s.queue = queue[:0] // retain capacity for the next cascade
}

// ---- coordinator ----

func (c *coordinator) run() {
	defer c.d.wg.Done()
	var batch []coordMsg
	for {
		var ok bool
		batch, ok = c.box.drain(batch)
		if !ok {
			return
		}
		for i := range batch {
			c.process(batch[i])
		}
		c.d.finishMany(len(batch))
	}
}

func (c *coordinator) process(m coordMsg) {
	d := c.d
	if m.announce >= 0 {
		c.known.Set(m.announce)
		waiters := c.waiting[m.announce]
		delete(c.waiting, m.announce)
		for _, w := range waiters {
			cs := c.parked[w]
			if cs.dead {
				continue
			}
			cs.dead = true
			// Re-dispatch to the recovering shard: it owns the block's
			// bytes and will XOR them out, then continue the hop chain
			// with a fresh visited mask.
			cs.sym.visited = 0
			cs.sym.buffered = true
			d.send(d.owner(m.announce), cs.sym)
		}
		return
	}
	// Park request. A block may have been announced while this symbol was
	// hopping between shards — the announcement is already consumed, so
	// check the coordinator's recovered set before parking to avoid a
	// missed wake-up (and a stalled decode).
	sym := m.sym
	for _, b := range sym.unknown {
		if c.known.Test(b) {
			sym.visited = 0
			sym.buffered = true
			d.send(d.owner(b), sym)
			return
		}
	}
	at := len(c.parked)
	c.parked = append(c.parked, &crossSym{sym: sym})
	for _, b := range sym.unknown {
		c.waiting[b] = append(c.waiting[b], at)
	}
}
