package fountain

import (
	"bytes"
	"sync"
	"testing"
)

// shardedTestContent builds deterministic pseudo-random source blocks.
func shardedTestContent(n, blockSize int, seed byte) [][]byte {
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, blockSize)
		x := byte(i) ^ seed
		for j := range b {
			x = x*167 + 13
			b[j] = x
		}
		blocks[i] = b
	}
	return blocks
}

// TestShardedDecoderMatchesSingle feeds the same symbol stream to the
// single-core decoder and to sharded decoders at several shard counts:
// all must complete on the same number of symbols and recover identical
// blocks (the sharded decoder is a parallel schedule of the same
// peeling computation, not a different code).
func TestShardedDecoderMatchesSingle(t *testing.T) {
	const n, blockSize = 200, 64
	for _, seed := range []uint64{1, 7, 42, 1001} {
		code, err := NewCode(n, nil, seed)
		if err != nil {
			t.Fatal(err)
		}
		blocks := shardedTestContent(n, blockSize, byte(seed))
		enc, err := NewEncoder(code, blocks, seed+99)
		if err != nil {
			t.Fatal(err)
		}
		var stream []Symbol
		single, err := NewDecoder(code, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		for !single.Done() {
			if len(stream) > 4*n {
				t.Fatalf("seed %d: single decoder stalled", seed)
			}
			sym := enc.EncodeID(uint64(len(stream))*0x9e3779b97f4a7c15 + seed)
			stream = append(stream, sym)
			if _, err := single.AddSymbol(sym); err != nil {
				t.Fatal(err)
			}
		}

		for _, shards := range []int{1, 2, 3, 4, 8} {
			d, err := NewShardedDecoder(code, blockSize, shards)
			if err != nil {
				t.Fatal(err)
			}
			for _, sym := range stream {
				if err := d.AddSymbol(sym); err != nil {
					t.Fatal(err)
				}
			}
			d.Drain()
			if !d.Done() {
				t.Fatalf("seed %d shards %d: not done after the stream that completed the single decoder (recovered %d/%d)",
					seed, shards, d.Recovered(), n)
			}
			if d.Received() != single.Received() {
				t.Errorf("seed %d shards %d: received %d, single %d", seed, shards, d.Received(), single.Received())
			}
			for i := range blocks {
				if !bytes.Equal(d.Blocks()[i], blocks[i]) {
					t.Fatalf("seed %d shards %d: block %d differs", seed, shards, i)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			if out := d.outstandingBuffers(); out != d.Recovered() {
				t.Errorf("seed %d shards %d: %d buffers outstanding after Close, want %d (one per recovered block)",
					seed, shards, out, d.Recovered())
			}
		}
	}
}

// TestShardedDecoderConcurrentFeeders hammers one sharded decoder from
// multiple feeder goroutines (the peer receive-loop topology) and then
// checks content correctness and the buffer-accounting invariant: no
// double-Release, no lost buffer. Run with -race.
func TestShardedDecoderConcurrentFeeders(t *testing.T) {
	const n, blockSize, feeders = 300, 128, 8
	code, err := NewCode(n, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	blocks := shardedTestContent(n, blockSize, 5)
	d, err := NewShardedDecoder(code, blockSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			enc, err := NewEncoder(code, blocks, uint64(f)+1)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n && !d.Done(); i++ {
				sym := enc.Next()
				if err := d.AddSymbol(sym); err != nil {
					t.Error(err)
					return
				}
				enc.Release(sym) // AddSymbol copies; the encoder buffer is ours again
			}
		}(f)
	}
	wg.Wait()
	d.Drain()
	if !d.Done() {
		t.Fatalf("not done after %d feeders x %d symbols (recovered %d/%d)", feeders, n, d.Recovered(), n)
	}
	for i := range blocks {
		if !bytes.Equal(d.Blocks()[i], blocks[i]) {
			t.Fatalf("block %d differs", i)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if out := d.outstandingBuffers(); out != n {
		t.Errorf("%d buffers outstanding after Close, want %d: a buffer was lost or double-released", out, n)
	}
}

// TestShardedDecoderRedundantRelease keeps feeding a completed decoder —
// duplicates and fresh ids alike — and checks every redundant symbol's
// buffer comes back to the freelist.
func TestShardedDecoderRedundantRelease(t *testing.T) {
	const n, blockSize = 100, 32
	code, err := NewCode(n, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	blocks := shardedTestContent(n, blockSize, 9)
	enc, err := NewEncoder(code, blocks, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewShardedDecoder(code, blockSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	var fed []Symbol
	for i := 0; !d.Done() || i < 4*n; i++ {
		if i > 8*n {
			t.Fatal("stalled")
		}
		sym := enc.EncodeID(uint64(i))
		fed = append(fed, sym)
		if err := d.AddSymbol(sym); err != nil {
			t.Fatal(err)
		}
		if i == 3*n {
			d.Drain()
		}
	}
	d.Drain()
	if !d.Done() {
		t.Fatalf("not done (recovered %d/%d)", d.Recovered(), n)
	}
	received := d.Received()
	// Refeed the whole stream: all duplicates.
	for _, sym := range fed {
		if err := d.AddSymbol(sym); err != nil {
			t.Fatal(err)
		}
	}
	d.Drain()
	if d.Received() != received {
		t.Errorf("duplicates counted as received: %d -> %d", received, d.Received())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if out := d.outstandingBuffers(); out != n {
		t.Errorf("%d buffers outstanding after Close, want %d", out, n)
	}
}

// TestShardedDecoderZeroAllocSaturated proves the saturated receive hot
// path allocates nothing: once decoding is complete, AddSymbol of an
// already-seen symbol must be allocation-free.
func TestShardedDecoderZeroAllocSaturated(t *testing.T) {
	const n, blockSize = 100, 256
	code, err := NewCode(n, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	blocks := shardedTestContent(n, blockSize, 11)
	enc, err := NewEncoder(code, blocks, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewShardedDecoder(code, blockSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var sym Symbol
	for i := 0; !d.Done(); i++ {
		if i > 8*n {
			t.Fatal("stalled")
		}
		sym = enc.EncodeID(uint64(i))
		if err := d.AddSymbol(sym); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			d.Drain()
		}
	}
	d.Drain()
	if avg := testing.AllocsPerRun(200, func() {
		if err := d.AddSymbol(sym); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("saturated AddSymbol allocates %.2f/op, want 0", avg)
	}
}

// TestShardedDecoderErrors covers argument validation and post-Close use.
func TestShardedDecoderErrors(t *testing.T) {
	code, err := NewCode(50, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedDecoder(code, 0, 4); err == nil {
		t.Error("zero block size accepted")
	}
	d, err := NewShardedDecoder(code, 16, 999)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() > 50 {
		t.Errorf("shards %d not clamped to block count", d.NumShards())
	}
	if err := d.AddSymbol(Symbol{ID: 1, Data: make([]byte, 8)}); err == nil {
		t.Error("wrong-size symbol accepted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := d.AddSymbol(Symbol{ID: 1, Data: make([]byte, 16)}); err == nil {
		t.Error("AddSymbol after Close accepted")
	}
}

// TestShardedDecoderAddSymbolsBatched checks the batched ingest path is
// equivalent to per-symbol AddSymbol: same completion, same recovered
// blocks, duplicates counted redundant, and a batch straddling
// completion doesn't wedge the buffer accounting.
func TestShardedDecoderAddSymbolsBatched(t *testing.T) {
	const n, blockSize = 150, 48
	code, err := NewCode(n, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	blocks := shardedTestContent(n, blockSize, 3)
	enc, err := NewEncoder(code, blocks, 17)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]Symbol, 3*n)
	for i := range stream {
		sym := enc.EncodeID(uint64(i)*0x9e3779b97f4a7c15 + 5)
		stream[i] = Symbol{ID: sym.ID, Data: append([]byte(nil), sym.Data...)}
		enc.Release(sym)
	}

	d, err := NewShardedDecoder(code, blockSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Feed in uneven batches, re-feeding each batch once (duplicates).
	for lo := 0; lo < len(stream) && !d.Done(); {
		hi := lo + 1 + lo%13
		if hi > len(stream) {
			hi = len(stream)
		}
		if err := d.AddSymbols(stream[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if err := d.AddSymbols(stream[lo:hi]); err != nil {
			t.Fatal(err)
		}
		d.Drain()
		lo = hi
	}
	if !d.Done() {
		t.Fatalf("batched ingest incomplete: %d/%d", d.Recovered(), n)
	}
	for i, b := range d.Blocks() {
		if !bytes.Equal(b, blocks[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	// Every batch was fed twice, so redundancies must have been counted.
	if d.Redundant() == 0 {
		t.Fatalf("duplicate batches not counted redundant (received=%d)", d.Received())
	}
	if err := d.AddSymbols(stream[:5]); err != nil {
		t.Fatal(err) // post-completion batches are absorbed as redundant
	}
	d.Drain()
	if got := d.outstandingBuffers(); got != n {
		// Each recovered block keeps exactly one buffer; every other
		// borrow must have been returned.
		t.Fatalf("%d buffers outstanding after batched ingest, want %d", got, n)
	}

	// A batch with a wrong-size payload is rejected atomically.
	bad := []Symbol{{ID: 1, Data: make([]byte, blockSize-1)}}
	if err := d.AddSymbols(bad); err == nil {
		t.Fatal("wrong-size batch accepted")
	}
	if err := d.AddSymbols(nil); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
}

// TestShardedDecoderAddSymbolsConcurrent hammers the batched path from
// several feeders under the race detector.
func TestShardedDecoderAddSymbolsConcurrent(t *testing.T) {
	const n, blockSize, feeders = 120, 32, 4
	code, err := NewCode(n, nil, 23)
	if err != nil {
		t.Fatal(err)
	}
	blocks := shardedTestContent(n, blockSize, 9)
	enc, err := NewEncoder(code, blocks, 31)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]Symbol, 4*n)
	for i := range stream {
		sym := enc.EncodeID(uint64(i)*0x9e3779b97f4a7c15 + 77)
		stream[i] = Symbol{ID: sym.ID, Data: append([]byte(nil), sym.Data...)}
		enc.Release(sym)
	}
	d, err := NewShardedDecoder(code, blockSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for lo := f * 16; lo < len(stream); lo += feeders * 16 {
				hi := lo + 16
				if hi > len(stream) {
					hi = len(stream)
				}
				if err := d.AddSymbols(stream[lo:hi]); err != nil {
					t.Error(err)
					return
				}
			}
		}(f)
	}
	wg.Wait()
	d.Drain()
	if !d.Done() {
		t.Fatalf("concurrent batched ingest incomplete: %d/%d", d.Recovered(), n)
	}
	for i, b := range d.Blocks() {
		if !bytes.Equal(b, blocks[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}
