package node

// fabric_test.go pins the connection-fabric acceptance criterion: a
// node fetching several contents from the same peer opens exactly one
// transport connection — every content rides the shared wire as a
// subchannel — and the same workload with the fabric disabled falls
// back to one dedicated connection per content.

import (
	"bytes"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"icd/internal/faultnet"
	"icd/internal/peer"
	"icd/internal/testutil"
)

// countingTransport wraps a Transport and counts successful dials.
type countingTransport struct {
	faultnet.Transport
	dials atomic.Int64
}

func (c *countingTransport) Dial(addr string) (net.Conn, error) {
	conn, err := c.Transport.Dial(addr)
	if err == nil {
		c.dials.Add(1)
	}
	return conn, err
}

// fetchThreeOverCountedDials runs the shared workload: a provider node
// serving three contents on an in-process pipe network, a consumer
// fetching all three concurrently through a dial-counting transport.
// Returns the number of connections the consumer opened.
func fetchThreeOverCountedDials(t *testing.T, disableFabric bool) int64 {
	t.Helper()
	pn := faultnet.NewPipeNet()

	provider := New(Options{Listen: "provider", Transport: pn, Tick: 10 * time.Millisecond})
	infos := make([]peer.ContentInfo, 3)
	datas := make([][]byte, 3)
	for i := range infos {
		infos[i], datas[i] = testContent(t, 0xFAB0+uint64(i), 150, 64)
		if err := provider.ServeFull(infos[i], datas[i], true); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := pn.Listen("provider")
	if err != nil {
		t.Fatal(err)
	}
	go provider.Serve(ln)
	defer provider.Close()

	tr := &countingTransport{Transport: pn.Node("consumer")}
	consumer := New(Options{
		Listen:        "consumer",
		Transport:     tr,
		Tick:          10 * time.Millisecond,
		DisableFabric: disableFabric,
		Fetch:         peer.FetchOptions{Batch: 16, Timeout: 10 * time.Second},
	})
	defer consumer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	transfers := make([]*Transfer, len(infos))
	for i, info := range infos {
		tx, err := consumer.StartFetch(ctx, info.ID, "provider")
		if err != nil {
			t.Fatal(err)
		}
		transfers[i] = tx
	}
	for i, tx := range transfers {
		res, err := tx.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || !bytes.Equal(res.Data, datas[i]) {
			t.Fatalf("content %#x not recovered", infos[i].ID)
		}
	}
	return tr.dials.Load()
}

func TestNodeFabricOneConnectionPerPeer(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	if got := fetchThreeOverCountedDials(t, false); got != 1 {
		t.Fatalf("fetching 3 contents from one peer used %d connections, want 1 (shared fabric wire)", got)
	}
}

func TestNodeDisableFabricDialsPerContent(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	if got := fetchThreeOverCountedDials(t, true); got < 3 {
		t.Fatalf("fabric disabled: 3 contents used %d connections, want >= 3 (one per content)", got)
	}
}
