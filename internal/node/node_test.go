package node

// node_test.go is the PR 5 acceptance scenario end to end, over real
// TCP: one node serves two distinct contents from a single listener,
// another node fetches both concurrently under a shared connection
// budget while serving everything it learns, and a third node then
// fetches from the second — proving the fetched replicas are live. Plus
// node-level store-budget eviction honoring pins, and unknown-content
// routing.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"icd/internal/fountain"
	"icd/internal/peer"
	"icd/internal/prng"
	"icd/internal/testutil"
)

// testContent builds deterministic content and metadata for a chosen id.
func testContent(t testing.TB, id uint64, nBlocks, blockSize int) (peer.ContentInfo, []byte) {
	t.Helper()
	rng := prng.New(0xBEEF ^ id)
	data := make([]byte, nBlocks*blockSize-blockSize/3)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	return peer.ContentInfo{
		ID:        id,
		NumBlocks: nBlocks,
		BlockSize: blockSize,
		OrigLen:   len(data),
		CodeSeed:  id ^ 0x1CD,
	}, data
}

// startNode serves n on a fresh localhost listener and returns the
// bound address; the node is closed at test cleanup.
func startNode(t *testing.T, n *Node) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go n.Serve(ln)
	t.Cleanup(func() { n.Close() })
	return ln.Addr().String()
}

// encodedSymbols produces count encoded symbols of the content.
func encodedSymbols(t *testing.T, info peer.ContentInfo, data []byte, count int, seed uint64) map[uint64][]byte {
	t.Helper()
	blocks, _, err := fountain.SplitIntoBlocks(data, info.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	code, err := fountain.NewCode(info.NumBlocks, nil, info.CodeSeed)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := fountain.NewEncoder(code, blocks, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64][]byte, count)
	for len(out) < count {
		sym := enc.Next()
		out[sym.ID] = append([]byte(nil), sym.Data...)
		enc.Release(sym)
	}
	return out
}

func TestNodeServesAndFetchesTwoContents(t *testing.T) {
	// Registered before the startNode cleanups, so (LIFO) the leak check
	// runs after every node has closed.
	t.Cleanup(testutil.CheckGoroutines(t))
	infoA, dataA := testContent(t, 0xA11CE, 100, 64)
	infoB, dataB := testContent(t, 0xB0B, 80, 64)

	provider := New(Options{Tick: 10 * time.Millisecond})
	if err := provider.ServeFull(infoA, dataA, true); err != nil {
		t.Fatal(err)
	}
	if err := provider.ServeFull(infoB, dataB, true); err != nil {
		t.Fatal(err)
	}
	providerAddr := startNode(t, provider)

	consumer := New(Options{
		Tick:     10 * time.Millisecond,
		MaxConns: 2,
		Fetch: peer.FetchOptions{
			Batch:   16,
			Timeout: 10 * time.Second,
		},
	})
	consumerAddr := startNode(t, consumer)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tA, err := consumer.StartFetch(ctx, infoA.ID, providerAddr)
	if err != nil {
		t.Fatal(err)
	}
	tB, err := consumer.StartFetch(ctx, infoB.ID, providerAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := consumer.StartFetch(ctx, infoA.ID, providerAddr); err == nil {
		t.Fatal("duplicate concurrent fetch accepted")
	}

	resA, err := tA.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := tB.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resA.Data, dataA) || !bytes.Equal(resB.Data, dataB) {
		t.Fatal("content mismatch through the multi-content node")
	}

	// Both transfers went through the provider's ONE listener.
	if got := provider.Mux().Stats().Connections; got < 2 {
		t.Fatalf("provider listener saw %d connections, want ≥ 2", got)
	}
	// The consumer now serves both replicas on its own single listener…
	if got := consumer.Mux().Contents(); len(got) != 2 {
		t.Fatalf("consumer serves %v, want both contents", got)
	}
	for _, st := range consumer.Contents() {
		if !st.Complete {
			t.Fatalf("replica %#x not marked complete: %+v", st.ID, st)
		}
	}
	// …and a re-fetch of a stored content is refused.
	if _, err := consumer.StartFetch(ctx, infoA.ID, providerAddr); err == nil {
		t.Fatal("re-fetch of a stored replica accepted")
	}

	// Third node: fetch content A from the *consumer* — the replica it
	// learned must be live, served from its one listener.
	third := New(Options{Tick: 10 * time.Millisecond})
	defer third.Close()
	res3, err := third.Fetch(ctx, infoA.ID, consumerAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res3.Data, dataA) {
		t.Fatal("replica served by the consumer is corrupt")
	}

	// Unknown content id through the provider's mux fails terminally.
	if _, err := third.Fetch(ctx, 0xDEAD, providerAddr); !errors.Is(err, peer.ErrUnknownContent) {
		t.Fatalf("unknown content fetch: err = %v, want ErrUnknownContent", err)
	}
}

func TestNodeStoreEvictionHonorsPins(t *testing.T) {
	const blockSize = 64
	infoA, dataA := testContent(t, 0xA, 40, blockSize)
	infoB, dataB := testContent(t, 0xB, 40, blockSize)
	infoC, dataC := testContent(t, 0xC, 40, blockSize)

	// Budget holds two 30-symbol replicas, not three.
	n := New(Options{Tick: time.Hour, StoreBudget: 2 * 30 * blockSize})
	defer n.Close()
	if err := n.ServePartial(infoA, encodedSymbols(t, infoA, dataA, 30, 1), true); err != nil {
		t.Fatal(err)
	}
	if err := n.ServePartial(infoB, encodedSymbols(t, infoB, dataB, 30, 2), false); err != nil {
		t.Fatal(err)
	}
	if err := n.ServePartial(infoC, encodedSymbols(t, infoC, dataC, 30, 3), false); err != nil {
		t.Fatal(err)
	}
	// The pinned replica (A, the coldest) must survive; the unpinned
	// cold one (B) is the eviction victim.
	if _, ok := n.Store().Get(infoA.ID); !ok {
		t.Fatalf("pinned replica evicted: %+v", n.Contents())
	}
	if _, ok := n.Store().Get(infoB.ID); ok {
		t.Fatalf("unpinned cold replica survived: %+v", n.Contents())
	}
	if _, ok := n.Store().Get(infoC.ID); !ok {
		t.Fatalf("fresh replica evicted: %+v", n.Contents())
	}
	// The evicted content is no longer served: its id left the mux.
	if got := n.Mux().Contents(); len(got) != 2 {
		t.Fatalf("mux serves %v, want 2 contents", got)
	}
	for _, id := range n.Mux().Contents() {
		if id == infoB.ID {
			t.Fatal("evicted replica still registered on the listener")
		}
	}
	// Unpinning is allowed and re-checks the budget (already satisfied
	// here, so nothing more is evicted).
	if !n.Pin(infoA.ID, false) {
		t.Fatal("unpin failed")
	}
	if n.Store().Len() != 2 || n.Store().Usage() > n.Store().Budget() {
		t.Fatalf("store wrong after unpin: %v", n.Store())
	}
}

func TestNodeBudgetSharedAcrossFetches(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	infoA, dataA := testContent(t, 0xAA, 90, 48)
	infoB, dataB := testContent(t, 0xBB, 90, 48)

	provider := New(Options{Tick: 10 * time.Millisecond})
	if err := provider.ServeFull(infoA, dataA, true); err != nil {
		t.Fatal(err)
	}
	if err := provider.ServeFull(infoB, dataB, true); err != nil {
		t.Fatal(err)
	}
	addr := startNode(t, provider)

	const budget = 3
	consumer := New(Options{
		Tick:     5 * time.Millisecond,
		MaxConns: budget,
		Fetch:    peer.FetchOptions{Batch: 8, Timeout: 10 * time.Second},
	})
	defer consumer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tA, err := consumer.StartFetch(ctx, infoA.ID, addr)
	if err != nil {
		t.Fatal(err)
	}
	tB, err := consumer.StartFetch(ctx, infoB.ID, addr)
	if err != nil {
		t.Fatal(err)
	}
	// The scheduler's invariant: the combined live-session count never
	// exceeds the budget (caps are per-orchestrator; sessions are what
	// the budget actually spends).
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		a := len(tA.Orchestrator().Sessions())
		b := len(tB.Orchestrator().Sessions())
		if a+b > budget {
			t.Fatalf("live sessions %d+%d exceed budget %d", a, b, budget)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := tA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := tB.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestNodeServeDuringFetchRefused pins addReplica's guard, the mirror
// of StartFetch's already-stored check: serving a content the node is
// currently fetching would clobber the fetch's store entry (and let a
// failing fetch delete the operator's replica), so it is refused — in
// either order.
func TestNodeServeDuringFetchRefused(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	info, data := testContent(t, 0xF, 60, 48)
	provider := New(Options{Tick: 10 * time.Millisecond})
	if err := provider.ServeFull(info, data, true); err != nil {
		t.Fatal(err)
	}
	addr := startNode(t, provider)

	consumer := New(Options{Tick: 10 * time.Millisecond, Fetch: peer.FetchOptions{
		Batch: 8, Timeout: 10 * time.Second,
	}})
	defer consumer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tr, err := consumer.StartFetch(ctx, info.ID, addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.ServeFull(info, data, true); err == nil {
		t.Fatal("ServeFull over an in-flight fetch accepted")
	}
	if _, err := tr.Wait(); err != nil {
		t.Fatal(err)
	}
	// After the fetch stored the replica, serving it again is refused as
	// a duplicate registration rather than clobbering the store entry.
	if err := consumer.ServeFull(info, data, true); err == nil {
		t.Fatal("ServeFull over a stored replica accepted")
	}
}
