package node

// window_test.go pins the credit half of the node scheduler: under a
// WindowBudget, concurrent fetches over one fabric wire get
// utility-apportioned channel windows, every fetch keeps its floor, the
// shares sum to the budget, and the transfers complete intact while the
// rebalance resizes windows live. Run under -race this is the
// concurrency gate on the Orchestrator's window plumbing
// (SetChannelWindow vs live channels) end to end.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"icd/internal/faultnet"
	"icd/internal/peer"
	"icd/internal/testutil"
)

func TestNodeWindowBudgetRebalance(t *testing.T) {
	t.Cleanup(testutil.CheckGoroutines(t))
	// A delivery-latency link makes the credit window the binding
	// throughput constraint (≈ window per round trip), so the transfers
	// are slow enough to observe mid-flight without being large.
	sn := faultnet.NewShapedNet(1)
	sn.SetDeliveryLatency(true)
	sn.SetDefaultClass(faultnet.LinkClass{Latency: 2 * time.Millisecond})

	provider := New(Options{Listen: "provider", Transport: sn, Tick: 10 * time.Millisecond})
	infos := make([]peer.ContentInfo, 3)
	datas := make([][]byte, 3)
	for i := range infos {
		infos[i], datas[i] = testContent(t, 0xC4ED+uint64(i), 300, 64)
		if err := provider.ServeFull(infos[i], datas[i], true); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := sn.Listen("provider")
	if err != nil {
		t.Fatal(err)
	}
	go provider.Serve(ln)
	defer provider.Close()

	const budget = 96
	consumer := New(Options{
		Listen:       "consumer",
		Transport:    sn.Node("consumer"),
		Tick:         5 * time.Millisecond,
		MaxConns:     6,
		WindowBudget: budget,
		Fetch:        peer.FetchOptions{Batch: 16, Timeout: 10 * time.Second},
	})
	defer consumer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	transfers := make([]*Transfer, len(infos))
	for i, info := range infos {
		tx, err := consumer.StartFetch(ctx, info.ID, "provider")
		if err != nil {
			t.Fatal(err)
		}
		transfers[i] = tx
	}

	// While all three are in flight, the rebalance must settle the
	// windows onto the budget: every fetch at or above its floor, the
	// shares summing to exactly the budget (apportion hands all of it
	// out). The split itself shifts with measured rates — only the
	// invariants are stable.
	settled := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !settled {
		anyDone := false
		for _, tx := range transfers {
			select {
			case <-tx.st.done:
				anyDone = true
			default:
			}
		}
		if anyDone {
			break
		}
		sum, floored := 0, true
		for _, tx := range transfers {
			win := tx.Orchestrator().ChannelWindow()
			sum += win
			if win < minChannelWindow {
				floored = false
			}
		}
		settled = floored && sum == budget
		time.Sleep(time.Millisecond)
	}
	if !settled {
		t.Errorf("window shares never settled onto the budget (floor %d each, sum %d)",
			minChannelWindow, budget)
	}

	for i, tx := range transfers {
		res, err := tx.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || !bytes.Equal(res.Data, datas[i]) {
			t.Fatalf("content %#x not recovered under a window budget", infos[i].ID)
		}
	}
}
