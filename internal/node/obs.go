package node

// obs.go binds the node to its observability registry: store occupancy
// and eviction lifecycle, the scheduler's per-tick slot and window
// apportionment, and callback gauges over state the node already tracks
// (banned peers, fabric credit in flight). A node always has a registry
// — New creates one when Options.Obs is nil — so every layer below
// (mux, fabric, each fetch's orchestrator) shares a single snapshot.

import (
	"fmt"

	"icd/internal/obs"
)

// nodeMetrics caches the registry handles the node updates itself;
// layers below hold their own.
type nodeMetrics struct {
	storeAdmits    *obs.Counter // node.store{event=admit}
	storeEvictions *obs.Counter // node.store{event=evict}
	slotsAlloc     *obs.Gauge   // node.slots_allocated
	windowAlloc    *obs.Gauge   // node.window_allocated
}

func newNodeMetrics(r *obs.Registry) nodeMetrics {
	return nodeMetrics{
		storeAdmits:    r.Counter("node.store{event=admit}"),
		storeEvictions: r.Counter("node.store{event=evict}"),
		slotsAlloc:     r.Gauge("node.slots_allocated"),
		windowAlloc:    r.Gauge("node.window_allocated"),
	}
}

// registerGauges installs the callback gauges that read node state on
// demand at snapshot time instead of being pushed on a hot path.
func (n *Node) registerGauges() {
	n.obs.GaugeFunc("node.store_bytes", func() int64 { return n.store.Usage() })
	n.obs.GaugeFunc("node.store_contents", func() int64 { return int64(n.store.Len()) })
	n.obs.GaugeFunc("node.banned_peers", func() int64 { return int64(n.penalties.BannedCount()) })
	n.obs.GaugeFunc("node.fetches_active", func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return int64(len(n.fetches))
	})
	if n.fabric != nil {
		n.obs.GaugeFunc("node.window_inflight", func() int64 { return int64(n.fabric.TotalWindow()) })
		n.obs.GaugeFunc("node.wires", func() int64 { return int64(n.fabric.Wires()) })
	}
}

// traceContent records a store lifecycle event for one content id.
func (n *Node) traceContent(event string, id uint64, detail string) {
	n.obs.Trace(event, fmt.Sprintf("%#x", id), detail)
}
