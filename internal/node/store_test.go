package node

// store_test.go is the replica-budget table: eviction order under the
// utility/LRU ranking, pin and active-fetch shields, and budget
// shrink/grow behavior — all without any network.

import (
	"testing"
)

func TestStoreEvictionTable(t *testing.T) {
	type content struct {
		id      uint64
		bytes   int64
		pinned  bool
		active  bool
		touches int // extra demand events after Put
	}
	cases := []struct {
		name        string
		budget      int64
		contents    []content
		wantEvicted []uint64
		wantKept    []uint64
	}{
		{
			name:   "under budget keeps everything",
			budget: 100,
			contents: []content{
				{id: 1, bytes: 40}, {id: 2, bytes: 40},
			},
			wantKept: []uint64{1, 2},
		},
		{
			name:   "coldest replica goes first",
			budget: 100,
			contents: []content{
				{id: 1, bytes: 40},             // cold: no demand after Put
				{id: 2, bytes: 40, touches: 5}, // hot
				{id: 3, bytes: 40},             // newest: fresh recency
			},
			wantEvicted: []uint64{1},
			wantKept:    []uint64{2, 3},
		},
		{
			// The Put that admits id 3 shields it (freshest demand), the
			// pin shields id 1 — so the hot-but-unshielded id 2 yields.
			name:   "pinned replica survives even when coldest",
			budget: 100,
			contents: []content{
				{id: 1, bytes: 40, pinned: true}, // cold but pinned
				{id: 2, bytes: 40, touches: 3},
				{id: 3, bytes: 40},
			},
			wantEvicted: []uint64{2},
			wantKept:    []uint64{1, 3},
		},
		{
			name:   "active fetch is shielded",
			budget: 100,
			contents: []content{
				{id: 1, bytes: 40, active: true},
				{id: 2, bytes: 40, touches: 3},
				{id: 3, bytes: 40}, // admission shields the newcomer too
			},
			wantEvicted: []uint64{2},
			wantKept:    []uint64{1, 3},
		},
		{
			name:   "all pinned stays over budget",
			budget: 50,
			contents: []content{
				{id: 1, bytes: 40, pinned: true},
				{id: 2, bytes: 40, pinned: true},
			},
			wantKept: []uint64{1, 2},
		},
		{
			name:   "multiple evictions to fit one big replica",
			budget: 100,
			contents: []content{
				{id: 1, bytes: 30},
				{id: 2, bytes: 30},
				{id: 3, bytes: 90, touches: 1},
			},
			wantEvicted: []uint64{1, 2},
			wantKept:    []uint64{3},
		},
		{
			name:   "unlimited budget never evicts",
			budget: 0,
			contents: []content{
				{id: 1, bytes: 1 << 40}, {id: 2, bytes: 1 << 40},
			},
			wantKept: []uint64{1, 2},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewStore(c.budget)
			var evicted []uint64
			for _, ct := range c.contents {
				evicted = append(evicted, s.Put(ct.id, ct.bytes, ct.pinned, ct.active)...)
				for i := 0; i < ct.touches; i++ {
					s.Touch(ct.id)
				}
			}
			if !sameIDs(evicted, c.wantEvicted) {
				t.Fatalf("evicted %v, want %v", evicted, c.wantEvicted)
			}
			if s.Len() != len(c.wantKept) {
				t.Fatalf("kept %d entries, want %d (%+v)", s.Len(), len(c.wantKept), s.Contents())
			}
			for _, id := range c.wantKept {
				if _, ok := s.Get(id); !ok {
					t.Fatalf("content %d missing (kept: %+v)", id, s.Contents())
				}
			}
		})
	}
}

func sameIDs(got, want []uint64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestStoreBudgetShrinkEvicts(t *testing.T) {
	s := NewStore(0)
	s.Put(1, 40, false, false)
	s.Put(2, 40, true, false)
	s.Put(3, 40, false, false)
	s.Touch(3)
	evicted := s.SetBudget(80)
	if !sameIDs(evicted, []uint64{1}) {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	if s.Usage() != 80 {
		t.Fatalf("usage %d, want 80", s.Usage())
	}
}

func TestStoreCompleteLiftsActiveShield(t *testing.T) {
	s := NewStore(60)
	s.Put(1, 40, false, true) // active fetch: over budget soon but shielded
	s.Put(2, 40, true, false)
	if s.Len() != 2 {
		t.Fatalf("active entry evicted prematurely: %+v", s.Contents())
	}
	// Fetch finishes: the shield drops and the unpinned replica must now
	// yield to the budget (the pinned one cannot move).
	evicted := s.Complete(1)
	if !sameIDs(evicted, []uint64{1}) {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	st, ok := s.Get(2)
	if !ok || !st.Pinned {
		t.Fatalf("pinned survivor wrong: %+v ok=%v", st, ok)
	}
}

func TestStoreUnpinThenEnforce(t *testing.T) {
	s := NewStore(50)
	s.Put(1, 40, true, false)
	s.Put(2, 40, true, false) // over budget, both pinned: nothing evictable
	if got := s.EnforceBudget(); len(got) != 0 {
		t.Fatalf("evicted pinned replicas: %v", got)
	}
	if !s.Pin(1, false) {
		t.Fatal("unpin failed")
	}
	if got := s.EnforceBudget(); !sameIDs(got, []uint64{1}) {
		t.Fatalf("evicted %v, want [1] after unpin", got)
	}
}

func TestStoreRemoveAndGet(t *testing.T) {
	s := NewStore(0)
	s.Put(1, 10, false, false)
	if st, ok := s.Get(1); !ok || st.Bytes != 10 || st.Hits != 1 {
		t.Fatalf("Get after Put: %+v ok=%v", st, ok)
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("entry survived Remove")
	}
	if s.Pin(1, true) {
		t.Fatal("Pin invented an entry")
	}
	if got := s.UpdateBytes(1, 99); got != nil {
		t.Fatalf("UpdateBytes on unknown id evicted %v", got)
	}
}

// TestStorePutNeverEvictsItself pins Put's shield: the entry just put
// is the freshest demand and must not be the budget's victim, even when
// its score is the lowest — colder history yields instead.
func TestStorePutNeverEvictsItself(t *testing.T) {
	s := NewStore(100)
	s.Put(1, 60, false, false)
	for i := 0; i < 5; i++ {
		s.Touch(1) // make the incumbent hot: the newcomer scores lower
	}
	evicted := s.Put(2, 50, false, false)
	if !sameIDs(evicted, []uint64{1}) {
		t.Fatalf("evicted %v, want [1] (never the id just put)", evicted)
	}
	if _, ok := s.Get(2); !ok {
		t.Fatal("freshly put entry missing")
	}
}
