package node

// sched_test.go tables the cross-content budget apportionment:
// guaranteed minimums, proportional division by progress rate, yielding
// by starved and near-complete fetches, deterministic remainder
// handling — for both currencies, connection slots and credit windows —
// and the window→pipeline-depth conversion.

import "testing"

func TestAllocateSlotsTable(t *testing.T) {
	cases := []struct {
		name  string
		total int
		sigs  []fetchSignal
		want  []int
	}{
		{
			name:  "no fetches",
			total: 8,
			sigs:  nil,
			want:  nil,
		},
		{
			name:  "budget smaller than fetch count still guarantees one each",
			total: 1,
			sigs:  []fetchSignal{{rate: 5}, {rate: 1}, {}},
			want:  []int{1, 1, 1},
		},
		{
			name:  "no signal spreads evenly",
			total: 6,
			sigs:  []fetchSignal{{}, {}, {}},
			want:  []int{2, 2, 2},
		},
		{
			name:  "even spread remainder goes to earlier fetches",
			total: 8,
			sigs:  []fetchSignal{{}, {}, {}},
			want:  []int{3, 3, 2},
		},
		{
			name:  "proportional to rate",
			total: 8,
			sigs:  []fetchSignal{{rate: 30}, {rate: 10}},
			// 1+1 base; extra 6 splits 4.5/1.5, equal remainders tie-break
			// to the earlier fetch → 6/2.
			want: []int{6, 2},
		},
		{
			name:  "starved fetch yields its share",
			total: 6,
			sigs:  []fetchSignal{{rate: 10}, {starved: true}},
			want:  []int{5, 1},
		},
		{
			name:  "near-complete fetch yields its share",
			total: 6,
			sigs:  []fetchSignal{{rate: 4, nearComplete: true}, {rate: 1}},
			want:  []int{1, 5},
		},
		{
			name:  "all yielding spreads evenly",
			total: 4,
			sigs:  []fetchSignal{{starved: true}, {nearComplete: true}},
			want:  []int{2, 2},
		},
		{
			// The satellite fix: with no rate signal, fallback share goes
			// only to fetches that have not yielded — a starved fetch must
			// not absorb slots a fresh sibling could use.
			name:  "no-signal fallback skips yielding fetches",
			total: 8,
			sigs:  []fetchSignal{{starved: true}, {}, {nearComplete: true}, {}},
			want:  []int{1, 3, 1, 3},
		},
		{
			name:  "no-signal fallback remainder lands on earlier non-yielding fetch",
			total: 6,
			sigs:  []fetchSignal{{}, {starved: true}, {}},
			want:  []int{3, 1, 2},
		},
		{
			// A yielding fetch with a positive rate still weighs zero: the
			// rate path must not resurrect its share either.
			name:  "yielding rate ignored in weighted split",
			total: 9,
			sigs:  []fetchSignal{{rate: 100, starved: true}, {rate: 2}, {rate: 1}},
			want:  []int{1, 5, 3},
		},
		{
			name:  "equal rates tie-break to earlier fetch",
			total: 5,
			sigs:  []fetchSignal{{rate: 2}, {rate: 2}},
			want:  []int{3, 2},
		},
		{
			name:  "single fetch absorbs everything",
			total: 7,
			sigs:  []fetchSignal{{rate: 1}},
			want:  []int{7},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := allocateSlots(c.total, c.sigs)
			if len(got) != len(c.want) {
				t.Fatalf("allocateSlots = %v, want %v", got, c.want)
			}
			sum := 0
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("allocateSlots = %v, want %v", got, c.want)
				}
				sum += got[i]
				if got[i] < 1 {
					t.Fatalf("fetch %d allocated %d slots (<1 would wind it down)", i, got[i])
				}
			}
			// Invariant: every slot is handed out, and the budget is only
			// exceeded by the one-per-fetch guarantee.
			max := c.total
			if len(c.sigs) > max {
				max = len(c.sigs)
			}
			if len(c.sigs) > 0 && sum != max {
				t.Fatalf("allocated %d slots, want %d", sum, max)
			}
		})
	}
}

func TestAllocateWindowsTable(t *testing.T) {
	cases := []struct {
		name   string
		budget int
		sigs   []fetchSignal
		want   []int
	}{
		{
			name:   "budget below the floors still guarantees the minimum",
			budget: 8,
			sigs:   []fetchSignal{{rate: 5}, {}},
			want:   []int{minChannelWindow, minChannelWindow},
		},
		{
			name:   "proportional to rate above the floors",
			budget: 128,
			// Floors take 32; the extra 96 splits 72/24.
			sigs: []fetchSignal{{rate: 30}, {rate: 10}},
			want: []int{88, 40},
		},
		{
			name:   "starved fetch keeps only its floor",
			budget: 96,
			sigs:   []fetchSignal{{rate: 10}, {starved: true}},
			want:   []int{80, 16},
		},
		{
			name:   "no-signal fallback skips yielding fetches",
			budget: 64,
			sigs:   []fetchSignal{{}, {nearComplete: true}},
			want:   []int{48, 16},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := allocateWindows(c.budget, c.sigs)
			if len(got) != len(c.want) {
				t.Fatalf("allocateWindows = %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("allocateWindows = %v, want %v", got, c.want)
				}
				if got[i] < minChannelWindow {
					t.Fatalf("fetch %d allocated window %d < floor %d", i, got[i], minChannelWindow)
				}
			}
		})
	}
}

func TestDepthCap(t *testing.T) {
	cases := []struct {
		window, batch, maxDepth, want int
	}{
		{window: 256, batch: 64, maxDepth: 16, want: 4},
		{window: 64, batch: 64, maxDepth: 16, want: 1},
		{window: 16, batch: 64, maxDepth: 16, want: 1},  // floor: never zero
		{window: 40, batch: 16, maxDepth: 16, want: 3},  // rounds up: 2 would idle 8 frames
		{window: 4096, batch: 64, maxDepth: 16, want: 16}, // clamped to max
		{window: 4096, batch: 64, maxDepth: 0, want: 64},  // no max configured
		{window: 128, batch: 0, maxDepth: 8, want: 8},     // degenerate batch
	}
	for _, c := range cases {
		if got := depthCap(c.window, c.batch, c.maxDepth); got != c.want {
			t.Errorf("depthCap(%d, %d, %d) = %d, want %d",
				c.window, c.batch, c.maxDepth, got, c.want)
		}
	}
}
