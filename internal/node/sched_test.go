package node

// sched_test.go tables the cross-content slot allocator: guaranteed
// minimums, proportional division by progress rate, yielding by starved
// and near-complete fetches, and deterministic remainder handling.

import "testing"

func TestAllocateSlotsTable(t *testing.T) {
	cases := []struct {
		name  string
		total int
		sigs  []fetchSignal
		want  []int
	}{
		{
			name:  "no fetches",
			total: 8,
			sigs:  nil,
			want:  nil,
		},
		{
			name:  "budget smaller than fetch count still guarantees one each",
			total: 1,
			sigs:  []fetchSignal{{rate: 5}, {rate: 1}, {}},
			want:  []int{1, 1, 1},
		},
		{
			name:  "no signal spreads evenly",
			total: 6,
			sigs:  []fetchSignal{{}, {}, {}},
			want:  []int{2, 2, 2},
		},
		{
			name:  "even spread remainder goes to earlier fetches",
			total: 8,
			sigs:  []fetchSignal{{}, {}, {}},
			want:  []int{3, 3, 2},
		},
		{
			name:  "proportional to rate",
			total: 8,
			sigs:  []fetchSignal{{rate: 30}, {rate: 10}},
			// 1+1 base; extra 6 splits 4.5/1.5, equal remainders tie-break
			// to the earlier fetch → 6/2.
			want: []int{6, 2},
		},
		{
			name:  "starved fetch yields its share",
			total: 6,
			sigs:  []fetchSignal{{rate: 10}, {starved: true}},
			want:  []int{5, 1},
		},
		{
			name:  "near-complete fetch yields its share",
			total: 6,
			sigs:  []fetchSignal{{rate: 4, nearComplete: true}, {rate: 1}},
			want:  []int{1, 5},
		},
		{
			name:  "all yielding spreads evenly",
			total: 4,
			sigs:  []fetchSignal{{starved: true}, {nearComplete: true}},
			want:  []int{2, 2},
		},
		{
			name:  "equal rates tie-break to earlier fetch",
			total: 5,
			sigs:  []fetchSignal{{rate: 2}, {rate: 2}},
			want:  []int{3, 2},
		},
		{
			name:  "single fetch absorbs everything",
			total: 7,
			sigs:  []fetchSignal{{rate: 1}},
			want:  []int{7},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := allocateSlots(c.total, c.sigs)
			if len(got) != len(c.want) {
				t.Fatalf("allocateSlots = %v, want %v", got, c.want)
			}
			sum := 0
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("allocateSlots = %v, want %v", got, c.want)
				}
				sum += got[i]
				if got[i] < 1 {
					t.Fatalf("fetch %d allocated %d slots (<1 would wind it down)", i, got[i])
				}
			}
			// Invariant: every slot is handed out, and the budget is only
			// exceeded by the one-per-fetch guarantee.
			max := c.total
			if len(c.sigs) > max {
				max = len(c.sigs)
			}
			if len(c.sigs) > 0 && sum != max {
				t.Fatalf("allocated %d slots, want %d", sum, max)
			}
		})
	}
}
