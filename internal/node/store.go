package node

// store.go is the replica-budget half of the node: a registry of every
// content the node holds (serving replicas and in-flight fetches) under
// one configurable byte budget. When the budget is exceeded, whole
// unpinned replicas are evicted in utility/LRU order — which contents a
// node keeps *is* the performance knob once a node stores many working
// sets (Ayyasamy's QoS-aware replica management; Leconte et al.,
// adaptive CDN replication) — while pinned and actively-fetching
// entries are never touched. The store is pure bookkeeping: it owns no
// payloads and no sockets; the Node reacts to eviction decisions by
// unregistering replicas from its listener.

import (
	"fmt"
	"sort"
	"sync"
)

// ContentStatus is one store entry's externally visible state.
type ContentStatus struct {
	// ID is the content id; Bytes its accounted storage footprint.
	ID    uint64
	Bytes int64
	// Pinned replicas are never evicted; Active marks an in-flight
	// fetch (also never evicted); Complete marks a fully recovered
	// replica.
	Pinned, Active, Complete bool
	// Hits counts demand events (inbound HELLOs routed to the replica,
	// plus local touches); the eviction ranking weighs them against
	// recency.
	Hits int64
}

// Store is the node's content registry under a byte budget. It is safe
// for concurrent use. The zero value is not usable; call NewStore.
type Store struct {
	mu      sync.Mutex
	budget  int64 // bytes; <= 0 = unlimited
	clock   int64 // logical access clock driving the LRU half of the ranking
	entries map[uint64]*storeEntry
}

// storeEntry is one tracked content.
type storeEntry struct {
	status   ContentStatus
	lastUsed int64 // store clock at the last demand event
}

// NewStore creates a content store with the given byte budget
// (<= 0 = unlimited).
func NewStore(budget int64) *Store {
	return &Store{budget: budget, entries: make(map[uint64]*storeEntry)}
}

// SetBudget replaces the byte budget (<= 0 = unlimited) and returns the
// ids of replicas evicted to satisfy a shrink.
func (s *Store) SetBudget(budget int64) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = budget
	return s.enforceLocked()
}

// Budget returns the current byte budget (<= 0 = unlimited).
func (s *Store) Budget() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// Put registers a content (or updates an existing registration's size
// and flags), then enforces the budget. It returns the ids of replicas
// evicted to make room — never the id just put, which counts as fresh
// demand. An entry that cannot fit even after evicting everything
// evictable is kept (the store reports over-budget via Usage; it does
// not refuse content the caller already holds).
func (s *Store) Put(id uint64, bytes int64, pinned, active bool) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[id]
	if e == nil {
		e = &storeEntry{status: ContentStatus{ID: id}}
		s.entries[id] = e
	}
	e.status.Bytes = bytes
	e.status.Pinned = pinned
	e.status.Active = active
	s.touchLocked(e)
	return s.enforceExceptLocked(&id)
}

// UpdateBytes revises an entry's accounted size (a live fetch's working
// set growing) and enforces the budget, returning any evicted ids.
// Unknown ids are ignored.
func (s *Store) UpdateBytes(id uint64, bytes int64) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[id]
	if e == nil {
		return nil
	}
	e.status.Bytes = bytes
	return s.enforceLocked()
}

// Complete marks an entry's fetch finished: no longer active (it
// becomes evictable unless pinned), flagged complete. Unknown ids are
// ignored. It returns any ids evicted now that the entry lost its
// active shield.
func (s *Store) Complete(id uint64) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[id]
	if e == nil {
		return nil
	}
	e.status.Active = false
	e.status.Complete = true
	return s.enforceLocked()
}

// Pin sets or clears an entry's pin and reports whether the id was
// known. Unpinning may trigger eviction at the next budget enforcement,
// not immediately.
func (s *Store) Pin(id uint64, pinned bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[id]
	if e == nil {
		return false
	}
	e.status.Pinned = pinned
	return true
}

// Touch records a demand event for id (an inbound HELLO routed to the
// replica): it refreshes the entry's recency and bumps its hit count.
// Unknown ids are ignored (a routed HELLO for an unregistered content
// is the mux's unknown-content path, not demand on a replica).
func (s *Store) Touch(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[id]; e != nil {
		s.touchLocked(e)
	}
}

// Remove deletes an entry outright (caller-driven, not an eviction) and
// reports whether it existed.
func (s *Store) Remove(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; !ok {
		return false
	}
	delete(s.entries, id)
	return true
}

// Get returns a snapshot of one entry's status.
func (s *Store) Get(id uint64) (ContentStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[id]; e != nil {
		return e.status, true
	}
	return ContentStatus{}, false
}

// Usage returns the total accounted bytes across all entries.
func (s *Store) Usage() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usageLocked()
}

// Len returns the number of tracked contents.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Contents returns status snapshots for every entry, sorted by id.
func (s *Store) Contents() []ContentStatus {
	s.mu.Lock()
	out := make([]ContentStatus, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.status)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EnforceBudget re-checks the budget (a housekeeping tick calls it
// after revising live sizes) and returns the evicted ids.
func (s *Store) EnforceBudget() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enforceLocked()
}

// String renders a compact one-line summary for logs.
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("store{%d contents, %dB used, budget %dB}",
		len(s.entries), s.usageLocked(), s.budget)
}

func (s *Store) usageLocked() int64 {
	var total int64
	for _, e := range s.entries {
		total += e.status.Bytes
	}
	return total
}

func (s *Store) touchLocked(e *storeEntry) {
	s.clock++
	e.lastUsed = s.clock
	e.status.Hits++
}

// evictScore ranks replicas for eviction: lower scores go first. The
// score blends utility (demand hits) with recency (LRU): hits per unit
// of age on the store's logical access clock. A replica nobody asks for
// scores near zero however young; a hot replica stays high even as the
// clock advances. Deterministic given a deterministic access sequence.
func (s *Store) evictScore(e *storeEntry) float64 {
	age := s.clock - e.lastUsed + 1
	return float64(e.status.Hits) / float64(age)
}

// enforceLocked evicts lowest-scoring unpinned, inactive replicas until
// usage fits the budget (or nothing evictable remains), returning the
// evicted ids in eviction order. Callers hold s.mu.
func (s *Store) enforceLocked() []uint64 {
	return s.enforceExceptLocked(nil)
}

// enforceExceptLocked is enforceLocked shielding one id from eviction —
// Put protects the entry it just registered (freshest possible demand;
// evicting it would make the call a silent no-op for the caller, who
// just arranged to serve it). A nil except shields nothing; the
// sentinel is out-of-band so every content id, 0 included, gets the
// protection. Callers hold s.mu.
func (s *Store) enforceExceptLocked(except *uint64) []uint64 {
	if s.budget <= 0 {
		return nil
	}
	var evicted []uint64
	for s.usageLocked() > s.budget {
		var victim *storeEntry
		var victimScore float64
		for _, e := range s.entries {
			if e.status.Pinned || e.status.Active || e.status.Bytes <= 0 ||
				(except != nil && e.status.ID == *except) {
				continue
			}
			score := s.evictScore(e)
			if victim == nil || score < victimScore ||
				(score == victimScore && e.status.ID < victim.status.ID) {
				victim, victimScore = e, score
			}
		}
		if victim == nil {
			return evicted // only pinned/active/shielded replicas left: stay over budget
		}
		delete(s.entries, victim.status.ID)
		evicted = append(evicted, victim.status.ID)
	}
	return evicted
}
