package node

// sched.go is the cross-content scheduling policy: pure functions
// dividing the node's global budgets across its concurrent fetches by
// marginal utility. Two budgets share one apportionment: connection
// slots (how many sessions a fetch may run) and, since PR 9, credit
// windows (how many symbol frames a fetch's channels may keep in
// flight on the shared fabric wires). Every active fetch keeps a floor
// share (a fetch with zero slots winds itself down, and a channel with
// zero window cannot move); the rest goes where it buys the most
// throughput — proportionally to each fetch's recent progress rate —
// while starved fetches (no measurable progress, so a bigger share of
// the same peers buys nothing) and near-complete fetches (the decode
// tail needs few fresh symbols) yield their share to fast-moving
// transfers. Keeping the policy pure functions makes it table-testable
// without a swarm.

// minChannelWindow is the per-fetch floor of a window apportionment, in
// symbol frames: even a yielding fetch keeps enough window that one
// round-trip of symbols is always in flight, so its sessions measure
// progress instead of starving into a false "stalled" verdict.
const minChannelWindow = 16

// fetchSignal is one active fetch's scheduling inputs, sampled by the
// node's housekeeping tick.
type fetchSignal struct {
	rate         float64 // recent decode progress, symbols/sec
	nearComplete bool    // working set ≥ the source-block count: decode tail
	starved      bool    // no recent progress: extra slots buy nothing
}

// yielding reports whether the fetch should give up its share of the
// extra budget.
func (f fetchSignal) yielding() bool { return f.nearComplete || f.starved }

// allocateSlots divides `total` connection slots across the given
// fetches: one guaranteed slot each (total is effectively raised to the
// fetch count when smaller — a fetch with zero slots would wind down,
// not wait), the rest proportionally to progress rate.
func allocateSlots(total int, sigs []fetchSignal) []int {
	return apportion(total, 1, sigs)
}

// allocateWindows divides a node-wide credit-window budget (symbol
// frames) across the fetches, minChannelWindow guaranteed each — the
// utility-sized windows the rebalance pushes down to every fetch's
// fabric channels.
func allocateWindows(budget int, sigs []fetchSignal) []int {
	return apportion(budget, minChannelWindow, sigs)
}

// depthCap converts a fetch's window share into a pipeline-depth cap:
// the number of `batch`-sized requests needed to cover the window
// (rounded up — a truncated cap would leave part of the window
// permanently idle), clamped to [1, maxDepth]. Requests beyond that
// would solicit symbols the window cannot admit — duplicates-in-waiting
// the AIMD ramp would otherwise have to discover by backing off.
func depthCap(window, batch, maxDepth int) int {
	if batch < 1 {
		batch = 1
	}
	d := (window + batch - 1) / batch
	if d < 1 {
		d = 1
	}
	if maxDepth > 0 && d > maxDepth {
		d = maxDepth
	}
	return d
}

// apportion divides `total` units across the fetches: `floor` units
// guaranteed each (total is effectively raised to nf·floor when
// smaller), the rest proportionally to progress rate with
// largest-remainder rounding. Yielding fetches weigh zero; when no
// fetch has a usable rate the extra spreads evenly across the
// non-yielding fetches — a starved or near-complete fetch never absorbs
// fallback share while a fresh sibling could use it — and across
// everyone only when every fetch yields (all stalled). The result is
// index-aligned with sigs and deterministic.
func apportion(total, floor int, sigs []fetchSignal) []int {
	nf := len(sigs)
	if nf == 0 {
		return nil
	}
	shares := make([]int, nf)
	for i := range shares {
		shares[i] = floor
	}
	extra := total - nf*floor
	if extra <= 0 {
		return shares
	}
	weights := make([]float64, nf)
	sum := 0.0
	for i, sig := range sigs {
		if !sig.yielding() && sig.rate > 0 {
			weights[i] = sig.rate
			sum += sig.rate
		}
	}
	if sum == 0 {
		// No rate signal to differentiate on. Startup fetches (not yet
		// measured) still deserve the budget; yielding fetches have told
		// us more buys nothing, so they are excluded unless everyone is
		// yielding. Earlier fetches absorb the remainder.
		elig := make([]int, 0, nf)
		for i, sig := range sigs {
			if !sig.yielding() {
				elig = append(elig, i)
			}
		}
		if len(elig) == 0 {
			for i := range sigs {
				elig = append(elig, i)
			}
		}
		for j := 0; extra > 0; j = (j + 1) % len(elig) {
			shares[elig[j]]++
			extra--
		}
		return shares
	}
	// Largest-remainder apportionment of the extra by rate.
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, nf)
	assigned := 0
	for i, w := range weights {
		exact := float64(extra) * w / sum
		whole := int(exact)
		shares[i] += whole
		assigned += whole
		rems[i] = rem{idx: i, frac: exact - float64(whole)}
	}
	// Stable selection: biggest fractional remainder first, index as the
	// deterministic tie-break.
	for assigned < extra {
		best := -1
		for i, r := range rems {
			if r.idx < 0 {
				continue
			}
			if best < 0 || r.frac > rems[best].frac {
				best = i
			}
		}
		if best < 0 {
			break
		}
		shares[rems[best].idx]++
		rems[best].idx = -1
		assigned++
	}
	return shares
}
