package node

// sched.go is the cross-content scheduling policy: a pure function
// dividing the node's global connection budget across its concurrent
// fetches by marginal utility. Every active fetch keeps one slot (an
// orchestrator with zero sessions winds itself down, which is a
// completion decision, not a scheduling one); the remaining slots go
// where they buy the most throughput — proportionally to each fetch's
// recent progress rate — while starved fetches (no measurable progress,
// so more connections to the same peers buy nothing) and near-complete
// fetches (the decode tail needs few fresh symbols) yield their share
// to fast-moving transfers. Keeping the policy a pure function makes it
// table-testable without a swarm.

// fetchSignal is one active fetch's scheduling inputs, sampled by the
// node's housekeeping tick.
type fetchSignal struct {
	rate         float64 // recent decode progress, symbols/sec
	nearComplete bool    // working set ≥ the source-block count: decode tail
	starved      bool    // no recent progress: extra slots buy nothing
}

// yielding reports whether the fetch should give up its share of the
// extra slots.
func (f fetchSignal) yielding() bool { return f.nearComplete || f.starved }

// allocateSlots divides `total` connection slots across the given
// fetches: one guaranteed slot each (total is effectively raised to the
// fetch count when smaller — a fetch with zero slots would wind down,
// not wait), the rest proportionally to progress rate with
// largest-remainder rounding. Yielding fetches weigh zero; when every
// fetch yields (startup, all stalled) the extra slots spread evenly.
// The result is index-aligned with sigs and deterministic.
func allocateSlots(total int, sigs []fetchSignal) []int {
	nf := len(sigs)
	if nf == 0 {
		return nil
	}
	slots := make([]int, nf)
	for i := range slots {
		slots[i] = 1
	}
	extra := total - nf
	if extra <= 0 {
		return slots
	}
	weights := make([]float64, nf)
	sum := 0.0
	for i, sig := range sigs {
		if !sig.yielding() && sig.rate > 0 {
			weights[i] = sig.rate
			sum += sig.rate
		}
	}
	if sum == 0 {
		// No signal to differentiate on: spread evenly, earlier fetches
		// absorbing the remainder.
		for i := 0; extra > 0; i = (i + 1) % nf {
			slots[i]++
			extra--
		}
		return slots
	}
	// Largest-remainder apportionment of the extra slots by rate.
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, nf)
	assigned := 0
	for i, w := range weights {
		exact := float64(extra) * w / sum
		whole := int(exact)
		slots[i] += whole
		assigned += whole
		rems[i] = rem{idx: i, frac: exact - float64(whole)}
	}
	// Stable selection: biggest fractional remainder first, index as the
	// deterministic tie-break.
	for assigned < extra {
		best := -1
		for i, r := range rems {
			if r.idx < 0 {
				continue
			}
			if best < 0 || r.frac > rems[best].frac {
				best = i
			}
		}
		if best < 0 {
			break
		}
		slots[rems[best].idx]++
		rems[best].idx = -1
		assigned++
	}
	return slots
}
