// Package node is the multi-content overlay node: one process, one
// listener, one gossip directory, many contents at different completion
// stages — the paper's end state, where every end-system collaborates
// on all the working sets it holds rather than running one transfer.
//
// A Node composes three things over the internal/peer swarm engine:
//
//   - A content Store: every replica the node serves and every fetch in
//     flight, registered under one byte budget with pinning and
//     utility/LRU-ranked whole-replica eviction (store.go).
//   - A single listener: a peer.ServerMux routes each inbound HELLO's
//     content id to the right working-set source — a static full or
//     partial server, or the live orchestrator of a fetch in progress —
//     and answers unknown ids with the canonical unknown-content ERROR.
//   - A fetch scheduler: concurrent per-content orchestrators share the
//     node-wide gossip directory and divide a global connection budget
//     (Options.MaxConns) by marginal utility — starved and
//     near-complete contents yield slots to fast-moving ones (sched.go)
//     — applied live through Orchestrator.SetMaxPeers on every
//     housekeeping tick.
//
// The housekeeping tick also ages stale gossip entries out
// (Gossip.Expire) and re-enforces the store budget as live working sets
// grow. Everything a fetch learns is served immediately: as soon as its
// first handshake fixes the content metadata, a live server over the
// orchestrator's working set is registered on the shared listener.
package node

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"icd/internal/faultnet"
	"icd/internal/obs"
	"icd/internal/peer"
	"icd/internal/peermux"
	"icd/internal/protocol"
)

// Options configure a Node.
type Options struct {
	// Listen is the node's dialable listen address: the mux binds it
	// (ListenAndServe) and every session advertises it via gossip.
	Listen string
	// StoreBudget caps the bytes of stored replicas (0 = unlimited).
	// Exceeding it evicts unpinned, inactive replicas in utility/LRU
	// order.
	StoreBudget int64
	// MaxConns is the global outbound-session budget divided across
	// concurrent fetches by the scheduler (0 = unlimited: each fetch
	// uses Fetch.MaxPeers as-is). Every concurrent fetch keeps one
	// guaranteed session (an orchestrator with zero sessions winds
	// down, not waits), so the effective floor is the number of fetches
	// in flight — size MaxConns (or bound concurrent StartFetch calls)
	// accordingly when the budget maps to a hard resource limit.
	MaxConns int
	// WindowBudget is the node-wide credit-window budget in symbol
	// frames, divided across concurrent fetches by the same marginal-
	// utility apportionment as MaxConns (0 = disabled: every channel
	// opens at the fabric's per-channel default). Each fetch's share
	// sizes its fabric channels' receive windows live
	// (Orchestrator.SetChannelWindow) and caps its request pipeline to
	// the depth that window can admit (SetPipelineCap); the budget is
	// also installed as each wire's aggregate ceiling
	// (peermux.Config.WireWindow), so no single wire can oversubscribe
	// it. Every fetch keeps a small guaranteed window — size the budget
	// with that floor (16 frames per concurrent fetch) in mind.
	WindowBudget int
	// Tick is the housekeeping cadence — gossip expiry, store budget
	// enforcement over live working sets, connection and credit-window
	// rebalancing (default 100ms).
	Tick time.Duration
	// GossipMaxAge ages directory entries nobody re-mentioned out of
	// the node's gossip directory (default 2m; negative disables).
	GossipMaxAge time.Duration
	// Transport supplies the node's network: its Listen backs
	// ListenAndServe and its Dial backs every fetch session (unless
	// Fetch.Dial overrides it). Nil uses real TCP. Tests and the chaos
	// experiment inject faultnet transports — in-process pipe networks,
	// fault-injecting wrappers — here.
	Transport faultnet.Transport
	// MaxInbound caps concurrently served inbound connections on the
	// node's listener (0 = unlimited); over-cap connections are answered
	// with a retryable busy ERROR so dialers back off instead of piling
	// onto a saturated node.
	MaxInbound int
	// DisableFabric turns off the node's shared connection fabric:
	// every fetch session dials its own dedicated connection (the
	// pre-fabric behavior, O(peers × contents) connections) instead of
	// riding a subchannel on the node's one wire per peer. Useful
	// against peers whose listeners predate the fabric handshake,
	// though the fabric also falls back per-dial on a version reject.
	DisableFabric bool
	// Fetch is the per-orchestrator option template. Gossip,
	// AdvertiseAddr and (under a MaxConns budget) MaxPeers are
	// overridden per fetch by the node.
	Fetch peer.FetchOptions
	// Obs is the node's observability registry. Nil creates a private
	// one — a node always has a registry, so the mux, the fabric and
	// every fetch feed one snapshot (Node.Obs) and one trace ring.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Tick <= 0 {
		o.Tick = 100 * time.Millisecond
	}
	if o.GossipMaxAge == 0 {
		o.GossipMaxAge = 2 * time.Minute
	}
	return o
}

// Node is a multi-content overlay peer: it serves every stored content
// from one listener while fetching any number of others, under a store
// byte budget and a global connection budget. Create with New; all
// exported methods are safe for concurrent use.
type Node struct {
	opts      Options
	gossip    *peer.Gossip
	store     *Store
	mux       *peer.ServerMux
	penalties *peer.PenaltyBox // node-wide misbehavior box (mux + every fetch)
	fabric    *peermux.Fabric  // shared outbound wires: one per peer, all contents
	obs       *obs.Registry    // node-wide metrics registry and trace ring
	met       nodeMetrics

	schedMu sync.Mutex // serializes rebalance passes (tick vs StartFetch)

	mu      sync.Mutex
	fetches map[uint64]*transferState
	order   []uint64 // fetch start order: deterministic rebalance indexing
	closed  bool
	stop    chan struct{}
	ticker  sync.WaitGroup
}

// transferState is one in-flight fetch's bookkeeping.
type transferState struct {
	id   uint64
	o    *peer.Orchestrator
	done chan struct{}
	res  *peer.FetchResult
	err  error

	failed bool // set under Node.mu: late live-server registration must not land

	// Scheduler sampling state, touched only under schedMu.
	lastProgress int
	lastSample   time.Time
	lastSig      fetchSignal // reused when a rebalance fires off-tick (dt too small to judge)
}

// New creates a node. Call ListenAndServe (or Serve) to make it
// dialable, ServeFull/ServePartial to add replicas, and Fetch/StartFetch
// to download more contents.
func New(opts Options) *Node {
	opts = opts.withDefaults()
	n := &Node{
		opts:    opts,
		gossip:  peer.NewGossip(opts.Listen),
		store:   NewStore(opts.StoreBudget),
		mux:     peer.NewServerMux(),
		fetches: make(map[uint64]*transferState),
		stop:    make(chan struct{}),
	}
	// One registry for the whole node: the mux, the fabric and every
	// fetch report into the same snapshot and trace ring.
	n.obs = opts.Obs
	if n.obs == nil {
		n.obs = obs.NewRegistry()
	}
	n.met = newNodeMetrics(n.obs)
	// One penalty box for the whole node: misbehavior seen by any fetch
	// session or on any inbound connection feeds one verdict, and banned
	// addresses are refused on both planes.
	n.penalties = opts.Fetch.Penalties
	if n.penalties == nil {
		n.penalties = peer.NewPenaltyBox()
	}
	n.mux.SetGossip(n.gossip)
	n.mux.SetPenalties(n.penalties)
	n.mux.SetObs(n.obs)
	if !opts.DisableFabric {
		// One wire per peer, shared by every fetch: the fabric dials
		// through the same transport sessions would have used, advertises
		// the node's listen address in its handshake, and feeds wire-level
		// misbehavior and gossip into the node-wide planes.
		dial := opts.Fetch.Dial
		if dial == nil && opts.Transport != nil {
			dial = opts.Transport.Dial
		}
		if dial == nil {
			timeout := opts.Fetch.Timeout
			if timeout <= 0 {
				timeout = 30 * time.Second
			}
			dial = func(addr string) (net.Conn, error) {
				return net.DialTimeout("tcp", addr, timeout)
			}
		}
		n.fabric = peermux.NewFabric(dial, peermux.Config{
			Timeout:    opts.Fetch.Timeout,
			ListenAddr: opts.Listen,
			WireWindow: opts.WindowBudget,
			Obs:        n.obs,
			OnPeers: func(ads []protocol.PeerAd) {
				for _, ad := range ads {
					n.gossip.Learn(ad)
				}
			},
		})
		n.fabric.SetPenalize(func(addr string, weight float64) {
			n.penalties.Penalize(addr, weight)
		})
	}
	if opts.MaxInbound > 0 {
		n.mux.SetMaxConns(opts.MaxInbound)
	}
	// Every HELLO routed to a replica is demand: the store's eviction
	// ranking feeds on it.
	n.mux.SetLookupHook(func(id uint64, found bool) {
		if found {
			n.store.Touch(id)
		}
	})
	n.registerGauges()
	n.ticker.Add(1)
	go n.run()
	return n
}

// Obs returns the node-wide observability registry: every subsystem's
// metrics in one snapshot, plus the lifecycle trace ring. Serve it over
// HTTP with obs.DebugMux.
func (n *Node) Obs() *obs.Registry { return n.obs }

// Gossip returns the node-wide peer directory (shared by the listener
// and every orchestrator).
func (n *Node) Gossip() *peer.Gossip { return n.gossip }

// Penalties returns the node-wide misbehavior penalty box (shared by the
// listener and every fetch).
func (n *Node) Penalties() *peer.PenaltyBox { return n.penalties }

// Store returns the node's content store.
func (n *Node) Store() *Store { return n.store }

// Mux returns the node's multi-content listener (useful for serving
// over a custom transport, e.g. in-process pipes in tests).
func (n *Node) Mux() *peer.ServerMux { return n.mux }

// Addr returns the bound listener address ("" before Serve).
func (n *Node) Addr() string { return n.mux.Addr() }

// ListenAndServe binds Options.Listen — through Options.Transport when
// one is set — and serves every registered content until Close.
func (n *Node) ListenAndServe() error {
	if tr := n.opts.Transport; tr != nil {
		ln, err := tr.Listen(n.opts.Listen)
		if err != nil {
			return err
		}
		return n.mux.Serve(ln)
	}
	return n.mux.ListenAndServe(n.opts.Listen)
}

// Serve accepts connections on ln until Close (the caller picked its
// own listener; Options.Listen is still what gets advertised).
func (n *Node) Serve(ln net.Listener) error { return n.mux.Serve(ln) }

// Close stops housekeeping and the listener. Fetches in flight are not
// cancelled — they belong to their contexts; cancel those to unwind.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.stop)
	n.mu.Unlock()
	n.ticker.Wait()
	if n.fabric != nil {
		n.fabric.Close()
	}
	return n.mux.Close()
}

// ServeFull registers a full replica of the content: it is served on
// the shared listener and accounted in the store (pin to shield it from
// budget eviction).
func (n *Node) ServeFull(info peer.ContentInfo, content []byte, pin bool) error {
	srv, err := peer.NewFullServer(info, content)
	if err != nil {
		return err
	}
	return n.addReplica(srv, int64(info.OrigLen), pin)
}

// ServePartial registers a partial replica (a working set of encoded
// symbols) on the shared listener, accounted at len(symbols)·BlockSize.
func (n *Node) ServePartial(info peer.ContentInfo, symbols map[uint64][]byte, pin bool) error {
	srv, err := peer.NewPartialServer(info, symbols)
	if err != nil {
		return err
	}
	return n.addReplica(srv, int64(len(symbols))*int64(info.BlockSize), pin)
}

// addReplica registers a constructed server and its store accounting,
// evicting colder replicas if the new one pushes usage past the budget.
func (n *Node) addReplica(srv *peer.Server, bytes int64, pin bool) error {
	id := srv.Info().ID
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("node: closed")
	}
	if _, active := n.fetches[id]; active {
		// The mirror of StartFetch's already-stored guard: serving over
		// an in-flight fetch would clobber its store entry (active
		// shield, byte accounting) and let a failing fetch delete the
		// operator's replica behind their back.
		n.mu.Unlock()
		return fmt.Errorf("node: content %#x is being fetched (wait or cancel it first)", id)
	}
	if err := n.mux.Register(srv); err != nil {
		n.mu.Unlock()
		return err
	}
	// Put under n.mu: StartFetch's already-stored check runs under the
	// same lock, so a concurrent fetch cannot slip between the fetches
	// check above and this registration.
	evicted := n.store.Put(id, bytes, pin, false)
	n.mu.Unlock()
	n.met.storeAdmits.Add(1)
	n.traceContent(obs.EvStoreAdmit, id, fmt.Sprintf("bytes=%d pin=%v", bytes, pin))
	n.dropReplicas(evicted)
	return nil
}

// dropReplicas reacts to store evictions: the evicted ids stop being
// served (new handshakes naming them get the unknown-content answer).
func (n *Node) dropReplicas(ids []uint64) {
	for _, id := range ids {
		n.met.storeEvictions.Add(1)
		n.traceContent(obs.EvStoreEvict, id, "budget")
		n.mux.Unregister(id)
	}
}

// Pin sets or clears a replica's eviction shield.
func (n *Node) Pin(contentID uint64, pinned bool) bool {
	ok := n.store.Pin(contentID, pinned)
	if ok && !pinned {
		n.dropReplicas(n.store.EnforceBudget())
	}
	return ok
}

// Drop removes a replica outright: unregistered from the listener and
// forgotten by the store. Active fetches cannot be dropped (cancel
// their context instead).
func (n *Node) Drop(contentID uint64) bool {
	// One critical section across check + remove + unregister: the same
	// registration-atomicity invariant addReplica, StartFetch and the
	// live-registration goroutine hold n.mu for. Dropping it between
	// the check and the mutations would let a concurrent StartFetch's
	// fresh entry be deleted, or a live server register against an
	// entry this call is deleting.
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, active := n.fetches[contentID]; active {
		return false
	}
	if !n.store.Remove(contentID) {
		return false
	}
	n.mux.Unregister(contentID)
	return true
}

// Contents returns the store's status snapshot, sorted by content id.
func (n *Node) Contents() []ContentStatus { return n.store.Contents() }

// Transfer is a handle on one in-flight (or finished) fetch.
type Transfer struct {
	// ID is the content id being fetched.
	ID uint64
	st *transferState
}

// Wait blocks until the fetch ends and returns its result.
func (t *Transfer) Wait() (*peer.FetchResult, error) {
	<-t.st.done
	return t.st.res, t.st.err
}

// Orchestrator exposes the underlying swarm engine (AddPeer/DropPeer,
// Sessions, Progress — live introspection and steering).
func (t *Transfer) Orchestrator() *peer.Orchestrator { return t.st.o }

// Slots returns the fetch's current share of the node's connection
// budget (0 when the node runs without one).
func (t *Transfer) Slots() int { return t.st.o.MaxPeers() }

// StartFetch begins downloading a content from the given bootstrap
// addresses (gossip discovers more) and returns immediately with a
// Transfer handle. The fetch shares the node's gossip directory and its
// connection budget; as soon as its first handshake fixes the content
// metadata, the node serves the growing working set on its listener.
// One fetch per content id at a time; a complete stored replica also
// refuses a re-fetch (Drop it first).
func (n *Node) StartFetch(ctx context.Context, contentID uint64, addrs ...string) (*Transfer, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("node: closed")
	}
	if _, dup := n.fetches[contentID]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("node: content %#x already being fetched", contentID)
	}
	if _, ok := n.store.Get(contentID); ok {
		// Any existing registration — complete replica, served file,
		// leftover partial — blocks a re-fetch: starting one would
		// clobber its store entry (pin, accounting) and could destroy
		// it on failure. Drop it first.
		n.mu.Unlock()
		return nil, fmt.Errorf("node: content %#x already stored (Drop it to re-fetch)", contentID)
	}
	fo := n.opts.Fetch
	fo.Gossip = n.gossip
	fo.AdvertiseAddr = n.opts.Listen
	fo.Penalties = n.penalties
	fo.Fabric = n.fabric // nil when DisableFabric: dedicated connections
	fo.Obs = n.obs       // every fetch reports into the node's registry
	if fo.Dial == nil && n.opts.Transport != nil {
		fo.Dial = n.opts.Transport.Dial
	}
	if n.opts.MaxConns > 0 {
		// Start on the guaranteed slot; the rebalance below immediately
		// assigns the real share.
		fo.MaxPeers = 1
	}
	if n.opts.WindowBudget > 0 {
		// Likewise for the window budget: open the first channels at the
		// guaranteed floor and let the rebalance grow the share.
		fo.ChannelWindow = minChannelWindow
	}
	st := &transferState{
		id:   contentID,
		o:    peer.NewOrchestrator(contentID, fo),
		done: make(chan struct{}),
	}
	n.fetches[contentID] = st
	n.order = append(n.order, contentID)
	n.mu.Unlock()

	n.store.Put(contentID, 0, false, true) // active: shielded from eviction
	n.met.storeAdmits.Add(1)
	n.traceContent(obs.EvStoreAdmit, contentID, "fetch")
	// Until the first handshake registers a live server, inbound HELLOs
	// for this content get a retryable "pending" answer instead of the
	// terminal unknown-content one — a peer that dials us during the
	// window must back off and retry, not write us off.
	n.mux.SetPending(contentID, true)
	n.rebalance()

	go func() {
		res, err := st.o.Run(ctx, addrs...)
		n.finishFetch(st, res, err)
		close(st.done)
	}()
	go func() {
		// Serve while fetching: registration waits only for the first
		// handshake (content metadata), not for completion.
		info, err := st.o.WaitInfo(ctx)
		if err != nil {
			return
		}
		live, err := peer.NewLiveServer(info, st.o)
		if err != nil {
			return
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if st.failed || n.closed {
			return // the fetch already unwound: do not resurrect the replica
		}
		if _, ok := n.store.Get(st.id); !ok {
			// The store entry is already gone — a fast fetch finished and
			// its replica was budget-evicted (or Dropped) before this
			// goroutine ran. Registering now would serve a zombie the
			// store no longer accounts for.
			return
		}
		if n.mux.Register(live) == nil {
			n.mux.SetPending(st.id, false)
		}
	}()
	return &Transfer{ID: contentID, st: st}, nil
}

// Fetch is StartFetch + Wait: download one content to completion.
func (n *Node) Fetch(ctx context.Context, contentID uint64, addrs ...string) (*peer.FetchResult, error) {
	t, err := n.StartFetch(ctx, contentID, addrs...)
	if err != nil {
		return nil, err
	}
	return t.Wait()
}

// finishFetch settles a fetch's bookkeeping: on success the replica
// stays registered (now complete and evictable once demand fades); on
// failure the partial replica is dropped so a retry starts clean.
func (n *Node) finishFetch(st *transferState, res *peer.FetchResult, err error) {
	st.res, st.err = res, err
	n.mu.Lock()
	delete(n.fetches, st.id)
	for i, id := range n.order {
		if id == st.id {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	if err != nil {
		st.failed = true
	}
	n.mu.Unlock()

	n.mux.SetPending(st.id, false) // whatever happened, the window is over
	if err != nil || res == nil || !res.Completed {
		n.store.Remove(st.id)
		n.mux.Unregister(st.id)
	} else {
		n.dropReplicas(n.store.UpdateBytes(st.id, int64(len(res.Held))*int64(res.Info.BlockSize)))
		n.dropReplicas(n.store.Complete(st.id))
	}
	n.rebalance()
}

// run is the housekeeping loop: gossip liveness, store accounting and
// budget enforcement over live working sets, and connection-slot
// rebalancing, every Options.Tick.
func (n *Node) run() {
	defer n.ticker.Done()
	t := time.NewTicker(n.opts.Tick)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.housekeep()
		}
	}
}

// housekeep is one tick's worth of node hygiene.
func (n *Node) housekeep() {
	n.gossip.Expire(n.opts.GossipMaxAge)
	n.mu.Lock()
	states := make([]*transferState, 0, len(n.fetches))
	for _, id := range n.order {
		states = append(states, n.fetches[id])
	}
	n.mu.Unlock()
	for _, st := range states {
		if info, ok := st.o.Info(); ok {
			n.dropReplicas(n.store.UpdateBytes(st.id,
				int64(st.o.Progress())*int64(info.BlockSize)))
		}
	}
	n.dropReplicas(n.store.EnforceBudget())
	n.rebalance()
}

// rebalance samples every active fetch's progress rate and re-divides
// the node's global budgets: connection slots (allocateSlots, under
// MaxConns) and credit windows (allocateWindows, under WindowBudget) —
// both applied live, shrinks before grows, so neither the combined
// session count nor any wire's aggregate window overshoots its budget.
func (n *Node) rebalance() {
	if n.opts.MaxConns <= 0 && n.opts.WindowBudget <= 0 {
		return
	}
	n.schedMu.Lock()
	defer n.schedMu.Unlock()

	n.mu.Lock()
	states := make([]*transferState, 0, len(n.fetches))
	for _, id := range n.order {
		states = append(states, n.fetches[id])
	}
	n.mu.Unlock()
	if len(states) == 0 {
		return
	}

	// An off-tick rebalance (StartFetch/finishFetch) can land moments
	// after the last sample; judging "no progress" over a near-zero
	// window would flag every healthy fetch starved and churn its
	// sessions. Below half a tick, reuse the previous verdict instead.
	minDt := n.opts.Tick / 2
	now := time.Now()
	sigs := make([]fetchSignal, len(states))
	for i, st := range states {
		progress := st.o.Progress()
		sig := st.lastSig
		if dt := now.Sub(st.lastSample); st.lastSample.IsZero() || dt >= minDt {
			sig = fetchSignal{}
			if !st.lastSample.IsZero() {
				sig.rate = float64(progress-st.lastProgress) / dt.Seconds()
				sig.starved = progress == st.lastProgress
			}
			st.lastProgress = progress
			st.lastSample = now
		}
		if info, ok := st.o.Info(); ok && progress >= info.NumBlocks {
			sig.nearComplete = true
		}
		st.lastSig = sig
		sigs[i] = sig
	}
	if n.opts.MaxConns > 0 {
		slots := allocateSlots(n.opts.MaxConns, sigs)
		total := 0
		for _, s := range slots {
			total += s
		}
		n.met.slotsAlloc.Set(int64(total))
		// Shrink first: the freed slots must exist before anyone grows
		// into them, or the node would transiently exceed its own budget.
		for i, st := range states {
			if slots[i] < st.o.MaxPeers() {
				st.o.SetMaxPeers(slots[i])
			}
		}
		for i, st := range states {
			if slots[i] > st.o.MaxPeers() {
				st.o.SetMaxPeers(slots[i])
			}
		}
	}
	if n.opts.WindowBudget > 0 {
		wins := allocateWindows(n.opts.WindowBudget, sigs)
		total := 0
		for _, w := range wins {
			total += w
		}
		n.met.windowAlloc.Set(int64(total))
		batch := n.opts.Fetch.Batch
		if batch <= 0 {
			batch = 64
		}
		maxDepth := n.opts.Fetch.MaxPipelineDepth
		if maxDepth <= 0 {
			maxDepth = peer.DefaultMaxPipelineDepth
		}
		// Shrink-before-grow again: the wires enforce the same budget as
		// their aggregate ceiling (Config.WireWindow), so a grow applied
		// before its sibling's shrink would be clamped against window the
		// shrink is about to free.
		for i, st := range states {
			if wins[i] < st.o.ChannelWindow() {
				st.o.SetChannelWindow(wins[i])
				st.o.SetPipelineCap(depthCap(wins[i], batch, maxDepth))
			}
		}
		for i, st := range states {
			if wins[i] > st.o.ChannelWindow() {
				st.o.SetChannelWindow(wins[i])
				st.o.SetPipelineCap(depthCap(wins[i], batch, maxDepth))
			}
		}
	}
}
