package setrecon

import (
	"sort"
	"testing"
	"testing/quick"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// plant builds remote/local sets with known exclusive elements on each
// side: remote = core ∪ remOnly, local = core ∪ locOnly.
func plant(rng *prng.Rand, core, remOnly, locOnly int) (remote, local *keyset.Set, localExclusive []uint64) {
	base := keyset.Random(rng, core)
	remote = base.Clone()
	local = base.Clone()
	for remote.Len() < core+remOnly {
		remote.Add(rng.Uint64() >> 3) // keep keys < 2^61 so field folding is injective
	}
	for len(localExclusive) < locOnly {
		k := rng.Uint64() >> 3
		if !remote.Contains(k) && local.Add(k) {
			localExclusive = append(localExclusive, k)
		}
	}
	return remote, local, localExclusive
}

func sorted(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestHashedSetDiffExact(t *testing.T) {
	rng := prng.New(1)
	remote, local, want := plant(rng, 2000, 30, 40)
	got := HashedSetDiff(HashSet(remote, 7), local, 7)
	g, w := sorted(got), sorted(want)
	if len(g) != len(w) {
		t.Fatalf("found %d, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("diff mismatch at %d", i)
		}
	}
}

func TestPolynomialReconcileExact(t *testing.T) {
	rng := prng.New(2)
	for _, tc := range []struct{ core, rem, loc int }{
		{500, 0, 5},   // local strictly ahead
		{500, 5, 0},   // remote strictly ahead: nothing to find
		{500, 7, 9},   // both sides differ
		{500, 12, 12}, // symmetric difference
		{500, 0, 0},   // identical sets
	} {
		remote, local, want := plant(rng, tc.core, tc.rem, tc.loc)
		sum, err := Summarize(remote, 99, 40)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Reconcile(sum, local)
		if err != nil {
			t.Fatalf("core=%d rem=%d loc=%d: %v", tc.core, tc.rem, tc.loc, err)
		}
		g, w := sorted(got), sorted(want)
		if len(g) != len(w) {
			t.Fatalf("core=%d rem=%d loc=%d: found %d, want %d", tc.core, tc.rem, tc.loc, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	}
}

func TestReconcileMessageIsSmall(t *testing.T) {
	// §5.1's point: the summary is O(d log u) bits regardless of set
	// size — here 40+4+1 field elements for sets of 10000.
	rng := prng.New(3)
	remote, _, _ := plant(rng, 10000, 5, 5)
	sum, err := Summarize(remote, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Evals) != 45 {
		t.Fatalf("summary has %d evaluations", len(sum.Evals))
	}
}

func TestReconcileBeyondBoundFails(t *testing.T) {
	rng := prng.New(4)
	remote, local, _ := plant(rng, 300, 30, 30) // d = 60
	sum, err := Summarize(remote, 5, 20)        // bound 20 < 60
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconcile(sum, local); err == nil {
		t.Fatal("discrepancy beyond bound accepted")
	}
}

func TestSummarizeValidation(t *testing.T) {
	if _, err := Summarize(keyset.New(0), 1, 0); err == nil {
		t.Fatal("bad bound accepted")
	}
	if _, err := Reconcile(nil, keyset.New(0)); err == nil {
		t.Fatal("nil summary accepted")
	}
}

func TestSamplePointsDeterministicDistinct(t *testing.T) {
	a := SamplePoints(42, 50)
	b := SamplePoints(42, 50)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if seen[uint64(a[i])] {
			t.Fatal("duplicate point")
		}
		seen[uint64(a[i])] = true
	}
}

// Property: for random small scenarios the polynomial method recovers
// exactly the local-exclusive elements.
func TestQuickPolynomialExact(t *testing.T) {
	f := func(seed uint64) bool {
		rng := prng.New(seed)
		core := 50 + rng.Intn(100)
		rem := rng.Intn(6)
		loc := rng.Intn(6)
		remote, local, want := plant(rng, core, rem, loc)
		sum, err := Summarize(remote, seed, 16)
		if err != nil {
			return false
		}
		got, err := Reconcile(sum, local)
		if err != nil {
			return false
		}
		g, w := sorted(got), sorted(want)
		if len(g) != len(w) {
			return false
		}
		for i := range g {
			if g[i] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummarizeD40(b *testing.B) {
	rng := prng.New(1)
	set := keyset.Random(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(set, 1, 40); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconcileD20(b *testing.B) {
	rng := prng.New(2)
	remote, local, _ := plant(rng, 5000, 10, 10)
	sum, err := Summarize(remote, 9, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconcile(sum, local); err != nil {
			b.Fatal(err)
		}
	}
}
