// Package setrecon implements the exact set-reconciliation baselines of
// §5.1, against which the paper positions its approximate methods:
//
//   - HashedSetDiff — "peer A hashes each element and sends the set of
//     hashes": O(|S_A| log h) bits, exact up to hash collisions;
//   - the characteristic-polynomial method of Minsky, Trachtenberg and
//     Zippel: peer A sends evaluations of χ_A(z) = Π_{a∈S_A}(z−a) at a
//     handful of agreed sample points — O(d log u) bits for discrepancy
//     d — and peer B interpolates the reduced rational function
//     χ_A/χ_B = P/Q whose monic numerator and denominator vanish
//     exactly on S_A−S_B and S_B−S_A. B finds its exclusive elements by
//     evaluating Q over its own working set.
//
// As §5.1 observes, the polynomial method's messages are optimally small
// but the work is Θ(d·|S_A|) evaluation plus Θ(d³) solving, and d must be
// (bounded in advance or discovered by retrying) — which is exactly why
// the paper replaces exactness with Bloom filters and ARTs when d is
// large. The benchmarks make that tradeoff measurable.
package setrecon

import (
	"errors"
	"fmt"

	"icd/internal/gf"
	"icd/internal/hashing"
	"icd/internal/keyset"
)

// HashedSetDiff is baseline 1: exchange hashed key sets and subtract.
// The returned slice holds the elements of local missing from remote's
// hash set. Exact up to 64-bit hash collisions. Message size is
// 8·|remote| bytes — linear in the set, the cost §5.1 rejects for large
// working sets.
func HashedSetDiff(remoteHashes map[uint64]struct{}, local *keyset.Set, hashSeed uint64) []uint64 {
	var out []uint64
	local.Each(func(k uint64) {
		if _, ok := remoteHashes[hashing.Mix64(k^hashSeed)]; !ok {
			out = append(out, k)
		}
	})
	return out
}

// HashSet builds the hashed form of a working set for HashedSetDiff.
func HashSet(s *keyset.Set, hashSeed uint64) map[uint64]struct{} {
	out := make(map[uint64]struct{}, s.Len())
	s.Each(func(k uint64) {
		out[hashing.Mix64(k^hashSeed)] = struct{}{}
	})
	return out
}

// toField folds a symbol key into GF(p). The fold is not injective over
// all of uint64, but collisions are ~2^-61 per pair — the same regime as
// the paper's hashed keys.
func toField(key uint64) gf.Elem { return gf.Reduce(key) }

// SamplePoints derives the agreed evaluation points z_1..z_k from a seed.
// Both peers must use the same seed and count.
func SamplePoints(seed uint64, k int) []gf.Elem {
	pts := make([]gf.Elem, k)
	seen := make(map[gf.Elem]bool, k)
	ctr := uint64(0)
	for i := 0; i < k; {
		ctr++
		z := gf.Reduce(hashing.Mix64Pair(seed, ctr))
		if z == 0 || seen[z] {
			continue
		}
		seen[z] = true
		pts[i] = z
		i++
	}
	return pts
}

// Summary is peer A's message: its set size and the evaluations of its
// characteristic polynomial at the agreed points — (maxD + slack + 1)
// field elements ≈ O(d log u) bits total.
type Summary struct {
	SetSize int
	Seed    uint64
	Evals   []gf.Elem
}

// Summarize evaluates χ_A at enough points to reconcile discrepancies up
// to maxD (with verification slack). Work: Θ(|S_A| · points).
func Summarize(set *keyset.Set, seed uint64, maxD int) (*Summary, error) {
	if maxD < 1 {
		return nil, errors.New("setrecon: non-positive discrepancy bound")
	}
	points := SamplePoints(seed, maxD+verifySlack+1)
	evals := make([]gf.Elem, len(points))
	for i := range evals {
		evals[i] = 1
	}
	set.Each(func(k uint64) {
		x := toField(k)
		for i, z := range points {
			evals[i] = gf.Mul(evals[i], gf.Sub(z, x))
		}
	})
	return &Summary{SetSize: set.Len(), Seed: seed, Evals: evals}, nil
}

// verifySlack is the number of extra evaluation points used to validate
// an interpolated rational function before accepting it.
const verifySlack = 4

// Reconcile recovers S_local − S_remote exactly from the remote summary:
// the §5.1 exact method from peer B's point of view. It tries discrepancy
// bounds of the right parity until the interpolated rational function
// verifies on the slack points, then returns the local elements on which
// the denominator vanishes.
//
// It fails if the true discrepancy exceeds the summary's bound — the
// known limitation of exact reconciliation ("prohibitive except when d is
// known and known to be small").
func Reconcile(remote *Summary, local *keyset.Set) ([]uint64, error) {
	if remote == nil || len(remote.Evals) == 0 {
		return nil, errors.New("setrecon: empty summary")
	}
	points := SamplePoints(remote.Seed, len(remote.Evals))
	maxD := len(remote.Evals) - verifySlack - 1

	// B's own evaluations.
	localEvals := make([]gf.Elem, len(points))
	for i := range localEvals {
		localEvals[i] = 1
	}
	local.Each(func(k uint64) {
		x := toField(k)
		for i, z := range points {
			localEvals[i] = gf.Mul(localEvals[i], gf.Sub(z, x))
		}
	})

	// f_i = χ_A(z_i) / χ_B(z_i) = P(z_i)/Q(z_i) with P monic vanishing on
	// S_A−S_B and Q monic vanishing on S_B−S_A.
	f := make([]gf.Elem, len(points))
	for i := range f {
		if localEvals[i] == 0 || remote.Evals[i] == 0 {
			return nil, fmt.Errorf("setrecon: sample point %d hit a set element; re-seed", i)
		}
		f[i] = gf.Mul(remote.Evals[i], gf.Inv(localEvals[i]))
	}

	delta := remote.SetSize - local.Len() // deg P − deg Q
	// Try growing total discrepancy D with the parity forced by delta.
	start := delta
	if start < 0 {
		start = -start
	}
	for d := start; d <= maxD; d += 2 {
		dA := (d + delta) / 2 // |S_A − S_B|
		dB := (d - delta) / 2 // |S_B − S_A|
		if dA < 0 || dB < 0 {
			continue
		}
		q, ok := trySolve(points, f, dA, dB)
		if !ok {
			continue
		}
		// Roots of Q among the local set are exactly S_B − S_A.
		var out []uint64
		local.Each(func(k uint64) {
			if q.Eval(toField(k)) == 0 {
				out = append(out, k)
			}
		})
		if len(out) != dB {
			continue // spurious solution; enlarge d
		}
		return out, nil
	}
	return nil, fmt.Errorf("setrecon: discrepancy exceeds bound %d", maxD)
}

// trySolve interpolates monic P (deg dA) and Q (deg dB) with
// P(z_i) = f_i·Q(z_i), using dA+dB equations, verifying on the remaining
// points. It returns Q on success.
func trySolve(points []gf.Elem, f []gf.Elem, dA, dB int) (gf.Poly, bool) {
	unknowns := dA + dB
	if unknowns+verifySlack > len(points) {
		return nil, false
	}
	if unknowns == 0 {
		// Identical sets (given delta 0): verify f ≡ 1.
		for _, v := range f {
			if v != 1 {
				return nil, false
			}
		}
		return gf.Poly{1}, true
	}
	// Row i: Σ_{j<dA} p_j z^j − f_i Σ_{k<dB} q_k z^k = f_i z^dB − z^dA.
	a := make([][]gf.Elem, unknowns)
	b := make([]gf.Elem, unknowns)
	for i := 0; i < unknowns; i++ {
		z := points[i]
		row := make([]gf.Elem, unknowns)
		zp := gf.Elem(1)
		for j := 0; j < dA; j++ {
			row[j] = zp
			zp = gf.Mul(zp, z)
		}
		zq := gf.Elem(1)
		for k := 0; k < dB; k++ {
			row[dA+k] = gf.Neg(gf.Mul(f[i], zq))
			zq = gf.Mul(zq, z)
		}
		a[i] = row
		b[i] = gf.Sub(gf.Mul(f[i], gf.Pow(z, uint64(dB))), gf.Pow(z, uint64(dA)))
	}
	x, err := gf.SolveLinear(a, b)
	if err != nil {
		return nil, false
	}
	p := make(gf.Poly, dA+1)
	copy(p, x[:dA])
	p[dA] = 1
	q := make(gf.Poly, dB+1)
	copy(q, x[dA:])
	q[dB] = 1
	// Verify on the held-out points.
	for i := unknowns; i < len(points); i++ {
		z := points[i]
		if p.Eval(z) != gf.Mul(f[i], q.Eval(z)) {
			return nil, false
		}
	}
	return q, true
}
