package transfer

import (
	"testing"
	"testing/quick"

	"icd/internal/prng"
	"icd/internal/strategy"
)

// Property: for any strategy, seed and feasible correlation, a completed
// run respects conservation — the receiver's final distinct count never
// exceeds what exists (its initial set plus the senders' symbols plus
// full-sender freshness), overhead is ≥ 1, and per-sender stats add up.
func TestQuickRunInvariants(t *testing.T) {
	f := func(seedRaw uint64, kindRaw uint8, corrRaw uint8) bool {
		kind := strategy.AllKinds[int(kindRaw)%len(strategy.AllKinds)]
		corr := float64(corrRaw%40) / 100 // 0 … 0.39
		const n = 300
		rng := prng.New(seedRaw)
		recv, send, err := TwoPeerScenario(rng, n, CompactStretch, corr)
		if err != nil {
			return false
		}
		res, err := Run(Config{
			Receiver:  recv,
			Senders:   []SenderSpec{{Set: send, Kind: kind}},
			Target:    Target(n),
			MaxRounds: 30 * Target(n),
			Seed:      seedRaw,
		})
		if err != nil {
			return false
		}
		// Conservation: the receiver can hold at most |recv ∪ send|.
		if res.FinalCount > recv.Union(send).Len() {
			return false
		}
		if res.FinalCount < res.InitialCount {
			return false
		}
		if res.Overhead() < 1 && res.UsefulGained() > 0 {
			return false
		}
		// Stats coherence.
		sent := 0
		useful := 0
		for _, s := range res.Senders {
			sent += s.Sent
			useful += s.Useful
		}
		if sent != res.Transmissions {
			return false
		}
		return useful == res.UsefulGained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a full sender can only help — rounds with
// full+partial never exceed the full-sender baseline (the partial sender
// cannot slow the race down in this rate model).
func TestQuickFullSenderMonotone(t *testing.T) {
	f := func(seedRaw uint64, kindRaw uint8) bool {
		kind := strategy.AllKinds[int(kindRaw)%len(strategy.AllKinds)]
		const n = 300
		rng := prng.New(seedRaw)
		recv, send, err := TwoPeerScenario(rng, n, CompactStretch, 0.2)
		if err != nil {
			return false
		}
		res, err := Run(Config{
			Receiver: recv,
			Senders:  []SenderSpec{{Full: true}, {Set: send, Kind: kind}},
			Target:   Target(n),
			Seed:     seedRaw,
		})
		if err != nil || !res.Completed {
			return false
		}
		return res.Rounds <= RunBaselineFullSender(recv, Target(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: scenario feasibility bound is tight — correlations just
// under the bound construct, just over it error.
func TestQuickScenarioBound(t *testing.T) {
	f := func(seedRaw uint64, stretchPick bool) bool {
		stretch := CompactStretch
		if stretchPick {
			stretch = StretchedStretch
		}
		rng := prng.New(seedRaw)
		max := MaxTwoPeerCorrelation(stretch)
		if _, _, err := TwoPeerScenario(rng, 1000, stretch, max-0.02); err != nil {
			return false
		}
		_, _, err := TwoPeerScenario(rng, 1000, stretch, max+0.05)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
