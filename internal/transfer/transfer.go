// Package transfer is the round-based simulator behind the paper's §6
// evaluation. It models one receiver downloading from any mix of full and
// partial senders at equal per-connection rates: in each round every
// sender transmits exactly one symbol and the receiver processes it
// immediately (regular symbols join the working set; recoded symbols go
// through the substitution-rule decoder of internal/recode).
//
// The simulator works at the symbol-identity level — §6's experiments
// measure *which* symbols flow, not their payloads (payload correctness
// is covered by internal/fountain, internal/recode and internal/peer).
// Completion follows §6.1's simplifying assumption of a constant 7%
// decoding overhead: the receiver is done when it holds
// Target = ⌈1.07·n⌉ distinct encoded symbols.
//
// A full sender is a true digital fountain: every transmission is a fresh
// symbol drawn from the unbounded encoding universe, so it is new and
// useful with probability 1 (collisions with a 64-bit space are
// negligible and additionally avoided by construction here).
package transfer

import (
	"errors"
	"fmt"

	"icd/internal/keyset"
	"icd/internal/prng"
	"icd/internal/recode"
	"icd/internal/strategy"
)

// DecodingOverhead is §6.1's simplifying assumption: receivers need
// (1+DecodingOverhead)·n distinct symbols to reconstruct n blocks.
const DecodingOverhead = 0.07

// Target returns the completion threshold for n source blocks.
func Target(n int) int {
	t := int(float64(n)*(1+DecodingOverhead) + 0.999999)
	return t
}

// SenderSpec describes one sender.
type SenderSpec struct {
	// Set is the sender's working set (ignored for full senders).
	Set *keyset.Set
	// Kind is the strategy a partial sender runs (ignored for full
	// senders, which always stream fresh regular symbols).
	Kind strategy.Kind
	// Full marks a sender holding the complete content.
	Full bool
}

// Config configures one simulated download.
type Config struct {
	// Receiver is the receiver's initial working set (cloned, not
	// mutated).
	Receiver *keyset.Set
	// Senders lists the senders; at least one.
	Senders []SenderSpec
	// Target is the number of distinct symbols that completes the
	// transfer (use Target(n)).
	Target int
	// MaxRounds caps the simulation; 0 means 100 × Target.
	MaxRounds int
	// Strategy carries the reconciliation parameters (zero value = paper
	// defaults).
	Strategy strategy.Config
	// Seed drives all randomness in the run.
	Seed uint64
}

// SenderStats reports one sender's contribution.
type SenderStats struct {
	Kind   strategy.Kind
	Full   bool
	Sent   int // symbols transmitted
	Useful int // distinct encoded symbols the receiver gained processing them
}

// Result is the outcome of one simulated download.
type Result struct {
	Completed     bool
	Rounds        int // rounds elapsed (completion can occur mid-round)
	Transmissions int // total symbols sent by all senders
	InitialCount  int // receiver's starting distinct count
	FinalCount    int // receiver's final distinct count
	Target        int
	Senders       []SenderStats
}

// UsefulGained returns how many new distinct symbols the receiver
// acquired.
func (r Result) UsefulGained() int { return r.FinalCount - r.InitialCount }

// Overhead is the Figure 5 metric: transmissions per useful symbol
// delivered, ≥ 1. ("the additional overhead, beyond that of a baseline
// transfer in which encoded content is used" — the baseline moves one
// useful symbol per transmission.)
func (r Result) Overhead() float64 {
	if g := r.UsefulGained(); g > 0 {
		return float64(r.Transmissions) / float64(g)
	}
	return float64(r.Transmissions)
}

// fullSender streams fresh, globally unique symbol ids: a digital
// fountain over the unbounded universe. IDs are tagged into a reserved
// region so they can never collide with scenario-constructed ids.
type fullSender struct {
	next uint64
}

const fullSenderTag = uint64(1) << 63

func (f *fullSender) Next() recode.Symbol {
	f.next++
	return recode.Symbol{IDs: []uint64{fullSenderTag | f.next}}
}

// Run simulates one download to completion (or MaxRounds).
func Run(cfg Config) (Result, error) {
	if cfg.Receiver == nil {
		return Result{}, errors.New("transfer: nil receiver")
	}
	if len(cfg.Senders) == 0 {
		return Result{}, errors.New("transfer: no senders")
	}
	if cfg.Target <= 0 {
		return Result{}, errors.New("transfer: non-positive target")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100 * cfg.Target
	}

	rng := prng.New(cfg.Seed)
	dec := recode.NewDecoder(false)
	cfg.Receiver.Each(func(id uint64) { dec.AddKnown(id, nil) })

	type senderState struct {
		spec    SenderSpec
		partial *strategy.Sender
		full    *fullSender
		stats   SenderStats
	}
	senders := make([]*senderState, len(cfg.Senders))
	for i, spec := range cfg.Senders {
		st := &senderState{spec: spec, stats: SenderStats{Kind: spec.Kind, Full: spec.Full}}
		if spec.Full {
			st.full = &fullSender{next: uint64(i) << 40} // disjoint id streams per full sender
		} else {
			if spec.Set == nil || spec.Set.Len() == 0 {
				return Result{}, fmt.Errorf("transfer: partial sender %d has no symbols", i)
			}
			ps, err := strategy.NewSender(spec.Kind, rng.Split(), spec.Set, cfg.Receiver, cfg.Strategy)
			if err != nil {
				return Result{}, fmt.Errorf("transfer: sender %d: %w", i, err)
			}
			st.partial = ps
		}
		senders[i] = st
	}

	res := Result{
		InitialCount: dec.KnownCount(),
		Target:       cfg.Target,
		Senders:      make([]SenderStats, len(senders)),
	}
	done := dec.KnownCount() >= cfg.Target

	for round := 0; !done && round < maxRounds; round++ {
		res.Rounds = round + 1
		for _, st := range senders {
			var sym recode.Symbol
			if st.full != nil {
				sym = st.full.Next()
			} else {
				sym = st.partial.Next()
			}
			st.stats.Sent++
			res.Transmissions++

			before := dec.KnownCount()
			if len(sym.IDs) == 1 {
				// A regular encoded symbol: joins the working set directly
				// and may unlock buffered recoded symbols.
				dec.AddKnown(sym.IDs[0], nil)
			} else {
				if _, err := dec.Add(sym); err != nil {
					return Result{}, err
				}
			}
			st.stats.Useful += dec.KnownCount() - before

			if dec.KnownCount() >= cfg.Target {
				done = true
				break
			}
		}
	}
	res.Completed = done
	res.FinalCount = dec.KnownCount()
	for i, st := range senders {
		res.Senders[i] = st.stats
	}
	return res, nil
}

// RunBaselineFullSender computes the rounds a single full sender needs —
// the denominator of the paper's speedup and relative-rate metrics. With
// every transmission useful, it is exactly Target − |Receiver| (floored
// at 1 to avoid division by zero).
func RunBaselineFullSender(receiver *keyset.Set, target int) int {
	rounds := target - receiver.Len()
	if rounds < 1 {
		rounds = 1
	}
	return rounds
}

// Speedup is the Figure 6/7/8 metric: baseline full-sender time divided
// by the parallel time of this run.
func Speedup(res Result, baselineRounds int) float64 {
	if res.Rounds == 0 {
		return 1
	}
	return float64(baselineRounds) / float64(res.Rounds)
}
