package transfer

import (
	"math"
	"testing"

	"icd/internal/keyset"
	"icd/internal/prng"
	"icd/internal/strategy"
)

func TestTarget(t *testing.T) {
	if got := Target(100); got != 107 {
		t.Fatalf("Target(100) = %d", got)
	}
	if got := Target(23968); got != 25646 {
		t.Fatalf("Target(23968) = %d, want 25646", got)
	}
}

func TestFullSenderAloneIsBaseline(t *testing.T) {
	rng := prng.New(1)
	recv := keyset.Random(rng, 550)
	target := Target(1000) // 1070
	res, err := Run(Config{
		Receiver: recv,
		Senders:  []SenderSpec{{Full: true}},
		Target:   target,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("full sender did not complete")
	}
	want := target - 550
	if res.Transmissions != want {
		t.Fatalf("full sender took %d transmissions, want exactly %d", res.Transmissions, want)
	}
	if math.Abs(res.Overhead()-1) > 1e-9 {
		t.Fatalf("full sender overhead %.4f, want 1", res.Overhead())
	}
	if RunBaselineFullSender(recv, target) != want {
		t.Fatalf("baseline helper disagrees")
	}
}

func TestRandomCompactMatchesCouponCollector(t *testing.T) {
	// Fig 5(a) anchor at correlation 0: receiver holds half of 1.1n, the
	// sender the disjoint other half. Random selection with replacement
	// needs ≈ |B|·(H(|B|) − H(|B|−need)) transmissions.
	const n = 1000
	rng := prng.New(2)
	recv, send, err := TwoPeerScenario(rng, n, CompactStretch, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := Target(n)
	var totalOH float64
	const trials = 10
	for tr := 0; tr < trials; tr++ {
		res, err := Run(Config{
			Receiver: recv,
			Senders:  []SenderSpec{{Set: send, Kind: strategy.Random}},
			Target:   target,
			Seed:     uint64(tr),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("did not complete")
		}
		totalOH += res.Overhead()
	}
	got := totalOH / trials

	// Analytic expectation.
	b := float64(send.Len())
	need := float64(target - recv.Len())
	var expSends float64
	for k := 0.0; k < need; k++ {
		expSends += b / (b - k)
	}
	want := expSends / need
	if math.Abs(got-want) > 0.35 {
		t.Fatalf("Random overhead %.3f, coupon-collector predicts %.3f", got, want)
	}
}

func TestBFStrategiesBeatObliviousAtHighCorrelation(t *testing.T) {
	// The qualitative Fig 5(a) result: at high correlation, Bloom-filter
	// strategies out-perform their oblivious counterparts. Run at n=2000,
	// the scale the experiment harness uses (the Recode/BF chunking
	// heuristic assumes pools of several hundred symbols).
	const n = 2000
	rng := prng.New(3)
	recv, send, err := TwoPeerScenario(rng, n, CompactStretch, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	target := Target(n)
	overhead := func(kind strategy.Kind) float64 {
		var sum float64
		const trials = 3
		for tr := 0; tr < trials; tr++ {
			res, err := Run(Config{
				Receiver: recv,
				Senders:  []SenderSpec{{Set: send, Kind: kind}},
				Target:   target,
				Seed:     uint64(100 + tr),
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Overhead()
		}
		return sum / trials
	}
	rand := overhead(strategy.Random)
	randBF := overhead(strategy.RandomBF)
	rec := overhead(strategy.Recode)
	recBF := overhead(strategy.RecodeBF)
	if randBF >= rand {
		t.Errorf("Random/BF overhead %.2f not below Random %.2f at corr 0.4", randBF, rand)
	}
	// Recode/BF pays a constant chunk-rotation cost (§6.1 restricted
	// domains) but must stay in the same band as Recode at high
	// correlation and far below the random strategies.
	if recBF >= rec+0.35 {
		t.Errorf("Recode/BF overhead %.2f far above Recode %.2f at corr 0.4", recBF, rec)
	}
	if recBF >= randBF {
		t.Errorf("Recode/BF overhead %.2f not below Random/BF %.2f", recBF, randBF)
	}
	t.Logf("corr=0.4 compact: Random %.2f Random/BF %.2f Recode %.2f Recode/BF %.2f",
		rand, randBF, rec, recBF)
}

func TestSpeedupWithPartialSenderInRange(t *testing.T) {
	// Fig 6: adding a partial sender to a full sender yields speedup in
	// (1, 2] — it can at best double the rate. A single seeded run of this
	// scenario is noisy (the per-seed distribution spans roughly 1.1–1.9),
	// so the sanity floor is asserted on a mean over several seeds.
	const n = 600
	const trials = 5
	var sum float64
	for k := uint64(0); k < trials; k++ {
		rng := prng.New(4 + k)
		recv, send, err := TwoPeerScenario(rng, n, CompactStretch, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		target := Target(n)
		res, err := Run(Config{
			Receiver: recv,
			Senders: []SenderSpec{
				{Full: true},
				{Set: send, Kind: strategy.RecodeBF},
			},
			Target: target,
			Seed:   11 + k,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("did not complete")
		}
		sp := Speedup(res, RunBaselineFullSender(recv, target))
		if sp <= 1.0 || sp > 2.0+1e-9 {
			t.Fatalf("trial %d: speedup %.3f outside (1, 2]", k, sp)
		}
		sum += sp
	}
	if mean := sum / trials; mean < 1.3 {
		t.Fatalf("mean Recode/BF speedup %.3f suspiciously low (paper: near 2)", mean)
	}
}

func TestMultiPeerScenarioShape(t *testing.T) {
	rng := prng.New(5)
	const n = 1000
	recv, senders, err := MultiPeerScenario(rng, n, CompactStretch, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(senders) != 4 {
		t.Fatalf("senders = %d", len(senders))
	}
	// Every peer has the same size.
	for _, s := range senders {
		if s.Len() != recv.Len() {
			t.Fatalf("peer sizes differ: %d vs %d", s.Len(), recv.Len())
		}
	}
	// The shared pool: intersection of all peers ≈ corr·s.
	inter := recv.Clone()
	for _, s := range senders {
		inter = inter.Intersect(s)
	}
	wantShared := 0.2 * float64(recv.Len())
	if math.Abs(float64(inter.Len())-wantShared) > wantShared/4+2 {
		t.Fatalf("shared pool %d, want ≈%.0f", inter.Len(), wantShared)
	}
	// Union ≈ 1.1n.
	union := recv.Clone()
	for _, s := range senders {
		union = union.Union(s)
	}
	if math.Abs(float64(union.Len())-1.1*n) > 0.05*n {
		t.Fatalf("union %d, want ≈%d", union.Len(), int(1.1*n))
	}
}

func TestFourPartialSendersParallelSpeedup(t *testing.T) {
	// Fig 8 anchor: at low correlation, four Recode/BF partial senders
	// should deliver a relative rate well above 1.
	const n = 600
	rng := prng.New(6)
	recv, senders, err := MultiPeerScenario(rng, n, CompactStretch, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	target := Target(n)
	specs := make([]SenderSpec, len(senders))
	for i, s := range senders {
		specs[i] = SenderSpec{Set: s, Kind: strategy.RecodeBF}
	}
	res, err := Run(Config{Receiver: recv, Senders: specs, Target: target, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("did not complete: %d/%d", res.FinalCount, target)
	}
	rate := Speedup(res, RunBaselineFullSender(recv, target))
	if rate < 1.5 {
		t.Fatalf("relative rate %.3f with 4 partial senders, want > 1.5", rate)
	}
	if rate > 4.0+1e-9 {
		t.Fatalf("relative rate %.3f exceeds sender count", rate)
	}
	t.Logf("4 × Recode/BF relative rate at corr 0.05: %.2f", rate)
}

func TestDeterministicGivenSeed(t *testing.T) {
	const n = 300
	rng1 := prng.New(7)
	recvA, sendA, _ := TwoPeerScenario(rng1, n, CompactStretch, 0.2)
	rng2 := prng.New(7)
	recvB, sendB, _ := TwoPeerScenario(rng2, n, CompactStretch, 0.2)
	if !recvA.Equal(recvB) || !sendA.Equal(sendB) {
		t.Fatal("scenario construction not deterministic")
	}
	run := func(recv, send *keyset.Set) Result {
		res, err := Run(Config{
			Receiver: recv,
			Senders:  []SenderSpec{{Set: send, Kind: strategy.RecodeMW}},
			Target:   Target(n),
			Seed:     42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(recvA, sendA), run(recvB, sendB)
	if r1.Transmissions != r2.Transmissions || r1.Rounds != r2.Rounds || r1.FinalCount != r2.FinalCount {
		t.Fatalf("same seed, different results: %+v vs %+v", r1, r2)
	}
}

func TestMaxRoundsDNF(t *testing.T) {
	rng := prng.New(8)
	recv, send, _ := TwoPeerScenario(rng, 500, CompactStretch, 0)
	res, err := Run(Config{
		Receiver:  recv,
		Senders:   []SenderSpec{{Set: send, Kind: strategy.Random}},
		Target:    Target(500),
		MaxRounds: 3,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("completed in 3 rounds?!")
	}
	if res.Rounds != 3 || res.Transmissions != 3 {
		t.Fatalf("rounds=%d transmissions=%d", res.Rounds, res.Transmissions)
	}
}

func TestRunValidation(t *testing.T) {
	rng := prng.New(9)
	recv := keyset.Random(rng, 10)
	cases := []Config{
		{Senders: []SenderSpec{{Full: true}}, Target: 5},                         // nil receiver
		{Receiver: recv, Target: 5},                                              // no senders
		{Receiver: recv, Senders: []SenderSpec{{Full: true}}, Target: 0},         // bad target
		{Receiver: recv, Senders: []SenderSpec{{Set: keyset.New(0)}}, Target: 5}, // empty partial
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAlreadyComplete(t *testing.T) {
	rng := prng.New(10)
	recv := keyset.Random(rng, 100)
	res, err := Run(Config{
		Receiver: recv,
		Senders:  []SenderSpec{{Full: true}},
		Target:   50,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Transmissions != 0 || res.Rounds != 0 {
		t.Fatalf("pre-complete run: %+v", res)
	}
}

func TestScenarioValidation(t *testing.T) {
	rng := prng.New(11)
	if _, _, err := TwoPeerScenario(rng, 0, 1.1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := TwoPeerScenario(rng, 100, 0.9, 0); err == nil {
		t.Error("stretch<1 accepted")
	}
	if _, _, err := TwoPeerScenario(rng, 100, 1.1, -0.1); err == nil {
		t.Error("negative corr accepted")
	}
	// Beyond the |B| ≤ n bound.
	if _, _, err := TwoPeerScenario(rng, 100, 1.1, 0.6); err == nil {
		t.Error("corr beyond bound accepted")
	}
	if _, _, err := MultiPeerScenario(rng, 100, 1.1, 0.2, 0); err == nil {
		t.Error("0 senders accepted")
	}
	if _, _, err := MultiPeerScenario(rng, 100, 1.1, 1.0, 2); err == nil {
		t.Error("corr=1 accepted")
	}
}

func TestTwoPeerScenarioProperties(t *testing.T) {
	rng := prng.New(12)
	const n = 2000
	for _, corr := range []float64{0, 0.15, 0.3, 0.44} {
		recv, send, err := TwoPeerScenario(rng, n, CompactStretch, corr)
		if err != nil {
			t.Fatalf("corr=%v: %v", corr, err)
		}
		// Receiver holds half the distinct symbols.
		if got := recv.Len(); got != int(CompactStretch*n)/2 {
			t.Fatalf("receiver size %d", got)
		}
		// Correlation |A∩B|/|B| matches.
		c := send.ContainmentIn(recv)
		if math.Abs(c-corr) > 0.02 {
			t.Fatalf("constructed correlation %.3f, want %.3f", c, corr)
		}
		// Sender within the n cap.
		if send.Len() > n {
			t.Fatalf("sender size %d > n", send.Len())
		}
		// Union covers all distinct symbols.
		if u := recv.Union(send).Len(); u != int(CompactStretch*n) {
			t.Fatalf("union %d, want %d", u, int(CompactStretch*n))
		}
	}
}

func BenchmarkRunRecodeBFCompact(b *testing.B) {
	rng := prng.New(1)
	recv, send, err := TwoPeerScenario(rng, 1000, CompactStretch, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Receiver: recv,
			Senders:  []SenderSpec{{Set: send, Kind: strategy.RecodeBF}},
			Target:   Target(1000),
			Seed:     uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
