package transfer

import (
	"fmt"

	"icd/internal/keyset"
	"icd/internal/prng"
)

// Scenario constructors reproducing the §6.3 initial conditions. The
// "stretch" factor is the ratio of distinct symbols in the system to the
// number of source blocks n: 1.1 for the paper's compact scenarios
// ("only slightly more than necessary for recovery") and 1.5 for the
// stretched ones.

// CompactStretch and StretchedStretch are the §6.3 scenario factors.
const (
	CompactStretch   = 1.1
	StretchedStretch = 1.5
)

// TwoPeerScenario builds the Figure 5/6 initial conditions: D = stretch·n
// distinct symbols exist; the receiver holds half of them; the sender
// holds the other half plus enough of the receiver's symbols to reach
// correlation corr = |A∩B| / |B|. Per the paper, no partial peer may
// exceed n symbols, which bounds corr by 1 − stretch/2 (0.45 compact,
// 0.25 stretched — exactly the x-ranges of Figures 5 and 6).
func TwoPeerScenario(rng *prng.Rand, n int, stretch, corr float64) (receiver, sender *keyset.Set, err error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("transfer: n = %d", n)
	}
	if stretch < 1 {
		return nil, nil, fmt.Errorf("transfer: stretch %.3f < 1", stretch)
	}
	if corr < 0 || corr >= 1 {
		return nil, nil, fmt.Errorf("transfer: correlation %.3f outside [0,1)", corr)
	}
	d := int(stretch * float64(n))
	half := d / 2
	senderSize := int(float64(half)/(1-corr) + 0.5)
	if senderSize > n {
		return nil, nil, fmt.Errorf("transfer: correlation %.3f needs sender size %d > n = %d (max corr = %.3f)",
			corr, senderSize, n, 1-stretch/2)
	}
	universe := keyset.Random(rng, d)
	receiver = keyset.New(half)
	sender = keyset.New(senderSize)
	for i := 0; i < half; i++ {
		receiver.Add(universe.At(i))
	}
	for i := half; i < d; i++ {
		sender.Add(universe.At(i))
	}
	// Overlap: sample from the receiver's half.
	for _, id := range receiver.Sample(rng, senderSize-sender.Len()) {
		sender.Add(id)
	}
	return receiver, sender, nil
}

// MultiPeerScenario builds the Figure 7/8 initial conditions: numSenders
// partial senders plus the receiver, every peer holding the same number
// s of symbols; a fraction corr of each peer's symbols is a pool common
// to all peers, and the rest are unique to that peer ("each of the
// symbols in the system is initially either distributed to all of the
// peers or is known to only one peer"). s solves
// s·(corr + P·(1−corr)) = stretch·n with P = numSenders+1 peers, subject
// to s ≤ n.
func MultiPeerScenario(rng *prng.Rand, n int, stretch, corr float64, numSenders int) (receiver *keyset.Set, senders []*keyset.Set, err error) {
	if n <= 0 || numSenders < 1 {
		return nil, nil, fmt.Errorf("transfer: n=%d senders=%d", n, numSenders)
	}
	if corr < 0 || corr >= 1 {
		return nil, nil, fmt.Errorf("transfer: correlation %.3f outside [0,1)", corr)
	}
	peers := numSenders + 1
	d := stretch * float64(n)
	s := int(d/(corr+float64(peers)*(1-corr)) + 0.5)
	if s > n {
		return nil, nil, fmt.Errorf("transfer: correlation %.3f needs peer size %d > n = %d", corr, s, n)
	}
	if s < 1 {
		return nil, nil, fmt.Errorf("transfer: degenerate peer size %d", s)
	}
	shared := int(corr*float64(s) + 0.5)
	unique := s - shared

	pool := keyset.Random(rng, shared)
	build := func() *keyset.Set {
		set := pool.Clone()
		for set.Len() < shared+unique {
			set.Add(rng.Uint64())
		}
		return set
	}
	receiver = build()
	senders = make([]*keyset.Set, numSenders)
	for i := range senders {
		senders[i] = build()
	}
	return receiver, senders, nil
}

// MaxTwoPeerCorrelation returns the largest valid correlation for
// TwoPeerScenario at the given stretch: 1 − stretch/2.
func MaxTwoPeerCorrelation(stretch float64) float64 { return 1 - stretch/2 }
