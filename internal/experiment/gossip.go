package experiment

// gossip.go measures protocol-v4 gossip peer discovery and the adaptive
// SUMMARY_REFRESH cadence end to end: an N-node swarm bootstrapped from
// a single seed address must self-assemble the full mesh (convergence),
// and the adaptive duplicate-rate controller must beat the fixed
// refresh cadence on duplicate symbols without costing wall clock. Both
// claims are reported as table rows CI archives (BENCH_pr4.json carries
// the convergence row).

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"icd/internal/peer"
)

// GossipSwarmConfig sizes one self-assembling swarm run.
type GossipSwarmConfig struct {
	Nodes          int    // collaborative nodes, each given only the seed address
	N              int    // content blocks
	BlockSize      int    // bytes per block
	Seed           uint64 // drives content and symbol streams
	Adaptive       bool   // adaptive refresh cadence vs fixed RefreshBatches
	RefreshBatches int    // base refresh cadence (fixed mode uses it as-is)
}

// GossipSwarmResult aggregates one swarm run.
type GossipSwarmResult struct {
	Elapsed          time.Duration // until every node completed
	MeanPeersPerNode float64       // sessions that delivered ≥1 symbol, per node
	Discovered       int           // gossip-admitted sessions across the swarm
	DiscoveredUseful int           // ... of those, ones that contributed useful symbols
	DupRate          float64       // 1 - useful/received over every session
	Refreshes        int           // SUMMARY_REFRESH frames sent across the swarm
}

// RunGossipSwarm boots Nodes collaborative nodes that each know only
// the seed's address: every node advertises its own synthetic listen
// address, the seed relays what it has heard, and discovered peers are
// admitted through the orchestrator's gossip path. It returns once
// every node holds verified content.
func RunGossipSwarm(cfg GossipSwarmConfig) (GossipSwarmResult, error) {
	var res GossipSwarmResult
	fix, err := BuildSwarmFixture(cfg.N, cfg.BlockSize, cfg.Seed)
	if err != nil {
		return res, err
	}
	seedSrv, err := peer.NewFullServer(fix.Info, fix.Content)
	if err != nil {
		return res, err
	}
	// A mildly throttled seed makes discovery matter: nodes that only
	// ever talk to the seed pay for it, nodes that find each other
	// exchange at pipe speed.
	fix.AddServer("seed", seedSrv, 200*time.Microsecond)

	type outcome struct {
		res *peer.FetchResult
		err error
	}
	outs := make([]outcome, cfg.Nodes)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Nodes; i++ {
		addr := fmt.Sprintf("N%d", i+1)
		gossip := peer.NewGossip(addr)
		o := peer.NewOrchestrator(fix.Info.ID, peer.FetchOptions{
			Batch:             8,
			Timeout:           time.Minute,
			MaxUselessBatches: 1 << 20, // peers start empty; patience, not eviction
			MaxPeers:          cfg.Nodes + 1,
			MaxReconnects:     10, // discovered nodes may not be listening yet
			ReconnectBackoff:  2 * time.Millisecond,
			AdvertiseAddr:     addr,
			Gossip:            gossip,
			AdaptiveRefresh:   cfg.Adaptive,
			RefreshBatches:    cfg.RefreshBatches,
			RefreshGrowth:     0.02,
			Dial:              fix.Dial,
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := o.Run(context.Background(), "seed")
			outs[i] = outcome{r, err}
		}(i)
		// The node serves its growing working set as soon as the first
		// handshake fixes the metadata — from then on it is dialable and
		// worth gossiping about.
		go func() {
			info, err := o.WaitInfo(context.Background())
			if err != nil {
				return
			}
			live, err := peer.NewLiveServer(info, o)
			if err != nil {
				return
			}
			live.SetGossip(gossip)
			fix.AddServer(addr, live, 0)
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	received, useful, contributing := 0, 0, 0
	for i, out := range outs {
		if out.err != nil {
			return res, fmt.Errorf("experiment: gossip node %d: %w", i+1, out.err)
		}
		if !bytes.Equal(out.res.Data, fix.Content) {
			return res, fmt.Errorf("experiment: gossip node %d content mismatch", i+1)
		}
		for _, p := range out.res.Peers {
			received += p.SymbolsReceived
			useful += p.UsefulSymbols
			res.Refreshes += p.RefreshesSent
			if p.SymbolsReceived > 0 {
				contributing++
			}
			if p.Discovered {
				res.Discovered++
				if p.UsefulSymbols > 0 {
					res.DiscoveredUseful++
				}
			}
		}
	}
	res.MeanPeersPerNode = float64(contributing) / float64(cfg.Nodes)
	if received > 0 {
		res.DupRate = 1 - float64(useful)/float64(received)
	}
	return res, nil
}

// overlapFetch is the controlled adaptive-vs-fixed comparison: one
// receiver draining three heavily overlapping partial senders. Every
// symbol a sender transmits from a stale recoding domain is a likely
// duplicate, so the refresh policy directly sets the duplicate bill.
func overlapFetch(n, blockSize int, seed uint64, adaptive bool, refreshBatches int) (*peer.FetchResult, time.Duration, error) {
	fix, err := BuildSwarmFixture(n, blockSize, seed)
	if err != nil {
		return nil, 0, err
	}
	pool := 2 * n
	ids, payloads, err := fix.EncodedPrefix(pool, seed+3)
	if err != nil {
		return nil, 0, err
	}
	ranges := [][2]int{{0, pool * 6 / 10}, {pool * 2 / 10, pool * 8 / 10}, {pool * 4 / 10, pool}}
	for i, r := range ranges {
		srv, err := peer.NewPartialServer(fix.Info, subset(ids, payloads, r[0], r[1]))
		if err != nil {
			return nil, 0, err
		}
		fix.AddServer(fmt.Sprintf("P%d", i+1), srv, 0)
	}
	return DriveSwarmFetch(fix, []string{"P1", "P2", "P3"}, peer.FetchOptions{
		Batch:             16,
		Timeout:           time.Minute,
		MaxUselessBatches: 1 << 20,
		AdaptiveRefresh:   adaptive,
		RefreshBatches:    refreshBatches,
		RefreshGrowth:     0.05,
	})
}

// GossipSwarm is the PR 4 control-plane measurement: swarm
// self-assembly from a single seed address, and duplicate-rate /
// wall-clock cost of the fixed vs adaptive refresh cadence — in both
// the controlled 3-overlapping-partials topology and the full gossip
// swarm.
func GossipSwarm(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		ID:     "gossip",
		Title:  "gossip discovery + adaptive refresh (net.Pipe transports)",
		Header: []string{"scenario", "peers/node", "discovered", "dup-rate", "refreshes", "elapsed"},
	}

	n := o.N
	if n > 600 {
		n = 600 // control-plane rows measure policy, not box patience
	}
	const refreshBatches = 16
	for _, adaptive := range []bool{false, true} {
		res, elapsed, err := overlapFetch(n, 64, o.Seed+11, adaptive, refreshBatches)
		if err != nil {
			return t, err
		}
		received, useful, refreshes := 0, 0, 0
		for _, p := range res.Peers {
			received += p.SymbolsReceived
			useful += p.UsefulSymbols
			refreshes += p.RefreshesSent
		}
		name := "1 rx / 3 overlap partials, fixed"
		if adaptive {
			name = "1 rx / 3 overlap partials, adaptive"
		}
		t.Rows = append(t.Rows, []string{name, "-", "-",
			fmt.Sprintf("%.1f%%", 100*(1-float64(useful)/float64(received))),
			fmt.Sprintf("%d", refreshes),
			elapsed.Round(time.Millisecond).String()})
	}

	swarmN := n
	if swarmN > 240 {
		swarmN = 240 // the throttled seed dominates; keep the rows quick
	}
	for _, adaptive := range []bool{false, true} {
		res, err := RunGossipSwarm(GossipSwarmConfig{
			Nodes:          5,
			N:              swarmN,
			BlockSize:      64,
			Seed:           o.Seed + 13,
			Adaptive:       adaptive,
			RefreshBatches: 8,
		})
		if err != nil {
			return t, err
		}
		name := "gossip swarm 5+seed, fixed"
		if adaptive {
			name = "gossip swarm 5+seed, adaptive"
		}
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%.1f", res.MeanPeersPerNode),
			fmt.Sprintf("%d (%d useful)", res.Discovered, res.DiscoveredUseful),
			fmt.Sprintf("%.1f%%", 100*res.DupRate),
			fmt.Sprintf("%d", res.Refreshes),
			res.Elapsed.Round(time.Millisecond).String()})
	}
	return t, nil
}
