package experiment

// lab.go is the thousand-node scenario lab (PR 7): the clean, lossy and
// churn presets of internal/scenario run at swarm scale over the
// shaped-link transport, reporting the three swarm metrics the roadmap
// asks for — convergence time, completion fairness (p95/p50 spread) and
// origin offload — at 100 and 1000 nodes. cmd/icdbench renders the
// table (`-exp lab`) and writes the rows as the BENCH_pr7.json
// artifact.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"icd/internal/scenario"
)

// LabRow is one scenario × size measurement — the BENCH_pr7.json
// artifact schema.
type LabRow struct {
	Scenario       string  `json:"scenario"`
	Nodes          int     `json:"nodes"`
	Converged      bool    `json:"converged"`
	ConvergenceMs  float64 `json:"convergence_ms"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	FairnessSpread float64 `json:"fairness_spread"`
	OriginOffload  float64 `json:"origin_offload"`
	Completed      int     `json:"completed"`
	Churned        int     `json:"churned"`
	Failed         int     `json:"failed"`
	ElapsedMs      float64 `json:"elapsed_ms"`
	// Series is the run's swarm time-series, sampled from every live
	// node's metrics registry — the convergence curve behind the
	// endpoint scalars above.
	Series []SeriesPoint `json:"series,omitempty"`
}

// SeriesPoint is one sampled tick of a lab run's swarm time-series.
type SeriesPoint struct {
	OffsetMs        float64 `json:"offset_ms"`
	UsefulPerSec    float64 `json:"useful_per_sec"`
	DuplicatePerSec float64 `json:"duplicate_per_sec"`
	LiveConns       int64   `json:"live_conns"`
	BannedPeers     int64   `json:"banned_peers"`
	WindowInFlight  int64   `json:"window_in_flight"`
}

// seriesPoints converts a run's samples to the artifact schema.
func seriesPoints(samples []scenario.Sample) []SeriesPoint {
	pts := make([]SeriesPoint, 0, len(samples))
	for _, s := range samples {
		pts = append(pts, SeriesPoint{
			OffsetMs:        ms(s.Offset),
			UsefulPerSec:    s.UsefulPerSec,
			DuplicatePerSec: s.DuplicatePerSec,
			LiveConns:       s.LiveConns,
			BannedPeers:     s.BannedPeers,
			WindowInFlight:  s.WindowInFlight,
		})
	}
	return pts
}

// LabSizes returns the node counts a lab run measures. maxNodes caps
// them (0 = no cap): a cap below the smallest canonical size runs one
// row at exactly the cap, so CI smokes stay cheap without losing the
// row entirely.
func LabSizes(maxNodes int) []int {
	canonical := []int{100, 1000}
	if maxNodes <= 0 {
		return canonical
	}
	var sizes []int
	for _, s := range canonical {
		if s <= maxNodes {
			sizes = append(sizes, s)
		}
	}
	if len(sizes) == 0 {
		sizes = []int{maxNodes}
	}
	return sizes
}

// LabResults runs every preset at every size and returns the rows. A
// scenario that fails to converge (for its churn survivors) is an
// error: the lab's acceptance bar is convergence at scale, and a
// silently non-converged row would poison the tracked artifact.
func LabResults(o Options, maxNodes int) ([]LabRow, error) {
	o = o.withDefaults()
	var rows []LabRow
	for _, nodes := range LabSizes(maxNodes) {
		for i, name := range scenario.PresetNames() {
			spec, err := scenario.Preset(name, nodes, o.Seed+uint64(1000*i)+uint64(nodes))
			if err != nil {
				return rows, err
			}
			res, err := scenario.Run(spec)
			if err != nil {
				return rows, err
			}
			if !res.Converged {
				return rows, fmt.Errorf("experiment: lab scenario %q at %d nodes did not converge (%d completed, %d failed, %d churned)",
					name, nodes, res.Completed, res.Failed, res.Churned)
			}
			rows = append(rows, LabRow{
				Scenario:       name,
				Nodes:          res.Nodes,
				Converged:      res.Converged,
				ConvergenceMs:  ms(res.Convergence),
				P50Ms:          ms(res.P50),
				P95Ms:          ms(res.P95),
				FairnessSpread: res.Spread,
				OriginOffload:  res.Offload,
				Completed:      res.Completed,
				Churned:        res.Churned,
				Failed:         res.Failed,
				ElapsedMs:      ms(res.Elapsed),
				Series:         seriesPoints(res.Series),
			})
		}
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// LabTable renders lab rows as an icdbench table.
func LabTable(rows []LabRow) Table {
	t := Table{
		ID:     "lab",
		Title:  "thousand-node scenario lab: convergence, fairness, origin offload (shaped links)",
		Header: []string{"scenario", "nodes", "converged", "convergence", "p50", "p95", "spread", "offload", "churned"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%v", r.Converged),
			fmt.Sprintf("%.0fms", r.ConvergenceMs),
			fmt.Sprintf("%.0fms", r.P50Ms),
			fmt.Sprintf("%.0fms", r.P95Ms),
			fmt.Sprintf("%.2f", r.FairnessSpread),
			fmt.Sprintf("%.2f", r.OriginOffload),
			fmt.Sprintf("%d", r.Churned),
		})
	}
	return t
}

// WriteLabJSON writes the rows as a JSON array artifact.
func WriteLabJSON(path string, rows []LabRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Lab is the registry runner: all presets at the canonical sizes.
func Lab(o Options) (Table, error) {
	rows, err := LabResults(o, 0)
	if err != nil {
		return Table{}, err
	}
	return LabTable(rows), nil
}
