package experiment

// credits.go is the PR 9 credit-scheduling measurement: one consumer
// node fetching three contents from one provider over a single fabric
// wire on a delivery-latency link, where the credit window is the
// binding throughput constraint (≈ window per round trip). One content
// is fully replicated; the other two are served from small partial
// replicas their fetchers exhaust almost immediately — transfers of
// zero marginal utility that nevertheless hold whatever window they are
// granted. Both arms spend the same node-wide window budget: the
// uniform arm splits it evenly across the contents (the pre-PR 9
// behavior, every channel at the same size, 32 frames each), the
// weighted arm lets the node's scheduler size windows by measured
// utility — the stalled fetches drop to the 16-frame floor and the
// freed frames go to the transfer that is actually moving (64 frames).
// The claim under test: utility-weighted windows deliver at least the
// uniform arm's goodput on the useful transfer.
// cmd/icdbench renders the table (`-exp credits`) and writes the rows
// as the BENCH_pr9.json artifact.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"icd/internal/faultnet"
	"icd/internal/fountain"
	"icd/internal/node"
	"icd/internal/peer"
)

// creditsAdvantageFloor is the acceptance bar: weighted-arm goodput
// over uniform-arm goodput on the useful transfers. The scheduler must
// never do worse than a uniform split — the stalled fetch's window is
// pure headroom.
const creditsAdvantageFloor = 1.0

// creditsBudget is the node-wide window budget both arms spend, in
// symbol frames (3 contents: uniform 32 each; weighted floors the two
// stalled fetches at 16 and the useful transfer absorbs the rest, 64).
const creditsBudget = 96

// CreditRow is one arm's measurement — the BENCH_pr9.json artifact
// schema.
type CreditRow struct {
	Mode         string  `json:"mode"`          // "uniform" or "weighted"
	BudgetFrames int     `json:"budget_frames"` // node-wide window budget
	Blocks       int     `json:"blocks"`        // per content
	Bytes        int     `json:"bytes"`         // useful content bytes
	Completed    bool    `json:"completed"`
	ElapsedMs    float64 `json:"elapsed_ms"` // until the useful transfer completed
	GoodputKBps  float64 `json:"goodput_kbps"`
	// StalledSymbols is the stalled fetches' combined working set when
	// the useful transfer finished — evidence they really did plateau.
	StalledSymbols int `json:"stalled_symbols"`
	// Advantage is this row's goodput over the uniform row (1.0 on the
	// uniform row itself).
	Advantage float64 `json:"advantage"`
}

// creditsN clamps the per-content size: long enough that the windows —
// not the handshakes — dominate, short enough for CI.
func creditsN(n int) int {
	if n < 400 {
		return 400
	}
	if n > 1200 {
		return 1200
	}
	return n
}

// encodedSubset encodes `count` distinct symbols of the content — the
// partial replica whose span the stalled fetch exhausts.
func encodedSubset(info peer.ContentInfo, content []byte, count int, seed uint64) (map[uint64][]byte, error) {
	blocks, _, err := fountain.SplitIntoBlocks(content, info.BlockSize)
	if err != nil {
		return nil, err
	}
	code, err := fountain.NewCode(info.NumBlocks, nil, info.CodeSeed)
	if err != nil {
		return nil, err
	}
	enc, err := fountain.NewEncoder(code, blocks, seed)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64][]byte, count)
	for len(out) < count {
		sym := enc.Next()
		if _, dup := out[sym.ID]; !dup {
			out[sym.ID] = append([]byte(nil), sym.Data...)
		}
		enc.Release(sym)
	}
	return out, nil
}

// runCreditsArm runs one arm: weighted hands the budget to the node's
// scheduler (Options.WindowBudget), uniform pins every channel to an
// equal share of the same budget.
func runCreditsArm(o Options, weighted bool) (CreditRow, error) {
	n := creditsN(o.N)
	row := CreditRow{
		Mode:         "uniform",
		BudgetFrames: creditsBudget,
		Blocks:       n,
	}
	if weighted {
		row.Mode = "weighted"
	}

	// A symmetric delivery-latency link: each endpoint contributes
	// 2.5ms, so a credit round trip costs ~10ms and throughput tracks
	// the window almost linearly.
	sn := faultnet.NewShapedNet(o.Seed + 31)
	sn.SetDeliveryLatency(true)
	sn.SetDefaultClass(faultnet.LinkClass{Name: "lan", Latency: 2500 * time.Microsecond})

	provider := node.New(node.Options{Listen: "provider", Transport: sn, Tick: 20 * time.Millisecond})
	defer provider.Close()
	infoA, dataA := buildContent(0xA11C, n, 256, o.Seed+41)
	infoB, dataB := buildContent(0xB22C, n, 256, o.Seed+43)
	infoC, dataC := buildContent(0xC33C, n, 256, o.Seed+47)
	if err := provider.ServeFull(infoA, dataA, true); err != nil {
		return row, err
	}
	// The stalled contents: partial replicas of ~15% of the blocks each.
	// Their fetchers drain the span quickly, then receive only
	// duplicates — zero marginal utility at full window occupancy.
	for _, stalled := range []struct {
		info peer.ContentInfo
		data []byte
		seed uint64
	}{{infoB, dataB, o.Seed + 53}, {infoC, dataC, o.Seed + 59}} {
		subset, err := encodedSubset(stalled.info, stalled.data, n*15/100, stalled.seed)
		if err != nil {
			return row, err
		}
		if err := provider.ServePartial(stalled.info, subset, true); err != nil {
			return row, err
		}
	}
	row.Bytes = len(dataA)
	ln, err := sn.Listen("provider")
	if err != nil {
		return row, err
	}
	go provider.Serve(ln)

	fetch := peer.FetchOptions{
		Batch:   16,
		Timeout: 2 * time.Minute,
		// Blind streaming, and a useless-batch budget past the run
		// length: the stalled fetches must keep occupying their windows
		// (the contended resource) instead of reconciling or hanging up.
		SummaryMask:       -1,
		MaxUselessBatches: 1 << 20,
	}
	opts := node.Options{
		Listen:    "consumer",
		Transport: sn.Node("consumer"),
		Tick:      10 * time.Millisecond,
		Fetch:     fetch,
	}
	if weighted {
		opts.WindowBudget = creditsBudget
	} else {
		opts.Fetch.ChannelWindow = creditsBudget / 3
	}
	consumer := node.New(opts)
	defer consumer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	// The stalled fetches never complete; their own context ends them
	// once the useful transfer is done.
	ctxStall, cancelStall := context.WithCancel(ctx)
	defer cancelStall()

	start := time.Now()
	txA, err := consumer.StartFetch(ctx, infoA.ID, "provider")
	if err != nil {
		return row, err
	}
	txB, err := consumer.StartFetch(ctxStall, infoB.ID, "provider")
	if err != nil {
		return row, err
	}
	txC, err := consumer.StartFetch(ctxStall, infoC.ID, "provider")
	if err != nil {
		return row, err
	}

	resA, errA := txA.Wait()
	elapsed := time.Since(start)
	row.StalledSymbols = txB.Orchestrator().Progress() + txC.Orchestrator().Progress()
	cancelStall()
	txB.Wait() // unwound by their context; the error is the cancellation
	txC.Wait()
	if errA != nil {
		return row, fmt.Errorf("experiment: credits %s arm, useful content: %w", row.Mode, errA)
	}
	if !resA.Completed || !bytes.Equal(resA.Data, dataA) {
		return row, fmt.Errorf("experiment: credits %s arm did not recover the useful content", row.Mode)
	}
	row.Completed = true
	row.ElapsedMs = ms(elapsed)
	row.GoodputKBps = float64(row.Bytes) / elapsed.Seconds() / 1024
	return row, nil
}

// CreditsResults runs both arms, uniform first, and enforces the
// acceptance floor: a utility-weighted window split that moves the
// useful transfers slower than a uniform split is a scheduler
// regression the tracked artifact must not absorb silently.
func CreditsResults(o Options) ([]CreditRow, error) {
	o = o.withDefaults()
	uniform, err := runCreditsArm(o, false)
	if err != nil {
		return nil, err
	}
	uniform.Advantage = 1
	weighted, err := runCreditsArm(o, true)
	if err != nil {
		return []CreditRow{uniform}, err
	}
	if uniform.GoodputKBps > 0 {
		weighted.Advantage = weighted.GoodputKBps / uniform.GoodputKBps
	}
	rows := []CreditRow{uniform, weighted}
	if weighted.Advantage < creditsAdvantageFloor {
		return rows, fmt.Errorf("experiment: weighted windows moved %.2fx the uniform goodput, want >= %.2fx",
			weighted.Advantage, creditsAdvantageFloor)
	}
	return rows, nil
}

// CreditsTable renders credit rows as an icdbench table.
func CreditsTable(rows []CreditRow) Table {
	t := Table{
		ID:     "credits",
		Title:  "credit scheduling: utility-weighted vs uniform channel windows, one wire, two stalled contents",
		Header: []string{"mode", "budget", "useful bytes", "stalled syms", "elapsed", "goodput", "advantage"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mode,
			fmt.Sprintf("%d frames", r.BudgetFrames),
			fmt.Sprintf("%d", r.Bytes),
			fmt.Sprintf("%d", r.StalledSymbols),
			fmt.Sprintf("%.0fms", r.ElapsedMs),
			fmt.Sprintf("%.0f KB/s", r.GoodputKBps),
			fmt.Sprintf("%.2fx", r.Advantage),
		})
	}
	return t
}

// WriteCreditsJSON writes the rows as a JSON array artifact
// (BENCH_pr9.json in CI).
func WriteCreditsJSON(path string, rows []CreditRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Credits is the registry runner: both arms plus the floor check.
func Credits(o Options) (Table, error) {
	rows, err := CreditsResults(o)
	if err != nil {
		return Table{}, err
	}
	return CreditsTable(rows), nil
}
