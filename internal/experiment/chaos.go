package experiment

// chaos.go is the hostile-swarm measurement (PR 6): the same
// collaborative swarm the gossip experiment assembles, but running over
// real accept loops on a faultnet pipe network with fault-injecting
// dialers — connections that die mid-frame, corrupting paths, and an
// optional always-corrupting hostile peer. The claim under test: with
// deadlines, stall watchdogs, redial backoff and the penalty box in
// place, the swarm still converges, the hostile peer ends up banned on
// every node that met it, and the degradation against a clean baseline
// is bounded (BENCH_pr6.json carries both rows).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"icd/internal/faultnet"
	"icd/internal/peer"
)

// ChaosSwarmConfig sizes one hostile-swarm run.
type ChaosSwarmConfig struct {
	Nodes     int    // collaborative nodes, each bootstrapped from the seed
	N         int    // content blocks
	BlockSize int    // bytes per block
	Seed      uint64 // drives content, symbol streams and fault decisions
	// Faults is injected on every node's dialed connections (each node
	// derives its own fault stream from Seed).
	Faults faultnet.Faults
	// Hostile adds an always-corrupting peer at address "evil" to every
	// node's bootstrap list; containment means every node that talked to
	// it ends with the address banned.
	Hostile bool
}

// ChaosSwarmResult aggregates one run's robustness counters.
type ChaosSwarmResult struct {
	Elapsed       time.Duration
	Resets        int  // established connections that died mid-stream
	DialFailures  int  // dials that never produced a connection
	CorruptFrames int  // connections dropped over a corrupt frame
	Stalls        int  // stall-watchdog drops
	Reconnects    int  // redial attempts across the swarm
	BannedPeers   int  // sessions whose address ended banned
	Converged     bool // every node completed and verified the content
}

// serveHostile accepts connections at ln and answers every client with
// bytes that can never parse as a frame — the always-corrupting peer the
// penalty box must attribute and contain.
func serveHostile(ln net.Listener) {
	junk := bytes.Repeat([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 64)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			go io.Copy(io.Discard, c) // drain the HELLO so the client never blocks writing
			c.Write(junk)
		}(conn)
	}
}

// RunChaosSwarm boots Nodes collaborative nodes over one faultnet pipe
// network: the seed and every node's live server run real accept loops
// on pn listeners, while each node dials through its own fault-injecting
// wrapper. Nodes know only the seed (plus the hostile peer, when
// enabled); gossip assembles the rest. Node failures are reported
// through Converged, not as errors — a chaos run that fails to converge
// is a measurement, not a crash.
func RunChaosSwarm(cfg ChaosSwarmConfig) (ChaosSwarmResult, error) {
	var res ChaosSwarmResult
	fix, err := BuildSwarmFixture(cfg.N, cfg.BlockSize, cfg.Seed)
	if err != nil {
		return res, err
	}
	pn := faultnet.NewPipeNet()

	seedSrv, err := peer.NewFullServer(fix.Info, fix.Content)
	if err != nil {
		return res, err
	}
	seedLn, err := pn.Listen("seed")
	if err != nil {
		return res, err
	}
	go seedSrv.Serve(seedLn)
	defer seedSrv.Close()

	bootstrap := []string{"seed"}
	if cfg.Hostile {
		evilLn, err := pn.Listen("evil")
		if err != nil {
			return res, err
		}
		go serveHostile(evilLn)
		defer evilLn.Close()
		bootstrap = append(bootstrap, "evil")
	}

	type outcome struct {
		res *peer.FetchResult
		err error
	}
	outs := make([]outcome, cfg.Nodes)
	var liveMu sync.Mutex
	var liveSrvs []*peer.Server
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Nodes; i++ {
		addr := fmt.Sprintf("N%d", i+1)
		faults := cfg.Faults
		faults.Seed = cfg.Seed ^ (uint64(i+1) * 0x9E3779B9)
		// Dial as a named node: accepted conns report this node's listen
		// address as their remote identity, so server-plane misbehavior
		// scoring keys by the same name the dial plane and gossip use.
		tr := faultnet.Wrap(pn.Node(addr), faults)
		gossip := peer.NewGossip(addr)
		// Penalty decay scaled to the run like every other time knob
		// (2ms backoffs, 20ms breaker cooldowns): at the default 30s
		// half-life, every environmental misattribution — an injected
		// corrupt connection charged to the innocent peer on its far end,
		// dial failures into a node whose live server hasn't started —
		// outlives the experiment, and with inbound admission keyed by
		// real peer names those bans partition the swarm in both
		// directions. The truly hostile peer stays contained: every
		// contact re-charges it, and a session's Banned verdict latches
		// the moment the ban ends its redial loop.
		penalties := peer.NewPenaltyBox()
		penalties.SetPolicy(time.Second, peer.DefaultBanScore)
		o := peer.NewOrchestrator(fix.Info.ID, peer.FetchOptions{
			Batch:               8,
			Timeout:             time.Minute,
			MaxUselessBatches:   1 << 20, // peers start empty; patience, not eviction
			MaxPeers:            cfg.Nodes + 2,
			MaxReconnects:       30, // churned conns redial; terminal/banned peers short-circuit
			ReconnectBackoff:    2 * time.Millisecond,
			MaxReconnectBackoff: 100 * time.Millisecond,
			StallTimeout:        10 * time.Second, // watchdog armed, generous for empty starts
			BreakerThreshold:    3,
			BreakerCooldown:     20 * time.Millisecond,
			AdvertiseAddr:       addr,
			Gossip:              gossip,
			Penalties:           penalties,
			Dial:                tr.Dial,
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := o.Run(context.Background(), bootstrap...)
			outs[i] = outcome{r, err}
		}(i)
		// Serve the growing working set on a real accept loop as soon as
		// the first handshake fixes the metadata — inbound misbehavior
		// feeds the same penalty box the fetch sessions charge.
		go func() {
			info, err := o.WaitInfo(context.Background())
			if err != nil {
				return
			}
			live, err := peer.NewLiveServer(info, o)
			if err != nil {
				return
			}
			live.SetGossip(gossip)
			live.SetPenalties(o.Penalties())
			ln, err := pn.Listen(addr)
			if err != nil {
				return
			}
			liveMu.Lock()
			liveSrvs = append(liveSrvs, live)
			liveMu.Unlock()
			live.Serve(ln)
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	liveMu.Lock()
	for _, srv := range liveSrvs {
		srv.Close()
	}
	liveMu.Unlock()

	res.Converged = true
	for _, out := range outs {
		if out.err != nil || out.res == nil || !bytes.Equal(out.res.Data, fix.Content) {
			res.Converged = false
		}
		if out.res == nil {
			continue
		}
		for _, p := range out.res.Peers {
			res.Resets += p.Resets
			res.DialFailures += p.DialFailures
			res.CorruptFrames += p.CorruptFrames
			res.Stalls += p.Stalls
			res.Reconnects += p.Reconnects
			if p.Banned {
				res.BannedPeers++
			}
		}
	}
	return res, nil
}

// Chaos is the PR 6 robustness measurement: the collaborative swarm
// clean, then under 20% connection-kill plus 5% corrupting connections
// plus a hostile always-corrupting peer. Convergence with the hostile
// peer banned is the acceptance bar; the elapsed ratio is the cost of
// surviving the hostile network.
func Chaos(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		ID:     "chaos",
		Title:  "hostile-swarm hardening: fault injection + penalty box (faultnet pipes)",
		Header: []string{"scenario", "converged", "resets", "corrupt", "dial-fails", "banned", "reconnects", "elapsed"},
	}
	n := o.N
	if n > 240 {
		n = 240 // robustness rows measure survival, not box patience
	}
	scenarios := []struct {
		name    string
		faults  faultnet.Faults
		hostile bool
	}{
		{"clean baseline", faultnet.Faults{}, false},
		{"20% kill + 5% corrupt + hostile peer", faultnet.Faults{
			KillProb:    0.2,
			KillAfter:   8 << 10,
			CorruptProb: 0.05,
		}, true},
	}
	for _, sc := range scenarios {
		res, err := RunChaosSwarm(ChaosSwarmConfig{
			Nodes:     5,
			N:         n,
			BlockSize: 64,
			Seed:      o.Seed + 17,
			Faults:    sc.faults,
			Hostile:   sc.hostile,
		})
		if err != nil {
			return t, err
		}
		if !res.Converged {
			return t, fmt.Errorf("experiment: chaos scenario %q did not converge", sc.name)
		}
		if sc.hostile && res.BannedPeers == 0 {
			return t, fmt.Errorf("experiment: chaos scenario %q banned nobody (hostile peer uncontained)", sc.name)
		}
		t.Rows = append(t.Rows, []string{sc.name,
			fmt.Sprintf("%v", res.Converged),
			fmt.Sprintf("%d", res.Resets),
			fmt.Sprintf("%d", res.CorruptFrames),
			fmt.Sprintf("%d", res.DialFailures),
			fmt.Sprintf("%d", res.BannedPeers),
			fmt.Sprintf("%d", res.Reconnects),
			res.Elapsed.Round(time.Millisecond).String()})
	}
	return t, nil
}
