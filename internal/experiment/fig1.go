package experiment

import (
	"fmt"

	"icd/internal/overlay"
	"icd/internal/transfer"
)

// Fig1 reproduces the paper's motivating Figure 1 comparison (E12):
// completion time of the six-node overlay under the three connection
// configurations, with blind forwarding and with informed (reconciled)
// transfers. The paper's qualitative claim — collaborative < parallel <
// tree, and informed ≪ blind — should hold in every run.
func Fig1(o Options) (Table, error) {
	o = o.withDefaults()
	target := transfer.Target(o.N)
	tab := Table{
		ID:    "fig1",
		Title: "Figure 1: delivery configurations (rounds until every node completes)",
		Header: []string{"configuration", "forwarding", "rounds", "transmissions", "useful",
			"efficiency"},
	}
	for _, cfg := range []overlay.Fig1Config{overlay.Fig1Tree, overlay.Fig1Parallel, overlay.Fig1Collaborative} {
		for _, mode := range []overlay.Mode{overlay.RandomForward, overlay.Reconciled} {
			var rounds, transmissions, useful float64
			complete := true
			for tr := 0; tr < o.Trials; tr++ {
				nw, err := overlay.BuildFigure1(cfg, mode, target, o.Seed+uint64(tr))
				if err != nil {
					return Table{}, err
				}
				res, err := nw.Run(200*target, nil)
				if err != nil {
					return Table{}, err
				}
				if !res.AllComplete {
					complete = false
				}
				rounds += float64(res.Rounds)
				transmissions += float64(res.Transmissions)
				useful += float64(res.Useful)
			}
			t := float64(o.Trials)
			row := []string{
				cfg.String(), mode.String(),
				fmt.Sprintf("%.0f", rounds/t),
				fmt.Sprintf("%.0f", transmissions/t),
				fmt.Sprintf("%.0f", useful/t),
				fmt.Sprintf("%.3f", useful/transmissions),
			}
			if !complete {
				row[2] += " (DNF)"
			}
			tab.Rows = append(tab.Rows, row)
		}
	}
	return tab, nil
}
