package experiment

// multicontent.go measures the PR 5 multi-content node end to end over
// in-process pipes: a provider node serving K distinct contents from
// ONE listener (a peer.ServerMux routing HELLOs by content id), and a
// consumer node fetching 1 vs K contents concurrently under one global
// connection budget, its scheduler dividing the slots by marginal
// utility. Reported: aggregate goodput (MB/s across everything fetched)
// and per-content completion times — the numbers that show concurrent
// working sets sharing one engine instead of K processes with K
// listeners. CI archives the micro row in BENCH_pr5.json.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"icd/internal/node"
	"icd/internal/peer"
	"icd/internal/prng"
)

// MultiContentConfig sizes one multi-content node run.
type MultiContentConfig struct {
	Contents  int    // distinct content ids fetched concurrently
	N         int    // blocks per content
	BlockSize int    // bytes per block
	Seed      uint64 // drives every content's bytes
	MaxConns  int    // consumer's global connection budget
}

// MultiContentResult aggregates one run.
type MultiContentResult struct {
	Elapsed    time.Duration   // until the last content completed
	PerContent []time.Duration // completion time of each content, fetch order
	Bytes      int64           // total content bytes fetched
}

// AggregateMBps is the run's total goodput in MB/s.
func (r MultiContentResult) AggregateMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e6
}

// multiNet is a tiny in-process pipe network for multi-content runs
// (SwarmFixture carries one content; here every address may serve many).
type multiNet struct {
	mu      sync.Mutex
	servers map[string]ConnServer
}

func newMultiNet() *multiNet {
	return &multiNet{servers: make(map[string]ConnServer)}
}

func (m *multiNet) add(addr string, s ConnServer) {
	m.mu.Lock()
	m.servers[addr] = s
	m.mu.Unlock()
}

func (m *multiNet) dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	s := m.servers[addr]
	m.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("experiment: no server at %q", addr)
	}
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		s.ServeConn(server)
	}()
	return client, nil
}

// buildContent creates one deterministic content and its metadata.
func buildContent(id uint64, n, blockSize int, seed uint64) (peer.ContentInfo, []byte) {
	rng := prng.New(seed ^ id)
	content := make([]byte, n*blockSize-blockSize/3)
	for i := range content {
		content[i] = byte(rng.Uint64())
	}
	return peer.ContentInfo{
		ID:        id,
		NumBlocks: n,
		BlockSize: blockSize,
		OrigLen:   len(content),
		CodeSeed:  seed ^ id ^ 0x1CD,
	}, content
}

// RunMultiContent boots a provider node serving cfg.Contents distinct
// contents behind one listener and a consumer node fetching all of them
// concurrently under cfg.MaxConns, verifying every byte. It returns
// per-content completion times and the aggregate elapsed/bytes.
func RunMultiContent(cfg MultiContentConfig) (MultiContentResult, error) {
	var res MultiContentResult
	mn := newMultiNet()

	provider := node.New(node.Options{Tick: 50 * time.Millisecond})
	defer provider.Close()
	infos := make([]peer.ContentInfo, cfg.Contents)
	contents := make([][]byte, cfg.Contents)
	for i := range infos {
		infos[i], contents[i] = buildContent(uint64(0xC0+i), cfg.N, cfg.BlockSize, cfg.Seed)
		if err := provider.ServeFull(infos[i], contents[i], true); err != nil {
			return res, err
		}
		res.Bytes += int64(len(contents[i]))
	}
	mn.add("provider", provider.Mux())

	consumer := node.New(node.Options{
		Tick:     10 * time.Millisecond,
		MaxConns: cfg.MaxConns,
		Fetch: peer.FetchOptions{
			Batch:   64,
			Timeout: time.Minute,
			Dial:    mn.dial,
		},
	})
	defer consumer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	transfers := make([]*node.Transfer, cfg.Contents)
	start := time.Now()
	for i, info := range infos {
		t, err := consumer.StartFetch(ctx, info.ID, "provider")
		if err != nil {
			return res, err
		}
		transfers[i] = t
	}
	res.PerContent = make([]time.Duration, cfg.Contents)
	type outcome struct {
		i       int
		elapsed time.Duration
		res     *peer.FetchResult
		err     error
	}
	outs := make(chan outcome, cfg.Contents)
	for i, t := range transfers {
		go func(i int, t *node.Transfer) {
			r, err := t.Wait()
			outs <- outcome{i, time.Since(start), r, err}
		}(i, t)
	}
	for range transfers {
		out := <-outs
		if out.err != nil {
			return res, fmt.Errorf("experiment: multicontent fetch %#x: %w", infos[out.i].ID, out.err)
		}
		if !bytes.Equal(out.res.Data, contents[out.i]) {
			return res, fmt.Errorf("experiment: multicontent content %#x mismatch", infos[out.i].ID)
		}
		res.PerContent[out.i] = out.elapsed
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// MultiContent is the PR 5 measurement: one node, one listener, many
// working sets — aggregate goodput and per-content completion at 1 vs 3
// concurrent contents under the same global connection budget.
func MultiContent(o Options) (Table, error) {
	o = o.withDefaults()
	n := o.N
	if n > 800 {
		n = 800 // multi-content rows measure scheduling, not box patience
	}
	t := Table{
		ID:     "multicontent",
		Title:  "multi-content node: one listener, shared connection budget (net.Pipe transports)",
		Header: []string{"scenario", "agg MB/s", "elapsed", "per-content completion"},
	}
	for _, contents := range []int{1, 3} {
		res, err := RunMultiContent(MultiContentConfig{
			Contents:  contents,
			N:         n,
			BlockSize: 1400,
			Seed:      o.Seed + 17,
			MaxConns:  6,
		})
		if err != nil {
			return t, err
		}
		times := make([]string, len(res.PerContent))
		sorted := append([]time.Duration(nil), res.PerContent...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, d := range sorted {
			times[i] = d.Round(time.Millisecond).String()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d content(s), budget 6", contents),
			fmt.Sprintf("%.1f", res.AggregateMBps()),
			res.Elapsed.Round(time.Millisecond).String(),
			strings.Join(times, " / "),
		})
	}
	return t, nil
}
