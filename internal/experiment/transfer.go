package experiment

import (
	"fmt"

	"icd/internal/fountain"
	"icd/internal/prng"
	"icd/internal/strategy"
	"icd/internal/transfer"
)

// correlationAxis returns the x-axis of a §6.3 figure panel: correlations
// from 0 to just under the scenario's feasibility bound, mirroring the
// paper's printed ranges (compact: 0–0.45, stretched: 0–0.25).
func correlationAxis(stretch float64, points int) []float64 {
	max := transfer.MaxTwoPeerCorrelation(stretch)
	xs := make([]float64, points)
	for i := range xs {
		xs[i] = max * float64(i) / float64(points)
	}
	return xs
}

func stretchOf(compact bool) (float64, string) {
	if compact {
		return transfer.CompactStretch, "compact (1.1n distinct symbols)"
	}
	return transfer.StretchedStretch, "stretched (1.5n distinct symbols)"
}

// Fig5 reproduces Figure 5: overhead of peer-to-peer transfers between
// one receiver and one partial sender, for all five §6.2 strategies, as
// working-set correlation varies.
func Fig5(o Options, compact bool) (Figure, error) {
	o = o.withDefaults()
	stretch, label := stretchOf(compact)
	id := "fig5a"
	if !compact {
		id = "fig5b"
	}
	fig := Figure{
		ID:     id,
		Title:  "Overhead of peer-to-peer transfers, " + label,
		XLabel: "correlation",
		YLabel: "overhead",
		X:      correlationAxis(stretch, 8),
	}
	for _, k := range strategy.AllKinds {
		fig.Series = append(fig.Series, Series{Label: k.String()})
	}
	rng := prng.New(o.Seed)
	for _, corr := range fig.X {
		for si, kind := range strategy.AllKinds {
			var sum float64
			for tr := 0; tr < o.Trials; tr++ {
				recv, send, err := transfer.TwoPeerScenario(rng.Split(), o.N, stretch, corr)
				if err != nil {
					return Figure{}, err
				}
				res, err := transfer.Run(transfer.Config{
					Receiver: recv,
					Senders:  []transfer.SenderSpec{{Set: send, Kind: kind}},
					Target:   transfer.Target(o.N),
					Seed:     rng.Uint64(),
				})
				if err != nil {
					return Figure{}, err
				}
				sum += res.Overhead()
			}
			fig.Series[si].Y = append(fig.Series[si].Y, sum/float64(o.Trials))
		}
	}
	return fig, nil
}

// Fig6 reproduces Figure 6: speedup of a receiver downloading from a full
// sender and a partial sender concurrently, relative to the full sender
// alone.
func Fig6(o Options, compact bool) (Figure, error) {
	o = o.withDefaults()
	stretch, label := stretchOf(compact)
	id := "fig6a"
	if !compact {
		id = "fig6b"
	}
	fig := Figure{
		ID:     id,
		Title:  "Speedup with a full and a partial sender, " + label,
		XLabel: "correlation",
		YLabel: "speedup",
		X:      correlationAxis(stretch, 8),
	}
	for _, k := range strategy.AllKinds {
		fig.Series = append(fig.Series, Series{Label: k.String()})
	}
	rng := prng.New(o.Seed + 6)
	for _, corr := range fig.X {
		for si, kind := range strategy.AllKinds {
			var sum float64
			for tr := 0; tr < o.Trials; tr++ {
				recv, send, err := transfer.TwoPeerScenario(rng.Split(), o.N, stretch, corr)
				if err != nil {
					return Figure{}, err
				}
				target := transfer.Target(o.N)
				res, err := transfer.Run(transfer.Config{
					Receiver: recv,
					Senders: []transfer.SenderSpec{
						{Full: true},
						{Set: send, Kind: kind},
					},
					Target: target,
					Seed:   rng.Uint64(),
				})
				if err != nil {
					return Figure{}, err
				}
				sum += transfer.Speedup(res, transfer.RunBaselineFullSender(recv, target))
			}
			fig.Series[si].Y = append(fig.Series[si].Y, sum/float64(o.Trials))
		}
	}
	return fig, nil
}

// FigParallel reproduces Figures 7 and 8: relative transfer rates using
// two or four partial senders, compared with a single full sender.
func FigParallel(o Options, numSenders int, compact bool) (Figure, error) {
	o = o.withDefaults()
	stretch, label := stretchOf(compact)
	id := fmt.Sprintf("fig%d%s", 5+numSenders, map[bool]string{true: "a", false: "b"}[compact])
	// fig7 = 2 senders, fig8 = 4 senders.
	if numSenders == 2 {
		id = "fig7a"
		if !compact {
			id = "fig7b"
		}
	} else if numSenders == 4 {
		id = "fig8a"
		if !compact {
			id = "fig8b"
		}
	}
	// Feasibility: peer size s = stretch·n/(c + P(1−c)) ≤ n with
	// P = numSenders+1 peers; solve for the max correlation.
	// s ≤ n ⇔ c + P(1−c) ≥ stretch ⇔ c ≤ (P − stretch)/(P − 1).
	peers := float64(numSenders + 1)
	maxCorr := (peers - stretch) / (peers - 1)
	if maxCorr > 0.5 {
		maxCorr = 0.5 // paper's plotted range tops out at 0.5
	}
	const points = 8
	xs := make([]float64, points)
	for i := range xs {
		xs[i] = maxCorr * float64(i) / float64(points)
	}
	fig := Figure{
		ID:     id,
		Title:  fmt.Sprintf("Relative rate with %d partial senders, %s", numSenders, label),
		XLabel: "correlation",
		YLabel: "relative rate",
		X:      xs,
	}
	for _, k := range strategy.AllKinds {
		fig.Series = append(fig.Series, Series{Label: k.String()})
	}
	rng := prng.New(o.Seed + uint64(100*numSenders))
	for _, corr := range fig.X {
		for si, kind := range strategy.AllKinds {
			var sum float64
			for tr := 0; tr < o.Trials; tr++ {
				recv, senders, err := transfer.MultiPeerScenario(rng.Split(), o.N, stretch, corr, numSenders)
				if err != nil {
					return Figure{}, err
				}
				specs := make([]transfer.SenderSpec, len(senders))
				for i, s := range senders {
					specs[i] = transfer.SenderSpec{Set: s, Kind: kind}
				}
				target := transfer.Target(o.N)
				res, err := transfer.Run(transfer.Config{
					Receiver: recv,
					Senders:  specs,
					Target:   target,
					Seed:     rng.Uint64(),
				})
				if err != nil {
					return Figure{}, err
				}
				sum += transfer.Speedup(res, transfer.RunBaselineFullSender(recv, target))
			}
			fig.Series[si].Y = append(fig.Series[si].Y, sum/float64(o.Trials))
		}
	}
	return fig, nil
}

// CodingParameters reproduces the §6.1 code measurements (E11): the
// degree distribution's average degree and the empirical decoding
// overhead, at the experiment scale and at the paper's 23,968 blocks.
func CodingParameters(o Options) (Table, error) {
	o = o.withDefaults()
	tab := Table{
		ID:     "coding",
		Title:  "Sparse parity-check code parameters (paper §6.1: avg degree 11, overhead 6.8%)",
		Header: []string{"blocks", "distribution", "mean degree", "measured overhead", "trials"},
	}
	rng := prng.New(o.Seed + 11)
	for _, n := range []int{o.N, fountain.PaperBlockCount} {
		dist := fountain.DefaultEncoding(n)
		code, err := fountain.NewCode(n, dist, o.Seed)
		if err != nil {
			return Table{}, err
		}
		blocks := make([][]byte, n)
		for i := range blocks {
			blocks[i] = []byte{byte(i)}
		}
		trials := o.Trials
		if n >= fountain.PaperBlockCount {
			trials = 2 // large-scale decode is expensive; 2 suffices for the table
		}
		var overhead float64
		for t := 0; t < trials; t++ {
			enc, err := fountain.NewEncoder(code, blocks, rng.Uint64())
			if err != nil {
				return Table{}, err
			}
			dec, err := fountain.NewDecoder(code, 1)
			if err != nil {
				return Table{}, err
			}
			for i := 0; !dec.Done(); i++ {
				if i > 3*n {
					return Table{}, fmt.Errorf("decoder stalled at n=%d", n)
				}
				sym := enc.Next()
				_, err := dec.AddSymbol(sym)
				enc.Release(sym) // AddSymbol copies; keep the encode loop alloc-free
				if err != nil {
					return Table{}, err
				}
			}
			overhead += dec.Overhead()
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", n),
			dist.Name(),
			fmt.Sprintf("%.2f", dist.Mean()),
			fmt.Sprintf("%.2f%%", 100*overhead/float64(trials)),
			fmt.Sprintf("%d", trials),
		})
	}
	return tab, nil
}
