package experiment

import (
	"fmt"
	"strings"
	"testing"

	"icd/internal/testutil"
)

// quick returns options small enough for unit tests.
func quick() Options {
	return Options{N: 400, Trials: 2, SetSize: 2000, Diffs: 40, Seed: 7}
}

func TestFig4aShape(t *testing.T) {
	fig, err := Fig4a(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 7 || len(fig.Series) != 6 {
		t.Fatalf("axes wrong: %d x, %d series", len(fig.X), len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != len(fig.X) {
			t.Fatalf("series %s has %d points", s.Label, len(s.Y))
		}
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("accuracy %v outside [0,1]", y)
			}
		}
	}
	// Correction 5 (first series) must dominate correction 0 (last) at
	// every split — the Figure 4(a) ordering.
	c5, c0 := fig.Series[0], fig.Series[5]
	for i := range fig.X {
		if c5.Y[i]+1e-9 < c0.Y[i] {
			t.Fatalf("correction 5 (%v) below correction 0 (%v) at x=%v", c5.Y[i], c0.Y[i], fig.X[i])
		}
	}
	if !strings.Contains(fig.Render(), "correction=5") {
		t.Fatal("render missing series label")
	}
}

func TestTable4bShape(t *testing.T) {
	tab, err := Table4b(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 correction levels", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 5 {
			t.Fatalf("row width %d", len(row))
		}
	}
	// More bits must not hurt at fixed correction (row-wise monotone,
	// within noise): compare 2 bits vs 8 bits at correction 5.
	last := tab.Rows[5]
	var lo, hi float64
	if _, err := fmtSscan(last[1], &lo); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(last[4], &hi); err != nil {
		t.Fatal(err)
	}
	if hi < lo {
		t.Fatalf("8 bits (%v) worse than 2 bits (%v) at correction 5", hi, lo)
	}
	if !strings.Contains(tab.Render(), "Correction") {
		t.Fatal("render missing header")
	}
}

func TestTable4cMeasure(t *testing.T) {
	// Table 4(c) is a scale claim: run it at the paper-like n = 10000
	// where the Θ(n) Bloom sweep clearly exceeds the O(d log n) ART walk.
	o := quick()
	o.SetSize = 10000
	res, err := Table4cMeasure(o)
	if err != nil {
		t.Fatal(err)
	}
	// Bloom at 8 bits/elem must be the accuracy leader (≈98%); ART trades
	// accuracy for search locality (paper: 92% vs 98%).
	if res.BloomAccuracy < 0.9 {
		t.Fatalf("bloom accuracy %.3f", res.BloomAccuracy)
	}
	if res.ARTAccuracy < 0.6 || res.ARTAccuracy > 1 {
		t.Fatalf("ART accuracy %.3f", res.ARTAccuracy)
	}
	if res.BloomAccuracy < res.ARTAccuracy-0.05 {
		t.Fatalf("bloom (%.3f) should not trail ART (%.3f)", res.BloomAccuracy, res.ARTAccuracy)
	}
	// The structural claim: ART search touches far fewer nodes than the
	// Bloom filter's n probes.
	if res.ARTNodesVisited >= res.BloomProbes {
		t.Fatalf("ART visited %d nodes vs bloom %d probes — not O(d log n)",
			res.ARTNodesVisited, res.BloomProbes)
	}
	tab, err := Table4c(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig5Shapes(t *testing.T) {
	fig, err := Fig5(quick(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	byLabel := map[string][]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.Y
		for _, y := range s.Y {
			if y < 1 {
				t.Fatalf("%s overhead %v < 1", s.Label, y)
			}
		}
	}
	rand := byLabel["Random"]
	// Coupon-collector growth: Random at max correlation well above at 0.
	if rand[len(rand)-1] < rand[0]*1.2 {
		t.Fatalf("Random overhead not rising with correlation: %v", rand)
	}
	// Recode/BF below Random everywhere.
	recBF := byLabel["Recode/BF"]
	for i := range rand {
		if recBF[i] >= rand[i] {
			t.Fatalf("Recode/BF (%v) not below Random (%v) at x=%v", recBF[i], rand[i], fig.X[i])
		}
	}
}

func TestFig6Shapes(t *testing.T) {
	fig, err := Fig6(quick(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0.9 || y > 2.01 {
				t.Fatalf("%s speedup %v at x=%v outside [1,2]", s.Label, y, fig.X[i])
			}
		}
	}
}

func TestFigParallelShapes(t *testing.T) {
	fig, err := FigParallel(quick(), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig7a" {
		t.Fatalf("id = %s", fig.ID)
	}
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y > 2.01 {
				t.Fatalf("%s relative rate %v exceeds sender count 2", s.Label, y)
			}
		}
	}
	fig8, err := FigParallel(quick(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if fig8.ID != "fig8b" {
		t.Fatalf("id = %s", fig8.ID)
	}
}

func TestCodingParametersTable(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale decode is slow")
	}
	o := quick()
	tab, err := CodingParameters(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig1Table(t *testing.T) {
	tab, err := Fig1(Options{N: 300, Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 configs × 2 modes)", len(tab.Rows))
	}
	if strings.Contains(tab.Render(), "DNF") {
		t.Fatalf("a Figure 1 configuration did not complete:\n%s", tab.Render())
	}
}

func TestGossipSwarmConverges(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// A small swarm given only the seed address must self-assemble:
	// every node completes, and gossip-admitted sessions contribute.
	res, err := RunGossipSwarm(GossipSwarmConfig{
		Nodes: 3, N: 80, BlockSize: 48, Seed: 5,
		Adaptive: true, RefreshBatches: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Discovered == 0 {
		t.Fatal("no session was admitted through gossip")
	}
	if res.MeanPeersPerNode < 2 {
		t.Fatalf("mean contributing peers per node %.1f; the mesh did not assemble", res.MeanPeersPerNode)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"chaos", "coding", "credits", "decode", "fabric", "fig1", "fig4a",
		"fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b", "fig8a",
		"fig8b", "gossip", "lab", "multicontent", "swarm", "tab4b", "tab4c",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := Lookup("fig5a"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup found nonsense")
	}
}

// fmtSscan parses a float cell.
func fmtSscan(s string, out *float64) (int, error) {
	return fmt.Sscanf(s, "%f", out)
}

func TestMultiContentNode(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	res, err := RunMultiContent(MultiContentConfig{
		Contents: 2, N: 120, BlockSize: 64, Seed: 5, MaxConns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerContent) != 2 {
		t.Fatalf("per-content times: %v", res.PerContent)
	}
	for i, d := range res.PerContent {
		if d <= 0 || d > res.Elapsed {
			t.Fatalf("content %d completion %v outside (0, %v]", i, d, res.Elapsed)
		}
	}
	if res.AggregateMBps() <= 0 {
		t.Fatalf("aggregate rate %.2f", res.AggregateMBps())
	}
}
