package experiment

import (
	"fmt"
	"time"

	"icd/internal/bloom"
	"icd/internal/keyset"
	"icd/internal/prng"
	"icd/internal/recon"
)

// reconTrial holds one planted-difference reconciliation instance: peer A
// holds base, peer B holds base plus diffs extra keys, mirroring the
// Figure 4 setup (small difference, large shared core).
type reconTrial struct {
	treeA, treeB *recon.Tree
	setA, setB   *keyset.Set
	diffs        int
}

func newReconTrial(rng *prng.Rand, n, diffs int) reconTrial {
	base := keyset.Random(rng, n)
	super := base.Clone()
	for super.Len() < n+diffs {
		super.Add(rng.Uint64())
	}
	return reconTrial{
		treeA: recon.Build(recon.DefaultParams, base),
		treeB: recon.Build(recon.DefaultParams, super),
		setA:  base,
		setB:  super,
		diffs: diffs,
	}
}

// artAccuracy measures the fraction of the planted difference that peer B
// finds from A's summary at the given split and correction level.
func (tr reconTrial) artAccuracy(totalBits, leafBits float64, correction int) (float64, error) {
	sum, err := tr.treeA.Summarize(recon.SummaryOptions{
		TotalBitsPerElement: totalBits,
		LeafBitsPerElement:  leafBits,
	})
	if err != nil {
		return 0, err
	}
	missing, _ := tr.treeB.FindMissing(sum, correction)
	return float64(len(missing)) / float64(tr.diffs), nil
}

// Fig4a reproduces Figure 4(a): fraction of differences found as the
// leaf filter's share of an 8-bit budget varies from 1 to 7 bits per
// element, one curve per correction level 0–5.
func Fig4a(o Options) (Figure, error) {
	o = o.withDefaults()
	const totalBits = 8.0
	leafShares := []float64{1, 2, 3, 4, 5, 6, 7}
	fig := Figure{
		ID:     "fig4a",
		Title:  "Accuracy tradeoffs at 8 bits per element (paper Fig 4a)",
		XLabel: "leaf-bits",
		YLabel: "fraction of differences found",
		X:      leafShares,
	}
	for corr := 5; corr >= 0; corr-- {
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("correction=%d", corr)})
	}
	rng := prng.New(o.Seed)
	trials := make([]reconTrial, o.Trials)
	for i := range trials {
		trials[i] = newReconTrial(rng.Split(), o.SetSize, o.Diffs)
	}
	for _, leaf := range leafShares {
		for si, corr := 0, 5; corr >= 0; si, corr = si+1, corr-1 {
			var sum float64
			for _, tr := range trials {
				acc, err := tr.artAccuracy(totalBits, leaf, corr)
				if err != nil {
					return Figure{}, err
				}
				sum += acc
			}
			fig.Series[si].Y = append(fig.Series[si].Y, sum/float64(len(trials)))
		}
	}
	return fig, nil
}

// bestSplitAccuracy finds the leaf/internal split maximizing accuracy for
// a bit budget and correction level — Table 4(b)'s "optimal distribution
// of bits between leaves and interior nodes".
func bestSplitAccuracy(trials []reconTrial, totalBits float64, corr int) (float64, error) {
	best := 0.0
	for leaf := 0.5; leaf < totalBits; leaf += 0.5 {
		var sum float64
		for _, tr := range trials {
			acc, err := tr.artAccuracy(totalBits, leaf, corr)
			if err != nil {
				return 0, err
			}
			sum += acc
		}
		if avg := sum / float64(len(trials)); avg > best {
			best = avg
		}
	}
	return best, nil
}

// Table4b reproduces Table 4(b): accuracy of approximate reconciliation
// trees for 2/4/6/8 bits per element and correction levels 0–5, at the
// per-cell optimal split.
func Table4b(o Options) (Table, error) {
	o = o.withDefaults()
	bits := []float64{2, 4, 6, 8}
	tab := Table{
		ID:     "tab4b",
		Title:  "Accuracy of approximate reconciliation trees (paper Table 4b)",
		Header: []string{"Correction", "2 bits", "4 bits", "6 bits", "8 bits"},
	}
	rng := prng.New(o.Seed)
	trials := make([]reconTrial, o.Trials)
	for i := range trials {
		trials[i] = newReconTrial(rng.Split(), o.SetSize, o.Diffs)
	}
	for corr := 0; corr <= 5; corr++ {
		row := []string{fmt.Sprintf("%d", corr)}
		for _, b := range bits {
			acc, err := bestSplitAccuracy(trials, b, corr)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.4f", acc))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Table4cResult carries the measured quantities behind Table 4(c) for
// benchmark reporting.
type Table4cResult struct {
	BloomBitsPerElement float64
	BloomAccuracy       float64
	BloomProbes         int // membership probes = |S_B| (Θ(n) work)
	BloomSearch         time.Duration
	ARTAccuracy         float64
	ARTNodesVisited     int // O(d log n) work
	ARTSearch           time.Duration
}

// Table4c reproduces Table 4(c): at 8 bits per element, a plain Bloom
// filter finds ≈98% of differences with Θ(n) search work, while an ART at
// correction 5 finds ≈92% with O(d log n) work.
func Table4c(o Options) (Table, error) {
	res, err := Table4cMeasure(o)
	if err != nil {
		return Table{}, err
	}
	tab := Table{
		ID:     "tab4c",
		Title:  "High level structure comparison at 8 bits per element (paper Table 4c)",
		Header: []string{"Data Structure", "Size in bits", "Accuracy", "Search work", "Search time"},
	}
	o = o.withDefaults()
	tab.Rows = append(tab.Rows,
		[]string{"Bloom filter", fmt.Sprintf("8n (n=%d)", o.SetSize),
			fmt.Sprintf("%.1f%%", 100*res.BloomAccuracy),
			fmt.Sprintf("O(n): %d probes", res.BloomProbes),
			res.BloomSearch.String()},
		[]string{"A.R.T. (correction=5)", fmt.Sprintf("8n (n=%d)", o.SetSize),
			fmt.Sprintf("%.1f%%", 100*res.ARTAccuracy),
			fmt.Sprintf("O(d log n): %d nodes", res.ARTNodesVisited),
			res.ARTSearch.String()},
	)
	return tab, nil
}

// Table4cMeasure performs the underlying measurement.
func Table4cMeasure(o Options) (Table4cResult, error) {
	o = o.withDefaults()
	rng := prng.New(o.Seed)
	var out Table4cResult
	out.BloomBitsPerElement = 8
	for t := 0; t < o.Trials; t++ {
		tr := newReconTrial(rng.Split(), o.SetSize, o.Diffs)

		// Bloom filter path: A summarizes its whole set at 8 bits/elem;
		// B probes every one of its symbols (Θ(n)).
		filter := bloom.FromSet(o.Seed, tr.setA, 8, 5)
		start := time.Now()
		missing := filter.Missing(tr.setB)
		out.BloomSearch += time.Since(start)
		out.BloomAccuracy += float64(len(missing)) / float64(tr.diffs)
		out.BloomProbes += tr.setB.Len()

		// ART path: correction 5 at a 3/5 split of the same budget.
		sum, err := tr.treeA.Summarize(recon.SummaryOptions{
			TotalBitsPerElement: 8,
			LeafBitsPerElement:  5,
		})
		if err != nil {
			return Table4cResult{}, err
		}
		start = time.Now()
		found, stats := tr.treeB.FindMissing(sum, 5)
		out.ARTSearch += time.Since(start)
		out.ARTAccuracy += float64(len(found)) / float64(tr.diffs)
		out.ARTNodesVisited += stats.NodesVisited
	}
	n := float64(o.Trials)
	out.BloomAccuracy /= n
	out.ARTAccuracy /= n
	out.BloomProbes /= o.Trials
	out.ARTNodesVisited /= o.Trials
	out.BloomSearch /= time.Duration(o.Trials)
	out.ARTSearch /= time.Duration(o.Trials)
	return out, nil
}
