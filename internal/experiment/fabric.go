package experiment

// fabric.go is the connection-fabric latency sweep (PR 8): one client
// fetching one content from one origin over a ShapedNet link in
// delivery-time propagation mode, where every request/response turn
// pays the path RTT. The sweep crosses RTT {1, 25, 100 ms} with the
// session's request discipline — stop-and-wait (PipelineDepth 1, the
// pre-fabric behavior: one batch in flight, one RTT per batch) against
// the pipelined AIMD ramp (adaptive depth, requests overlap the
// in-flight stream). The claim under test: pipelining amortizes the
// per-batch RTT, and at WAN latency (100 ms) the pipelined session
// moves at least 3× the stop-and-wait goodput. cmd/icdbench renders
// the table (`-exp fabric`) and writes the rows as the BENCH_pr8.json
// artifact.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"icd/internal/faultnet"
	"icd/internal/peer"
	"icd/internal/peermux"
)

// fabricSpeedupFloor is the acceptance bar: pipelined goodput over
// stop-and-wait at the largest RTT in the sweep.
const fabricSpeedupFloor = 3.0

// FabricRow is one RTT × request-discipline measurement — the
// BENCH_pr8.json artifact schema.
type FabricRow struct {
	RTTMs       float64 `json:"rtt_ms"`
	Mode        string  `json:"mode"`  // "stopwait" or "pipelined"
	Depth       int     `json:"depth"` // requested depth: 1 fixed, 0 adaptive
	Batch       int     `json:"batch"` // symbols per request batch
	Blocks      int     `json:"blocks"`
	Bytes       int     `json:"bytes"`
	Completed   bool    `json:"completed"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	GoodputKBps float64 `json:"goodput_kbps"`
	// Speedup is this row's goodput over the stop-and-wait row at the
	// same RTT (1.0 on the stop-and-wait rows themselves).
	Speedup float64 `json:"speedup"`
}

// fabricN clamps the sweep's content size: the measurement's geometry
// is batches-per-transfer, and too few batches (small -n) would let
// constant handshake turns dominate both disciplines and flatten the
// very ratio the sweep exists to measure.
func fabricN(n int) int {
	if n < 1500 {
		return 1500
	}
	if n > 4096 {
		return 4096
	}
	return n
}

// runFabricFetch measures one fetch of the fixture over a fresh shaped
// link with the given RTT and pipeline depth. The link is symmetric:
// each endpoint's access latency is RTT/4, so one direction pays RTT/2
// and a request/response turn pays the full RTT.
func runFabricFetch(fix *SwarmFixture, seed uint64, rtt time.Duration, depth, batch int) (FabricRow, error) {
	row := FabricRow{
		RTTMs:  ms(rtt),
		Mode:   "pipelined",
		Depth:  depth,
		Batch:  batch,
		Blocks: fix.Info.NumBlocks,
		Bytes:  len(fix.Content),
	}
	if depth == 1 {
		row.Mode = "stopwait"
	}

	net := faultnet.NewShapedNet(seed)
	net.SetDeliveryLatency(true)
	wan := faultnet.LinkClass{Name: "wan", Latency: rtt / 4}
	net.SetClass("origin", wan)
	net.SetClass("client", wan)

	srv, err := peer.NewFullServer(fix.Info, fix.Content)
	if err != nil {
		return row, err
	}
	mux := peer.NewServerMux()
	if err := mux.Register(srv); err != nil {
		return row, err
	}
	ln, err := net.Listen("origin")
	if err != nil {
		return row, err
	}
	go mux.Serve(ln)
	defer mux.Close()

	tr := net.Node("client")
	fabric := peermux.NewFabric(tr.Dial, peermux.Config{Timeout: 2 * time.Minute})
	defer fabric.Close()

	start := time.Now()
	res, err := peer.Fetch([]string{"origin"}, fix.Info.ID, peer.FetchOptions{
		Batch:         batch,
		Timeout:       2 * time.Minute,
		Dial:          tr.Dial,
		Fabric:        fabric,
		PipelineDepth: depth,
	})
	elapsed := time.Since(start)
	if err != nil {
		return row, err
	}
	if !res.Completed || !bytes.Equal(res.Data, fix.Content) {
		return row, fmt.Errorf("experiment: fabric fetch at rtt=%v depth=%d did not recover the content", rtt, depth)
	}
	row.Completed = true
	row.ElapsedMs = ms(elapsed)
	row.GoodputKBps = float64(len(fix.Content)) / elapsed.Seconds() / 1024
	return row, nil
}

// FabricResults runs the full sweep and returns the rows, stop-and-wait
// before pipelined at each RTT. Failing the speedup floor at the
// largest RTT is an error: a pipelined ramp that cannot beat
// stop-and-wait 3× over a WAN link is a regression the tracked
// artifact must not absorb silently.
func FabricResults(o Options) ([]FabricRow, error) {
	o = o.withDefaults()
	const batch = 32
	fix, err := BuildSwarmFixture(fabricN(o.N), 256, o.Seed+29)
	if err != nil {
		return nil, err
	}
	rtts := []time.Duration{time.Millisecond, 25 * time.Millisecond, 100 * time.Millisecond}
	var rows []FabricRow
	for _, rtt := range rtts {
		sw, err := runFabricFetch(fix, o.Seed, rtt, 1, batch)
		if err != nil {
			return rows, err
		}
		sw.Speedup = 1
		pl, err := runFabricFetch(fix, o.Seed, rtt, 0, batch)
		if err != nil {
			return rows, err
		}
		if sw.GoodputKBps > 0 {
			pl.Speedup = pl.GoodputKBps / sw.GoodputKBps
		}
		rows = append(rows, sw, pl)
		if rtt == rtts[len(rtts)-1] && pl.Speedup < fabricSpeedupFloor {
			return rows, fmt.Errorf("experiment: fabric pipelined speedup %.2fx at %v RTT, want >= %.1fx over stop-and-wait",
				pl.Speedup, rtt, fabricSpeedupFloor)
		}
	}
	return rows, nil
}

// FabricTable renders fabric rows as an icdbench table.
func FabricTable(rows []FabricRow) Table {
	t := Table{
		ID:     "fabric",
		Title:  "connection fabric: pipelined AIMD ramp vs stop-and-wait over shaped RTTs",
		Header: []string{"rtt", "mode", "depth", "batches", "elapsed", "goodput", "speedup"},
	}
	for _, r := range rows {
		depth := "adaptive"
		if r.Depth > 0 {
			depth = fmt.Sprintf("%d", r.Depth)
		}
		batches := (r.Blocks + r.Batch - 1) / r.Batch
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0fms", r.RTTMs),
			r.Mode,
			depth,
			fmt.Sprintf("~%d", batches),
			fmt.Sprintf("%.0fms", r.ElapsedMs),
			fmt.Sprintf("%.0f KB/s", r.GoodputKBps),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return t
}

// WriteFabricJSON writes the rows as a JSON array artifact
// (BENCH_pr8.json in CI).
func WriteFabricJSON(path string, rows []FabricRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Fabric is the registry runner: the full RTT × discipline sweep.
func Fabric(o Options) (Table, error) {
	rows, err := FabricResults(o)
	if err != nil {
		return Table{}, err
	}
	return FabricTable(rows), nil
}
