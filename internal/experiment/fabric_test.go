package experiment

// fabric_test.go pins the fabric sweep's plumbing: the content-size
// clamp, one real shaped-link fetch per discipline at a small RTT
// (leak-checked), and the BENCH artifact round trip.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"icd/internal/testutil"
)

func TestFabricNClamp(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1500}, {600, 1500}, {1500, 1500}, {2000, 2000}, {4096, 4096}, {9999, 4096},
	}
	for _, tc := range cases {
		if got := fabricN(tc.in); got != tc.want {
			t.Fatalf("fabricN(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFabricFetchBothDisciplines(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	fix, err := BuildSwarmFixture(400, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := runFabricFetch(fix, 11, 4*time.Millisecond, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := runFabricFetch(fix, 11, 4*time.Millisecond, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []FabricRow{sw, pl} {
		if !r.Completed || r.GoodputKBps <= 0 || r.ElapsedMs <= 0 {
			t.Fatalf("row not measured: %+v", r)
		}
	}
	if sw.Mode != "stopwait" || pl.Mode != "pipelined" {
		t.Fatalf("mode labels wrong: %q / %q", sw.Mode, pl.Mode)
	}
	// Even at 4ms RTT the pipelined ramp should not be slower than
	// stop-and-wait by more than noise; the real >=3x bar is enforced at
	// 100ms by FabricResults (too slow for a unit test).
	if pl.GoodputKBps < sw.GoodputKBps/2 {
		t.Fatalf("pipelined (%.0f KB/s) far below stop-and-wait (%.0f KB/s)",
			pl.GoodputKBps, sw.GoodputKBps)
	}
}

func TestFabricArtifactRoundTrip(t *testing.T) {
	rows := []FabricRow{
		{RTTMs: 1, Mode: "stopwait", Depth: 1, Batch: 32, Blocks: 2000, Bytes: 512000,
			Completed: true, ElapsedMs: 215, GoodputKBps: 2328, Speedup: 1},
		{RTTMs: 1, Mode: "pipelined", Depth: 0, Batch: 32, Blocks: 2000, Bytes: 512000,
			Completed: true, ElapsedMs: 58, GoodputKBps: 8667, Speedup: 3.72},
	}
	tbl := FabricTable(rows)
	if tbl.ID != "fabric" || len(tbl.Rows) != 2 {
		t.Fatalf("table shape wrong: %+v", tbl)
	}
	path := filepath.Join(t.TempDir(), "BENCH_fabric.json")
	if err := WriteFabricJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []FabricRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != rows[0] || back[1] != rows[1] {
		t.Fatalf("artifact round trip changed rows: %+v vs %+v", back, rows)
	}
}
