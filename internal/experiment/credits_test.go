package experiment

// credits_test.go pins the credit experiment's plumbing: the
// content-size clamp, one real two-arm run at test scale (leak-checked,
// floor enforced), and the BENCH_pr9 artifact round trip.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"icd/internal/testutil"
)

func TestCreditsNClamp(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 400}, {100, 400}, {400, 400}, {800, 800}, {1200, 1200}, {5000, 1200},
	}
	for _, tc := range cases {
		if got := creditsN(tc.in); got != tc.want {
			t.Fatalf("creditsN(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestCreditsBothArms(t *testing.T) {
	if testing.Short() {
		t.Skip("two shaped-link node runs")
	}
	defer testutil.CheckGoroutines(t)()
	rows, err := CreditsResults(Options{N: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "uniform" || rows[1].Mode != "weighted" {
		t.Fatalf("want uniform+weighted rows, got %+v", rows)
	}
	for _, r := range rows {
		if !r.Completed || r.GoodputKBps <= 0 || r.ElapsedMs <= 0 || r.Bytes <= 0 {
			t.Fatalf("row not measured: %+v", r)
		}
		if r.StalledSymbols <= 0 {
			t.Fatalf("%s arm: stalled fetch made no progress at all: %+v", r.Mode, r)
		}
	}
	// CreditsResults returning nil error IS the floor check, but pin the
	// advantage wiring too: the uniform row is the 1.0 baseline.
	if rows[0].Advantage != 1 {
		t.Fatalf("uniform advantage = %v, want 1", rows[0].Advantage)
	}
	if rows[1].Advantage < creditsAdvantageFloor {
		t.Fatalf("weighted advantage %.2f below floor %.2f", rows[1].Advantage, creditsAdvantageFloor)
	}
}

func TestCreditsArtifactRoundTrip(t *testing.T) {
	rows := []CreditRow{
		{Mode: "uniform", BudgetFrames: 96, Blocks: 400, Bytes: 200000, Completed: true,
			ElapsedMs: 1200, GoodputKBps: 160, StalledSymbols: 70, Advantage: 1},
		{Mode: "weighted", BudgetFrames: 96, Blocks: 400, Bytes: 200000, Completed: true,
			ElapsedMs: 900, GoodputKBps: 215, StalledSymbols: 70, Advantage: 1.34},
	}
	path := filepath.Join(t.TempDir(), "BENCH_pr9.json")
	if err := WriteCreditsJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []CreditRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != rows[0] || back[1] != rows[1] {
		t.Fatalf("artifact round trip mismatch: %+v", back)
	}
	if CreditsTable(rows).Render() == "" {
		t.Fatal("empty table render")
	}
}
