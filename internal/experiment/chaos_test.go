package experiment

// chaos_test.go pins the PR 6 acceptance claim: the collaborative swarm
// converges both clean and under the hostile scenario (20% connection
// kills, 5% corrupting connections, an always-corrupting bootstrap
// peer), the hostile peer ends up banned, and the whole run tears down
// without leaking a goroutine.

import (
	"testing"

	"icd/internal/faultnet"
	"icd/internal/testutil"
)

func TestChaosSwarmCleanBaseline(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	res, err := RunChaosSwarm(ChaosSwarmConfig{
		Nodes: 4, N: 120, BlockSize: 64, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("clean baseline did not converge: %+v", res)
	}
	if res.CorruptFrames != 0 || res.Stalls != 0 {
		t.Fatalf("clean baseline saw injected faults: %+v", res)
	}
}

func TestChaosSwarmHostileConvergesAndBans(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// The icdbench configuration: large enough that every node meets the
	// hostile peer often enough to cross the ban threshold before the
	// transfer completes (a 4-node/120-block swarm converges too fast to
	// accumulate three corrupt connections per node).
	res, err := RunChaosSwarm(ChaosSwarmConfig{
		Nodes: 5, N: 150, BlockSize: 64, Seed: 13,
		Faults:  faultnet.Faults{KillProb: 0.2, KillAfter: 8 << 10, CorruptProb: 0.05},
		Hostile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("hostile swarm did not converge: %+v", res)
	}
	if res.BannedPeers == 0 {
		t.Fatalf("hostile peer never banned: %+v", res)
	}
	// Containment leaves a trail: the corrupt frames that earned the ban.
	if res.CorruptFrames == 0 {
		t.Fatalf("hostile run banned peers without corrupt frames?! %+v", res)
	}
}

func TestChaosTableBothScenarios(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// Default options — the exact configuration `icdbench -exp chaos`
	// (and the CI smoke step) runs.
	tbl, err := Chaos(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("chaos table has %d rows, want 2 (clean + hostile)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] != "true" {
			t.Fatalf("scenario %q did not converge: %v", row[0], row)
		}
	}
}
