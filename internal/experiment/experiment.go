// Package experiment regenerates every table and figure of the paper's
// evaluation (§5.3's Figure 4 and Table 4, §6.3's Figures 5–8) plus the
// coding-parameter measurements of §6.1. Each experiment returns plain
// row/series structures that cmd/icdbench renders as text tables and the
// root bench_test.go reports as benchmark metrics; EXPERIMENTS.md records
// paper-vs-measured values.
//
// All experiments are deterministic given Options.Seed.
package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Options scale an experiment run. Zero values select defaults sized for
// a laptop-class machine (minutes for the full suite).
type Options struct {
	// N is the number of source blocks in transfer experiments
	// (default 2000; the paper used 23,968 — shapes are scale-stable,
	// see EXPERIMENTS.md).
	N int
	// Trials per data point (default 5).
	Trials int
	// SetSize for reconciliation experiments (default 10000).
	SetSize int
	// Diffs is the number of differences planted in reconciliation
	// experiments (default 100).
	Diffs int
	// Seed drives all randomness (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 2000
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.SetSize == 0 {
		o.SetSize = 10000
	}
	if o.Diffs == 0 {
		o.Diffs = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Figure is an x/y multi-series result (one paper figure panel).
type Figure struct {
	ID     string // e.g. "fig5a"
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Series is one labeled curve.
type Series struct {
	Label string
	Y     []float64
}

// Table is a labeled grid result (one paper table).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render produces an aligned text rendering of the table.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Render produces a text rendering of the figure: one row per x value,
// one column per series — the same rows the paper plots.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %12s", s.Label)
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&b, "%-12.3f", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "  %12.4f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "  %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Registry maps experiment ids to runners, for cmd/icdbench.
type Runner struct {
	ID          string
	Description string
	Run         func(Options) (fmt.Stringer, error)
}

type stringerFigure struct{ Figure }
type stringerTable struct{ Table }

func (s stringerFigure) String() string { return s.Figure.Render() }
func (s stringerTable) String() string  { return s.Table.Render() }

// Registry returns all experiment runners keyed by id.
func Registry() []Runner {
	return []Runner{
		{"fig4a", "ART accuracy vs leaf-filter bit share (Figure 4a)", func(o Options) (fmt.Stringer, error) {
			f, err := Fig4a(o)
			return stringerFigure{f}, err
		}},
		{"tab4b", "ART accuracy by bits/element and correction (Table 4b)", func(o Options) (fmt.Stringer, error) {
			t, err := Table4b(o)
			return stringerTable{t}, err
		}},
		{"tab4c", "Bloom filter vs ART structure comparison (Table 4c)", func(o Options) (fmt.Stringer, error) {
			t, err := Table4c(o)
			return stringerTable{t}, err
		}},
		{"fig5a", "peer-to-peer overhead, compact (Figure 5a)", func(o Options) (fmt.Stringer, error) {
			f, err := Fig5(o, true)
			return stringerFigure{f}, err
		}},
		{"fig5b", "peer-to-peer overhead, stretched (Figure 5b)", func(o Options) (fmt.Stringer, error) {
			f, err := Fig5(o, false)
			return stringerFigure{f}, err
		}},
		{"fig6a", "full+partial sender speedup, compact (Figure 6a)", func(o Options) (fmt.Stringer, error) {
			f, err := Fig6(o, true)
			return stringerFigure{f}, err
		}},
		{"fig6b", "full+partial sender speedup, stretched (Figure 6b)", func(o Options) (fmt.Stringer, error) {
			f, err := Fig6(o, false)
			return stringerFigure{f}, err
		}},
		{"fig7a", "2 partial senders relative rate, compact (Figure 7a)", func(o Options) (fmt.Stringer, error) {
			f, err := FigParallel(o, 2, true)
			return stringerFigure{f}, err
		}},
		{"fig7b", "2 partial senders relative rate, stretched (Figure 7b)", func(o Options) (fmt.Stringer, error) {
			f, err := FigParallel(o, 2, false)
			return stringerFigure{f}, err
		}},
		{"fig8a", "4 partial senders relative rate, compact (Figure 8a)", func(o Options) (fmt.Stringer, error) {
			f, err := FigParallel(o, 4, true)
			return stringerFigure{f}, err
		}},
		{"fig8b", "4 partial senders relative rate, stretched (Figure 8b)", func(o Options) (fmt.Stringer, error) {
			f, err := FigParallel(o, 4, false)
			return stringerFigure{f}, err
		}},
		{"coding", "sparse-code parameters: mean degree, decode overhead (§6.1)", func(o Options) (fmt.Stringer, error) {
			t, err := CodingParameters(o)
			return stringerTable{t}, err
		}},
		{"decode", "sharded decoder throughput: single core vs S shards (PR 2)", func(o Options) (fmt.Stringer, error) {
			t, err := DecodeThroughput(o)
			return stringerTable{t}, err
		}},
		{"swarm", "swarm engine end-to-end: fetch throughput + Figure 1(c) collaboration (PR 3)", func(o Options) (fmt.Stringer, error) {
			t, err := SwarmE2E(o)
			return stringerTable{t}, err
		}},
		{"gossip", "gossip peer discovery from one seed + adaptive refresh cadence (PR 4)", func(o Options) (fmt.Stringer, error) {
			t, err := GossipSwarm(o)
			return stringerTable{t}, err
		}},
		{"multicontent", "multi-content node: one listener, shared connection budget, 1 vs 3 contents (PR 5)", func(o Options) (fmt.Stringer, error) {
			t, err := MultiContent(o)
			return stringerTable{t}, err
		}},
		{"fig1", "tree vs parallel vs collaborative delivery (Figure 1)", func(o Options) (fmt.Stringer, error) {
			t, err := Fig1(o)
			return stringerTable{t}, err
		}},
		{"chaos", "hostile-swarm hardening: connection kills, corrupting paths, penalty box (PR 6)", func(o Options) (fmt.Stringer, error) {
			t, err := Chaos(o)
			return stringerTable{t}, err
		}},
		{"lab", "thousand-node scenario lab: convergence, fairness, origin offload at 100/1000 nodes (PR 7)", func(o Options) (fmt.Stringer, error) {
			t, err := Lab(o)
			return stringerTable{t}, err
		}},
		{"fabric", "connection fabric: pipelined AIMD ramp vs stop-and-wait over shaped RTTs (PR 8)", func(o Options) (fmt.Stringer, error) {
			t, err := Fabric(o)
			return stringerTable{t}, err
		}},
		{"credits", "credit scheduling: utility-weighted vs uniform channel windows on one wire (PR 9)", func(o Options) (fmt.Stringer, error) {
			t, err := Credits(o)
			return stringerTable{t}, err
		}},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var ids []string
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}
