package experiment

// lab_test.go pins the scenario-lab experiment: size capping, a small
// end-to-end run of all three presets with a leak-checked teardown, and
// the BENCH artifact round trip.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"icd/internal/testutil"
)

func TestLabSizes(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{0, []int{100, 1000}},
		{1000, []int{100, 1000}},
		{999, []int{100}},
		{100, []int{100}},
		{20, []int{20}},
	}
	for _, tc := range cases {
		got := LabSizes(tc.max)
		if len(got) != len(tc.want) {
			t.Fatalf("LabSizes(%d) = %v, want %v", tc.max, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("LabSizes(%d) = %v, want %v", tc.max, got, tc.want)
			}
		}
	}
}

func TestLabSmallRunAllPresets(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	rows, err := LabResults(Options{Seed: 5}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected one row per preset, got %d", len(rows))
	}
	churned := 0
	for _, r := range rows {
		if !r.Converged {
			t.Fatalf("scenario %q did not converge: %+v", r.Scenario, r)
		}
		if r.Nodes != 20 {
			t.Fatalf("scenario %q ran %d nodes, want 20", r.Scenario, r.Nodes)
		}
		if r.OriginOffload < 0 || r.OriginOffload > 1 {
			t.Fatalf("scenario %q offload out of range: %+v", r.Scenario, r)
		}
		if r.FairnessSpread < 1 {
			t.Fatalf("scenario %q spread below 1: %+v", r.Scenario, r)
		}
		churned += r.Churned
	}
	if churned == 0 {
		t.Fatal("churn preset scheduled no churn")
	}

	tbl := LabTable(rows)
	if len(tbl.Rows) != 3 || tbl.ID != "lab" {
		t.Fatalf("table shape wrong: %+v", tbl)
	}

	path := filepath.Join(t.TempDir(), "BENCH_lab.json")
	if err := WriteLabJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []LabRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || !reflect.DeepEqual(back[0], rows[0]) {
		t.Fatalf("artifact round trip changed rows: %+v vs %+v", back, rows)
	}
	for _, r := range rows {
		if len(r.Series) == 0 {
			t.Fatalf("scenario %q row carries no swarm time-series", r.Scenario)
		}
		last := r.Series[len(r.Series)-1]
		if last.OffsetMs <= 0 {
			t.Fatalf("scenario %q series never advanced: %+v", r.Scenario, last)
		}
	}
}
