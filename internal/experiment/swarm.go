package experiment

// swarm.go measures the real swarm engine end to end — the layered
// session/orchestrator rewrite of peer.Fetch (PR 3) — over in-process
// net.Pipe transports, so the numbers capture protocol + engine cost
// without kernel TCP noise: single- and multi-sender fetch throughput,
// and the Figure 1(c) comparison of collaborative (live both-ways)
// exchange against download-only sessions through a rate-limited source.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"icd/internal/fountain"
	"icd/internal/peer"
	"icd/internal/prng"
)

// ConnServer is anything that can serve one established connection: a
// single-content *peer.Server or a multi-content *peer.ServerMux (the
// front door of a node).
type ConnServer interface {
	ServeConn(net.Conn) error
}

// SwarmFixture is shared in-process swarm material: deterministic
// content, its metadata, and a pipe "network" of named servers.
type SwarmFixture struct {
	Info    peer.ContentInfo
	Content []byte

	mu      sync.Mutex
	servers map[string]ConnServer
	delay   map[string]time.Duration // per-address read throttle
}

// BuildSwarmFixture creates content of n blocks × blockSize bytes.
func BuildSwarmFixture(n, blockSize int, seed uint64) (*SwarmFixture, error) {
	rng := prng.New(seed)
	content := make([]byte, n*blockSize-blockSize/3)
	for i := range content {
		content[i] = byte(rng.Uint64())
	}
	info := peer.ContentInfo{
		ID:        0x5A5A ^ seed,
		NumBlocks: n,
		BlockSize: blockSize,
		OrigLen:   len(content),
		CodeSeed:  seed ^ 0x1CD,
	}
	return &SwarmFixture{
		Info:    info,
		Content: content,
		servers: make(map[string]ConnServer),
		delay:   make(map[string]time.Duration),
	}, nil
}

// AddServer registers a server under a synthetic address, optionally
// throttled (every read on its connections sleeps `delay` first).
func (f *SwarmFixture) AddServer(addr string, s ConnServer, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.servers[addr] = s
	f.delay[addr] = delay
}

type slowPipeConn struct {
	net.Conn
	delay time.Duration
}

func (c *slowPipeConn) Read(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Read(p)
}

// Dial implements peer.FetchOptions.Dial over net.Pipe.
func (f *SwarmFixture) Dial(addr string) (net.Conn, error) {
	f.mu.Lock()
	s := f.servers[addr]
	delay := f.delay[addr]
	f.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("experiment: no server at %q", addr)
	}
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		s.ServeConn(server)
	}()
	if delay > 0 {
		return &slowPipeConn{Conn: client, delay: delay}, nil
	}
	return client, nil
}

// EncodedPrefix encodes `count` distinct symbols as an ordered slice so
// callers can carve overlapping working sets by index range.
func (f *SwarmFixture) EncodedPrefix(count int, seed uint64) (ids []uint64, payloads map[uint64][]byte, err error) {
	blocks, _, err := fountain.SplitIntoBlocks(f.Content, f.Info.BlockSize)
	if err != nil {
		return nil, nil, err
	}
	code, err := fountain.NewCode(f.Info.NumBlocks, nil, f.Info.CodeSeed)
	if err != nil {
		return nil, nil, err
	}
	enc, err := fountain.NewEncoder(code, blocks, seed)
	if err != nil {
		return nil, nil, err
	}
	payloads = make(map[uint64][]byte, count)
	for len(ids) < count {
		sym := enc.Next()
		if _, dup := payloads[sym.ID]; !dup {
			ids = append(ids, sym.ID)
			payloads[sym.ID] = append([]byte(nil), sym.Data...)
		}
		enc.Release(sym)
	}
	return ids, payloads, nil
}

func subset(ids []uint64, payloads map[uint64][]byte, lo, hi int) map[uint64][]byte {
	out := make(map[uint64][]byte, hi-lo)
	for _, id := range ids[lo:hi] {
		out[id] = payloads[id]
	}
	return out
}

// DriveSwarmFetch runs one fetch through the engine and verifies the
// content, returning the result and the wall-clock time.
func DriveSwarmFetch(f *SwarmFixture, addrs []string, opts peer.FetchOptions) (*peer.FetchResult, time.Duration, error) {
	opts.Dial = f.Dial
	start := time.Now()
	res, err := peer.Fetch(addrs, f.Info.ID, opts)
	elapsed := time.Since(start)
	if err != nil {
		return res, elapsed, err
	}
	if !bytes.Equal(res.Data, f.Content) {
		return res, elapsed, fmt.Errorf("experiment: swarm fetch content mismatch")
	}
	return res, elapsed, nil
}

// SwarmE2E is the PR 3 engine measurement: fetch throughput at one and
// three senders, and collaborative vs download-only source cost in the
// Figure 1(c) topology.
func SwarmE2E(o Options) (Table, error) {
	o = o.withDefaults()
	n := o.N
	if n > 1200 {
		n = 1200 // e2e rows measure the engine, not the box's patience
	}
	const blockSize = 1400
	t := Table{
		ID:     "swarm",
		Title:  "swarm engine end-to-end (net.Pipe transports)",
		Header: []string{"scenario", "MB/s", "elapsed", "overhead", "source-symbols"},
	}
	mb := func(d time.Duration, bytes int) string {
		return fmt.Sprintf("%.1f", float64(bytes)/d.Seconds()/1e6)
	}

	// One full sender.
	f, err := BuildSwarmFixture(n, blockSize, o.Seed)
	if err != nil {
		return t, err
	}
	full, err := peer.NewFullServer(f.Info, f.Content)
	if err != nil {
		return t, err
	}
	f.AddServer("S", full, 0)
	// MaxUselessBatches is generous on the throughput rows: on a loaded
	// 1-core box the decode loop can lag a batch or two behind the
	// receive loops, and the default tolerance can misread that as an
	// unproductive sender.
	res, elapsed, err := DriveSwarmFetch(f, []string{"S"},
		peer.FetchOptions{Batch: 64, Timeout: time.Minute, MaxUselessBatches: 64})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"fetch 1 full sender", mb(elapsed, len(f.Content)),
		elapsed.Round(time.Millisecond).String(), fmt.Sprintf("%.1f%%", 100*res.DecodeOverhead), "-"})

	// Three senders: one full, two partials holding ~60% each.
	f3, err := BuildSwarmFixture(n, blockSize, o.Seed+1)
	if err != nil {
		return t, err
	}
	full3, err := peer.NewFullServer(f3.Info, f3.Content)
	if err != nil {
		return t, err
	}
	ids, payloads, err := f3.EncodedPrefix(2*n*6/10, o.Seed+7)
	if err != nil {
		return t, err
	}
	p1, err := peer.NewPartialServer(f3.Info, subset(ids, payloads, 0, n*6/10))
	if err != nil {
		return t, err
	}
	p2, err := peer.NewPartialServer(f3.Info, subset(ids, payloads, n*6/10, 2*n*6/10))
	if err != nil {
		return t, err
	}
	f3.AddServer("S", full3, 0)
	f3.AddServer("P1", p1, 0)
	f3.AddServer("P2", p2, 0)
	res, elapsed, err = DriveSwarmFetch(f3, []string{"S", "P1", "P2"},
		peer.FetchOptions{Batch: 64, Timeout: time.Minute, MaxUselessBatches: 64})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"fetch full+2 partial", mb(elapsed, len(f3.Content)),
		elapsed.Round(time.Millisecond).String(), fmt.Sprintf("%.1f%%", 100*res.DecodeOverhead), "-"})

	// Figure 1(c): two collaborating partials behind a throttled source,
	// download-only vs live both-ways exchange.
	for _, collaborative := range []bool{false, true} {
		nc := n
		if nc > 240 {
			nc = 240 // the throttled source dominates; keep the row quick
		}
		fc, err := BuildSwarmFixture(nc, 64, o.Seed+2)
		if err != nil {
			return t, err
		}
		pool := nc * 15 / 16
		half := pool * 6 / 10
		cids, cpay, err := fc.EncodedPrefix(pool, o.Seed+9)
		if err != nil {
			return t, err
		}
		setA := subset(cids, cpay, 0, half)
		setB := subset(cids, cpay, pool-half, pool)
		src, err := peer.NewFullServer(fc.Info, fc.Content)
		if err != nil {
			return t, err
		}
		fc.AddServer("S", src, time.Millisecond)

		optsFor := func(initial map[uint64][]byte) peer.FetchOptions {
			return peer.FetchOptions{
				Batch:             8,
				Timeout:           time.Minute,
				Initial:           initial,
				MaxUselessBatches: 1 << 20,
				RefreshBatches:    2,
				RefreshGrowth:     0.02,
				Dial:              fc.Dial,
			}
		}
		oa := peer.NewOrchestrator(fc.Info.ID, optsFor(setA))
		ob := peer.NewOrchestrator(fc.Info.ID, optsFor(setB))
		if collaborative {
			liveA, err := peer.NewLiveServer(fc.Info, oa)
			if err != nil {
				return t, err
			}
			liveB, err := peer.NewLiveServer(fc.Info, ob)
			if err != nil {
				return t, err
			}
			fc.AddServer("A", liveA, 0)
			fc.AddServer("B", liveB, 0)
		} else {
			staticA, err := peer.NewPartialServer(fc.Info, setA)
			if err != nil {
				return t, err
			}
			staticB, err := peer.NewPartialServer(fc.Info, setB)
			if err != nil {
				return t, err
			}
			fc.AddServer("A", staticA, 0)
			fc.AddServer("B", staticB, 0)
		}

		type outcome struct {
			res *peer.FetchResult
			err error
		}
		run := func(o *peer.Orchestrator, addrs []string, ch chan<- outcome) {
			res, err := o.Run(context.Background(), addrs...)
			ch <- outcome{res, err}
		}
		chA := make(chan outcome, 1)
		chB := make(chan outcome, 1)
		start := time.Now()
		go run(oa, []string{"S", "B"}, chA)
		go run(ob, []string{"S", "A"}, chB)
		outA, outB := <-chA, <-chB
		elapsed := time.Since(start)
		if outA.err != nil {
			return t, outA.err
		}
		if outB.err != nil {
			return t, outB.err
		}
		if !bytes.Equal(outA.res.Data, fc.Content) || !bytes.Equal(outB.res.Data, fc.Content) {
			return t, fmt.Errorf("experiment: fig1c content mismatch")
		}
		srcSymbols := 0
		for _, r := range []*peer.FetchResult{outA.res, outB.res} {
			for _, p := range r.Peers {
				if p.Addr == "S" {
					srcSymbols += p.SymbolsReceived
				}
			}
		}
		name := "fig1c download-only"
		if collaborative {
			name = "fig1c collaborative"
		}
		t.Rows = append(t.Rows, []string{name, "-", elapsed.Round(time.Millisecond).String(),
			"-", fmt.Sprintf("%d", srcSymbols)})
	}
	return t, nil
}
