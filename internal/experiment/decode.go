package experiment

import (
	"fmt"
	"runtime"
	"time"

	"icd/internal/fountain"
	"icd/internal/prng"
)

// BuildDecodeFixture constructs the shared decode-measurement input:
// n deterministic pseudo-random source blocks of blockSize bytes, their
// code, and a pre-encoded 2n-symbol stream. The decode experiment,
// `icdbench -micro` and the root benchmarks all drive decoders with
// this one fixture (via DriveSingleDecode/DriveShardedDecode), so the
// three surfaces measure the same protocol.
func BuildDecodeFixture(n, blockSize int, seed uint64) (*fountain.Code, []fountain.Symbol, error) {
	code, err := fountain.NewCode(n, nil, seed)
	if err != nil {
		return nil, nil, err
	}
	blocks := make([][]byte, n)
	rng := prng.New(seed + 31)
	for i := range blocks {
		b := make([]byte, blockSize)
		for j := 0; j < blockSize; j += 8 {
			v := rng.Uint64()
			for k := 0; k < 8 && j+k < blockSize; k++ {
				b[j+k] = byte(v >> (8 * k))
			}
		}
		blocks[i] = b
	}
	enc, err := fountain.NewEncoder(code, blocks, seed+7)
	if err != nil {
		return nil, nil, err
	}
	stream := make([]fountain.Symbol, 2*n)
	for i := range stream {
		stream[i] = enc.EncodeID(uint64(i)*0x9e3779b97f4a7c15 + seed)
	}
	return code, stream, nil
}

// DriveSingleDecode feeds the fixture stream into a fresh single-core
// decoder until completion and returns the decode overhead.
func DriveSingleDecode(code *fountain.Code, blockSize int, stream []fountain.Symbol) (float64, error) {
	dec, err := fountain.NewDecoder(code, blockSize)
	if err != nil {
		return 0, err
	}
	for _, sym := range stream {
		if dec.Done() {
			break
		}
		if _, err := dec.AddSymbol(sym); err != nil {
			return 0, err
		}
	}
	if !dec.Done() {
		return 0, fmt.Errorf("experiment: single decoder incomplete")
	}
	return dec.Overhead(), nil
}

// DriveShardedDecode is DriveSingleDecode against a sharded decoder
// with the given worker count.
func DriveShardedDecode(code *fountain.Code, blockSize, shards int, stream []fountain.Symbol) (float64, error) {
	dec, err := fountain.NewShardedDecoder(code, blockSize, shards)
	if err != nil {
		return 0, err
	}
	defer dec.Close()
	done, err := dec.AddStream(stream)
	if err != nil {
		return 0, err
	}
	if !done {
		return 0, fmt.Errorf("experiment: sharded decoder incomplete")
	}
	return dec.Overhead(), nil
}

// DecodeThroughput measures receive-side decode rate (MB/s of recovered
// content) for the single-core peeling decoder and for the sharded
// decoder at several shard counts, on the same pre-encoded symbol
// stream. This is the PR 2 extension of the §6.1 coding measurements:
// the paper assumes receivers absorb content "as fast as the hardware
// allows", and sharding is what lets a many-core receiver do so. On a
// single-core host the multi-shard rows measure coordination overhead
// instead of speedup.
func DecodeThroughput(o Options) (Table, error) {
	o = o.withDefaults()
	n := o.N
	if n <= 0 {
		n = 1000
	}
	const blockSize = 8192 // big blocks: XOR work dominates routing
	tab := Table{
		ID:     "decode",
		Title:  fmt.Sprintf("Sharded decode throughput, %d blocks x %d B (GOMAXPROCS=%d)", n, blockSize, runtime.GOMAXPROCS(0)),
		Header: []string{"decoder", "shards", "MB/s", "overhead", "trials"},
	}
	code, stream, err := BuildDecodeFixture(n, blockSize, o.Seed)
	if err != nil {
		return Table{}, err
	}
	contentMB := float64(n*blockSize) / 1e6

	row := func(name string, shards int, run func() (float64, error)) error {
		var rate, overhead float64
		for t := 0; t < o.Trials; t++ {
			start := time.Now()
			oh, err := run()
			if err != nil {
				return err
			}
			rate += contentMB / time.Since(start).Seconds()
			overhead += oh
		}
		tab.Rows = append(tab.Rows, []string{
			name,
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%.0f", rate/float64(o.Trials)),
			fmt.Sprintf("%.2f%%", 100*overhead/float64(o.Trials)),
			fmt.Sprintf("%d", o.Trials),
		})
		return nil
	}

	if err := row("single", 1, func() (float64, error) {
		return DriveSingleDecode(code, blockSize, stream)
	}); err != nil {
		return Table{}, err
	}
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	for _, shards := range counts {
		shards := shards
		if err := row("sharded", shards, func() (float64, error) {
			return DriveShardedDecode(code, blockSize, shards, stream)
		}); err != nil {
			return Table{}, err
		}
	}
	return tab, nil
}
