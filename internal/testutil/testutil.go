// Package testutil holds shared test-only helpers for the engine's
// suites. It deliberately has no third-party dependencies: the
// goroutine-leak checker is hand-rolled (no goleak) so the robustness
// suites can assert clean teardown under -race without importing
// anything the build does not already carry.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and returns a function
// that fails the test if the count has not returned to the baseline
// within five seconds — the leak check a suite defers around any
// scenario that spins up sessions, servers or watchdogs. Counts at or
// below the baseline pass: helper goroutines started before the
// snapshot may legitimately exit during the test.
func CheckGoroutines(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
