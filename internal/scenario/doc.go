// Package scenario is the thousand-node scenario lab: a deterministic,
// single-process harness that runs large simulated swarms of full
// node.Node instances over the shaped-link transport
// (faultnet.ShapedNet) and measures swarm-scale convergence.
//
// A Spec is the scenario DSL — a plain Go struct, JSON-loadable — that
// declares node roles (seeds holding the full content, providers
// starting with partial working sets, clients starting empty,
// bystanders that only occupy the network), the bootstrap density,
// weighted link classes (latency, jitter, asymmetric up/down bandwidth,
// loss), and a churn schedule of join/leave/kill events at offsets from
// the run start.
//
// Spec.Plan expands the declaration into a concrete, reproducible
// per-node plan: addresses, link-class assignment, bootstrap peer sets
// and churn victims are all drawn from the spec's seed, so the same
// seed reproduces the identical topology and churn schedule bit for
// bit. Run executes a plan — every node a real node.Node with its own
// listener, gossip directory and penalty box, wired through the shaped
// transport — and reports swarm metrics: convergence time (slowest
// completion), fairness (p95/p50 completion spread), and origin offload
// (the fraction of useful symbols served by non-seed nodes).
//
// Presets (Clean, Lossy, Churn) size canonical scenarios at any node
// count; cmd/icdbench runs them at 100 and 1000 nodes as the `lab`
// experiment.
package scenario
