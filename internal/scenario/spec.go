package scenario

// spec.go is the scenario DSL and its deterministic expansion: Spec
// declares a swarm (roles, link classes, churn schedule) and Plan turns
// it into concrete per-node assignments — every random choice drawn
// from the spec's seed, so a plan is a pure function of its spec.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"icd/internal/faultnet"
	"icd/internal/prng"
)

// Duration is a time.Duration that JSON-decodes from both a
// human-readable string ("250ms") and a plain nanosecond number, and
// encodes as the string form — scenario files stay readable.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON encodes the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings and nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch val := v.(type) {
	case string:
		parsed, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", val, err)
		}
		*d = Duration(parsed)
		return nil
	case float64:
		*d = Duration(time.Duration(val))
		return nil
	default:
		return fmt.Errorf("scenario: duration must be a string or a number, got %T", v)
	}
}

// Role classifies a node's part in the scenario.
type Role string

// The four node roles a scenario declares.
const (
	// RoleSeed holds the complete content from the start (pinned) and
	// never fetches — the origin servers whose offload the lab measures.
	RoleSeed Role = "seed"
	// RoleProvider starts with a partial working set and fetches the
	// rest, serving what it holds throughout.
	RoleProvider Role = "provider"
	// RoleClient starts empty and fetches, serving its growing working
	// set as soon as the first handshake fixes the metadata.
	RoleClient Role = "client"
	// RoleBystander runs a listener but neither holds nor fetches the
	// content — churn fodder and gossip-plane noise.
	RoleBystander Role = "bystander"
)

// LinkSpec is one weighted access-link class of the scenario's
// population. Zero-value shaping fields mean unshaped.
type LinkSpec struct {
	// Name labels the class ("dsl", "campus", ...).
	Name string `json:"name"`
	// Weight is the class's share of the population (relative to the
	// other classes' weights; ≤0 counts as 1).
	Weight int `json:"weight,omitempty"`
	// Latency/Jitter shape one-way propagation per faultnet.LinkClass.
	Latency Duration `json:"latency,omitempty"`
	Jitter  Duration `json:"jitter,omitempty"`
	// UpBps/DownBps cap the link's asymmetric rates in bytes/second
	// (0 = unlimited).
	UpBps   int `json:"up_bps,omitempty"`
	DownBps int `json:"down_bps,omitempty"`
	// LossProb is the per-chunk loss probability, surfacing as
	// retransmission delay on the reliable stream.
	LossProb float64 `json:"loss_prob,omitempty"`
}

// Class converts the spec entry to the transport's LinkClass.
func (l LinkSpec) Class() faultnet.LinkClass {
	return faultnet.LinkClass{
		Name:     l.Name,
		Latency:  l.Latency.D(),
		Jitter:   l.Jitter.D(),
		UpBps:    l.UpBps,
		DownBps:  l.DownBps,
		LossProb: l.LossProb,
	}
}

// Churn actions.
const (
	// ActionJoin adds Count fresh nodes of Role at the offset.
	ActionJoin = "join"
	// ActionLeave stops Count nodes of Role gracefully: the fetch is
	// cancelled, then the node closes.
	ActionLeave = "leave"
	// ActionKill stops Count nodes of Role abruptly: the node closes
	// first, so peers see connections die mid-stream.
	ActionKill = "kill"
)

// ChurnEvent is one scheduled membership change.
type ChurnEvent struct {
	// At is the event's offset from the run start.
	At Duration `json:"at"`
	// Action is join, leave or kill.
	Action string `json:"action"`
	// Role selects which population the event touches (join: the role
	// of the new nodes; leave/kill: the victims' role).
	Role Role `json:"role"`
	// Count is how many nodes the event adds or removes.
	Count int `json:"count"`
}

// Spec declares one scenario. The zero value of every tuning field
// picks a sensible default (see withDefaults); Name, Seed and at least
// one fetcher (provider or client) are the caller's job.
type Spec struct {
	// Name labels the scenario in metrics and artifacts.
	Name string `json:"name"`
	// Seed fixes every random draw of the run: topology, link
	// assignment, bootstrap sets, churn victims, content bytes and the
	// shaped transport's jitter/loss schedule.
	Seed uint64 `json:"seed"`

	// Blocks × BlockSize size the content (defaults 48 × 32: swarm
	// dynamics, not decode throughput, are the subject at 1000 nodes).
	Blocks    int `json:"blocks,omitempty"`
	BlockSize int `json:"block_size,omitempty"`

	// Seeds/Providers/Clients/Bystanders count the initial population
	// by role (Seeds defaults to 1).
	Seeds      int `json:"seeds,omitempty"`
	Providers  int `json:"providers,omitempty"`
	Clients    int `json:"clients,omitempty"`
	Bystanders int `json:"bystanders,omitempty"`

	// ProviderFill is the fraction of Blocks a provider starts holding
	// (default 0.4).
	ProviderFill float64 `json:"provider_fill,omitempty"`
	// Bootstrap is how many peers each fetcher knows at start — one
	// seed plus Bootstrap-1 random dialable nodes (default 2).
	Bootstrap int `json:"bootstrap,omitempty"`

	// Links are the weighted access-link classes nodes draw from
	// (empty = every link unshaped).
	Links []LinkSpec `json:"links,omitempty"`
	// Churn is the membership schedule.
	Churn []ChurnEvent `json:"churn,omitempty"`

	// MaxPeers caps each fetcher's concurrent sessions (default 4).
	MaxPeers int `json:"max_peers,omitempty"`
	// Tick is each node's housekeeping cadence (default 250ms).
	Tick Duration `json:"tick,omitempty"`
	// Timeout bounds each fetch; a fetcher that cannot finish inside it
	// fails the run's convergence (default 2m).
	Timeout Duration `json:"timeout,omitempty"`
	// SampleEvery is the cadence at which the runner snapshots every
	// live node's metrics registry into the run's swarm time-series
	// (default 1s; negative disables sampling).
	SampleEvery Duration `json:"sample_every,omitempty"`
}

func (s Spec) withDefaults() Spec {
	if s.Blocks <= 0 {
		s.Blocks = 48
	}
	if s.BlockSize <= 0 {
		s.BlockSize = 32
	}
	if s.Seeds <= 0 {
		s.Seeds = 1
	}
	if s.ProviderFill <= 0 || s.ProviderFill >= 1 {
		s.ProviderFill = 0.4
	}
	if s.Bootstrap <= 0 {
		s.Bootstrap = 2
	}
	if s.MaxPeers <= 0 {
		s.MaxPeers = 4
	}
	if s.Tick <= 0 {
		s.Tick = Duration(250 * time.Millisecond)
	}
	if s.Timeout <= 0 {
		s.Timeout = Duration(2 * time.Minute)
	}
	if s.SampleEvery == 0 {
		s.SampleEvery = Duration(time.Second)
	}
	return s
}

// Nodes is the initial population size (churn joins come on top).
func (s Spec) Nodes() int { return s.Seeds + s.Providers + s.Clients + s.Bystanders }

// Validate rejects specs the runner cannot execute.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Providers+s.Clients == 0 {
		hasJoin := false
		for _, ev := range s.Churn {
			if ev.Action == ActionJoin && (ev.Role == RoleClient || ev.Role == RoleProvider) {
				hasJoin = true
			}
		}
		if !hasJoin {
			return fmt.Errorf("scenario %q: no fetchers (providers, clients or join events)", s.Name)
		}
	}
	for _, ev := range s.Churn {
		switch ev.Action {
		case ActionJoin, ActionLeave, ActionKill:
		default:
			return fmt.Errorf("scenario %q: unknown churn action %q", s.Name, ev.Action)
		}
		switch ev.Role {
		case RoleSeed, RoleProvider, RoleClient, RoleBystander:
		default:
			return fmt.Errorf("scenario %q: unknown churn role %q", s.Name, ev.Role)
		}
		if ev.Action == ActionJoin && ev.Role == RoleSeed {
			return fmt.Errorf("scenario %q: seeds cannot join mid-run (they hold the content from t=0)", s.Name)
		}
		if ev.Count <= 0 {
			return fmt.Errorf("scenario %q: churn event with count %d", s.Name, ev.Count)
		}
		if ev.At < 0 {
			return fmt.Errorf("scenario %q: churn event at negative offset %v", s.Name, ev.At.D())
		}
	}
	return nil
}

// NodePlan is one node's concrete assignment in an expanded plan.
type NodePlan struct {
	// Addr is the node's listen address on the shaped network.
	Addr string
	// Role is the node's part.
	Role Role
	// Class names the node's link class ("" = unshaped default).
	Class string
	// Bootstrap are the peers the node knows when it starts (fetchers
	// only).
	Bootstrap []string
	// Start is the node's join offset (0 = present from the start).
	Start Duration
	// Stop is the node's scheduled departure offset (0 = stays).
	Stop Duration
	// StopKind is ActionLeave or ActionKill when Stop is set.
	StopKind string
	// Symbols is a provider's initial distinct-symbol count.
	Symbols int
	// SymbolSeed drives which symbols the provider starts with.
	SymbolSeed uint64
}

// Fetches reports whether this node runs a fetch.
func (np NodePlan) Fetches() bool { return np.Role == RoleProvider || np.Role == RoleClient }

// Plan is a fully expanded scenario: the spec (with defaults applied)
// plus every node's assignment, in deterministic order.
type Plan struct {
	Spec  Spec
	Nodes []NodePlan
}

// Plan expands the spec deterministically: same spec (same seed), same
// plan, independent of where or when it runs.
func (s Spec) Plan() (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	rng := prng.New(s.Seed ^ 0x5CE4A610)

	counts := map[Role]int{}
	mk := func(role Role, start Duration) NodePlan {
		i := counts[role]
		counts[role]++
		np := NodePlan{
			Addr:  fmt.Sprintf("%c%d", role[0], i), // s0, p0, c0, b0, ...
			Role:  role,
			Start: start,
		}
		if role == RoleProvider {
			np.Symbols = int(s.ProviderFill * float64(s.Blocks))
			if np.Symbols < 1 {
				np.Symbols = 1
			}
			np.SymbolSeed = rng.Uint64()
		}
		return np
	}

	var nodes []NodePlan
	for i := 0; i < s.Seeds; i++ {
		nodes = append(nodes, mk(RoleSeed, 0))
	}
	for i := 0; i < s.Providers; i++ {
		nodes = append(nodes, mk(RoleProvider, 0))
	}
	for i := 0; i < s.Clients; i++ {
		nodes = append(nodes, mk(RoleClient, 0))
	}
	for i := 0; i < s.Bystanders; i++ {
		nodes = append(nodes, mk(RoleBystander, 0))
	}

	// Churn: joins append fresh nodes; leaves and kills pick victims
	// among the initial population of the role (never already-scheduled
	// ones), in event order.
	events := append([]ChurnEvent(nil), s.Churn...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, ev := range events {
		switch ev.Action {
		case ActionJoin:
			for i := 0; i < ev.Count; i++ {
				nodes = append(nodes, mk(ev.Role, ev.At))
			}
		case ActionLeave, ActionKill:
			var eligible []int
			for i, np := range nodes {
				if np.Role == ev.Role && np.Start == 0 && np.StopKind == "" {
					eligible = append(eligible, i)
				}
			}
			if len(eligible) < ev.Count {
				return nil, fmt.Errorf("scenario %q: churn %s of %d %ss at %v, only %d eligible",
					s.Name, ev.Action, ev.Count, ev.Role, ev.At.D(), len(eligible))
			}
			for i := 0; i < ev.Count; i++ {
				pick := rng.Intn(len(eligible))
				idx := eligible[pick]
				eligible = append(eligible[:pick], eligible[pick+1:]...)
				nodes[idx].Stop = ev.At
				nodes[idx].StopKind = ev.Action
			}
		}
	}

	// Link classes: weighted draw per node.
	if len(s.Links) > 0 {
		total := 0
		for _, l := range s.Links {
			w := l.Weight
			if w <= 0 {
				w = 1
			}
			total += w
		}
		for i := range nodes {
			draw := rng.Intn(total)
			for _, l := range s.Links {
				w := l.Weight
				if w <= 0 {
					w = 1
				}
				if draw < w {
					nodes[i].Class = l.Name
					break
				}
				draw -= w
			}
		}
	}

	// Bootstrap sets: every fetcher knows one seed plus Bootstrap-1
	// distinct other dialable nodes (seeds, providers or clients that
	// are present from the start — not itself, not bystanders).
	var seedAddrs, dialable []string
	for _, np := range nodes {
		if np.Start != 0 {
			continue
		}
		if np.Role == RoleSeed {
			seedAddrs = append(seedAddrs, np.Addr)
		}
		if np.Role == RoleSeed || np.Role == RoleProvider || np.Role == RoleClient {
			dialable = append(dialable, np.Addr)
		}
	}
	for i := range nodes {
		np := &nodes[i]
		if !np.Fetches() {
			continue
		}
		boot := []string{seedAddrs[rng.Intn(len(seedAddrs))]}
		seen := map[string]bool{boot[0]: true, np.Addr: true}
		for tries := 0; len(boot) < s.Bootstrap && tries < 4*s.Bootstrap; tries++ {
			cand := dialable[rng.Intn(len(dialable))]
			if !seen[cand] {
				seen[cand] = true
				boot = append(boot, cand)
			}
		}
		np.Bootstrap = boot
	}

	return &Plan{Spec: s, Nodes: nodes}, nil
}

// ParseSpec decodes a JSON scenario file (unknown fields rejected, so a
// typo fails loudly instead of silently running the default).
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return s, s.Validate()
}
