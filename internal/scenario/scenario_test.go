package scenario

// scenario_test.go pins the lab's reproducibility contract (same seed,
// same plan, bit for bit), the JSON round trip of the spec DSL, churn
// expansion, and — end to end — that a small swarm runs to convergence
// with a clean goroutine teardown.

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"icd/internal/testutil"
)

func TestPlanDeterministic(t *testing.T) {
	spec, err := Preset("churn", 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same spec produced two different plans")
	}

	spec.Seed = 8
	p3, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.Nodes, p3.Nodes) {
		t.Fatal("different seed reproduced the identical plan")
	}
}

func TestPlanRolesAndBootstrap(t *testing.T) {
	spec := Spec{
		Name: "roles", Seed: 3,
		Seeds: 2, Providers: 3, Clients: 5, Bystanders: 2,
		Bootstrap: 3,
	}
	plan, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Role]int{}
	addrs := map[string]bool{}
	for _, np := range plan.Nodes {
		counts[np.Role]++
		if addrs[np.Addr] {
			t.Fatalf("duplicate address %q", np.Addr)
		}
		addrs[np.Addr] = true
		if np.Fetches() {
			if len(np.Bootstrap) == 0 {
				t.Fatalf("fetcher %s has no bootstrap", np.Addr)
			}
			hasSeed := false
			for _, b := range np.Bootstrap {
				if b == np.Addr {
					t.Fatalf("fetcher %s bootstraps from itself", np.Addr)
				}
				if b == "s0" || b == "s1" {
					hasSeed = true
				}
			}
			if !hasSeed {
				t.Fatalf("fetcher %s knows no seed: %v", np.Addr, np.Bootstrap)
			}
		} else if np.Bootstrap != nil {
			t.Fatalf("non-fetcher %s has a bootstrap set", np.Addr)
		}
		if np.Role == RoleProvider && np.Symbols <= 0 {
			t.Fatalf("provider %s starts with no symbols", np.Addr)
		}
	}
	want := map[Role]int{RoleSeed: 2, RoleProvider: 3, RoleClient: 5, RoleBystander: 2}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("role counts = %v, want %v", counts, want)
	}
}

func TestPlanChurnExpansion(t *testing.T) {
	spec := Spec{
		Name: "churny", Seed: 11,
		Seeds: 1, Clients: 10,
		Churn: []ChurnEvent{
			{At: Duration(100 * time.Millisecond), Action: ActionKill, Role: RoleClient, Count: 2},
			{At: Duration(200 * time.Millisecond), Action: ActionLeave, Role: RoleClient, Count: 1},
			{At: Duration(300 * time.Millisecond), Action: ActionJoin, Role: RoleClient, Count: 3},
		},
	}
	plan, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	kills, leaves, joins := 0, 0, 0
	for _, np := range plan.Nodes {
		switch {
		case np.StopKind == ActionKill:
			kills++
		case np.StopKind == ActionLeave:
			leaves++
		}
		if np.Start > 0 {
			joins++
			if np.Start.D() != 300*time.Millisecond {
				t.Fatalf("join node %s starts at %v", np.Addr, np.Start.D())
			}
		}
	}
	if kills != 2 || leaves != 1 || joins != 3 {
		t.Fatalf("churn expansion: kills=%d leaves=%d joins=%d", kills, leaves, joins)
	}
	// A victim count above the eligible population must fail loudly.
	spec.Churn = []ChurnEvent{{At: 1, Action: ActionKill, Role: RoleClient, Count: 11}}
	if _, err := spec.Plan(); err == nil {
		t.Fatal("over-sized kill wave planned without error")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec, err := Preset("lossy", 50, 21)
	if err != nil {
		t.Fatal(err)
	}
	spec.Churn = []ChurnEvent{{At: Duration(40 * time.Millisecond), Action: ActionKill, Role: RoleClient, Count: 1}}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip changed the spec:\n%+v\nvs\n%+v", spec, back)
	}

	// Human-written form: duration strings, not nanosecond numbers.
	hand := []byte(`{
		"name": "handwritten", "seed": 5,
		"clients": 4,
		"links": [{"name": "dsl", "latency": "2ms", "jitter": "500us", "up_bps": 1048576}],
		"churn": [{"at": "150ms", "action": "kill", "role": "client", "count": 1}],
		"timeout": "30s"
	}`)
	s, err := ParseSpec(hand)
	if err != nil {
		t.Fatal(err)
	}
	if s.Links[0].Latency.D() != 2*time.Millisecond || s.Churn[0].At.D() != 150*time.Millisecond {
		t.Fatalf("durations misparsed: %+v", s)
	}
	if s.Timeout.D() != 30*time.Second {
		t.Fatalf("timeout misparsed: %v", s.Timeout.D())
	}

	// Typos fail loudly instead of silently running a default.
	if _, err := ParseSpec([]byte(`{"name": "x", "clients": 2, "block_sise": 64}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{Name: "no-fetchers", Seeds: 2},
		{Name: "bad-action", Clients: 1, Churn: []ChurnEvent{{Action: "explode", Role: RoleClient, Count: 1}}},
		{Name: "bad-role", Clients: 1, Churn: []ChurnEvent{{Action: ActionKill, Role: "ghost", Count: 1}}},
		{Name: "seed-join", Clients: 1, Churn: []ChurnEvent{{Action: ActionJoin, Role: RoleSeed, Count: 1}}},
		{Name: "zero-count", Clients: 1, Churn: []ChurnEvent{{Action: ActionKill, Role: RoleClient}}},
	}
	for _, s := range cases {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %q validated", s.Name)
		}
	}
}

// TestSmallRunConverges is the end-to-end check: a 12-node clean swarm
// over shaped links runs to convergence in one process and tears down
// without leaking a goroutine.
func TestSmallRunConverges(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	spec, err := Preset("clean", 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	spec.Timeout = Duration(60 * time.Second)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("clean 12-node swarm did not converge: %+v", res)
	}
	if res.Failed != 0 || res.Churned != 0 {
		t.Fatalf("clean run reports failures or churn: %+v", res)
	}
	if res.Completed == 0 || res.Convergence <= 0 {
		t.Fatalf("no completions measured: %+v", res)
	}
	if res.P95 < res.P50 || res.Spread < 1 {
		t.Fatalf("percentiles inverted: %+v", res)
	}
	if res.Offload < 0 || res.Offload > 1 {
		t.Fatalf("offload out of range: %+v", res)
	}
}

// TestChurnRunSurvives runs the churn preset small: killed and left
// fetchers are accounted as churned, everyone else still converges.
func TestChurnRunSurvives(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	spec, err := Preset("churn", 15, 9)
	if err != nil {
		t.Fatal(err)
	}
	spec.Timeout = Duration(60 * time.Second)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("churn swarm did not converge for its survivors: %+v", res)
	}
	if res.Churned == 0 {
		t.Fatalf("churn schedule stopped nobody: %+v", res)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(ds, 0.50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(ds, 0.95); got != 10 {
		t.Fatalf("p95 = %v", got)
	}
	if got := percentile(ds[:1], 0.95); got != 1 {
		t.Fatalf("p95 of singleton = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("p50 of empty = %v", got)
	}
}
