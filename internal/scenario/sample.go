package scenario

// sample.go is the lab's live telemetry: on a fixed cadence the runner
// snapshots every live node's observability registry and folds the
// node-level tallies into one swarm-wide time-series — the convergence
// *curve* (useful vs duplicate symbol rate, live connections, banned
// peers, credit in flight) instead of only endpoint scalars.

import (
	"time"

	"icd/internal/node"
)

// Sample is one cadence tick of the swarm-wide time-series.
type Sample struct {
	// Offset is the tick's time since run start.
	Offset time.Duration
	// UsefulPerSec and DuplicatePerSec are the swarm-aggregate symbol
	// rates over the interval since the previous sample: symbols that
	// advanced some decoder vs symbols received redundantly.
	UsefulPerSec    float64
	DuplicatePerSec float64
	// LiveConns is the swarm's total live fetch sessions at the tick.
	LiveConns int64
	// BannedPeers sums every node's currently-banned address count.
	BannedPeers int64
	// WindowInFlight is the swarm's aggregate credit-window exposure
	// across all fabric wires, in symbol frames.
	WindowInFlight int64
}

// swarmTotals is one tick's raw sum over every live node's registry.
type swarmTotals struct {
	useful, received, live, banned, window int64
}

// foldNodes sums the sampled metric families across node registries.
func foldNodes(nodes []*node.Node) swarmTotals {
	var t swarmTotals
	for _, n := range nodes {
		for _, m := range n.Obs().Snapshot() {
			switch m.Name {
			case "peer.symbols{kind=useful}":
				t.useful += m.Value
			case "peer.symbols{kind=received}":
				t.received += m.Value
			case "peer.sessions{state=live}":
				t.live += m.Value
			case "node.banned_peers":
				t.banned += m.Value
			case "node.window_inflight":
				t.window += m.Value
			}
		}
	}
	return t
}

// sampleSwarm runs the sampling loop until stopc closes, taking one
// final sample on the way out, and returns the folded series. nodes
// returns the currently live population (churn joins and leaves show up
// as what they are: rate and connection-count movements).
func sampleSwarm(every time.Duration, start time.Time, stopc <-chan struct{}, nodes func() []*node.Node) []Sample {
	var series []Sample
	var prev swarmTotals
	prevAt := start
	tick := time.NewTicker(every)
	defer tick.Stop()
	record := func(now time.Time) {
		t := foldNodes(nodes())
		dt := now.Sub(prevAt).Seconds()
		s := Sample{
			Offset:         now.Sub(start),
			LiveConns:      t.live,
			BannedPeers:    t.banned,
			WindowInFlight: t.window,
		}
		if dt > 0 {
			// A churned-out node takes its counters with it, so a delta
			// can dip negative across a leave; clamp — the series reads
			// as the surviving swarm's rate.
			if d := t.useful - prev.useful; d > 0 {
				s.UsefulPerSec = float64(d) / dt
			}
			if d := (t.received - t.useful) - (prev.received - prev.useful); d > 0 {
				s.DuplicatePerSec = float64(d) / dt
			}
		}
		prev, prevAt = t, now
		series = append(series, s)
	}
	for {
		select {
		case now := <-tick.C:
			record(now)
		case <-stopc:
			record(time.Now())
			return series
		}
	}
}
