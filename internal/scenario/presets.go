package scenario

// presets.go sizes the three canonical lab scenarios at any node
// count: clean (shaped but benign links), lossy (jittery, lossy,
// asymmetric access links) and churn (clean links plus a kill wave, a
// leave wave and a late join wave). Role mix scales with the
// population: ~1% seeds, 20% providers, 5% bystanders, clients the
// rest.

import (
	"fmt"
	"time"
)

// PresetNames lists the built-in scenarios in display order.
func PresetNames() []string { return []string{"clean", "lossy", "churn"} }

// Preset builds a named scenario sized to `nodes` initial members.
func Preset(name string, nodes int, seed uint64) (Spec, error) {
	if nodes < 3 {
		return Spec{}, fmt.Errorf("scenario: preset %q needs at least 3 nodes, got %d", name, nodes)
	}
	seeds := nodes / 100
	if seeds < 1 {
		seeds = 1
	}
	providers := nodes / 5
	bystanders := nodes / 20
	clients := nodes - seeds - providers - bystanders
	if clients < 1 {
		clients = 1
	}
	base := Spec{
		Name:       name,
		Seed:       seed,
		Seeds:      seeds,
		Providers:  providers,
		Clients:    clients,
		Bystanders: bystanders,
		Bootstrap:  3,
	}

	switch name {
	case "clean":
		// Benign but shaped: campus-class links, enough latency that the
		// shaper is exercised without dominating a CI run.
		base.Links = []LinkSpec{
			{Name: "campus", Weight: 1, Latency: Duration(500 * time.Microsecond), UpBps: 64 << 20, DownBps: 64 << 20},
		}
		return base, nil
	case "lossy":
		// A mixed access population: symmetric campus links, asymmetric
		// dsl with jitter, and a lossy wireless tail.
		base.Links = []LinkSpec{
			{Name: "campus", Weight: 2, Latency: Duration(500 * time.Microsecond), UpBps: 64 << 20, DownBps: 64 << 20},
			{Name: "dsl", Weight: 2, Latency: Duration(2 * time.Millisecond), Jitter: Duration(time.Millisecond),
				UpBps: 4 << 20, DownBps: 16 << 20},
			{Name: "wireless", Weight: 1, Latency: Duration(3 * time.Millisecond), Jitter: Duration(2 * time.Millisecond),
				UpBps: 8 << 20, DownBps: 8 << 20, LossProb: 0.02},
		}
		return base, nil
	case "churn":
		// Clean links, hostile membership: a kill wave mid-ramp, a
		// graceful leave wave, and a late join wave that must still
		// converge against an already-busy swarm.
		base.Links = []LinkSpec{
			{Name: "campus", Weight: 1, Latency: Duration(500 * time.Microsecond), UpBps: 64 << 20, DownBps: 64 << 20},
		}
		kills := clients / 10
		if kills < 1 {
			kills = 1
		}
		leaves := providers / 10
		if leaves < 1 {
			leaves = 1
		}
		joins := clients / 10
		if joins < 1 {
			joins = 1
		}
		base.Churn = []ChurnEvent{
			{At: Duration(300 * time.Millisecond), Action: ActionKill, Role: RoleClient, Count: kills},
			{At: Duration(500 * time.Millisecond), Action: ActionLeave, Role: RoleProvider, Count: leaves},
			{At: Duration(700 * time.Millisecond), Action: ActionJoin, Role: RoleClient, Count: joins},
		}
		return base, nil
	default:
		return Spec{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, PresetNames())
	}
}
