package scenario

// run.go executes an expanded plan: every node a real node.Node with
// its own listener, gossip directory and penalty box, wired over one
// faultnet.ShapedNet; churn fires off timers; a metrics collector folds
// every fetch result into the swarm-scale numbers the lab reports.

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"icd/internal/faultnet"
	"icd/internal/node"
	"icd/internal/peer"
)

// Result is one run's swarm-scale measurement.
type Result struct {
	// Name and Nodes echo the scenario and its initial population.
	Name  string
	Nodes int
	// Converged is true when every fetcher the churn schedule let live
	// completed and verified the content.
	Converged bool
	// Completed counts verified downloads; Churned counts fetchers with
	// a scheduled stop (a victim fast enough to finish first counts in
	// both); Failed counts unchurned fetchers that did not finish.
	Completed, Failed, Churned int
	// Convergence is the slowest completion's offset from the run
	// start — the swarm convergence time.
	Convergence time.Duration
	// P50 and P95 are completion-time percentiles across fetchers;
	// Spread is their ratio (1.0 = perfectly fair).
	P50, P95 time.Duration
	Spread   float64
	// Offload is the fraction of useful symbols served by non-seed
	// nodes — how much of the delivery the origin servers did NOT do.
	Offload float64
	// Elapsed is the whole run's wall-clock time, teardown included.
	Elapsed time.Duration
	// Series is the swarm-wide time-series sampled every
	// Spec.SampleEvery from each live node's metrics registry (nil when
	// sampling is disabled).
	Series []Sample
}

// runningNode is one live node and its fetch handle.
type runningNode struct {
	plan   NodePlan
	n      *node.Node
	cancel context.CancelFunc
	tr     *node.Transfer
}

// outcome is one fetcher's terminal record.
type outcome struct {
	plan     NodePlan
	res      *peer.FetchResult
	err      error
	finished time.Duration // completion offset from run start
}

// Run executes the scenario and reports its metrics. Fetch failures are
// measurements (Converged/Failed), not errors; only a spec or setup
// problem returns a non-nil error.
func Run(spec Spec) (*Result, error) {
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	return RunPlan(plan)
}

// RunPlan executes an already-expanded plan (callers that want to
// inspect or log the topology expand once and run the same plan).
func RunPlan(plan *Plan) (*Result, error) {
	spec := plan.Spec
	info, content := buildContent(spec)

	shaped := faultnet.NewShapedNet(spec.Seed ^ 0x11A8)
	classes := make(map[string]faultnet.LinkClass, len(spec.Links))
	for _, l := range spec.Links {
		classes[l.Name] = l.Class()
	}
	for _, np := range plan.Nodes {
		if np.Class != "" {
			if cls, ok := classes[np.Class]; ok {
				shaped.SetClass(np.Addr, cls)
			} else {
				return nil, fmt.Errorf("scenario %q: node %s references unknown link class %q",
					spec.Name, np.Addr, np.Class)
			}
		}
	}

	isSeed := make(map[string]bool)
	nFetchers := 0
	for _, np := range plan.Nodes {
		if np.Role == RoleSeed {
			isSeed[np.Addr] = true
		}
		if np.Fetches() {
			nFetchers++
		}
	}

	var (
		mu      sync.Mutex
		running = make(map[string]*runningNode, len(plan.Nodes))
		timers  []*time.Timer
		done    bool
	)
	outcomes := make(chan outcome, nFetchers)
	var fetchers sync.WaitGroup
	fetchers.Add(nFetchers)
	start := time.Now()

	// launch boots one node per its plan. Setup failures surface as the
	// fetcher's outcome (the swarm runs on), never a hang.
	launch := func(np NodePlan) {
		fail := func(err error) {
			if np.Fetches() {
				outcomes <- outcome{plan: np, err: err}
				fetchers.Done()
			}
		}
		opts := node.Options{
			Listen:    np.Addr,
			Transport: shaped.Node(np.Addr),
			Tick:      spec.Tick.D(),
			Fetch: peer.FetchOptions{
				Batch:               8,
				Timeout:             spec.Timeout.D(),
				MaxPeers:            spec.MaxPeers,
				MaxUselessBatches:   1 << 20, // peers start empty: patience, not eviction
				MaxReconnects:       40,      // churned conns and not-yet-listening peers redial
				ReconnectBackoff:    5 * time.Millisecond,
				MaxReconnectBackoff: 250 * time.Millisecond,
				StallTimeout:        20 * time.Second,
				DecodeShards:        1, // 1000 concurrent decoders must not each spawn GOMAXPROCS workers
			},
		}
		if np.Role == RoleProvider {
			held, err := encodeSymbols(info, content, np.Symbols, np.SymbolSeed)
			if err != nil {
				fail(err)
				return
			}
			opts.Fetch.Initial = held
		}
		n := node.New(opts)
		rn := &runningNode{plan: np, n: n}
		if np.Role == RoleSeed {
			if err := n.ServeFull(info, content, true); err != nil {
				n.Close()
				fail(err)
				return
			}
		}
		go n.ListenAndServe()
		if np.Fetches() {
			ctx, cancel := context.WithCancel(context.Background())
			rn.cancel = cancel
			tr, err := n.StartFetch(ctx, info.ID, np.Bootstrap...)
			if err != nil {
				cancel()
				n.Close()
				fail(err)
				return
			}
			rn.tr = tr
			go func() {
				res, err := tr.Wait()
				outcomes <- outcome{plan: np, res: res, err: err, finished: time.Since(start)}
				fetchers.Done()
			}()
		}
		mu.Lock()
		if done {
			// The run already tore down while this join was booting.
			mu.Unlock()
			if rn.cancel != nil {
				rn.cancel()
			}
			n.Close()
			return
		}
		running[np.Addr] = rn
		mu.Unlock()
	}

	// stop ends a node per the churn schedule: a leave cancels the
	// fetch first (sessions unwind cleanly), a kill closes the node
	// first so its peers see connections die mid-stream.
	stop := func(addr, kind string) {
		mu.Lock()
		rn := running[addr]
		delete(running, addr)
		mu.Unlock()
		if rn == nil {
			return
		}
		if kind == ActionKill {
			rn.n.Close()
			if rn.cancel != nil {
				rn.cancel()
			}
			return
		}
		if rn.cancel != nil {
			rn.cancel()
		}
		rn.n.Close()
	}

	for _, np := range plan.Nodes {
		np := np
		if np.Start == 0 {
			launch(np)
		} else {
			mu.Lock()
			timers = append(timers, time.AfterFunc(np.Start.D(), func() { launch(np) }))
			mu.Unlock()
		}
		if np.StopKind != "" {
			mu.Lock()
			timers = append(timers, time.AfterFunc(np.Stop.D(), func() { stop(np.Addr, np.StopKind) }))
			mu.Unlock()
		}
	}

	// Sample the swarm's registries on the spec cadence while the
	// fetchers run; the final fold lands after teardown begins.
	samplec := make(chan []Sample, 1)
	sampstop := make(chan struct{})
	if every := spec.SampleEvery.D(); every > 0 {
		go func() {
			samplec <- sampleSwarm(every, start, sampstop, func() []*node.Node {
				mu.Lock()
				defer mu.Unlock()
				nodes := make([]*node.Node, 0, len(running))
				for _, rn := range running {
					nodes = append(nodes, rn.n)
				}
				return nodes
			})
		}()
	} else {
		samplec <- nil
	}

	fetchers.Wait()
	close(outcomes)
	close(sampstop)
	series := <-samplec

	// Teardown: no more joins, then close every node still up. Closing
	// a node stops its ticker and listener; cancelled fetch contexts
	// already unwound the sessions.
	mu.Lock()
	done = true
	pending := timers
	remaining := make([]*runningNode, 0, len(running))
	for _, rn := range running {
		remaining = append(remaining, rn)
	}
	mu.Unlock()
	for _, t := range pending {
		t.Stop()
	}
	for _, rn := range remaining {
		if rn.cancel != nil {
			rn.cancel()
		}
		rn.n.Close()
	}

	res := &Result{Name: spec.Name, Nodes: spec.Nodes(), Converged: true, Series: series}
	var finishes []time.Duration
	var totalUseful, seedUseful int64
	for out := range outcomes {
		churned := out.plan.StopKind != ""
		completed := out.err == nil && out.res != nil && out.res.Completed &&
			bytes.Equal(out.res.Data, content)
		if churned {
			res.Churned++
		}
		switch {
		case completed:
			res.Completed++
			finishes = append(finishes, out.finished)
			if out.finished > res.Convergence {
				res.Convergence = out.finished
			}
		case !churned:
			res.Failed++
			res.Converged = false
		}
		if out.res != nil {
			for _, p := range out.res.Peers {
				totalUseful += int64(p.UsefulSymbols)
				if isSeed[p.Addr] {
					seedUseful += int64(p.UsefulSymbols)
				}
			}
		}
	}
	if res.Completed == 0 {
		res.Converged = false
	}
	if len(finishes) > 0 {
		sort.Slice(finishes, func(i, j int) bool { return finishes[i] < finishes[j] })
		res.P50 = percentile(finishes, 0.50)
		res.P95 = percentile(finishes, 0.95)
		if res.P50 > 0 {
			res.Spread = float64(res.P95) / float64(res.P50)
		}
	}
	if totalUseful > 0 {
		res.Offload = 1 - float64(seedUseful)/float64(totalUseful)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// percentile picks the nearest-rank percentile of a sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
