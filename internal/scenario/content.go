package scenario

// content.go builds the scenario's deterministic content and the
// providers' initial working sets — seeded byte material and encoded
// symbol prefixes, all pure functions of the spec's seed.

import (
	"icd/internal/fountain"
	"icd/internal/peer"
	"icd/internal/prng"
)

// buildContent creates the scenario's content: blocks × blockSize bytes
// (minus a partial tail block, so padding paths are exercised) filled
// from the seed.
func buildContent(s Spec) (peer.ContentInfo, []byte) {
	rng := prng.New(s.Seed ^ 0xC0D7E47)
	content := make([]byte, s.Blocks*s.BlockSize-s.BlockSize/3)
	for i := range content {
		content[i] = byte(rng.Uint64())
	}
	info := peer.ContentInfo{
		ID:        0x1AB0000 ^ s.Seed,
		NumBlocks: s.Blocks,
		BlockSize: s.BlockSize,
		OrigLen:   len(content),
		CodeSeed:  s.Seed ^ 0x5EED,
	}
	return info, content
}

// encodeSymbols produces count distinct encoded symbols of the content,
// drawn from the symbol stream the given seed selects — a provider's
// initial working set.
func encodeSymbols(info peer.ContentInfo, content []byte, count int, seed uint64) (map[uint64][]byte, error) {
	blocks, _, err := fountain.SplitIntoBlocks(content, info.BlockSize)
	if err != nil {
		return nil, err
	}
	code, err := fountain.NewCode(info.NumBlocks, nil, info.CodeSeed)
	if err != nil {
		return nil, err
	}
	enc, err := fountain.NewEncoder(code, blocks, seed)
	if err != nil {
		return nil, err
	}
	symbols := make(map[uint64][]byte, count)
	for len(symbols) < count {
		sym := enc.Next()
		if _, dup := symbols[sym.ID]; !dup {
			symbols[sym.ID] = append([]byte(nil), sym.Data...)
		}
		enc.Release(sym)
	}
	return symbols, nil
}
