// Package xorblock is the word-level XOR engine of the data plane. Every
// byte the system delivers flows through XOR-of-blocks loops — fountain
// encoding and peeling (§5.4.1), recoded-payload construction and
// propagation (§5.4.2) — so this one primitive bounds symbol throughput.
//
// XorInto processes eight 64-bit words per unrolled iteration through
// encoding/binary (no unsafe), falling back to single words and then a
// byte tail, which moves the cost of XORing a block from ~1 cycle/byte to
// ~1 cycle/word. On a 1400-byte paper block that is the difference
// between the XOR engine and the memory bus being the bottleneck.
//
// Length-mismatch semantics are explicit: only the common prefix
// min(len(dst), len(src)) is XORed and its length returned. Callers on
// equal-length hot paths (all of fountain and recode — block sizes are
// validated at construction) pay nothing for the guarantee; callers with
// ragged buffers get a defined, tested behavior instead of a silent
// out-of-bounds assumption.
package xorblock

import "encoding/binary"

// XorInto XORs src into dst in place over the common prefix
// min(len(dst), len(src)) and returns the number of bytes processed.
// dst and src may be the same slice; partially overlapping slices are
// not supported.
func XorInto(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	if n == 0 {
		return 0
	}
	d, s := dst[:n], src[:n]
	i := 0
	// 8-way unrolled word loop: 64 bytes per iteration.
	for ; i+64 <= n; i += 64 {
		dw, sw := d[i:i+64], s[i:i+64]
		binary.LittleEndian.PutUint64(dw[0:8], binary.LittleEndian.Uint64(dw[0:8])^binary.LittleEndian.Uint64(sw[0:8]))
		binary.LittleEndian.PutUint64(dw[8:16], binary.LittleEndian.Uint64(dw[8:16])^binary.LittleEndian.Uint64(sw[8:16]))
		binary.LittleEndian.PutUint64(dw[16:24], binary.LittleEndian.Uint64(dw[16:24])^binary.LittleEndian.Uint64(sw[16:24]))
		binary.LittleEndian.PutUint64(dw[24:32], binary.LittleEndian.Uint64(dw[24:32])^binary.LittleEndian.Uint64(sw[24:32]))
		binary.LittleEndian.PutUint64(dw[32:40], binary.LittleEndian.Uint64(dw[32:40])^binary.LittleEndian.Uint64(sw[32:40]))
		binary.LittleEndian.PutUint64(dw[40:48], binary.LittleEndian.Uint64(dw[40:48])^binary.LittleEndian.Uint64(sw[40:48]))
		binary.LittleEndian.PutUint64(dw[48:56], binary.LittleEndian.Uint64(dw[48:56])^binary.LittleEndian.Uint64(sw[48:56]))
		binary.LittleEndian.PutUint64(dw[56:64], binary.LittleEndian.Uint64(dw[56:64])^binary.LittleEndian.Uint64(sw[56:64]))
	}
	// Single-word loop for the 0–56 byte middle tail.
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(d[i:i+8],
			binary.LittleEndian.Uint64(d[i:i+8])^binary.LittleEndian.Uint64(s[i:i+8]))
	}
	// Byte tail for the final 0–7 bytes.
	for ; i < n; i++ {
		d[i] ^= s[i]
	}
	return n
}

// XorBytes sets dst = a XOR b over the common prefix of all three slices
// and returns the number of bytes written. dst may alias a or b.
func XorBytes(dst, a, b []byte) int {
	n := len(dst)
	if len(a) < n {
		n = len(a)
	}
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	d, x, y := dst[:n], a[:n], b[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(d[i:i+8],
			binary.LittleEndian.Uint64(x[i:i+8])^binary.LittleEndian.Uint64(y[i:i+8]))
	}
	for ; i < n; i++ {
		d[i] = x[i] ^ y[i]
	}
	return n
}
