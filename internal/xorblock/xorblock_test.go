package xorblock

import (
	"bytes"
	"testing"

	"icd/internal/prng"
)

// naiveXor is the reference semantics: XOR the common prefix one byte at
// a time, return its length.
func naiveXor(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}

// TestXorIntoMatchesNaive cross-checks the word engine against the byte
// loop on every length 0–1025 with mismatched dst/src sizes.
func TestXorIntoMatchesNaive(t *testing.T) {
	rng := prng.New(1)
	fill := func(b []byte) {
		for i := range b {
			b[i] = byte(rng.Uint64())
		}
	}
	for dstLen := 0; dstLen <= 1025; dstLen++ {
		// src shorter, equal and longer than dst.
		for _, srcLen := range []int{0, dstLen / 2, dstLen, dstLen + 1, dstLen + 63} {
			dst := make([]byte, dstLen)
			src := make([]byte, srcLen)
			fill(dst)
			fill(src)
			want := append([]byte(nil), dst...)
			wantN := naiveXor(want, src)

			got := append([]byte(nil), dst...)
			gotN := XorInto(got, src)
			if gotN != wantN {
				t.Fatalf("XorInto(%d,%d) returned %d, want %d", dstLen, srcLen, gotN, wantN)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("XorInto(%d,%d) produced wrong bytes", dstLen, srcLen)
			}
		}
	}
}

// TestXorIntoUnaligned exercises sub-slices at every offset mod 8 so the
// engine is checked on buffers whose backing arrays are not word-aligned.
func TestXorIntoUnaligned(t *testing.T) {
	rng := prng.New(2)
	base := make([]byte, 2100)
	src := make([]byte, 2100)
	for i := range base {
		base[i] = byte(rng.Uint64())
		src[i] = byte(rng.Uint64())
	}
	for off := 0; off < 16; off++ {
		for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1024, 1400} {
			dst := append([]byte(nil), base...)
			want := append([]byte(nil), base...)
			naiveXor(want[off:off+n], src[off:off+n])
			XorInto(dst[off:off+n], src[off:off+n])
			if !bytes.Equal(dst, want) {
				t.Fatalf("offset %d len %d: mismatch", off, n)
			}
		}
	}
}

func TestXorIntoSelfInverse(t *testing.T) {
	rng := prng.New(3)
	a := make([]byte, 1400)
	b := make([]byte, 1400)
	for i := range a {
		a[i] = byte(rng.Uint64())
		b[i] = byte(rng.Uint64())
	}
	dst := append([]byte(nil), a...)
	XorInto(dst, b)
	XorInto(dst, b)
	if !bytes.Equal(dst, a) {
		t.Fatal("XOR twice is not the identity")
	}
}

func TestXorIntoAliased(t *testing.T) {
	a := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	XorInto(a, a)
	for i, v := range a {
		if v != 0 {
			t.Fatalf("a[%d] = %d after self-XOR, want 0", i, v)
		}
	}
}

func TestXorBytesMatchesNaive(t *testing.T) {
	rng := prng.New(4)
	for n := 0; n <= 300; n++ {
		a := make([]byte, n)
		b := make([]byte, n+3)
		for i := range a {
			a[i] = byte(rng.Uint64())
		}
		for i := range b {
			b[i] = byte(rng.Uint64())
		}
		dst := make([]byte, n)
		if got := XorBytes(dst, a, b); got != n {
			t.Fatalf("XorBytes returned %d, want %d", got, n)
		}
		for i := range dst {
			if dst[i] != a[i]^b[i] {
				t.Fatalf("n=%d: dst[%d] wrong", n, i)
			}
		}
	}
}

func BenchmarkXorInto(b *testing.B) {
	for _, size := range []int{64, 1024, 1400, 65536} {
		dst := make([]byte, size)
		src := make([]byte, size)
		b.Run(benchName(size), func(b *testing.B) {
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				XorInto(dst, src)
			}
		})
	}
}

func BenchmarkXorIntoNaive(b *testing.B) {
	for _, size := range []int{64, 1024, 1400, 65536} {
		dst := make([]byte, size)
		src := make([]byte, size)
		b.Run(benchName(size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				naiveXor(dst, src)
			}
		})
	}
}

func benchName(size int) string {
	switch {
	case size >= 1024 && size%1024 == 0:
		return itoa(size/1024) + "KiB"
	default:
		return itoa(size) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
