package keyset

import (
	"math"
	"testing"
	"testing/quick"

	"icd/internal/prng"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(4)
	if !s.Add(10) || !s.Add(20) {
		t.Fatal("fresh Add returned false")
	}
	if s.Add(10) {
		t.Fatal("duplicate Add returned true")
	}
	if s.Len() != 2 || !s.Contains(10) || !s.Contains(20) || s.Contains(30) {
		t.Fatal("membership wrong after adds")
	}
	if !s.Remove(10) {
		t.Fatal("Remove of member returned false")
	}
	if s.Remove(10) {
		t.Fatal("Remove of non-member returned true")
	}
	if s.Len() != 1 || s.Contains(10) || !s.Contains(20) {
		t.Fatal("membership wrong after remove")
	}
}

func TestRemoveSwapKeepsIndexConsistent(t *testing.T) {
	s := FromKeys([]uint64{1, 2, 3, 4, 5})
	s.Remove(2) // forces swap-with-last
	for _, k := range []uint64{1, 3, 4, 5} {
		if !s.Contains(k) {
			t.Fatalf("lost key %d after swap-remove", k)
		}
	}
	// All positions must round-trip through At.
	for i := 0; i < s.Len(); i++ {
		k := s.At(i)
		if !s.Contains(k) {
			t.Fatalf("At(%d)=%d not a member", i, k)
		}
	}
	// Remove everything.
	for _, k := range []uint64{1, 3, 4, 5} {
		if !s.Remove(k) {
			t.Fatalf("failed removing %d", k)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after removing all", s.Len())
	}
}

func TestFromKeysDedups(t *testing.T) {
	s := FromKeys([]uint64{7, 7, 8, 7})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestRandomSetDistinct(t *testing.T) {
	rng := prng.New(1)
	s := Random(rng, 1000)
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestKeysOrderAndSorted(t *testing.T) {
	s := FromKeys([]uint64{5, 1, 9})
	k := s.Keys()
	if k[0] != 5 || k[1] != 1 || k[2] != 9 {
		t.Fatalf("Keys order = %v", k)
	}
	sk := s.SortedKeys()
	if sk[0] != 1 || sk[1] != 5 || sk[2] != 9 {
		t.Fatalf("SortedKeys = %v", sk)
	}
	// Keys returns a copy.
	k[0] = 42
	if s.At(0) != 5 {
		t.Fatal("Keys did not copy")
	}
}

func TestRandomMemberUniform(t *testing.T) {
	rng := prng.New(3)
	s := FromKeys([]uint64{0, 1, 2, 3, 4})
	counts := map[uint64]int{}
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[s.Random(rng)]++
	}
	want := float64(trials) / 5
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("key %d count %d, want ≈%.0f", k, c, want)
		}
	}
}

func TestRandomEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0).Random(prng.New(1))
}

func TestSample(t *testing.T) {
	rng := prng.New(5)
	s := Random(rng, 100)
	got := s.Sample(rng, 10)
	seen := map[uint64]bool{}
	for _, k := range got {
		if !s.Contains(k) || seen[k] {
			t.Fatalf("bad sample %v", got)
		}
		seen[k] = true
	}
}

func TestSampleWithReplacementMembers(t *testing.T) {
	rng := prng.New(6)
	s := FromKeys([]uint64{1, 2, 3})
	for _, k := range s.SampleWithReplacement(rng, 100) {
		if !s.Contains(k) {
			t.Fatalf("sampled non-member %d", k)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromKeys([]uint64{1, 2, 3, 4})
	b := FromKeys([]uint64{3, 4, 5})

	u := a.Union(b)
	if u.Len() != 5 {
		t.Fatalf("union len %d", u.Len())
	}
	in := a.Intersect(b)
	if in.Len() != 2 || !in.Contains(3) || !in.Contains(4) {
		t.Fatalf("intersect wrong: %v", in.Keys())
	}
	d := a.Diff(b)
	if d.Len() != 2 || !d.Contains(1) || !d.Contains(2) {
		t.Fatalf("diff wrong: %v", d.Keys())
	}
	if got := a.IntersectionSize(b); got != 2 {
		t.Fatalf("IntersectionSize = %d", got)
	}
	if got := b.ContainmentIn(a); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("ContainmentIn = %v", got)
	}
	if got := a.Resemblance(b); math.Abs(got-2.0/5) > 1e-12 {
		t.Fatalf("Resemblance = %v", got)
	}
}

func TestResemblanceEdgeCases(t *testing.T) {
	e1, e2 := New(0), New(0)
	if e1.Resemblance(e2) != 1 {
		t.Fatal("empty/empty resemblance != 1")
	}
	a := FromKeys([]uint64{1})
	if a.Resemblance(e1) != 0 {
		t.Fatal("disjoint resemblance != 0")
	}
	if e1.ContainmentIn(a) != 0 {
		t.Fatal("empty containment != 0")
	}
}

func TestEqual(t *testing.T) {
	a := FromKeys([]uint64{1, 2, 3})
	b := FromKeys([]uint64{3, 2, 1})
	if !a.Equal(b) {
		t.Fatal("order should not matter")
	}
	b.Add(4)
	if a.Equal(b) {
		t.Fatal("different sizes equal")
	}
	c := FromKeys([]uint64{1, 2, 9})
	if a.Equal(c) {
		t.Fatal("different contents equal")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromKeys([]uint64{1, 2})
	c := a.Clone()
	c.Add(3)
	c.Remove(1)
	if !a.Contains(1) || a.Contains(3) {
		t.Fatal("clone not independent")
	}
}

// Property: |A∪B| + |A∩B| == |A| + |B| (inclusion-exclusion).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(len(xs)), New(len(ys))
		for _, x := range xs {
			a.Add(uint64(x % 64)) // force overlap
		}
		for _, y := range ys {
			b.Add(uint64(y % 64))
		}
		return a.Union(b).Len()+a.IntersectionSize(b) == a.Len()+b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Diff and Intersect partition the receiver.
func TestQuickDiffIntersectPartition(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(len(xs)), New(len(ys))
		for _, x := range xs {
			a.Add(uint64(x % 100))
		}
		for _, y := range ys {
			b.Add(uint64(y % 100))
		}
		d, in := a.Diff(b), a.Intersect(b)
		if d.Len()+in.Len() != a.Len() {
			return false
		}
		if d.IntersectionSize(in) != 0 {
			return false
		}
		return d.Union(in).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetric resemblance.
func TestQuickResemblanceSymmetric(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(len(xs)), New(len(ys))
		for _, x := range xs {
			a.Add(uint64(x % 50))
		}
		for _, y := range ys {
			b.Add(uint64(y % 50))
		}
		return a.Resemblance(b) == b.Resemblance(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}

func BenchmarkRandomMember(b *testing.B) {
	rng := prng.New(1)
	s := Random(rng, 23968)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Random(rng)
	}
	_ = sink
}

func BenchmarkIntersectionSize(b *testing.B) {
	rng := prng.New(2)
	a := Random(rng, 10000)
	c := a.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.IntersectionSize(c)
	}
}
