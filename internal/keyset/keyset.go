// Package keyset implements working sets of symbol keys.
//
// Throughout the paper each element of a peer's working set is identified
// by an integer key (§4: "each element of the working sets of peers is
// identified by an integer key... we may assume that the integer keys are
// random"). This package provides the set representation used by sketches,
// summaries, reconciliation and the transfer simulator: an indexed set over
// uint64 keys with O(1) membership, O(1) uniform random choice (needed by
// the stateless "random selection" sender strategy), and deterministic
// insertion-order iteration so seeded experiments are exactly reproducible.
package keyset

import (
	"sort"

	"icd/internal/prng"
)

// Set is an indexed set of uint64 keys. The zero value is NOT usable;
// construct with New, FromKeys or Random. Set is not safe for concurrent
// mutation.
type Set struct {
	idx  map[uint64]int // key -> position in keys
	keys []uint64       // insertion order
}

// New returns an empty set with capacity hint n.
func New(n int) *Set {
	return &Set{idx: make(map[uint64]int, n), keys: make([]uint64, 0, n)}
}

// FromKeys builds a set from keys, ignoring duplicates.
func FromKeys(keys []uint64) *Set {
	s := New(len(keys))
	for _, k := range keys {
		s.Add(k)
	}
	return s
}

// Random returns a set of n distinct pseudo-random keys drawn from rng.
func Random(rng *prng.Rand, n int) *Set {
	s := New(n)
	for s.Len() < n {
		s.Add(rng.Uint64())
	}
	return s
}

// Add inserts k, reporting whether it was newly added.
func (s *Set) Add(k uint64) bool {
	if _, ok := s.idx[k]; ok {
		return false
	}
	s.idx[k] = len(s.keys)
	s.keys = append(s.keys, k)
	return true
}

// Remove deletes k, reporting whether it was present.
func (s *Set) Remove(k uint64) bool {
	i, ok := s.idx[k]
	if !ok {
		return false
	}
	last := len(s.keys) - 1
	moved := s.keys[last]
	s.keys[i] = moved
	s.idx[moved] = i
	s.keys = s.keys[:last]
	delete(s.idx, k)
	return true
}

// Contains reports membership of k.
func (s *Set) Contains(k uint64) bool {
	_, ok := s.idx[k]
	return ok
}

// Len returns the number of elements.
func (s *Set) Len() int { return len(s.keys) }

// At returns the key at position i in the current internal order.
func (s *Set) At(i int) uint64 { return s.keys[i] }

// Random returns a uniformly random member. It panics on an empty set.
func (s *Set) Random(rng *prng.Rand) uint64 {
	if len(s.keys) == 0 {
		panic("keyset: Random on empty set")
	}
	return s.keys[rng.Intn(len(s.keys))]
}

// Sample returns k distinct members chosen uniformly without replacement.
// It panics if k exceeds the set size.
func (s *Set) Sample(rng *prng.Rand, k int) []uint64 {
	pos := rng.SampleInts(len(s.keys), k)
	out := make([]uint64, k)
	for i, p := range pos {
		out[i] = s.keys[p]
	}
	return out
}

// SampleWithReplacement returns k members chosen uniformly with
// replacement (the paper's "select k elements of the working set at random
// (with replacement)" sketch).
func (s *Set) SampleWithReplacement(rng *prng.Rand, k int) []uint64 {
	if len(s.keys) == 0 {
		panic("keyset: sample from empty set")
	}
	out := make([]uint64, k)
	for i := range out {
		out[i] = s.keys[rng.Intn(len(s.keys))]
	}
	return out
}

// Keys returns a copy of the keys in insertion order.
func (s *Set) Keys() []uint64 {
	out := make([]uint64, len(s.keys))
	copy(out, s.keys)
	return out
}

// SortedKeys returns a sorted copy of the keys.
func (s *Set) SortedKeys() []uint64 {
	out := s.Keys()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Each calls fn for every key in insertion order.
func (s *Set) Each(fn func(uint64)) {
	for _, k := range s.keys {
		fn(k)
	}
}

// Clone returns a deep copy preserving order.
func (s *Set) Clone() *Set {
	c := New(len(s.keys))
	for _, k := range s.keys {
		c.idx[k] = len(c.keys)
		c.keys = append(c.keys, k)
	}
	return c
}

// Union returns a new set containing members of s then of other.
func (s *Set) Union(other *Set) *Set {
	u := s.Clone()
	for _, k := range other.keys {
		u.Add(k)
	}
	return u
}

// Intersect returns a new set with the members common to s and other,
// in s's order.
func (s *Set) Intersect(other *Set) *Set {
	out := New(min(s.Len(), other.Len()))
	for _, k := range s.keys {
		if other.Contains(k) {
			out.Add(k)
		}
	}
	return out
}

// Diff returns a new set holding s − other, in s's order.
func (s *Set) Diff(other *Set) *Set {
	out := New(s.Len())
	for _, k := range s.keys {
		if !other.Contains(k) {
			out.Add(k)
		}
	}
	return out
}

// IntersectionSize returns |s ∩ other| without materializing the set.
func (s *Set) IntersectionSize(other *Set) int {
	a, b := s, other
	if b.Len() < a.Len() {
		a, b = b, a
	}
	n := 0
	for _, k := range a.keys {
		if b.Contains(k) {
			n++
		}
	}
	return n
}

// ContainmentIn returns |s ∩ other| / |s|: the fraction of s's elements
// that other also has. In the paper's notation with s = B_F (a candidate
// sender) and other = A_F (the receiver), this is the quantity
// |A_F ∩ B_F| / |B_F| whose complement measures how useful B is to A.
// It returns 0 for an empty s.
func (s *Set) ContainmentIn(other *Set) float64 {
	if s.Len() == 0 {
		return 0
	}
	return float64(s.IntersectionSize(other)) / float64(s.Len())
}

// Resemblance returns |s ∩ other| / |s ∪ other| (Broder resemblance),
// the quantity min-wise sketches estimate. It returns 1 when both sets
// are empty.
func (s *Set) Resemblance(other *Set) float64 {
	inter := s.IntersectionSize(other)
	union := s.Len() + other.Len() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Equal reports whether both sets hold exactly the same keys.
func (s *Set) Equal(other *Set) bool {
	if s.Len() != other.Len() {
		return false
	}
	for _, k := range s.keys {
		if !other.Contains(k) {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
