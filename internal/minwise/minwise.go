// Package minwise implements the min-wise permutation sketches of §4, the
// paper's preferred coarse-grained reconciliation tool (Figure 2).
//
// A sketch is the vector v(S) = (min π_1(S), …, min π_m(S)) of minima of
// the working set under m universally agreed pseudo-random permutations.
// For two sets A and B,
//
//	P[min π_j(A) = min π_j(B)] = |A ∩ B| / |A ∪ B| = r,
//
// so the fraction of matching coordinates is an unbiased estimate of the
// resemblance r. The sketches are
//
//   - tiny: m = 128 minima of 64 bits fill the paper's 1KB packet budget,
//   - incrementally updatable in O(m) per new element,
//   - unionable: v(A ∪ B) = coordinate-wise min of v(A) and v(B), which
//     lets a receiver estimate the overlap of a third peer with a set of
//     peers it is already downloading from (§4's "calling card" use).
//
// True random permutations are impractical; following Broder et al. and
// the paper we use linear permutations π(x) = ax + b over the prime field
// 2^61 − 1 from internal/hashing.
package minwise

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"icd/internal/hashing"
	"icd/internal/keyset"
)

// DefaultSize is the number of permutations used when none is specified:
// 128 64-bit minima = 1KB, the paper's one-packet sketch budget.
const DefaultSize = 128

// noElement marks an empty coordinate: larger than any permuted value
// (the field has order 2^61−1, so 2^64−1 can never be a real minimum).
const noElement = ^uint64(0)

// Sketch is a min-wise summary of one working set. Two sketches are
// comparable only if built from the same family seed and size.
type Sketch struct {
	FamilySeed uint64   // identifies the universally agreed permutation family
	Minima     []uint64 // per-permutation minima; noElement where the set was empty
	SetSize    int      // |S| at sketch time (piggybacked, used for conversions)

	family *hashing.PermutationFamily // lazily rebuilt after unmarshal
}

// New returns an empty sketch over m permutations derived from familySeed.
func New(familySeed uint64, m int) *Sketch {
	if m <= 0 {
		panic("minwise: non-positive sketch size")
	}
	s := &Sketch{
		FamilySeed: familySeed,
		Minima:     make([]uint64, m),
		family:     hashing.NewPermutationFamily(familySeed, m),
	}
	for i := range s.Minima {
		s.Minima[i] = noElement
	}
	return s
}

// Build sketches an entire working set. Unlike repeated Add calls —
// which walk all m permutations once per key, touching the whole family
// and minima vector between every pair of keys — Build iterates
// permutation-major: keys are folded into the permutation field once
// into a contiguous scratch slice, then each permutation streams over
// that slice with its (a, b) pair and running minimum held in registers.
// The result is bit-identical to the incremental path.
func Build(familySeed uint64, m int, set *keyset.Set) *Sketch {
	s := New(familySeed, m)
	n := set.Len()
	if n == 0 {
		return s
	}
	folded := make([]uint64, n)
	for j := 0; j < n; j++ {
		folded[j] = hashing.Fold61(set.At(j))
	}
	for i := range s.Minima {
		p := s.family.At(i)
		min := noElement
		for _, k := range folded {
			if v := p.ApplyFolded(k); v < min {
				min = v
			}
		}
		s.Minima[i] = min
	}
	s.SetSize = n
	return s
}

// Add folds one new element into the sketch: O(m) as required for
// incremental maintenance while a transfer is in progress.
func (s *Sketch) Add(key uint64) {
	fam := s.ensureFamily()
	k := hashing.Fold61(key)
	for i := range s.Minima {
		if v := fam.At(i).ApplyFolded(k); v < s.Minima[i] {
			s.Minima[i] = v
		}
	}
	s.SetSize++
}

func (s *Sketch) ensureFamily() *hashing.PermutationFamily {
	if s.family == nil {
		s.family = hashing.NewPermutationFamily(s.FamilySeed, len(s.Minima))
	}
	return s.family
}

// Len returns the number of permutations (coordinates).
func (s *Sketch) Len() int { return len(s.Minima) }

func (s *Sketch) compatible(other *Sketch) error {
	if other == nil {
		return errors.New("minwise: nil sketch")
	}
	if s.FamilySeed != other.FamilySeed {
		return fmt.Errorf("minwise: family seed mismatch (%#x vs %#x)", s.FamilySeed, other.FamilySeed)
	}
	if len(s.Minima) != len(other.Minima) {
		return fmt.Errorf("minwise: size mismatch (%d vs %d)", len(s.Minima), len(other.Minima))
	}
	return nil
}

// Resemblance estimates r = |A∩B| / |A∪B| as the fraction of matching
// coordinates, exactly the comparison step of Figure 2.
func (s *Sketch) Resemblance(other *Sketch) (float64, error) {
	if err := s.compatible(other); err != nil {
		return 0, err
	}
	match := 0
	for i, v := range s.Minima {
		if v == other.Minima[i] {
			match++
		}
	}
	return float64(match) / float64(len(s.Minima)), nil
}

// IntersectionEstimate converts a resemblance estimate into |A∩B| using
// the piggybacked set sizes and inclusion–exclusion:
// |A∩B| = r/(1+r) · (|A|+|B|).
func (s *Sketch) IntersectionEstimate(other *Sketch) (float64, error) {
	r, err := s.Resemblance(other)
	if err != nil {
		return 0, err
	}
	return r / (1 + r) * float64(s.SetSize+other.SetSize), nil
}

// ContainmentOf estimates c = |A∩B| / |B| where B is the peer summarized
// by `other` — the fraction of the other peer's symbols we already hold.
// This is the quantity the recoding strategies of §5.4.2 and §6.2 consume.
// The result is clamped to [0,1].
func (s *Sketch) ContainmentOf(other *Sketch) (float64, error) {
	if other != nil && other.SetSize == 0 {
		return 0, nil
	}
	inter, err := s.IntersectionEstimate(other)
	if err != nil {
		return 0, err
	}
	c := inter / float64(other.SetSize)
	return math.Max(0, math.Min(1, c)), nil
}

// LikelyIdentical reports whether the two sketched sets are identical with
// high probability (every coordinate matches) — the §4 admission-control
// test that lets a receiver "immediately reject candidate senders whose
// content is identical to their own".
func (s *Sketch) LikelyIdentical(other *Sketch) (bool, error) {
	r, err := s.Resemblance(other)
	if err != nil {
		return false, err
	}
	return r == 1 && s.SetSize == other.SetSize, nil
}

// Union returns the sketch of the union of the two underlying sets: the
// coordinate-wise minimum. This is exact (not an estimate): the minimum
// over A∪B is the smaller of the two minima. SetSize is approximated by
// inclusion–exclusion from the resemblance estimate.
func (s *Sketch) Union(other *Sketch) (*Sketch, error) {
	if err := s.compatible(other); err != nil {
		return nil, err
	}
	inter, _ := s.IntersectionEstimate(other)
	u := &Sketch{
		FamilySeed: s.FamilySeed,
		Minima:     make([]uint64, len(s.Minima)),
		SetSize:    s.SetSize + other.SetSize - int(inter+0.5),
	}
	for i, v := range s.Minima {
		if ov := other.Minima[i]; ov < v {
			u.Minima[i] = ov
		} else {
			u.Minima[i] = v
		}
	}
	return u, nil
}

// wire format: familySeed, setSize, m, then m minima, little-endian.
const headerLen = 8 + 8 + 4

// MarshalBinary encodes the sketch; with DefaultSize coordinates the
// result is 20 + 128·8 = 1044 bytes ≈ the paper's single 1KB packet.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerLen+8*len(s.Minima))
	binary.LittleEndian.PutUint64(buf[0:], s.FamilySeed)
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.SetSize))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(s.Minima)))
	for i, v := range s.Minima {
		binary.LittleEndian.PutUint64(buf[headerLen+8*i:], v)
	}
	return buf, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < headerLen {
		return errors.New("minwise: short buffer")
	}
	m := binary.LittleEndian.Uint32(data[16:])
	const maxCoords = 1 << 20
	if m == 0 || m > maxCoords {
		return fmt.Errorf("minwise: implausible coordinate count %d", m)
	}
	if len(data) != headerLen+8*int(m) {
		return fmt.Errorf("minwise: want %d bytes, have %d", headerLen+8*int(m), len(data))
	}
	s.FamilySeed = binary.LittleEndian.Uint64(data[0:])
	s.SetSize = int(binary.LittleEndian.Uint64(data[8:]))
	s.Minima = make([]uint64, m)
	for i := range s.Minima {
		s.Minima[i] = binary.LittleEndian.Uint64(data[headerLen+8*i:])
	}
	s.family = nil
	return nil
}

// StdErr returns the standard error of the resemblance estimator at true
// resemblance r with m coordinates: sqrt(r(1−r)/m). Exposed so callers can
// size sketches for a target precision.
func StdErr(r float64, m int) float64 {
	return math.Sqrt(r * (1 - r) / float64(m))
}
