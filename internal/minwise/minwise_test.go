package minwise

import (
	"math"
	"testing"
	"testing/quick"

	"icd/internal/keyset"
	"icd/internal/prng"
)

const testSeed = 0xfeedface

func overlapping(rng *prng.Rand, na, nb, shared int) (*keyset.Set, *keyset.Set) {
	common := keyset.Random(rng, shared)
	a, b := common.Clone(), common.Clone()
	for a.Len() < na {
		a.Add(rng.Uint64())
	}
	for b.Len() < nb {
		b.Add(rng.Uint64())
	}
	return a, b
}

func TestResemblanceAccuracy(t *testing.T) {
	rng := prng.New(1)
	for _, shared := range []int{0, 500, 2000, 4000, 5000} {
		a, b := overlapping(rng, 5000, 5000, shared)
		truth := a.Resemblance(b)
		// Average over several independent families to beat sketch noise.
		var sum float64
		const fams = 10
		for f := 0; f < fams; f++ {
			sa := Build(uint64(f), DefaultSize, a)
			sb := Build(uint64(f), DefaultSize, b)
			r, err := sa.Resemblance(sb)
			if err != nil {
				t.Fatal(err)
			}
			sum += r
		}
		est := sum / fams
		tol := 4 * StdErr(math.Max(truth, 0.05), DefaultSize*fams)
		if math.Abs(est-truth) > math.Max(tol, 0.02) {
			t.Errorf("shared=%d: resemblance %.4f, truth %.4f", shared, est, truth)
		}
	}
}

func TestIdenticalSets(t *testing.T) {
	rng := prng.New(2)
	a := keyset.Random(rng, 1000)
	sa := Build(testSeed, DefaultSize, a)
	sb := Build(testSeed, DefaultSize, a.Clone())
	r, err := sa.Resemblance(sb)
	if err != nil || r != 1 {
		t.Fatalf("identical sets: r=%v err=%v", r, err)
	}
	id, err := sa.LikelyIdentical(sb)
	if err != nil || !id {
		t.Fatalf("LikelyIdentical = %v, %v", id, err)
	}
}

func TestDisjointSetsLowResemblance(t *testing.T) {
	rng := prng.New(3)
	a := keyset.Random(rng, 2000)
	b := keyset.Random(rng, 2000)
	sa := Build(testSeed, DefaultSize, a)
	sb := Build(testSeed, DefaultSize, b)
	r, _ := sa.Resemblance(sb)
	if r > 0.05 {
		t.Fatalf("disjoint sets resemblance %v", r)
	}
	id, _ := sa.LikelyIdentical(sb)
	if id {
		t.Fatal("disjoint sets flagged identical")
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	rng := prng.New(4)
	set := keyset.Random(rng, 500)
	batch := Build(testSeed, 64, set)
	inc := New(testSeed, 64)
	set.Each(inc.Add)
	for i := range batch.Minima {
		if batch.Minima[i] != inc.Minima[i] {
			t.Fatalf("coordinate %d differs", i)
		}
	}
	if inc.SetSize != set.Len() {
		t.Fatalf("SetSize = %d", inc.SetSize)
	}
}

func TestUnionIsCoordinatewiseMin(t *testing.T) {
	rng := prng.New(5)
	a, b := overlapping(rng, 800, 900, 300)
	sa := Build(testSeed, 64, a)
	sb := Build(testSeed, 64, b)
	su, err := sa.Union(sb)
	if err != nil {
		t.Fatal(err)
	}
	direct := Build(testSeed, 64, a.Union(b))
	for i := range su.Minima {
		if su.Minima[i] != direct.Minima[i] {
			t.Fatalf("union sketch coordinate %d: %d vs %d", i, su.Minima[i], direct.Minima[i])
		}
	}
}

func TestUnionThirdPeerEstimate(t *testing.T) {
	// §4: estimate overlap of C with A∪B using only the three sketches.
	rng := prng.New(6)
	a, b := overlapping(rng, 2000, 2000, 1000)
	c, _ := overlapping(rng, 2000, 1, 0)
	// Make C overlap with the union: borrow half of A's keys.
	keys := a.Keys()
	for i := 0; i < 1000; i++ {
		c.Add(keys[i])
	}
	sa := Build(testSeed, DefaultSize, a)
	sb := Build(testSeed, DefaultSize, b)
	sc := Build(testSeed, DefaultSize, c)
	su, err := sa.Union(sb)
	if err != nil {
		t.Fatal(err)
	}
	est, err := su.Resemblance(sc)
	if err != nil {
		t.Fatal(err)
	}
	truth := a.Union(b).Resemblance(c)
	if math.Abs(est-truth) > 0.12 {
		t.Fatalf("union-vs-C resemblance %.3f, truth %.3f", est, truth)
	}
}

func TestContainmentEstimate(t *testing.T) {
	rng := prng.New(7)
	// B: 4000 symbols, A holds 60% of them plus 2000 others.
	b := keyset.Random(rng, 4000)
	a := keyset.New(5000)
	keys := b.Keys()
	for i := 0; i < 2400; i++ {
		a.Add(keys[i])
	}
	for a.Len() < 4400 {
		a.Add(rng.Uint64())
	}
	truth := b.ContainmentIn(a) // |A∩B|/|B| = 0.6
	var sum float64
	const fams = 10
	for f := 0; f < fams; f++ {
		sa := Build(uint64(f), DefaultSize, a)
		sb := Build(uint64(f), DefaultSize, b)
		c, err := sa.ContainmentOf(sb)
		if err != nil {
			t.Fatal(err)
		}
		sum += c
	}
	if est := sum / fams; math.Abs(est-truth) > 0.06 {
		t.Fatalf("containment %.3f, truth %.3f", est, truth)
	}
}

func TestContainmentOfEmptyPeer(t *testing.T) {
	sa := Build(testSeed, 32, keyset.FromKeys([]uint64{1, 2}))
	sb := New(testSeed, 32)
	c, err := sa.ContainmentOf(sb)
	if err != nil || c != 0 {
		t.Fatalf("containment of empty peer = %v, %v", c, err)
	}
}

func TestIncompatibleSketches(t *testing.T) {
	a := New(1, 32)
	b := New(2, 32)
	if _, err := a.Resemblance(b); err == nil {
		t.Fatal("family mismatch accepted")
	}
	c := New(1, 64)
	if _, err := a.Resemblance(c); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := a.Resemblance(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := a.Union(b); err == nil {
		t.Fatal("union of mismatched families accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := prng.New(8)
	s := Build(testSeed, DefaultSize, keyset.Random(rng, 100))
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's budget: sketch must fit in ~1KB.
	if len(data) > 1100 {
		t.Fatalf("marshaled sketch is %d bytes, want ≈1KB", len(data))
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.FamilySeed != s.FamilySeed || got.SetSize != s.SetSize {
		t.Fatal("header mismatch")
	}
	r, err := got.Resemblance(s)
	if err != nil || r != 1 {
		t.Fatalf("round-tripped sketch differs: r=%v err=%v", r, err)
	}
	// Unmarshaled sketch must still be updatable (family rebuild).
	got.Add(12345)
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var s Sketch
	for i, data := range [][]byte{nil, {1, 2, 3}, make([]byte, 21), make([]byte, 2000)} {
		if err := s.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1, 0)
}

// Property: resemblance is symmetric and within [0,1]; union sketch
// resemblance with either operand is ≥ each...
func TestQuickResemblanceSymmetric(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := keyset.New(len(xs))
		b := keyset.New(len(ys))
		for _, x := range xs {
			a.Add(uint64(x % 256))
		}
		for _, y := range ys {
			b.Add(uint64(y % 256))
		}
		sa := Build(9, 32, a)
		sb := Build(9, 32, b)
		r1, err1 := sa.Resemblance(sb)
		r2, err2 := sb.Resemblance(sa)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1 == r2 && r1 >= 0 && r1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: adding an element already reflected in the sketch never
// changes the minima (monotonicity).
func TestQuickAddMonotone(t *testing.T) {
	f := func(xs []uint16, extra uint16) bool {
		s := New(5, 16)
		for _, x := range xs {
			s.Add(uint64(x))
		}
		before := append([]uint64(nil), s.Minima...)
		s.Add(uint64(extra))
		for i := range before {
			if s.Minima[i] > before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdErr(t *testing.T) {
	if got := StdErr(0.5, 100); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("StdErr = %v", got)
	}
	if got := StdErr(0, 128); got != 0 {
		t.Fatalf("StdErr(0) = %v", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(1, DefaultSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}

func BenchmarkBuild10k(b *testing.B) {
	rng := prng.New(1)
	set := keyset.Random(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(1, DefaultSize, set)
	}
}

func BenchmarkResemblance(b *testing.B) {
	rng := prng.New(1)
	sa := Build(1, DefaultSize, keyset.Random(rng, 1000))
	sb := Build(1, DefaultSize, keyset.Random(rng, 1000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sa.Resemblance(sb)
	}
}
