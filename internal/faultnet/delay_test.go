package faultnet

// delay_test.go exercises delivery-time propagation mode with the real
// clock and deliberately coarse assertions (half the modeled value as
// the floor, several multiples as the ceiling) so scheduler noise
// cannot flake them: a request/response exchange must pay the RTT every
// turn, a streamed burst must pay it roughly once, deadlines and Close
// must unblock delivery waits, and bytes must survive the pumps intact.

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"icd/internal/testutil"
)

// delayPair builds a delivery-mode net with one-way path latency lat
// (split across the two endpoints), serves accepted conns at "b" with
// serve, and returns the dialed conn from "a" plus a cleanup to defer
// (after the goroutine check, so teardown precedes the leak scan).
func delayPair(t *testing.T, lat time.Duration, class LinkClass, serve func(net.Conn)) (net.Conn, func()) {
	t.Helper()
	net_ := NewShapedNet(7)
	net_.SetDeliveryLatency(true)
	class.Latency = lat / 2
	net_.SetDefaultClass(class)
	ln, err := net_.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(conn)
		}
	}()
	conn, err := net_.Node("a").Dial("b")
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	return conn, func() {
		conn.Close()
		ln.Close()
	}
}

// echoServe answers each received byte with one byte.
func echoServe(conn net.Conn) {
	defer conn.Close()
	buf := make([]byte, 1)
	for {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		if _, err := conn.Write(buf); err != nil {
			return
		}
	}
}

// TestDeliveryStopAndWaitPaysRTTPerTurn is the property the default
// cost model lacks: a one-byte request/response exchange pays the full
// RTT on every turn because each turn starts a new burst in each
// direction.
func TestDeliveryStopAndWaitPaysRTTPerTurn(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const oneWay = 20 * time.Millisecond
	const turns = 5
	conn, cleanup := delayPair(t, oneWay, LinkClass{}, echoServe)
	defer cleanup()

	start := time.Now()
	buf := make([]byte, 1)
	for i := 0; i < turns; i++ {
		if _, err := conn.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("turn %d echoed %d", i, buf[0])
		}
	}
	elapsed := time.Since(start)
	// Each turn costs a full RTT (2 × oneWay); allow generous slack
	// below the modeled floor for timer coarseness.
	if floor := turns * oneWay * 2 * 8 / 10; elapsed < floor {
		t.Fatalf("stop-and-wait finished in %v, below the RTT floor %v", elapsed, floor)
	}
}

// TestDeliveryStreamingPaysRTTOnce: chunks written back-to-back ride
// one burst — total time is near a single one-way latency, nowhere near
// N × latency.
func TestDeliveryStreamingPaysRTTOnce(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const oneWay = 20 * time.Millisecond
	const chunks = 20
	done := make(chan struct{})
	conn, cleanup := delayPair(t, oneWay, LinkClass{}, func(c net.Conn) {
		defer c.Close()
		io.Copy(io.Discard, c)
		close(done)
	})
	defer cleanup()

	start := time.Now()
	payload := bytes.Repeat([]byte{0xA5}, 512)
	for i := 0; i < chunks; i++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the stream end")
	}
	elapsed := time.Since(start)
	if ceiling := chunks * oneWay / 4; elapsed > time.Duration(ceiling) {
		t.Fatalf("streaming %d chunks took %v — paying latency per chunk, not per burst (ceiling %v)",
			chunks, elapsed, ceiling)
	}
}

// TestDeliveryDeadlineUnblocksRead: a read deadline must cut both the
// wait for data and the wait for a stamped arrival.
func TestDeliveryDeadlineUnblocksRead(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	conn, cleanup := delayPair(t, 10*time.Millisecond, LinkClass{}, func(c net.Conn) {
		// Never writes; holds the conn open.
		buf := make([]byte, 1)
		c.Read(buf)
		c.Close()
	})
	defer cleanup()
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := conn.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	// A deadline set while blocked (the watchdog pattern) must also wake
	// the reader.
	conn.SetReadDeadline(time.Time{})
	errc := make(chan error, 1)
	go func() {
		_, err := conn.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conn.SetReadDeadline(time.Now())
	select {
	case err := <-errc:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("woken read err = %v, want deadline exceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SetReadDeadline did not wake the blocked read")
	}
}

// TestDeliveryDataIntegrity: rate caps, loss and latency reorder
// nothing — the byte stream survives the pumps exactly.
func TestDeliveryDataIntegrity(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	class := LinkClass{
		Jitter:   2 * time.Millisecond,
		UpBps:    4 << 20,
		DownBps:  4 << 20,
		LossProb: 0.05,
	}
	recv := make(chan []byte, 1)
	conn, cleanup := delayPair(t, 5*time.Millisecond, class, func(c net.Conn) {
		defer c.Close()
		data, _ := io.ReadAll(c)
		recv <- data
	})
	defer cleanup()

	want := make([]byte, 64<<10)
	for i := range want {
		want[i] = byte(i * 31)
	}
	for off := 0; off < len(want); off += 1000 {
		end := off + 1000
		if end > len(want) {
			end = len(want)
		}
		if _, err := conn.Write(want[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	select {
	case got := <-recv:
		if !bytes.Equal(got, want) {
			t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(want))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never saw the stream end")
	}
}

// TestDeliveryCloseUnblocks: Close must wake a blocked reader with
// net.ErrClosed rather than stranding it.
func TestDeliveryCloseUnblocks(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	conn, cleanup := delayPair(t, 10*time.Millisecond, LinkClass{}, func(c net.Conn) {
		buf := make([]byte, 1)
		c.Read(buf)
		c.Close()
	})
	defer cleanup()
	errc := make(chan error, 1)
	go func() {
		_, err := conn.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conn.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("read after close = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the blocked read")
	}
}
