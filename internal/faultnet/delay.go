package faultnet

// delay.go is ShapedNet's delivery-time propagation mode. The default
// shaping model (shaped.go) charges each connection direction its
// propagation latency once — time to first byte — and thereafter only
// serialization delay, which is the right fidelity/cost trade-off for
// thousand-node swarm runs but invisible to request/response protocols:
// a stop-and-wait exchange over it pays the RTT once, not per turn, so
// pipelining experiments measure nothing.
//
// Delivery mode instead stamps every chunk with the wall-clock instant
// it would surface at the far end of the path and holds it until then:
//
//	arrive_k = max(arrive_{k-1}, enqueue_k + latency) + serialization_k
//
// A chunk that starts a new burst (its earliest arrival is past the
// direction's current delivery horizon) pays full propagation latency
// plus a fresh jitter draw; chunks inside a burst queue behind the
// horizon and pay only serialization, exactly like packets pacing out
// of a busy link. Loss events push the horizon by the retransmission
// penalty. A request/response protocol therefore pays the RTT on every
// turn, while a pipelined sender overlaps its bursts — the distinction
// the fabric experiment exists to measure.
//
// The decoupling needs pump goroutines because PipeNet is synchronous
// net.Pipe: a writer must be able to return immediately while its bytes
// are still "in flight". Writes queue locally and a pump copies them
// into the pipe at their due time; a second pump eagerly drains the
// pipe and Read releases each chunk at its stamped arrival. Delivery
// mode therefore runs on the real clock only — SetClock virtual clocks
// are not honored here — and is opt-in via SetDeliveryLatency so the
// scenario lab's default cost model (and its calibrated numbers) is
// untouched.

import (
	"net"
	"os"
	"sync"
	"time"
)

// delayChunk bounds a single read-ahead chunk from the inner pipe.
const delayChunk = 32 << 10

// delayQueueDepth bounds each direction's in-flight chunk queue — the
// simulated device queue. A writer that outruns the link by more than
// this blocks until the pump drains, which is the backpressure a real
// send buffer applies.
const delayQueueDepth = 256

// SetDeliveryLatency switches the network between the default
// charge-once cost model and per-chunk delivery-time propagation.
// Affects connections dialed after the call; delivery mode uses the
// real clock regardless of SetClock.
func (s *ShapedNet) SetDeliveryLatency(on bool) {
	s.mu.Lock()
	s.delivery = on
	s.mu.Unlock()
}

// deliveryDue stamps n bytes enqueued now with their arrival time at
// the far end, advancing the direction's delivery horizon.
func (d *shapedDir) deliveryDue(now time.Time, n int) time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	earliest := now.Add(d.latency)
	due := d.horizon
	if earliest.After(due) {
		// New burst: full propagation delay plus a fresh jitter draw.
		due = earliest
		if d.jitter > 0 {
			due = due.Add(time.Duration(d.rng.Float64() * float64(d.jitter)))
		}
	}
	if d.rate > 0 {
		due = due.Add(time.Duration(float64(n) / d.rate * float64(time.Second)))
	}
	if d.loss > 0 && d.rng.Float64() < d.loss {
		due = due.Add(d.lossPenalty)
		d.stats.Losses++
	}
	d.stats.Bytes += int64(n)
	d.stats.Chunks++
	d.stats.ShapedDelay += due.Sub(now)
	d.horizon = due
	return due
}

// timedChunk is one in-flight unit: data due at a delivery instant, or
// a terminal read error delivered after all preceding data.
type timedChunk struct {
	data []byte
	due  time.Time
	err  error
}

// deadlineVar is a settable deadline observable by blocked waiters: set
// closes the notify channel so selects re-evaluate.
type deadlineVar struct {
	mu     sync.Mutex
	t      time.Time
	notify chan struct{}
}

func newDeadlineVar() *deadlineVar { return &deadlineVar{notify: make(chan struct{})} }

func (v *deadlineVar) get() (time.Time, <-chan struct{}) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t, v.notify
}

func (v *deadlineVar) set(t time.Time) {
	v.mu.Lock()
	v.t = t
	close(v.notify)
	v.notify = make(chan struct{})
	v.mu.Unlock()
}

// delayConn is a dialer-side connection in delivery mode: writes pace
// onto the uplink at their stamped due times, reads surface downlink
// bytes no earlier than their stamped arrivals. As with ShapedConn, the
// accepted half is unwrapped — each direction is shaped exactly once.
type delayConn struct {
	inner    net.Conn
	up, down *shapedDir

	wq chan timedChunk
	rq chan timedChunk

	rmu   sync.Mutex // serializes Read
	rpend []byte
	rdue  time.Time
	rerr  error

	wmu  sync.Mutex
	werr error

	rdl, wdl *deadlineVar

	done chan struct{}
	once sync.Once
}

func newDelayConn(inner net.Conn, up, down *shapedDir) *delayConn {
	c := &delayConn{
		inner: inner,
		up:    up,
		down:  down,
		wq:    make(chan timedChunk, delayQueueDepth),
		rq:    make(chan timedChunk, delayQueueDepth),
		rdl:   newDeadlineVar(),
		wdl:   newDeadlineVar(),
		done:  make(chan struct{}),
	}
	go c.pumpUp()
	go c.pumpDown()
	return c
}

// pumpUp drains queued writes into the inner pipe at their due times.
// Close flushes rather than drops: chunks already queued still deliver
// at their stamped times (a socket's send buffer drains after close),
// bounded by a write deadline so a wedged peer cannot pin the pump.
// The pump owns closing the inner conn — on flush completion or on the
// first write error — which is what finally wakes the down pump.
func (c *delayConn) pumpUp() {
	defer c.inner.Close()
	closing := false
	for {
		var ch timedChunk
		if closing {
			select {
			case ch = <-c.wq:
			default:
				return
			}
		} else {
			select {
			case ch = <-c.wq:
			case <-c.done:
				closing = true
				c.inner.SetWriteDeadline(time.Now().Add(5 * time.Second))
				continue
			}
		}
		if d := time.Until(ch.due); d > 0 {
			if closing {
				time.Sleep(d)
			} else {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-c.done:
					closing = true
					c.inner.SetWriteDeadline(time.Now().Add(5 * time.Second))
					time.Sleep(time.Until(ch.due))
				}
				t.Stop()
			}
		}
		if _, err := c.inner.Write(ch.data); err != nil {
			c.wmu.Lock()
			if c.werr == nil {
				c.werr = err
			}
			c.wmu.Unlock()
			return
		}
	}
}

// pumpDown eagerly reads the inner pipe, stamping each chunk's arrival.
func (c *delayConn) pumpDown() {
	for {
		buf := make([]byte, delayChunk)
		n, err := c.inner.Read(buf)
		if n > 0 {
			due := c.down.deliveryDue(time.Now(), n)
			select {
			case c.rq <- timedChunk{data: buf[:n], due: due}:
			case <-c.done:
				return
			}
		}
		if err != nil {
			select {
			case c.rq <- timedChunk{err: err}:
			case <-c.done:
			}
			return
		}
	}
}

// Write stamps p's delivery time and queues it; it blocks only when the
// simulated send buffer is full (or a write deadline cuts the wait).
func (c *delayConn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	c.wmu.Lock()
	err := c.werr
	c.wmu.Unlock()
	if err != nil {
		return 0, err
	}
	select {
	case <-c.done:
		return 0, net.ErrClosed
	default:
	}
	data := make([]byte, len(p))
	copy(data, p)
	chunk := timedChunk{data: data, due: c.up.deliveryDue(time.Now(), len(p))}
	for {
		dl, dn := c.wdl.get()
		var timech <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(d)
			timech = timer.C
		}
		select {
		case c.wq <- chunk:
			stopDelayTimer(timer)
			return len(p), nil
		case <-c.done:
			stopDelayTimer(timer)
			return 0, net.ErrClosed
		case <-dn:
		case <-timech:
			return 0, os.ErrDeadlineExceeded
		}
		stopDelayTimer(timer)
	}
}

// Read surfaces downlink bytes at their stamped arrival times. In-order
// delivery is preserved across deadline interruptions: an undelivered
// chunk stays pending for the next call.
func (c *delayConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		if len(c.rpend) > 0 {
			if err := c.waitUntil(c.rdue); err != nil {
				return 0, err
			}
			n := copy(p, c.rpend)
			c.rpend = c.rpend[n:]
			return n, nil
		}
		if c.rerr != nil {
			return 0, c.rerr
		}
		dl, dn := c.rdl.get()
		var timech <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(d)
			timech = timer.C
		}
		select {
		case ch := <-c.rq:
			stopDelayTimer(timer)
			if ch.err != nil {
				c.rerr = ch.err
				continue
			}
			c.rpend, c.rdue = ch.data, ch.due
		case <-c.done:
			stopDelayTimer(timer)
			return 0, net.ErrClosed
		case <-dn:
			stopDelayTimer(timer)
		case <-timech:
			return 0, os.ErrDeadlineExceeded
		}
	}
}

// waitUntil sleeps until due, interruptible by read-deadline changes
// and close.
func (c *delayConn) waitUntil(due time.Time) error {
	for {
		if time.Until(due) <= 0 {
			return nil
		}
		dl, dn := c.rdl.get()
		if !dl.IsZero() && !dl.After(time.Now()) {
			return os.ErrDeadlineExceeded
		}
		wake := due
		if !dl.IsZero() && dl.Before(due) {
			wake = dl
		}
		t := time.NewTimer(time.Until(wake))
		select {
		case <-t.C:
		case <-dn:
		case <-c.done:
			t.Stop()
			return net.ErrClosed
		}
		t.Stop()
	}
}

func stopDelayTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

// Close tears the connection down. Blocked Reads and Writes wake
// immediately; writes already queued flush at their stamped delivery
// times before the inner conn closes (pumpUp owns that), so a
// write-then-close still lands its final frames.
func (c *delayConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func (c *delayConn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *delayConn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline bounds both blocked Reads and Writes.
func (c *delayConn) SetDeadline(t time.Time) error {
	c.rdl.set(t)
	c.wdl.set(t)
	return nil
}

// SetReadDeadline bounds blocked Reads (including delivery-time waits).
func (c *delayConn) SetReadDeadline(t time.Time) error {
	c.rdl.set(t)
	return nil
}

// SetWriteDeadline bounds Writes blocked on a full send buffer.
func (c *delayConn) SetWriteDeadline(t time.Time) error {
	c.wdl.set(t)
	return nil
}

// UpStats returns the dialer-to-listener direction's shaping record.
func (c *delayConn) UpStats() LinkStats { return c.up.snapshot() }

// DownStats returns the listener-to-dialer direction's shaping record.
func (c *delayConn) DownStats() LinkStats { return c.down.snapshot() }
