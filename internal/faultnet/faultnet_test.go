package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoOnce serves one connection from ln: read everything, write it
// back, close.
func echoOnce(t *testing.T, ln net.Listener, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// The buffer must exceed any test message: net.Pipe writes are
		// synchronous, so echoing back a partial read while the client is
		// still mid-Write deadlocks both ends.
		buf := make([]byte, 256)
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				conn.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
}

func TestPipeNetRoundTrip(t *testing.T) {
	pn := NewPipeNet()
	ln, err := pn.Listen("A")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	echoOnce(t, ln, &wg)

	conn, err := pn.Dial("A")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ping")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	conn.Close()
	wg.Wait()

	if _, err := pn.Dial("B"); err == nil {
		t.Fatal("dial of unbound address succeeded")
	}
	if _, err := pn.Listen("A"); err == nil {
		t.Fatal("double bind succeeded")
	}
	ln.Close()
	if _, err := pn.Dial("A"); err == nil {
		t.Fatal("dial of closed listener succeeded")
	}
	if _, err := pn.Listen("A"); err != nil {
		t.Fatalf("rebinding a closed address: %v", err)
	}
}

func TestPipeNetAutoAddress(t *testing.T) {
	pn := NewPipeNet()
	ln1, err := pn.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := pn.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	if ln1.Addr().String() == ln2.Addr().String() {
		t.Fatalf("auto addresses collide: %s", ln1.Addr())
	}
	if ln1.Addr().Network() != "pipe" {
		t.Fatalf("network = %q", ln1.Addr().Network())
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	tr := TCP{DialTimeout: 5 * time.Second}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind localhost: %v", err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	echoOnce(t, ln, &wg)
	conn, err := tr.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	wg.Wait()
}

func TestWrapDialFailDeterministic(t *testing.T) {
	pn := NewPipeNet()
	ln, err := pn.Listen("A")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	outcomes := func(seed uint64) []bool {
		tr := Wrap(pn, Faults{Seed: seed, DialFailProb: 0.5})
		out := make([]bool, 40)
		for i := range out {
			conn, err := tr.Dial("A")
			out[i] = err == nil
			if conn != nil {
				conn.Close()
			}
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different outcome at dial %d", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("DialFailProb=0.5 produced %d/%d failures", fails, len(a))
	}
}

func TestWrapCorruptionFlipsBytes(t *testing.T) {
	pn := NewPipeNet()
	ln, err := pn.Listen("A")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	payload := bytes.Repeat([]byte{0xAA}, 1024)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(conn)
		}
	}()

	tr := Wrap(pn, Faults{Seed: 3, CorruptProb: 1})
	conn, err := tr.Dial("A")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("CorruptProb=1 delivered the stream unmodified")
	}
}

func TestWrapKillResetsMidStream(t *testing.T) {
	pn := NewPipeNet()
	ln, err := pn.Listen("A")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()

	tr := Wrap(pn, Faults{Seed: 5, KillProb: 1, KillAfter: 64})
	conn, err := tr.Dial("A")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	chunk := make([]byte, 32)
	var wrote int
	var werr error
	for i := 0; i < 64; i++ {
		var n int
		n, werr = conn.Write(chunk)
		wrote += n
		if werr != nil {
			break
		}
	}
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("doomed conn wrote %d bytes, err=%v, want ErrInjected", wrote, werr)
	}
	if wrote >= 64*len(chunk) {
		t.Fatal("kill never fired")
	}
}

func TestWrapZeroFaultsTransparent(t *testing.T) {
	pn := NewPipeNet()
	ln, err := pn.Listen("A")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	echoOnce(t, ln, &wg)
	tr := Wrap(pn, Faults{Seed: 1})
	conn, err := tr.Dial("A")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("clean")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("transparent wrapper altered data: %q", got)
	}
	conn.Close()
	wg.Wait()
}
