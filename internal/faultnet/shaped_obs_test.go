package faultnet

// shaped_obs_test.go pins the shaped net's observability surface
// (PR 10): per-endpoint, per-direction byte aggregation via
// ShapedNet.LinkStats — the up/down split that exposes asymmetric-link
// saturation — and the per-link-class registry metrics SetObs attaches.

import (
	"io"
	"net"
	"testing"

	"icd/internal/obs"
)

func TestShapedNetLinkStatsPerDirection(t *testing.T) {
	sn := NewShapedNet(42)
	sn.SetClock(&virtualClock{})
	sn.SetClass("a", LinkClass{Name: "dsl"})
	sn.SetClass("b", LinkClass{Name: "lan"})
	r := obs.NewRegistry()
	sn.SetObs(r)

	ln, err := sn.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const toB, toA = 300, 100
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		if _, err := io.ReadFull(conn, make([]byte, toB)); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(make([]byte, toA))
		done <- err
	}()

	conn, err := sn.Node("a").Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(make([]byte, toB)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, make([]byte, toA)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	a, b := sn.LinkStats("a"), sn.LinkStats("b")
	if a.Up.Bytes != toB || a.Down.Bytes != toA {
		t.Fatalf("a up/down = %d/%d bytes, want %d/%d", a.Up.Bytes, a.Down.Bytes, toB, toA)
	}
	if b.Up.Bytes != toA || b.Down.Bytes != toB {
		t.Fatalf("b up/down = %d/%d bytes, want %d/%d", b.Up.Bytes, b.Down.Bytes, toA, toB)
	}
	if a.Up.Chunks == 0 || a.Down.Chunks == 0 {
		t.Fatalf("chunk counts missing: %+v", a)
	}

	// The sending endpoint's class labels each direction's traffic.
	if got := r.Counter("faultnet.bytes{class=dsl}").Value(); got != toB {
		t.Fatalf("class dsl bytes = %d, want %d", got, toB)
	}
	if got := r.Counter("faultnet.bytes{class=lan}").Value(); got != toA {
		t.Fatalf("class lan bytes = %d, want %d", got, toA)
	}
	found := false
	for _, m := range r.Snapshot() {
		if m.Name == "faultnet.shaped_delay_ms{class=dsl}" && m.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("shaped-delay histogram for class dsl never observed")
	}
}

// TestShapedNetLinkStatsUnknownAddr pins the zero answer for an
// endpoint that never dialed or accepted.
func TestShapedNetLinkStatsUnknownAddr(t *testing.T) {
	sn := NewShapedNet(1)
	if es := sn.LinkStats("ghost"); es != (EndpointStats{}) {
		t.Fatalf("unknown endpoint has stats: %+v", es)
	}
}

var _ net.Conn = (*ShapedConn)(nil)
