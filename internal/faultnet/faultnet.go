// Package faultnet abstracts the byte transport under the peer engine —
// dialing and listening — behind one small Transport interface, with
// three implementations: real TCP, an in-process pipe network (many
// "hosts" in one process, the substrate a thousand-node scenario lab
// runs on), and a fault-injecting wrapper that perturbs any inner
// transport with configurable latency, bandwidth caps, stalls,
// mid-frame connection resets, partial writes and byte corruption.
//
// The wrapper is deterministic: all fault decisions derive from
// Faults.Seed through the repo's splitmix PRNG, so a chaos run that
// found a bug replays bit-for-bit. Faults are injected at the byte
// layer, below the protocol framing — corruption therefore surfaces to
// the session layer as CRC failures (protocol.ErrCorrupt), exactly the
// failure mode a hostile or broken peer produces on a real network.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport supplies connections: the peer engine dials through it and
// servers accept through it. Implementations must be safe for
// concurrent use.
type Transport interface {
	// Dial opens a connection to addr.
	Dial(addr string) (net.Conn, error)
	// Listen binds addr and returns a listener whose Accept yields the
	// server side of every Dial to that address.
	Listen(addr string) (net.Listener, error)
}

// TCP is the real-network transport: Dial and Listen map onto the
// kernel's TCP stack.
type TCP struct {
	// DialTimeout bounds each dial (0 = 30s).
	DialTimeout time.Duration
}

// Dial opens a TCP connection to addr.
func (t TCP) Dial(addr string) (net.Conn, error) {
	d := t.DialTimeout
	if d <= 0 {
		d = 30 * time.Second
	}
	return net.DialTimeout("tcp", addr, d)
}

// Listen binds a TCP listener on addr.
func (t TCP) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// PipeNet is an in-process network of named endpoints over net.Pipe:
// Listen("A") registers an endpoint, Dial("A") hands its listener the
// server half of a fresh synchronous pipe. Hundreds of "hosts" run in
// one process with no kernel sockets — the scenario-lab substrate — and
// net.Pipe supports deadlines, so the engine's watchdog and timeout
// machinery behaves as it does over TCP. Connections carry the endpoint
// names as their addresses (net.Pipe itself reports the constant "pipe"
// on both ends, which would collapse every client into one identity for
// the engine's per-address misbehavior scoring); anonymous dials get a
// unique synthetic source name, and Node attributes dials to a real
// endpoint name. The zero value is not usable; create with NewPipeNet.
type PipeNet struct {
	mu        sync.Mutex
	listeners map[string]*pipeListener
	auto      int
	anon      int
}

// NewPipeNet creates an empty in-process network.
func NewPipeNet() *PipeNet {
	return &PipeNet{listeners: make(map[string]*pipeListener)}
}

// Listen registers addr as an endpoint (empty addr auto-assigns
// "pipe-N"). Re-binding a live address is an error; a closed listener's
// address may be reused.
func (p *PipeNet) Listen(addr string) (net.Listener, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if addr == "" {
		p.auto++
		addr = fmt.Sprintf("pipe-%d", p.auto)
	}
	if _, taken := p.listeners[addr]; taken {
		return nil, fmt.Errorf("faultnet: address %q already bound", addr)
	}
	ln := &pipeListener{
		net:    p,
		addr:   pipeAddr(addr),
		accept: make(chan net.Conn),
		closed: make(chan struct{}),
	}
	p.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a listening endpoint, returning the client half of a
// fresh pipe (the server half arrives at the listener's Accept). The
// accepted conn's RemoteAddr is a unique anonymous name; a node that
// wants its dials attributed to its own listen address dials through
// Node.
func (p *PipeNet) Dial(addr string) (net.Conn, error) { return p.dialFrom("", addr) }

// Node returns a view of the network whose dialed connections carry src
// as their source identity: the accepted conn's RemoteAddr reports src,
// so a server's inbound misbehavior scoring keys by the same dialable
// name the dial plane and gossip use — and an advertised listen address
// equal to src verifies against the connection, exactly as a matching
// host does over TCP. Listen passes through unchanged.
func (p *PipeNet) Node(src string) Transport { return pipeNode{net: p, src: src} }

type pipeNode struct {
	net *PipeNet
	src string
}

func (n pipeNode) Dial(addr string) (net.Conn, error)       { return n.net.dialFrom(n.src, addr) }
func (n pipeNode) Listen(addr string) (net.Listener, error) { return n.net.Listen(addr) }

func (p *PipeNet) dialFrom(src, addr string) (net.Conn, error) {
	p.mu.Lock()
	ln := p.listeners[addr]
	if src == "" {
		p.anon++
		src = fmt.Sprintf("anon-%d", p.anon)
	}
	p.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("faultnet: no listener at %q", addr)
	}
	client, server := net.Pipe()
	named := &pipeConn{Conn: server, local: pipeAddr(addr), remote: pipeAddr(src)}
	select {
	case ln.accept <- named:
		return &pipeConn{Conn: client, local: pipeAddr(src), remote: pipeAddr(addr)}, nil
	case <-ln.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("faultnet: listener at %q closed", addr)
	}
}

// pipeConn overrides net.Pipe's constant addresses with the endpoint
// names the PipeNet knows.
type pipeConn struct {
	net.Conn
	local, remote net.Addr
}

func (c *pipeConn) LocalAddr() net.Addr  { return c.local }
func (c *pipeConn) RemoteAddr() net.Addr { return c.remote }

// unbind removes a closed listener so the address can be reused.
func (p *PipeNet) unbind(addr string) {
	p.mu.Lock()
	delete(p.listeners, addr)
	p.mu.Unlock()
}

type pipeListener struct {
	net    *PipeNet
	addr   pipeAddr
	accept chan net.Conn
	once   sync.Once
	closed chan struct{}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.accept:
		return conn, nil
	case <-l.closed:
		return nil, errors.New("faultnet: listener closed")
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.unbind(string(l.addr))
	})
	return nil
}

func (l *pipeListener) Addr() net.Addr { return l.addr }

type pipeAddr string

func (a pipeAddr) Network() string { return "pipe" }
func (a pipeAddr) String() string  { return string(a) }
