package faultnet

// shaped.go is the shaped-link simulator under the thousand-node
// scenario lab: a Transport whose connections behave like real access
// links — propagation latency with jitter, asymmetric up/down bandwidth
// caps, and loss (modeled as retransmission delay on a reliable byte
// stream). Every endpoint is assigned a LinkClass; a connection between
// two endpoints combines both ends' classes exactly as two access links
// in series would: propagation delays add, each direction's rate is the
// minimum of the sender's uplink and the receiver's downlink, and path
// loss compounds.
//
// Determinism: every jitter and loss draw comes from a per-connection,
// per-direction PRNG seeded from (net seed, src, dst, dial count), so
// the shaping schedule of a run does not depend on goroutine
// interleaving across connections — the same seed and the same
// per-connection chunk sequence reproduce the same delays and loss
// events bit for bit. Time itself is injectable (SetClock): unit tests
// drive a virtual clock and assert on the recorded shaping schedule
// with no wall-clock flake, while scenario runs use the real clock.
//
// Hot-path cost: shaping computes one owed-delay figure per chunk and
// coalesces sleeps — delay debt accumulates and is paid in a single
// Sleep once it crosses a granularity threshold, so a thousand-node run
// is not a thousand goroutines thrashing the timer wheel with
// microsecond naps.

import (
	"hash/fnv"
	"net"
	"sync"
	"time"

	"icd/internal/obs"
	"icd/internal/prng"
)

// Clock abstracts time for the shaped transport: scenario runs use the
// real clock, unit tests inject a virtual one so shaping schedules can
// be asserted deterministically without sleeping.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// LinkClass describes one endpoint's access link. The zero value is an
// unshaped link (no latency, unlimited rate, no loss).
type LinkClass struct {
	// Name labels the class in scenario specs and metrics breakdowns.
	Name string
	// Latency is the one-way propagation delay of this access link,
	// paid once per connection direction (time to first byte); both
	// endpoints' latencies add along the path.
	Latency time.Duration
	// Jitter widens the propagation delay by a uniform draw in
	// [0, Jitter), fixed per connection direction.
	Jitter time.Duration
	// UpBps caps upstream throughput in bytes/second (0 = unlimited).
	UpBps int
	// DownBps caps downstream throughput in bytes/second (0 = unlimited).
	DownBps int
	// LossProb is the per-chunk probability of a loss event. The
	// transport is a reliable byte stream, so loss surfaces as a
	// retransmission delay (LossPenalty), not missing bytes — the same
	// way TCP turns packet loss into added latency.
	LossProb float64
	// LossPenalty is the added delay per loss event (0 picks four times
	// the path's combined propagation delay, floored at 1ms).
	LossPenalty time.Duration
}

// ShapedNet is an in-process network of named endpoints whose
// connections are shaped per LinkClass — the scenario-lab substrate for
// running 1000+ simulated nodes in one process. It wraps a PipeNet, so
// endpoint naming, listener semantics and per-endpoint addresses are
// exactly PipeNet's; only the byte timing differs. The zero value is
// not usable; create with NewShapedNet.
type ShapedNet struct {
	pipes *PipeNet
	seed  uint64

	mu       sync.Mutex
	clock    Clock
	def      LinkClass
	classes  map[string]LinkClass
	dials    map[connKey]uint64 // per-(src,dst) dial counts: order-independent conn seeds
	delivery bool               // delivery-time propagation mode (see delay.go)
	obs      *obs.Registry      // per-class shaping metrics (SetObs)
	conns    []connRec          // every dialed connection's shapers, for LinkStats
}

// connRec remembers one connection's two direction shapers and their
// endpoints so LinkStats can aggregate per-endpoint, per-direction
// totals after the fact. One small record per dial — a scenario run's
// dial count bounds it.
type connRec struct {
	src, dst string
	up, down *shapedDir
}

type connKey struct{ src, dst string }

// NewShapedNet creates an empty shaped network; seed fixes every jitter
// and loss draw of the run.
func NewShapedNet(seed uint64) *ShapedNet {
	return &ShapedNet{
		pipes:   NewPipeNet(),
		seed:    seed,
		clock:   realClock{},
		classes: make(map[string]LinkClass),
		dials:   make(map[connKey]uint64),
	}
}

// SetClock replaces the transport's clock (tests inject a virtual one).
// Call before any Dial.
func (s *ShapedNet) SetClock(c Clock) {
	s.mu.Lock()
	s.clock = c
	s.mu.Unlock()
}

// SetDefaultClass sets the link class of every endpoint without an
// explicit assignment.
func (s *ShapedNet) SetDefaultClass(c LinkClass) {
	s.mu.Lock()
	s.def = c
	s.mu.Unlock()
}

// SetClass assigns addr's access-link class.
func (s *ShapedNet) SetClass(addr string, c LinkClass) {
	s.mu.Lock()
	s.classes[addr] = c
	s.mu.Unlock()
}

// Class returns addr's link class (the default when unassigned).
func (s *ShapedNet) Class(addr string) LinkClass {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.classes[addr]; ok {
		return c
	}
	return s.def
}

// SetObs attaches an observability registry: every connection dialed
// afterwards reports per-link-class shaped traffic — bytes, loss
// events, and a shaped-delay histogram per chunk — under
// faultnet.bytes{class=X}, faultnet.losses{class=X} and
// faultnet.shaped_delay_ms{class=X}, where X is the sending endpoint's
// class name ("default" for an unnamed class).
func (s *ShapedNet) SetObs(r *obs.Registry) {
	s.mu.Lock()
	s.obs = r
	s.mu.Unlock()
}

// EndpointStats is one endpoint's aggregate shaping record, split by
// direction: Up is everything the endpoint sent (its uplink), Down
// everything it received — the split that makes asymmetric-link
// saturation visible in lab time-series.
type EndpointStats struct {
	Up, Down LinkStats
}

// LinkStats aggregates the shaping records of every connection addr
// participated in (as dialer or listener), per direction.
func (s *ShapedNet) LinkStats(addr string) EndpointStats {
	s.mu.Lock()
	conns := make([]connRec, len(s.conns))
	copy(conns, s.conns)
	s.mu.Unlock()
	var es EndpointStats
	accum := func(dst *LinkStats, st LinkStats) {
		dst.Bytes += st.Bytes
		dst.Chunks += st.Chunks
		dst.Losses += st.Losses
		dst.ShapedDelay += st.ShapedDelay
	}
	for _, c := range conns {
		// The up shaper carries src→dst traffic (src's uplink, dst's
		// downlink); the down shaper carries the reverse.
		if c.src == addr {
			accum(&es.Up, c.up.snapshot())
			accum(&es.Down, c.down.snapshot())
		}
		if c.dst == addr {
			accum(&es.Up, c.down.snapshot())
			accum(&es.Down, c.up.snapshot())
		}
	}
	return es
}

// Listen binds addr as an endpoint (PipeNet semantics).
func (s *ShapedNet) Listen(addr string) (net.Listener, error) { return s.pipes.Listen(addr) }

// Dial connects anonymously to a listening endpoint; the connection is
// shaped by the default class on the dialer's side and the listener's
// class on the far side.
func (s *ShapedNet) Dial(addr string) (net.Conn, error) { return s.dialFrom("", addr) }

// Node returns a view of the network whose dials carry src as their
// source identity (PipeNet.Node semantics: penalty and gossip planes
// key by the same dialable name) and are shaped by src's link class.
func (s *ShapedNet) Node(src string) Transport { return shapedNode{net: s, src: src} }

type shapedNode struct {
	net *ShapedNet
	src string
}

func (n shapedNode) Dial(addr string) (net.Conn, error)       { return n.net.dialFrom(n.src, addr) }
func (n shapedNode) Listen(addr string) (net.Listener, error) { return n.net.Listen(addr) }

// connSeed derives a per-connection seed from the endpoints and their
// dial count, independent of the interleaving of other connections.
func (s *ShapedNet) connSeed(src, dst string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(dst))
	base := h.Sum64()
	s.mu.Lock()
	k := connKey{src, dst}
	n := s.dials[k]
	s.dials[k] = n + 1
	s.mu.Unlock()
	return s.seed ^ base ^ (n * 0x9E3779B97F4A7C15)
}

func (s *ShapedNet) dialFrom(src, dst string) (net.Conn, error) {
	var inner net.Conn
	var err error
	if src == "" {
		inner, err = s.pipes.Dial(dst)
	} else {
		inner, err = s.pipes.Node(src).Dial(dst)
	}
	if err != nil {
		return nil, err
	}
	seed := s.connSeed(src, dst)
	s.mu.Lock()
	clock := s.clock
	delivery := s.delivery
	reg := s.obs
	s.mu.Unlock()
	sc, dc := s.Class(src), s.Class(dst)
	up := newShapedDir(sc, dc, clock, prng.New(seed^0x75706C6B))   // src sends: src up, dst down
	down := newShapedDir(dc, sc, clock, prng.New(seed^0x646F776E)) // src receives: dst up, src down
	if reg != nil {
		up.met = newDirMetrics(reg, sc.Name)
		down.met = newDirMetrics(reg, dc.Name)
	}
	s.mu.Lock()
	s.conns = append(s.conns, connRec{src: src, dst: dst, up: up, down: down})
	s.mu.Unlock()
	if delivery {
		return newDelayConn(inner, up, down), nil
	}
	return &ShapedConn{Conn: inner, up: up, down: down}, nil
}

// LinkStats is the shaping record of one connection direction — what
// the simulator actually did, exposed so tests can assert the schedule
// without measuring wall clock.
type LinkStats struct {
	// Bytes is the total payload shaped in this direction.
	Bytes int64
	// Chunks counts the shaped read/write calls.
	Chunks int64
	// Losses counts loss events (each added LossPenalty of delay).
	Losses int64
	// ShapedDelay is the total delay the shaper owed this direction:
	// propagation + jitter + serialization + loss penalties.
	ShapedDelay time.Duration
}

// ShapedConn is a shaped connection as returned by ShapedNet dials: the
// dialer's writes are serialized onto its uplink, its reads onto the
// path's downlink. The accepted (listener-side) half is unwrapped — each
// direction is shaped exactly once, at the dialing end.
type ShapedConn struct {
	net.Conn
	up, down *shapedDir
}

// Read delivers bytes after the downlink's shaping delay.
func (c *ShapedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.down.shape(n)
	}
	return n, err
}

// Write serializes bytes onto the uplink before delivery.
func (c *ShapedConn) Write(p []byte) (int, error) {
	c.up.shape(len(p))
	return c.Conn.Write(p)
}

// UpStats returns the dialer-to-listener direction's shaping record.
func (c *ShapedConn) UpStats() LinkStats { return c.up.snapshot() }

// DownStats returns the listener-to-dialer direction's shaping record.
func (c *ShapedConn) DownStats() LinkStats { return c.down.snapshot() }

// shapeGranularity is the sleep-coalescing threshold: owed delay
// accumulates as debt and is paid in one Sleep once it crosses this, so
// per-chunk shaping does not become per-chunk timer churn.
const shapeGranularity = 200 * time.Microsecond

// shapedDir shapes one direction of a connection: the sender's uplink
// class in series with the receiver's downlink class.
type shapedDir struct {
	clock       Clock
	latency     time.Duration
	jitter      time.Duration
	rate        float64 // bytes/second, 0 = unlimited
	loss        float64
	lossPenalty time.Duration

	met dirMetrics // registry handles; zero value is a no-op

	mu      sync.Mutex
	rng     *prng.Rand
	started bool
	debt    time.Duration
	horizon time.Time // delivery mode: when the last chunk surfaces
	stats   LinkStats
}

// dirMetrics holds the per-link-class registry handles one direction
// shaper updates; same name → same metric, so every shaper of a class
// feeds one class-wide tally.
type dirMetrics struct {
	bytes  *obs.Counter
	losses *obs.Counter
	delay  *obs.Histogram
}

func newDirMetrics(r *obs.Registry, class string) dirMetrics {
	if class == "" {
		class = "default"
	}
	return dirMetrics{
		bytes:  r.Counter("faultnet.bytes{class=" + class + "}"),
		losses: r.Counter("faultnet.losses{class=" + class + "}"),
		delay:  r.Histogram("faultnet.shaped_delay_ms{class="+class+"}", obs.DurationBuckets),
	}
}

// newShapedDir builds the shaper for data flowing from the endpoint of
// class `from` to the endpoint of class `to`.
func newShapedDir(from, to LinkClass, clock Clock, rng *prng.Rand) *shapedDir {
	d := &shapedDir{
		clock:   clock,
		latency: from.Latency + to.Latency,
		jitter:  from.Jitter + to.Jitter,
		rng:     rng,
	}
	rate := minPositive(from.UpBps, to.DownBps)
	if rate > 0 {
		d.rate = float64(rate)
	}
	// Independent loss on each hop compounds along the path.
	d.loss = 1 - (1-from.LossProb)*(1-to.LossProb)
	d.lossPenalty = from.LossPenalty
	if to.LossPenalty > d.lossPenalty {
		d.lossPenalty = to.LossPenalty
	}
	if d.lossPenalty <= 0 {
		d.lossPenalty = 4 * d.latency
		if d.lossPenalty < time.Millisecond {
			d.lossPenalty = time.Millisecond
		}
	}
	return d
}

// minPositive returns the smaller positive value (0 = unlimited).
func minPositive(a, b int) int {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

// shape owes this direction the delay of n more bytes and sleeps off
// accumulated debt past the coalescing granularity.
func (d *shapedDir) shape(n int) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	var owed time.Duration
	if !d.started {
		d.started = true
		owed += d.latency
		if d.jitter > 0 {
			owed += time.Duration(d.rng.Float64() * float64(d.jitter))
		}
	}
	if d.rate > 0 {
		owed += time.Duration(float64(n) / d.rate * float64(time.Second))
	}
	lost := false
	if d.loss > 0 && d.rng.Float64() < d.loss {
		owed += d.lossPenalty
		d.stats.Losses++
		lost = true
	}
	d.stats.Bytes += int64(n)
	d.stats.Chunks++
	d.stats.ShapedDelay += owed
	d.debt += owed
	var pay time.Duration
	if d.debt >= shapeGranularity {
		pay, d.debt = d.debt, 0
	}
	d.mu.Unlock()
	d.met.bytes.Add(int64(n))
	if lost {
		d.met.losses.Add(1)
	}
	d.met.delay.Observe(float64(owed) / float64(time.Millisecond))
	if pay > 0 {
		d.clock.Sleep(pay)
	}
}

func (d *shapedDir) snapshot() LinkStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
