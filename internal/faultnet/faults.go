package faultnet

// faults.go is the fault-injecting transport wrapper: it decorates any
// inner Transport's dialed connections with deterministic, seeded
// misbehavior. Faults act below the protocol framing, so the layers
// above see exactly what a hostile network produces: dials that fail,
// reads that crawl or hang, frames whose CRC no longer matches, and
// connections that die mid-frame — on the read or the write side.

import (
	"errors"
	"net"
	"sync"
	"time"

	"icd/internal/prng"
)

// ErrInjected is the error a fault-injected connection returns when the
// wrapper kills it (mid-frame reset or truncated write). It is
// distinguishable from real network errors so chaos harnesses can count
// injected failures exactly.
var ErrInjected = errors.New("faultnet: injected connection reset")

// Faults configures the wrapper. All probabilities are per-event in
// [0,1]; zero values inject nothing, so Faults{} is a transparent
// wrapper. Every decision draws from a PRNG derived from Seed, making a
// run reproducible.
type Faults struct {
	// Seed drives every fault decision (same seed, same faults).
	Seed uint64
	// DialFailProb is the chance a Dial fails outright — the undialable
	// gossip address of a churned swarm.
	DialFailProb float64
	// Latency is added to every Read (one-way propagation delay).
	Latency time.Duration
	// Bandwidth caps read throughput in bytes/second (0 = unlimited),
	// enforced by sleeping proportionally to bytes delivered.
	Bandwidth int
	// StallProb is the per-read chance the connection freezes for Stall
	// before proceeding — the silent peer a watchdog must catch.
	StallProb float64
	// Stall is the freeze duration of a stall (default 1s).
	Stall time.Duration
	// KillProb is the per-connection chance the conn is doomed to reset
	// mid-stream after roughly KillAfter transferred bytes.
	KillProb float64
	// KillAfter is the mean transferred-byte count before a doomed
	// connection resets (default 16KiB); the exact point is uniform in
	// [1, 2·KillAfter), so kills land mid-frame at any batch position.
	KillAfter int
	// CorruptProb is the per-connection chance a dialed conn corrupts
	// the data it delivers: a corrupting connection flips one byte in
	// every read, surfacing upstream as frame-CRC failures until the
	// reader gives up on it. Connection-level (rather than per-read)
	// corruption models a bad path or a hostile peer — the cases a
	// penalty box must attribute to an address.
	CorruptProb float64
}

// Wrap decorates inner with fault injection. The returned transport
// shares one seeded PRNG across connections (guarded by a mutex), and
// each connection derives its own independent stream from it, so a
// single Seed fixes the whole run's behavior. Listen passes through
// unchanged: faults ride on dialed conns, which carry both directions
// of each session.
func Wrap(inner Transport, f Faults) Transport {
	if f.KillAfter <= 0 {
		f.KillAfter = 16 << 10
	}
	if f.Stall <= 0 {
		f.Stall = time.Second
	}
	return &faultTransport{inner: inner, f: f, rng: prng.New(f.Seed ^ 0x9e3779b97f4a7c15)}
}

type faultTransport struct {
	inner Transport
	f     Faults

	mu  sync.Mutex
	rng *prng.Rand
}

// Dial opens a connection through the inner transport, possibly failing
// by DialFailProb, and wraps the conn with this transport's faults.
func (t *faultTransport) Dial(addr string) (net.Conn, error) {
	t.mu.Lock()
	fail := t.f.DialFailProb > 0 && t.rng.Float64() < t.f.DialFailProb
	connRng := t.rng.Split()
	t.mu.Unlock()
	if fail {
		return nil, errors.New("faultnet: injected dial failure")
	}
	conn, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: conn, f: t.f, rng: connRng, killAt: -1}
	if t.f.KillProb > 0 && connRng.Float64() < t.f.KillProb {
		fc.killAt = int64(1 + connRng.Intn(2*t.f.KillAfter))
	}
	fc.corrupt = t.f.CorruptProb > 0 && connRng.Float64() < t.f.CorruptProb
	return fc, nil
}

// Listen delegates to the inner transport unchanged.
func (t *faultTransport) Listen(addr string) (net.Listener, error) {
	return t.inner.Listen(addr)
}

// faultConn injects the configured faults around an inner conn. killAt
// (when ≥ 0) is the transferred-byte count — reads plus writes — at
// which the connection resets; a doomed write delivers a partial prefix
// first, so the peer observes a torn frame.
type faultConn struct {
	net.Conn
	f       Faults
	killAt  int64
	corrupt bool // this conn flips one byte per read

	mu          sync.Mutex
	rng         *prng.Rand
	transferred int64
	dead        bool
}

// roll draws one uniform float under the conn lock (reads and writes
// run on different goroutines).
func (c *faultConn) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// account adds n transferred bytes and reports whether the kill point
// was crossed (first crossing only).
func (c *faultConn) account(n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.transferred += int64(n)
	if c.dead || c.killAt < 0 || c.transferred < c.killAt {
		return false
	}
	c.dead = true
	return true
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.f.Latency > 0 {
		time.Sleep(c.f.Latency)
	}
	if c.f.StallProb > 0 && c.roll() < c.f.StallProb {
		time.Sleep(c.f.Stall)
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		if c.corrupt {
			c.mu.Lock()
			p[c.rng.Intn(n)] ^= 0x5A
			c.mu.Unlock()
		}
		if c.f.Bandwidth > 0 {
			time.Sleep(time.Duration(float64(n) / float64(c.f.Bandwidth) * float64(time.Second)))
		}
		if c.account(n) {
			c.Conn.Close()
			return n, nil // deliver what arrived; the next op sees the reset
		}
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dead, killAt, transferred := c.dead, c.killAt, c.transferred
	c.mu.Unlock()
	if dead {
		return 0, ErrInjected
	}
	if killAt >= 0 && transferred+int64(len(p)) >= killAt {
		// Partial write: deliver the prefix up to the kill point, then
		// reset — the receiver sees a torn frame, the writer an error.
		keep := int(killAt - transferred)
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			c.Conn.Write(p[:keep])
		}
		c.mu.Lock()
		c.dead = true
		c.mu.Unlock()
		c.Conn.Close()
		return keep, ErrInjected
	}
	n, err := c.Conn.Write(p)
	c.account(n)
	return n, err
}
