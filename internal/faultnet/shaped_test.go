package faultnet

// shaped_test.go asserts the shaped-link simulator against its
// configured link classes with an injected virtual clock: the shaping
// schedule (latency, serialization, loss events) is recorded per
// connection direction, so every assertion is exact-deterministic — no
// wall-clock measurement, no flake.

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// virtualClock advances only when a shaper sleeps; tests read the
// recorded LinkStats rather than elapsed time, so the clock exists to
// keep shaped tests instant.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// shapedPair builds a shaped net with two endpoints of the given
// classes, a listener at "b" whose accepted conns are echoed by echo,
// and returns the dialed shaped conn from "a".
func shapedPair(t *testing.T, seed uint64, a, b LinkClass, serve func(net.Conn)) *ShapedConn {
	t.Helper()
	sn := NewShapedNet(seed)
	sn.SetClock(&virtualClock{})
	sn.SetClass("a", a)
	sn.SetClass("b", b)
	ln, err := sn.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(conn)
		conn.Close()
	}()
	conn, err := sn.Node("a").Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		conn.Close()
		ln.Close()
		<-done
	})
	sc, ok := conn.(*ShapedConn)
	if !ok {
		t.Fatalf("dialed conn is %T, want *ShapedConn", conn)
	}
	return sc
}

// transfer writes total bytes from the listener side in chunk-sized
// pieces and reads them on the shaped side in the same chunking, so the
// shaped chunk sequence is deterministic.
func transfer(t *testing.T, seed uint64, a, b LinkClass, total, chunk int) *ShapedConn {
	t.Helper()
	payload := make([]byte, chunk)
	sc := shapedPair(t, seed, a, b, func(conn net.Conn) {
		for sent := 0; sent < total; sent += chunk {
			if _, err := conn.Write(payload); err != nil {
				return
			}
		}
	})
	buf := make([]byte, chunk)
	for got := 0; got < total; got += chunk {
		if _, err := io.ReadFull(sc, buf); err != nil {
			t.Fatalf("read at %d/%d: %v", got, total, err)
		}
	}
	return sc
}

// approx asserts got is within tol of want (duration rounding in the
// per-chunk serialization math makes exact equality too strict).
func approx(t *testing.T, what string, got, want, tol time.Duration) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Fatalf("%s = %v, want %v ± %v", what, got, want, tol)
	}
}

func TestShapedLinkClasses(t *testing.T) {
	const total, chunk = 64 << 10, 1 << 10
	cases := []struct {
		name     string
		a, b     LinkClass
		wantDown time.Duration // expected down-direction ShapedDelay
		tol      time.Duration
	}{
		{
			name:     "unshaped is free",
			wantDown: 0,
			tol:      0,
		},
		{
			name:     "latency paid once per direction",
			a:        LinkClass{Latency: 3 * time.Millisecond},
			b:        LinkClass{Latency: 2 * time.Millisecond},
			wantDown: 5 * time.Millisecond, // one-way propagation, both hops
			tol:      0,
		},
		{
			name:     "bandwidth serializes bytes",
			b:        LinkClass{UpBps: 1 << 20}, // sender's uplink caps the path
			wantDown: time.Duration(float64(total) / float64(1<<20) * float64(time.Second)),
			tol:      time.Duration(total/chunk) * time.Microsecond,
		},
		{
			name: "receiver downlink caps below sender uplink",
			a:    LinkClass{DownBps: 512 << 10},
			b:    LinkClass{UpBps: 4 << 20},
			wantDown: time.Duration(float64(total) / float64(512<<10) *
				float64(time.Second)),
			tol: time.Duration(total/chunk) * time.Microsecond,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := transfer(t, 42, tc.a, tc.b, total, chunk)
			down := sc.DownStats()
			if down.Bytes != total {
				t.Fatalf("down bytes = %d, want %d", down.Bytes, total)
			}
			approx(t, "down delay", down.ShapedDelay, tc.wantDown, tc.tol)
			if up := sc.UpStats(); up.Bytes != 0 {
				t.Fatalf("nothing was written up, yet up shaped %d bytes", up.Bytes)
			}
		})
	}
}

func TestShapedJitterBounded(t *testing.T) {
	// Jitter widens propagation by a uniform [0, Jitter) draw: delay
	// must land in [latency, latency+jitter) and differ across
	// connections (different per-conn seeds).
	const lat, jit = 2 * time.Millisecond, 8 * time.Millisecond
	seen := make(map[time.Duration]bool)
	for i := 0; i < 8; i++ {
		sc := transfer(t, uint64(100+i), LinkClass{}, LinkClass{Latency: lat, Jitter: jit}, 1024, 1024)
		d := sc.DownStats().ShapedDelay
		if d < lat || d >= lat+jit {
			t.Fatalf("jittered delay %v outside [%v, %v)", d, lat, lat+jit)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 seeds produced only %d distinct jitter draws", len(seen))
	}
}

func TestShapedLossAddsRetransmitDelay(t *testing.T) {
	const total, chunk = 256 << 10, 1 << 10 // 256 chunks
	const loss = 0.25
	cls := LinkClass{LossProb: loss, LossPenalty: 3 * time.Millisecond}
	sc := transfer(t, 7, LinkClass{}, cls, total, chunk)
	down := sc.DownStats()
	if down.Losses == 0 {
		t.Fatal("25% loss over 256 chunks produced zero loss events")
	}
	// Binomial(256, 0.25): mean 64, σ ≈ 6.9 — a 5σ band is deterministic
	// in practice for any seed, and the draw itself is seed-fixed anyway.
	if down.Losses < 30 || down.Losses > 100 {
		t.Fatalf("loss events = %d, want ≈64 (5σ band [30,100])", down.Losses)
	}
	want := time.Duration(down.Losses) * cls.LossPenalty
	approx(t, "loss delay", down.ShapedDelay, want, time.Microsecond)
}

func TestShapedAsymmetricUpDown(t *testing.T) {
	// An ADSL-shaped endpoint: fast down, slow up. An echo transfer in
	// both directions must record ~8x more delay upstream.
	const total, chunk = 32 << 10, 1 << 10
	adsl := LinkClass{UpBps: 256 << 10, DownBps: 2 << 20}
	payload := make([]byte, chunk)
	sc := shapedPair(t, 21, adsl, LinkClass{}, func(conn net.Conn) {
		buf := make([]byte, chunk)
		for n := 0; n < total; n += chunk {
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
		}
		for n := 0; n < total; n += chunk {
			if _, err := conn.Write(payload); err != nil {
				return
			}
		}
	})
	for n := 0; n < total; n += chunk {
		if _, err := sc.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, chunk)
	for n := 0; n < total; n += chunk {
		if _, err := io.ReadFull(sc, buf); err != nil {
			t.Fatal(err)
		}
	}
	up, down := sc.UpStats(), sc.DownStats()
	if up.Bytes != total || down.Bytes != total {
		t.Fatalf("bytes up/down = %d/%d, want %d each", up.Bytes, down.Bytes, total)
	}
	wantUp := time.Duration(float64(total) / float64(256<<10) * float64(time.Second))
	wantDown := time.Duration(float64(total) / float64(2<<20) * float64(time.Second))
	tol := time.Duration(total/chunk) * time.Microsecond
	approx(t, "up delay", up.ShapedDelay, wantUp, tol)
	approx(t, "down delay", down.ShapedDelay, wantDown, tol)
}

func TestShapedDeterministicAcrossRuns(t *testing.T) {
	// Same seed, same chunk sequence ⇒ identical shaping schedule, bit
	// for bit — the reproducibility contract scenario runs rely on.
	cls := LinkClass{
		Latency:  time.Millisecond,
		Jitter:   4 * time.Millisecond,
		UpBps:    1 << 20,
		LossProb: 0.1,
	}
	run := func() (LinkStats, LinkStats) {
		sc := transfer(t, 99, LinkClass{DownBps: 2 << 20}, cls, 128<<10, 2<<10)
		return sc.UpStats(), sc.DownStats()
	}
	up1, down1 := run()
	up2, down2 := run()
	if up1 != up2 || down1 != down2 {
		t.Fatalf("same seed diverged:\nup   %+v vs %+v\ndown %+v vs %+v", up1, up2, down1, down2)
	}
	// And a different seed must actually change the draws.
	sc := transfer(t, 100, LinkClass{DownBps: 2 << 20}, cls, 128<<10, 2<<10)
	if d := sc.DownStats(); d == down1 {
		t.Fatal("different seed reproduced the identical shaping schedule")
	}
}

func TestShapedNetKeepsPipeNetAddressing(t *testing.T) {
	// The shaped transport must preserve PipeNet's per-endpoint address
	// identity — penalty boxes and gossip key by these names.
	sn := NewShapedNet(1)
	ln, err := sn.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := sn.Node("cli").Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srvSide := <-accepted
	defer srvSide.Close()
	if got := srvSide.RemoteAddr().String(); got != "cli" {
		t.Fatalf("server saw remote %q, want %q", got, "cli")
	}
	if got := conn.RemoteAddr().String(); got != "srv" {
		t.Fatalf("client saw remote %q, want %q", got, "srv")
	}
}
