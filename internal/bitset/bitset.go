// Package bitset provides a fixed-size bit vector used as the backing
// store for Bloom filters and other compact summaries.
//
// The zero value of Set is an empty, zero-length bit vector. Use New to
// allocate a vector of a given width. Set is not safe for concurrent
// mutation; concurrent readers are safe once writes have completed.
package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-size bit vector.
type Set struct {
	n     int // number of valid bits
	words []uint64
}

// New returns a Set holding n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits in the set.
func (s *Set) Len() int { return s.n }

// Set sets bit i to 1.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is 1.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// FillRatio returns the fraction of bits that are set, in [0,1].
// It returns 0 for an empty vector.
func (s *Set) FillRatio() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Count()) / float64(s.n)
}

// Reset clears every bit, retaining capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Union ORs other into s. Both sets must have the same length.
func (s *Set) Union(other *Set) error {
	if other == nil || s.n != other.n {
		return errors.New("bitset: union of mismatched lengths")
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
	return nil
}

// Intersect ANDs other into s. Both sets must have the same length.
func (s *Set) Intersect(other *Set) error {
	if other == nil || s.n != other.n {
		return errors.New("bitset: intersect of mismatched lengths")
	}
	for i, w := range other.words {
		s.words[i] &= w
	}
	return nil
}

// Equal reports whether the two sets have identical length and contents.
func (s *Set) Equal(other *Set) bool {
	if other == nil || s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// MarshalBinary encodes the set as an 8-byte little-endian length header
// followed by the packed words.
func (s *Set) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+8*len(s.words))
	binary.LittleEndian.PutUint64(buf, uint64(s.n))
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(buf[8+8*i:], w)
	}
	return buf, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (s *Set) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return errors.New("bitset: short buffer")
	}
	n := binary.LittleEndian.Uint64(data)
	const maxBits = 1 << 40 // 128 GiB of bits; guards corrupt headers
	if n > maxBits {
		return fmt.Errorf("bitset: implausible bit count %d", n)
	}
	nw := (int(n) + wordBits - 1) / wordBits
	if len(data) != 8+8*nw {
		return fmt.Errorf("bitset: want %d payload bytes, have %d", 8*nw, len(data)-8)
	}
	s.n = int(n)
	s.words = make([]uint64, nw)
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	// Reject garbage in the tail beyond bit n: keeps Equal and Count exact.
	if rem := s.n % wordBits; rem != 0 && nw > 0 {
		if s.words[nw-1]&^(1<<uint(rem)-1) != 0 {
			return errors.New("bitset: nonzero bits beyond declared length")
		}
	}
	return nil
}

// String renders small sets as a 0/1 string for debugging; large sets are
// summarized.
func (s *Set) String() string {
	if s.n <= 128 {
		b := make([]byte, s.n)
		for i := 0; i < s.n; i++ {
			if s.Test(i) {
				b[i] = '1'
			} else {
				b[i] = '0'
			}
		}
		return string(b)
	}
	return fmt.Sprintf("bitset{n=%d, ones=%d}", s.n, s.Count())
}
