package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(0)
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.FillRatio() != 0 {
		t.Fatalf("FillRatio = %v, want 0", s.FillRatio())
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130) // spans three words
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != len(idx) {
		t.Fatalf("Count = %d, want %d", got, len(idx))
	}
	for _, i := range idx {
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after clears = %d, want 0", got)
	}
}

func TestSetIdempotent(t *testing.T) {
	s := New(10)
	s.Set(3)
	s.Set(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Test(%d) did not panic", i)
				}
			}()
			s.Test(i)
		}()
	}
}

func TestUnionIntersect(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)

	u := a.Clone()
	if err := u.Union(b); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 50, 99} {
		if !u.Test(i) {
			t.Errorf("union missing bit %d", i)
		}
	}
	if u.Count() != 3 {
		t.Errorf("union Count = %d, want 3", u.Count())
	}

	in := a.Clone()
	if err := in.Intersect(b); err != nil {
		t.Fatal(err)
	}
	if !in.Test(50) || in.Count() != 1 {
		t.Errorf("intersect = %v, want only bit 50", in)
	}
}

func TestUnionMismatch(t *testing.T) {
	a := New(10)
	b := New(11)
	if err := a.Union(b); err == nil {
		t.Fatal("Union of mismatched lengths did not error")
	}
	if err := a.Intersect(b); err == nil {
		t.Fatal("Intersect of mismatched lengths did not error")
	}
	if err := a.Union(nil); err == nil {
		t.Fatal("Union with nil did not error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Test(6) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Test(5) {
		t.Fatal("clone lost original bit")
	}
}

func TestEqual(t *testing.T) {
	a := New(70)
	b := New(70)
	if !a.Equal(b) {
		t.Fatal("empty sets not equal")
	}
	a.Set(69)
	if a.Equal(b) {
		t.Fatal("different sets reported equal")
	}
	b.Set(69)
	if !a.Equal(b) {
		t.Fatal("same sets reported unequal")
	}
	if a.Equal(New(71)) {
		t.Fatal("different lengths reported equal")
	}
	if a.Equal(nil) {
		t.Fatal("nil reported equal")
	}
}

func TestReset(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 7 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 129, 1000} {
		s := New(n)
		for i := 0; i < n; i += 3 {
			s.Set(i)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var got Set
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(s) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},                                // short
		{10, 0, 0, 0, 0, 0, 0, 0},                // header says 10 bits, no payload
		{255, 255, 255, 255, 255, 255, 255, 255}, // implausible size
	}
	for i, data := range cases {
		var s Set
		if err := s.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	// Nonzero tail bits beyond declared length must be rejected.
	s := New(1)
	s.Set(0)
	data, _ := s.MarshalBinary()
	data[8] |= 0x02 // set bit 1, beyond length 1
	var got Set
	if err := got.UnmarshalBinary(data); err == nil {
		t.Error("tail garbage accepted")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	s := New(4)
	s.Set(1)
	if got := s.String(); got != "0100" {
		t.Fatalf("String = %q, want 0100", got)
	}
	big := New(200)
	big.Set(10)
	if got := big.String(); got != "bitset{n=200, ones=1}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: for any list of in-range indices, every set index tests true
// and Count equals the number of distinct indices.
func TestQuickSetCount(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 4096
		s := New(n)
		distinct := map[int]bool{}
		for _, r := range raw {
			i := int(r) % n
			s.Set(i)
			distinct[i] = true
		}
		if s.Count() != len(distinct) {
			return false
		}
		for i := range distinct {
			if !s.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal is the identity.
func TestQuickMarshalIdentity(t *testing.T) {
	f := func(raw []uint16, size uint16) bool {
		n := int(size)%2000 + 1
		s := New(n)
		for _, r := range raw {
			s.Set(int(r) % n)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		var got Set
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and intersect distributes as expected on
// membership.
func TestQuickUnionSemantics(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1024
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x) % n)
		}
		for _, y := range ys {
			b.Set(int(y) % n)
		}
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			return false
		}
		for i := 0; i < n; i++ {
			if ab.Test(i) != (a.Test(i) || b.Test(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	s := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<20 - 1))
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Count()
	}
}
