package peer

import (
	"bytes"
	"io"
	"testing"

	"icd/internal/protocol"
)

// TestReceivePathZeroAlloc proves the per-frame receive hot path —
// FrameReader read, symbol/recoded parse into pool buffers, release —
// is allocation-free in the steady state. This is exactly the path
// fetchFromPeer and the Fetch decode loop run per frame once a transfer
// is warmed up (a redundant symbol's buffers come straight back to the
// pools; a useful one's travel onward instead of being reallocated).
func TestReceivePathZeroAlloc(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5C}, 1400)
	var buf bytes.Buffer
	for i := 0; i < 4; i++ {
		if err := protocol.WriteSymbol(&buf, uint64(i), payload); err != nil {
			t.Fatal(err)
		}
		if err := protocol.WriteRecoded(&buf, []uint64{uint64(i), uint64(i + 1)}, payload); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	r := bytes.NewReader(stream)
	fr := protocol.NewFrameReader(r)
	pools := &fetchPools{}

	run := func() {
		r.Reset(stream)
		for {
			f, err := fr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			var in incoming
			switch f.Type {
			case protocol.TypeSymbol:
				in, err = symbolFromFrame(f, pools, nil)
			case protocol.TypeRecoded:
				in, err = recodedFromFrame(f, pools, nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			pools.release(in) // the redundant-symbol disposition
		}
	}
	run() // warm the frame buffer and the pools
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Errorf("receive path allocates %.2f per loop, want 0", avg)
	}
}

// TestFetchPoolsOwnership checks the pools' borrow/release bookkeeping
// survives mixed regular/recoded traffic (nil-safety included).
func TestFetchPoolsOwnership(t *testing.T) {
	p := &fetchPools{}
	p.putBuf(nil)
	p.putIDs(nil)
	if b := p.getBuf(); b != nil {
		t.Fatalf("nil put must not enqueue: got %v", b)
	}
	b := append(p.getBuf()[:0], 1, 2, 3)
	p.putBuf(b)
	if got := p.getBuf(); cap(got) != cap(b) {
		t.Fatal("buffer not recycled")
	}
	ids := append(p.getIDs()[:0], 9, 9, 9)
	p.putIDs(ids)
	if got := p.getIDs(); cap(got) != cap(ids) {
		t.Fatal("id list not recycled")
	}
}
