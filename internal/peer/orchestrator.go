package peer

// orchestrator.go is the control plane of a download: the Orchestrator
// owns the shared working set (a recode.Decoder), the sharded fountain
// decoder, and the set of live sessions, and it is the only component
// that mutates any of them. Sessions (session.go) are added and dropped
// while the transfer runs — the paper's §2.1 adaptivity: peers join
// late, die mid-batch, get evicted for contributing nothing, and get
// re-ranked by measured utility when the peer cap is hit.
//
// Buffer ownership across the session/orchestrator boundary: a session
// borrows payload (and recoded id-list) buffers from the orchestrator's
// fetchPools, fills them from its frame reader, and transfers ownership
// by delivering the incoming on symbolCh. From then on the decode loop
// owns the buffers: useful regular payloads are handed to the working
// set (rdec.AddKnown keeps them, and they finally surface in
// FetchResult.Held), everything else is returned to the pools. A session
// that fails to deliver (engine already finished) releases its own
// borrow. The fountain decoder copies on AddSymbols, so the working set
// retains ownership of every payload it stores.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"icd/internal/fountain"
	"icd/internal/keyset"
	"icd/internal/obs"
	"icd/internal/peermux"
	"icd/internal/protocol"
	"icd/internal/recode"
)

// Orchestrator runs one adaptive download: it owns the shared decoders
// and manages sessions dynamically. Build one with NewOrchestrator, add
// peers (up front via Run's addrs or live via AddPeer), and collect the
// result from Run. All exported methods are safe for concurrent use.
type Orchestrator struct {
	contentID uint64
	opts      FetchOptions

	pools    *fetchPools
	symbolCh chan incoming
	done     chan struct{} // closed on completion/cancel: sessions unwind
	doneOnce sync.Once

	infoReady chan struct{} // closed when the first handshake fixes ContentInfo

	// gossip is the node-wide peer directory (nil when FetchOptions.
	// DisableGossip): sessions and a co-located live Server feed
	// advertisements into it, and its subscription drives the
	// considerDiscovered admission path below.
	gossip *Gossip

	// penalties is the misbehavior penalty box (never nil: a private box
	// is created when FetchOptions.Penalties is not shared); banned
	// addresses are refused by every admission path below.
	penalties *PenaltyBox
	// breaker is the per-address dial circuit breaker (nil when the
	// breaker is disabled; all Breaker methods are nil-safe).
	breaker *Breaker

	// obs is the node-wide observability registry (nil when the caller
	// did not wire one; Trace on nil drops) and met the prebuilt metric
	// handles hot paths add into — always functional, registered or not.
	obs *obs.Registry
	met fetchMetrics

	mu            sync.Mutex
	rdec          *recode.Decoder
	fdec          *fountain.ShardedDecoder
	info          ContentInfo
	maxPeers      int                 // live session cap (0 = unlimited); opts.MaxPeers is the start value, SetMaxPeers rebudgets
	sessions      map[string]*session // live sessions by address
	stats         []*PeerStats        // every session ever started, result order
	active        int                 // session goroutines still running (plus holds)
	feedersClosed bool                // symbolCh closed: no new sessions
	version       int64               // working-set version: grows with KnownCount
	running       bool                // Run in progress (one Run per Orchestrator)
	attempted     map[string]bool     // addresses ever given a session (no gossip re-dials)
	candidates    []gossipCandidate   // discovered addresses awaiting a free slot
	candidateSeq  int                 // discovery-order stamp for candidate tie-breaks
	dialFails     map[string]int      // requeue budget spent per never-reached discovery

	// progress counts distinct encoded symbols decoded so far; sessions
	// use it to notice that their batches stopped helping (recoded
	// streams never run dry, so emptiness cannot be the signal).
	progress atomic.Int64

	// chanWin is the per-session receive-window target for fabric
	// subchannels, in symbol frames (0 = the wire's default). New
	// channels open at it; SetChannelWindow moves it and resizes every
	// live channel — the credit-denominated scheduler's bandwidth knob.
	chanWin atomic.Int64
	// pipeCap, when positive, caps every session's adaptive pipeline
	// ramp (sessions apply it at each batch boundary via
	// PipelineController.SetMax).
	pipeCap atomic.Int64
	// channels tracks each session's live fabric subchannel (guarded by
	// mu) so SetChannelWindow can reach them mid-transfer.
	channels map[*session]*peermux.Channel

	scratch struct { // decode-loop batch scratch, reused every iteration
		ins  []incoming
		syms []fountain.Symbol
		ids  []uint64
	}
}

// NewOrchestrator prepares the engine for one piece of content. Sessions
// start when AddPeer is called; decoding happens inside Run.
func NewOrchestrator(contentID uint64, opts FetchOptions) *Orchestrator {
	opts = opts.withDefaults()
	o := &Orchestrator{
		contentID: contentID,
		opts:      opts,
		pools:     &fetchPools{},
		symbolCh:  make(chan incoming, 4*opts.Batch),
		done:      make(chan struct{}),
		infoReady: make(chan struct{}),
		rdec:      recode.NewDecoder(true),
		maxPeers:  opts.MaxPeers,
		sessions:  make(map[string]*session),
		channels:  make(map[*session]*peermux.Channel),
		attempted: make(map[string]bool),
		dialFails: make(map[string]int),
	}
	o.chanWin.Store(int64(opts.ChannelWindow))
	o.obs = opts.Obs
	o.met = newFetchMetrics(opts.Obs)
	o.penalties = opts.Penalties
	if o.penalties == nil {
		o.penalties = NewPenaltyBox()
	}
	o.breaker = opts.Breaker
	if o.breaker == nil && opts.BreakerThreshold > 0 {
		o.breaker = NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	if !opts.DisableGossip {
		o.gossip = opts.Gossip
		if o.gossip == nil {
			o.gossip = NewGossip(opts.AdvertiseAddr)
		}
		// Every advertisement the node learns — through any session or a
		// co-located live Server — flows into the admission path.
		o.gossip.subscribe(func(ad protocol.PeerAd) { o.considerDiscovered(ad) })
	}
	for id, data := range opts.Initial {
		o.rdec.AddKnown(id, append([]byte(nil), data...))
	}
	o.progress.Store(int64(o.rdec.KnownCount()))
	o.version = int64(o.rdec.KnownCount())
	return o
}

// gossipCandidate is one discovered address the engine could not admit
// immediately (MaxPeers live already); the pool is ranked at promotion
// time — fresh discoveries first, then gossip mention count, then
// discovery order. A non-zero fails marks a requeued address that
// already burned dial attempts: it ranks below every fresh discovery.
type gossipCandidate struct {
	ad    protocol.PeerAd
	seq   int
	fails int // dial attempts already spent on this address
}

// finish ends the transfer: sessions unblock and wind down.
func (o *Orchestrator) finish() { o.doneOnce.Do(func() { close(o.done) }) }

// hold keeps the feeder barrier open while no session is running yet
// (Run's initial AddPeer burst would otherwise race the first session's
// exit closing symbolCh).
func (o *Orchestrator) hold() {
	o.mu.Lock()
	o.active++
	o.mu.Unlock()
}

// unhold releases a hold, closing the feeder barrier if it was the last.
func (o *Orchestrator) unhold() { o.sessionExited(nil) }

// sessionExited retires a session goroutine (or a hold, when s is nil).
// A freed slot promotes the best-ranked discovery candidate, if any;
// otherwise the last one out closes symbolCh, which lets the decode
// loop conclude an incomplete transfer ("peers exhausted").
func (o *Orchestrator) sessionExited(s *session) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if s != nil && o.sessions[s.addr] == s {
		delete(o.sessions, s.addr)
	}
	o.met.live.Set(int64(len(o.sessions)))
	o.active--
	if s != nil {
		o.maybeRequeueLocked(s)
	}
	if !o.feedersClosed && !o.finished() {
		o.promoteCandidateLocked()
	}
	if o.active == 0 && !o.feedersClosed {
		o.feedersClosed = true
		close(o.symbolCh)
	}
}

// finished reports whether the transfer already ended (done closed).
func (o *Orchestrator) finished() bool {
	select {
	case <-o.done:
		return true
	default:
		return false
	}
}

// AddPeer connects a new sender mid-transfer (or before Run). When the
// session cap (FetchOptions.MaxPeers) is reached, the lowest-utility
// live session is dropped to make room. AddPeer fails once the engine
// has finished or every session has already exhausted.
func (o *Orchestrator) AddPeer(addr string) error {
	if o.finished() {
		return errors.New("peer: transfer already finished")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.feedersClosed {
		return errors.New("peer: engine wound down (all sessions exhausted)")
	}
	if _, dup := o.sessions[addr]; dup {
		return fmt.Errorf("peer: already connected to %s", addr)
	}
	if o.maxPeers > 0 && len(o.sessions) >= o.maxPeers {
		o.evictLowestLocked()
	}
	o.startSessionLocked(addr, false)
	return nil
}

// startSessionLocked launches the session goroutine for addr and
// records the address as attempted. Callers hold o.mu and have already
// checked capacity and duplication.
func (o *Orchestrator) startSessionLocked(addr string, discovered bool) {
	s := newSession(o, addr)
	s.stats.Discovered = discovered
	o.attempted[addr] = true
	o.sessions[addr] = s
	o.stats = append(o.stats, s.stats)
	o.active++
	o.met.started.Inc()
	o.met.live.Set(int64(len(o.sessions)))
	go s.run()
}

// considerDiscovered is the gossip admission path: a freshly learned
// advertisement is admitted as a live session while slots are free
// (MaxPeers unreached or unlimited), deferred to the ranked candidate
// pool when the engine is full, and dropped when it is unusable (wrong
// content, our own address, already connected or attempted). It reports
// whether a session was started.
func (o *Orchestrator) considerDiscovered(ad protocol.PeerAd) bool {
	if o.gossip == nil || ad.ContentID != o.contentID || ad.Addr == "" ||
		ad.Addr == o.opts.AdvertiseAddr || o.finished() {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.feedersClosed || o.attempted[ad.Addr] || o.penalties.Banned(ad.Addr) {
		return false
	}
	if _, live := o.sessions[ad.Addr]; live {
		return false
	}
	if o.maxPeers > 0 && len(o.sessions) >= o.maxPeers {
		for _, c := range o.candidates {
			if c.ad.Addr == ad.Addr {
				return false
			}
		}
		if len(o.candidates) < o.opts.MaxCandidates {
			o.candidates = append(o.candidates, gossipCandidate{ad: ad, seq: o.candidateSeq})
			o.candidateSeq++
			o.met.gossipDefer.Inc()
			o.trace(obs.EvGossipDefer, ad.Addr, "")
		}
		return false
	}
	o.met.gossipAdmit.Inc()
	o.trace(obs.EvGossipAdmit, ad.Addr, "")
	o.startSessionLocked(ad.Addr, true)
	return true
}

// promoteCandidateLocked starts a session for the best-ranked candidate
// when a slot is free: fresh discoveries (no dial failures) rank above
// every requeued address, then highest gossip mention count, then
// earliest discovery as tie-break. Banned addresses are skipped.
// Callers hold o.mu.
func (o *Orchestrator) promoteCandidateLocked() {
	if len(o.candidates) == 0 ||
		(o.maxPeers > 0 && len(o.sessions) >= o.maxPeers) {
		return
	}
	best := -1
	bestHits := -1
	bestFresh := false
	for i, c := range o.candidates {
		// A requeued candidate (fails > 0) is by definition attempted —
		// the attempted check only bars *fresh* duplicates of addresses
		// that already had a session at full priority.
		if _, live := o.sessions[c.ad.Addr]; live ||
			(c.fails == 0 && o.attempted[c.ad.Addr]) ||
			o.penalties.Banned(c.ad.Addr) {
			continue
		}
		fresh := c.fails == 0
		hits := o.gossip.hitCount(c.ad)
		better := false
		switch {
		case best < 0:
			better = true
		case fresh != bestFresh:
			better = fresh
		case hits != bestHits:
			better = hits > bestHits
		default:
			better = c.seq < o.candidates[best].seq
		}
		if better {
			best, bestHits, bestFresh = i, hits, fresh
		}
	}
	if best < 0 {
		o.candidates = o.candidates[:0] // nothing usable left
		return
	}
	ad := o.candidates[best].ad
	o.candidates = append(o.candidates[:best], o.candidates[best+1:]...)
	o.met.gossipPromote.Inc()
	o.trace(obs.EvGossipPromote, ad.Addr, "")
	o.startSessionLocked(ad.Addr, true)
}

// maxCandidateRedials bounds how many times a never-reached discovery is
// requeued into the candidate pool before the address is written off.
const maxCandidateRedials = 3

// maybeRequeueLocked returns a discovered session that never managed to
// connect to the candidate pool at decayed rank: the address was
// advertised, so it may simply not be listening *yet* (gossip races node
// start-up under churn) — but it re-enters ranked below every fresh
// discovery and with a bounded budget, never again at full priority.
// Terminal errors, drops, bans and established-then-failed sessions are
// not requeued. Callers hold o.mu.
func (o *Orchestrator) maybeRequeueLocked(s *session) {
	if o.feedersClosed || o.finished() {
		return
	}
	if !s.stats.Discovered || s.connected || s.stats.Evicted || s.stats.Err == nil {
		return
	}
	if terminalSessionError(s.stats.Err) || o.penalties.Banned(s.addr) {
		return
	}
	n := o.dialFails[s.addr] + 1
	if n > maxCandidateRedials || len(o.candidates) >= o.opts.MaxCandidates {
		return
	}
	o.dialFails[s.addr] = n
	o.candidates = append(o.candidates, gossipCandidate{
		ad:    protocol.PeerAd{ContentID: o.contentID, Addr: s.addr},
		seq:   o.candidateSeq,
		fails: n,
	})
	o.candidateSeq++
}

// Penalties returns the orchestrator's misbehavior penalty box — the
// shared one from FetchOptions, or the private box created when none was
// given. A co-located Server passes it to SetPenalties so client- and
// server-plane misbehavior feed one verdict.
func (o *Orchestrator) Penalties() *PenaltyBox { return o.penalties }

// observeGossip folds a received PEERS advertisement list into the
// node's directory (new entries trigger considerDiscovered through the
// subscription). Sessions call it for every PEERS frame.
func (o *Orchestrator) observeGossip(ads []protocol.PeerAd) {
	if o.gossip == nil {
		return
	}
	o.gossip.LearnAll(ads)
}

// gossipAdverts assembles the advertisement list a session piggybacks
// on its handshake and summary refreshes: this node's own address, the
// addresses of its other live sessions, and the best of the directory —
// excluding the peer being talked to, deduplicated and capped by
// protocol.EncodePeers.
func (o *Orchestrator) gossipAdverts(excludeAddr string) []protocol.PeerAd {
	if o.gossip == nil {
		return nil
	}
	var ads []protocol.PeerAd
	if self := o.opts.AdvertiseAddr; self != "" {
		ads = append(ads, protocol.PeerAd{ContentID: o.contentID, Addr: self})
	}
	o.mu.Lock()
	for addr := range o.sessions {
		if addr != excludeAddr {
			ads = append(ads, protocol.PeerAd{ContentID: o.contentID, Addr: addr})
		}
	}
	o.mu.Unlock()
	for _, ad := range o.gossip.Snapshot(o.contentID, protocol.MaxPeerAds) {
		if ad.Addr != excludeAddr {
			ads = append(ads, ad)
		}
	}
	return ads
}

// SetMaxPeers rebudgets the live session cap mid-transfer (0 =
// unlimited) — the hook a multi-content scheduler uses to shift
// connection slots between concurrent downloads by marginal utility.
// Shrinking below the live session count evicts lowest-utility sessions
// immediately; growing promotes waiting gossip candidates into the new
// slots. Shrink before you grow when moving slots between orchestrators
// sharing one global budget, so the sum never overshoots.
func (o *Orchestrator) SetMaxPeers(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.maxPeers = n
	if n > 0 {
		for len(o.sessions) > n {
			before := len(o.sessions)
			o.evictLowestLocked()
			if len(o.sessions) == before {
				break // nothing evictable
			}
		}
	}
	if !o.feedersClosed && !o.finished() {
		for {
			before := len(o.sessions)
			o.promoteCandidateLocked()
			if len(o.sessions) == before {
				break // no free slot or no usable candidate
			}
		}
	}
}

// MaxPeers returns the current live-session cap (0 = unlimited).
func (o *Orchestrator) MaxPeers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.maxPeers
}

// SetChannelWindow re-sizes this fetch's per-session credit windows to
// n symbol frames — the second half of a node scheduler's currency:
// where SetMaxPeers moves whole sessions between fetches,
// SetChannelWindow moves wire bandwidth between the subchannels already
// sharing a wire. New fabric channels open at n; every live channel is
// resized immediately via its regrant path (Channel.SetWindow clamps
// to the wire's limits). n <= 0 restores the wire default for new
// channels and leaves live ones alone.
func (o *Orchestrator) SetChannelWindow(n int) {
	o.chanWin.Store(int64(n))
	if n <= 0 {
		return
	}
	o.mu.Lock()
	chs := make([]*peermux.Channel, 0, len(o.channels))
	for _, ch := range o.channels {
		chs = append(chs, ch)
	}
	o.mu.Unlock()
	for _, ch := range chs {
		ch.SetWindow(n)
	}
}

// ChannelWindow returns the current per-session window target (0 = the
// wire default).
func (o *Orchestrator) ChannelWindow() int { return int(o.chanWin.Load()) }

// SetPipelineCap bounds every session's adaptive request ramp at n
// in-flight batches (0 removes the bound; the FetchOptions cap still
// applies). Sessions pick the new cap up at their next batch boundary.
func (o *Orchestrator) SetPipelineCap(n int) {
	if n < 0 {
		n = 0
	}
	o.pipeCap.Store(int64(n))
}

// trackChannel registers a session's live fabric subchannel for
// SetChannelWindow resizes; untrackChannel removes it when the
// connection ends.
func (o *Orchestrator) trackChannel(s *session, ch *peermux.Channel) {
	o.mu.Lock()
	o.channels[s] = ch
	o.mu.Unlock()
}

func (o *Orchestrator) untrackChannel(s *session) {
	o.mu.Lock()
	delete(o.channels, s)
	o.mu.Unlock()
}

// Progress returns the count of distinct encoded symbols decoded into
// the working set so far — the cheap monotone signal a scheduler
// differentiates into a per-content download rate.
func (o *Orchestrator) Progress() int { return int(o.progress.Load()) }

// Info returns the content metadata and whether a handshake has fixed
// it yet — the non-blocking sibling of WaitInfo.
func (o *Orchestrator) Info() (ContentInfo, bool) {
	select {
	case <-o.infoReady:
		o.mu.Lock()
		defer o.mu.Unlock()
		return o.info, true
	default:
		return ContentInfo{}, false
	}
}

// DropPeer disconnects addr's session (it winds down cleanly and is
// marked Evicted). It reports whether a live session was found.
func (o *Orchestrator) DropPeer(addr string) bool {
	o.mu.Lock()
	s := o.sessions[addr]
	o.mu.Unlock()
	if s == nil {
		return false
	}
	s.dropNow()
	return true
}

// evictLowestLocked drops the live session with the lowest utility
// score (useful symbols per second). Callers hold o.mu.
func (o *Orchestrator) evictLowestLocked() {
	var victim *session
	worst := 0.0
	for _, s := range o.sessions {
		u := s.utilityLocked()
		if victim == nil || u < worst {
			victim, worst = s, u
		}
	}
	if victim != nil {
		victim.dropLocked()
		delete(o.sessions, victim.addr) // a replacement may reuse the address slot
		o.met.evicted.Inc()
		o.met.live.Set(int64(len(o.sessions)))
		o.trace(obs.EvEvict, victim.addr, "lowest utility")
	}
}

// Sessions returns a snapshot of the live sessions' stats, ranked by
// descending utility — the orchestrator's current peer ranking.
func (o *Orchestrator) Sessions() []PeerStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]PeerStats, 0, len(o.sessions))
	for _, s := range o.sessions {
		st := *s.stats
		st.Utility = s.utilityLocked()
		out = append(out, st)
	}
	for i := 1; i < len(out); i++ { // insertion sort: the set is small
		for j := i; j > 0 && out[j].Utility > out[j-1].Utility; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WaitInfo blocks until the first handshake fixes the content metadata
// (a collaborative node needs it to start serving its live working set).
func (o *Orchestrator) WaitInfo(ctx context.Context) (ContentInfo, error) {
	ready := func() (ContentInfo, bool) {
		select {
		case <-o.infoReady:
			o.mu.Lock()
			defer o.mu.Unlock()
			return o.info, true
		default:
			return ContentInfo{}, false
		}
	}
	select {
	case <-o.infoReady:
	case <-o.done:
		// A fast transfer may close done and infoReady near-simultaneously
		// and select picks among ready cases at random — prefer the info.
		if info, ok := ready(); ok {
			return info, nil
		}
		return ContentInfo{}, errors.New("peer: transfer finished before any handshake")
	case <-ctx.Done():
		if info, ok := ready(); ok {
			return info, nil
		}
		return ContentInfo{}, ctx.Err()
	}
	info, _ := ready()
	return info, nil
}

// SnapshotWorkingSet implements WorkingSetSource: a live Server can
// serve this orchestrator's growing working set while it downloads —
// the collaborative, both-directions transfers of Figure 1(c). The
// payload slices are read-only shares; the version grows with the set.
func (o *Orchestrator) SnapshotWorkingSet() (*keyset.Set, map[uint64][]byte, int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := keyset.New(o.rdec.KnownCount())
	payloads := make(map[uint64][]byte, o.rdec.KnownCount())
	for _, id := range o.rdec.KnownIDs() {
		if data := o.rdec.Payload(id); data != nil {
			ids.Add(id)
			payloads[id] = data
		}
	}
	return ids, payloads, o.version
}

// WorkingSetInfo implements WorkingSetSource's cheap count+version
// check (no snapshot copied).
func (o *Orchestrator) WorkingSetInfo() (int, int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rdec.KnownCount(), o.version
}

// heldSnapshot returns the ids currently held (for summary building)
// plus the working-set version they represent.
func (o *Orchestrator) heldSnapshot() (*keyset.Set, int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return keyset.FromKeys(o.rdec.KnownIDs()), o.version
}

// ensureDecoder validates hello metadata against (or initializes) the
// shared content info and fountain decoder — the first handshake wins,
// later ones must agree.
func (o *Orchestrator) ensureDecoder(ci ContentInfo) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.fdec == nil {
		if err := ci.validate(); err != nil {
			return err
		}
		code, err := fountain.NewCode(ci.NumBlocks, nil, ci.CodeSeed)
		if err != nil {
			return err
		}
		fdec, err := fountain.NewShardedDecoder(code, ci.BlockSize, o.opts.DecodeShards)
		if err != nil {
			return err
		}
		o.fdec = fdec
		o.info = ci
		close(o.infoReady)
		return nil
	}
	if o.info != ci {
		return fmt.Errorf("peer: inconsistent content metadata: %+v vs %+v", o.info, ci)
	}
	return nil
}

func (o *Orchestrator) decoder() *fountain.ShardedDecoder {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fdec
}

// deliver hands a session's incoming to the decode loop, transferring
// buffer ownership. It reports false when the engine already finished
// (the session should release the buffers and wind down).
func (o *Orchestrator) deliver(in incoming) bool {
	select {
	case o.symbolCh <- in:
		return true
	case <-o.done:
		return false
	}
}

// Run connects the given peers and decodes until the content completes,
// every session exhausts, or ctx is cancelled. More peers may join
// mid-run via AddPeer. Run may be called once per Orchestrator.
func (o *Orchestrator) Run(ctx context.Context, addrs ...string) (*FetchResult, error) {
	o.mu.Lock()
	if o.running {
		o.mu.Unlock()
		return nil, errors.New("peer: Run called twice")
	}
	o.running = true
	o.mu.Unlock()

	// The hold keeps the feeder barrier open until every initial AddPeer
	// ran (a fast-failing first session must not wind the engine down
	// while later peers are still being added).
	o.hold()
	for _, a := range addrs {
		if err := o.AddPeer(a); err != nil {
			// A peer that never got a session (duplicate address, cap
			// conflict) still appears in the result with its error, so
			// callers see the reduced parallelism instead of a silently
			// shorter peer list.
			o.mu.Lock()
			o.stats = append(o.stats, &PeerStats{Addr: a, Err: err})
			o.mu.Unlock()
		}
	}
	// Addresses already sitting in a shared gossip directory (a
	// collaborative node whose Server heard clients before Run) go
	// through the same admission path as live discoveries.
	if o.gossip != nil {
		for _, ad := range o.gossip.Snapshot(o.contentID, 0) {
			o.considerDiscovered(ad)
		}
	}
	o.mu.Lock()
	started := len(o.stats)
	o.mu.Unlock()
	o.unhold()
	if started == 0 {
		// Every exit of Run must close done: a collaborative caller's
		// concurrent WaitInfo would otherwise block forever.
		o.finish()
		return nil, errors.New("peer: no peers given")
	}

	// Cancellation propagation: ctx ends the transfer like completion
	// does, and sessions unblock via the shared done channel.
	stopWatch := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				o.finish()
			case <-stopWatch:
			}
		}()
	}

	decodeErr := o.decodeLoop()
	o.finish()
	for in := range o.symbolCh {
		o.pools.release(in) // drain remaining buffered symbols so sessions unblock
	}
	close(stopWatch)

	// All sessions have exited (symbolCh closed by the last one); settle
	// the decoder and stop its workers.
	fdec := o.decoder()
	if fdec != nil {
		fdec.Drain()
		fdec.Close() // accessors stay valid after Close
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	res, err := o.collectResult(fdec)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if !res.Completed {
		var firstErr error
		for _, p := range res.Peers {
			if p.Err != nil {
				firstErr = p.Err
				break
			}
		}
		if firstErr != nil {
			return res, fmt.Errorf("peer: download incomplete: %w", firstErr)
		}
		return res, errors.New("peer: download incomplete: peers exhausted")
	}
	return res, nil
}

// decodeLoop is the single consumer of symbolCh: it folds incoming
// symbols into the working set and feeds newly recovered encoded
// symbols to the sharded fountain decoder in batches (one router-lock
// pass per batch instead of per symbol).
func (o *Orchestrator) decodeLoop() error {
	seeded := false
	for {
		if len(o.symbolCh) == 0 {
			// The feeders are momentarily behind: settle the shard
			// workers and make an exact completion check while we would
			// otherwise just block on the channel.
			if dec := o.decoder(); dec != nil {
				dec.Drain()
				if dec.Done() {
					return nil
				}
			}
		}
		in, ok := <-o.symbolCh
		if !ok {
			return nil
		}
		// Opportunistically drain whatever else is already queued, so
		// the whole batch crosses the decoder's router lock once.
		batch := append(o.scratch.ins[:0], in)
	drain:
		for len(batch) < o.opts.Batch {
			select {
			case more, open := <-o.symbolCh:
				if !open {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		done, err := o.processBatch(batch, &seeded)
		o.scratch.ins = batch
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// processBatch folds a batch into the working set under one lock pass,
// then feeds every newly recovered encoded symbol to the fountain
// decoder with one AddSymbols call. It returns done=true when decoding
// completed.
func (o *Orchestrator) processBatch(batch []incoming, seeded *bool) (bool, error) {
	o.mu.Lock()
	dec := o.fdec
	if dec == nil { // cannot happen: delivery follows the handshake
		o.mu.Unlock()
		for _, in := range batch {
			o.pools.release(in)
		}
		return false, nil
	}
	newIDs := o.scratch.ids[:0]
	if !*seeded {
		// Feed the resumed working set into the fountain decoder once.
		*seeded = true
		newIDs = append(newIDs, o.rdec.KnownIDs()...)
	}
	var decodeErr error
	var batchRecv, batchUseful int64
	for i, in := range batch {
		before := o.rdec.KnownCount()
		if !in.recoded {
			if o.rdec.Knows(in.id) {
				o.pools.putBuf(in.data) // duplicate: the buffer comes straight back
			} else {
				// AddKnown takes ownership of the pool buffer; it lives
				// on as the stored payload (and, at the end, in Held).
				newIDs = append(newIDs, o.rdec.AddKnown(in.id, in.data)...)
				newIDs = append(newIDs, in.id)
			}
		} else {
			ids, err := o.rdec.Add(recode.Symbol{IDs: in.ids, Data: in.data})
			o.pools.release(in) // rdec.Add copies; both buffers come back
			if err != nil {
				decodeErr = err
				for _, rest := range batch[i+1:] {
					o.pools.release(rest) // unprocessed tail: keep the borrow/release invariant
				}
				break
			}
			newIDs = append(newIDs, ids...)
		}
		batchRecv++
		batchUseful += int64(o.rdec.KnownCount() - before)
		if in.stats != nil {
			in.stats.SymbolsReceived++
			in.stats.UsefulSymbols += o.rdec.KnownCount() - before
		}
	}
	o.progress.Store(int64(o.rdec.KnownCount()))
	o.version = int64(o.rdec.KnownCount())
	syms := o.scratch.syms[:0]
	for _, id := range newIDs {
		if data := o.rdec.Payload(id); data != nil {
			syms = append(syms, fountain.Symbol{ID: id, Data: data})
		}
	}
	known := o.rdec.KnownCount()
	o.mu.Unlock()
	o.scratch.ids = newIDs[:0]
	// One add per counter per batch: instrumentation stays off the
	// per-symbol path.
	o.met.received.Add(batchRecv)
	o.met.useful.Add(batchUseful)

	if decodeErr != nil {
		o.finish()
		return false, decodeErr
	}
	// AddSymbols copies payloads into the decoder's freelist buffers, so
	// the working set keeps ownership of everything it stores. Done lags
	// in-flight shard work, and completion is impossible before the
	// working set holds n distinct encoded symbols — so the bulk of the
	// transfer pipelines whole batches through the shards in one
	// router-lock pass, and only the tail (working set at ≥ n) feeds
	// symbol-by-symbol with the workers settled in between, so
	// completion is detected exactly (no overhead inflation past the
	// single-core decoder).
	defer func() { o.scratch.syms = syms[:0] }()
	if known < len(dec.Blocks()) {
		if err := dec.AddSymbols(syms); err != nil {
			o.finish()
			return false, err
		}
		if dec.Done() {
			o.finish()
			return true, nil
		}
		return false, nil
	}
	for _, sym := range syms {
		if err := dec.AddSymbol(sym); err != nil {
			o.finish()
			return false, err
		}
		dec.Drain()
		if dec.Done() {
			o.finish()
			return true, nil
		}
	}
	return false, nil
}

// collectResult assembles the final FetchResult (all sessions have
// exited; no concurrent state changes).
func (o *Orchestrator) collectResult(fdec *fountain.ShardedDecoder) (*FetchResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	res := &FetchResult{Info: o.info, Held: make(map[uint64][]byte)}
	for _, id := range o.rdec.KnownIDs() {
		if data := o.rdec.Payload(id); data != nil {
			res.Held[id] = data
		}
	}
	res.DistinctSymbols = len(res.Held)
	res.Peers = make([]PeerStats, len(o.stats))
	for i, st := range o.stats {
		res.Peers[i] = *st
		if !res.Peers[i].Banned {
			// A ban can also land after the session exited (server-plane
			// penalties through a shared box); report the final verdict.
			res.Peers[i].Banned = o.penalties.Banned(st.Addr)
		}
	}
	if fdec != nil {
		res.Completed = fdec.Done()
		res.DecodeOverhead = fdec.Overhead()
		if res.Completed {
			data, err := fountain.JoinBlocks(fdec.Blocks(), o.info.OrigLen)
			if err != nil {
				return nil, err
			}
			res.Data = data
		}
	}
	return res, nil
}
