package peer

// orchestrator.go is the control plane of a download: the Orchestrator
// owns the shared working set (a recode.Decoder), the sharded fountain
// decoder, and the set of live sessions, and it is the only component
// that mutates any of them. Sessions (session.go) are added and dropped
// while the transfer runs — the paper's §2.1 adaptivity: peers join
// late, die mid-batch, get evicted for contributing nothing, and get
// re-ranked by measured utility when the peer cap is hit.
//
// Buffer ownership across the session/orchestrator boundary: a session
// borrows payload (and recoded id-list) buffers from the orchestrator's
// fetchPools, fills them from its frame reader, and transfers ownership
// by delivering the incoming on symbolCh. From then on the decode loop
// owns the buffers: useful regular payloads are handed to the working
// set (rdec.AddKnown keeps them, and they finally surface in
// FetchResult.Held), everything else is returned to the pools. A session
// that fails to deliver (engine already finished) releases its own
// borrow. The fountain decoder copies on AddSymbols, so the working set
// retains ownership of every payload it stores.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"icd/internal/fountain"
	"icd/internal/keyset"
	"icd/internal/recode"
)

// Orchestrator runs one adaptive download: it owns the shared decoders
// and manages sessions dynamically. Build one with NewOrchestrator, add
// peers (up front via Run's addrs or live via AddPeer), and collect the
// result from Run. All exported methods are safe for concurrent use.
type Orchestrator struct {
	contentID uint64
	opts      FetchOptions

	pools    *fetchPools
	symbolCh chan incoming
	done     chan struct{} // closed on completion/cancel: sessions unwind
	doneOnce sync.Once

	infoReady chan struct{} // closed when the first handshake fixes ContentInfo

	mu            sync.Mutex
	rdec          *recode.Decoder
	fdec          *fountain.ShardedDecoder
	info          ContentInfo
	sessions      map[string]*session // live sessions by address
	stats         []*PeerStats        // every session ever started, result order
	active        int                 // session goroutines still running (plus holds)
	feedersClosed bool                // symbolCh closed: no new sessions
	version       int64               // working-set version: grows with KnownCount
	running       bool                // Run in progress (one Run per Orchestrator)

	// progress counts distinct encoded symbols decoded so far; sessions
	// use it to notice that their batches stopped helping (recoded
	// streams never run dry, so emptiness cannot be the signal).
	progress atomic.Int64

	scratch struct { // decode-loop batch scratch, reused every iteration
		ins  []incoming
		syms []fountain.Symbol
		ids  []uint64
	}
}

// NewOrchestrator prepares the engine for one piece of content. Sessions
// start when AddPeer is called; decoding happens inside Run.
func NewOrchestrator(contentID uint64, opts FetchOptions) *Orchestrator {
	opts = opts.withDefaults()
	o := &Orchestrator{
		contentID: contentID,
		opts:      opts,
		pools:     &fetchPools{},
		symbolCh:  make(chan incoming, 4*opts.Batch),
		done:      make(chan struct{}),
		infoReady: make(chan struct{}),
		rdec:      recode.NewDecoder(true),
		sessions:  make(map[string]*session),
	}
	for id, data := range opts.Initial {
		o.rdec.AddKnown(id, append([]byte(nil), data...))
	}
	o.progress.Store(int64(o.rdec.KnownCount()))
	o.version = int64(o.rdec.KnownCount())
	return o
}

// finish ends the transfer: sessions unblock and wind down.
func (o *Orchestrator) finish() { o.doneOnce.Do(func() { close(o.done) }) }

// hold keeps the feeder barrier open while no session is running yet
// (Run's initial AddPeer burst would otherwise race the first session's
// exit closing symbolCh).
func (o *Orchestrator) hold() {
	o.mu.Lock()
	o.active++
	o.mu.Unlock()
}

// unhold releases a hold, closing the feeder barrier if it was the last.
func (o *Orchestrator) unhold() { o.sessionExited(nil) }

// sessionExited retires a session goroutine (or a hold, when s is nil).
// The last one out closes symbolCh, which lets the decode loop conclude
// an incomplete transfer ("peers exhausted").
func (o *Orchestrator) sessionExited(s *session) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if s != nil && o.sessions[s.addr] == s {
		delete(o.sessions, s.addr)
	}
	o.active--
	if o.active == 0 && !o.feedersClosed {
		o.feedersClosed = true
		close(o.symbolCh)
	}
}

// AddPeer connects a new sender mid-transfer (or before Run). When the
// session cap (FetchOptions.MaxPeers) is reached, the lowest-utility
// live session is dropped to make room. AddPeer fails once the engine
// has finished or every session has already exhausted.
func (o *Orchestrator) AddPeer(addr string) error {
	select {
	case <-o.done:
		return errors.New("peer: transfer already finished")
	default:
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.feedersClosed {
		return errors.New("peer: engine wound down (all sessions exhausted)")
	}
	if _, dup := o.sessions[addr]; dup {
		return fmt.Errorf("peer: already connected to %s", addr)
	}
	if o.opts.MaxPeers > 0 && len(o.sessions) >= o.opts.MaxPeers {
		o.evictLowestLocked()
	}
	s := newSession(o, addr)
	o.sessions[addr] = s
	o.stats = append(o.stats, s.stats)
	o.active++
	go s.run()
	return nil
}

// DropPeer disconnects addr's session (it winds down cleanly and is
// marked Evicted). It reports whether a live session was found.
func (o *Orchestrator) DropPeer(addr string) bool {
	o.mu.Lock()
	s := o.sessions[addr]
	o.mu.Unlock()
	if s == nil {
		return false
	}
	s.dropNow()
	return true
}

// evictLowestLocked drops the live session with the lowest utility
// score (useful symbols per second). Callers hold o.mu.
func (o *Orchestrator) evictLowestLocked() {
	var victim *session
	worst := 0.0
	for _, s := range o.sessions {
		u := s.utilityLocked()
		if victim == nil || u < worst {
			victim, worst = s, u
		}
	}
	if victim != nil {
		victim.dropLocked()
		delete(o.sessions, victim.addr) // a replacement may reuse the address slot
	}
}

// Sessions returns a snapshot of the live sessions' stats, ranked by
// descending utility — the orchestrator's current peer ranking.
func (o *Orchestrator) Sessions() []PeerStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]PeerStats, 0, len(o.sessions))
	for _, s := range o.sessions {
		st := *s.stats
		st.Utility = s.utilityLocked()
		out = append(out, st)
	}
	for i := 1; i < len(out); i++ { // insertion sort: the set is small
		for j := i; j > 0 && out[j].Utility > out[j-1].Utility; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WaitInfo blocks until the first handshake fixes the content metadata
// (a collaborative node needs it to start serving its live working set).
func (o *Orchestrator) WaitInfo(ctx context.Context) (ContentInfo, error) {
	ready := func() (ContentInfo, bool) {
		select {
		case <-o.infoReady:
			o.mu.Lock()
			defer o.mu.Unlock()
			return o.info, true
		default:
			return ContentInfo{}, false
		}
	}
	select {
	case <-o.infoReady:
	case <-o.done:
		// A fast transfer may close done and infoReady near-simultaneously
		// and select picks among ready cases at random — prefer the info.
		if info, ok := ready(); ok {
			return info, nil
		}
		return ContentInfo{}, errors.New("peer: transfer finished before any handshake")
	case <-ctx.Done():
		if info, ok := ready(); ok {
			return info, nil
		}
		return ContentInfo{}, ctx.Err()
	}
	info, _ := ready()
	return info, nil
}

// SnapshotWorkingSet implements WorkingSetSource: a live Server can
// serve this orchestrator's growing working set while it downloads —
// the collaborative, both-directions transfers of Figure 1(c). The
// payload slices are read-only shares; the version grows with the set.
func (o *Orchestrator) SnapshotWorkingSet() (*keyset.Set, map[uint64][]byte, int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := keyset.New(o.rdec.KnownCount())
	payloads := make(map[uint64][]byte, o.rdec.KnownCount())
	for _, id := range o.rdec.KnownIDs() {
		if data := o.rdec.Payload(id); data != nil {
			ids.Add(id)
			payloads[id] = data
		}
	}
	return ids, payloads, o.version
}

// WorkingSetInfo implements WorkingSetSource's cheap count+version
// check (no snapshot copied).
func (o *Orchestrator) WorkingSetInfo() (int, int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rdec.KnownCount(), o.version
}

// heldSnapshot returns the ids currently held (for summary building)
// plus the working-set version they represent.
func (o *Orchestrator) heldSnapshot() (*keyset.Set, int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return keyset.FromKeys(o.rdec.KnownIDs()), o.version
}

// ensureDecoder validates hello metadata against (or initializes) the
// shared content info and fountain decoder — the first handshake wins,
// later ones must agree.
func (o *Orchestrator) ensureDecoder(ci ContentInfo) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.fdec == nil {
		if err := ci.validate(); err != nil {
			return err
		}
		code, err := fountain.NewCode(ci.NumBlocks, nil, ci.CodeSeed)
		if err != nil {
			return err
		}
		fdec, err := fountain.NewShardedDecoder(code, ci.BlockSize, o.opts.DecodeShards)
		if err != nil {
			return err
		}
		o.fdec = fdec
		o.info = ci
		close(o.infoReady)
		return nil
	}
	if o.info != ci {
		return fmt.Errorf("peer: inconsistent content metadata: %+v vs %+v", o.info, ci)
	}
	return nil
}

func (o *Orchestrator) decoder() *fountain.ShardedDecoder {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fdec
}

// deliver hands a session's incoming to the decode loop, transferring
// buffer ownership. It reports false when the engine already finished
// (the session should release the buffers and wind down).
func (o *Orchestrator) deliver(in incoming) bool {
	select {
	case o.symbolCh <- in:
		return true
	case <-o.done:
		return false
	}
}

// Run connects the given peers and decodes until the content completes,
// every session exhausts, or ctx is cancelled. More peers may join
// mid-run via AddPeer. Run may be called once per Orchestrator.
func (o *Orchestrator) Run(ctx context.Context, addrs ...string) (*FetchResult, error) {
	o.mu.Lock()
	if o.running {
		o.mu.Unlock()
		return nil, errors.New("peer: Run called twice")
	}
	o.running = true
	o.mu.Unlock()

	if len(addrs) == 0 {
		o.mu.Lock()
		n := len(o.stats)
		o.mu.Unlock()
		if n == 0 {
			return nil, errors.New("peer: no peers given")
		}
	}

	// The hold keeps the feeder barrier open until every initial AddPeer
	// ran (a fast-failing first session must not wind the engine down
	// while later peers are still being added).
	o.hold()
	for _, a := range addrs {
		if err := o.AddPeer(a); err != nil {
			// A peer that never got a session (duplicate address, cap
			// conflict) still appears in the result with its error, so
			// callers see the reduced parallelism instead of a silently
			// shorter peer list.
			o.mu.Lock()
			o.stats = append(o.stats, &PeerStats{Addr: a, Err: err})
			o.mu.Unlock()
		}
	}
	o.unhold()

	// Cancellation propagation: ctx ends the transfer like completion
	// does, and sessions unblock via the shared done channel.
	stopWatch := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				o.finish()
			case <-stopWatch:
			}
		}()
	}

	decodeErr := o.decodeLoop()
	o.finish()
	for in := range o.symbolCh {
		o.pools.release(in) // drain remaining buffered symbols so sessions unblock
	}
	close(stopWatch)

	// All sessions have exited (symbolCh closed by the last one); settle
	// the decoder and stop its workers.
	fdec := o.decoder()
	if fdec != nil {
		fdec.Drain()
		fdec.Close() // accessors stay valid after Close
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	res, err := o.collectResult(fdec)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if !res.Completed {
		var firstErr error
		for _, p := range res.Peers {
			if p.Err != nil {
				firstErr = p.Err
				break
			}
		}
		if firstErr != nil {
			return res, fmt.Errorf("peer: download incomplete: %w", firstErr)
		}
		return res, errors.New("peer: download incomplete: peers exhausted")
	}
	return res, nil
}

// decodeLoop is the single consumer of symbolCh: it folds incoming
// symbols into the working set and feeds newly recovered encoded
// symbols to the sharded fountain decoder in batches (one router-lock
// pass per batch instead of per symbol).
func (o *Orchestrator) decodeLoop() error {
	seeded := false
	for {
		if len(o.symbolCh) == 0 {
			// The feeders are momentarily behind: settle the shard
			// workers and make an exact completion check while we would
			// otherwise just block on the channel.
			if dec := o.decoder(); dec != nil {
				dec.Drain()
				if dec.Done() {
					return nil
				}
			}
		}
		in, ok := <-o.symbolCh
		if !ok {
			return nil
		}
		// Opportunistically drain whatever else is already queued, so
		// the whole batch crosses the decoder's router lock once.
		batch := append(o.scratch.ins[:0], in)
	drain:
		for len(batch) < o.opts.Batch {
			select {
			case more, open := <-o.symbolCh:
				if !open {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		done, err := o.processBatch(batch, &seeded)
		o.scratch.ins = batch
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// processBatch folds a batch into the working set under one lock pass,
// then feeds every newly recovered encoded symbol to the fountain
// decoder with one AddSymbols call. It returns done=true when decoding
// completed.
func (o *Orchestrator) processBatch(batch []incoming, seeded *bool) (bool, error) {
	o.mu.Lock()
	dec := o.fdec
	if dec == nil { // cannot happen: delivery follows the handshake
		o.mu.Unlock()
		for _, in := range batch {
			o.pools.release(in)
		}
		return false, nil
	}
	newIDs := o.scratch.ids[:0]
	if !*seeded {
		// Feed the resumed working set into the fountain decoder once.
		*seeded = true
		newIDs = append(newIDs, o.rdec.KnownIDs()...)
	}
	var decodeErr error
	for i, in := range batch {
		before := o.rdec.KnownCount()
		if !in.recoded {
			if o.rdec.Knows(in.id) {
				o.pools.putBuf(in.data) // duplicate: the buffer comes straight back
			} else {
				// AddKnown takes ownership of the pool buffer; it lives
				// on as the stored payload (and, at the end, in Held).
				newIDs = append(newIDs, o.rdec.AddKnown(in.id, in.data)...)
				newIDs = append(newIDs, in.id)
			}
		} else {
			ids, err := o.rdec.Add(recode.Symbol{IDs: in.ids, Data: in.data})
			o.pools.release(in) // rdec.Add copies; both buffers come back
			if err != nil {
				decodeErr = err
				for _, rest := range batch[i+1:] {
					o.pools.release(rest) // unprocessed tail: keep the borrow/release invariant
				}
				break
			}
			newIDs = append(newIDs, ids...)
		}
		if in.stats != nil {
			in.stats.SymbolsReceived++
			in.stats.UsefulSymbols += o.rdec.KnownCount() - before
		}
	}
	o.progress.Store(int64(o.rdec.KnownCount()))
	o.version = int64(o.rdec.KnownCount())
	syms := o.scratch.syms[:0]
	for _, id := range newIDs {
		if data := o.rdec.Payload(id); data != nil {
			syms = append(syms, fountain.Symbol{ID: id, Data: data})
		}
	}
	known := o.rdec.KnownCount()
	o.mu.Unlock()
	o.scratch.ids = newIDs[:0]

	if decodeErr != nil {
		o.finish()
		return false, decodeErr
	}
	// AddSymbols copies payloads into the decoder's freelist buffers, so
	// the working set keeps ownership of everything it stores. Done lags
	// in-flight shard work, and completion is impossible before the
	// working set holds n distinct encoded symbols — so the bulk of the
	// transfer pipelines whole batches through the shards in one
	// router-lock pass, and only the tail (working set at ≥ n) feeds
	// symbol-by-symbol with the workers settled in between, so
	// completion is detected exactly (no overhead inflation past the
	// single-core decoder).
	defer func() { o.scratch.syms = syms[:0] }()
	if known < len(dec.Blocks()) {
		if err := dec.AddSymbols(syms); err != nil {
			o.finish()
			return false, err
		}
		if dec.Done() {
			o.finish()
			return true, nil
		}
		return false, nil
	}
	for _, sym := range syms {
		if err := dec.AddSymbol(sym); err != nil {
			o.finish()
			return false, err
		}
		dec.Drain()
		if dec.Done() {
			o.finish()
			return true, nil
		}
	}
	return false, nil
}

// collectResult assembles the final FetchResult (all sessions have
// exited; no concurrent state changes).
func (o *Orchestrator) collectResult(fdec *fountain.ShardedDecoder) (*FetchResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	res := &FetchResult{Info: o.info, Held: make(map[uint64][]byte)}
	for _, id := range o.rdec.KnownIDs() {
		if data := o.rdec.Payload(id); data != nil {
			res.Held[id] = data
		}
	}
	res.DistinctSymbols = len(res.Held)
	res.Peers = make([]PeerStats, len(o.stats))
	for i, st := range o.stats {
		res.Peers[i] = *st
	}
	if fdec != nil {
		res.Completed = fdec.Done()
		res.DecodeOverhead = fdec.Overhead()
		if res.Completed {
			data, err := fountain.JoinBlocks(fdec.Blocks(), o.info.OrigLen)
			if err != nil {
				return nil, err
			}
			res.Data = data
		}
	}
	return res, nil
}
