package peer

// reader.go gives dedicated (non-fabric) connections an asynchronous
// frame reader, which is what lets them ride the same pipelined request
// ramp as fabric subchannels. Without it a session that writes REQUEST
// k+1 while the server is still streaming batch k deadlocks a
// synchronous in-process pipe: the server blocks writing symbols nobody
// reads, the session blocks writing a request the server never gets to.
// The frameQueue's goroutine keeps draining the conn whatever the
// session is doing, copying each frame out of the FrameReader's scratch
// into pooled buffers — the same valid-until-next-Next contract the
// peermux channel queue and protocol.FrameReader itself give — and the
// queue is sized for the deepest ramp's worth of batches so the reader
// never parks against a server that is still streaming.

import (
	"sync"

	"icd/internal/protocol"
)

// readBufs recycles queued frame payload buffers (the frameQueue's
// analog of peermux's channel-queue pool).
var readBufs = sync.Pool{New: func() any { return new([]byte) }}

func getReadBuf(n int) *[]byte {
	bp := readBufs.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putReadBuf(bp *[]byte) {
	if cap(*bp) <= 1<<16 { // don't let one huge frame pin a large buffer
		readBufs.Put(bp)
	}
}

type queuedFrame struct {
	t   protocol.Type
	ver byte
	buf *[]byte
	err error
}

// frameQueue pumps a FrameReader from its own goroutine into a bounded
// queue. Next is the session-side drain with FrameReader semantics: the
// returned payload is valid until the following Next call, and a read
// error is terminal (sticky). Close releases the pump goroutine; the
// caller must also close the underlying conn (or expire its deadline)
// to unblock a pump parked in a blocking read.
type frameQueue struct {
	frames chan queuedFrame
	done   chan struct{}
	once   sync.Once

	// Session goroutine only.
	prev *[]byte
	err  error
}

// newFrameQueue starts the pump goroutine. depth bounds the frames
// buffered ahead of the consumer; a full queue blocks the pump, which
// is ordinary backpressure on the conn.
func newFrameQueue(fr *protocol.FrameReader, depth int) *frameQueue {
	if depth < 1 {
		depth = 1
	}
	q := &frameQueue{
		frames: make(chan queuedFrame, depth),
		done:   make(chan struct{}),
	}
	go q.pump(fr)
	return q
}

func (q *frameQueue) pump(fr *protocol.FrameReader) {
	for {
		f, err := fr.Next()
		if err != nil {
			select {
			case q.frames <- queuedFrame{err: err}:
			case <-q.done:
			}
			return
		}
		bp := getReadBuf(len(f.Payload))
		copy(*bp, f.Payload)
		select {
		case q.frames <- queuedFrame{t: f.Type, ver: f.Version, buf: bp}:
		case <-q.done:
			putReadBuf(bp)
			return
		}
	}
}

// Next returns the next frame read off the conn. The payload is valid
// only until the following Next call. After a read error the queue is
// dead: the error is returned now and on every later call.
func (q *frameQueue) Next() (protocol.Frame, error) {
	if q.prev != nil {
		putReadBuf(q.prev)
		q.prev = nil
	}
	if q.err != nil {
		return protocol.Frame{}, q.err
	}
	qf := <-q.frames
	if qf.err != nil {
		q.err = qf.err
		return protocol.Frame{}, qf.err
	}
	q.prev = qf.buf
	return protocol.Frame{Type: qf.t, Version: qf.ver, Payload: *qf.buf}, nil
}

// Close releases the pump goroutine once it unblocks from its current
// read (close the conn or expire its deadline to force that) and stops
// Next from being usable. Idempotent.
func (q *frameQueue) Close() {
	q.once.Do(func() { close(q.done) })
}
