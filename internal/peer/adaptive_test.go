package peer

// adaptive_test.go pins the RefreshController policy: the duplicate-rate
// → cadence mapping, its monotonicity (dirtier batches never stretch the
// cadence), the per-step bound (one halving/doubling max), and the
// clamps that keep the policy from oscillating or starving refreshes.

import (
	"math"
	"testing"
)

func TestRefreshControllerTable(t *testing.T) {
	cases := []struct {
		name    string
		target  float64
		initial int
		rates   []float64
		want    []int // cadence after each Observe
	}{
		{
			name:   "on-target holds steady",
			target: 0.25, initial: 8,
			rates: []float64{0.25, 0.25, 0.25},
			want:  []int{8, 8, 8},
		},
		{
			name:   "dirty batches tighten multiplicatively",
			target: 0.25, initial: 8,
			rates: []float64{0.5, 0.5, 0.5, 0.5},
			want:  []int{4, 2, 1, 1}, // halves per step, floors at MinRefreshCadence
		},
		{
			name:   "clean batches stretch toward the ceiling",
			target: 0.25, initial: 8,
			rates: []float64{0, 0, 0, 0},
			want:  []int{16, 32, 64, 64}, // doubles per step, caps at MaxRefreshCadence
		},
		{
			name:   "step bound caps the swing both ways",
			target: 0.25, initial: 8,
			rates: []float64{1.0, 0.01}, // factor .25 → clamped ½; factor 25 → clamped 2
			want:  []int{4, 8},
		},
		{
			name:   "mildly dirty shrinks proportionally",
			target: 0.3, initial: 10,
			rates: []float64{0.5, 0.1}, // ×0.6 → 6; ×2 (clamped from 3) → 12
			want:  []int{6, 12},
		},
		{
			name:   "floor cannot be escaped downward",
			target: 0.1, initial: 1,
			rates: []float64{1.0, 1.0},
			want:  []int{1, 1},
		},
		{
			name:   "ceiling cannot be escaped upward",
			target: 0.1, initial: 64,
			rates: []float64{0, 0.1},
			want:  []int{64, 64},
		},
		{
			name:   "out-of-range rates are clamped into [0,1]",
			target: 0.25, initial: 8,
			rates: []float64{-3, 17},
			want:  []int{16, 8}, // -3 → clean (×2); 17 → fully dirty (×½)
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewRefreshController(tc.target, tc.initial)
			if got := c.Cadence(); got != tc.initial {
				t.Fatalf("initial cadence %d, want %d", got, tc.initial)
			}
			for i, rate := range tc.rates {
				if got := c.Observe(rate); got != tc.want[i] {
					t.Fatalf("after rates %v: cadence %d, want %d", tc.rates[:i+1], got, tc.want[i])
				}
			}
		})
	}
}

func TestRefreshControllerConstructorClamps(t *testing.T) {
	cases := []struct {
		name        string
		target      float64
		initial     int
		wantCadence int
	}{
		{"zero initial floors", 0.2, 0, MinRefreshCadence},
		{"negative initial floors", 0.2, -5, MinRefreshCadence},
		{"huge initial caps", 0.2, 1000, MaxRefreshCadence},
		{"zero target defaults", 0, 8, 8},
		{"negative target defaults", -1, 8, 8},
		{"target past one defaults", 1.5, 8, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewRefreshController(tc.target, tc.initial)
			if got := c.Cadence(); got != tc.wantCadence {
				t.Fatalf("cadence %d, want %d", got, tc.wantCadence)
			}
		})
	}
	// The defaulted target really is DefaultRefreshDupTarget: observing
	// exactly that rate holds the cadence.
	c := NewRefreshController(0, 8)
	if got := c.Observe(DefaultRefreshDupTarget); got != 8 {
		t.Fatalf("defaulted target drifted: cadence %d, want 8", got)
	}
}

func TestRefreshControllerMonotoneInDupRate(t *testing.T) {
	// From any identical state, a dirtier batch must never produce a
	// longer cadence — the property that rules out oscillation from the
	// policy itself (state feedback is bounded separately by the step
	// clamp).
	rates := []float64{0, 0.05, 0.1, 0.15, 0.25, 0.4, 0.6, 0.8, 1.0}
	for _, target := range []float64{0.05, 0.15, 0.5} {
		for _, initial := range []int{1, 4, 16, 64} {
			prev := math.MaxInt
			for _, r := range rates {
				c := NewRefreshController(target, initial)
				got := c.Observe(r)
				if got > prev {
					t.Fatalf("target %.2f initial %d: Observe(%.2f) = %d > %d for a cleaner batch",
						target, initial, r, got, prev)
				}
				prev = got
			}
		}
	}
}

func TestRefreshControllerIgnoresNaN(t *testing.T) {
	c := NewRefreshController(0.25, 8)
	if got := c.Observe(math.NaN()); got != 8 {
		t.Fatalf("NaN moved the cadence to %d", got)
	}
}
