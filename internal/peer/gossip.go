package peer

// gossip.go is the node-wide peer directory behind protocol-v4 gossip
// discovery. One Gossip instance is shared by everything running on a
// node — the Orchestrator's sessions learn advertisements from PEERS
// frames, a live Server learns the listen addresses of clients that
// handshake with it, and both read the directory back when they relay
// advertisements onward. The Orchestrator subscribes to the directory,
// so an address learned through *any* path (a session's PEERS frame, a
// client dialing our live server) flows into the same admission logic
// (considerDiscovered): admit up to MaxPeers, defer the rest to a
// ranked candidate pool, promote candidates when eviction or session
// exit frees a slot.

import (
	"sync"
	"time"

	"icd/internal/protocol"
)

// MaxGossipAds caps a Gossip directory's entry count: a directory is a
// neighborhood map, not a global peer database, and the cap bounds what
// a flood of advertisements can make a node remember.
const MaxGossipAds = 256

// gossipEntry is one remembered advertisement with its mention count
// (independent mentions rank candidates: an address many peers vouch
// for is more likely alive and useful) and the time it was last heard
// (liveness hygiene: entries nobody re-mentions age out via Expire).
type gossipEntry struct {
	ad        protocol.PeerAd
	hits      int
	seq       int // insertion order, the deterministic tie-break
	lastHeard time.Time
}

// Gossip is a node-wide directory of advertised peer addresses,
// deduplicated by (content id, address) and capped at MaxGossipAds.
// It is safe for concurrent use; subscribers are invoked without the
// directory lock held, so they may call back into the directory.
type Gossip struct {
	mu   sync.Mutex
	self string
	ads  map[protocol.PeerAd]*gossipEntry
	next int
	subs []func(protocol.PeerAd)
	now  func() time.Time // injectable clock (tests age entries synthetically)
}

// NewGossip creates an empty directory. self is this node's own
// advertised address (possibly empty); it is never stored and never
// returned by Snapshot, so a node cannot gossip itself to itself.
func NewGossip(self string) *Gossip {
	return &Gossip{self: self, ads: make(map[protocol.PeerAd]*gossipEntry), now: time.Now}
}

// Self returns the node's own advertised address.
func (g *Gossip) Self() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.self
}

// Learn records one advertisement, bumping its mention count if already
// known. It reports whether the ad was new; new ads are announced to
// subscribers (after the lock is released). Self-adverts, empty and
// oversized addresses, and ads past the directory cap are dropped.
func (g *Gossip) Learn(ad protocol.PeerAd) bool {
	if ad.Addr == "" || len(ad.Addr) > protocol.MaxAddrLen {
		return false
	}
	g.mu.Lock()
	if ad.Addr == g.self {
		g.mu.Unlock()
		return false
	}
	if e, ok := g.ads[ad]; ok {
		e.hits++
		e.lastHeard = g.now() // a re-mention is evidence of life
		g.mu.Unlock()
		return false
	}
	if len(g.ads) >= MaxGossipAds {
		g.mu.Unlock()
		return false
	}
	g.ads[ad] = &gossipEntry{ad: ad, hits: 1, seq: g.next, lastHeard: g.now()}
	g.next++
	subs := append([]func(protocol.PeerAd){}, g.subs...)
	g.mu.Unlock()
	for _, fn := range subs {
		fn(ad)
	}
	return true
}

// LearnAll feeds every advertisement through Learn and returns how many
// were new.
func (g *Gossip) LearnAll(ads []protocol.PeerAd) int {
	added := 0
	for _, ad := range ads {
		if g.Learn(ad) {
			added++
		}
	}
	return added
}

// Snapshot returns up to max advertisements for contentID (0 matches
// every content), ranked by descending mention count with insertion
// order as the deterministic tie-break. The node's own address is never
// included.
func (g *Gossip) Snapshot(contentID uint64, max int) []protocol.PeerAd {
	g.mu.Lock()
	entries := make([]gossipEntry, 0, len(g.ads))
	for _, e := range g.ads {
		if contentID == 0 || e.ad.ContentID == contentID {
			entries = append(entries, *e)
		}
	}
	g.mu.Unlock()
	for i := 1; i < len(entries); i++ { // insertion sort: the set is small
		for j := i; j > 0 && better(&entries[j], &entries[j-1]); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	if max > 0 && len(entries) > max {
		entries = entries[:max]
	}
	ads := make([]protocol.PeerAd, len(entries))
	for i, e := range entries {
		ads[i] = e.ad
	}
	return ads
}

// Len returns the number of remembered advertisements.
func (g *Gossip) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.ads)
}

// Expire removes every advertisement last heard more than maxAge ago
// and returns how many were dropped. A directory is a map of who is
// *probably* alive: an address nobody has re-mentioned for a long time
// is most likely gone, and keeping it would waste candidate-pool slots
// and PEERS-frame bytes on dead peers. A node's housekeeping tick calls
// this; an expired address that is still alive re-enters the directory
// (and re-triggers discovery subscribers) at its next mention.
// maxAge <= 0 is a no-op.
func (g *Gossip) Expire(maxAge time.Duration) int {
	if maxAge <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	cutoff := g.now().Add(-maxAge)
	dropped := 0
	for ad, e := range g.ads {
		if e.lastHeard.Before(cutoff) {
			delete(g.ads, ad)
			dropped++
		}
	}
	return dropped
}

// hits returns the mention count of ad (0 when unknown) — candidate
// ranking reads it when an admission decision is made.
func (g *Gossip) hitCount(ad protocol.PeerAd) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.ads[ad]; ok {
		return e.hits
	}
	return 0
}

// subscribe registers fn to run for every newly learned advertisement.
// fn is invoked without the directory lock held.
func (g *Gossip) subscribe(fn func(protocol.PeerAd)) {
	g.mu.Lock()
	g.subs = append(g.subs, fn)
	g.mu.Unlock()
}

// better orders gossip entries: more independent mentions first, then
// first-heard first.
func better(a, b *gossipEntry) bool {
	if a.hits != b.hits {
		return a.hits > b.hits
	}
	return a.seq < b.seq
}
