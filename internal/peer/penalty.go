package peer

// penalty.go is the misbehavior-containment half of gossip admission: a
// PenaltyBox holds a decaying score per peer address, fed by every
// failure class a node observes — dials that never connect, connections
// that reset mid-stream, sessions that stall, frames that arrive
// corrupt. Scores decay exponentially (a peer that behaved badly an
// hour ago is not the peer it is now), and an address whose current
// score crosses the ban threshold is excluded from admission: the
// orchestrator's considerDiscovered refuses it, the candidate pool
// skips it, and a server sharing the box rejects its inbound
// connections at accept. One box is shared node-wide (like the Gossip
// directory), so misbehavior seen on any plane — client or server —
// feeds one verdict.
//
// Keys are peer addresses as the observing plane knows them. The dial
// plane and gossip admission use the dialable address (host:port over
// TCP, a bare endpoint name on pipe transports). The inbound plane
// keys by the connection's remote host — the only identity an
// unauthenticated inbound connection proves — plus, once a client's
// HELLO advertises a listen address whose host matches the connection
// (verifiedListenAddr), that dialable address too, which is what
// bridges server-plane observations into dial-plane and gossip
// verdicts. An advertised address that fails verification is never
// charged or ban-checked: it is attacker-controlled.

import (
	"math"
	"sync"
	"time"
)

// Penalty weights for the failure classes the engine observes. A ban
// (DefaultBanScore) takes e.g. three corrupt frames, or eight failed
// dials, within one decay half-life.
const (
	// PenaltyDialFail is charged when a dial attempt never produces a
	// connection (refused or timed out). Dials suppressed by an open
	// circuit breaker are NOT charged: the failures that opened the
	// circuit already were, and re-charging every suppressed probe would
	// double-count one outage.
	PenaltyDialFail = 1.0
	// PenaltyReset is charged when an established connection dies
	// mid-stream — common under churn, so it weighs the least.
	PenaltyReset = 0.5
	// PenaltyStall is charged when the stall watchdog drops a session
	// that delivered no useful symbols for a whole window.
	PenaltyStall = 2.0
	// PenaltyCorrupt is charged per connection dropped over a corrupt or
	// malformed frame — the strongest misbehavior signal.
	PenaltyCorrupt = 3.0
)

// DefaultPenaltyHalfLife is the decay half-life of a peer's score.
const DefaultPenaltyHalfLife = 30 * time.Second

// DefaultBanScore is the decayed score at which an address is banned.
const DefaultBanScore = 8.0

// maxPenaltyEntries bounds the box so a flood of hostile addresses
// cannot make a node remember unbounded state; when full, the least
// guilty entry is evicted to make room.
const maxPenaltyEntries = 1024

// PenaltyBox tracks decaying misbehavior scores per peer address. The
// zero value is not usable; create with NewPenaltyBox. All methods are
// safe for concurrent use, and a nil *PenaltyBox is inert (Penalize is
// a no-op, Score is 0, Banned is false), so callers need no nil checks.
type PenaltyBox struct {
	mu       sync.Mutex
	now      func() time.Time // injectable clock (tests decay synthetically)
	halfLife time.Duration
	banScore float64
	entries  map[string]*penaltyEntry
}

type penaltyEntry struct {
	score   float64
	updated time.Time
}

// NewPenaltyBox creates a box with the default half-life and ban
// threshold.
func NewPenaltyBox() *PenaltyBox {
	return &PenaltyBox{
		now:      time.Now,
		halfLife: DefaultPenaltyHalfLife,
		banScore: DefaultBanScore,
		entries:  make(map[string]*penaltyEntry),
	}
}

// SetPolicy overrides the decay half-life and ban threshold (zero or
// negative arguments keep the current value). Call before sharing the
// box.
func (p *PenaltyBox) SetPolicy(halfLife time.Duration, banScore float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if halfLife > 0 {
		p.halfLife = halfLife
	}
	if banScore > 0 {
		p.banScore = banScore
	}
}

// decayLocked brings an entry's score to the present.
func (p *PenaltyBox) decayLocked(e *penaltyEntry, now time.Time) {
	if age := now.Sub(e.updated); age > 0 {
		e.score *= math.Exp2(-float64(age) / float64(p.halfLife))
		e.updated = now
	}
}

// Penalize adds weight to addr's decayed score and returns the new
// score. Empty addresses are ignored.
func (p *PenaltyBox) Penalize(addr string, weight float64) float64 {
	if p == nil || addr == "" || weight <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	e := p.entries[addr]
	if e == nil {
		if len(p.entries) >= maxPenaltyEntries {
			p.evictLowestLocked(now)
		}
		e = &penaltyEntry{updated: now}
		p.entries[addr] = e
	}
	p.decayLocked(e, now)
	e.score += weight
	return e.score
}

// evictLowestLocked drops the entry with the lowest decayed score (and
// any entry decayed to noise) to make room for a new offender.
func (p *PenaltyBox) evictLowestLocked(now time.Time) {
	var victim string
	lowest := math.Inf(1)
	for addr, e := range p.entries {
		p.decayLocked(e, now)
		if e.score < 0.05 {
			delete(p.entries, addr)
			continue
		}
		if e.score < lowest {
			victim, lowest = addr, e.score
		}
	}
	if len(p.entries) >= maxPenaltyEntries && victim != "" {
		delete(p.entries, victim)
	}
}

// Score returns addr's current decayed score (0 when unknown).
func (p *PenaltyBox) Score(addr string) float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[addr]
	if e == nil {
		return 0
	}
	p.decayLocked(e, p.now())
	return e.score
}

// Banned reports whether addr's decayed score is at or past the ban
// threshold — the admission-plane verdict.
func (p *PenaltyBox) Banned(addr string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[addr]
	if e == nil {
		return false
	}
	p.decayLocked(e, p.now())
	return e.score >= p.banScore
}

// BannedCount returns the number of addresses whose decayed score is
// currently at or past the ban threshold — the quantity a node-level
// gauge reports.
func (p *PenaltyBox) BannedCount() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	n := 0
	for _, e := range p.entries {
		p.decayLocked(e, now)
		if e.score >= p.banScore {
			n++
		}
	}
	return n
}

// Len returns the number of addresses with a recorded score.
func (p *PenaltyBox) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}
