package peer

// hostile_test.go exercises the PR 6 misbehavior-containment paths end
// to end over the pipe harness: the stall watchdog dropping a silent
// peer, a corrupting peer accumulating penalties until it is banned and
// its redial budget short-circuited, dial-failed discoveries requeuing
// at decayed rank, terminal protocol errors skipping the backoff
// budget, and the server/mux inbound admission planes (connection cap,
// banned refusal, malformed-HELLO accounting). All tests run under
// -race in CI with the shared goroutine-leak check.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"icd/internal/protocol"
)

// awaitActive blocks until the given admission counter shows at least
// one connection holding a slot — the deterministic step barrier the
// over-cap tests need, since two ServeConn goroutines otherwise race
// for the only slot.
func awaitActive(t *testing.T, active *atomic.Int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for active.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no connection ever occupied the admission slot")
		}
		time.Sleep(time.Millisecond)
	}
}

// peerByAddr finds addr's stats in a fetch result.
func peerByAddr(t *testing.T, res *FetchResult, addr string) PeerStats {
	t.Helper()
	for _, p := range res.Peers {
		if p.Addr == addr {
			return p
		}
	}
	t.Fatalf("no session stats for %s in %+v", addr, res.Peers)
	return PeerStats{}
}

// muteServer handshakes correctly, then never answers another frame —
// the silent peer only a stall watchdog can unmask (the connection stays
// up, so no read error ever surfaces).
type muteServer struct{ info ContentInfo }

func (m muteServer) ServeConn(conn net.Conn) error {
	fr := protocol.NewFrameReader(conn)
	if _, _, err := readClientHello(conn, fr, time.Minute); err != nil {
		return err
	}
	if err := protocol.WriteFrame(conn, protocol.EncodeHello(m.info.hello(true, 0))); err != nil {
		return err
	}
	_, err := io.Copy(io.Discard, conn) // swallow requests forever
	return err
}

func TestStallWatchdogResetsAndEscalatesToBan(t *testing.T) {
	defer checkGoroutines(t)()
	h := newHarness(t, 60, 32)
	defer h.pn.close() // stop the accept loops before the leak check
	h.pn.add("mute", muteServer{info: h.info})

	// A stall resets the connection rather than evicting the session: one
	// silent window can be a transient wire artifact (e.g. a corrupted
	// length field parking the reader), so the redial budget gets to try
	// again. A genuinely mute peer re-stalls every window and the
	// accumulated PenaltyStall charges ban it, which is what ends the
	// session — terminally, with budget to spare.
	o := NewOrchestrator(h.info.ID, FetchOptions{
		Batch:               8,
		Timeout:             5 * time.Second,
		StallTimeout:        50 * time.Millisecond,
		MaxReconnects:       20,
		ReconnectBackoff:    time.Millisecond,
		MaxReconnectBackoff: 4 * time.Millisecond,
		Dial:                h.pn.dial,
	})
	res, err := h.runAsync(o, "mute").waitErr()
	if err == nil {
		t.Fatal("fetch from a mute peer succeeded?!")
	}
	if res == nil {
		t.Fatal("incomplete fetch must still report peer stats")
	}
	st := peerByAddr(t, res, "mute")
	wantStalls := int(DefaultBanScore / PenaltyStall)
	if st.Stalls < wantStalls {
		t.Fatalf("mute peer should stall to the ban threshold (>= %d), got %+v", wantStalls, st)
	}
	if !st.Banned {
		t.Fatalf("repeated stalls must escalate to a ban: %+v", st)
	}
	if st.Evicted {
		t.Fatalf("a stall is a reset, not an eviction: %+v", st)
	}
	if st.Resets != 0 {
		t.Fatalf("stall resets must not double-charge as connection resets: %+v", st)
	}
	if st.Reconnects >= 20 {
		t.Fatalf("ban should end the session before the redial budget runs out: %+v", st)
	}
	if score := o.Penalties().Score("mute"); score < 0.9*DefaultBanScore {
		t.Fatalf("stall penalties not accumulated: score %v", score)
	}
}

// junkServer drains whatever the client says and answers with bytes
// that can never parse as a frame — the always-corrupting peer.
type junkServer struct{}

func (junkServer) ServeConn(conn net.Conn) error {
	go io.Copy(io.Discard, conn)
	junk := bytes.Repeat([]byte{0xFF}, 64)
	for {
		if _, err := conn.Write(junk); err != nil {
			return err
		}
	}
}

func TestCorruptPeerBannedAndRedialShortCircuited(t *testing.T) {
	defer checkGoroutines(t)()
	h := newHarness(t, 120, 48)
	defer h.pn.close() // stop the accept loops before the leak check
	h.addFull("seed", time.Millisecond)
	h.pn.add("evil", junkServer{})

	o := NewOrchestrator(h.info.ID, FetchOptions{
		Batch:             8,
		Timeout:           10 * time.Second,
		MaxUselessBatches: 1 << 20,
		MaxReconnects:     10,
		ReconnectBackoff:  time.Millisecond,
		Dial:              h.pn.dial,
	})
	res := h.runAsync(o, "seed", "evil").wait(t)
	h.verify(res)

	st := peerByAddr(t, res, "evil")
	if st.CorruptFrames < 3 {
		t.Fatalf("expected ≥3 corrupt-frame connections before the ban, got %+v", st)
	}
	if !st.Banned {
		t.Fatalf("corrupting peer not banned: %+v", st)
	}
	if !o.Penalties().Banned("evil") {
		t.Fatal("penalty box does not report the ban")
	}
	// Containment: the ban must end the session well before the full
	// redial budget (10) is spent on a hostile address.
	if st.Reconnects > 5 {
		t.Fatalf("banned peer consumed %d redials — ban did not short-circuit", st.Reconnects)
	}

	// Admission: a second orchestrator sharing the box must refuse the
	// banned address outright while still admitting unknown ones. The
	// clean address has no server behind it, so its probe session dials,
	// fails, and winds down on its own.
	o2 := NewOrchestrator(h.info.ID, FetchOptions{Dial: h.pn.dial, Penalties: o.Penalties()})
	if o2.considerDiscovered(protocol.PeerAd{ContentID: h.info.ID, Addr: "evil"}) {
		t.Fatal("gossip admission accepted a banned address")
	}
	if !o2.considerDiscovered(protocol.PeerAd{ContentID: h.info.ID, Addr: "unknown-clean"}) {
		t.Fatal("gossip admission refused a clean address")
	}
}

func TestTerminalErrorsSkipRedialBudget(t *testing.T) {
	// The classifier itself, through wrapping.
	for _, err := range []error{
		fmt.Errorf("peer x: %w", ErrUnknownContent),
		fmt.Errorf("peer x: incompatible protocol: %w", protocol.ErrVersion),
	} {
		if !terminalSessionError(err) {
			t.Fatalf("%v not classified terminal", err)
		}
	}
	if terminalSessionError(errors.New("connection reset")) {
		t.Fatal("ordinary reset classified terminal")
	}

	// End to end: a peer serving a *different* content answers the HELLO
	// with the canonical unknown-content ERROR; the session must fail on
	// the first dial with no redials despite a generous budget.
	defer checkGoroutines(t)()
	h := newHarness(t, 40, 32)
	defer h.pn.close() // stop the accept loops before the leak check
	otherInfo, otherData := testContentID(t, 0xBEEF, 40, 32)
	srv, err := NewFullServer(otherInfo, otherData)
	if err != nil {
		t.Fatal(err)
	}
	h.pn.add("wrong", srv)

	o := NewOrchestrator(h.info.ID, FetchOptions{
		Batch:            8,
		Timeout:          5 * time.Second,
		MaxReconnects:    8,
		ReconnectBackoff: time.Millisecond,
		Dial:             h.pn.dial,
	})
	res, runErr := h.runAsync(o, "wrong").waitErr()
	if runErr == nil {
		t.Fatal("fetch of unknown content succeeded?!")
	}
	st := peerByAddr(t, res, "wrong")
	if !errors.Is(st.Err, ErrUnknownContent) {
		t.Fatalf("session error = %v, want ErrUnknownContent", st.Err)
	}
	if st.Reconnects != 0 {
		t.Fatalf("terminal error consumed %d redials", st.Reconnects)
	}
	if got := h.pn.dialCount("wrong"); got != 1 {
		t.Fatalf("peer dialed %d times, want exactly 1", got)
	}
}

// TestRefusedPeerTerminalAndUncharged pins the no-retaliation rule: a
// server that refuses us (our address in its penalty box) answers with
// the canonical refused ERROR, and the session must end terminally on
// the first dial — no redial burn, and no penalty charged back at the
// refuser. Without the explicit signal the refusal reads as a dead peer,
// and two nodes that each misattributed one environmental fault charge
// each other into a permanent mutual ban.
func TestRefusedPeerTerminalAndUncharged(t *testing.T) {
	defer checkGoroutines(t)()
	h := newHarness(t, 40, 32)
	defer h.pn.close() // stop the accept loops before the leak check
	h.addFull("seed", 0)
	grudge, err := NewFullServer(h.info, h.data)
	if err != nil {
		t.Fatal(err)
	}
	grudgeBox := NewPenaltyBox()
	grudgeBox.Penalize("pipe", 2*DefaultBanScore) // pipeNet dials all carry source identity "pipe"
	grudge.SetPenalties(grudgeBox)
	h.pn.add("grudge", grudge)

	o := NewOrchestrator(h.info.ID, FetchOptions{
		Batch:            8,
		Timeout:          5 * time.Second,
		MaxReconnects:    8,
		ReconnectBackoff: time.Millisecond,
		Dial:             h.pn.dial,
	})
	res := h.runAsync(o, "seed", "grudge").wait(t)
	h.verify(res)

	st := peerByAddr(t, res, "grudge")
	if !errors.Is(st.Err, ErrRefused) {
		t.Fatalf("session error = %v, want ErrRefused", st.Err)
	}
	if st.Reconnects != 0 {
		t.Fatalf("refused peer consumed %d redials", st.Reconnects)
	}
	if got := h.pn.dialCount("grudge"); got != 1 {
		t.Fatalf("refusing peer dialed %d times, want exactly 1", got)
	}
	if score := o.Penalties().Score("grudge"); score != 0 {
		t.Fatalf("refusing peer charged back (score %v) — retaliation loop", score)
	}
}

func TestDialFailedDiscoveryRequeuesAtDecayedRank(t *testing.T) {
	defer checkGoroutines(t)()
	failDial := func(addr string) (net.Conn, error) {
		return nil, errors.New("connection refused")
	}
	o := NewOrchestrator(0xD1A1, FetchOptions{Dial: failDial})

	// A discovered session that burned its dials without ever reaching
	// the address requeues with a growing fails count — until the budget.
	ghost := newSession(o, "ghost")
	ghost.stats.Discovered = true
	ghost.stats.Err = errors.New("connection refused")
	o.mu.Lock()
	for i := 1; i <= maxCandidateRedials; i++ {
		o.candidates = o.candidates[:0]
		o.maybeRequeueLocked(ghost)
		if len(o.candidates) != 1 || o.candidates[0].fails != i {
			t.Fatalf("requeue %d: candidates %+v", i, o.candidates)
		}
	}
	o.candidates = o.candidates[:0]
	o.maybeRequeueLocked(ghost)
	if len(o.candidates) != 0 {
		t.Fatalf("requeue past the %d budget: %+v", maxCandidateRedials, o.candidates)
	}

	// Sessions that connected, were dropped, or failed terminally never
	// requeue.
	for name, tweak := range map[string]func(*session){
		"reached":  func(s *session) { s.connected = true },
		"evicted":  func(s *session) { s.stats.Evicted = true },
		"terminal": func(s *session) { s.stats.Err = fmt.Errorf("x: %w", ErrUnknownContent) },
	} {
		s := newSession(o, name)
		s.stats.Discovered = true
		s.stats.Err = errors.New("reset")
		tweak(s)
		o.maybeRequeueLocked(s)
		if len(o.candidates) != 0 {
			t.Fatalf("%s session requeued: %+v", name, o.candidates)
		}
	}

	// Promotion ranks every fresh discovery above every requeued address,
	// regardless of arrival order.
	o.candidates = append(o.candidates[:0],
		gossipCandidate{ad: protocol.PeerAd{ContentID: 0xD1A1, Addr: "ghost"}, seq: 0, fails: 1},
		gossipCandidate{ad: protocol.PeerAd{ContentID: 0xD1A1, Addr: "fresh"}, seq: 1},
	)
	o.promoteCandidateLocked()
	if n := len(o.stats); n == 0 || o.stats[n-1].Addr != "fresh" {
		t.Fatalf("fresh discovery not promoted first: %+v", o.stats)
	}
	if len(o.candidates) != 1 || o.candidates[0].ad.Addr != "ghost" {
		t.Fatalf("requeued address should still be waiting: %+v", o.candidates)
	}
	o.promoteCandidateLocked()
	if n := len(o.stats); o.stats[n-1].Addr != "ghost" {
		t.Fatalf("requeued address never promoted: %+v", o.stats)
	}
	o.mu.Unlock()
	o.finish() // unwind the two fail-dial session goroutines
}

func TestServerInboundCapAndBannedRefusal(t *testing.T) {
	defer checkGoroutines(t)()
	info, data := testContent(t, 40, 32)
	srv, err := NewFullServer(info, data)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetMaxConns(1)

	// First connection occupies the only slot (parked reading its HELLO).
	c1, s1 := net.Pipe()
	hold := make(chan error, 1)
	go func() { hold <- srv.ServeConn(s1) }()
	awaitActive(t, &srv.active)

	// Second connection must be refused with a retryable busy ERROR.
	c2, s2 := net.Pipe()
	busy := make(chan error, 1)
	go func() { busy <- srv.ServeConn(s2) }()
	f, err := protocol.NewFrameReader(c2).Next()
	if err != nil {
		t.Fatalf("reading busy answer: %v", err)
	}
	if f.Type != protocol.TypeError {
		t.Fatalf("over-cap answer = %v, want ERROR", f.Type)
	}
	if msg, _ := protocol.DecodeError(f); msg == "" || !bytes.Contains([]byte(msg), []byte("busy")) {
		t.Fatalf("busy answer says %q", msg)
	}
	if err := <-busy; err == nil {
		t.Fatal("over-cap ServeConn returned nil")
	}
	c2.Close()
	s2.Close()
	if got := srv.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	// Free the slot, ban the pipe address, and verify refusal at
	// admission: the HELLO is drained and answered with the canonical
	// refused ERROR (terminal for the client, no charge back at us).
	c1.Close()
	<-hold
	box := NewPenaltyBox()
	box.Penalize(remoteKey(s1), 2*DefaultBanScore)
	srv.SetPenalties(box)
	c3, s3 := net.Pipe()
	defer c3.Close()
	refused := make(chan error, 1)
	go func() { refused <- srv.ServeConn(s3) }()
	if err := protocol.WriteFrame(c3, protocol.EncodeHello(protocol.Hello{ContentID: info.ID})); err != nil {
		t.Fatal(err)
	}
	f3, err := protocol.NewFrameReader(c3).Next()
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	if msg, _ := protocol.DecodeError(f3); !protocol.IsRefused(msg) {
		t.Fatalf("banned answer says %q, want canonical refusal", msg)
	}
	if err := <-refused; err == nil {
		t.Fatal("banned client admitted")
	}
	if got := srv.Stats().Rejected; got != 2 {
		t.Fatalf("Rejected = %d, want 2", got)
	}
}

func TestMuxMalformedHelloChargedAndBanned(t *testing.T) {
	defer checkGoroutines(t)()
	mux := NewServerMux()
	box := NewPenaltyBox()
	mux.SetPenalties(box)

	// A HELLO that is pure garbage: the mux must count it, charge the
	// penalty box, and surface protocol.ErrCorrupt.
	client, server := net.Pipe()
	served := make(chan error, 1)
	go func() { served <- mux.ServeConn(server) }()
	if _, err := client.Write(bytes.Repeat([]byte{0xEE}, 8)); err != nil {
		t.Fatal(err)
	}
	if err := <-served; !errors.Is(err, protocol.ErrCorrupt) {
		t.Fatalf("malformed HELLO error = %v, want ErrCorrupt", err)
	}
	client.Close()
	server.Close()
	if st := mux.Stats(); st.Malformed != 1 {
		t.Fatalf("Malformed = %d, want 1", st.Malformed)
	}
	key := remoteKey(server)
	// 0.9×: the score decays continuously between the charge and the read.
	if score := box.Score(key); score < 0.9*PenaltyCorrupt {
		t.Fatalf("corrupt HELLO not charged: score(%s) = %v", key, score)
	}

	// Push the address over the threshold: the next connection must be
	// refused at admission with the canonical refused ERROR (its frame is
	// drained, never routed).
	box.Penalize(key, 2*DefaultBanScore)
	c2, s2 := net.Pipe()
	defer c2.Close()
	refused := make(chan error, 1)
	go func() { refused <- mux.ServeConn(s2) }()
	if _, err := c2.Write(bytes.Repeat([]byte{0xEE}, 8)); err != nil {
		t.Fatal(err)
	}
	f2, err := protocol.NewFrameReader(c2).Next()
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	if msg, _ := protocol.DecodeError(f2); !protocol.IsRefused(msg) {
		t.Fatalf("banned answer says %q, want canonical refusal", msg)
	}
	if err := <-refused; err == nil {
		t.Fatal("banned client admitted by mux")
	}
	if st := mux.Stats(); st.Banned != 1 {
		t.Fatalf("Banned = %d, want 1", st.Banned)
	}
}

// namedConn overrides an inbound pipe's remote address — the
// listen-addr verification tests need connections with a definite
// remote host.
type namedConn struct {
	net.Conn
	remote net.Addr
}

func (c namedConn) RemoteAddr() net.Addr { return c.remote }

func tcpRemote(host string, port int) net.Addr {
	return &net.TCPAddr{IP: net.ParseIP(host), Port: port}
}

// TestMalformedHelloListenAddrSpoofNotCharged pins the attribution rule
// for the attacker-controlled HELLO listen address: corruption charges
// the advertised address only when its host matches the connection's
// remote host. Without the check, any client could ban an innocent
// third party node-wide by advertising the victim's address and then
// corrupting its own stream.
func TestMalformedHelloListenAddrSpoofNotCharged(t *testing.T) {
	defer checkGoroutines(t)()
	info, data := testContent(t, 40, 32)
	srv, err := NewFullServer(info, data)
	if err != nil {
		t.Fatal(err)
	}
	box := NewPenaltyBox()
	srv.SetPenalties(box)

	corruptAs := func(remote net.Addr, listenAddr string) error {
		t.Helper()
		client, server := net.Pipe()
		defer client.Close()
		served := make(chan error, 1)
		go func() { served <- srv.ServeConn(namedConn{Conn: server, remote: remote}) }()
		go io.Copy(io.Discard, client) // drain the server's answering HELLO
		if err := protocol.WriteFrame(client, protocol.EncodeHello(protocol.Hello{
			ContentID: info.ID, ListenAddr: listenAddr,
		})); err != nil {
			t.Fatal(err)
		}
		// Exactly one frame header of garbage: the reader rejects it after
		// those 8 bytes, so a longer write would block on the dead pipe.
		if _, err := client.Write(bytes.Repeat([]byte{0xEE}, 8)); err != nil {
			t.Fatal(err)
		}
		return <-served
	}

	// A client at 10.9.8.7 advertising an innocent third party's address:
	// the corruption must charge the client's host, never the victim.
	if err := corruptAs(tcpRemote("10.9.8.7", 40001), "203.0.113.5:9000"); !errors.Is(err, protocol.ErrCorrupt) {
		t.Fatalf("corrupt session error = %v, want ErrCorrupt", err)
	}
	if score := box.Score("203.0.113.5:9000"); score != 0 {
		t.Fatalf("spoofed listen address charged: score %v", score)
	}
	if score := box.Score("10.9.8.7"); score < 0.9*PenaltyCorrupt {
		t.Fatalf("remote host not charged: score %v", score)
	}

	// The same client advertising its own (host-matching) listen address:
	// that dialable address is charged too — the verified bridge from the
	// server plane into gossip admission.
	if err := corruptAs(tcpRemote("10.9.8.7", 40002), "10.9.8.7:9000"); !errors.Is(err, protocol.ErrCorrupt) {
		t.Fatalf("corrupt session error = %v, want ErrCorrupt", err)
	}
	if score := box.Score("10.9.8.7:9000"); score < 0.9*PenaltyCorrupt {
		t.Fatalf("verified listen address not charged: score %v", score)
	}
}

// TestBannedDialableAddressRefusedInbound pins the second admission
// stage: a peer banned under its dialable address (dial-plane charges
// use host:port keys, which a bare remote-host check can never match)
// is refused once its HELLO advertises that address and the host
// verifies — while an unverified advertisement of the same banned
// address changes nothing.
func TestBannedDialableAddressRefusedInbound(t *testing.T) {
	defer checkGoroutines(t)()
	info, data := testContent(t, 40, 32)
	srv, err := NewFullServer(info, data)
	if err != nil {
		t.Fatal(err)
	}
	box := NewPenaltyBox()
	srv.SetPenalties(box)
	box.Penalize("10.9.8.7:9000", 2*DefaultBanScore)

	// Verified: same host as the connection → refused after the HELLO.
	client, server := net.Pipe()
	defer client.Close()
	served := make(chan error, 1)
	go func() { served <- srv.ServeConn(namedConn{Conn: server, remote: tcpRemote("10.9.8.7", 40003)}) }()
	go io.Copy(io.Discard, client)
	if err := protocol.WriteFrame(client, protocol.EncodeHello(protocol.Hello{
		ContentID: info.ID, ListenAddr: "10.9.8.7:9000",
	})); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err == nil {
		t.Fatal("banned dialable address admitted inbound")
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	// Unverified: a different host advertising the banned address must
	// still be served — anyone can name anyone in a HELLO.
	client2, server2 := net.Pipe()
	defer client2.Close()
	served2 := make(chan error, 1)
	go func() { served2 <- srv.ServeConn(namedConn{Conn: server2, remote: tcpRemote("192.0.2.1", 40004)}) }()
	go io.Copy(io.Discard, client2)
	if err := protocol.WriteFrame(client2, protocol.EncodeHello(protocol.Hello{
		ContentID: info.ID, ListenAddr: "10.9.8.7:9000",
	})); err != nil {
		t.Fatal(err)
	}
	if err := protocol.WriteFrame(client2, protocol.EncodeDone()); err != nil {
		t.Fatal(err)
	}
	if err := <-served2; err != nil {
		t.Fatalf("unverified advertisement refused the session: %v", err)
	}
}

// TestMuxBusyAnswerDoesNotPoisonAdmission pins the over-cap refusal
// path against a mute client that never reads: the admission slot must
// be released before the busy write (not after ServeConn returns), and
// the write itself must unpark via its own deadline instead of leaking
// the goroutine.
func TestMuxBusyAnswerDoesNotPoisonAdmission(t *testing.T) {
	defer checkGoroutines(t)()
	mux := NewServerMux()
	mux.timeout = 100 * time.Millisecond // bounds the busy write below
	mux.SetMaxConns(1)

	c1, s1 := net.Pipe()
	hold := make(chan error, 1)
	go func() { hold <- mux.ServeConn(s1) }()
	awaitActive(t, &mux.active)

	c2, s2 := net.Pipe()
	defer c2.Close()
	defer s2.Close()
	busy := make(chan error, 1)
	go func() { busy <- mux.ServeConn(s2) }()
	select {
	case err := <-busy:
		if err == nil {
			t.Fatal("over-cap ServeConn returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("busy answer to a mute client blocked past its write deadline")
	}
	c1.Close()
	<-hold
	// Both connections have fully unwound: a leaked slot from the busy
	// path would show here as a permanently elevated counter, refusing
	// every future inbound connection as busy.
	if got := mux.active.Load(); got != 0 {
		t.Fatalf("active = %d after both connections ended, want 0", got)
	}
	if st := mux.Stats(); st.Busy != 1 {
		t.Fatalf("Busy = %d, want 1", st.Busy)
	}
}

func TestMuxInboundCapBusyError(t *testing.T) {
	defer checkGoroutines(t)()
	mux := NewServerMux()
	mux.SetMaxConns(1)

	c1, s1 := net.Pipe()
	hold := make(chan error, 1)
	go func() { hold <- mux.ServeConn(s1) }()
	awaitActive(t, &mux.active)

	c2, s2 := net.Pipe()
	busy := make(chan error, 1)
	go func() { busy <- mux.ServeConn(s2) }()
	f, err := protocol.NewFrameReader(c2).Next()
	if err != nil {
		t.Fatalf("reading busy answer: %v", err)
	}
	if msg, _ := protocol.DecodeError(f); f.Type != protocol.TypeError || !bytes.Contains([]byte(msg), []byte("busy")) {
		t.Fatalf("over-cap answer = %v %q, want busy ERROR", f.Type, msg)
	}
	if err := <-busy; err == nil {
		t.Fatal("over-cap ServeConn returned nil")
	}
	c2.Close()
	s2.Close()
	c1.Close()
	<-hold
	if st := mux.Stats(); st.Busy != 1 {
		t.Fatalf("Busy = %d, want 1", st.Busy)
	}
}
