package peer

// gossip_test.go covers the gossip building blocks in isolation: the
// Gossip directory's dedup/cap/rank rules, and the orchestrator's
// considerDiscovered admission path — immediate admission below
// MaxPeers, deferral to the ranked candidate pool when full, and
// promotion of the best candidate when a freed slot appears.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"icd/internal/protocol"
)

func ad(id uint64, addr string) protocol.PeerAd {
	return protocol.PeerAd{ContentID: id, Addr: addr}
}

func TestGossipDirectoryDedupAndSelf(t *testing.T) {
	g := NewGossip("me:1")
	if g.Learn(ad(7, "me:1")) {
		t.Fatal("learned own address")
	}
	if g.Learn(ad(7, "")) {
		t.Fatal("learned empty address")
	}
	if !g.Learn(ad(7, "a:1")) {
		t.Fatal("first mention not learned")
	}
	if g.Learn(ad(7, "a:1")) {
		t.Fatal("second mention reported as new")
	}
	if g.Len() != 1 {
		t.Fatalf("directory has %d entries, want 1", g.Len())
	}
	if got := g.hitCount(ad(7, "a:1")); got != 2 {
		t.Fatalf("hit count %d, want 2", got)
	}
	if g.Self() != "me:1" {
		t.Fatalf("self = %q", g.Self())
	}
}

func TestGossipSnapshotRankingAndFilter(t *testing.T) {
	g := NewGossip("")
	g.Learn(ad(7, "once:1"))
	g.Learn(ad(7, "thrice:1"))
	g.Learn(ad(9, "other-content:1"))
	for i := 0; i < 2; i++ {
		g.Learn(ad(7, "thrice:1"))
	}
	got := g.Snapshot(7, 0)
	if len(got) != 2 {
		t.Fatalf("snapshot(7) has %d ads: %v", len(got), got)
	}
	if got[0].Addr != "thrice:1" || got[1].Addr != "once:1" {
		t.Fatalf("ranking wrong: %v", got)
	}
	if all := g.Snapshot(0, 0); len(all) != 3 {
		t.Fatalf("snapshot(0) has %d ads, want 3", len(all))
	}
	if capped := g.Snapshot(7, 1); len(capped) != 1 || capped[0].Addr != "thrice:1" {
		t.Fatalf("max=1 snapshot wrong: %v", capped)
	}
}

func TestGossipDirectoryCap(t *testing.T) {
	g := NewGossip("")
	for i := 0; i < MaxGossipAds+10; i++ {
		g.Learn(ad(1, fmt.Sprintf("peer-%d:1", i)))
	}
	if g.Len() != MaxGossipAds {
		t.Fatalf("directory has %d entries, want the %d cap", g.Len(), MaxGossipAds)
	}
	// Known entries still count mentions past the cap.
	if g.Learn(ad(1, "peer-0:1")) {
		t.Fatal("known ad reported as new")
	}
	if g.hitCount(ad(1, "peer-0:1")) != 2 {
		t.Fatal("mention not counted at cap")
	}
}

func TestGossipSubscriberRunsWithoutLock(t *testing.T) {
	// A subscriber may call back into the directory (the orchestrator's
	// admission path reads hit counts); this must not deadlock.
	g := NewGossip("")
	calls := 0
	g.subscribe(func(a protocol.PeerAd) {
		calls++
		g.hitCount(a)
		g.Snapshot(0, 0)
	})
	g.LearnAll([]protocol.PeerAd{ad(1, "a:1"), ad(1, "b:1"), ad(1, "a:1")})
	if calls != 2 {
		t.Fatalf("subscriber ran %d times, want 2 (one per new ad)", calls)
	}
}

// TestCandidatePoolDefersAndPromotes is the admission-path scenario:
// with MaxPeers=1 occupied, discovered addresses park in the candidate
// pool ranked by mention count, and dropping the live peer promotes the
// most-vouched-for candidate — which then finishes the transfer.
func TestCandidatePoolDefersAndPromotes(t *testing.T) {
	h := newHarness(t, 100, 48)
	first := h.addPartial("first", 30, 3) // too little to ever finish
	hi := h.addFull("cand-hi", 0)
	lo := h.addFull("cand-lo", 0)

	g := NewGossip("")
	o := NewOrchestrator(h.info.ID, FetchOptions{
		Batch:             8,
		Timeout:           5 * time.Second,
		MaxPeers:          1,
		MaxUselessBatches: 1 << 20,
		Gossip:            g,
		Dial:              h.pn.dial,
	})
	run := h.runAsync(o, first)
	if _, err := o.WaitInfo(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Two mentions for cand-hi, one for cand-lo: both defer (the slot is
	// taken), cand-hi outranks.
	g.Learn(ad(h.info.ID, hi))
	g.Learn(ad(h.info.ID, hi))
	g.Learn(ad(h.info.ID, lo))
	h.await("candidates deferred, not admitted", 2*time.Second, func() bool {
		o.mu.Lock()
		defer o.mu.Unlock()
		return len(o.candidates) == 2 && len(o.sessions) == 1
	})

	if !o.DropPeer(first) {
		t.Fatal("live peer not found")
	}
	// Latch on the cumulative session table, not the live one: the
	// promoted transfer can complete inside a single poll interval, and
	// a finished session has already left Sessions().
	h.await("best candidate promoted", 2*time.Second, func() bool {
		o.mu.Lock()
		defer o.mu.Unlock()
		for _, st := range o.stats {
			if st.Addr == hi {
				return true
			}
		}
		return false
	})

	res := run.wait(t)
	h.verify(res)
	byAddr := make(map[string]PeerStats)
	for _, p := range res.Peers {
		byAddr[p.Addr] = p
	}
	if st, ok := byAddr[hi]; !ok || !st.Discovered {
		t.Fatalf("promoted candidate not marked Discovered: %+v", byAddr)
	}
	if st, ok := byAddr[hi]; !ok || st.UsefulSymbols == 0 {
		t.Fatalf("promoted candidate contributed nothing: %+v", st)
	}
	if _, ok := byAddr[lo]; ok {
		t.Fatalf("lower-ranked candidate admitted without a free slot: %+v", byAddr)
	}
}

// TestDiscoveredPeerAdmittedBelowCap pins immediate admission: while
// the engine has free MaxPeers slots, a learned advertisement becomes a
// session without waiting in the pool.
func TestDiscoveredPeerAdmittedBelowCap(t *testing.T) {
	h := newHarness(t, 100, 48)
	first := h.addPartial("first", 30, 3)
	full := h.addFull("found", 0)

	g := NewGossip("")
	o := NewOrchestrator(h.info.ID, FetchOptions{
		Batch:             8,
		Timeout:           5 * time.Second,
		MaxPeers:          4,
		MaxUselessBatches: 1 << 20,
		Gossip:            g,
		Dial:              h.pn.dial,
	})
	run := h.runAsync(o, first)
	if _, err := o.WaitInfo(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.Learn(ad(h.info.ID, full))
	res := run.wait(t)
	h.verify(res)
	foundIt := false
	for _, p := range res.Peers {
		if p.Addr == full && p.Discovered {
			foundIt = true
		}
	}
	if !foundIt {
		t.Fatalf("advertised peer not admitted: %+v", res.Peers)
	}

	// Post-completion discoveries are ignored cleanly.
	if o.considerDiscovered(ad(h.info.ID, "late:1")) {
		t.Fatal("admission after completion")
	}
}

// TestConsiderDiscoveredRejectsJunk pins the admission filters: wrong
// content, self address, duplicates of live or attempted sessions.
func TestConsiderDiscoveredRejectsJunk(t *testing.T) {
	h := newHarness(t, 100, 48)
	first := h.addPartial("first", 30, 3)
	g := NewGossip("self:1")
	o := NewOrchestrator(h.info.ID, FetchOptions{
		Batch:             8,
		Timeout:           5 * time.Second,
		MaxUselessBatches: 1 << 20,
		AdvertiseAddr:     "self:1",
		Gossip:            g,
		Dial:              h.pn.dial,
	})
	run := h.runAsync(o, first)
	if _, err := o.WaitInfo(context.Background()); err != nil {
		t.Fatal(err)
	}
	if o.considerDiscovered(ad(h.info.ID+1, "wrong-content:1")) {
		t.Fatal("admitted wrong content id")
	}
	if o.considerDiscovered(ad(h.info.ID, "self:1")) {
		t.Fatal("admitted own address")
	}
	if o.considerDiscovered(ad(h.info.ID, first)) {
		t.Fatal("admitted already-live address")
	}
	o.finish() // cancel the open-ended transfer
	run.waitErr()
}

// TestGossipExpire is the liveness-hygiene table: entries older than
// maxAge are swept, re-mentions refresh an entry's clock, and expired
// addresses re-enter the directory (and re-announce to subscribers) at
// their next mention.
func TestGossipExpire(t *testing.T) {
	base := time.Unix(1000, 0)
	cases := []struct {
		name        string
		ages        map[string]time.Duration // address → time since last heard
		refresh     []string                 // re-mentioned at sweep time (age 0)
		maxAge      time.Duration
		wantDropped int
		wantKept    []string
	}{
		{
			name:        "all fresh",
			ages:        map[string]time.Duration{"a:1": time.Second, "b:1": 2 * time.Second},
			maxAge:      time.Minute,
			wantDropped: 0,
			wantKept:    []string{"a:1", "b:1"},
		},
		{
			name:        "stale swept, fresh kept",
			ages:        map[string]time.Duration{"a:1": 2 * time.Minute, "b:1": time.Second},
			maxAge:      time.Minute,
			wantDropped: 1,
			wantKept:    []string{"b:1"},
		},
		{
			name:        "exact boundary survives",
			ages:        map[string]time.Duration{"a:1": time.Minute},
			maxAge:      time.Minute,
			wantDropped: 0,
			wantKept:    []string{"a:1"},
		},
		{
			name:        "re-mention rescues a stale entry",
			ages:        map[string]time.Duration{"a:1": 2 * time.Minute, "b:1": 2 * time.Minute},
			refresh:     []string{"a:1"},
			maxAge:      time.Minute,
			wantDropped: 1,
			wantKept:    []string{"a:1"},
		},
		{
			name:        "zero maxAge is a no-op",
			ages:        map[string]time.Duration{"a:1": 24 * time.Hour},
			maxAge:      0,
			wantDropped: 0,
			wantKept:    []string{"a:1"},
		},
		{
			name:        "everything stale",
			ages:        map[string]time.Duration{"a:1": time.Hour, "b:1": time.Hour, "c:1": time.Hour},
			maxAge:      time.Minute,
			wantDropped: 3,
			wantKept:    nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := NewGossip("me:1")
			now := base
			g.now = func() time.Time { return now }
			for addr, age := range c.ages {
				now = base.Add(-age)
				if !g.Learn(ad(7, addr)) {
					t.Fatalf("seeding %s failed", addr)
				}
			}
			now = base
			for _, addr := range c.refresh {
				if g.Learn(ad(7, addr)) {
					t.Fatalf("refresh of %s reported as new", addr)
				}
			}
			if got := g.Expire(c.maxAge); got != c.wantDropped {
				t.Fatalf("Expire dropped %d, want %d", got, c.wantDropped)
			}
			if g.Len() != len(c.wantKept) {
				t.Fatalf("%d entries kept, want %d", g.Len(), len(c.wantKept))
			}
			for _, addr := range c.wantKept {
				if g.hitCount(ad(7, addr)) == 0 {
					t.Fatalf("kept entry %s missing after sweep", addr)
				}
			}
		})
	}
}

// TestGossipExpiredAddressRediscovers pins the round trip: after a
// sweep the address is new again — Learn reports it and subscribers
// (the orchestrator admission path in production) hear it a second
// time.
func TestGossipExpiredAddressRediscovers(t *testing.T) {
	g := NewGossip("me:1")
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }
	announced := 0
	g.subscribe(func(protocol.PeerAd) { announced++ })
	g.Learn(ad(7, "a:1"))
	now = now.Add(time.Hour)
	if g.Expire(time.Minute) != 1 {
		t.Fatal("stale entry not swept")
	}
	if !g.Learn(ad(7, "a:1")) {
		t.Fatal("expired address not re-learnable")
	}
	if announced != 2 {
		t.Fatalf("subscriber heard %d announcements, want 2", announced)
	}
}
