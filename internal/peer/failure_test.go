package peer

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"icd/internal/protocol"
)

// hostileServer speaks just enough protocol to pass the handshake, then
// emits a corrupt frame — failure injection for the client's integrity
// checking.
func hostileServer(t *testing.T, info ContentInfo) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.SetDeadline(time.Now().Add(5 * time.Second))
				if _, err := protocol.ReadFrame(c); err != nil {
					return
				}
				protocol.WriteFrame(c, protocol.EncodeHello(info.hello(true, 0)))
				// Await the first request, then send a frame whose CRC is
				// wrong.
				if _, err := protocol.ReadFrame(c); err != nil {
					return
				}
				var buf bytes.Buffer
				protocol.WriteFrame(&buf, protocol.EncodeSymbol(protocol.Symbol{ID: 1, Data: []byte{1, 2, 3}}))
				raw := buf.Bytes()
				raw[len(raw)-1] ^= 0xFF // corrupt the checksum
				c.Write(raw)
				// Keep the connection open; the client must bail on its own.
				time.Sleep(2 * time.Second)
			}(conn)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

func TestFetchSurvivesCorruptPeer(t *testing.T) {
	info, data := testContent(t, 80, 32)
	good, err := NewFullServer(info, data)
	if err != nil {
		t.Fatal(err)
	}
	goodAddr := startServer(t, good)
	badAddr := hostileServer(t, info)

	res, err := Fetch([]string{badAddr, goodAddr}, info.ID, FetchOptions{
		Batch: 16, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("fetch failed despite a healthy peer: %v", err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("content mismatch")
	}
	// The corrupt peer must be recorded as failed.
	var sawError bool
	for _, p := range res.Peers {
		if p.Addr == badAddr && p.Err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("corrupt peer not reported")
	}
}

// truncatingServer closes the connection mid-frame to exercise short-read
// handling.
func truncatingServer(t *testing.T, info ContentInfo) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		protocol.ReadFrame(conn)
		protocol.WriteFrame(conn, protocol.EncodeHello(info.hello(true, 0)))
		protocol.ReadFrame(conn)
		// Announce a 1KB symbol frame but send only the header.
		var hdr [8]byte
		binary.LittleEndian.PutUint16(hdr[0:], 0x1CD0)
		hdr[2] = protocol.Version
		hdr[3] = byte(protocol.TypeSymbol)
		binary.LittleEndian.PutUint32(hdr[4:], 1024)
		conn.Write(hdr[:])
		// Then hang up.
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func TestFetchSurvivesTruncatingPeer(t *testing.T) {
	info, data := testContent(t, 80, 32)
	good, err := NewFullServer(info, data)
	if err != nil {
		t.Fatal(err)
	}
	goodAddr := startServer(t, good)
	badAddr := truncatingServer(t, info)

	res, err := Fetch([]string{badAddr, goodAddr}, info.ID, FetchOptions{
		Batch: 16, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("fetch failed despite a healthy peer: %v", err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("content mismatch")
	}
}

func TestFetchInconsistentMetadataRejected(t *testing.T) {
	// Two servers claiming the same content id but different geometry:
	// the client must reject the second handshake rather than mix
	// decoders.
	infoA, dataA := testContent(t, 80, 32)
	infoB := infoA
	infoB.NumBlocks = 40
	infoB.OrigLen = 40*32 - 5
	dataB := dataA[:infoB.OrigLen]

	s1, err := NewFullServer(infoA, dataA)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewFullServer(infoB, dataB)
	if err != nil {
		t.Fatal(err)
	}
	addr1 := startServer(t, s1)
	addr2 := startServer(t, s2)

	res, err := Fetch([]string{addr1, addr2}, infoA.ID, FetchOptions{
		Batch: 8, Timeout: 5 * time.Second,
	})
	if err != nil {
		// Acceptable: the mismatch surfaced as a fetch error.
		return
	}
	// Or the download completed from one geometry with the other peer
	// errored out — but never silently mixed.
	mismatchReported := false
	for _, p := range res.Peers {
		if p.Err != nil {
			mismatchReported = true
		}
	}
	if !mismatchReported {
		t.Fatal("inconsistent metadata accepted silently")
	}
	if res.Completed && !bytes.Equal(res.Data, dataA) && !bytes.Equal(res.Data, dataB) {
		t.Fatal("mixed-geometry decode produced garbage")
	}
}
