package peer

import (
	"bytes"
	"testing"
	"time"
)

// TestTwoHopRelay exercises the CDN pattern of §1: a relay node fetches
// part of the content from the origin, then acts as a partial sender for
// a downstream node — which completes the file by combining the relay
// with the origin. The relay's working set is exactly the Held state of
// its own fetch: no re-encoding from source blocks is needed because
// encoded symbols are relayable as-is.
func TestTwoHopRelay(t *testing.T) {
	info, data := testContent(t, 100, 48)
	origin, err := NewFullServer(info, data)
	if err != nil {
		t.Fatal(err)
	}
	originAddr := startServer(t, origin)

	// Hop 1: the relay downloads the full file from the origin.
	relayFetch, err := Fetch([]string{originAddr}, info.ID, FetchOptions{
		Batch: 32, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(relayFetch.Data, data) {
		t.Fatal("relay fetch mismatch")
	}

	// The relay serves its received encoded symbols as a partial sender
	// (it could also re-encode, having decoded; serving the working set
	// directly is the §5.4 partial-content path).
	relay, err := NewPartialServer(info, relayFetch.Held)
	if err != nil {
		t.Fatal(err)
	}
	relayAddr := startServer(t, relay)

	// Hop 2: a downstream node fetches from the relay alone. The relay
	// holds (1+ε)n ≈ 107+ distinct symbols — decodable by itself.
	downstream, err := Fetch([]string{relayAddr}, info.ID, FetchOptions{
		Batch: 32, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("downstream fetch from relay: %v", err)
	}
	if !bytes.Equal(downstream.Data, data) {
		t.Fatal("downstream content mismatch")
	}
	if downstream.Peers[0].Full {
		t.Fatal("relay should present as a partial sender")
	}
}

// TestRelayChainThreeHops pushes the relay pattern one hop further.
func TestRelayChainThreeHops(t *testing.T) {
	info, data := testContent(t, 80, 32)
	origin, err := NewFullServer(info, data)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, origin)

	for hop := 0; hop < 3; hop++ {
		res, err := Fetch([]string{addr}, info.ID, FetchOptions{
			Batch: 32, Timeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if !bytes.Equal(res.Data, data) {
			t.Fatalf("hop %d: content mismatch", hop)
		}
		next, err := NewPartialServer(info, res.Held)
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		addr = startServer(t, next)
	}
}
