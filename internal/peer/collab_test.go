package peer

// collab_test.go demonstrates the paper's Figure 1(c) on the real
// engine: two partial peers with complementary working sets exchange
// content in both directions while trickle-downloading the remainder
// from a rate-limited source, completing with measurably fewer source
// transmissions than download-only sessions. It also pins the v3
// summary negotiation end-to-end (different methods for small vs large
// working sets) and the clean cross-version handshake failure.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"sync"
	"testing"
	"time"

	"icd/internal/fountain"
	"icd/internal/protocol"
)

// orderedSymbols encodes `count` distinct symbols as an ordered slice so
// tests can carve overlapping working sets by index range.
type idSym struct {
	id   uint64
	data []byte
}

func orderedSymbols(t testing.TB, info ContentInfo, data []byte, count int, seed uint64) []idSym {
	t.Helper()
	blocks, _, err := fountain.SplitIntoBlocks(data, info.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	code, err := fountain.NewCode(info.NumBlocks, nil, info.CodeSeed)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := fountain.NewEncoder(code, blocks, seed)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, count)
	out := make([]idSym, 0, count)
	for len(out) < count {
		sym := enc.Next()
		if !seen[sym.ID] {
			seen[sym.ID] = true
			out = append(out, idSym{id: sym.ID, data: append([]byte(nil), sym.Data...)})
		}
		enc.Release(sym)
	}
	return out
}

func symbolMap(syms []idSym) map[uint64][]byte {
	m := make(map[uint64][]byte, len(syms))
	for _, s := range syms {
		m[s.id] = s.data
	}
	return m
}

// slowConn throttles reads — the rate-limited origin link of Figure 1.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Read(p)
}

// collabNode runs one collaborating peer: an orchestrator seeded with
// its initial working set, fetching from the throttled source and from
// its partner (live or static).
type collabOutcome struct {
	res *FetchResult
	err error
}

func runNode(o *Orchestrator, addrs []string, done chan<- collabOutcome) {
	res, err := o.Run(context.Background(), addrs...)
	done <- collabOutcome{res, err}
}

// sourceSymbols totals symbols received from the source address.
func sourceSymbols(res *FetchResult, sourceAddr string) int {
	total := 0
	for _, p := range res.Peers {
		if p.Addr == sourceAddr {
			total += p.SymbolsReceived
		}
	}
	return total
}

func collabOptions(pn *pipeNet) FetchOptions {
	return FetchOptions{
		Batch:             8,
		Timeout:           10 * time.Second,
		MaxUselessBatches: 1 << 20, // partners poll while the source trickles
		RefreshBatches:    2,       // re-inform partners aggressively
		RefreshGrowth:     0.02,
		Dial:              pn.dial,
	}
}

func TestCollaborativeExchangeBeatsDownloadOnly(t *testing.T) {
	const (
		nBlocks   = 160
		blockSize = 64
		pool      = 150 // union of the two working sets: < n, so the source is needed
		half      = 90  // each node's initial share (overlap 2*90-150 = 30)
	)
	info, data := testContent(t, nBlocks, blockSize)
	syms := orderedSymbols(t, info, data, pool, 21)
	setA := symbolMap(syms[:half])
	setB := symbolMap(syms[pool-half:])

	newSource := func(t *testing.T) *Server {
		srv, err := NewFullServer(info, data)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	throttle := func(pn *pipeNet, addr string) {
		pn.wrapAll(addr, func(c net.Conn) net.Conn { return &slowConn{Conn: c, delay: time.Millisecond} })
	}

	// --- download-only baseline: partners serve static initial sets ---
	basePN := newPipeNet()
	baseSource := basePN.add("S", newSource(t))
	throttle(basePN, baseSource)
	staticA, err := NewPartialServer(info, setA)
	if err != nil {
		t.Fatal(err)
	}
	staticB, err := NewPartialServer(info, setB)
	if err != nil {
		t.Fatal(err)
	}
	basePN.add("A", staticA)
	basePN.add("B", staticB)

	baseOpts := collabOptions(basePN)
	optsA := baseOpts
	optsA.Initial = setA
	optsB := baseOpts
	optsB.Initial = setB
	baseStart := time.Now()
	chA := make(chan collabOutcome, 1)
	chB := make(chan collabOutcome, 1)
	go runNode(NewOrchestrator(info.ID, optsA), []string{baseSource, "B"}, chA)
	go runNode(NewOrchestrator(info.ID, optsB), []string{baseSource, "A"}, chB)
	baseA, baseB := <-chA, <-chB
	baseElapsed := time.Since(baseStart)
	if baseA.err != nil || baseB.err != nil {
		t.Fatalf("download-only baseline failed: %v / %v", baseA.err, baseB.err)
	}
	if !bytes.Equal(baseA.res.Data, data) || !bytes.Equal(baseB.res.Data, data) {
		t.Fatal("baseline content mismatch")
	}
	baseS := sourceSymbols(baseA.res, baseSource) + sourceSymbols(baseB.res, baseSource)

	// --- collaborative: partners serve their *live* working sets ---
	colPN := newPipeNet()
	colSource := colPN.add("S", newSource(t))
	throttle(colPN, colSource)
	colOpts := collabOptions(colPN)
	colOptsA := colOpts
	colOptsA.Initial = setA
	colOptsB := colOpts
	colOptsB.Initial = setB
	oa := NewOrchestrator(info.ID, colOptsA)
	ob := NewOrchestrator(info.ID, colOptsB)
	liveA, err := NewLiveServer(info, oa)
	if err != nil {
		t.Fatal(err)
	}
	liveB, err := NewLiveServer(info, ob)
	if err != nil {
		t.Fatal(err)
	}
	colPN.add("A", liveA)
	colPN.add("B", liveB)

	colStart := time.Now()
	go runNode(oa, []string{colSource, "B"}, chA)
	go runNode(ob, []string{colSource, "A"}, chB)
	colA, colB := <-chA, <-chB
	colElapsed := time.Since(colStart)
	if colA.err != nil || colB.err != nil {
		t.Fatalf("collaborative run failed: %v / %v", colA.err, colB.err)
	}
	if !bytes.Equal(colA.res.Data, data) || !bytes.Equal(colB.res.Data, data) {
		t.Fatal("collaborative content mismatch")
	}
	colS := sourceSymbols(colA.res, colSource) + sourceSymbols(colB.res, colSource)

	t.Logf("source symbols: download-only=%d collaborative=%d; wall clock: %v vs %v",
		baseS, colS, baseElapsed, colElapsed)
	// The collaborative pair relays the throttled source's symbols to
	// each other, so each source transmission serves both nodes; with
	// the source the bottleneck, fewer source symbols ⇒ faster finish.
	if colS >= baseS {
		t.Fatalf("collaboration saved nothing at the source: %d vs %d", colS, baseS)
	}
	if float64(colS) > 0.9*float64(baseS) {
		t.Errorf("collaboration saved less than 10%% at the source: %d vs %d", colS, baseS)
	}
}

func TestSummaryNegotiationEndToEnd(t *testing.T) {
	// Small working sets negotiate a Bloom filter.
	t.Run("small=bloom", func(t *testing.T) {
		info, data := testContent(t, 100, 32)
		syms := orderedSymbols(t, info, data, 140, 5)
		sender, err := NewPartialServer(info, symbolMap(syms))
		if err != nil {
			t.Fatal(err)
		}
		pn := newPipeNet()
		addr := pn.add("p", sender)
		res, err := Fetch([]string{addr}, info.ID, FetchOptions{
			Batch: 16, Timeout: 5 * time.Second,
			Initial: symbolMap(syms[:60]), Dial: pn.dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Data, data) {
			t.Fatal("content mismatch")
		}
		if res.Peers[0].Summary != "bloom" {
			t.Fatalf("negotiated %q, want bloom", res.Peers[0].Summary)
		}
	})

	// Large, similar working sets negotiate an ART.
	t.Run("large-similar=art", func(t *testing.T) {
		info, data := testContent(t, 64, 8)
		syms := orderedSymbols(t, info, data, 6400, 6)
		sender, err := NewPartialServer(info, symbolMap(syms))
		if err != nil {
			t.Fatal(err)
		}
		pn := newPipeNet()
		addr := pn.add("p", sender)
		res, err := Fetch([]string{addr}, info.ID, FetchOptions{
			Batch: 16, Timeout: 5 * time.Second,
			Initial: symbolMap(syms[:6000]), Dial: pn.dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Peers[0].Summary != "art" {
			t.Fatalf("negotiated %q, want art", res.Peers[0].Summary)
		}
		if !res.Completed {
			t.Fatal("transfer incomplete")
		}
	})

	// Large, dissimilar working sets negotiate a min-wise sketch.
	t.Run("large-dissimilar=sketch", func(t *testing.T) {
		info, data := testContent(t, 64, 8)
		syms := orderedSymbols(t, info, data, 7500, 7)
		sender, err := NewPartialServer(info, symbolMap(syms[:1500]))
		if err != nil {
			t.Fatal(err)
		}
		pn := newPipeNet()
		addr := pn.add("p", sender)
		res, err := Fetch([]string{addr}, info.ID, FetchOptions{
			Batch: 16, Timeout: 5 * time.Second,
			Initial: symbolMap(syms[1500:]), Dial: pn.dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Peers[0].Summary != "sketch" {
			t.Fatalf("negotiated %q, want sketch", res.Peers[0].Summary)
		}
		if !res.Completed {
			t.Fatal("transfer incomplete")
		}
	})
}

// frameV2 hand-crafts a version-2 frame (the previous wire version) to
// simulate an old peer.
func frameV2(t protocol.Type, payload []byte) []byte {
	buf := make([]byte, 0, 8+len(payload)+4)
	buf = append(buf, 0xD0, 0x1C, 2, byte(t),
		byte(len(payload)), byte(len(payload)>>8), byte(len(payload)>>16), byte(len(payload)>>24))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[3:])
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], crc)
	return append(buf, cb[:]...)
}

func TestCrossVersionHandshakeFailsCleanly(t *testing.T) {
	info, data := testContent(t, 50, 16)

	t.Run("new client, old server", func(t *testing.T) {
		// A "v2 server" answers any hello with a v2-framed response; the
		// client must fail with a version error, not a corruption panic
		// or a hang.
		dial := func(string) (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				buf := make([]byte, 256)
				server.SetDeadline(time.Now().Add(5 * time.Second))
				if _, err := server.Read(buf); err != nil {
					return
				}
				server.Write(frameV2(protocol.TypeDone, nil))
			}()
			return client, nil
		}
		_, err := Fetch([]string{"old"}, info.ID, FetchOptions{
			Timeout: 5 * time.Second, Dial: dial,
		})
		if err == nil {
			t.Fatal("cross-version fetch succeeded?!")
		}
		if !errors.Is(err, protocol.ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion in the chain", err)
		}
	})

	t.Run("old client, new server", func(t *testing.T) {
		srv, err := NewFullServer(info, data)
		if err != nil {
			t.Fatal(err)
		}
		client, server := net.Pipe()
		defer client.Close()
		var wg sync.WaitGroup
		wg.Add(1)
		var serveErr error
		go func() {
			defer wg.Done()
			serveErr = srv.ServeConn(server)
			server.Close()
		}()
		// A v2 client's 41-byte HELLO, written from a goroutine: the
		// server bails at the 8-byte header, and net.Pipe (unlike a TCP
		// socket buffer) would otherwise deadlock the unread remainder
		// against the server's ERROR answer.
		client.SetDeadline(time.Now().Add(5 * time.Second))
		go client.Write(frameV2(protocol.TypeHello, make([]byte, 41)))
		// The server answers with a clean (v3-framed) ERROR naming the
		// version problem, then hangs up.
		f, err := protocol.ReadFrame(client)
		if err != nil {
			t.Fatalf("no clean error answer: %v", err)
		}
		if f.Type != protocol.TypeError {
			t.Fatalf("got %v, want ERROR", f.Type)
		}
		msg, _ := protocol.DecodeError(f)
		if msg == "" {
			t.Fatal("empty error message")
		}
		wg.Wait()
		if serveErr == nil || !errors.Is(serveErr, protocol.ErrVersion) {
			t.Fatalf("server error = %v, want ErrVersion", serveErr)
		}
	})
}

func TestNegativeSummaryMaskDisablesSummaries(t *testing.T) {
	// The blind-streaming baseline: a negative mask means "never send a
	// summary", even though the receiver holds symbols it could report.
	info, data := testContent(t, 100, 32)
	syms := orderedSymbols(t, info, data, 140, 8)
	sender, err := NewPartialServer(info, symbolMap(syms))
	if err != nil {
		t.Fatal(err)
	}
	pn := newPipeNet()
	addr := pn.add("p", sender)
	res, err := Fetch([]string{addr}, info.ID, FetchOptions{
		Batch: 16, Timeout: 5 * time.Second,
		Initial:     symbolMap(syms[:60]),
		SummaryMask: -1,
		Dial:        pn.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("content mismatch")
	}
	if res.Peers[0].Summary != "" {
		t.Fatalf("summary %q sent despite a negative mask", res.Peers[0].Summary)
	}
}
