// Package peer is the prototype implementation of informed content
// delivery (§6): real senders and receivers speaking the
// internal/protocol wire format over TCP (or any net.Conn, including
// net.Pipe in tests).
//
// A Server offers one piece of content, either as a *full* sender — a
// digital fountain streaming fresh encoded symbols — or as a *partial*
// sender holding an arbitrary working set of encoded symbols, which it
// serves as recoded symbols blended over the subset the receiver's Bloom
// filter reports missing (§5.2 + §5.4.2: reconciled, informed transfers).
//
// A receiver uses Fetch to download from any mix of full and partial
// senders in parallel; symbols from all connections feed one decoder, so
// flows are additive (§2.3), connections may drop and resume statelessly,
// and partially downloaded state can be carried into a later Fetch —
// the §2.3 "fully stateless connection migrations".
//
// # Failure model
//
// The engine assumes a hostile network: connections stall, die
// mid-frame, deliver corrupted bytes, or belong to peers that never
// send anything useful. Every defense is attributable — misbehavior is
// charged to an address, and repeated misbehavior removes the address
// from the swarm:
//
//   - Deadlines. Every server read and write carries a rolling
//     deadline; sessions apply FetchOptions.Timeout per exchange. A
//     connection that goes quiet is dropped, never waited on forever.
//
//   - Stall watchdog. FetchOptions.StallTimeout arms a per-session
//     watchdog: a connection that stays open but delivers no useful
//     symbols for the window is reset and charged (PenaltyStall).
//
//   - Redial backoff. Dropped sessions redial with bounded, jittered
//     exponential backoff (FetchOptions.ReconnectBackoff /
//     MaxReconnectBackoff, at most MaxReconnects attempts). Terminal
//     protocol verdicts — ErrUnknownContent, protocol.ErrVersion — and
//     a ban verdict short-circuit the budget: no retry can help, so
//     none is made.
//
//   - Circuit breaker. FetchOptions.BreakerThreshold consecutive dial
//     failures open a per-address circuit for BreakerCooldown
//     (doubling per trip, capped); while open, dials are refused
//     locally and only a half-open probe may test the address again.
//
//   - Penalty box. Dial failures, resets, stalls and corrupt frames
//     charge a decaying per-address score (shared via
//     FetchOptions.Penalties / Server.SetPenalties); past
//     DefaultBanScore the address is banned until the score decays.
//     Gossip admission consults the box, so penalized candidates
//     re-enter ranked behind fresh ones and banned addresses are not
//     admitted at all. Servers refuse inbound connections from banned
//     addresses, cap concurrency (SetMaxConns) with a retryable busy
//     ERROR, and charge corrupt inbound frames to the remote host —
//     plus the HELLO's advertised listen address, but only when its
//     host matches the connection's (an unverified advertisement is
//     attacker-controlled: charging it would let any client frame an
//     innocent peer into a ban). The same verified address is
//     ban-checked after the HELLO, so a peer banned under its dialable
//     address is refused inbound too.
//
//   - Explicit refusals. A refused connection is answered with the
//     canonical "refused" ERROR (protocol.ReasonRefused), which the
//     refused client classifies as terminal (ErrRefused) without
//     charging the refuser: a silent refusal reads as a dead peer, and
//     two nodes that each misattributed one environmental fault would
//     charge each other into a permanent mutual ban.
//
// The faultnet package injects exactly these failures (latency,
// bandwidth caps, stalls, mid-frame kills, corruption) beneath the
// dialer, and `icdbench -exp chaos` measures the engine surviving
// them; PeerStats reports the per-session counters (Resets, Stalls,
// CorruptFrames, DialFailures, Banned) the defenses maintain.
package peer
