package peer

// session.go is one connection's state machine: dial → handshake →
// summary negotiation → batched request loop, with reconnect-backoff
// around the whole lifecycle. A session owns nothing shared: it borrows
// receive buffers from the orchestrator's pools and transfers them with
// each delivered symbol, reads global progress through an atomic, and
// reports per-peer statistics that the orchestrator's utility ranking
// consumes. Sessions end in exactly one of four ways: the transfer
// completed (o.done), the peer stopped being useful (MaxUselessBatches),
// the orchestrator dropped them (eviction/DropPeer), or the connection
// failed terminally (after MaxReconnects redials).

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"time"

	"icd/internal/keyset"
	"icd/internal/obs"
	"icd/internal/peermux"
	"icd/internal/prng"
	"icd/internal/protocol"
	"icd/internal/strategy"
)

// link is the transport surface the post-handshake state machines drive
// on the write side: one serialized frame per Write call, plus the
// deadline hook the watchdog fires to unblock a stalled machine. Both a
// net.Conn and a peermux.Channel satisfy it, which is what lets the
// same session (and server) loops run over a dedicated legacy
// connection or a fabric subchannel.
type link interface {
	io.Writer
	SetDeadline(t time.Time) error
}

// ErrUnknownContent marks a session whose peer answered the handshake
// with the canonical unknown-content ERROR (protocol.ReasonUnknownContent):
// the address is alive but does not serve this content id, so redialing
// it is pointless — the session fails terminally without retries, and a
// scheduler can write the peer off for this content while still using
// it for others.
var ErrUnknownContent = errors.New("peer: peer does not serve this content")

// ErrRefused marks a session whose peer explicitly declined to serve us
// (protocol.ReasonRefused — our address sits in its penalty box).
// Terminal and never charged back: redialing cannot change the verdict
// before it decays on the refuser's side, and penalizing an explicit
// refusal would let two nodes that each misattributed one environmental
// fault escalate into banning each other permanently.
var ErrRefused = errors.New("peer: peer refused to serve us")

type session struct {
	o     *Orchestrator
	addr  string
	stats *PeerStats
	drop  chan struct{} // closed (under o.mu) to evict this session
	rng   *prng.Rand    // backoff jitter (session goroutine only)

	// Guarded by o.mu: when the session joined the swarm. Utility is
	// measured over the whole session life — downtime between redials
	// counts against a flapping peer's ranking, deliberately.
	startedAt time.Time
	// Guarded by o.mu: whether any dial of this session ever produced a
	// connection — the requeue path only reconsiders addresses that were
	// never reached at all.
	connected bool
	// Guarded by o.mu: set by the watchdog when it reset the current
	// connection over a stalled window; runConn consumes it to skip the
	// generic reset charge (the watchdog already charged PenaltyStall).
	stalled bool
	// Session goroutine only: the peer rejected the fabric handshake's
	// version byte, so this session speaks legacy-framed dedicated
	// connections instead (set once; redials skip the fabric).
	legacy bool
}

func newSession(o *Orchestrator, addr string) *session {
	// Seed the jitter stream from the address so swarms are reproducible
	// under a fixed BloomSeed, yet sessions to different peers (and
	// different nodes dialing the same peer) stay decorrelated.
	h := fnv.New64a()
	h.Write([]byte(addr))
	return &session{
		o:         o,
		addr:      addr,
		stats:     &PeerStats{Addr: addr},
		drop:      make(chan struct{}),
		rng:       prng.New(h.Sum64() ^ o.opts.BloomSeed),
		startedAt: time.Now(),
	}
}

// terminalSessionError reports errors no redial can fix: the peer is
// healthy but speaks an incompatible protocol version, does not hold
// this content, or refuses to serve us. All short-circuit the
// reconnect-backoff budget (and, via runConn, are never charged).
func terminalSessionError(err error) bool {
	return errors.Is(err, ErrUnknownContent) || errors.Is(err, ErrRefused) ||
		errors.Is(err, protocol.ErrVersion) || errors.Is(err, ErrPipelineDepth)
}

// dropLocked marks the session evicted and interrupts its connection.
// Callers hold o.mu (close-under-lock keeps it single-shot).
func (s *session) dropLocked() {
	select {
	case <-s.drop:
	default:
		s.stats.Evicted = true
		close(s.drop)
	}
}

// dropNow is dropLocked for callers not holding o.mu.
func (s *session) dropNow() {
	s.o.mu.Lock()
	s.dropLocked()
	s.o.mu.Unlock()
}

func (s *session) dropped() bool {
	select {
	case <-s.drop:
		return true
	default:
		return false
	}
}

// utilityLocked is the ranking score: useful symbols per second of
// session life (since the session joined, not since the last redial —
// a flapping peer must not out-rank a steady one). Callers hold o.mu.
func (s *session) utilityLocked() float64 {
	elapsed := time.Since(s.startedAt).Seconds()
	if elapsed < 1e-3 {
		elapsed = 1e-3
	}
	return float64(s.stats.UsefulSymbols) / elapsed
}

// run is the session goroutine: one connection lifecycle per iteration,
// with jittered, capped exponential backoff between redials.
func (s *session) run() {
	defer s.o.sessionExited(s)
	opts := &s.o.opts
	var terminal error
	for attempt := 0; ; attempt++ {
		err := s.runConn()
		if err == nil {
			break // clean end: completed, exhausted, or dropped
		}
		if s.dropped() {
			// A deliberate drop unblocks the connection by expiring its
			// deadline, so the i/o error that unwound runConn is
			// self-inflicted — not a peer failure worth reporting.
			break
		}
		if terminalSessionError(err) {
			// The peer is healthy — it just cannot serve us this content
			// (wrong protocol version, or it does not hold the content).
			// Redialing cannot change that answer.
			terminal = err
			break
		}
		if s.o.penalties.Banned(s.addr) {
			// The address crossed the ban threshold (this session's own
			// charges, other sessions', or the server plane's): containment
			// means not spending the rest of the redial budget on it.
			terminal = err
			break
		}
		if attempt >= opts.MaxReconnects {
			terminal = err
			break
		}
		delay := redialDelay(attempt, opts.ReconnectBackoff, opts.MaxReconnectBackoff, s.rng.Float64())
		if !s.sleepBackoff(delay) {
			// Interrupted mid-backoff. An eviction makes the pending
			// error self-inflicted noise (same as a drop mid-read);
			// the transfer ending keeps it, as the last real failure.
			if !s.dropped() {
				terminal = err
			}
			break
		}
		s.o.mu.Lock()
		s.stats.Reconnects++
		s.o.mu.Unlock()
		s.o.met.redials.Inc()
		s.o.trace(obs.EvRedial, s.addr, "")
	}
	banned := s.o.penalties.Banned(s.addr)
	s.o.mu.Lock()
	s.stats.Err = terminal
	s.stats.Utility = s.utilityLocked()
	s.stats.Banned = banned
	s.o.mu.Unlock()
	if banned {
		s.o.met.bans.Inc()
		s.o.trace(obs.EvBan, s.addr, "")
	}
}

// sleepBackoff waits out a redial delay, interruptible by the transfer
// ending or this session being dropped.
func (s *session) sleepBackoff(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.o.done:
		return false
	case <-s.drop:
		return false
	}
}

// ended reports whether the session should wind down (transfer done or
// session dropped).
func (s *session) ended() bool {
	select {
	case <-s.o.done:
		return true
	case <-s.drop:
		return true
	default:
		return false
	}
}

// runConn runs one connection lifecycle: dial (through the circuit
// breaker), serve, and classify how it ended — misbehavior observed on
// the wire (corrupt frames, mid-stream resets) charges the peer's
// penalty-box score on the way out. With a fabric configured the
// session rides a subchannel on the shared wire; a peer that rejects
// the fabric handshake's version byte demotes the session permanently
// to dedicated legacy-framed connections (incremental deployment: a v5
// node still exchanges symbols with a v4 swarm, minus multiplexing).
func (s *session) runConn() error {
	if s.o.opts.Fabric != nil && !s.legacy {
		err := s.runFabricConn()
		if err == nil || !errors.Is(err, protocol.ErrVersion) {
			return err
		}
		s.legacy = true
	}
	err := s.runDedicatedConn()
	if err != nil && !s.legacy && errors.Is(err, protocol.ErrVersion) {
		// The peer's reader rejected our current-version frames: retry
		// once speaking the legacy framing it does accept. A peer older
		// than that rejects the retry too, which ends the session
		// terminally (ErrVersion, no penalty — age is not misbehavior).
		s.legacy = true
		err = s.runDedicatedConn()
	}
	return err
}

// runDedicatedConn dials and serves one dedicated (non-multiplexed)
// connection, speaking the legacy framing when the session has been
// demoted to it.
func (s *session) runDedicatedConn() error {
	conn, err := s.dialConn()
	if err != nil {
		return err
	}
	defer conn.Close()
	if s.legacy {
		// Stamp every frame we send with the legacy version byte the
		// peer's reader accepts; its legacy frames already parse here.
		conn = &legacyConn{Conn: conn, w: protocol.LegacyWriter(conn)}
	}
	err = s.serveConn(conn)
	if stalled := s.takeStalled(); err != nil && !stalled && !s.dropped() && !terminalSessionError(err) {
		s.noteConnError(err)
	}
	return err
}

// runFabricConn is runConn over the connection fabric: instead of
// dialing a dedicated connection, the session opens a subchannel on the
// shared per-peer wire (the fabric dials the wire only if none is
// live). The channel negotiation doubles as the content handshake — the
// OPEN carries our HELLO, the ACCEPT carries the peer's.
func (s *session) runFabricConn() error {
	ch, held, heldVersion, err := s.openChannel()
	if err != nil {
		return err
	}
	defer ch.Close()
	err = s.serveChannel(ch, held, heldVersion)
	if stalled := s.takeStalled(); err != nil && !stalled && !s.dropped() && !terminalSessionError(err) {
		s.noteConnError(err)
	}
	return err
}

// openChannel opens this session's subchannel with circuit-breaker
// admission and dial accounting (the fabric analog of dialConn), and
// classifies channel rejections into the same terminal errors the
// legacy handshake produces from ERROR frames.
func (s *session) openChannel() (*peermux.Channel, *keyset.Set, int64, error) {
	o := s.o
	if !o.breaker.Allow(s.addr) {
		o.mu.Lock()
		s.stats.DialFailures++
		o.mu.Unlock()
		o.met.dialFailures.Inc()
		return nil, nil, 0, fmt.Errorf("%w: %s", errDialSuppressed, s.addr)
	}
	held, heldVersion := o.heldSnapshot()
	ch, err := o.opts.Fabric.OpenWindow(s.addr, protocol.Hello{
		ContentID:   o.contentID,
		Symbols:     uint64(held.Len()),
		SummaryMask: o.opts.summaryMask(),
		ListenAddr:  o.opts.AdvertiseAddr,
	}, int(o.chanWin.Load()), o.opts.Timeout)
	if err == nil {
		o.breaker.Success(s.addr)
		o.mu.Lock()
		s.connected = true
		o.mu.Unlock()
		o.trace(obs.EvDial, s.addr, "fabric")
		return ch, held, heldVersion, nil
	}
	var rej *peermux.RejectError
	if errors.As(err, &rej) {
		// The wire is up and the peer answered the negotiation: not a
		// dial failure, and possibly a terminal verdict.
		o.breaker.Success(s.addr)
		o.mu.Lock()
		s.connected = true
		o.mu.Unlock()
		msg := rej.Msg
		if protocol.IsUnknownContent(msg) {
			return nil, nil, 0, fmt.Errorf("peer %s: %s: %w", s.addr, msg, ErrUnknownContent)
		}
		if protocol.IsRefused(msg) {
			return nil, nil, 0, fmt.Errorf("peer %s: %s: %w", s.addr, msg, ErrRefused)
		}
		return nil, nil, 0, fmt.Errorf("peer %s: %s", s.addr, msg)
	}
	if errors.Is(err, protocol.ErrVersion) {
		// The dial reached a live peer speaking an incompatible protocol
		// version — terminal, and not the address's fault.
		return nil, nil, 0, fmt.Errorf("peer %s: incompatible protocol: %w", s.addr, err)
	}
	o.breaker.Failure(s.addr)
	o.penalties.Penalize(s.addr, PenaltyDialFail)
	o.mu.Lock()
	s.stats.DialFailures++
	o.mu.Unlock()
	o.met.dialFailures.Inc()
	o.trace(obs.EvDialFail, s.addr, err.Error())
	return nil, nil, 0, err
}

// serveChannel runs the session over an established fabric subchannel:
// the ACCEPT's hello already carries the content parameters, so the
// session goes straight to summary negotiation — with the pipelined
// request ramp enabled (the wire's demux reader absorbs concurrent
// writes, so depth > 1 cannot deadlock the way it would on a bare
// synchronous pipe).
func (s *session) serveChannel(ch *peermux.Channel, held *keyset.Set, heldVersion int64) error {
	o := s.o
	watchStop := make(chan struct{})
	defer close(watchStop)
	go s.watch(ch, watchStop)
	pc, err := NewPipelineController(o.opts.PipelineDepth, o.opts.MaxPipelineDepth, o.opts.PipelineDupHigh)
	if err != nil {
		return err
	}
	// Register the live channel so the scheduler's SetChannelWindow can
	// resize its receive window mid-transfer.
	o.trackChannel(s, ch)
	defer o.untrackChannel(s)
	return s.serveNegotiated(ch, ch.Next, ch.RemoteHello(), held, heldVersion, pc)
}

// takeStalled consumes the watchdog's stall marker for the connection
// that just ended: the watchdog already charged PenaltyStall, so runConn
// must not also charge the self-inflicted i/o error as a reset.
func (s *session) takeStalled() bool {
	s.o.mu.Lock()
	defer s.o.mu.Unlock()
	stalled := s.stalled
	s.stalled = false
	return stalled
}

// errDialSuppressed marks a dial the circuit breaker refused outright —
// the address has failed enough in a row that probing it again before
// its cooldown lapses would only burn the slot's time.
var errDialSuppressed = errors.New("peer: dial suppressed by open circuit breaker")

// dialConn dials the session's address with circuit-breaker admission
// and failure accounting: a refused/timed-out dial trips the breaker
// toward open and charges the penalty box; a success resets the
// address's circuit.
func (s *session) dialConn() (net.Conn, error) {
	o := s.o
	if !o.breaker.Allow(s.addr) {
		o.mu.Lock()
		s.stats.DialFailures++
		o.mu.Unlock()
		o.met.dialFailures.Inc()
		return nil, fmt.Errorf("%w: %s", errDialSuppressed, s.addr)
	}
	conn, err := o.opts.Dial(s.addr)
	if err != nil {
		o.breaker.Failure(s.addr)
		o.penalties.Penalize(s.addr, PenaltyDialFail)
		o.mu.Lock()
		s.stats.DialFailures++
		o.mu.Unlock()
		o.met.dialFailures.Inc()
		o.trace(obs.EvDialFail, s.addr, err.Error())
		return nil, err
	}
	o.breaker.Success(s.addr)
	o.mu.Lock()
	s.connected = true
	o.mu.Unlock()
	o.trace(obs.EvDial, s.addr, "dedicated")
	return conn, nil
}

// noteConnError records how an established connection failed: a corrupt
// frame (protocol.ErrCorrupt) is the strongest misbehavior signal; any
// other mid-stream failure counts as a reset, the churn-weight penalty.
func (s *session) noteConnError(err error) {
	o := s.o
	weight := PenaltyReset
	o.mu.Lock()
	corrupt := errors.Is(err, protocol.ErrCorrupt)
	if corrupt {
		s.stats.CorruptFrames++
		weight = PenaltyCorrupt
	} else {
		s.stats.Resets++
	}
	o.mu.Unlock()
	if corrupt {
		o.met.corrupt.Inc()
	} else {
		o.met.resets.Inc()
	}
	o.penalties.Penalize(s.addr, weight)
}

// watch is the per-connection watchdog goroutine: it unblocks blocked
// reads/writes (by expiring the deadline) when the download completes or
// the session is dropped, and — when FetchOptions.StallTimeout arms it —
// resets the connection after a whole window in which it delivered no
// useful symbols, charging the penalty box. The session itself survives
// to redial: repeated stalls escalate the score to a ban, which is what
// actually removes a mute peer.
func (s *session) watch(lk link, stop chan struct{}) {
	o := s.o
	var tick <-chan time.Time
	if w := o.opts.StallTimeout; w > 0 {
		period := w / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		tick = t.C
	}
	o.mu.Lock()
	lastUseful := s.stats.UsefulSymbols
	o.mu.Unlock()
	lastProgress := time.Now()
	for {
		select {
		case <-o.done:
		case <-s.drop:
		case <-stop:
			return
		case <-tick:
			o.mu.Lock()
			useful := s.stats.UsefulSymbols
			o.mu.Unlock()
			if useful != lastUseful {
				lastUseful, lastProgress = useful, time.Now()
				continue
			}
			if time.Since(lastProgress) < o.opts.StallTimeout {
				continue
			}
			// Stalled: reset the connection (deadline expiry below) and
			// charge the address, but do NOT evict the session. One silent
			// window can be a transient wire artifact — a frame whose
			// corrupted length field parks the reader waiting for a phantom
			// body is indistinguishable from a mute peer until the deadline
			// fires — so the redial budget gets to try again. A genuinely
			// mute peer re-stalls every window and PenaltyStall escalates
			// its score to a ban, which ends the redial loop terminally.
			// The stalled flag tells runConn the charge is already made.
			o.mu.Lock()
			s.stats.Stalls++
			s.stalled = true
			o.mu.Unlock()
			o.met.stalls.Inc()
			o.trace(obs.EvStall, s.addr, "")
			o.penalties.Penalize(s.addr, PenaltyStall)
		}
		lk.SetDeadline(time.Now())
		return
	}
}

// serveConn runs one established connection: handshake, negotiated
// summary, batched request loop with periodic summary refresh. Frames
// are read through a FrameReader (one reusable buffer per connection)
// and symbol payloads travel in pool buffers, so the loop allocates
// nothing per frame except for useful regular symbols, whose buffers
// live on as the stored working-set payloads (an allocation the content
// requires).
func (s *session) serveConn(conn net.Conn) error {
	o := s.o
	watchStop := make(chan struct{})
	defer close(watchStop)
	go s.watch(conn, watchStop)
	deadline := func() { conn.SetDeadline(time.Now().Add(o.opts.Timeout)) }
	deadline()

	held, heldVersion := o.heldSnapshot()
	fr := protocol.NewFrameReader(conn)
	if err := protocol.WriteFrame(conn, protocol.EncodeHello(protocol.Hello{
		ContentID:   o.contentID,
		Symbols:     uint64(held.Len()),
		SummaryMask: o.opts.summaryMask(),
		ListenAddr:  o.opts.AdvertiseAddr,
	})); err != nil {
		return err
	}
	f, err := fr.Next()
	if err != nil {
		if errors.Is(err, protocol.ErrVersion) {
			return fmt.Errorf("peer %s: incompatible protocol: %w", s.addr, err)
		}
		return err
	}
	if f.Type == protocol.TypeError {
		msg, _ := protocol.DecodeError(f)
		if protocol.IsUnknownContent(msg) {
			return fmt.Errorf("peer %s: %s: %w", s.addr, msg, ErrUnknownContent)
		}
		if protocol.IsRefused(msg) {
			return fmt.Errorf("peer %s: %s: %w", s.addr, msg, ErrRefused)
		}
		if protocol.IsVersionReject(msg) {
			// An older peer whose frame reader rejected our version byte
			// and answered in its own framing: terminal, like ErrVersion
			// from our own reader.
			return fmt.Errorf("peer %s: %s: %w", s.addr, msg, protocol.ErrVersion)
		}
		return fmt.Errorf("peer %s: %s", s.addr, msg)
	}
	hello, err := protocol.DecodeHello(f)
	if err != nil {
		return err
	}
	// Dedicated connections ride the same pipelined ramp as fabric
	// subchannels: the frameQueue's pump goroutine keeps draining the
	// conn while the session writes, so pipelined REQUESTs against an
	// in-flight symbol stream no longer deadlock a synchronous pipe.
	// The queue is sized for the deepest ramp's worth of batches (plus
	// DONE and gossip frames) so the pump itself never parks against a
	// server mid-stream.
	pc, err := NewPipelineController(o.opts.PipelineDepth, o.opts.MaxPipelineDepth, o.opts.PipelineDupHigh)
	if err != nil {
		return err
	}
	q := newFrameQueue(fr, o.opts.MaxPipelineDepth*(o.opts.Batch+2)+8)
	defer q.Close()
	return s.serveNegotiated(conn, q.Next, hello, held, heldVersion, pc)
}

// serveNegotiated owns the handshaken session: decoder setup, summary
// negotiation and refresh, gossip, and the pipelined batched request
// loop. It is transport-agnostic — lk/next are either a legacy conn and
// its FrameReader or a fabric subchannel — which is the split that lets
// one state machine serve both wire formats.
func (s *session) serveNegotiated(lk link, next func() (protocol.Frame, error),
	hello protocol.Hello, held *keyset.Set, heldVersion int64, pc *PipelineController) error {
	o := s.o
	deadline := func() { lk.SetDeadline(time.Now().Add(o.opts.Timeout)) }
	deadline()
	if err := o.ensureDecoder(ContentInfo{
		ID:        hello.ContentID,
		NumBlocks: int(hello.NumBlocks),
		BlockSize: int(hello.BlockSize),
		OrigLen:   int(hello.OrigLen),
		CodeSeed:  hello.CodeSeed,
	}); err != nil {
		return err
	}

	// Summary negotiation (§3): pick the method whose accuracy/size
	// trade-off fits both working-set sizes, over the methods both ends
	// support. Full senders stream fresh symbols — nothing to reconcile.
	method := protocol.SummaryNone
	if !hello.FullCopy {
		method = protocol.ChooseSummaryMethod(
			o.opts.summaryMask()&hello.SummaryMask, held.Len(), int(hello.Symbols))
	}
	o.mu.Lock()
	s.stats.Full = hello.FullCopy
	if method != protocol.SummaryNone {
		s.stats.Summary = method.String()
	}
	o.mu.Unlock()
	o.trace(obs.EvHandshake, s.addr, method.String())
	if method != protocol.SummaryNone {
		blob, err := strategy.BuildSummary(method, held, s.summaryConfig())
		if err != nil {
			return err
		}
		if err := protocol.WriteFrame(lk, protocol.EncodeSummary(method, blob, false)); err != nil {
			return err
		}
	}

	// Gossip (v4): advertise what this node knows of the swarm right
	// after the handshake, then again piggybacked on every refresh
	// check; sentAds dedupes per connection so steady state sends no
	// repeat advertisements.
	sentAds := make(map[protocol.PeerAd]bool)
	if err := s.sendGossip(lk, sentAds); err != nil {
		return err
	}

	// Refresh cadence: fixed mode checks every RefreshBatches batches;
	// adaptive mode steers the interval around the duplicate-rate
	// budget (a dirty batch tightens the cadence, clean ones stretch
	// it). lastReceived/lastUseful window the per-batch duplicate rate
	// out of the cumulative session counters.
	var ctrl *RefreshController
	cadence := o.opts.RefreshBatches
	if o.opts.AdaptiveRefresh && cadence > 0 {
		ctrl = NewRefreshController(o.opts.RefreshDupTarget, cadence)
		cadence = ctrl.Cadence()
	}
	sinceCheck := 0
	lastReceived, lastUseful := 0, 0
	canSummarize := o.opts.summaryMask()&hello.SummaryMask != 0

	useless := 0
	inflight := 0
	for {
		if s.ended() {
			deadline()
			protocol.WriteFrame(lk, protocol.EncodeDone())
			return nil
		}
		// Periodic summary refresh: when the shared working set grew
		// enough since the last summary, re-inform the sender so it
		// stops spending transmissions on symbols other sessions
		// delivered meanwhile. This also covers sessions that started
		// empty-handed (method None at handshake, the fresh-receiver
		// default): once the set is non-trivial the method is
		// re-negotiated and a first summary goes out.
		sinceCheck++
		if !hello.FullCopy && o.opts.RefreshBatches > 0 && sinceCheck >= cadence {
			sinceCheck = 0
			if err := s.sendGossip(lk, sentAds); err != nil {
				return err
			}
			// O(1) staleness test first; the O(n) id snapshot is paid
			// only when a refresh will actually be built — and never
			// when no summary method is negotiable (a blind-streaming
			// mask would otherwise re-snapshot every check forever).
			// Adaptive mode refreshes on any growth — its cadence, not
			// a growth fraction, rations the summaries.
			_, version := o.WorkingSetInfo()
			grown := float64(version-heldVersion) >= o.opts.RefreshGrowth*float64(heldVersion)
			if ctrl != nil {
				grown = version > heldVersion
			}
			if grown && version > 0 && canSummarize {
				var cur *keyset.Set
				cur, version = o.heldSnapshot()
				method = protocol.ChooseSummaryMethod(
					o.opts.summaryMask()&hello.SummaryMask, cur.Len(), int(hello.Symbols))
				if method == protocol.SummaryNone {
					continue
				}
				blob, err := strategy.BuildSummary(method, cur, s.summaryConfig())
				if err != nil {
					return err
				}
				deadline()
				if err := protocol.WriteFrame(lk, protocol.EncodeSummary(method, blob, true)); err != nil {
					return err
				}
				heldVersion = version
				o.met.refreshes.Inc()
				o.mu.Lock()
				s.stats.Summary = method.String()
				s.stats.RefreshesSent++
				o.mu.Unlock()
			}
		}
		// Pipelined request ramp: keep pc.Depth() batches outstanding so
		// the server's symbol stream never drains while a REQUEST is in
		// flight. Depth 1 is exactly the old stop-and-wait exchange. Each
		// iteration of the outer loop retires one batch (one DONE), so
		// batch-boundary accounting below is unchanged — it just lags the
		// wire by the pipeline depth. A scheduler's live depth cap
		// (Orchestrator.SetPipelineCap) binds the adaptive ramp here, at
		// the batch boundary.
		if pcap := o.pipeCap.Load(); pcap > 0 {
			pc.SetMax(int(pcap))
		}
		deadline()
		progressBefore := o.progress.Load()
		for inflight < pc.Depth() {
			if err := protocol.WriteFrame(lk, protocol.EncodeRequest(uint32(o.opts.Batch))); err != nil {
				// A pipelined REQUEST blocks against a server that is still
				// streaming the previous batch, so the transfer can complete
				// (and the watchdog expire the deadline) while this write is
				// parked — the same self-inflicted unblock the read path
				// below classifies as a clean end.
				if s.ended() {
					return nil
				}
				return err
			}
			inflight++
		}
		got := 0
		for {
			deadline()
			f, err := next()
			if err != nil {
				if s.ended() {
					return nil
				}
				return err
			}
			if f.Type == protocol.TypeDone {
				inflight--
				break
			}
			switch f.Type {
			case protocol.TypeSymbol:
				in, err := symbolFromFrame(f, o.pools, s.stats)
				if err != nil {
					return err
				}
				if !o.deliver(in) {
					o.pools.release(in)
					return nil
				}
				got++
			case protocol.TypeRecoded:
				in, err := recodedFromFrame(f, o.pools, s.stats)
				if err != nil {
					return err
				}
				if !o.deliver(in) {
					o.pools.release(in)
					return nil
				}
				got++
			case protocol.TypePeers:
				ads, err := protocol.DecodePeers(f)
				if err != nil {
					return err
				}
				o.observeGossip(ads)
			case protocol.TypeError:
				msg, _ := protocol.DecodeError(f)
				return fmt.Errorf("peer %s: %s", s.addr, msg)
			default:
				return fmt.Errorf("peer %s: unexpected %v", s.addr, f.Type)
			}
		}
		// Duplicate rate of the symbols processed since the last batch
		// boundary. The decode loop is asynchronous, so the window lags
		// in-flight symbols slightly — fine for control signals that are
		// clamped and step-bounded anyway. It feeds both the refresh
		// cadence (when adaptive) and the pipeline ramp.
		dupRate := 0.0
		o.mu.Lock()
		received, useful := s.stats.SymbolsReceived, s.stats.UsefulSymbols
		o.mu.Unlock()
		if dr, du := received-lastReceived, useful-lastUseful; dr > 0 {
			dupRate = float64(dr-du) / float64(dr)
			if ctrl != nil {
				cadence = ctrl.Observe(dupRate)
			}
		}
		lastReceived, lastUseful = received, useful
		// A batch is useless when it carried nothing, or when the global
		// decode made no progress while it was in flight (recoded streams
		// always fill batches, so volume alone is not a signal). Decoding
		// is asynchronous, though: symbols still queued on the symbol
		// channel have not had their chance to move the progress counter,
		// so a lagging decode loop must not read as an unproductive
		// sender — only count a no-progress batch when the queue is
		// drained.
		uselessBatch := got == 0 || (o.progress.Load() == progressBefore && len(o.symbolCh) == 0)
		pc.Observe(dupRate, !uselessBatch)
		if uselessBatch {
			useless++
			if useless >= o.opts.MaxUselessBatches {
				protocol.WriteFrame(lk, protocol.EncodeDone())
				return nil // this peer has nothing more for us
			}
		} else {
			useless = 0
		}
	}
}

// sendGossip writes a PEERS frame with every advertisement not yet sent
// on this connection; a no-news call writes nothing. The collected list
// stops at the frame cap, so an overflow is not falsely marked sent —
// it goes out on a later call.
func (s *session) sendGossip(conn io.Writer, sent map[protocol.PeerAd]bool) error {
	ads := s.o.gossipAdverts(s.addr)
	fresh := ads[:0]
	for _, ad := range ads {
		if len(fresh) == protocol.MaxPeerAds {
			break
		}
		if !sent[ad] {
			sent[ad] = true
			fresh = append(fresh, ad)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	return protocol.WriteFrame(conn, protocol.EncodePeers(fresh))
}

// summaryConfig maps FetchOptions onto the strategy-layer summary
// parameters (seeds and sizes both ends must agree on travel inside the
// marshaled summaries themselves).
func (s *session) summaryConfig() strategy.Config {
	return strategy.Config{
		BloomBitsPerElement: s.o.opts.BloomBitsPerElement,
		BloomHashes:         s.o.opts.BloomHashes,
		SummarySeed:         s.o.opts.BloomSeed,
	}
}
