package peer

// mux.go is the multi-content front door: one listener serving every
// content a node stores. The pre-node engine ran one Server (and one
// listener, one port) per content; a ServerMux instead owns the accept
// loop, reads each inbound HELLO itself, and routes the connection to
// the registered Server whose content id the client named — unknown ids
// are answered with the canonical unknown-content ERROR so receivers
// can write the peer off for that content without retrying. Contents
// register and unregister live (a node registers a live server as soon
// as a fetch's first handshake fixes the metadata, and unregisters when
// the content store evicts a replica); in-flight sessions survive an
// unregister — they hold their own *Server — only new handshakes see
// the change.

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icd/internal/obs"
	"icd/internal/peermux"
	"icd/internal/protocol"
)

// ServerMux serves many contents on one listener, routing each inbound
// HELLO to the registered Server for its content id. The zero value is
// not usable; call NewServerMux. All methods are safe for concurrent
// use.
type ServerMux struct {
	timeout time.Duration

	maxConns atomic.Int64 // node-wide inbound connection cap (0 = unlimited)
	active   atomic.Int64 // inbound connections currently admitted

	mu        sync.Mutex
	servers   map[uint64]*Server
	pending   map[uint64]bool // fetches awaiting their first handshake: retryable, not unknown
	gossip    *Gossip
	penalties *PenaltyBox
	onLookup  func(contentID uint64, found bool)
	ln        net.Listener
	closed    bool
	wg        sync.WaitGroup

	// stats are the private registry-typed counters behind Stats();
	// obsm, when set via SetObs, is a second node-registry set the same
	// paths add into (node-wide mux.* metrics).
	stats struct {
		connections obs.Counter
		rejected    obs.Counter
		busy        obs.Counter
		banned      obs.Counter
		malformed   obs.Counter
	}
	obsm atomic.Pointer[muxMetrics]
	obs  atomic.Pointer[obs.Registry] // shared into registered servers
}

// MuxStats exposes a ServerMux's connection counters.
type MuxStats struct {
	// Connections counts accepted connections; Rejected counts the
	// subset whose HELLO named an unregistered content id.
	Connections, Rejected int64
	// Busy counts connections refused over the SetMaxConns cap; Banned
	// counts connections refused because the remote address sat past the
	// penalty box's ban threshold; Malformed counts connections whose
	// opening HELLO was corrupt.
	Busy, Banned, Malformed int64
}

// NewServerMux creates an empty multi-content listener.
func NewServerMux() *ServerMux {
	return &ServerMux{
		timeout: 30 * time.Second,
		servers: make(map[uint64]*Server),
		pending: make(map[uint64]bool),
	}
}

// SetPending marks a content id as expected-but-not-yet-servable (a
// fetch whose first handshake has not fixed the metadata, so no live
// server exists to register). A HELLO naming a pending id is answered
// with a *generic* retryable ERROR instead of the canonical
// unknown-content one: the dialer backs off and redials rather than
// writing this node off permanently for a content it is about to have.
// Clear it once the real server registers (or the fetch dies).
func (m *ServerMux) SetPending(contentID uint64, pending bool) {
	m.mu.Lock()
	if pending {
		m.pending[contentID] = true
	} else {
		delete(m.pending, contentID)
	}
	m.mu.Unlock()
}

// SetGossip installs the node-wide peer directory: every currently and
// subsequently registered Server shares it, so client addresses heard
// on any content flow into one directory. Call before Serve.
func (m *ServerMux) SetGossip(g *Gossip) {
	if g == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gossip = g
	for _, s := range m.servers {
		s.SetGossip(g)
	}
}

// SetMaxConns caps concurrently served inbound connections across all
// contents (0 = unlimited); over-cap connections get a retryable busy
// ERROR and are closed. Safe to adjust while serving.
func (m *ServerMux) SetMaxConns(n int) { m.maxConns.Store(int64(n)) }

// SetPenalties installs the node-wide misbehavior penalty box: inbound
// connections from banned addresses are refused before their HELLO is
// read, and every currently and subsequently registered Server shares
// the box (like SetGossip) so corrupt-frame clients are charged on any
// content they touch.
func (m *ServerMux) SetPenalties(p *PenaltyBox) {
	if p == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.penalties = p
	for _, s := range m.servers {
		s.SetPenalties(p)
	}
}

// penaltyBox returns the installed penalty box (nil-safe to use).
func (m *ServerMux) penaltyBox() *PenaltyBox {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.penalties
}

// SetObs attaches the node-wide observability registry: the mux's
// counters additionally feed the registry's mux.* metrics, and every
// currently and subsequently registered Server shares the registry
// (like SetGossip) so serve-plane counters aggregate node-wide.
func (m *ServerMux) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	om := newMuxMetrics(r)
	m.obsm.Store(&om)
	m.obs.Store(r)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.servers {
		s.SetObs(r)
	}
}

// The count* helpers bump one private counter and, when a registry is
// attached, its node-wide twin.

func (m *ServerMux) countConnection() {
	m.stats.connections.Add(1)
	if om := m.obsm.Load(); om != nil {
		om.connections.Add(1)
	}
}

func (m *ServerMux) countRejected() {
	m.stats.rejected.Add(1)
	if om := m.obsm.Load(); om != nil {
		om.rejected.Add(1)
	}
}

func (m *ServerMux) countBusy() {
	m.stats.busy.Add(1)
	if om := m.obsm.Load(); om != nil {
		om.busy.Add(1)
	}
}

func (m *ServerMux) countBanned() {
	m.stats.banned.Add(1)
	if om := m.obsm.Load(); om != nil {
		om.banned.Add(1)
	}
}

func (m *ServerMux) countMalformed() {
	m.stats.malformed.Add(1)
	if om := m.obsm.Load(); om != nil {
		om.malformed.Add(1)
	}
}

// SetLookupHook installs fn to run on every routed HELLO with the
// requested content id and whether it was found — the signal a content
// store uses to track per-replica serve demand. Call before Serve.
func (m *ServerMux) SetLookupHook(fn func(contentID uint64, found bool)) {
	m.mu.Lock()
	m.onLookup = fn
	m.mu.Unlock()
}

// Register adds a content server to the mux (its content id becomes
// routable on the shared listener). Registering a duplicate id is an
// error; replace by Unregister first. The mux's gossip directory, if
// set, is shared into the server.
func (m *ServerMux) Register(s *Server) error {
	if s == nil {
		return errors.New("peer: nil server")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := s.Info().ID
	if _, dup := m.servers[id]; dup {
		return fmt.Errorf("peer: content %#x already registered", id)
	}
	if m.gossip != nil {
		s.SetGossip(m.gossip)
	}
	if m.penalties != nil {
		s.SetPenalties(m.penalties)
	}
	if r := m.obs.Load(); r != nil {
		s.SetObs(r)
	}
	m.servers[id] = s
	return nil
}

// Unregister removes a content id from the mux. New handshakes naming
// it get the unknown-content ERROR; sessions already running keep their
// server and drain normally. It reports whether the id was registered.
func (m *ServerMux) Unregister(contentID uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.servers[contentID]; !ok {
		return false
	}
	delete(m.servers, contentID)
	return true
}

// Lookup returns the registered server for a content id.
func (m *ServerMux) Lookup(contentID uint64) (*Server, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.servers[contentID]
	return s, ok
}

// Contents returns the registered content ids, sorted.
func (m *ServerMux) Contents() []uint64 {
	m.mu.Lock()
	ids := make([]uint64, 0, len(m.servers))
	for id := range m.servers {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats returns a snapshot of the connection counters.
func (m *ServerMux) Stats() MuxStats {
	return MuxStats{
		Connections: m.stats.connections.Value(),
		Rejected:    m.stats.rejected.Value(),
		Busy:        m.stats.busy.Value(),
		Banned:      m.stats.banned.Value(),
		Malformed:   m.stats.malformed.Value(),
	}
}

// ListenAndServe binds addr (e.g. "127.0.0.1:0") and serves until Close.
func (m *ServerMux) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return m.Serve(ln)
}

// Serve accepts connections on ln until Close, each served on its own
// goroutine.
func (m *ServerMux) Serve(ln net.Listener) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		ln.Close()
		return errors.New("peer: mux closed")
	}
	m.ln = ln
	m.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			m.mu.Lock()
			closed := m.closed
			m.mu.Unlock()
			if closed {
				m.wg.Wait()
				return nil
			}
			return err
		}
		// The Add must be ordered against Close's closed=true under the
		// lock: otherwise Close's Wait can pass on a zero counter while
		// this connection's session is still starting.
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			continue
		}
		m.wg.Add(1)
		m.mu.Unlock()
		go func() {
			defer m.wg.Done()
			defer conn.Close()
			_ = m.ServeConn(conn) // per-connection errors end that session only
		}()
	}
}

// Addr returns the listener address ("" before Serve).
func (m *ServerMux) Addr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close stops the listener and waits for in-flight sessions. Registered
// servers are left as-is (they own no listener of their own here).
func (m *ServerMux) Close() error {
	m.mu.Lock()
	m.closed = true
	ln := m.ln
	m.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	m.wg.Wait()
	return nil
}

// ServeConn routes one established connection: it reads the client's
// HELLO, looks up the named content, and hands the connection (and its
// frame reader) to that server's session loop. Exported so tests and
// in-process networks can serve over net.Pipe.
func (m *ServerMux) ServeConn(conn net.Conn) error {
	m.countConnection()
	key := remoteKey(conn)
	if m.penaltyBox().Banned(key) {
		m.countBanned()
		refuse(conn, m.timeout)
		return fmt.Errorf("peer: refused banned client %s", key)
	}
	// Over the cap: release the slot *before* answering, and answer under
	// a write deadline — a mute client that never reads the busy ERROR
	// must neither hold the admission counter elevated nor park this
	// goroutine forever (net.Pipe writes are fully synchronous; TCP
	// blocks once the socket buffer fills).
	n := m.active.Add(1)
	if max := m.maxConns.Load(); max > 0 && n > max {
		m.active.Add(-1)
		m.countBusy()
		writeRefusal(conn, protocol.EncodeError("busy (inbound connection limit reached)"), m.timeout)
		return errors.New("peer: inbound connection limit reached")
	}
	defer m.active.Add(-1)
	fr := protocol.NewFrameReader(conn)
	if m.timeout > 0 {
		conn.SetDeadline(time.Now().Add(m.timeout))
	}
	f, err := fr.Next()
	if err != nil {
		if errors.Is(err, protocol.ErrVersion) {
			protocol.WriteFrame(conn, protocol.EncodeErrorBadVersion())
		}
		if errors.Is(err, protocol.ErrCorrupt) {
			m.countMalformed()
			m.penaltyBox().Penalize(key, PenaltyCorrupt)
		}
		return err
	}
	// A MUX_HELLO opens a multiplexed wire (the connection fabric): one
	// connection carrying a subchannel per content, each routed through
	// the same lookup a dedicated connection's HELLO goes through. A
	// plain HELLO is a legacy dedicated connection serving exactly one
	// content.
	if f.Type == protocol.TypeMuxHello {
		return m.serveFabric(conn, fr, f, key)
	}
	wconn := versionMatched(conn, f)
	hello, err := protocol.DecodeHello(f)
	if err != nil {
		if errors.Is(err, protocol.ErrCorrupt) {
			m.countMalformed()
			m.penaltyBox().Penalize(key, PenaltyCorrupt)
		}
		return err
	}
	s, pending, found := m.route(hello.ContentID)
	if !found {
		if pending {
			// Not servable *yet* — a generic (retryable) failure, so the
			// dialer's reconnect backoff naturally spans the window
			// between our fetch starting and its first handshake
			// registering the live server.
			writeRefusal(wconn, protocol.EncodeError(pendingMessage(hello.ContentID)), m.timeout)
			return fmt.Errorf("peer: content %#x pending", hello.ContentID)
		}
		m.countRejected()
		writeRefusal(wconn, protocol.EncodeErrorUnknownContent(hello.ContentID), m.timeout)
		return fmt.Errorf("peer: no server for content %#x", hello.ContentID)
	}
	return s.serveClient(wconn, fr, hello)
}

// route looks up the server for a content id, firing the lookup hook.
func (m *ServerMux) route(contentID uint64) (s *Server, pending, found bool) {
	m.mu.Lock()
	s, found = m.servers[contentID]
	pending = m.pending[contentID]
	hook := m.onLookup
	m.mu.Unlock()
	if hook != nil {
		hook(contentID, found)
	}
	return s, pending, found
}

// pendingMessage is the generic retryable refusal for a content this
// node is fetching but cannot serve yet.
func pendingMessage(contentID uint64) string {
	return fmt.Sprintf("content %#x pending (fetch in progress, not yet servable)", contentID)
}

// serveFabric runs a multiplexed wire accepted on the shared listener:
// it answers the fabric handshake, then serves every subchannel the
// peer opens through the same content routing a dedicated connection
// gets, until the connection dies. Wire-level misbehavior (corrupt
// frames, protocol violations) is charged to the remote host through
// the node's penalty box, and wire-level gossip feeds the shared
// directory.
func (m *ServerMux) serveFabric(conn net.Conn, fr *protocol.FrameReader, f protocol.Frame, key string) error {
	mh, err := protocol.DecodeMuxHello(f)
	if err != nil {
		if errors.Is(err, protocol.ErrCorrupt) {
			m.countMalformed()
			m.penaltyBox().Penalize(key, PenaltyCorrupt)
		}
		return err
	}
	m.mu.Lock()
	g := m.gossip
	m.mu.Unlock()
	cfg := peermux.Config{
		Timeout:    m.timeout,
		ListenAddr: m.Addr(),
		Penalize: func(weight float64) {
			m.countMalformed()
			m.penaltyBox().Penalize(key, weight)
		},
	}
	if g != nil {
		cfg.OnPeers = func(ads []protocol.PeerAd) {
			for _, ad := range ads {
				g.Learn(ad)
			}
		}
	}
	w, err := peermux.Accept(conn, fr, mh, cfg, func(ch *peermux.Channel) {
		defer ch.Close()
		m.serveChannel(ch)
	})
	if err != nil {
		return err
	}
	return w.Serve()
}

// serveChannel routes one fabric subchannel by its OPEN's content id —
// the fabric analog of a dedicated connection's HELLO lookup, answering
// with the same canonical reject vocabulary.
func (m *ServerMux) serveChannel(ch *peermux.Channel) {
	m.countConnection()
	id := ch.RemoteHello().ContentID
	s, pending, found := m.route(id)
	if !found {
		if pending {
			ch.Reject(pendingMessage(id))
			return
		}
		m.countRejected()
		ch.Reject(fmt.Sprintf("%s %#x", protocol.ReasonUnknownContent, id))
		return
	}
	_ = s.ServeChannel(ch) // per-channel errors end that channel only
}
