package peer

// compat_test.go is the cross-version handshake matrix: a v3 client
// against this (v4) server and a v4 client against a simulated v3
// server must both fail cleanly — ErrVersion surfaced, the server
// answering a human-readable ERROR, and no goroutine left behind
// (checked with a hand-rolled leak detector; the engine has no
// goleak dependency).

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"icd/internal/protocol"
	"icd/internal/testutil"
)

// checkGoroutines is the leak check each matrix case defers; the
// detector itself lives in testutil so the peer and node suites share
// one implementation.
func checkGoroutines(t *testing.T) func() { return testutil.CheckGoroutines(t) }

// frameWithVersion replicates the wire framing with an arbitrary
// version byte — the only way to speak as an older peer now that the
// library itself is v4.
func frameWithVersion(version uint8, t protocol.Type, payload []byte) []byte {
	buf := make([]byte, 0, 8+len(payload)+4)
	buf = append(buf, 0xD0, 0x1C, version, byte(t))
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(payload)))
	buf = append(buf, lenb[:]...)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[3:])
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc)
	return append(buf, crcb[:]...)
}

// readFrameAnyVersion reads one frame off r without enforcing the
// version byte — how the test observes what a cross-version peer would
// physically receive. It returns the version, type and payload.
func readFrameAnyVersion(t *testing.T, r io.Reader) (uint8, protocol.Type, []byte) {
	t.Helper()
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		t.Fatalf("reading frame header: %v", err)
	}
	if binary.LittleEndian.Uint16(hdr) != 0x1CD0 {
		t.Fatalf("bad magic in %x", hdr)
	}
	length := binary.LittleEndian.Uint32(hdr[4:])
	body := make([]byte, int(length)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		t.Fatalf("reading frame body: %v", err)
	}
	return hdr[2], protocol.Type(hdr[3]), body[:length]
}

// v3Hello builds the 42-byte v3 HELLO payload (fixed-length: no
// listen-address field).
func v3Hello(contentID uint64) []byte {
	buf := make([]byte, 42)
	binary.LittleEndian.PutUint64(buf, contentID)
	buf[41] = protocol.AllSummaryMask
	return buf
}

func TestCrossVersionMatrixV3ClientV4Server(t *testing.T) {
	defer checkGoroutines(t)()
	info, data := testContent(t, 60, 32)
	srv, err := NewFullServer(info, data)
	if err != nil {
		t.Fatal(err)
	}

	client, server := net.Pipe()
	defer client.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var serveErr error
	go func() {
		defer wg.Done()
		serveErr = srv.ServeConn(server)
		server.Close()
	}()

	// The v3 client's HELLO, written from a goroutine: the server bails
	// at the 8-byte header, and net.Pipe (unlike a TCP socket buffer)
	// would otherwise deadlock the unread remainder against the
	// server's ERROR answer.
	client.SetDeadline(time.Now().Add(5 * time.Second))
	go client.Write(frameWithVersion(3, protocol.TypeHello, v3Hello(info.ID)))

	// The server answers a clean ERROR naming the version problem. It is
	// framed as v4 — a real v3 client's reader rejects that with its own
	// ErrVersion, which is still a clean handshake failure, not a
	// misparse — so the test reads it version-agnostically.
	version, typ, payload := readFrameAnyVersion(t, client)
	if version != protocol.Version {
		t.Fatalf("server answered with version %d, speaking %d", version, protocol.Version)
	}
	if typ != protocol.TypeError {
		t.Fatalf("server answered %v, want ERROR", typ)
	}
	if !strings.Contains(string(payload), "version") {
		t.Fatalf("error %q does not name the version problem", payload)
	}
	wg.Wait()
	if serveErr == nil || !errors.Is(serveErr, protocol.ErrVersion) {
		t.Fatalf("server error = %v, want ErrVersion", serveErr)
	}
}

func TestCrossVersionMatrixV4ClientV3Server(t *testing.T) {
	defer checkGoroutines(t)()
	info, _ := testContent(t, 60, 32)

	// A simulated v3 server: reads whatever handshake arrives, then
	// answers a v3-framed ERROR — what a real v3 peer does when it sees
	// our v4 HELLO's version byte.
	dial := func(addr string) (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			server.SetDeadline(time.Now().Add(5 * time.Second))
			buf := make([]byte, 512)
			if _, err := server.Read(buf); err != nil {
				return
			}
			server.Write(frameWithVersion(3, protocol.TypeError,
				[]byte("unsupported protocol version (speaking 3)")))
		}()
		return client, nil
	}

	res, err := Fetch([]string{"v3-server"}, info.ID, FetchOptions{
		Timeout: 5 * time.Second,
		Dial:    dial,
	})
	if err == nil {
		t.Fatalf("cross-version fetch succeeded?! completed=%v", res.Completed)
	}
	if !errors.Is(err, protocol.ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion in the chain", err)
	}
	if res != nil {
		for _, p := range res.Peers {
			if p.Err == nil || !errors.Is(p.Err, protocol.ErrVersion) {
				t.Fatalf("session error = %v, want ErrVersion", p.Err)
			}
		}
	}
}

func TestCrossVersionFrameReaderRejects(t *testing.T) {
	// The frame layer itself marks foreign versions with ErrVersion for
	// every version byte but ours — the invariant the matrix rests on.
	for _, v := range []uint8{1, 2, 3, 5, 255} {
		raw := frameWithVersion(v, protocol.TypeDone, nil)
		_, err := protocol.ReadFrame(strings.NewReader(string(raw)))
		if !errors.Is(err, protocol.ErrVersion) {
			t.Fatalf("version %d: err = %v, want ErrVersion", v, err)
		}
	}
	raw := frameWithVersion(protocol.Version, protocol.TypeDone, nil)
	if _, err := protocol.ReadFrame(strings.NewReader(string(raw))); err != nil {
		t.Fatalf("own version rejected: %v", err)
	}
}
